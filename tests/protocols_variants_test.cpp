// ATSP / TATSP / SATSF: participation-policy dynamics and the headline
// property that motivated them — better scalability than plain TSF.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "mac/channel.h"
#include "protocols/atsp.h"
#include "protocols/satsf.h"
#include "protocols/station.h"
#include "protocols/tatsp.h"
#include "protocols/tsf_family.h"
#include "runner/experiment.h"
#include "sim/simulator.h"

namespace sstsp::proto {
namespace {

using namespace sstsp::sim::literals;

template <typename Proto, typename Params>
struct VariantNet {
  sim::Simulator sim{13};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  std::vector<std::unique_ptr<Station>> stations;
  Params params{};

  VariantNet() {
    phy.packet_error_rate = 0.0;
    channel = std::make_unique<mac::Channel>(sim, phy);
  }

  Proto& add(double ppm, double offset_us) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    auto st = std::make_unique<Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us),
        mac::Position{static_cast<double>(id), 0.0});
    auto proto = std::make_unique<Proto>(*st, params);
    Proto& ref = *proto;
    st->set_protocol(std::move(proto));
    stations.push_back(std::move(st));
    return ref;
  }

  void run(sim::SimTime until) {
    for (auto& st : stations) {
      if (!st->awake()) st->power_on();
    }
    sim.run_until(until);
  }

  double spread_us() {
    double lo = 1e18, hi = -1e18;
    for (const auto& st : stations) {
      const double v = st->protocol().network_time_us(sim.now());
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  }
};

TEST(Atsp, SlowNodesBackOffFastNodeStaysEager) {
  VariantNet<Atsp, AtspParams> net;
  Atsp& fast = net.add(+100, 0.0);
  Atsp& slow1 = net.add(-100, 0.0);
  Atsp& slow2 = net.add(-50, 0.0);
  net.run(20_sec);
  // Slow nodes heard later timestamps and must sit at I = Imax; the fast
  // node heard nothing later and competes every BP.
  EXPECT_EQ(fast.current_interval(), 1u);
  EXPECT_EQ(slow1.current_interval(), net.params.i_max);
  EXPECT_EQ(slow2.current_interval(), net.params.i_max);
  EXPECT_GT(fast.stats().beacons_sent, slow1.stats().beacons_sent);
}

TEST(Atsp, SynchronizesNetwork) {
  VariantNet<Atsp, AtspParams> net;
  for (int i = 0; i < 20; ++i) net.add(-100.0 + 10.0 * i, i * 5.0);
  net.run(30_sec);
  EXPECT_LT(net.spread_us(), 25.0);
}

TEST(Tatsp, TierAssignmentsReflectSpeed) {
  VariantNet<Tatsp, TatspParams> net;
  Tatsp& fast = net.add(+100, 0.0);
  Tatsp& mid = net.add(0, 0.0);
  Tatsp& slow = net.add(-100, 0.0);
  net.run(30_sec);
  EXPECT_EQ(fast.tier(), 1);
  EXPECT_EQ(slow.tier(), 3);
  (void)mid;
  EXPECT_GT(fast.stats().beacons_sent, slow.stats().beacons_sent);
}

TEST(Tatsp, SynchronizesNetwork) {
  VariantNet<Tatsp, TatspParams> net;
  for (int i = 0; i < 20; ++i) net.add(-100.0 + 10.0 * i, i * 5.0);
  net.run(30_sec);
  EXPECT_LT(net.spread_us(), 25.0);
}

TEST(Satsf, FftGrowsForFastShrinksForSlow) {
  VariantNet<Satsf, SatsfParams> net;
  Satsf& fast = net.add(+100, 0.0);
  Satsf& slow = net.add(-100, 0.0);
  net.run(30_sec);
  EXPECT_EQ(fast.fft(), net.params.fft_max);
  EXPECT_LT(slow.fft(), net.params.fft_max / 2);
  EXPECT_GT(fast.stats().beacons_sent, slow.stats().beacons_sent);
}

TEST(Satsf, SynchronizesNetwork) {
  VariantNet<Satsf, SatsfParams> net;
  for (int i = 0; i < 20; ++i) net.add(-100.0 + 10.0 * i, i * 5.0);
  net.run(30_sec);
  EXPECT_LT(net.spread_us(), 25.0);
}

class VariantScalability : public ::testing::TestWithParam<run::ProtocolKind> {
};

// The design goal of every TSF improvement: at a node count where plain TSF
// visibly degrades, the variant keeps the drift bounded tighter.  Uses the
// scenario runner end to end.
TEST_P(VariantScalability, BeatsTsfAtScale) {
  const int n = 80;
  run::Scenario tsf;
  tsf.protocol = run::ProtocolKind::kTsf;
  tsf.num_nodes = n;
  tsf.duration_s = 120.0;
  tsf.seed = 17;

  run::Scenario variant = tsf;
  variant.protocol = GetParam();

  const auto r_tsf = run::run_scenario(tsf);
  const auto r_var = run::run_scenario(variant);
  ASSERT_TRUE(r_tsf.steady_p99_us.has_value());
  ASSERT_TRUE(r_var.steady_p99_us.has_value());
  EXPECT_LT(*r_var.steady_p99_us, *r_tsf.steady_p99_us);
}

INSTANTIATE_TEST_SUITE_P(Variants, VariantScalability,
                         ::testing::Values(run::ProtocolKind::kAtsp,
                                           run::ProtocolKind::kTatsp,
                                           run::ProtocolKind::kSatsf,
                                           run::ProtocolKind::kSstsp));

}  // namespace
}  // namespace sstsp::proto
