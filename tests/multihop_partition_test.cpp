// Multi-hop partition behaviour: when a relay chain is physically severed,
// each side must converge internally (a partitioned network cannot — and
// must not pretend to — share one timeline).  The cluster section below
// covers the converse boundary: two timelines in ONE cluster (duelling
// boot references) must merge via RULE R without the duel leaking across a
// gateway boundary.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "cluster/sstsp_cluster.h"
#include "crypto/hash_chain.h"
#include "multihop/sstsp_mh.h"
#include "sim/simulator.h"

namespace sstsp::multihop {
namespace {

struct PartitionNet {
  sim::Simulator sim{61};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  MultiHopConfig cfg;
  std::vector<std::unique_ptr<proto::Station>> stations;
  std::vector<SstspMh*> protos;
  bool armed = false;

  PartitionNet() {
    phy.packet_error_rate = 0.0;
    phy.radio_range_m = 50.0;
    cfg.base.chain_length = 2600;
    cfg.takeover_patience_bps = 20;
    channel = std::make_unique<mac::Channel>(sim, phy);
    sim::Rng rng(61);
    for (int i = 0; i < 7; ++i) {
      const auto id = static_cast<mac::NodeId>(i);
      auto st = std::make_unique<proto::Station>(
          sim, *channel, id,
          clk::HardwareClock(clk::DriftModel::uniform(rng),
                             rng.uniform(-40.0, 40.0)),
          mac::Position{i * 40.0, 0.0});
      directory.register_node(
          id, crypto::ChainParams{crypto::derive_seed(61, id),
                                  cfg.base.chain_length});
      auto proto = std::make_unique<SstspMh>(*st, cfg, directory,
                                             SstspMh::Options{i == 0});
      protos.push_back(proto.get());
      st->set_protocol(std::move(proto));
      stations.push_back(std::move(st));
    }
  }

  void run(double until_s) {
    if (!armed) {
      armed = true;
      for (auto& st : stations) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }

  double segment_spread(int from, int to) const {
    double lo = 1e18, hi = -1e18;
    for (int i = from; i <= to; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!stations[idx]->awake() || !protos[idx]->is_synchronized()) {
        continue;
      }
      const double v = protos[idx]->network_time_us(sim.now());
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return (hi >= lo) ? hi - lo : 0.0;
  }
};

TEST(MultiHopPartition, SeveredLineFormsTwoCoherentIslands) {
  PartitionNet net;
  net.run(15.0);
  // The whole line is one tree first.
  for (int i = 1; i < 7; ++i) {
    ASSERT_TRUE(net.protos[static_cast<std::size_t>(i)]->is_synchronized())
        << i;
  }

  // Sever the middle: node 3 dies, nodes 4-6 are physically unreachable
  // from the reference side.
  net.stations[3]->power_off();

  // The downstream segment free-runs through its takeover patience, then
  // node 4 (lowest surviving level there) seizes the reference role.
  net.run(15.0 + 0.1 * (20 + 2 * 4) + 12.0);
  EXPECT_TRUE(net.protos[0]->is_reference());   // left island root
  EXPECT_TRUE(net.protos[4]->is_reference());   // right island root
  EXPECT_FALSE(net.protos[5]->is_reference());

  // Both islands are internally tight.
  EXPECT_LT(net.segment_spread(0, 2), 50.0);
  EXPECT_LT(net.segment_spread(4, 6), 100.0);

  // Healing: node 3 returns; the right island's root should eventually
  // hear level-2 beacons from node 2's relay... but as a self-made
  // reference it ignores uplinks by design (documented limitation:
  // partition *merge* needs a root-ranking rule, future work in DESIGN.md).
  // What we do require is that the left island is unaffected throughout.
  net.run(60.0);
  EXPECT_LT(net.segment_spread(0, 2), 50.0);
}

}  // namespace
}  // namespace sstsp::multihop

namespace sstsp::cluster {
namespace {

// Two clusters on the chain layout; cluster 1 boots with TWO members
// holding the reference role — two timelines inside one broadcast domain.
struct ClusterDuelNet {
  sim::Simulator sim{97};
  mac::PhyParams phy;
  ClusterSpec spec;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  core::SstspConfig cfg;
  std::vector<std::unique_ptr<proto::Station>> stations;
  std::vector<ClusterSstsp*> protos;
  bool armed = false;

  ClusterDuelNet() {
    phy.packet_error_rate = 0.0;
    phy.radio_range_m = 50.0;
    spec.clusters = 2;
    spec.nodes_per_cluster = 4;
    cfg.chain_length = 400;
    channel = std::make_unique<mac::Channel>(sim, phy);
    sim::Rng rng(97);
    for (int i = 0; i < spec.total_nodes(); ++i) {
      const auto id = static_cast<mac::NodeId>(i);
      auto st = std::make_unique<proto::Station>(
          sim, *channel, id,
          clk::HardwareClock(clk::DriftModel::uniform(rng),
                             rng.uniform(-40.0, 40.0)),
          position_of(id));
      directory.register_node(
          id, crypto::ChainParams{crypto::derive_seed(97, id),
                                  cfg.chain_length});
      ClusterSstsp::Options opts;
      opts.spec = spec;
      opts.cluster = cluster_of(spec, id);
      opts.gateway = is_gateway(spec, id);
      // The duel: both 5 and 6 claim cluster 1's reference role at boot.
      opts.start_as_reference = (i == 0 || i == 5 || i == 6);
      auto proto = std::make_unique<ClusterSstsp>(*st, cfg, directory, opts);
      protos.push_back(proto.get());
      st->set_protocol(std::move(proto));
      stations.push_back(std::move(st));
    }
  }

  [[nodiscard]] mac::Position position_of(mac::NodeId id) const {
    if (is_gateway(spec, id)) return gateway_position(spec, id);
    const mac::Position center = cluster_center(spec, cluster_of(spec, id));
    return {center.x_m + 3.0 * member_index(spec, id), center.y_m};
  }

  void run(double until_s) {
    if (!armed) {
      armed = true;
      for (auto& st : stations) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }
};

TEST(ClusterPartition, CrossTimelineRuleRStopsAtTheGatewayBoundary) {
  ClusterDuelNet net;
  net.run(20.0);

  // RULE R inside cluster 1: the duel collapses to exactly one reference
  // (the loser demotes on hearing the survivor's authenticated beacon).
  int cluster1_refs = 0;
  for (int i = 5; i <= 7; ++i) {
    if (net.protos[static_cast<std::size_t>(i)]->is_reference()) {
      ++cluster1_refs;
    }
  }
  EXPECT_EQ(cluster1_refs, 1);
  EXPECT_GE(net.protos[5]->stats().demotions + net.protos[6]->stats().demotions,
            1u);

  // The duel never crosses the boundary: beacons of both contenders are
  // domain-1 traffic, so cluster 0's reference is untouched even though it
  // sits inside radio range of the bridge plane.
  EXPECT_TRUE(net.protos[0]->is_reference());
  EXPECT_EQ(net.protos[0]->stats().demotions, 0u);
  // The gateway stays a follower in both planes throughout.
  EXPECT_FALSE(net.protos[4]->is_reference());

  // With the duel resolved the bridge carries one timescale: every node is
  // attached and the network-wide reading is tight across the boundary.
  double lo = 1e18;
  double hi = -1e18;
  for (std::size_t i = 0; i < net.protos.size(); ++i) {
    ASSERT_TRUE(net.protos[i]->is_synchronized()) << i;
    const double v = net.protos[i]->network_time_us(net.sim.now());
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(hi - lo, 50.0);
}

}  // namespace
}  // namespace sstsp::cluster
