// Multi-hop partition behaviour: when a relay chain is physically severed,
// each side must converge internally (a partitioned network cannot — and
// must not pretend to — share one timeline).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "crypto/hash_chain.h"
#include "multihop/sstsp_mh.h"
#include "sim/simulator.h"

namespace sstsp::multihop {
namespace {

struct PartitionNet {
  sim::Simulator sim{61};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  MultiHopConfig cfg;
  std::vector<std::unique_ptr<proto::Station>> stations;
  std::vector<SstspMh*> protos;
  bool armed = false;

  PartitionNet() {
    phy.packet_error_rate = 0.0;
    phy.radio_range_m = 50.0;
    cfg.base.chain_length = 2600;
    cfg.takeover_patience_bps = 20;
    channel = std::make_unique<mac::Channel>(sim, phy);
    sim::Rng rng(61);
    for (int i = 0; i < 7; ++i) {
      const auto id = static_cast<mac::NodeId>(i);
      auto st = std::make_unique<proto::Station>(
          sim, *channel, id,
          clk::HardwareClock(clk::DriftModel::uniform(rng),
                             rng.uniform(-40.0, 40.0)),
          mac::Position{i * 40.0, 0.0});
      directory.register_node(
          id, crypto::ChainParams{crypto::derive_seed(61, id),
                                  cfg.base.chain_length});
      auto proto = std::make_unique<SstspMh>(*st, cfg, directory,
                                             SstspMh::Options{i == 0});
      protos.push_back(proto.get());
      st->set_protocol(std::move(proto));
      stations.push_back(std::move(st));
    }
  }

  void run(double until_s) {
    if (!armed) {
      armed = true;
      for (auto& st : stations) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }

  double segment_spread(int from, int to) const {
    double lo = 1e18, hi = -1e18;
    for (int i = from; i <= to; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!stations[idx]->awake() || !protos[idx]->is_synchronized()) {
        continue;
      }
      const double v = protos[idx]->network_time_us(sim.now());
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return (hi >= lo) ? hi - lo : 0.0;
  }
};

TEST(MultiHopPartition, SeveredLineFormsTwoCoherentIslands) {
  PartitionNet net;
  net.run(15.0);
  // The whole line is one tree first.
  for (int i = 1; i < 7; ++i) {
    ASSERT_TRUE(net.protos[static_cast<std::size_t>(i)]->is_synchronized())
        << i;
  }

  // Sever the middle: node 3 dies, nodes 4-6 are physically unreachable
  // from the reference side.
  net.stations[3]->power_off();

  // The downstream segment free-runs through its takeover patience, then
  // node 4 (lowest surviving level there) seizes the reference role.
  net.run(15.0 + 0.1 * (20 + 2 * 4) + 12.0);
  EXPECT_TRUE(net.protos[0]->is_reference());   // left island root
  EXPECT_TRUE(net.protos[4]->is_reference());   // right island root
  EXPECT_FALSE(net.protos[5]->is_reference());

  // Both islands are internally tight.
  EXPECT_LT(net.segment_spread(0, 2), 50.0);
  EXPECT_LT(net.segment_spread(4, 6), 100.0);

  // Healing: node 3 returns; the right island's root should eventually
  // hear level-2 beacons from node 2's relay... but as a self-made
  // reference it ignores uplinks by design (documented limitation:
  // partition *merge* needs a root-ranking rule, future work in DESIGN.md).
  // What we do require is that the left island is unaffected throughout.
  net.run(60.0);
  EXPECT_LT(net.segment_spread(0, 2), 50.0);
}

}  // namespace
}  // namespace sstsp::multihop
