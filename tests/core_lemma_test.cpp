// Analytic verification of the paper's Lemma 1 and Lemma 2 on a noise-free
// harness (direct iteration of the update equations, no DES): the bounds are
// stated for ideal conditions, so they are checked there, while the
// integration tests check the end-to-end behaviour with noise.
#include <gtest/gtest.h>

#include <cmath>

#include "core/adjustment.h"
#include "sim/rng.h"

namespace sstsp::core {
namespace {

constexpr double kBpUs = 1e5;

struct Harness {
  double f;        // local oscillator frequency
  ClockParams kb{1.0, 0.0};
  RefSample older;
  RefSample newest;
  SstspConfig cfg;

  Harness(double freq, double initial_offset_us, int m) : f(freq) {
    cfg.m = m;
    kb = ClockParams{1.0, initial_offset_us};
    older = RefSample{f * 1e6, 1e6};
    newest = RefSample{f * (1e6 + kBpUs), 1e6 + kBpUs};
  }

  /// Feeds the beacon of interval j (emitted d_j after its schedule) and
  /// returns the post-adjustment error D = c(t_rx) - ts.
  double step(int j, double d_j = 0.0) {
    const double ts = 1e6 + j * kBpUs + d_j;
    const double t_local = f * ts;
    const auto out = solve_adjustment(
        kb, t_local, newest, older, 1e6 + (j + cfg.m) * kBpUs, cfg);
    if (out.params) kb = *out.params;
    older = newest;
    newest = RefSample{t_local, ts};
    return kb.eval(t_local) - ts;
  }

  [[nodiscard]] double error_at(int j) const {
    const double ts = 1e6 + j * kBpUs;
    return kb.eval(f * ts) - ts;
  }
};

class Lemma1 : public ::testing::TestWithParam<std::tuple<int, double>> {};

// D^{n+1}/D^n < (m-1)*BP / (m*BP - d) for m > 1 (paper, proof of Lemma 1),
// including nonzero emission jitter d.
TEST_P(Lemma1, ContractionRatioBound) {
  const auto [m, d_us] = GetParam();
  sim::Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    const double f = 1.0 + rng.uniform(-100.0, 100.0) * 1e-6;
    const double d0 = rng.uniform(-112.0, 112.0);
    Harness h(f, d0, m);

    double prev = std::abs(h.step(2, rng.uniform(0.0, d_us)));
    for (int j = 3; j < 25; ++j) {
      const double err = std::abs(h.step(j, rng.uniform(0.0, d_us)));
      if (prev > 0.5) {
        const double bound =
            (m == 1) ? (d_us + 1.0) / (m * kBpUs - d_us)
                     : (m - 1) * kBpUs / (m * kBpUs - d_us);
        EXPECT_LE(err / prev, bound + 0.03)
            << "m=" << m << " j=" << j << " trial=" << trial;
      }
      prev = err;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma1,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.0, 100.0, 1000.0)));

class Lemma1Latency : public ::testing::TestWithParam<int> {};

// The convergence-time corollary: error drops below Delta within
// log_{(m-1)BP/(mBP-d)}(Delta/D0) beacon periods.
TEST_P(Lemma1Latency, ConvergesWithinPredictedBPs) {
  const int m = GetParam();
  const double d0 = 112.0;
  const double delta = 1.0;
  Harness h(1.0 + 50e-6, d0, m);

  const double ratio = (m == 1) ? 0.02 : static_cast<double>(m - 1) / m;
  const int predicted =
      static_cast<int>(std::ceil(std::log(delta / d0) / std::log(ratio))) + 2;

  int j = 2;
  while (std::abs(h.error_at(j)) > delta && j < 200) h.step(j++);
  EXPECT_LE(j - 2, predicted) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(MValues, Lemma1Latency,
                         ::testing::Values(1, 2, 3, 4, 5));

// Lemma 2: after the reference leaves, a node free-runs for l+3 BPs (l+1 of
// election plus 2 of µTESLA validation) before it can re-adjust.  With the
// last adjustment at beacon n aiming to null the error at beacon n+m, the
// error is affine in reference time — D(n+q) = D_n (m-q)/m exactly — so
// D+/D- = (m-l-3)/m and |D+| <= (l+2)|D-| with the worst case at m = 1.
TEST(Lemma2, ReferenceChangeBlowupBound) {
  sim::Rng rng(72);
  for (int l = 1; l <= 3; ++l) {
    for (int m = 1; m <= 6; ++m) {
      for (int trial = 0; trial < 20; ++trial) {
        const double f = 1.0 + rng.uniform(-100.0, 100.0) * 1e-6;
        Harness h(f, rng.uniform(50.0, 112.0) *
                         (rng.bernoulli(0.5) ? 1.0 : -1.0), m);
        // A few adjustment rounds: enough to be in the fine regime, few
        // enough that a measurable residual error D^- remains.
        for (int j = 2; j <= 4; ++j) h.step(j);
        const double d_minus = h.error_at(4);  // right after the last solve

        // Reference gone: free-run (no step() calls) for l+3 BPs.
        const int gap = l + 3;
        const double d_plus = h.error_at(4 + gap);

        if (std::abs(d_minus) > 1e-4) {
          const double predicted = (static_cast<double>(m) - gap) / m;
          EXPECT_NEAR(d_plus / d_minus, predicted,
                      1e-3 + std::abs(predicted) * 1e-3)
              << "l=" << l << " m=" << m << " trial=" << trial;
          EXPECT_LE(std::abs(d_plus),
                    (l + 2) * std::abs(d_minus) * (1.0 + 1e-6) + 1e-6)
              << "l=" << l << " m=" << m;
        }
      }
    }
  }
}

TEST(Lemma2, OptimalMIsLPlus3) {
  // |D+/D-| = |m - l - 3| / m is minimized (0) at m = l + 3.
  for (int l = 1; l <= 3; ++l) {
    const int opt = l + 3;
    double best = 1e18;
    int best_m = -1;
    for (int m = 1; m <= 10; ++m) {
      const double blowup = std::abs(static_cast<double>(m - l - 3)) / m;
      if (blowup < best) {
        best = blowup;
        best_m = m;
      }
    }
    EXPECT_EQ(best_m, opt);
    EXPECT_NEAR(best, 0.0, 1e-12);
  }
}

TEST(Lemma1, SteadyStateErrorBelow2Epsilon) {
  // With timestamp estimation error bounded by eps, the converged
  // synchronization error stays under 2*eps (paper: "maximum
  // synchronization error bounded by 2*eps, typically 10us").
  sim::Rng rng(73);
  const double eps = 5.0;
  for (int trial = 0; trial < 20; ++trial) {
    const double f = 1.0 + rng.uniform(-100.0, 100.0) * 1e-6;
    Harness h(f, rng.uniform(-112.0, 112.0), 3);
    double worst_tail = 0.0;
    for (int j = 2; j < 60; ++j) {
      // Jittered timestamp estimate: ts_est = ts_true + U(-eps, eps).
      const double ts = 1e6 + j * kBpUs;
      const double t_local = h.f * ts;
      const auto out = solve_adjustment(
          h.kb, t_local, h.newest, h.older, 1e6 + (j + 3) * kBpUs, h.cfg);
      if (out.params) h.kb = *out.params;
      h.older = h.newest;
      h.newest = RefSample{t_local, ts + rng.uniform(-eps, eps)};
      if (j > 30) {
        worst_tail = std::max(worst_tail, std::abs(h.kb.eval(t_local) - ts));
      }
    }
    EXPECT_LT(worst_tail, 2 * eps) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace sstsp::core
