// One config file, three tools: per-tool key filtering, the structured
// "faults"/"attack" conversions, and the full round trip of a config
// through config_to_args into run::parse_cli with the fault plan intact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/plan.h"
#include "obs/json.h"
#include "runner/cli.h"
#include "runner/config_file.h"

namespace sstsp::run {
namespace {

// The one experiment description every tool should accept: sim-only,
// node-only and swarm-only keys side by side with universal ones.
constexpr const char* kUniversalConfig = R"({
  "nodes": 5,
  "duration": 45,
  "seed": 1,
  "protocol": "sstsp",
  "transport": "loopback",
  "id": 3,
  "monitor": "strict",
  "faults": {
    "seed": 1,
    "packet": [{"kind": "drop", "probability": 0.1}],
    "node_faults": [{"kind": "crash", "node": "reference", "at": 30}]
  }
})";

std::vector<std::string> args_for(const std::string& json, ConfigTool tool) {
  const auto root = obs::json::parse(json);
  EXPECT_TRUE(root.has_value()) << json;
  std::string error;
  const auto args = config_to_args(*root, tool, &error);
  EXPECT_TRUE(args.has_value()) << error;
  return args.value_or(std::vector<std::string>{});
}

bool has_flag(const std::vector<std::string>& args, const std::string& flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

TEST(ConfigRoundTrip, UniversalConfigIsAcceptedByAllThreeTools) {
  for (const ConfigTool tool :
       {ConfigTool::kSim, ConfigTool::kNode, ConfigTool::kSwarm}) {
    const auto args = args_for(kUniversalConfig, tool);
    // Universal keys survive everywhere.
    EXPECT_TRUE(has_flag(args, "--nodes")) << static_cast<int>(tool);
    EXPECT_TRUE(has_flag(args, "--monitor=strict")) << static_cast<int>(tool);
    EXPECT_TRUE(has_flag(args, "--faults-json")) << static_cast<int>(tool);
  }
}

TEST(ConfigRoundTrip, OtherToolsKeysAreSkippedNotRejected) {
  const auto sim = args_for(kUniversalConfig, ConfigTool::kSim);
  EXPECT_TRUE(has_flag(sim, "--protocol"));
  EXPECT_FALSE(has_flag(sim, "--transport"));  // swarm-only
  EXPECT_FALSE(has_flag(sim, "--id"));         // node-only

  const auto node = args_for(kUniversalConfig, ConfigTool::kNode);
  EXPECT_TRUE(has_flag(node, "--id"));
  EXPECT_FALSE(has_flag(node, "--protocol"));
  EXPECT_FALSE(has_flag(node, "--transport"));

  const auto swarm = args_for(kUniversalConfig, ConfigTool::kSwarm);
  EXPECT_TRUE(has_flag(swarm, "--transport"));
  EXPECT_FALSE(has_flag(swarm, "--protocol"));
  EXPECT_FALSE(has_flag(swarm, "--id"));
}

TEST(ConfigRoundTrip, FaultsObjectSplicesAsInlineJson) {
  const auto args = args_for(kUniversalConfig, ConfigTool::kSim);
  std::string dumped;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--faults-json") dumped = args[i + 1];
  }
  ASSERT_FALSE(dumped.empty());
  // The spliced text is itself a valid plan equal to the config's object.
  std::string error;
  const auto plan = fault::parse_plan_text(dumped, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->seed, 1u);
  ASSERT_EQ(plan->packet.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->packet[0].probability, 0.1);
  ASSERT_EQ(plan->node_faults.size(), 1u);
  EXPECT_TRUE(plan->node_faults[0].reference);
}

TEST(ConfigRoundTrip, FaultsStringBecomesPathFlag) {
  const auto args =
      args_for(R"({"faults": "examples/faults/ref_crash_loss.json"})",
               ConfigTool::kSwarm);
  const std::vector<std::string> expected = {
      "--faults", "examples/faults/ref_crash_loss.json"};
  EXPECT_EQ(args, expected);
}

TEST(ConfigRoundTrip, AttackObjectExpandsToAttackFlags) {
  const auto args = args_for(R"({
    "attack": {"name": "internal-ref", "window": [400, 600],
               "params": {"skew_ppm": 80}}
  })",
                             ConfigTool::kSim);
  const std::vector<std::string> expected = {
      "--attack",        "internal-ref",      "--attack-window",
      "400,600",         "--attack-params",   R"({"skew_ppm":80})"};
  EXPECT_EQ(args, expected);
}

TEST(ConfigRoundTrip, AttackIsSimOnlyAndSkippedElsewhere) {
  const std::string json = R"({"attack": "external-forge", "nodes": 4})";
  EXPECT_TRUE(has_flag(args_for(json, ConfigTool::kSim), "--attack"));
  EXPECT_FALSE(has_flag(args_for(json, ConfigTool::kSwarm), "--attack"));
  EXPECT_FALSE(has_flag(args_for(json, ConfigTool::kNode), "--attack"));
}

TEST(ConfigRoundTrip, UnknownKeyErrorsWithNameAndLineForEveryTool) {
  const std::string json = "{\n  \"nodes\": 3,\n  \"warp-speed\": 9\n}";
  const auto root = obs::json::parse(json);
  ASSERT_TRUE(root.has_value());
  for (const ConfigTool tool :
       {ConfigTool::kSim, ConfigTool::kNode, ConfigTool::kSwarm}) {
    std::string error;
    EXPECT_FALSE(config_to_args(*root, tool, &error).has_value());
    EXPECT_NE(error.find("warp-speed"), std::string::npos) << error;
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  }
}

TEST(ConfigRoundTrip, SimArgsParseBackIntoScenarioWithPlan) {
  // End to end: JSON -> argv -> parse_cli -> Scenario, fault plan intact
  // and bit-equal (via the serializer fixpoint) to the config's object.
  const auto args = args_for(kUniversalConfig, ConfigTool::kSim);
  std::string error;
  const auto cli = parse_cli(args, &error);
  ASSERT_TRUE(cli.has_value()) << error;
  EXPECT_EQ(cli->scenario.num_nodes, 5);
  EXPECT_DOUBLE_EQ(cli->scenario.duration_s, 45.0);
  EXPECT_EQ(cli->scenario.seed, 1u);
  EXPECT_TRUE(cli->scenario.monitor);
  EXPECT_TRUE(cli->monitor_strict);
  ASSERT_FALSE(cli->scenario.faults.empty());
  ASSERT_EQ(cli->scenario.faults.packet.size(), 1u);
  EXPECT_DOUBLE_EQ(cli->scenario.faults.packet[0].probability, 0.1);
  ASSERT_EQ(cli->scenario.faults.node_faults.size(), 1u);
  EXPECT_TRUE(cli->scenario.faults.node_faults[0].reference);
  EXPECT_DOUBLE_EQ(cli->scenario.faults.node_faults[0].at_s, 30.0);
}

TEST(ConfigRoundTrip, DumpParseDumpIsAFixpoint) {
  const auto root = obs::json::parse(kUniversalConfig);
  ASSERT_TRUE(root.has_value());
  const std::string once = obs::json::dump(*root);
  const auto again = obs::json::parse(once);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(obs::json::dump(*again), once);
}

}  // namespace
}  // namespace sstsp::run
