// One config file, three tools: per-tool key filtering, the structured
// "faults"/"attack" conversions, and the full round trip of a config
// through config_to_args into run::parse_cli with the fault plan intact.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/plan.h"
#include "obs/json.h"
#include "runner/cli.h"
#include "runner/config_file.h"

namespace sstsp::run {
namespace {

// The one experiment description every tool should accept: sim-only,
// node-only and swarm-only keys side by side with universal ones.
constexpr const char* kUniversalConfig = R"({
  "nodes": 5,
  "duration": 45,
  "seed": 1,
  "protocol": "sstsp",
  "transport": "loopback",
  "id": 3,
  "monitor": "strict",
  "faults": {
    "seed": 1,
    "packet": [{"kind": "drop", "probability": 0.1}],
    "node_faults": [{"kind": "crash", "node": "reference", "at": 30}]
  }
})";

std::vector<std::string> args_for(const std::string& json, ConfigTool tool) {
  const auto root = obs::json::parse(json);
  EXPECT_TRUE(root.has_value()) << json;
  std::string error;
  const auto args = config_to_args(*root, tool, &error);
  EXPECT_TRUE(args.has_value()) << error;
  return args.value_or(std::vector<std::string>{});
}

bool has_flag(const std::vector<std::string>& args, const std::string& flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

TEST(ConfigRoundTrip, UniversalConfigIsAcceptedByAllThreeTools) {
  for (const ConfigTool tool :
       {ConfigTool::kSim, ConfigTool::kNode, ConfigTool::kSwarm}) {
    const auto args = args_for(kUniversalConfig, tool);
    // Universal keys survive everywhere.
    EXPECT_TRUE(has_flag(args, "--nodes")) << static_cast<int>(tool);
    EXPECT_TRUE(has_flag(args, "--monitor=strict")) << static_cast<int>(tool);
    EXPECT_TRUE(has_flag(args, "--faults-json")) << static_cast<int>(tool);
  }
}

TEST(ConfigRoundTrip, OtherToolsKeysAreSkippedNotRejected) {
  const auto sim = args_for(kUniversalConfig, ConfigTool::kSim);
  EXPECT_TRUE(has_flag(sim, "--protocol"));
  EXPECT_FALSE(has_flag(sim, "--transport"));  // swarm-only
  EXPECT_FALSE(has_flag(sim, "--id"));         // node-only

  const auto node = args_for(kUniversalConfig, ConfigTool::kNode);
  EXPECT_TRUE(has_flag(node, "--id"));
  EXPECT_FALSE(has_flag(node, "--protocol"));
  EXPECT_FALSE(has_flag(node, "--transport"));

  const auto swarm = args_for(kUniversalConfig, ConfigTool::kSwarm);
  EXPECT_TRUE(has_flag(swarm, "--transport"));
  EXPECT_FALSE(has_flag(swarm, "--protocol"));
  EXPECT_FALSE(has_flag(swarm, "--id"));
}

TEST(ConfigRoundTrip, FaultsObjectSplicesAsInlineJson) {
  const auto args = args_for(kUniversalConfig, ConfigTool::kSim);
  std::string dumped;
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--faults-json") dumped = args[i + 1];
  }
  ASSERT_FALSE(dumped.empty());
  // The spliced text is itself a valid plan equal to the config's object.
  std::string error;
  const auto plan = fault::parse_plan_text(dumped, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->seed, 1u);
  ASSERT_EQ(plan->packet.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->packet[0].probability, 0.1);
  ASSERT_EQ(plan->node_faults.size(), 1u);
  EXPECT_TRUE(plan->node_faults[0].reference);
}

TEST(ConfigRoundTrip, FaultsStringBecomesPathFlag) {
  const auto args =
      args_for(R"({"faults": "examples/faults/ref_crash_loss.json"})",
               ConfigTool::kSwarm);
  const std::vector<std::string> expected = {
      "--faults", "examples/faults/ref_crash_loss.json"};
  EXPECT_EQ(args, expected);
}

TEST(ConfigRoundTrip, AttackObjectExpandsToAttackFlags) {
  const auto args = args_for(R"({
    "attack": {"name": "internal-ref", "window": [400, 600],
               "params": {"skew_ppm": 80}}
  })",
                             ConfigTool::kSim);
  const std::vector<std::string> expected = {
      "--attack",        "internal-ref",      "--attack-window",
      "400,600",         "--attack-params",   R"({"skew_ppm":80})"};
  EXPECT_EQ(args, expected);
}

TEST(ConfigRoundTrip, AttackIsSimOnlyAndSkippedElsewhere) {
  const std::string json = R"({"attack": "external-forge", "nodes": 4})";
  EXPECT_TRUE(has_flag(args_for(json, ConfigTool::kSim), "--attack"));
  EXPECT_FALSE(has_flag(args_for(json, ConfigTool::kSwarm), "--attack"));
  EXPECT_FALSE(has_flag(args_for(json, ConfigTool::kNode), "--attack"));
}

TEST(ConfigRoundTrip, UnknownKeyErrorsWithNameAndLineForEveryTool) {
  const std::string json = "{\n  \"nodes\": 3,\n  \"warp-speed\": 9\n}";
  const auto root = obs::json::parse(json);
  ASSERT_TRUE(root.has_value());
  for (const ConfigTool tool :
       {ConfigTool::kSim, ConfigTool::kNode, ConfigTool::kSwarm}) {
    std::string error;
    EXPECT_FALSE(config_to_args(*root, tool, &error).has_value());
    EXPECT_NE(error.find("warp-speed"), std::string::npos) << error;
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  }
}

TEST(ConfigRoundTrip, SimArgsParseBackIntoScenarioWithPlan) {
  // End to end: JSON -> argv -> parse_cli -> Scenario, fault plan intact
  // and bit-equal (via the serializer fixpoint) to the config's object.
  const auto args = args_for(kUniversalConfig, ConfigTool::kSim);
  std::string error;
  const auto cli = parse_cli(args, &error);
  ASSERT_TRUE(cli.has_value()) << error;
  EXPECT_EQ(cli->scenario.num_nodes, 5);
  EXPECT_DOUBLE_EQ(cli->scenario.duration_s, 45.0);
  EXPECT_EQ(cli->scenario.seed, 1u);
  EXPECT_TRUE(cli->scenario.monitor);
  EXPECT_TRUE(cli->monitor_strict);
  ASSERT_FALSE(cli->scenario.faults.empty());
  ASSERT_EQ(cli->scenario.faults.packet.size(), 1u);
  EXPECT_DOUBLE_EQ(cli->scenario.faults.packet[0].probability, 0.1);
  ASSERT_EQ(cli->scenario.faults.node_faults.size(), 1u);
  EXPECT_TRUE(cli->scenario.faults.node_faults[0].reference);
  EXPECT_DOUBLE_EQ(cli->scenario.faults.node_faults[0].at_s, 30.0);
}

TEST(ConfigRoundTrip, DisciplineStringBecomesDisciplineFlag) {
  const auto args = args_for(R"({"discipline": "rls"})", ConfigTool::kSim);
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[0], "--discipline");
  EXPECT_EQ(args[1], "rls");
  // Accepted by every tool (the live stack runs disciplines too).
  EXPECT_TRUE(has_flag(args_for(R"({"discipline": "rls"})", ConfigTool::kNode),
                       "--discipline"));
  EXPECT_TRUE(has_flag(
      args_for(R"({"discipline": "rls"})", ConfigTool::kSwarm),
      "--discipline"));
}

TEST(ConfigRoundTrip, DisciplineObjectRoundTripsIntoScenario) {
  const auto args = args_for(
      R"({"discipline": {"name": "rls", "window": 24, "forgetting": 0.9,
                         "innovation-gate": 120, "span": 8}})",
      ConfigTool::kSim);
  ASSERT_TRUE(has_flag(args, "--discipline-params"));
  std::string error;
  const auto cli = parse_cli(args, &error);
  ASSERT_TRUE(cli.has_value()) << error;
  EXPECT_EQ(cli->scenario.sstsp.discipline.name, "rls");
  EXPECT_EQ(cli->scenario.sstsp.discipline.window_bps, 24);
  EXPECT_DOUBLE_EQ(cli->scenario.sstsp.discipline.forgetting, 0.9);
  EXPECT_DOUBLE_EQ(cli->scenario.sstsp.discipline.innovation_gate_us, 120.0);
  EXPECT_EQ(cli->scenario.sstsp.solver_span_bps, 8);
}

TEST(ConfigRoundTrip, DisciplineUnknownNestedKeyNamesPath) {
  const std::string json =
      "{\n  \"discipline\": {\n  \"name\": \"rls\",\n  \"lambda\": 0.9\n}\n}";
  const auto root = obs::json::parse(json);
  ASSERT_TRUE(root.has_value());
  std::string error;
  EXPECT_FALSE(config_to_args(*root, ConfigTool::kSim, &error).has_value());
  EXPECT_NE(error.find("discipline.lambda"), std::string::npos) << error;
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
}

TEST(ConfigRoundTrip, ClockModelRoundTripsIntoScenario) {
  const auto args = args_for(
      R"({"clock-model": {"kind": "temp-ramp", "period": 0.5,
                          "ramp-ppm-per-s": 1.5, "ramp-start": 10}})",
      ConfigTool::kSim);
  std::string error;
  const auto cli = parse_cli(args, &error);
  ASSERT_TRUE(cli.has_value()) << error;
  EXPECT_EQ(cli->scenario.clock_stress.kind, clk::DriftStressKind::kTempRamp);
  EXPECT_DOUBLE_EQ(cli->scenario.clock_stress.period_s, 0.5);
  EXPECT_DOUBLE_EQ(cli->scenario.clock_stress.ramp_ppm_per_s, 1.5);
  EXPECT_DOUBLE_EQ(cli->scenario.clock_stress.ramp_start_s, 10.0);
  EXPECT_TRUE(cli->scenario.clock_stress.enabled());

  // Sim-only: node and swarm skip it rather than reject it.
  EXPECT_TRUE(
      args_for(R"({"clock-model": "aging"})", ConfigTool::kNode).empty());
  EXPECT_TRUE(
      args_for(R"({"clock-model": "aging"})", ConfigTool::kSwarm).empty());
}

TEST(ConfigRoundTrip, ClockModelUnknownKindAndKeyAreErrors) {
  std::string error;
  const auto bad_kind = obs::json::parse(R"({"clock-model": "quartz-fire"})");
  ASSERT_TRUE(bad_kind.has_value());
  EXPECT_FALSE(
      config_to_args(*bad_kind, ConfigTool::kSim, &error).has_value());
  EXPECT_NE(error.find("quartz-fire"), std::string::npos) << error;

  const auto bad_key =
      obs::json::parse(R"({"clock-model": {"kind": "aging", "rate": 1}})");
  ASSERT_TRUE(bad_key.has_value());
  EXPECT_FALSE(
      config_to_args(*bad_key, ConfigTool::kSim, &error).has_value());
  EXPECT_NE(error.find("clock-model.rate"), std::string::npos) << error;
}

TEST(ConfigRoundTrip, DumpParseDumpIsAFixpoint) {
  const auto root = obs::json::parse(kUniversalConfig);
  ASSERT_TRUE(root.has_value());
  const std::string once = obs::json::dump(*root);
  const auto again = obs::json::parse(once);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(obs::json::dump(*again), once);
}

}  // namespace
}  // namespace sstsp::run
