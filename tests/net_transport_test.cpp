// UdpTransport + Reactor smoke test over real localhost sockets: a pair of
// endpoints exchanges one codec envelope, the kernel rx timestamp surfaces
// as a non-negative RxMeta lateness, and the tx warm-up probe stays
// invisible to the wire accounting on both sides.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mac/frame.h"
#include "mac/wire.h"
#include "net/codec.h"
#include "net/reactor.h"
#include "net/udp.h"
#include "sim/simulator.h"

namespace sstsp::net {
namespace {

mac::Frame sample_frame(mac::NodeId sender) {
  mac::Frame f;
  f.sender = sender;
  f.air_bytes = mac::kTsfWireBytes;
  f.trace_id = 7;
  f.body = mac::TsfBeaconBody{123456};
  return f;
}

struct Captured {
  std::vector<std::uint8_t> bytes;
  RxMeta meta;
};

TEST(NetTransport, UdpPairDeliversWithLatenessMetadata) {
  sim::Simulator sim(1);
  Reactor reactor(sim);

  UdpConfig config;
  config.bind_address = "127.0.0.1";
  std::string error;
  auto a = UdpTransport::open(reactor, config, &error);
  ASSERT_NE(a, nullptr) << error;
  auto b = UdpTransport::open(reactor, config, &error);
  ASSERT_NE(b, nullptr) << error;
  ASSERT_TRUE(a->set_peers({{"127.0.0.1", b->local_port()}}, &error))
      << error;

  std::vector<Captured> at_b;
  b->set_rx_handler(
      [&at_b](std::span<const std::uint8_t> bytes, const RxMeta& meta) {
        at_b.push_back(Captured{{bytes.begin(), bytes.end()}, meta});
      });
  std::vector<Captured> at_a;
  a->set_rx_handler(
      [&at_a](std::span<const std::uint8_t> bytes, const RxMeta& meta) {
        at_a.push_back(Captured{{bytes.begin(), bytes.end()}, meta});
      });

  const std::vector<std::uint8_t> datagram =
      encode_datagram(sample_frame(0));
  reactor.anchor(sim.now());
  sim.at(sim::SimTime::from_us(1000), [&] {
    TxMeta meta;
    meta.has_schedule = true;
    meta.scheduled = sim.now();
    EXPECT_TRUE(a->send(datagram, meta));
  });
  // ~30 ms of wall clock: plenty for one loopback round trip.
  reactor.run_until(sim::SimTime::from_us(30'000));

  ASSERT_EQ(at_b.size(), 1u);
  const DecodeOutcome out = decode_datagram(at_b.front().bytes);
  ASSERT_TRUE(out.ok()) << to_string(out.error);
  EXPECT_EQ(out.frame->sender, 0);
  EXPECT_EQ(out.frame->tsf().timestamp_us, 123456);
  // The wall-paced transport re-stamped the envelope: dispatch lateness is
  // whatever the scheduler cost, but never negative; same for the kernel
  // receive timestamp delta.
  EXPECT_GE(at_b.front().meta.rx_lateness_ns, 0);

  // The 0-byte warm-up probe A sent itself is a timing artifact, not
  // traffic: no rx callback, no counter movement on either side.
  EXPECT_TRUE(at_a.empty());
  EXPECT_EQ(a->stats().datagrams_received, 0u);
  EXPECT_EQ(a->stats().datagrams_sent, 1u);
  EXPECT_EQ(a->stats().bytes_sent, datagram.size());
  EXPECT_EQ(a->stats().send_errors, 0u);
  EXPECT_EQ(b->stats().datagrams_received, 1u);
  EXPECT_EQ(b->stats().bytes_received, datagram.size());
}

TEST(NetTransport, WallSimNowFallsBackToSimTimeWhenUnanchored) {
  sim::Simulator sim(1);
  Reactor reactor(sim);
  // Before anchor(), the reactor has no wall mapping; the simulator's own
  // clock is the only timeline (LoopbackTransport relies on this).
  EXPECT_EQ(reactor.wall_sim_now(), sim.now());
}

TEST(NetTransport, RejectsUnparsableAddresses) {
  sim::Simulator sim(1);
  Reactor reactor(sim);

  UdpConfig bad_bind;
  bad_bind.bind_address = "not-an-address";
  std::string error;
  EXPECT_EQ(UdpTransport::open(reactor, bad_bind, &error), nullptr);
  EXPECT_FALSE(error.empty());

  UdpConfig good;
  good.bind_address = "127.0.0.1";
  auto t = UdpTransport::open(reactor, good, &error);
  ASSERT_NE(t, nullptr) << error;
  EXPECT_FALSE(t->set_peers({{"999.0.0.bad", 1}}, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_NE(t->local_port(), 0);
  EXPECT_NE(t->describe().find("udp:"), std::string::npos);
}

}  // namespace
}  // namespace sstsp::net
