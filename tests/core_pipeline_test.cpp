#include "core/beacon_security.h"

#include <gtest/gtest.h>

#include "crypto/hash_chain.h"

namespace sstsp::core {
namespace {

constexpr double kBpUs = 1e5;
constexpr mac::NodeId kSender = 7;

struct Fixture {
  crypto::ChainParams chain{crypto::derive_seed(1, kSender), 64};
  crypto::MuTeslaSchedule schedule{0.0, kBpUs, 64};
  BeaconSigner signer{chain, schedule};
  SenderPipeline pipeline{chain.anchor(), schedule};

  mac::SstspBeaconBody beacon(std::int64_t j) {
    return signer.sign(j, static_cast<std::int64_t>(j * kBpUs), kSender);
  }

  PipelineResult feed(const mac::SstspBeaconBody& b) {
    return pipeline.ingest(b, kSender, static_cast<double>(b.interval) * kBpUs,
                           static_cast<double>(b.timestamp_us) + 40.0);
  }
};

TEST(SenderPipeline, FirstBeaconBuffersWithoutAuth) {
  Fixture fx;
  const auto r = fx.feed(fx.beacon(1));
  EXPECT_TRUE(r.key_valid);  // j == 1: nothing useful disclosed
  EXPECT_FALSE(r.authenticated.has_value());
  EXPECT_FALSE(r.mac_failed);
}

TEST(SenderPipeline, SecondBeaconAuthenticatesFirst) {
  Fixture fx;
  (void)fx.feed(fx.beacon(1));
  const auto r = fx.feed(fx.beacon(2));
  EXPECT_TRUE(r.key_valid);
  ASSERT_TRUE(r.authenticated.has_value());
  EXPECT_EQ(r.authenticated->interval, 1);
  EXPECT_NEAR(r.authenticated->ts_est_us, 1 * kBpUs + 40.0, 1e-9);
}

TEST(SenderPipeline, SteadyStreamAuthenticatesEachPredecessor) {
  Fixture fx;
  (void)fx.feed(fx.beacon(1));
  for (std::int64_t j = 2; j <= 20; ++j) {
    const auto r = fx.feed(fx.beacon(j));
    EXPECT_TRUE(r.key_valid) << j;
    ASSERT_TRUE(r.authenticated.has_value()) << j;
    EXPECT_EQ(r.authenticated->interval, j - 1);
  }
}

TEST(SenderPipeline, GapDoesNotOrphanStoredBeacon) {
  Fixture fx;
  (void)fx.feed(fx.beacon(1));
  (void)fx.feed(fx.beacon(2));
  // Beacon 3 lost.  Beacon 4's disclosure K_3 hash-derives K_2, so the
  // stored interval-2 beacon still authenticates despite the gap.
  const auto r4 = fx.feed(fx.beacon(4));
  EXPECT_TRUE(r4.key_valid);
  ASSERT_TRUE(r4.authenticated.has_value());
  EXPECT_EQ(r4.authenticated->interval, 2);
  // Beacon 5 authenticates 4 normally.
  const auto r5 = fx.feed(fx.beacon(5));
  ASSERT_TRUE(r5.authenticated.has_value());
  EXPECT_EQ(r5.authenticated->interval, 4);
}

TEST(SenderPipeline, StaleStoredBeaconIsPurgedNotAuthenticated) {
  Fixture fx;
  (void)fx.feed(fx.beacon(1));
  (void)fx.feed(fx.beacon(2));
  // A sender heard again only after a long silence: the stored interval-2
  // beacon's timestamp belongs to a long-gone clock epoch, so it must be
  // discarded rather than handed to the solver as a fresh sample.
  const auto r = fx.feed(fx.beacon(30));
  EXPECT_TRUE(r.key_valid);
  EXPECT_FALSE(r.authenticated.has_value());
  EXPECT_FALSE(r.mac_failed);
  // The post-silence beacon itself re-seeds the buffer normally.
  const auto r31 = fx.feed(fx.beacon(31));
  ASSERT_TRUE(r31.authenticated.has_value());
  EXPECT_EQ(r31.authenticated->interval, 30);
}

TEST(SenderPipeline, TamperedStoredBeaconFailsMac) {
  Fixture fx;
  auto b1 = fx.beacon(1);
  b1.timestamp_us += 50;  // attacker shifted the stored beacon's timestamp
  (void)fx.feed(b1);
  const auto r = fx.feed(fx.beacon(2));
  EXPECT_TRUE(r.key_valid);
  EXPECT_FALSE(r.authenticated.has_value());
  EXPECT_TRUE(r.mac_failed);
}

TEST(SenderPipeline, ForgedDisclosedKeyRejected) {
  Fixture fx;
  (void)fx.feed(fx.beacon(1));
  auto b2 = fx.beacon(2);
  b2.disclosed_key[3] ^= 0xFF;
  const auto r = fx.feed(b2);
  EXPECT_FALSE(r.key_valid);
  EXPECT_FALSE(r.authenticated.has_value());
}

TEST(SenderPipeline, WrongSenderIdentityFailsMac) {
  Fixture fx;
  (void)fx.feed(fx.beacon(1));
  // Verify against a different claimed sender: the MAC covers the sender id
  // through the serialized body.
  auto b2 = fx.beacon(2);
  const auto r = fx.pipeline.ingest(b2, /*sender=*/kSender + 1,
                                    2 * kBpUs, 2 * kBpUs + 40.0);
  // Key still chains to the anchor (same chain), but beacon 1's MAC check
  // re-serializes with the wrong sender and fails.
  EXPECT_TRUE(r.key_valid);
  EXPECT_TRUE(r.mac_failed);
  EXPECT_FALSE(r.authenticated.has_value());
}

TEST(SenderPipeline, ReplayedOldIntervalDoesNotRewind) {
  Fixture fx;
  for (std::int64_t j = 1; j <= 5; ++j) (void)fx.feed(fx.beacon(j));
  // Replaying interval 3's beacon: its disclosed key (K_2) is stale.
  const auto r = fx.feed(fx.beacon(3));
  EXPECT_FALSE(r.key_valid);
}

TEST(BeaconSigner, ProducesVerifiableFrames) {
  Fixture fx;
  const auto body = fx.beacon(10);
  EXPECT_EQ(body.interval, 10);
  const auto bytes =
      mac::serialize_unsecured_beacon(body.timestamp_us, kSender);
  crypto::MuTeslaSigner signer(fx.chain, fx.schedule);
  EXPECT_TRUE(crypto::MuTeslaVerifier::verify_mac(
      signer.key_for_interval(10), 10,
      std::span<const std::uint8_t>(bytes.data(), bytes.size()), body.mac));
  EXPECT_EQ(body.disclosed_key, signer.disclosed_key(10));
}

TEST(SerializeBeacon, EncodesTimestampSenderAndLevel) {
  const auto a = mac::serialize_unsecured_beacon(1234567, 1);
  const auto b = mac::serialize_unsecured_beacon(1234567, 2);
  const auto c = mac::serialize_unsecured_beacon(1234568, 1);
  const auto d = mac::serialize_unsecured_beacon(1234567, 1, /*level=*/3);
  EXPECT_EQ(a.size(), 13u);  // 8 B timestamp + 4 B sender + 1 B level
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

}  // namespace
}  // namespace sstsp::core
