#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.h"

namespace sstsp::sim {
namespace {

using namespace sstsp::sim::literals;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30_us, [&] { fired.push_back(3); });
  q.schedule(10_us, [&] { fired.push_back(1); });
  q.schedule(20_us, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongSimultaneous) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_us, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1_us, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelReturnsFalseForUnknownOrFired) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
  const EventId id = q.schedule(1_us, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));  // already fired
}

TEST(EventQueue, DoubleCancelRejected) {
  EventQueue q;
  const EventId id = q.schedule(1_us, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId early = q.schedule(1_us, [] {});
  q.schedule(9_us, [] {});
  EXPECT_EQ(q.next_time(), 1_us);
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 9_us);
}

TEST(EventQueue, NextTimeEmpty) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::never());
  const EventId id = q.schedule(1_us, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), SimTime::never());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1_us, [] {});
  q.schedule(2_us, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopSkipsCancelledEntries) {
  EventQueue q;
  std::vector<int> fired;
  const EventId a = q.schedule(1_us, [&] { fired.push_back(1); });
  q.schedule(2_us, [&] { fired.push_back(2); });
  const EventId c = q.schedule(3_us, [&] { fired.push_back(3); });
  q.schedule(4_us, [&] { fired.push_back(4); });
  q.cancel(a);
  q.cancel(c);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{2, 4}));
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::uint64_t mix = 42;
  std::vector<std::int64_t> times;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<std::int64_t>(splitmix64(mix) % 1'000'000);
    times.push_back(t);
    q.schedule(SimTime::from_ps(t), [] {});
  }
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GE(f.time, prev);
    prev = f.time;
  }
}

}  // namespace
}  // namespace sstsp::sim
