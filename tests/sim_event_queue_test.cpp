#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace sstsp::sim {
namespace {

using namespace sstsp::sim::literals;

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30_us, [&] { fired.push_back(3); });
  q.schedule(10_us, [&] { fired.push_back(1); });
  q.schedule(20_us, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongSimultaneous) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5_us, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1_us, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelReturnsFalseForUnknownOrFired) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(0));
  EXPECT_FALSE(q.cancel(12345));
  const EventId id = q.schedule(1_us, [] {});
  q.pop().fn();
  EXPECT_FALSE(q.cancel(id));  // already fired
}

TEST(EventQueue, DoubleCancelRejected) {
  EventQueue q;
  const EventId id = q.schedule(1_us, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, NextTimeSkipsCancelledHead) {
  EventQueue q;
  const EventId early = q.schedule(1_us, [] {});
  q.schedule(9_us, [] {});
  EXPECT_EQ(q.next_time(), 1_us);
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 9_us);
}

TEST(EventQueue, NextTimeEmpty) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), SimTime::never());
  const EventId id = q.schedule(1_us, [] {});
  q.cancel(id);
  EXPECT_EQ(q.next_time(), SimTime::never());
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1_us, [] {});
  q.schedule(2_us, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopSkipsCancelledEntries) {
  EventQueue q;
  std::vector<int> fired;
  const EventId a = q.schedule(1_us, [&] { fired.push_back(1); });
  q.schedule(2_us, [&] { fired.push_back(2); });
  const EventId c = q.schedule(3_us, [&] { fired.push_back(3); });
  q.schedule(4_us, [&] { fired.push_back(4); });
  q.cancel(a);
  q.cancel(c);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{2, 4}));
}

// Randomized stress against a reference model: a plain vector of live
// (time, seq) pairs where pop's expected victim is the (time, seq)-minimum.
// Exercises slot reuse, generation checks, tombstone compaction and
// next_time() under heavy interleaved schedule/cancel/pop traffic.
TEST(EventQueue, RandomizedModelCheck) {
  EventQueue q;
  struct Ref {
    std::int64_t time_ps;
    std::uint64_t seq;
    EventId id;
  };
  std::vector<Ref> live;
  std::vector<std::uint64_t> fired;
  std::uint64_t mix = 2006;
  std::uint64_t next_seq = 0;

  const auto reference_min = [&live] {
    return std::min_element(live.begin(), live.end(),
                            [](const Ref& a, const Ref& b) {
                              return a.time_ps != b.time_ps
                                         ? a.time_ps < b.time_ps
                                         : a.seq < b.seq;
                            });
  };

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t op = splitmix64(mix) % 100;
    if (op < 55 || live.empty()) {
      // Times drawn from a tiny range so FIFO tie-breaking is constantly
      // exercised.
      const auto t = static_cast<std::int64_t>(splitmix64(mix) % 997);
      const std::uint64_t seq = next_seq++;
      const EventId id =
          q.schedule(SimTime::from_ps(t), [&fired, seq] { fired.push_back(seq); });
      live.push_back(Ref{t, seq, id});
    } else if (op < 80) {
      const auto pick = splitmix64(mix) % live.size();
      ASSERT_TRUE(q.cancel(live[pick].id));
      ASSERT_FALSE(q.cancel(live[pick].id));  // tombstoned, not reusable
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const auto best = reference_min();
      ASSERT_EQ(q.next_time(), SimTime::from_ps(best->time_ps));
      auto f = q.pop();
      ASSERT_EQ(f.time, SimTime::from_ps(best->time_ps));
      f.fn();
      ASSERT_EQ(fired.back(), best->seq);  // exact event, not just same time
      ASSERT_FALSE(q.cancel(best->id));    // fired ids never cancel
      live.erase(best);
    }
    ASSERT_EQ(q.size(), live.size());
    ASSERT_EQ(q.empty(), live.empty());
  }

  // Drain; the remainder must come out in exact (time, seq) order.
  while (!live.empty()) {
    const auto best = reference_min();
    auto f = q.pop();
    ASSERT_EQ(f.time, SimTime::from_ps(best->time_ps));
    f.fn();
    ASSERT_EQ(fired.back(), best->seq);
    live.erase(best);
  }
  ASSERT_TRUE(q.empty());
  ASSERT_EQ(q.next_time(), SimTime::never());
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::uint64_t mix = 42;
  std::vector<std::int64_t> times;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<std::int64_t>(splitmix64(mix) % 1'000'000);
    times.push_back(t);
    q.schedule(SimTime::from_ps(t), [] {});
  }
  SimTime prev = SimTime::zero();
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GE(f.time, prev);
    prev = f.time;
  }
}

}  // namespace
}  // namespace sstsp::sim
