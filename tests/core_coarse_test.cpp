#include "core/coarse_sync.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace sstsp::core {
namespace {

SstspConfig cfg() {
  SstspConfig c;
  c.guard_coarse_us = 20000.0;
  return c;
}

TEST(CoarseSync, EmptyGivesNoEstimate) {
  const SstspConfig c = cfg();
  CoarseSync coarse(c);
  EXPECT_FALSE(coarse.estimate().has_value());
}

TEST(CoarseSync, AveragesCleanOffsets) {
  const SstspConfig c = cfg();
  CoarseSync coarse(c);
  for (const double o : {100.0, 104.0, 98.0, 102.0, 96.0}) {
    coarse.add_offset(o);
  }
  const auto est = coarse.estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 100.0, 1e-9);
}

TEST(CoarseSync, ThresholdRejectsFarOffsets) {
  SstspConfig c = cfg();
  c.coarse_use_gesd = false;
  CoarseSync coarse(c);
  coarse.add_offset(50.0);
  coarse.add_offset(55.0);
  coarse.add_offset(45.0);
  coarse.add_offset(1e6);  // replayed ancient beacon
  std::size_t rejected = 0;
  const auto est = coarse.estimate(&rejected);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 50.0, 1e-9);
  EXPECT_EQ(rejected, 1u);
}

TEST(CoarseSync, GesdCatchesSubtleBias) {
  // Offsets biased by ~10 guard-widths would pass the loose threshold
  // (20 ms) but are statistical outliers; GESD removes them first.
  SstspConfig c = cfg();
  c.coarse_use_gesd = true;
  CoarseSync coarse(c);
  sim::Rng rng(41);
  for (int i = 0; i < 10; ++i) coarse.add_offset(rng.uniform(95.0, 105.0));
  coarse.add_offset(5000.0);  // within coarse guard, still malicious
  std::size_t rejected = 0;
  const auto est = coarse.estimate(&rejected);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 100.0, 5.0);
  EXPECT_GE(rejected, 1u);
}

TEST(CoarseSync, WithoutGesdSubtleBiasLeaksThrough) {
  // The same scenario with GESD disabled: documents why the paper layers
  // the statistical filter on top of the threshold.
  SstspConfig c = cfg();
  c.coarse_use_gesd = false;
  CoarseSync coarse(c);
  sim::Rng rng(41);
  for (int i = 0; i < 10; ++i) coarse.add_offset(rng.uniform(95.0, 105.0));
  coarse.add_offset(5000.0);
  const auto est = coarse.estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(*est, 300.0);  // polluted mean
}

TEST(CoarseSync, ResetClearsSamples) {
  const SstspConfig c = cfg();
  CoarseSync coarse(c);
  coarse.add_offset(5.0);
  coarse.reset();
  EXPECT_EQ(coarse.samples(), 0u);
  EXPECT_FALSE(coarse.estimate().has_value());
}

TEST(CoarseSync, FewSamplesSkipGesd) {
  // GESD needs >= 5 samples; with 3 samples only the threshold applies.
  SstspConfig c = cfg();
  c.coarse_use_gesd = true;
  CoarseSync coarse(c);
  coarse.add_offset(10.0);
  coarse.add_offset(12.0);
  coarse.add_offset(11.0);
  const auto est = coarse.estimate();
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(*est, 11.0, 1e-9);
}

}  // namespace
}  // namespace sstsp::core
