#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace sstsp::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(-112.0, 112.0);
    ASSERT_GE(v, -112.0);
    ASSERT_LT(v, 112.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.uniform_int(0, 30);
    ASSERT_LE(v, 30u);
    seen.insert(v);
  }
  // Every slot of the beacon window must be reachable.
  EXPECT_EQ(seen.size(), 31u);
  EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(Rng, UniformIntUnbiasedMean) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.uniform_int(0, 9));
  }
  EXPECT_NEAR(sum / kN, 4.5, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 1'000'000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(1e-3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 1e-3, 3e-4);
}

TEST(Rng, SubstreamsAreIndependentAndStable) {
  const Rng root(99);
  Rng s1 = root.substream("drift", 0);
  Rng s1_again = root.substream("drift", 0);
  Rng s2 = root.substream("drift", 1);
  Rng s3 = root.substream("slots", 0);

  // Stable: same (label, index) gives the identical stream.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1(), s1_again());

  // Distinct across index and label.
  Rng s1b = root.substream("drift", 0);
  int eq_idx = 0;
  int eq_label = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = s1b();
    if (v == s2()) ++eq_idx;
    if (v == s3()) ++eq_label;
  }
  EXPECT_LT(eq_idx, 3);
  EXPECT_LT(eq_label, 3);
}

TEST(Rng, SubstreamIndependentOfParentDrawOrder) {
  // Deriving substreams must not consume parent state.
  Rng parent(123);
  Rng before = parent.substream("x", 7);
  (void)parent();
  (void)parent();
  // state_ changed, so substream derivation would change too if it read
  // mutable state; the API takes const&, so this checks stream stability
  // for the same parent value instead.
  Rng parent2(123);
  Rng again = parent2.substream("x", 7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(before(), again());
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), a);
}

}  // namespace
}  // namespace sstsp::sim
