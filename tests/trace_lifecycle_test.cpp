// Causal beacon-lifecycle tracing: channel-assigned trace IDs thread each
// beacon's tx -> rx -> auth -> adjustment span, the JSONL export carries
// them, and trace::BeaconLifecycle turns them into per-stage latency
// histograms.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "obs/export.h"
#include "obs/json.h"
#include "runner/experiment.h"
#include "runner/network.h"
#include "trace/event_trace.h"
#include "trace/lifecycle.h"

namespace sstsp::trace {
namespace {

run::Scenario small_scenario() {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 8;
  s.duration_s = 10.0;
  s.seed = 42;
  s.sstsp.chain_length = 300;
  s.trace_capacity = 1 << 16;
  s.monitor = true;
  return s;
}

TEST(BeaconLifecycle, SpansThreadTxRxAuthAdjust) {
  run::Network net(small_scenario());
  net.run();
  ASSERT_NE(net.trace(), nullptr);
  const EventTrace& trace = *net.trace();

  // Every transmission gets a fresh nonzero channel-assigned ID.
  std::set<std::uint64_t> tx_ids;
  for (const auto& e : trace.by_kind(EventKind::kBeaconTx)) {
    EXPECT_NE(e.trace_id, 0u);
    EXPECT_TRUE(tx_ids.insert(e.trace_id).second) << "duplicate tx id";
  }
  ASSERT_GT(tx_ids.size(), 50u);

  // Receptions, deferred-auth successes and adjustments all point back at
  // a transmitted beacon.
  for (const auto kind :
       {EventKind::kBeaconRx, EventKind::kAuthOk, EventKind::kAdjustment}) {
    const auto events = trace.by_kind(kind);
    ASSERT_GT(events.size(), 50u) << to_string(kind);
    for (const auto& e : events) {
      EXPECT_TRUE(tx_ids.count(e.trace_id) == 1)
          << to_string(kind) << " event with unknown trace id "
          << e.trace_id;
    }
  }

  // µTESLA's deferred-auth shape: a beacon's rx happens ~at its tx, but its
  // auth-ok waits for the *next* interval's key — about one BP later.
  const auto auth = trace.by_kind(EventKind::kAuthOk);
  sim::SimTime tx_time{};
  for (const auto& e : trace.by_kind(EventKind::kBeaconTx)) {
    if (e.trace_id == auth.front().trace_id) tx_time = e.time;
  }
  const double lag_us = (auth.front().time - tx_time).to_us();
  EXPECT_GT(lag_us, 0.5e5);  // at least half a BP
  EXPECT_LT(lag_us, 3.0e5);  // within a few BPs
}

TEST(BeaconLifecycle, FunnelCountersAndLatencyHistograms) {
  run::Network net(small_scenario());
  net.run();
  const auto snap = net.metrics_registry().snapshot();

  auto counter = [&snap](std::string_view name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  auto histogram = [&snap](std::string_view name) -> obs::HistogramSnapshot {
    for (const auto& [n, v] : snap.histograms) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing histogram " << name;
    return {};
  };

  const auto traced = counter("beacon.traced");
  EXPECT_GT(traced, 50u);
  // One tx fans out to ~7 receivers; the funnel narrows monotonically
  // through authentication to adjustments.
  EXPECT_GT(counter("beacon.rx"), traced);
  EXPECT_GT(counter("beacon.auth_ok"), 0u);
  EXPECT_GE(counter("beacon.auth_ok"), counter("beacon.adjust"));

  // Propagation is microseconds; deferred auth is about one beacon period.
  const auto rx = histogram("beacon.tx_to_rx_us");
  ASSERT_GT(rx.count, 0u);
  EXPECT_LT(rx.max, 1000.0);
  const auto auth = histogram("beacon.tx_to_auth_us");
  ASSERT_GT(auth.count, 0u);
  EXPECT_GT(auth.p50, 0.5e5);
  EXPECT_LT(auth.p50, 3.0e5);
}

TEST(BeaconLifecycle, JsonlEventsCarryTraceIds) {
  std::ostringstream os;
  TraceEvent event;
  event.time = sim::SimTime::from_sec_double(1.5);
  event.node = 3;
  event.kind = EventKind::kBeaconRx;
  event.peer = 1;
  event.value_us = -4.25;
  event.trace_id = 77;
  obs::write_event_jsonl(os, event);
  const auto doc = obs::json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("trace_id"), nullptr);
  EXPECT_DOUBLE_EQ(doc->find("trace_id")->number, 77.0);

  // Events not tied to a beacon omit the key (like "peer").
  std::ostringstream os2;
  event.trace_id = 0;
  obs::write_event_jsonl(os2, event);
  const auto doc2 = obs::json::parse(os2.str());
  ASSERT_TRUE(doc2.has_value());
  EXPECT_EQ(doc2->find("trace_id"), nullptr);
}

TEST(BeaconLifecycle, EvictionKeepsCountersButDropsSpans) {
  obs::Registry registry;
  BeaconLifecycle lifecycle(registry, /*capacity=*/2);
  auto tx = [&lifecycle](std::uint64_t id, double t_s) {
    TraceEvent e;
    e.time = sim::SimTime::from_sec_double(t_s);
    e.node = 0;
    e.kind = EventKind::kBeaconTx;
    e.trace_id = id;
    lifecycle.on_event(e);
  };
  tx(1, 0.1);
  tx(2, 0.2);
  tx(3, 0.3);  // evicts id 1

  TraceEvent rx;
  rx.time = sim::SimTime::from_sec_double(0.4);
  rx.node = 1;
  rx.kind = EventKind::kBeaconRx;
  rx.trace_id = 1;  // evicted: counted, no latency sample
  lifecycle.on_event(rx);
  rx.trace_id = 3;
  lifecycle.on_event(rx);

  EXPECT_EQ(lifecycle.tracked(), 3u);
  EXPECT_EQ(registry.counter("beacon.rx").value(), 2u);
  EXPECT_EQ(registry.histogram("beacon.tx_to_rx_us").count(), 1u);
}

TEST(BeaconLifecycle, ZeroTraceIdEventsAreIgnored) {
  obs::Registry registry;
  BeaconLifecycle lifecycle(registry);
  TraceEvent e;
  e.kind = EventKind::kBeaconTx;
  e.trace_id = 0;  // e.g. a protocol without channel IDs attached
  lifecycle.on_event(e);
  EXPECT_EQ(lifecycle.tracked(), 0u);
  EXPECT_EQ(registry.counter("beacon.traced").value(), 0u);
}

}  // namespace
}  // namespace sstsp::trace
