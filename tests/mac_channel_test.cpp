#include "mac/channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/rng.h"
#include "sim/simulator.h"

namespace sstsp::mac {
namespace {

using sim::SimTime;
using namespace sstsp::sim::literals;

struct Receiver {
  std::vector<Frame> frames;
  std::vector<RxInfo> infos;

  Channel::RxHandler handler() {
    return [this](const Frame& f, const RxInfo& i) {
      frames.push_back(f);
      infos.push_back(i);
    };
  }
};

Frame tsf_frame(NodeId sender, std::int64_t ts) {
  Frame f;
  f.sender = sender;
  f.air_bytes = 56;
  f.body = TsfBeaconBody{ts};
  return f;
}

PhyParams no_loss_phy() {
  PhyParams phy;
  phy.packet_error_rate = 0.0;
  return phy;
}

TEST(Channel, DeliversToAllListenersExceptSender) {
  sim::Simulator sim(1);
  Channel ch(sim, no_loss_phy());
  Receiver r0;
  Receiver r1;
  Receiver r2;
  const auto s0 = ch.add_station({0, 0}, r0.handler());
  ch.add_station({10, 0}, r1.handler());
  ch.add_station({0, 20}, r2.handler());

  sim.at(1_ms, [&] { ch.transmit(s0, tsf_frame(0, 42), 36_us); });
  sim.run_until(1_sec);

  EXPECT_TRUE(r0.frames.empty());  // sender does not hear itself
  ASSERT_EQ(r1.frames.size(), 1u);
  ASSERT_EQ(r2.frames.size(), 1u);
  EXPECT_EQ(r1.frames[0].tsf().timestamp_us, 42);
  EXPECT_EQ(ch.stats().deliveries, 2u);
}

TEST(Channel, DeliveryTimingWindow) {
  sim::Simulator sim(2);
  PhyParams phy = no_loss_phy();
  Channel ch(sim, phy);
  Receiver rx;
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({30, 0}, rx.handler());

  const SimTime start = 1_ms;
  sim.at(start, [&] { ch.transmit(s0, tsf_frame(0, 1), 36_us); });
  sim.run_until(1_sec);

  ASSERT_EQ(rx.infos.size(), 1u);
  const SimTime prop = propagation_delay({0, 0}, {30, 0});
  const SimTime lo = start + 36_us + prop + phy.rx_latency_min;
  const SimTime hi = start + 36_us + prop + phy.rx_latency_max;
  EXPECT_GE(rx.infos[0].delivered, lo);
  EXPECT_LE(rx.infos[0].delivered, hi);
  EXPECT_EQ(rx.infos[0].tx_start, start);
}

TEST(Channel, NominalDelayCompensatesWithinEpsilon) {
  // |estimated delay - actual delay| must stay below the paper's 5 us bound.
  sim::Simulator sim(3);
  PhyParams phy = no_loss_phy();
  Channel ch(sim, phy);
  Receiver rx;
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({40, 0}, rx.handler());

  for (int i = 0; i < 200; ++i) {
    sim.at(SimTime::from_ms(i + 1), [&, i] {
      (void)i;
      ch.transmit(s0, tsf_frame(0, 0), 36_us);
    });
  }
  sim.run_until(1_sec);
  ASSERT_EQ(rx.infos.size(), 200u);
  for (const RxInfo& info : rx.infos) {
    const double actual_us = (info.delivered - info.tx_start).to_us();
    EXPECT_LT(std::abs(actual_us - info.nominal_delay_us), 5.0);
  }
}

TEST(Channel, OverlappingTransmissionsCollide) {
  sim::Simulator sim(4);
  Channel ch(sim, no_loss_phy());
  Receiver rx;
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto s1 = ch.add_station({5, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({10, 0}, rx.handler());

  sim.at(1_ms, [&] { ch.transmit(s0, tsf_frame(0, 1), 36_us); });
  sim.at(1_ms + 10_us, [&] { ch.transmit(s1, tsf_frame(1, 2), 36_us); });
  sim.run_until(1_sec);

  EXPECT_TRUE(rx.frames.empty());  // both corrupted
  EXPECT_EQ(ch.stats().collided_transmissions, 2u);
}

TEST(Channel, BackToBackTransmissionsDoNotCollide) {
  sim::Simulator sim(5);
  Channel ch(sim, no_loss_phy());
  Receiver rx;
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto s1 = ch.add_station({5, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({10, 0}, rx.handler());

  sim.at(1_ms, [&] { ch.transmit(s0, tsf_frame(0, 1), 36_us); });
  sim.at(1_ms + 40_us, [&] { ch.transmit(s1, tsf_frame(1, 2), 36_us); });
  sim.run_until(1_sec);

  EXPECT_EQ(rx.frames.size(), 2u);
  EXPECT_EQ(ch.stats().collided_transmissions, 0u);
}

TEST(Channel, OnlyOverlappingTransmissionsCollide) {
  sim::Simulator sim(6);
  Channel ch(sim, no_loss_phy());
  std::vector<std::size_t> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(ch.add_station({static_cast<double>(i), 0},
                                 Channel::RxHandler([](auto&&...) {})));
  }
  Receiver rx;
  ch.add_station({20, 0}, rx.handler());
  sim.at(1_ms, [&] { ch.transmit(ids[0], tsf_frame(0, 1), 36_us); });
  sim.at(1_ms + 5_us, [&] { ch.transmit(ids[1], tsf_frame(1, 2), 36_us); });
  sim.at(1_ms + 50_us, [&] { ch.transmit(ids[2], tsf_frame(2, 3), 36_us); });
  sim.run_until(1_sec);
  // First two overlap ([0, 36us] and [5us, 41us]) and collide; the third
  // starts at +50us, clear of both, and is delivered intact.
  EXPECT_EQ(ch.stats().collided_transmissions, 2u);
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].tsf().timestamp_us, 3);
}

TEST(Channel, PacketErrorRateDropsIndependently) {
  sim::Simulator sim(7);
  PhyParams phy = no_loss_phy();
  phy.packet_error_rate = 0.3;
  Channel ch(sim, phy);
  Receiver rx;
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({10, 0}, rx.handler());
  constexpr int kSends = 2000;
  for (int i = 0; i < kSends; ++i) {
    sim.at(SimTime::from_ms(1 + i), [&] {
      ch.transmit(s0, tsf_frame(0, 0), 36_us);
    });
  }
  sim.run_until(10_sec);
  const double rate = static_cast<double>(rx.frames.size()) / kSends;
  EXPECT_NEAR(rate, 0.7, 0.05);
  EXPECT_EQ(ch.stats().per_drops, kSends - rx.frames.size());
}

TEST(Channel, NotListeningReceivesNothingAndResumes) {
  sim::Simulator sim(8);
  Channel ch(sim, no_loss_phy());
  Receiver rx;
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto s1 = ch.add_station({10, 0}, rx.handler());
  ch.set_listening(s1, false);
  sim.at(1_ms, [&] { ch.transmit(s0, tsf_frame(0, 1), 36_us); });
  sim.at(10_ms, [&] { ch.set_listening(s1, true); });
  sim.at(20_ms, [&] { ch.transmit(s0, tsf_frame(0, 2), 36_us); });
  sim.run_until(1_sec);
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].tsf().timestamp_us, 2);
}

TEST(Channel, HalfDuplexSuppression) {
  sim::Simulator sim(9);
  Channel ch(sim, no_loss_phy());
  Receiver r0;
  Receiver r1;
  const auto s0 = ch.add_station({0, 0}, r0.handler());
  const auto s1 = ch.add_station({5, 0}, r1.handler());
  // Overlapping: both collide, and even aside from corruption neither may
  // hear the other while transmitting.
  sim.at(1_ms, [&] { ch.transmit(s0, tsf_frame(0, 1), 36_us); });
  sim.at(1_ms + 1_us, [&] { ch.transmit(s1, tsf_frame(1, 2), 36_us); });
  sim.run_until(1_sec);
  EXPECT_TRUE(r0.frames.empty());
  EXPECT_TRUE(r1.frames.empty());
}

TEST(Channel, CarrierSenseDetectionWindow) {
  sim::Simulator sim(10);
  PhyParams phy = no_loss_phy();
  Channel ch(sim, phy);
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto s1 = ch.add_station({3, 0}, Channel::RxHandler([](auto&&...) {}));

  const SimTime start = 1_ms;
  sim.at(start, [&] { ch.transmit(s0, tsf_frame(0, 1), 36_us); });
  sim.run_until(10_sec);

  const SimTime prop = propagation_delay({0, 0}, {3, 0});
  // Within CCA latency of tx start: undetectable.
  EXPECT_FALSE(ch.would_detect_busy(s1, start + prop + 2_us));
  // After CCA latency: busy.
  EXPECT_TRUE(ch.would_detect_busy(s1, start + prop + 5_us));
  // During the frame: busy.
  EXPECT_TRUE(ch.would_detect_busy(s1, start + 30_us));
  // Just after the frame, within the IFS guard: still busy.
  EXPECT_TRUE(ch.would_detect_busy(s1, start + 36_us + prop + 10_us));
  // Well after: idle.
  EXPECT_FALSE(ch.would_detect_busy(s1, start + 36_us + prop +
                                            phy.ifs_guard + 1_us));
}

TEST(Channel, BytesOnAirAccounting) {
  sim::Simulator sim(11);
  Channel ch(sim, no_loss_phy());
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({1, 0}, Channel::RxHandler([](auto&&...) {}));
  sim.at(1_ms, [&] { ch.transmit(s0, tsf_frame(0, 1), 36_us); });
  sim.run_until(1_sec);
  EXPECT_EQ(ch.stats().bytes_on_air, 56u);
  EXPECT_EQ(ch.stats().transmissions, 1u);
}

// The finite-range fast path (uniform grid over station positions) must
// select exactly the same receiver sets as the brute-force distance test at
// arbitrary random placements — including stations sitting on cell
// boundaries, duplicated positions, and ranges close to the cell size.
TEST(Channel, GridMatchesBruteForceAtRandomPlacements) {
  for (const double range_m : {40.0, 120.0, 350.0}) {
    sim::Simulator sim(13);
    PhyParams phy = no_loss_phy();
    phy.radio_range_m = range_m;
    Channel ch(sim, phy);

    std::uint64_t mix = 99;
    std::vector<Position> pos;
    std::deque<Receiver> rx;  // stable addresses for the handler captures
    constexpr int kStations = 60;
    for (int i = 0; i < kStations; ++i) {
      Position p;
      if (i == 7) {
        p = pos[3];  // exact duplicate: distance 0 must stay in range
      } else if (i == 11) {
        p = {range_m, 0.0};  // exactly range_m from any station at origin
      } else if (i == 12) {
        p = {0.0, 0.0};
      } else {
        p = {static_cast<double>(sim::splitmix64(mix) % 5000) / 10.0,
             static_cast<double>(sim::splitmix64(mix) % 5000) / 10.0};
      }
      pos.push_back(p);
      rx.emplace_back();
      ch.add_station(p, rx.back().handler());
    }

    // One transmission per station, spaced far apart so nothing collides.
    for (int i = 0; i < kStations; ++i) {
      sim.at(SimTime::from_ms(2 * (i + 1)),
             [&ch, i] { ch.transmit(static_cast<std::size_t>(i),
                                    tsf_frame(static_cast<NodeId>(i), i),
                                    36_us); });
    }
    sim.run_until(1_sec);

    for (int receiver = 0; receiver < kStations; ++receiver) {
      std::vector<int> expected;
      for (int sender = 0; sender < kStations; ++sender) {
        if (sender == receiver) continue;
        if (distance_m(pos[static_cast<std::size_t>(sender)],
                       pos[static_cast<std::size_t>(receiver)]) <= range_m) {
          expected.push_back(sender);
        }
      }
      std::vector<int> got;
      for (const Frame& f :
           rx[static_cast<std::size_t>(receiver)].frames) {
        got.push_back(static_cast<int>(f.tsf().timestamp_us));
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "range " << range_m << " receiver "
                               << receiver;
    }
  }
}

// Carrier sense must honor the same range cut-off as delivery.
TEST(Channel, FiniteRangeLimitsCarrierSense) {
  sim::Simulator sim(14);
  PhyParams phy = no_loss_phy();
  phy.radio_range_m = 100.0;
  Channel ch(sim, phy);
  const auto s0 = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto near = ch.add_station({50, 0},
                                   Channel::RxHandler([](auto&&...) {}));
  const auto far = ch.add_station({150, 0},
                                  Channel::RxHandler([](auto&&...) {}));
  sim.at(1_ms, [&] { ch.transmit(s0, tsf_frame(0, 1), 36_us); });
  sim.run_until(10_ms);
  EXPECT_TRUE(ch.would_detect_busy(near, 1_ms + 20_us));
  EXPECT_FALSE(ch.would_detect_busy(far, 1_ms + 20_us));
}

TEST(Propagation, SpeedOfLight) {
  EXPECT_NEAR(propagation_delay({0, 0}, {299.792458, 0}).to_us(), 1.0, 1e-9);
  EXPECT_EQ(propagation_delay({5, 5}, {5, 5}).ps, 0);
  EXPECT_NEAR(distance_m({0, 0}, {3, 4}), 5.0, 1e-12);
}

}  // namespace
}  // namespace sstsp::mac
