// Soak tests: everything enabled at once, asserting the global invariants
// that must survive any combination of features.
#include <gtest/gtest.h>

#include "core/sstsp.h"
#include "runner/experiment.h"
#include "runner/network.h"

namespace sstsp::run {
namespace {

TEST(Soak, EverythingOnAtOnce) {
  // 120 nodes, churn, reference departures, an internal attacker mid-run,
  // blacklisting armed, trace attached.
  Scenario s;
  s.protocol = ProtocolKind::kSstsp;
  s.num_nodes = 120;
  s.duration_s = 150.0;
  s.seed = 2027;
  s.sstsp.chain_length = 1800;
  s.sstsp.blacklist_threshold = 5;
  s.churn = ChurnSpec{40.0, 0.08, 15.0};
  s.reference_departures_s = {50.0, 110.0};
  s.attack = "internal-ref";
  s.sstsp_attack.start_s = 70.0;
  s.sstsp_attack.end_s = 100.0;
  s.sstsp_attack.skew_rate_us_per_s = 30.0;
  s.trace_capacity = 1 << 16;

  Network net(s);
  net.arm();

  // Invariant 1: every synchronized clock is strictly monotone with a
  // bounded rate, across every event in the scenario.
  std::vector<double> prev(net.station_count(), -1e18);
  for (int step = 1; step <= 1500; ++step) {
    net.run_until(0.1 * step);
    for (std::size_t i = 0; i + 1 < net.station_count(); ++i) {
      if (!net.station(i).awake()) {
        prev[i] = -1e18;  // clock state resets meaningfully on power cycles
        continue;
      }
      const double v =
          net.station(i).protocol().network_time_us(net.simulator().now());
      if (prev[i] > -1e17) {
        ASSERT_GT(v, prev[i]) << "station " << i << " step " << step;
        ASSERT_LT(v - prev[i], 100'000.0 * 1.01) << "station " << i;
      }
      prev[i] = v;
    }
  }

  // Invariant 2: the run ends synchronized.
  const auto diff = net.instant_max_diff_us();
  ASSERT_TRUE(diff.has_value());
  EXPECT_LT(*diff, kSyncThresholdUs);

  // Invariant 3: exactly one reference survives.
  int refs = 0;
  for (std::size_t i = 0; i + 1 < net.station_count(); ++i) {
    const auto* p = dynamic_cast<const core::Sstsp*>(&net.station(i).protocol());
    if (net.station(i).awake() &&
        p->state() == core::Sstsp::State::kReference) {
      ++refs;
    }
  }
  EXPECT_EQ(refs, 1);

  // Invariant 4: the honest network never blacklisted anybody (the smooth
  // attacker is followed, not rejected) and the µTESLA pipeline never saw
  // a forged key or MAC.
  const auto agg = net.honest_stats();
  EXPECT_EQ(agg.rejected_key, 0u);
  EXPECT_EQ(agg.rejected_mac, 0u);
}

TEST(Soak, RepeatedPowerCyclesStayCoherent) {
  // One node power-cycles every 8 s for the whole run: each return must go
  // through coarse rescan and re-integrate without destabilizing anyone.
  Scenario s;
  s.protocol = ProtocolKind::kSstsp;
  s.num_nodes = 15;
  s.duration_s = 100.0;
  s.seed = 6;
  s.sstsp.chain_length = 1300;
  Network net(s);
  net.arm();
  for (int cycle = 0; cycle < 10; ++cycle) {
    net.run_until(8.0 * cycle + 4.0);
    if (net.current_reference_index() != 14u) {  // don't cycle the reference
      net.station(14).power_off();
      net.run_until(8.0 * cycle + 6.0);
      net.station(14).power_on();
    }
  }
  net.run_until(100.0);
  const auto agg = net.honest_stats();
  EXPECT_GE(agg.coarse_steps, 5u);
  const auto diff = net.instant_max_diff_us();
  ASSERT_TRUE(diff.has_value());
  EXPECT_LT(*diff, kSyncThresholdUs);
}

}  // namespace
}  // namespace sstsp::run
