// Datagram wire codec (src/net/codec.h): exact round-trips over randomized
// frames, strict bounds-checked rejection of a malformed-input corpus, and
// in-place tx-lateness re-stamping.  Runs under ASan/UBSan in the sanitizer
// CI lane, so "rejects without UB" is machine-checked, not aspirational.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "crypto/hash_chain.h"
#include "mac/wire.h"
#include "net/codec.h"
#include "sim/rng.h"

namespace sstsp::net {
namespace {

crypto::Digest random_digest(sim::Rng& rng) {
  crypto::Digest d;
  for (auto& byte : d) {
    byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return d;
}

mac::Frame random_tsf(sim::Rng& rng) {
  mac::Frame f;
  f.sender = static_cast<mac::NodeId>(rng.uniform_int(0, 250));
  f.air_bytes = mac::kTsfWireBytes;
  f.trace_id = rng();
  f.body = mac::TsfBeaconBody{
      static_cast<std::int64_t>(rng.uniform_int(0, 1'000'000'000'000ULL))};
  return f;
}

mac::Frame random_sstsp(sim::Rng& rng) {
  mac::Frame f;
  f.sender = static_cast<mac::NodeId>(rng.uniform_int(0, 250));
  f.air_bytes = mac::kSstspWireBytes;
  f.trace_id = rng();
  mac::SstspBeaconBody b;
  b.timestamp_us =
      static_cast<std::int64_t>(rng.uniform_int(0, 1'000'000'000'000ULL));
  b.interval = static_cast<std::int64_t>(rng.uniform_int(0, 100'000));
  b.level = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
  b.disclosed_key = random_digest(rng);
  b.mac = crypto::truncate128(crypto::hash_once(random_digest(rng)));
  f.body = b;
  return f;
}

void expect_round_trip(const mac::Frame& f, std::uint64_t tx_lateness_ns) {
  const std::vector<std::uint8_t> bytes =
      encode_datagram(f, tx_lateness_ns);
  ASSERT_GE(bytes.size(), kEnvelopeHeaderBytes);
  const DecodeOutcome out = decode_datagram(bytes);
  ASSERT_TRUE(out.ok()) << to_string(out.error);
  ASSERT_TRUE(out.frame.has_value());
  EXPECT_EQ(out.frame->sender, f.sender);
  EXPECT_EQ(out.frame->trace_id, f.trace_id);
  EXPECT_EQ(out.tx_lateness_ns, tx_lateness_ns);
  ASSERT_EQ(out.frame->is_sstsp(), f.is_sstsp());
  if (f.is_sstsp()) {
    EXPECT_EQ(out.frame->sstsp().timestamp_us, f.sstsp().timestamp_us);
    EXPECT_EQ(out.frame->sstsp().interval, f.sstsp().interval);
    EXPECT_EQ(out.frame->sstsp().level, f.sstsp().level);
    EXPECT_EQ(out.frame->sstsp().mac, f.sstsp().mac);
    EXPECT_EQ(out.frame->sstsp().disclosed_key, f.sstsp().disclosed_key);
  } else {
    EXPECT_EQ(out.frame->tsf().timestamp_us, f.tsf().timestamp_us);
  }
}

TEST(NetCodec, RoundTripRandomizedFrames) {
  sim::Rng rng(2024);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t lateness = rng.uniform_int(0, 5'000'000);
    expect_round_trip(rng.bernoulli(0.5) ? random_sstsp(rng)
                                         : random_tsf(rng),
                      lateness);
  }
}

TEST(NetCodec, EnvelopeLayout) {
  sim::Rng rng(1);
  const std::vector<std::uint8_t> bytes = encode_datagram(random_sstsp(rng));
  ASSERT_EQ(bytes.size(), kEnvelopeHeaderBytes + mac::kSstspWireBytes);
  EXPECT_EQ(bytes[0], 'S');
  EXPECT_EQ(bytes[1], 'S');
  EXPECT_EQ(bytes[2], 'W');
  EXPECT_EQ(bytes[3], 'P');
  EXPECT_EQ(bytes[4], kCodecVersion);
  EXPECT_EQ(bytes[5], 0x00);
  // Payload length is little-endian at offset 6.
  EXPECT_EQ(bytes[6], mac::kSstspWireBytes);
  EXPECT_EQ(bytes[7], 0x00);
}

TEST(NetCodec, RejectsTruncatedAtEveryHeaderLength) {
  sim::Rng rng(7);
  const std::vector<std::uint8_t> whole = encode_datagram(random_tsf(rng));
  for (std::size_t len = 0; len < kEnvelopeHeaderBytes; ++len) {
    const DecodeOutcome out = decode_datagram(
        std::span<const std::uint8_t>(whole.data(), len));
    EXPECT_EQ(out.error, DecodeError::kTruncated) << "len=" << len;
    EXPECT_FALSE(out.frame.has_value());
  }
}

TEST(NetCodec, RejectsBadMagicVersionFlags) {
  sim::Rng rng(8);
  const std::vector<std::uint8_t> good = encode_datagram(random_sstsp(rng));
  for (std::size_t i = 0; i < 4; ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0xFF;
    EXPECT_EQ(decode_datagram(bad).error, DecodeError::kBadMagic) << i;
  }
  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] = kCodecVersion + 1;
  EXPECT_EQ(decode_datagram(bad_version).error, DecodeError::kBadVersion);
  std::vector<std::uint8_t> bad_flags = good;
  bad_flags[5] = 0x01;
  EXPECT_EQ(decode_datagram(bad_flags).error, DecodeError::kBadFlags);
}

TEST(NetCodec, RejectsOversizedLengthPrefixWithoutReading) {
  sim::Rng rng(9);
  std::vector<std::uint8_t> bad = encode_datagram(random_tsf(rng));
  // Claim a payload far beyond the cap; the decoder must reject on the
  // prefix alone even though no such bytes exist to read.
  const std::uint16_t huge = kMaxPayloadBytes + 1;
  bad[6] = static_cast<std::uint8_t>(huge);
  bad[7] = static_cast<std::uint8_t>(huge >> 8);
  EXPECT_EQ(decode_datagram(bad).error, DecodeError::kOversizedLength);
}

TEST(NetCodec, RejectsLengthMismatchBothWays) {
  sim::Rng rng(10);
  const std::vector<std::uint8_t> good = encode_datagram(random_sstsp(rng));
  // Short: datagram cut mid-payload.
  std::vector<std::uint8_t> cut(good.begin(), good.end() - 1);
  EXPECT_EQ(decode_datagram(cut).error, DecodeError::kLengthMismatch);
  // Long: trailing garbage past the declared payload.
  std::vector<std::uint8_t> padded = good;
  padded.push_back(0xAA);
  EXPECT_EQ(decode_datagram(padded).error, DecodeError::kLengthMismatch);
  // Prefix understates the payload actually present.
  std::vector<std::uint8_t> lying = good;
  lying[6] -= 1;
  EXPECT_EQ(decode_datagram(lying).error, DecodeError::kLengthMismatch);
}

TEST(NetCodec, RejectsBadPayload) {
  sim::Rng rng(11);
  std::vector<std::uint8_t> bad = encode_datagram(random_sstsp(rng));
  // Corrupt the mac::wire magic inside the payload; envelope stays valid.
  bad[kEnvelopeHeaderBytes + 24] ^= 0xFF;
  EXPECT_EQ(decode_datagram(bad).error, DecodeError::kBadPayload);
}

TEST(NetCodec, FuzzNeverCrashes) {
  // Pure garbage of every small size plus bit-flipped valid datagrams:
  // every outcome must be a clean DecodeError (ASan/UBSan police the
  // "no out-of-bounds read" half of the contract).
  sim::Rng rng(12);
  for (std::size_t len = 0; len < 200; ++len) {
    std::vector<std::uint8_t> junk(len);
    for (auto& byte : junk) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)decode_datagram(junk);
  }
  const std::vector<std::uint8_t> good = encode_datagram(random_sstsp(rng));
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> mutated = good;
    const std::size_t at = rng.uniform_int(0, mutated.size() - 1);
    mutated[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    const DecodeOutcome out = decode_datagram(mutated);
    if (out.ok()) {
      // A flip outside the integrity-relevant envelope fields may still
      // decode; that is fine — µTESLA verification is the integrity layer.
      EXPECT_TRUE(out.frame.has_value());
    }
  }
}

TEST(NetCodec, PatchTxLatenessInPlace) {
  sim::Rng rng(13);
  std::vector<std::uint8_t> bytes = encode_datagram(random_tsf(rng), 111);
  patch_tx_lateness(bytes, 424242);
  const DecodeOutcome out = decode_datagram(bytes);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.tx_lateness_ns, 424242u);
  // No-op on anything shorter than the envelope header.
  std::vector<std::uint8_t> tiny(kEnvelopeHeaderBytes - 1, 0x55);
  patch_tx_lateness(tiny, 99);
  for (const std::uint8_t byte : tiny) EXPECT_EQ(byte, 0x55);
}

}  // namespace
}  // namespace sstsp::net
