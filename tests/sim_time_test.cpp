#include "sim/time_types.h"

#include <gtest/gtest.h>

namespace sstsp::sim {
namespace {

using namespace sstsp::sim::literals;

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(SimTime::from_us(5).ps, 5'000'000);
  EXPECT_EQ(SimTime::from_ms(3).ps, 3'000'000'000);
  EXPECT_EQ(SimTime::from_sec(2).ps, 2'000'000'000'000);
  EXPECT_EQ(SimTime::from_ns(7).ps, 7'000);
  EXPECT_DOUBLE_EQ(SimTime::from_us(123).to_us(), 123.0);
  EXPECT_DOUBLE_EQ(SimTime::from_sec(1000).to_sec(), 1000.0);
}

TEST(SimTime, FromDoubleRounds) {
  EXPECT_EQ(SimTime::from_us_double(1.4999994).ps, 1'499'999);
  EXPECT_EQ(SimTime::from_us_double(2.0000001).ps, 2'000'000);
  EXPECT_EQ(SimTime::from_sec_double(0.5).ps, 500'000'000'000);
  EXPECT_EQ(SimTime::from_us_double(-3.25).ps, -3'250'000);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = 100_us;
  const SimTime b = 40_us;
  EXPECT_EQ((a + b).ps, SimTime::from_us(140).ps);
  EXPECT_EQ((a - b).ps, SimTime::from_us(60).ps);
  EXPECT_EQ((a * 3).ps, SimTime::from_us(300).ps);
  EXPECT_EQ((3 * a).ps, SimTime::from_us(300).ps);
  SimTime c = a;
  c += b;
  EXPECT_EQ(c, 140_us);
  c -= 100_us;
  EXPECT_EQ(c, 40_us);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_LE(2_us, 2_us);
  EXPECT_GT(1_ms, 999_us);
  EXPECT_EQ(1_sec, 1000_ms);
  EXPECT_LT(SimTime::zero(), SimTime::never());
}

TEST(SimTime, FloorToMicroseconds) {
  EXPECT_EQ(SimTime::from_ps(1'999'999).to_us_floor(), 1);
  EXPECT_EQ(SimTime::from_ps(2'000'000).to_us_floor(), 2);
  EXPECT_EQ(SimTime::from_ps(-1).to_us_floor(), -1);  // floor, not trunc
  EXPECT_EQ(SimTime::from_ps(-2'000'000).to_us_floor(), -2);
  EXPECT_EQ(SimTime::from_ps(-2'000'001).to_us_floor(), -3);
}

TEST(SimTime, CoversExperimentHorizon) {
  // 1000 s experiments must be far from overflow.
  const SimTime horizon = SimTime::from_sec(1000);
  EXPECT_LT(horizon * 1000, SimTime::never());
}

}  // namespace
}  // namespace sstsp::sim
