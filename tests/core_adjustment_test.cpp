#include "core/adjustment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace sstsp::core {
namespace {

constexpr double kBpUs = 1e5;

SstspConfig cfg() { return SstspConfig{}; }

struct SolveInputs {
  ClockParams prev;
  double t_now;
  RefSample newest;
  RefSample older;
  double target;
};

/// Random-but-physical inputs: a local clock with drift f observing a
/// reference that emits every BP, with the node slightly out of sync.
SolveInputs random_inputs(sim::Rng& rng) {
  const double f = 1.0 + rng.uniform(-100.0, 100.0) * 1e-6;
  const double base_ts = 1e6 + rng.uniform(0.0, 1e6);
  SolveInputs in;
  in.older = RefSample{f * base_ts + rng.uniform(-50, 50),
                       base_ts};
  in.newest = RefSample{in.older.t_local_us + f * kBpUs + rng.uniform(-3, 3),
                        base_ts + kBpUs};
  in.t_now = in.newest.t_local_us + f * kBpUs;  // one BP later
  in.prev = ClockParams{1.0 + rng.uniform(-50, 50) * 1e-6,
                        rng.uniform(-100, 100)};
  const int m = 1 + static_cast<int>(rng.uniform_int(0, 4));
  in.target = base_ts + kBpUs * (2 + m);
  return in;
}

TEST(Adjustment, SatisfiesPaperConstraints) {
  sim::Rng rng(31);
  for (int trial = 0; trial < 2000; ++trial) {
    const SolveInputs in = random_inputs(rng);
    const DisciplineResult out = solve_adjustment(in.prev, in.t_now, in.newest,
                                              in.older, in.target, cfg());
    ASSERT_TRUE(out.params.has_value()) << "trial " << trial;
    const ClockParams& kb = *out.params;

    // (2): continuity at t_now.
    EXPECT_NEAR(kb.eval(in.t_now), in.prev.eval(in.t_now), 1e-6);

    // (4)+(5): t* extrapolates the measured rate to the target.
    const double rate = (in.newest.t_local_us - in.older.t_local_us) /
                        (in.newest.ts_ref_us - in.older.ts_ref_us);
    const double t_star = in.newest.t_local_us +
                          rate * (in.target - in.newest.ts_ref_us);
    EXPECT_NEAR(out.expected_t_star_us, t_star, 1e-6);

    // (3): the new clock hits the target value at t*.
    EXPECT_NEAR(kb.eval(t_star), in.target, 1e-5);
  }
}

TEST(Adjustment, MatchesPaperClosedForm) {
  sim::Rng rng(32);
  for (int trial = 0; trial < 2000; ++trial) {
    const SolveInputs in = random_inputs(rng);
    const DisciplineResult out = solve_adjustment(in.prev, in.t_now, in.newest,
                                              in.older, in.target, cfg());
    ASSERT_TRUE(out.params.has_value());
    const double k_paper =
        paper_k_formula(in.prev, in.t_now, in.newest, in.older, in.target);
    const double b_paper =
        paper_b_formula(in.prev, in.t_now, in.newest, in.older, in.target);
    EXPECT_NEAR(out.params->k, k_paper, 1e-12 * std::abs(k_paper));
    EXPECT_NEAR(out.params->b, b_paper, 1e-3);  // b ~ 1e6-scale cancellation
  }
}

TEST(Adjustment, RejectsNonIncreasingSamples) {
  const RefSample a{2e6, 2e6};
  const RefSample same_ts{2.1e6, 2e6};
  const auto out =
      solve_adjustment(ClockParams{}, 2.2e6, same_ts, a, 2.5e6, cfg());
  EXPECT_FALSE(out.params.has_value());
  EXPECT_EQ(out.verdict, DisciplineVerdict::kNonIncreasingSamples);

  const RefSample ts_back{2.1e6, 1.9e6};
  const auto out2 =
      solve_adjustment(ClockParams{}, 2.2e6, ts_back, a, 2.5e6, cfg());
  EXPECT_EQ(out2.verdict, DisciplineVerdict::kNonIncreasingSamples);
}

TEST(Adjustment, RejectsTargetBehindNow) {
  const RefSample older{1e6, 1e6};
  const RefSample newest{1.1e6, 1.1e6};
  // Target equal to the newest sample's time: t* == t_newest < t_now.
  const auto out =
      solve_adjustment(ClockParams{}, 1.2e6, newest, older, 1.1e6, cfg());
  EXPECT_FALSE(out.params.has_value());
  EXPECT_EQ(out.verdict, DisciplineVerdict::kTargetNotAhead);
}

TEST(Adjustment, RejectsWildSlope) {
  // An adjusted clock 1 BP off, asked to converge within one BP, needs
  // k ~ 2 — outside the sanity band.
  const RefSample older{1e6, 1e6};
  const RefSample newest{1.1e6, 1.1e6};
  const ClockParams way_off{1.0, -1e5};
  const auto out =
      solve_adjustment(way_off, 1.15e6, newest, older, 1.2e6, cfg());
  EXPECT_FALSE(out.params.has_value());
  EXPECT_EQ(out.verdict, DisciplineVerdict::kSlopeOutOfRange);
}

TEST(Adjustment, PerfectlySyncedStaysPut) {
  // A node already tracking the reference exactly keeps k ~= 1, b ~= 0
  // (relative to a drift-free clock).
  const RefSample older{1e6, 1e6};
  const RefSample newest{1.1e6, 1.1e6};
  const auto out = solve_adjustment(ClockParams{1.0, 0.0}, 1.2e6, newest,
                                    older, 1.5e6, cfg());
  ASSERT_TRUE(out.params.has_value());
  EXPECT_NEAR(out.params->k, 1.0, 1e-12);
  EXPECT_NEAR(out.params->b, 0.0, 1e-6);
}

class ConvergenceByM : public ::testing::TestWithParam<int> {};

// Lemma 1 in its cleanest form: iterating the solver on ideal beacons
// contracts the error geometrically with ratio (m-1)/m (for d ~ 0), and the
// adjusted clock converges onto the reference timeline.
TEST_P(ConvergenceByM, ErrorContractsGeometrically) {
  const int m = GetParam();
  SstspConfig c = cfg();
  c.m = m;

  const double f = 1.0 + 80e-6;  // local oscillator +80 ppm
  ClockParams kb{1.0, 250.0};    // initial offset 250 us
  RefSample older{f * 1e6, 1e6};
  RefSample newest{f * (1e6 + kBpUs), 1e6 + kBpUs};

  // Note: eq. (2) keeps the clock value unchanged *at* the adjustment
  // instant, so the error measured when beacon j arrives reflects the
  // previous adjustment's convergence; the first contraction is observable
  // from the second adjustment onwards.
  double prev_err = -1.0;
  for (int j = 2; j < 40; ++j) {
    const double ts = 1e6 + j * kBpUs;
    const double t_local = f * ts;
    // Adjust on receipt of beacon j, targeting T^{j+m}.
    const auto out = solve_adjustment(kb, t_local, newest, older,
                                      ts + m * kBpUs, c);
    ASSERT_TRUE(out.params.has_value()) << "j=" << j;
    kb = *out.params;
    older = newest;
    newest = RefSample{t_local, ts};

    const double err = std::abs(kb.eval(t_local) - ts);
    if (j > 2 && prev_err > 1.0) {
      // Contraction ratio <= (m-1)/m, with slack for m = 1 (full snap).
      const double bound = (m == 1) ? 0.05 : (static_cast<double>(m - 1) / m) + 0.02;
      EXPECT_LE(err / prev_err, bound) << "j=" << j;
    }
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1.0);  // converged well below a microsecond
}

INSTANTIATE_TEST_SUITE_P(MValues, ConvergenceByM, ::testing::Values(1, 2, 3, 4, 5));

TEST(Adjustment, SolvedSlopeCompensatesDrift) {
  // After convergence the slope k must cancel the oscillator drift:
  // k ~= 1/f.
  const double f = 1.0 - 60e-6;
  SstspConfig c = cfg();
  c.m = 2;
  ClockParams kb{1.0, 100.0};
  RefSample older{f * 1e6, 1e6};
  RefSample newest{f * (1e6 + kBpUs), 1e6 + kBpUs};
  for (int j = 2; j < 30; ++j) {
    const double ts = 1e6 + j * kBpUs;
    const double t_local = f * ts;
    const auto out =
        solve_adjustment(kb, t_local, newest, older, ts + 2 * kBpUs, c);
    ASSERT_TRUE(out.params.has_value());
    kb = *out.params;
    older = newest;
    newest = RefSample{t_local, ts};
  }
  EXPECT_NEAR(kb.k, 1.0 / f, 1e-9);
}

}  // namespace
}  // namespace sstsp::core
