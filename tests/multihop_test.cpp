// Multi-hop SSTSP (src/multihop/): line and cluster topologies on the
// range-limited channel.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "crypto/hash_chain.h"
#include "multihop/sstsp_mh.h"
#include "sim/simulator.h"

namespace sstsp::multihop {
namespace {

using namespace sstsp::sim::literals;

struct MhNet {
  sim::Simulator sim{31};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  MultiHopConfig cfg;
  std::vector<std::unique_ptr<proto::Station>> stations;
  std::vector<SstspMh*> protos;

  explicit MhNet(double range_m) {
    phy.packet_error_rate = 0.0;
    phy.radio_range_m = range_m;
    cfg.base.chain_length = 1500;
    channel = std::make_unique<mac::Channel>(sim, phy);
  }

  SstspMh& add(mac::Position pos, double ppm, double offset_us,
               bool reference = false) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    auto st = std::make_unique<proto::Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us), pos);
    directory.register_node(
        id, crypto::ChainParams{crypto::derive_seed(31, id),
                                cfg.base.chain_length});
    auto proto = std::make_unique<SstspMh>(*st, cfg, directory,
                                           SstspMh::Options{reference});
    protos.push_back(proto.get());
    st->set_protocol(std::move(proto));
    stations.push_back(std::move(st));
    return *protos.back();
  }

  bool armed = false;

  void run(double until_s) {
    if (!armed) {
      armed = true;
      for (auto& st : stations) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }

  /// Max pairwise difference of awake, synchronized nodes' adjusted clocks.
  double spread_us() const {
    double lo = 1e18, hi = -1e18;
    for (std::size_t i = 0; i < stations.size(); ++i) {
      if (!stations[i]->awake() || !protos[i]->is_synchronized()) continue;
      const double v = protos[i]->network_time_us(sim.now());
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  }

  int synced_count() const {
    int n = 0;
    for (const auto* p : protos) {
      if (p->is_synchronized()) ++n;
    }
    return n;
  }
};

/// A straight line: node i at (i * spacing, 0); with range in
/// (spacing, 2*spacing) each node only hears its direct neighbours.
void build_line(MhNet& net, int n, double spacing_m,
                std::uint64_t drift_seed) {
  sim::Rng rng(drift_seed);
  for (int i = 0; i < n; ++i) {
    net.add({i * spacing_m, 0.0}, rng.uniform(-100.0, 100.0),
            rng.uniform(-50.0, 50.0), /*reference=*/i == 0);
  }
}

TEST(MultiHop, LineTopologySynchronizesEndToEnd) {
  MhNet net(50.0);
  build_line(net, 6, 40.0, 5);
  net.run(20.0);
  EXPECT_EQ(net.synced_count(), 6);
  // Levels must be the hop distances along the line.
  for (int i = 1; i < 6; ++i) {
    EXPECT_EQ(net.protos[static_cast<std::size_t>(i)]->level(), i) << i;
    EXPECT_EQ(net.protos[static_cast<std::size_t>(i)]->upstream(),
              static_cast<mac::NodeId>(i - 1))
        << i;
  }
  EXPECT_LT(net.spread_us(), 60.0);  // per-hop error accumulates
}

TEST(MultiHop, ErrorGrowsWithHopCount) {
  // End-to-end error over a long line vs a short one: per-hop accumulation.
  MhNet short_line(50.0);
  build_line(short_line, 3, 40.0, 6);
  short_line.run(30.0);
  const double short_spread = short_line.spread_us();

  MhNet long_line(50.0);
  build_line(long_line, 8, 40.0, 6);
  long_line.run(30.0);
  const double long_spread = long_line.spread_us();

  EXPECT_EQ(short_line.synced_count(), 3);
  EXPECT_EQ(long_line.synced_count(), 8);
  EXPECT_GT(long_spread, short_spread);
}

TEST(MultiHop, SingleCellBehavesLikeSingleHop) {
  // Everyone in range of the reference: all level 1, tight sync.
  MhNet net(200.0);
  sim::Rng rng(7);
  for (int i = 0; i < 12; ++i) {
    net.add({static_cast<double>(i), 0.0}, rng.uniform(-100.0, 100.0),
            rng.uniform(-50.0, 50.0), i == 0);
  }
  net.run(15.0);
  EXPECT_EQ(net.synced_count(), 12);
  for (int i = 1; i < 12; ++i) {
    EXPECT_EQ(net.protos[static_cast<std::size_t>(i)]->level(), 1);
  }
  EXPECT_LT(net.spread_us(), 25.0);
}

TEST(MultiHop, RelaysOnlyForwardFreshTime) {
  // Kill the reference: relays must go quiet within an interval or two
  // (stale time is never relayed), rather than flooding old timestamps.
  MhNet net(50.0);
  build_line(net, 4, 40.0, 8);
  net.run(10.0);
  ASSERT_EQ(net.synced_count(), 4);
  net.stations[0]->power_off();
  const auto sent_before = net.protos[1]->stats().beacons_sent +
                           net.protos[2]->stats().beacons_sent;
  net.run(12.0);
  const auto sent_after = net.protos[1]->stats().beacons_sent +
                          net.protos[2]->stats().beacons_sent;
  EXPECT_LE(sent_after - sent_before, 4u);
  net.run(15.0);
  const auto sent_final = net.protos[1]->stats().beacons_sent +
                          net.protos[2]->stats().beacons_sent;
  EXPECT_LE(sent_final - sent_after, 1u);
}

TEST(MultiHop, LevelStaggeredTakeoverAfterReferenceLoss) {
  MhNet net(50.0);
  net.cfg.takeover_patience_bps = 20;  // speed the test up
  build_line(net, 4, 40.0, 9);
  net.run(10.0);
  ASSERT_EQ(net.synced_count(), 4);
  net.stations[0]->power_off();
  net.run(10.0 + 0.1 * (20 + 2) + 8.0);  // patience + rebuild slack
  // The level-1 node must have seized the reference role and re-captured
  // the rest.
  EXPECT_TRUE(net.protos[1]->is_reference());
  EXPECT_FALSE(net.protos[2]->is_reference());
  EXPECT_EQ(net.protos[2]->upstream(), 1u);
  // Reconvergence: the outage accumulated ~0.6 ms of free-run divergence;
  // the rebuilt tree must pull everyone back together.
  net.run(32.0);
  EXPECT_LT(net.spread_us(), 100.0);
}

TEST(MultiHop, BeaconsArePerHopAuthenticated) {
  MhNet net(50.0);
  build_line(net, 4, 40.0, 10);
  net.run(15.0);
  proto::ProtocolStats agg;
  for (const auto* p : net.protos) {
    agg.rejected_key += p->stats().rejected_key;
    agg.rejected_mac += p->stats().rejected_mac;
    agg.beacons_sent += p->stats().beacons_sent;
  }
  EXPECT_EQ(agg.rejected_key, 0u);
  EXPECT_EQ(agg.rejected_mac, 0u);
  // Reference + up to 3 relays each interval.
  EXPECT_GT(agg.beacons_sent, 300u);
}

TEST(MultiHop, AdjustedClocksNeverLeap) {
  MhNet net(50.0);
  build_line(net, 5, 40.0, 11);
  std::vector<double> prev(5, -1e18);
  for (int step = 1; step <= 1500; ++step) {
    net.run(0.01 * step);
    for (std::size_t i = 0; i < 5; ++i) {
      const double v = net.protos[i]->network_time_us(net.sim.now());
      if (prev[i] > -1e17) {
        ASSERT_GT(v, prev[i]) << "station " << i;
        ASSERT_LT(v - prev[i], 10'200.0) << "station " << i;
      }
      prev[i] = v;
    }
  }
}

}  // namespace
}  // namespace sstsp::multihop
