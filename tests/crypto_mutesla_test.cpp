#include "crypto/mutesla.h"

#include <gtest/gtest.h>

#include <vector>

namespace sstsp::crypto {
namespace {

constexpr double kBpUs = 1e5;

MuTeslaSchedule sched(std::size_t n) { return MuTeslaSchedule{0.0, kBpUs, n}; }

ChainParams chain(std::size_t n) {
  return ChainParams{derive_seed(3, 5), n};
}

std::vector<std::uint8_t> body(std::string_view s) { return {s.begin(), s.end()}; }

TEST(MuTeslaSchedule, IntervalOfRoundsToNearest) {
  const auto s = sched(100);
  EXPECT_EQ(s.interval_of(0.0), 0);
  EXPECT_EQ(s.interval_of(1e5), 1);
  EXPECT_EQ(s.interval_of(1.49e5), 1);
  EXPECT_EQ(s.interval_of(1.51e5), 2);
  EXPECT_DOUBLE_EQ(s.emission_time(7), 7e5);
}

TEST(MuTeslaSchedule, IntervalCheckWindow) {
  const auto s = sched(100);
  const double slack = 2000.0;
  // Interval 5's beacon expected at 5e5; window [4.5e5 - slack, 5.5e5 + slack].
  EXPECT_TRUE(s.interval_check(5, 5e5, slack));
  EXPECT_TRUE(s.interval_check(5, 4.5e5 - slack + 1, slack));
  EXPECT_TRUE(s.interval_check(5, 5.5e5 + slack - 1, slack));
  EXPECT_FALSE(s.interval_check(5, 4.5e5 - slack - 1, slack));
  EXPECT_FALSE(s.interval_check(5, 5.5e5 + slack + 1, slack));
  // Out-of-range intervals are rejected outright.
  EXPECT_FALSE(s.interval_check(0, 0.0, slack));
  EXPECT_FALSE(s.interval_check(101, 101e5, slack));
  EXPECT_FALSE(s.interval_check(-3, 0.0, slack));
}

TEST(MuTesla, SignerKeysMatchChainConvention) {
  const std::size_t n = 50;
  const ChainParams c = chain(n);
  MuTeslaSigner signer(c, sched(n));
  for (std::int64_t j = 1; j <= 10; ++j) {
    EXPECT_EQ(signer.key_for_interval(j),
              c.element(n - static_cast<std::size_t>(j)));
    EXPECT_EQ(signer.disclosed_key(j),
              c.element(n - static_cast<std::size_t>(j) + 1));
  }
  EXPECT_EQ(signer.anchor(), c.anchor());
}

TEST(MuTesla, VerifierAcceptsSequentialDisclosures) {
  const std::size_t n = 40;
  const ChainParams c = chain(n);
  MuTeslaSigner signer(c, sched(n));
  MuTeslaVerifier verifier(signer.anchor(), sched(n));
  // Beacon of interval j disclosed K_{j-1}; feed them in order.
  for (std::int64_t j = 2; j <= static_cast<std::int64_t>(n); ++j) {
    EXPECT_TRUE(verifier.verify_key(j - 1, signer.disclosed_key(j)))
        << "j=" << j;
  }
  EXPECT_EQ(verifier.verified_position(), 1u);
}

TEST(MuTesla, SteadyStateVerificationIsOneHash) {
  const std::size_t n = 40;
  const ChainParams c = chain(n);
  MuTeslaSigner signer(c, sched(n));
  MuTeslaVerifier verifier(signer.anchor(), sched(n));
  ASSERT_TRUE(verifier.verify_key(1, signer.key_for_interval(1)));
  const std::uint64_t before = verifier.hash_ops();
  ASSERT_TRUE(verifier.verify_key(2, signer.key_for_interval(2)));
  EXPECT_EQ(verifier.hash_ops() - before, 1u);
}

TEST(MuTesla, FirstContactCostsJHashes) {
  const std::size_t n = 100;
  const ChainParams c = chain(n);
  MuTeslaSigner signer(c, sched(n));
  MuTeslaVerifier verifier(signer.anchor(), sched(n));
  ASSERT_TRUE(verifier.verify_key(30, signer.key_for_interval(30)));
  EXPECT_EQ(verifier.hash_ops(), 30u);
}

TEST(MuTesla, GapsInDisclosureAreHandled) {
  const std::size_t n = 40;
  const ChainParams c = chain(n);
  MuTeslaSigner signer(c, sched(n));
  MuTeslaVerifier verifier(signer.anchor(), sched(n));
  ASSERT_TRUE(verifier.verify_key(3, signer.key_for_interval(3)));
  // Intervals 4-6 lost; key 7 still verifies (walks 4 hashes).
  EXPECT_TRUE(verifier.verify_key(7, signer.key_for_interval(7)));
}

TEST(MuTesla, StaleKeysRejected) {
  const std::size_t n = 40;
  const ChainParams c = chain(n);
  MuTeslaSigner signer(c, sched(n));
  MuTeslaVerifier verifier(signer.anchor(), sched(n));
  ASSERT_TRUE(verifier.verify_key(10, signer.key_for_interval(10)));
  // Replaying an older interval's key is rejected...
  EXPECT_FALSE(verifier.verify_key(5, signer.key_for_interval(5)));
  // ...but re-presenting the exact same current key is idempotent.
  EXPECT_TRUE(verifier.verify_key(10, signer.key_for_interval(10)));
  // Same interval with a *wrong* key is rejected.
  EXPECT_FALSE(verifier.verify_key(10, signer.key_for_interval(9)));
}

TEST(MuTesla, WrongKeyRejected) {
  const std::size_t n = 40;
  MuTeslaSigner signer(chain(n), sched(n));
  MuTeslaVerifier verifier(signer.anchor(), sched(n));
  Digest bogus = signer.key_for_interval(4);
  bogus[0] ^= 0x80;
  EXPECT_FALSE(verifier.verify_key(4, bogus));
  // A key from a different node's chain is also rejected.
  MuTeslaSigner other(ChainParams{derive_seed(3, 6), n}, sched(n));
  EXPECT_FALSE(verifier.verify_key(4, other.key_for_interval(4)));
}

TEST(MuTesla, OutOfRangeIntervals) {
  const std::size_t n = 8;
  MuTeslaSigner signer(chain(n), sched(n));
  MuTeslaVerifier verifier(signer.anchor(), sched(n));
  EXPECT_FALSE(verifier.verify_key(0, signer.anchor()));
  EXPECT_FALSE(verifier.verify_key(-1, signer.anchor()));
  EXPECT_FALSE(verifier.verify_key(9, signer.key_for_interval(8)));
}

TEST(MuTesla, MacRoundTrip) {
  const std::size_t n = 16;
  MuTeslaSigner signer(chain(n), sched(n));
  const auto msg = body("timestamp|sender");
  const Digest128 mac = signer.mac(3, msg);
  const Digest key = signer.key_for_interval(3);
  EXPECT_TRUE(MuTeslaVerifier::verify_mac(key, 3, msg, mac));
  // Wrong interval binding fails even with the right key and body.
  EXPECT_FALSE(MuTeslaVerifier::verify_mac(key, 4, msg, mac));
  // Wrong key fails.
  EXPECT_FALSE(
      MuTeslaVerifier::verify_mac(signer.key_for_interval(4), 3, msg, mac));
}

class MacBitFlip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MacBitFlip, AnyFlippedBodyByteFails) {
  const std::size_t n = 16;
  MuTeslaSigner signer(chain(n), sched(n));
  auto msg = body("0123456789abcdef");
  const Digest128 mac = signer.mac(2, msg);
  const Digest key = signer.key_for_interval(2);
  msg[GetParam()] ^= 0x01;
  EXPECT_FALSE(MuTeslaVerifier::verify_mac(key, 2, msg, mac));
}

INSTANTIATE_TEST_SUITE_P(Positions, MacBitFlip,
                         ::testing::Range<std::size_t>(0, 16));

TEST(MuTesla, MacInputEncodesInterval) {
  const auto msg = body("x");
  EXPECT_NE(mac_input(1, msg), mac_input(2, msg));
  EXPECT_EQ(mac_input(1, msg).size(), msg.size() + 8);
}

}  // namespace
}  // namespace sstsp::crypto
