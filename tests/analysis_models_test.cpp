// Analytical models (src/analysis/): internal consistency plus
// model-vs-simulation cross-checks.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/models.h"
#include "runner/experiment.h"
#include "sim/rng.h"

namespace sstsp::analysis {
namespace {

constexpr double kBpUs = 1e5;

TEST(Lemma1Model, RatioMatchesPaperFormula) {
  EXPECT_NEAR(lemma1_contraction_ratio(2, kBpUs), 0.5, 1e-12);
  EXPECT_NEAR(lemma1_contraction_ratio(3, kBpUs), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(lemma1_contraction_ratio(5, kBpUs), 4.0 / 5.0, 1e-12);
  // Jitter slows the contraction.
  EXPECT_GT(lemma1_contraction_ratio(3, kBpUs, 1000.0),
            lemma1_contraction_ratio(3, kBpUs, 0.0));
  // m = 1: ratio d/(BP-d) — near-instant for small jitter.
  EXPECT_NEAR(lemma1_contraction_ratio(1, kBpUs, 100.0), 100.0 / 99900.0,
              1e-12);
}

TEST(Lemma1Model, ConvergenceBpsMonotoneInM) {
  int prev = 0;
  for (int m = 2; m <= 6; ++m) {
    const int bps = lemma1_convergence_bps(m, 112.0, 1.0, kBpUs);
    EXPECT_GT(bps, prev) << m;
    prev = bps;
  }
  EXPECT_EQ(lemma1_convergence_bps(3, 0.5, 1.0, kBpUs), 0);  // already there
  EXPECT_EQ(lemma1_convergence_bps(1, 112.0, 1.0, kBpUs, 0.0), 1);
}

TEST(Lemma2Model, BlowupAndOptimum) {
  EXPECT_NEAR(lemma2_blowup_ratio(4, 1), 0.0, 1e-12);  // m = l+3
  EXPECT_NEAR(lemma2_blowup_ratio(1, 1), -3.0, 1e-12);
  EXPECT_NEAR(std::fabs(lemma2_blowup_ratio(1, 1)),
              static_cast<double>(1 + 2), 1e-12);  // worst case = l+2
  for (int l = 1; l <= 4; ++l) EXPECT_EQ(lemma2_optimal_m(l), l + 3);
}

TEST(Lemma2Model, ErrorBoundComposition) {
  // |m-l-3|/m * err + 2 eps
  EXPECT_NEAR(reference_change_error_bound_us(4, 1, 10.0, 3.0), 6.0, 1e-12);
  EXPECT_NEAR(reference_change_error_bound_us(1, 1, 10.0, 3.0), 36.0, 1e-12);
  EXPECT_NEAR(steady_error_bound_us(5.0), 10.0, 1e-12);
}

TEST(TsfModel, SuccessProbabilityBasics) {
  // One contender always succeeds.
  EXPECT_NEAR(tsf_success_probability(1, 30), 1.0, 1e-12);
  // Monotone decreasing in n.
  double prev = 1.0;
  for (const int n : {2, 5, 20, 100, 300}) {
    const double p = tsf_success_probability(n, 30);
    EXPECT_LT(p, prev) << n;
    EXPECT_GT(p, 0.0);
    prev = p;
  }
  // Two contenders over w+1 slots collide iff they draw the same slot.
  EXPECT_NEAR(tsf_success_probability(2, 30), 30.0 / 31.0, 1e-12);
}

TEST(TsfModel, MonteCarloAgreement) {
  // The closed form must match a direct Monte Carlo of the slotted window.
  sim::Rng rng(5);
  for (const int n : {5, 31, 100}) {
    int unique_min = 0;
    constexpr int kTrials = 20000;
    for (int t = 0; t < kTrials; ++t) {
      int min_slot = 31;
      int count_at_min = 0;
      for (int i = 0; i < n; ++i) {
        const int slot = static_cast<int>(rng.uniform_int(0, 30));
        if (slot < min_slot) {
          min_slot = slot;
          count_at_min = 1;
        } else if (slot == min_slot) {
          ++count_at_min;
        }
      }
      if (count_at_min == 1) ++unique_min;
    }
    const double mc = static_cast<double>(unique_min) / kTrials;
    EXPECT_NEAR(tsf_success_probability(n, 30), mc, 0.015) << n;
  }
}

TEST(TsfModel, DroughtAndDriftScale) {
  const double drought = tsf_expected_drought_bps(300, 30);
  EXPECT_GT(drought, 100.0);  // at N=300 successes are rare
  // Drift scale = drought * BP * rel-drift.
  EXPECT_NEAR(tsf_expected_drift_us(300, 30, kBpUs, 200.0),
              drought * 0.1 * 200.0, 1e-6);
}

TEST(OverheadModel, MatchesPaperNumbers) {
  const auto model = sstsp_overhead(kBpUs, 12000);
  EXPECT_NEAR(model.beacons_per_second, 10.0, 1e-12);
  EXPECT_NEAR(model.bytes_per_second, 920.0, 1e-12);
  EXPECT_EQ(model.chain_digests_full, 12000u);
  EXPECT_EQ(model.chain_digests_fractal, 15u);  // ceil(log2 12000)+1
  // Paper: "in most cases 300-500 bytes of memory can meet the requirement"
  // for the beacon buffer; our tighter layout fits well inside.
  EXPECT_LE(model.receiver_buffer_bytes, 500u);
}

// ---- model vs simulation ------------------------------------------------

TEST(ModelVsSim, Lemma1LatencyPredictsSimLatency) {
  // The predicted convergence BPs (plus the µTESLA pipeline's fixed 3-BP
  // lead-in) must upper-bound and roughly match the simulated latency.
  for (const int m : {2, 3, 4}) {
    run::Scenario s;
    s.protocol = run::ProtocolKind::kSstsp;
    s.num_nodes = 20;
    s.duration_s = 30.0;
    s.seed = 77;
    s.preestablished_reference = true;
    s.sstsp.m = m;
    s.sstsp.chain_length = 400;
    const auto r = run::run_scenario(s);
    ASSERT_TRUE(r.sync_latency_s.has_value()) << m;

    const int predicted_bps =
        lemma1_convergence_bps(m, 112.0, run::kSyncThresholdUs, kBpUs) + 4;
    EXPECT_LE(*r.sync_latency_s, 0.1 * predicted_bps + 0.35) << "m=" << m;
  }
}

TEST(ModelVsSim, TsfDriftScaleBracketsSimulation) {
  // TSF's simulated steady p99 should be within an order of magnitude of
  // the drought-based drift scale (the model idealizes slotted contention,
  // the simulator uses CCA-window physics, so only the scale is expected
  // to match).
  run::Scenario s;
  s.protocol = run::ProtocolKind::kTsf;
  s.num_nodes = 60;
  s.duration_s = 120.0;
  s.seed = 77;
  const auto r = run::run_scenario(s);
  ASSERT_TRUE(r.steady_p99_us.has_value());
  const double model = tsf_expected_drift_us(60, 30, kBpUs, 190.0);
  EXPECT_GT(*r.steady_p99_us, model / 10.0);
  EXPECT_LT(*r.steady_p99_us, model * 10.0);
}

}  // namespace
}  // namespace sstsp::analysis
