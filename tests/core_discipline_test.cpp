// Clock-discipline unit tests (core/discipline.h): RLS convergence under
// the stressors it exists for (temperature ramp, random-walk frequency),
// innovation gating, holdover coasting, window-derived pruning, and the
// nested-config plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "core/discipline.h"
#include "obs/json.h"
#include "sim/rng.h"

namespace sstsp::core {
namespace {

constexpr double kBpUs = 100000.0;  // 0.1 s beacon period

/// Synthetic beacon stream: reference time advances one BP per sample; the
/// local clock integrates a per-step drift (ppm) supplied by `drift_ppm`,
/// plus an additive observation noise (us) from `noise_us`.
struct StreamGen {
  double ts{0.0};
  double t_local{0.0};

  template <typename DriftFn, typename NoiseFn>
  RefSample next(DriftFn&& drift_ppm, NoiseFn&& noise_us) {
    ts += kBpUs;
    t_local += kBpUs * (1.0 + drift_ppm(ts * 1e-6) * 1e-6);
    return RefSample{t_local + noise_us(), ts};
  }
};

SstspConfig config_for(const std::string& name) {
  SstspConfig cfg;
  cfg.discipline.name = name;
  return cfg;
}

/// Feeds `n` samples to a discipline and accumulates the absolute
/// next-beacon prediction error (|expected local arrival - true local
/// arrival|) from `warmup` onward.  The prediction target is the reference
/// time of the next sample, whose true local time the generator knows.
template <typename DriftFn, typename NoiseFn>
double prediction_error_us(ClockDiscipline& disc, int n, int warmup,
                           DriftFn&& drift_ppm, NoiseFn&& noise_us) {
  StreamGen gen;
  std::vector<RefSample> truth;
  truth.reserve(static_cast<std::size_t>(n) + 1);
  for (int i = 0; i <= n; ++i) {
    truth.push_back(gen.next(drift_ppm, noise_us));
  }
  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < n; ++i) {
    (void)disc.add_sample(truth[static_cast<std::size_t>(i)], kBpUs);
    if (i < warmup || disc.size() < disc.min_samples()) continue;
    const auto& next = truth[static_cast<std::size_t>(i) + 1];
    const double t_now = truth[static_cast<std::size_t>(i)].t_local_us + 1.0;
    const ClockParams previous{1.0, 0.0};
    const DisciplineResult out =
        disc.propose(previous, t_now, next.ts_ref_us);
    if (out.expected_t_star_us <= 0.0) continue;
    total += std::fabs(out.expected_t_star_us - next.t_local_us);
    ++counted;
  }
  EXPECT_GT(counted, 0);
  return counted > 0 ? total / counted : 1e18;
}

TEST(Discipline, FactoryResolvesNames) {
  SstspConfig cfg;
  EXPECT_EQ(make_discipline(cfg)->name(), "paper");
  cfg.discipline.name = "paper";
  EXPECT_EQ(make_discipline(cfg)->name(), "paper");
  cfg.discipline.name = "rls";
  EXPECT_EQ(make_discipline(cfg)->name(), "rls");
  cfg.discipline.name = "holdover";
  EXPECT_EQ(make_discipline(cfg)->name(), "holdover");

  EXPECT_TRUE(discipline_known("paper"));
  EXPECT_TRUE(discipline_known("rls"));
  EXPECT_TRUE(discipline_known("holdover"));
  EXPECT_FALSE(discipline_known("kalman"));
  EXPECT_EQ(discipline_verdict_names().size(), kDisciplineVerdictCount);
}

TEST(Discipline, RlsConvergesUnderConstantDrift) {
  const SstspConfig cfg = config_for("rls");
  const auto disc = make_discipline(cfg);
  const double err = prediction_error_us(
      *disc, 12, 6, [](double) { return 50.0; }, [] { return 0.0; });
  // Noise-free constant drift: the affine fit should nail the next beacon.
  EXPECT_LT(err, 1.0);
}

TEST(Discipline, RlsBeatsPaperUnderTemperatureRamp) {
  // Drift ramps -30 ppm -> +18 ppm over 16 s; +/-2 us observation noise
  // models timestamp quantization + delivery jitter.
  auto ramp = [](double t_s) { return -30.0 + 3.0 * t_s; };
  sim::Rng rng_a(42);
  sim::Rng rng_b(42);
  auto noise_a = [&rng_a] { return rng_a.uniform(-2.0, 2.0); };
  auto noise_b = [&rng_b] { return rng_b.uniform(-2.0, 2.0); };

  const SstspConfig paper_cfg = config_for("paper");
  const auto paper = make_discipline(paper_cfg);
  const double paper_err = prediction_error_us(*paper, 160, 8, ramp, noise_a);

  const SstspConfig rls_cfg = config_for("rls");
  const auto rls = make_discipline(rls_cfg);
  const double rls_err = prediction_error_us(*rls, 160, 8, ramp, noise_b);

  // The window average attenuates the noise; the forgetting factor keeps
  // tracking the ramp.  Require a decisive (not marginal) win.
  EXPECT_LT(rls_err, 0.8 * paper_err)
      << "rls " << rls_err << " us vs paper " << paper_err << " us";
}

TEST(Discipline, RlsBeatsPaperUnderRandomWalkDrift) {
  // Both disciplines see the identical drift walk and noise sequence
  // (same-seeded generators, regenerated per run).
  auto make_walk = [](sim::Rng& rng, double& state) {
    return [&rng, &state](double) {
      state += rng.normal(0.0, 0.4);
      return state;
    };
  };

  sim::Rng rng_w1(7), rng_n1(43);
  double d1 = 20.0;
  const SstspConfig paper_cfg = config_for("paper");
  const auto paper = make_discipline(paper_cfg);
  auto noise1 = [&rng_n1] { return rng_n1.uniform(-2.0, 2.0); };
  const double paper_err =
      prediction_error_us(*paper, 160, 8, make_walk(rng_w1, d1), noise1);

  sim::Rng rng_w2(7), rng_n2(43);
  double d2 = 20.0;
  const SstspConfig rls_cfg = config_for("rls");
  const auto rls = make_discipline(rls_cfg);
  auto noise2 = [&rng_n2] { return rng_n2.uniform(-2.0, 2.0); };
  const double rls_err =
      prediction_error_us(*rls, 160, 8, make_walk(rng_w2, d2), noise2);

  EXPECT_LT(rls_err, 0.8 * paper_err)
      << "rls " << rls_err << " us vs paper " << paper_err << " us";
}

TEST(Discipline, RlsInnovationGateScreensOutliers) {
  SstspConfig cfg = config_for("rls");
  cfg.discipline.innovation_gate_us = 100.0;
  const auto disc = make_discipline(cfg);

  StreamGen gen;
  auto drift = [](double) { return 30.0; };
  auto clean = [] { return 0.0; };
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(disc->add_sample(gen.next(drift, clean), kBpUs), std::nullopt);
  }
  // A 5 ms reference-timestamp spike: way past the gate.
  RefSample outlier = gen.next(drift, clean);
  outlier.ts_ref_us += 5000.0;
  const auto verdict = disc->add_sample(outlier, kBpUs);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, DisciplineVerdict::kInnovationRejected);
  // The sample still enters history (the deque is shared bookkeeping);
  // only the estimator update was screened.
  EXPECT_EQ(disc->size(), 7u);

  // Clean samples keep flowing after the screen.
  EXPECT_EQ(disc->add_sample(gen.next(drift, clean), kBpUs), std::nullopt);
}

TEST(Discipline, RlsSurvivesEpochBreak) {
  const SstspConfig cfg = config_for("rls");
  const auto disc = make_discipline(cfg);
  StreamGen gen;
  auto drift = [](double) { return 40.0; };
  auto clean = [] { return 0.0; };
  RefSample last{};
  for (int i = 0; i < 8; ++i) {
    last = gen.next(drift, clean);
    (void)disc->add_sample(last, kBpUs);
  }
  // A partition: 40 BPs of silence, far past the (window + slack) horizon.
  gen.ts += 40.0 * kBpUs;
  gen.t_local += 40.0 * kBpUs * (1.0 + 40.0 * 1e-6);
  for (int i = 0; i < 4; ++i) {
    last = gen.next(drift, clean);
    (void)disc->add_sample(last, kBpUs);
  }
  const DisciplineResult out = disc->propose(
      ClockParams{1.0, 0.0}, last.t_local_us + 1.0, last.ts_ref_us + kBpUs);
  ASSERT_TRUE(out.params.has_value()) << to_string(out.verdict);
  EXPECT_TRUE(std::isfinite(out.params->k));
  // Post-break fit still predicts the next beacon to within a few us.
  const double true_next = last.t_local_us + kBpUs * (1.0 + 40.0 * 1e-6);
  EXPECT_NEAR(out.expected_t_star_us, true_next, 5.0);
}

TEST(Discipline, HoldoverCoastsThroughBeaconDrought) {
  SstspConfig cfg = config_for("holdover");
  const auto disc = make_discipline(cfg);
  EXPECT_EQ(disc->min_samples(), 1u);

  StreamGen gen;
  auto drift = [](double) { return 60.0; };
  auto clean = [] { return 0.0; };
  RefSample a = gen.next(drift, clean);
  RefSample b = gen.next(drift, clean);
  (void)disc->add_sample(a, kBpUs);
  (void)disc->add_sample(b, kBpUs);
  // Normal 2-sample solve: learns the rate.
  const DisciplineResult solved = disc->propose(
      ClockParams{1.0, 0.0}, b.t_local_us + 1.0, b.ts_ref_us + 3.0 * kBpUs);
  ASSERT_TRUE(solved.params.has_value());
  EXPECT_EQ(solved.verdict, DisciplineVerdict::kApplied);

  // Drought: the next sample arrives 10 BPs later; with window 1 the age
  // horizon is (1 + 4) BPs, so history collapses to the fresh sample.
  gen.ts += 9.0 * kBpUs;
  gen.t_local += 9.0 * kBpUs * (1.0 + 60.0 * 1e-6);
  const RefSample fresh = gen.next(drift, clean);
  (void)disc->add_sample(fresh, kBpUs);
  ASSERT_EQ(disc->size(), 1u);

  const DisciplineResult coast =
      disc->propose(ClockParams{1.0, 0.0}, fresh.t_local_us + 1.0,
                    fresh.ts_ref_us + 3.0 * kBpUs);
  ASSERT_TRUE(coast.params.has_value()) << to_string(coast.verdict);
  EXPECT_EQ(coast.verdict, DisciplineVerdict::kHoldoverCoast);
  // Coasting on the learned rate lands within a few us of the true target
  // instant (constant drift, so the remembered rate is exact).
  const double true_t_star =
      fresh.t_local_us + 3.0 * kBpUs * (1.0 + 60.0 * 1e-6);
  EXPECT_NEAR(coast.expected_t_star_us, true_t_star, 5.0);
}

TEST(Discipline, HoldoverRefusesStaleRate) {
  SstspConfig cfg = config_for("holdover");
  cfg.discipline.holdover_max_age_bps = 4;
  const auto disc = make_discipline(cfg);

  StreamGen gen;
  auto drift = [](double) { return 60.0; };
  auto clean = [] { return 0.0; };
  const RefSample a = gen.next(drift, clean);
  const RefSample b = gen.next(drift, clean);
  (void)disc->add_sample(a, kBpUs);
  (void)disc->add_sample(b, kBpUs);
  (void)disc->propose(ClockParams{1.0, 0.0}, b.t_local_us + 1.0,
                      b.ts_ref_us + 3.0 * kBpUs);

  // 10 BPs of silence exceeds holdover-max-age 4: refuse to coast.
  gen.ts += 9.0 * kBpUs;
  gen.t_local += 9.0 * kBpUs * (1.0 + 60.0 * 1e-6);
  const RefSample fresh = gen.next(drift, clean);
  (void)disc->add_sample(fresh, kBpUs);
  ASSERT_EQ(disc->size(), 1u);
  const DisciplineResult out =
      disc->propose(ClockParams{1.0, 0.0}, fresh.t_local_us + 1.0,
                    fresh.ts_ref_us + 3.0 * kBpUs);
  EXPECT_FALSE(out.params.has_value());
  EXPECT_EQ(out.verdict, DisciplineVerdict::kInsufficientHistory);
}

TEST(Discipline, HistoryWindowDerivesPruning) {
  // The satellite fix: the retention cap and age horizon come from the
  // discipline's declared window, not a hardcoded span+4.
  SstspConfig rls_cfg = config_for("rls");
  rls_cfg.discipline.window_bps = 6;
  const auto rls = make_discipline(rls_cfg);
  StreamGen gen;
  auto drift = [](double) { return 10.0; };
  auto clean = [] { return 0.0; };
  for (int i = 0; i < 20; ++i) {
    (void)rls->add_sample(gen.next(drift, clean), kBpUs);
  }
  EXPECT_EQ(rls->history_window_bps(), 6);
  EXPECT_EQ(rls->size(), 7u);  // window + 1

  SstspConfig paper_cfg;  // default span 1
  const auto paper = make_discipline(paper_cfg);
  StreamGen gen2;
  for (int i = 0; i < 20; ++i) {
    (void)paper->add_sample(gen2.next(drift, clean), kBpUs);
  }
  EXPECT_EQ(paper->history_window_bps(), 1);
  EXPECT_EQ(paper->size(), 2u);
}

TEST(Discipline, ResetDropsHistoryAndState) {
  const SstspConfig cfg = config_for("rls");
  const auto disc = make_discipline(cfg);
  StreamGen gen;
  auto drift = [](double) { return 10.0; };
  auto clean = [] { return 0.0; };
  for (int i = 0; i < 5; ++i) {
    (void)disc->add_sample(gen.next(drift, clean), kBpUs);
  }
  EXPECT_EQ(disc->size(), 5u);
  disc->reset();
  EXPECT_EQ(disc->size(), 0u);
  const DisciplineResult out =
      disc->propose(ClockParams{1.0, 0.0}, 1.0, kBpUs);
  EXPECT_EQ(out.verdict, DisciplineVerdict::kInsufficientHistory);
}

TEST(Discipline, VerdictStringsAndRejectionClass) {
  EXPECT_STREQ(to_string(DisciplineVerdict::kApplied), "applied");
  EXPECT_STREQ(to_string(DisciplineVerdict::kHoldoverCoast),
               "holdover_coast");
  // Only the paper solver's three reject reasons count as legacy
  // solver_rejections; screening/coasting verdicts do not.
  EXPECT_TRUE(verdict_is_rejection(DisciplineVerdict::kNonIncreasingSamples));
  EXPECT_TRUE(verdict_is_rejection(DisciplineVerdict::kTargetNotAhead));
  EXPECT_TRUE(verdict_is_rejection(DisciplineVerdict::kSlopeOutOfRange));
  EXPECT_FALSE(verdict_is_rejection(DisciplineVerdict::kApplied));
  EXPECT_FALSE(verdict_is_rejection(DisciplineVerdict::kInsufficientHistory));
  EXPECT_FALSE(verdict_is_rejection(DisciplineVerdict::kInnovationRejected));
  EXPECT_FALSE(verdict_is_rejection(DisciplineVerdict::kHoldoverCoast));
}

TEST(Discipline, ApplyJsonStringAndObject) {
  SstspConfig cfg;
  std::string error;

  const auto name_only = obs::json::parse(R"("rls")");
  ASSERT_TRUE(name_only.has_value());
  ASSERT_TRUE(apply_discipline_json(*name_only, &cfg, &error)) << error;
  EXPECT_EQ(cfg.discipline.name, "rls");

  const auto full = obs::json::parse(
      R"({"name":"rls","window":24,"forgetting":0.95,"innovation-gate":150,
          "holdover-max-age":16,"span":8,"k-min":0.9,"k-max":1.1})");
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(apply_discipline_json(*full, &cfg, &error)) << error;
  EXPECT_EQ(cfg.discipline.window_bps, 24);
  EXPECT_DOUBLE_EQ(cfg.discipline.forgetting, 0.95);
  EXPECT_DOUBLE_EQ(cfg.discipline.innovation_gate_us, 150.0);
  EXPECT_EQ(cfg.discipline.holdover_max_age_bps, 16);
  EXPECT_EQ(cfg.solver_span_bps, 8);
  EXPECT_DOUBLE_EQ(cfg.k_min, 0.9);
  EXPECT_DOUBLE_EQ(cfg.k_max, 1.1);
}

TEST(Discipline, ApplyJsonRejectsUnknownNestedKey) {
  SstspConfig cfg;
  std::string error;
  const auto bad = obs::json::parse(R"({"name":"rls","frobnicate":1})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(apply_discipline_json(*bad, &cfg, &error));
  EXPECT_NE(error.find("discipline.frobnicate"), std::string::npos) << error;

  const auto bad_name = obs::json::parse(R"("kalman")");
  ASSERT_TRUE(bad_name.has_value());
  EXPECT_FALSE(apply_discipline_json(*bad_name, &cfg, &error));
  EXPECT_NE(error.find("kalman"), std::string::npos);

  const auto inverted = obs::json::parse(R"({"k-min":1.1,"k-max":0.9})");
  ASSERT_TRUE(inverted.has_value());
  SstspConfig cfg2;
  EXPECT_FALSE(apply_discipline_json(*inverted, &cfg2, &error));
  EXPECT_NE(error.find("k-min"), std::string::npos);
}

}  // namespace
}  // namespace sstsp::core
