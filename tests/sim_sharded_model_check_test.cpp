// Randomized model check: sharded kernel vs the single-threaded kernel.
//
// With packet_error_rate = 0 and a degenerate receive-latency interval
// (rx_latency_min == rx_latency_max) the channel consumes no randomness
// per delivery, so the two kernels' documented RNG-stream deviation
// (DESIGN.md §12) vanishes and the sharded kernel must reproduce the
// legacy kernel EXACTLY: same delivery schedule, same protocol decisions,
// same sampled clock spreads — over random seeds, node counts, partition
// modes and churn.  Trace events are compared as multisets with trace_id
// excluded (transmission ids are (sender, seq) in the sharded kernel and
// a global counter in the legacy one; everything observable must match).
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "runner/network.h"
#include "runner/parallel_network.h"

namespace sstsp::run {
namespace {

// (time ps, node, kind, peer, value_us) — everything but trace_id.
using FlatEvent = std::tuple<std::int64_t, int, int, int, double>;

std::vector<FlatEvent> flatten(const std::vector<trace::TraceEvent>& events) {
  std::vector<FlatEvent> flat;
  flat.reserve(events.size());
  for (const auto& e : events) {
    flat.emplace_back(e.time.ps, static_cast<int>(e.node),
                      static_cast<int>(e.kind), static_cast<int>(e.peer),
                      e.value_us);
  }
  std::sort(flat.begin(), flat.end());
  return flat;
}

void expect_stats_equal(const mac::ChannelStats& a,
                        const mac::ChannelStats& b) {
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.collided_transmissions, b.collided_transmissions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.per_drops, b.per_drops);
  EXPECT_EQ(a.half_duplex_suppressed, b.half_duplex_suppressed);
  EXPECT_EQ(a.bytes_on_air, b.bytes_on_air);
}

void expect_stats_equal(const proto::ProtocolStats& a,
                        const proto::ProtocolStats& b) {
  EXPECT_EQ(a.beacons_sent, b.beacons_sent);
  EXPECT_EQ(a.beacons_received, b.beacons_received);
  EXPECT_EQ(a.adoptions, b.adoptions);
  EXPECT_EQ(a.adjustments, b.adjustments);
  EXPECT_EQ(a.rejected_interval, b.rejected_interval);
  EXPECT_EQ(a.rejected_key, b.rejected_key);
  EXPECT_EQ(a.rejected_mac, b.rejected_mac);
  EXPECT_EQ(a.rejected_guard, b.rejected_guard);
  EXPECT_EQ(a.elections_won, b.elections_won);
  EXPECT_EQ(a.demotions, b.demotions);
  EXPECT_EQ(a.coarse_steps, b.coarse_steps);
  EXPECT_EQ(a.solver_rejections, b.solver_rejections);
}

Scenario deterministic_channel_scenario(std::uint64_t seed, int nodes,
                                        double radio_range_m, bool churn) {
  Scenario s;
  s.protocol = ProtocolKind::kSstsp;
  s.num_nodes = nodes;
  s.duration_s = 6.0;
  s.seed = seed;
  s.sstsp.chain_length = 200;
  s.phy.packet_error_rate = 0.0;
  s.phy.rx_latency_max = s.phy.rx_latency_min;  // no per-delivery draw
  s.phy.radio_range_m = radio_range_m;
  if (churn) s.churn = ChurnSpec{2.0, 0.2, 1.0};
  s.trace_capacity = 1U << 20;  // retain everything; eviction would make
                                // the multiset comparison vacuous
  return s;
}

void check_scenario(const Scenario& base) {
  Network legacy(base);
  legacy.run();

  Scenario sharded_s = base;
  sharded_s.shards = 3;
  sharded_s.threads = 2;
  ParallelNetwork sharded(sharded_s);
  sharded.run();

  expect_stats_equal(legacy.channel_stats(), sharded.channel_stats());
  expect_stats_equal(legacy.honest_stats(), sharded.honest_stats());
  EXPECT_EQ(legacy.simulator().events_processed(),
            sharded.events_processed());

  // Clock-spread samples must agree to the last bit: every protocol's
  // notion of network time derives from exact delivery timestamps.
  const auto& la = legacy.max_diff_series().points();
  const auto& sa = sharded.max_diff_series().points();
  ASSERT_EQ(la.size(), sa.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].t_s, sa[i].t_s) << "sample " << i;
    EXPECT_EQ(la[i].value_us, sa[i].value_us) << "sample " << i;
  }

  ASSERT_NE(legacy.trace(), nullptr);
  EXPECT_EQ(legacy.trace()->dropped(), 0u);
  std::vector<trace::TraceEvent> sharded_events;
  for (const auto& t : sharded.shard_traces()) {
    EXPECT_EQ(t->dropped(), 0u);
    const auto part =
        t->select([](const trace::TraceEvent&) { return true; });
    sharded_events.insert(sharded_events.end(), part.begin(), part.end());
  }
  const auto legacy_flat = flatten(
      legacy.trace()->select([](const trace::TraceEvent&) { return true; }));
  const auto sharded_flat = flatten(sharded_events);
  EXPECT_GT(legacy_flat.size(), 0u);
  EXPECT_EQ(legacy_flat, sharded_flat);
}

TEST(ShardedModelCheck, SingleHopMatchesLegacyKernel) {
  for (const std::uint64_t seed : {1ULL, 23ULL, 456ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    check_scenario(deterministic_channel_scenario(
        seed, /*nodes=*/12 + static_cast<int>(seed % 9),
        /*radio_range_m=*/0.0, /*churn=*/false));
  }
}

TEST(ShardedModelCheck, SpatialPartitionMatchesLegacyKernel) {
  for (const std::uint64_t seed : {7ULL, 91ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    check_scenario(deterministic_channel_scenario(
        seed, /*nodes=*/18 + static_cast<int>(seed % 7),
        /*radio_range_m=*/35.0, /*churn=*/false));
  }
}

TEST(ShardedModelCheck, ChurnedControlTimelineMatchesLegacyKernel) {
  check_scenario(deterministic_channel_scenario(/*seed=*/5, /*nodes=*/20,
                                                /*radio_range_m=*/0.0,
                                                /*churn=*/true));
  check_scenario(deterministic_channel_scenario(/*seed=*/11, /*nodes=*/16,
                                                /*radio_range_m=*/40.0,
                                                /*churn=*/true));
}

}  // namespace
}  // namespace sstsp::run
