// Cluster formation: each broadcast-domain cluster elects exactly one
// reference with the unmodified l-BP contention, gateways stay passive in
// their home plane while their uplink halves attach to the parent, and the
// whole hierarchy is bit-identical under a fixed seed.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/sstsp_cluster.h"
#include "runner/experiment.h"
#include "runner/network.h"

namespace sstsp::cluster {
namespace {

run::Scenario three_cluster_scenario() {
  run::Scenario s;
  s.cluster.clusters = 3;
  s.cluster.nodes_per_cluster = 8;
  s.num_nodes = s.cluster.total_nodes();
  s.duration_s = 15.0;
  s.seed = 5;
  s.phy.radio_range_m = 50.0;
  s.preestablished_reference = true;
  s.sstsp.chain_length = 400;
  return s;
}

// Cluster scenarios reject attackers and run ClusterSstsp on every station,
// so the downcast is total (same contract Network::sample_cluster relies
// on).
const ClusterSstsp& proto_of(run::Network& net, std::size_t i) {
  return static_cast<const ClusterSstsp&>(net.station(i).protocol());
}

TEST(ClusterFormation, OneReferencePerClusterAndPassiveGateways) {
  const run::Scenario s = three_cluster_scenario();
  run::Network net(s);
  net.run();

  std::vector<int> references(static_cast<std::size_t>(s.cluster.clusters), 0);
  for (std::size_t i = 0; i < net.station_count(); ++i) {
    const ClusterSstsp& cs = proto_of(net, i);
    ASSERT_EQ(cs.cluster(), cluster_of(s.cluster, static_cast<mac::NodeId>(i)))
        << i;
    if (cs.is_reference()) {
      ++references[static_cast<std::size_t>(cs.cluster())];
    }
    if (cs.gateway()) {
      // The member half never holds the home reference role: a gateway sits
      // where the two parents are mutually hidden terminals and must not
      // win elections off collision bursts.
      EXPECT_FALSE(cs.is_reference()) << i;
      // The uplink half is a live passive follower of the parent cluster.
      ASSERT_NE(cs.uplink(), nullptr) << i;
      EXPECT_TRUE(cs.uplink()->is_synchronized()) << i;
      EXPECT_NE(cs.bridge(), nullptr) << i;
      EXPECT_GT(cs.bridge()->announcements(), 0u) << i;
    } else {
      EXPECT_EQ(cs.uplink(), nullptr) << i;
    }
    EXPECT_TRUE(cs.attached()) << i;
  }
  for (int c = 0; c < s.cluster.clusters; ++c) {
    EXPECT_EQ(references[static_cast<std::size_t>(c)], 1) << "cluster " << c;
  }
}

TEST(ClusterFormation, EveryNodeAttachesWithinTheBound) {
  run::Scenario s = three_cluster_scenario();
  // The steady-state window opens 20 s in; run past it.
  s.duration_s = 30.0;
  const run::RunResult res = run::run_scenario(s);
  ASSERT_FALSE(res.attach_fraction.empty());
  EXPECT_DOUBLE_EQ(res.attach_fraction.points().back().value_us, 1.0);
  ASSERT_TRUE(res.cluster_steady_max_us.has_value());
  // Two gateway hops from the root: the documented cross-cluster bound.
  EXPECT_LT(*res.cluster_steady_max_us, s.cluster.cross_cluster_bound_us());
}

TEST(ClusterFormation, SeededRunsAreBitIdentical) {
  const run::Scenario s = three_cluster_scenario();
  const run::RunResult a = run::run_scenario(s);
  const run::RunResult b = run::run_scenario(s);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.cluster_spread.size(), b.cluster_spread.size());
  for (std::size_t i = 0; i < a.cluster_spread.size(); ++i) {
    EXPECT_EQ(a.cluster_spread.points()[i].value_us,
              b.cluster_spread.points()[i].value_us)
        << i;
  }
  ASSERT_EQ(a.attach_fraction.size(), b.attach_fraction.size());
  EXPECT_EQ(a.honest.beacons_sent, b.honest.beacons_sent);
  EXPECT_EQ(a.honest.adjustments, b.honest.adjustments);
}

}  // namespace
}  // namespace sstsp::cluster
