// Cross-node trace analyzer: torn-line tolerance, causal chain stitching by
// trace_id, convergence/spike detection, recovery curves from run-summary
// fault marks, and the headline acceptance scenario — a partitioned 5-node
// live swarm whose merged telemetry + event streams show the error spike
// and the post-heal re-convergence under the 25 µs bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "net/swarm.h"
#include "obs/export.h"
#include "trace/analyzer.h"

namespace sstsp::trace {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path, std::ios::binary);
  ASSERT_TRUE(os.is_open()) << path;
  os << content;
}

std::string event_line(double t_s, int node, const std::string& kind,
                       std::uint64_t trace_id) {
  std::ostringstream ss;
  ss << R"({"type":"event","t_s":)" << t_s << R"(,"node":)" << node
     << R"(,"kind":")" << kind << R"(")";
  if (trace_id != 0) ss << R"(,"trace_id":)" << trace_id;
  ss << "}";
  return ss.str();
}

std::string cluster_sample_line(double t_s, double max_offset_us) {
  std::ostringstream ss;
  ss << R"({"type":"telemetry","v":1,"t_s":)" << t_s
     << R"(,"source":"sim","node":null,"nodes_total":5,"nodes_awake":5,)"
     << R"("nodes_synced":5,"reference":0,"max_offset_us":)" << max_offset_us
     << R"(,"mean_offset_us":1.0,"beacons_tx":10,"beacons_rx":40,)"
     << R"("adjustments":40,"coarse_steps":0,"rejects":0,"elections":0,)"
     << R"("events":100,"queue_depth":5,"audit_records":0,)"
     << R"("recovery_pending":false,"rss_kb":null,"wall_s":null})";
  return ss.str();
}

TEST(TraceAnalyzer, TornLinesAreCountedAndSkippedNeverFatal) {
  const std::string path = temp_path("torn.jsonl");
  std::ostringstream content;
  content << event_line(1.0, 0, "beacon-tx", 1) << "\n"
          << event_line(1.01, 1, "beacon-rx", 1) << "\n"
          << R"({"type":"event","t_s":2.0,"node":0,"kind":"beac)"  // torn
          << "\n"
          << "not json at all\n"
          << cluster_sample_line(2.0, 3.0) << "\n";
  write_file(path, content.str());

  std::string error;
  const auto analysis = TraceAnalysis::load({path}, &error);
  ASSERT_TRUE(analysis.has_value()) << error;
  EXPECT_EQ(analysis->stats().torn, 2u);
  EXPECT_EQ(analysis->stats().events, 2u);
  EXPECT_EQ(analysis->stats().samples_cluster, 1u);
  std::remove(path.c_str());
}

TEST(TraceAnalyzer, MissingFileIsAnError) {
  std::string error;
  const auto analysis =
      TraceAnalysis::load({temp_path("definitely_missing.jsonl")}, &error);
  EXPECT_FALSE(analysis.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceAnalyzer, StitchesCrossNodeChainsByTraceId) {
  // Two beacons: trace 1 crosses from node 0 to nodes 1 and 2 (the first
  // remote adjustment, node 1's at +150 us, sets the chain latency);
  // trace 2 is tx-only (never delivered) and must not form a chain.
  const std::string path = temp_path("chains.jsonl");
  std::ostringstream content;
  content << event_line(1.0, 0, "beacon-tx", 1) << "\n"
          << event_line(1.00005, 1, "beacon-rx", 1) << "\n"
          << event_line(1.00005, 2, "beacon-rx", 1) << "\n"
          << event_line(1.0001, 1, "auth-ok", 1) << "\n"
          << event_line(1.00015, 1, "adjustment", 1) << "\n"
          << event_line(1.0002, 2, "adjustment", 1) << "\n"
          << event_line(2.0, 0, "beacon-tx", 2) << "\n";
  write_file(path, content.str());

  std::string error;
  const auto analysis = TraceAnalysis::load({path}, &error);
  ASSERT_TRUE(analysis.has_value()) << error;
  const FunnelReport funnel = analysis->funnel();
  EXPECT_EQ(funnel.beacons_tx, 2u);
  EXPECT_EQ(funnel.beacons_rx, 2u);
  EXPECT_EQ(funnel.auth_ok, 1u);
  EXPECT_EQ(funnel.adjustments, 2u);
  EXPECT_EQ(funnel.chains, 2u);
  EXPECT_EQ(funnel.cross_node_chains, 1u);
  EXPECT_NEAR(funnel.median_tx_to_adjust_us, 150.0, 1.0);
  std::remove(path.c_str());
}

TEST(TraceAnalyzer, DetectsFirstSyncSpikeAndReconvergence) {
  const std::string path = temp_path("spike.jsonl");
  std::ostringstream content;
  content << cluster_sample_line(1.0, 400.0) << "\n"   // converging
          << cluster_sample_line(2.0, 10.0) << "\n"    // first sync
          << cluster_sample_line(3.0, 5.0) << "\n"
          << cluster_sample_line(4.0, 180.0) << "\n"   // spike start
          << cluster_sample_line(5.0, 220.0) << "\n"   // spike peak
          << cluster_sample_line(6.0, 8.0) << "\n"     // re-converged
          << cluster_sample_line(7.0, 4.0) << "\n";
  write_file(path, content.str());

  std::string error;
  const auto analysis = TraceAnalysis::load({path}, &error);
  ASSERT_TRUE(analysis.has_value()) << error;
  const ConvergenceReport report = analysis->convergence();
  ASSERT_TRUE(report.first_sync_s.has_value());
  EXPECT_DOUBLE_EQ(*report.first_sync_s, 2.0);
  ASSERT_EQ(report.spikes.size(), 1u);
  const ErrorSpike& spike = report.spikes.front();
  EXPECT_DOUBLE_EQ(spike.start_s, 4.0);
  EXPECT_DOUBLE_EQ(spike.peak_us, 220.0);
  EXPECT_DOUBLE_EQ(spike.peak_t_s, 5.0);
  EXPECT_TRUE(spike.recovered);
  EXPECT_DOUBLE_EQ(spike.recovered_s, 6.0);
  ASSERT_TRUE(report.final_max_offset_us.has_value());
  EXPECT_DOUBLE_EQ(*report.final_max_offset_us, 4.0);
  std::remove(path.c_str());
}

TEST(TraceAnalyzer, ExtractsFaultMarksAndWindowsRecoveryCurves) {
  const std::string path = temp_path("marks.jsonl");
  std::ostringstream content;
  for (int t = 1; t <= 12; ++t) {
    content << cluster_sample_line(t, t == 6 ? 300.0 : 5.0) << "\n";
  }
  content << R"({"type":"summary","recovery":{"records":[)"
          << R"({"fault":"partition-heal","node":3,"t_s":5.5,)"
          << R"("resync_s":1.2,"recovered":true}]}})"
          << "\n";
  write_file(path, content.str());

  std::string error;
  const auto analysis = TraceAnalysis::load({path}, &error);
  ASSERT_TRUE(analysis.has_value()) << error;
  ASSERT_EQ(analysis->fault_marks().size(), 1u);
  const FaultMark& mark = analysis->fault_marks().front();
  EXPECT_EQ(mark.fault, "partition-heal");
  EXPECT_EQ(mark.node, 3);
  EXPECT_DOUBLE_EQ(mark.t_s, 5.5);
  EXPECT_TRUE(mark.recovered);

  const auto curves = analysis->recovery_curves(analysis->fault_marks(),
                                                /*pre_s=*/2.0, /*post_s=*/4.0);
  ASSERT_EQ(curves.size(), 1u);
  // Window [3.5, 9.5] holds samples at t=4..9 — includes the 300 us spike.
  ASSERT_FALSE(curves.front().curve.empty());
  EXPECT_GE(curves.front().curve.front().t_s, 3.5);
  EXPECT_LE(curves.front().curve.back().t_s, 9.5);
  double peak = 0.0;
  for (const auto& p : curves.front().curve) peak = std::max(peak, p.err_us);
  EXPECT_DOUBLE_EQ(peak, 300.0);
  std::remove(path.c_str());
}

TEST(TraceAnalyzer, WritersProduceMergedStreamAndTimelineCsv) {
  const std::string in_a = temp_path("merge_a.jsonl");
  const std::string in_b = temp_path("merge_b.jsonl");
  // Deliberately out of order across the two inputs.
  write_file(in_a, event_line(3.0, 0, "beacon-tx", 7) + "\n");
  write_file(in_b, cluster_sample_line(1.0, 50.0) + "\n" +
                       cluster_sample_line(2.0, 9.0) + "\n");

  std::string error;
  const auto analysis = TraceAnalysis::load({in_a, in_b}, &error);
  ASSERT_TRUE(analysis.has_value()) << error;

  const std::string merged = temp_path("merged.jsonl");
  ASSERT_TRUE(analysis->write_merged_jsonl(merged, &error)) << error;
  std::ifstream ms(merged);
  std::string l1, l2, l3;
  ASSERT_TRUE(std::getline(ms, l1) && std::getline(ms, l2) &&
              std::getline(ms, l3));
  EXPECT_NE(l1.find("\"t_s\":1"), std::string::npos);
  EXPECT_NE(l2.find("\"t_s\":2"), std::string::npos);
  EXPECT_NE(l3.find("\"t_s\":3"), std::string::npos);

  const std::string csv = temp_path("timeline.csv");
  ASSERT_TRUE(analysis->write_timeline_csv(csv, &error)) << error;
  std::ifstream cs(csv);
  std::string header;
  ASSERT_TRUE(std::getline(cs, header));
  EXPECT_EQ(header, "t_s,node,err_us,synced");

  std::remove(in_a.c_str());
  std::remove(in_b.c_str());
  std::remove(merged.c_str());
  std::remove(csv.c_str());
}

// The acceptance scenario: a 5-node live swarm over loopback, nodes 3+4 cut
// off for 10 s mid-run.  The merged telemetry + event streams must show the
// cluster re-join — an error spike above the 25 µs bound that re-converges
// after the heal — and the funnel must stitch cross-node chains.
TEST(TraceAnalyzer, PartitionedSwarmShowsSpikeAndReconvergence) {
  const std::string tele_path = temp_path("part_tele.jsonl");
  const std::string events_path = temp_path("part_events.jsonl");

  net::SwarmConfig config;
  config.transport = net::TransportKind::kLoopback;
  config.nodes = 5;
  config.duration_s = 40.0;
  config.seed = 7;
  config.monitor = true;
  config.trace_capacity = 1 << 14;
  config.telemetry_out = tele_path;
  config.telemetry_interval_s = 1.0;
  config.telemetry_per_node = 1;
  fault::Partition cut;
  cut.start_s = 15.0;
  cut.end_s = 25.0;
  cut.group_a = {3, 4};
  config.faults.partitions.push_back(cut);

  std::string error;
  auto swarm = net::Swarm::create(config, &error);
  ASSERT_NE(swarm, nullptr) << error;
  {
    std::ofstream events(events_path);
    ASSERT_TRUE(events.is_open());
    obs::attach_jsonl_sink(*swarm->trace(), events);
    swarm->run();
  }
  // The partition is a *planned* fault: no node may be flagged as failed.
  const run::RunResult result = swarm->collect();
  EXPECT_TRUE(swarm->failed_nodes().empty());

  const auto analysis = TraceAnalysis::load({tele_path, events_path}, &error);
  ASSERT_TRUE(analysis.has_value()) << error;
  EXPECT_EQ(analysis->stats().torn, 0u);
  EXPECT_GT(analysis->stats().events, 0u);
  EXPECT_GT(analysis->stats().samples_cluster, 0u);
  EXPECT_GT(analysis->stats().samples_node, 0u);

  const FunnelReport funnel = analysis->funnel();
  EXPECT_GT(funnel.beacons_tx, 0u);
  EXPECT_GT(funnel.cross_node_chains, 0u);
  EXPECT_TRUE(std::isfinite(funnel.median_tx_to_adjust_us));

  const ConvergenceReport report = analysis->convergence();
  ASSERT_TRUE(report.first_sync_s.has_value());
  EXPECT_LT(*report.first_sync_s, 15.0);  // synced before the cut

  // The heal pulls the partitioned group back: at least one excursion above
  // the 25 µs bound that re-converges before the run ends.
  bool recovered_spike = false;
  for (const ErrorSpike& spike : report.spikes) {
    if (spike.recovered) recovered_spike = true;
  }
  EXPECT_TRUE(recovered_spike)
      << report.spikes.size() << " spike(s), none re-converged";
  ASSERT_TRUE(report.final_max_offset_us.has_value());
  EXPECT_LT(*report.final_max_offset_us, 25.0);

  // The run summary's recovery tracker saw the heal too.
  ASSERT_TRUE(result.recovery.has_value());
  (void)result;

  std::remove(tele_path.c_str());
  std::remove(events_path.c_str());
}

}  // namespace
}  // namespace sstsp::trace
