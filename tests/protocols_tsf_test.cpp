// TSF behaviour at the protocol level: forward-only adoption, the
// fastest-node-asynchronization pathology, and basic beaconing discipline.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "mac/channel.h"
#include "protocols/station.h"
#include "protocols/tsf_family.h"
#include "sim/simulator.h"

namespace sstsp::proto {
namespace {

using sim::SimTime;
using namespace sstsp::sim::literals;

struct TsfNet {
  sim::Simulator sim{11};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  std::vector<std::unique_ptr<Station>> stations;

  explicit TsfNet(double per = 0.0) {
    phy.packet_error_rate = per;
    channel = std::make_unique<mac::Channel>(sim, phy);
  }

  Station& add(double ppm, double offset_us) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    auto st = std::make_unique<Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us),
        mac::Position{static_cast<double>(id), 0.0});
    st->set_protocol(std::make_unique<Tsf>(*st));
    stations.push_back(std::move(st));
    return *stations.back();
  }

  void start_all() {
    for (auto& st : stations) st->power_on();
  }

  double spread_us() const {
    double lo = 1e18;
    double hi = -1e18;
    for (const auto& st : stations) {
      const double v = st->protocol().network_time_us(sim.now());
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  }
};

TEST(Tsf, TwoNodesSynchronizeToFaster) {
  TsfNet net;
  net.add(+100, 0.0);   // fast
  net.add(-100, -50.0);  // slow, behind
  net.start_all();
  net.sim.run_until(30_sec);
  // The slow node must repeatedly adopt the fast node's timestamps.
  EXPECT_LT(net.spread_us(), 25.0);
  const auto& slow = net.stations[1]->protocol();
  EXPECT_GT(slow.stats().adoptions, 0u);
}

TEST(Tsf, TimerNeverLeapsBackward) {
  TsfNet net;
  for (int i = 0; i < 8; ++i) {
    net.add(-100.0 + 25.0 * i, -100.0 + 30.0 * i);
  }
  net.start_all();
  // Sample every 10 ms and assert monotonicity of every timer.
  std::vector<double> prev(net.stations.size(), -1e18);
  for (int step = 0; step < 2000; ++step) {
    net.sim.run_until(SimTime::from_ms(10 * (step + 1)));
    for (std::size_t i = 0; i < net.stations.size(); ++i) {
      const double v =
          net.stations[i]->protocol().network_time_us(net.sim.now());
      ASSERT_GE(v, prev[i]) << "station " << i << " step " << step;
      prev[i] = v;
    }
  }
}

TEST(Tsf, OnlyAdoptsLaterTimestamps) {
  // A network where one node starts 10 ms ahead: the others must converge
  // *up* to it (forward-only adoption), never it down to them.
  TsfNet net;
  net.add(0.0, 10'000.0);  // way ahead
  net.add(0.0, 0.0);
  net.add(0.0, 0.0);
  net.start_all();
  net.sim.run_until(5_sec);
  EXPECT_LT(net.spread_us(), 25.0);
  // The ahead node's timer can only have moved forward: at least its
  // initial offset plus elapsed time at its own rate.
  const double v0 =
      net.stations[0]->protocol().network_time_us(net.sim.now());
  EXPECT_GE(v0, 10'000.0 + 5e6 - 1.0);
  // The trailing nodes adopted their way up.
  EXPECT_GT(net.stations[1]->protocol().stats().adoptions, 0u);
}

TEST(Tsf, AtMostOneSuccessfulBeaconPerBp) {
  TsfNet net;
  for (int i = 0; i < 10; ++i) net.add(i * 10.0 - 50.0, i * 5.0);
  net.start_all();
  net.sim.run_until(20_sec);
  const auto& stats = net.channel->stats();
  // Successful (non-collided) transmissions cannot exceed one per BP.
  const std::uint64_t successful =
      stats.transmissions - stats.collided_transmissions;
  EXPECT_LE(successful, 200u);
  EXPECT_GT(successful, 100u);  // and the window mostly resolves cleanly
}

TEST(Tsf, FastestNodeAsynchronization) {
  // The paper's core observation: with many stations, the fastest node's
  // beacon rarely wins the contention, so the spread grows with N.
  TsfNet small;
  for (int i = 0; i < 5; ++i) small.add(i == 0 ? 100.0 : -80.0 + i, 0.0);
  small.start_all();
  small.sim.run_until(60_sec);
  const double small_spread = small.spread_us();

  TsfNet big;
  for (int i = 0; i < 60; ++i) big.add(i == 0 ? 100.0 : -80.0 + i * 0.1, 0.0);
  big.start_all();
  big.sim.run_until(60_sec);
  const double big_spread = big.spread_us();

  EXPECT_GT(big_spread, small_spread);
}

TEST(Tsf, StopCancelsActivity) {
  TsfNet net;
  net.add(0.0, 0.0);
  net.add(10.0, 5.0);
  net.start_all();
  net.sim.run_until(2_sec);
  const auto sent_before = net.stations[0]->protocol().stats().beacons_sent +
                           net.stations[1]->protocol().stats().beacons_sent;
  net.stations[0]->power_off();
  net.stations[1]->power_off();
  net.sim.run_until(10_sec);
  const auto sent_after = net.stations[0]->protocol().stats().beacons_sent +
                          net.stations[1]->protocol().stats().beacons_sent;
  EXPECT_EQ(sent_before, sent_after);
}

TEST(Tsf, RejoinedNodeResynchronizes) {
  TsfNet net;
  net.add(80.0, 0.0);
  net.add(-80.0, 10.0);
  net.add(0.0, -10.0);
  net.start_all();
  net.sim.run_until(5_sec);
  net.stations[1]->power_off();
  net.sim.run_until(25_sec);  // drifts ~ -80ppm * 20 s = -1.6 ms
  net.stations[1]->power_on();
  net.sim.run_until(40_sec);
  EXPECT_LT(net.spread_us(), 30.0);
}

}  // namespace
}  // namespace sstsp::proto
