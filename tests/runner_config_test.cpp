// run::config_to_args / load_config_args (--config files): conversion of a
// flat JSON object into argv-style flags, the documented special cases, and
// rejection of everything that is not a flat object of scalars/arrays.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "runner/config_file.h"

namespace sstsp::run {
namespace {

std::vector<std::string> args_of(const std::string& json) {
  const std::optional<obs::json::Value> root = obs::json::parse(json);
  EXPECT_TRUE(root.has_value()) << json;
  std::string error;
  const auto args = config_to_args(*root, &error);
  EXPECT_TRUE(args.has_value()) << error;
  return args.value_or(std::vector<std::string>{});
}

bool rejects(const std::string& json) {
  const std::optional<obs::json::Value> root = obs::json::parse(json);
  if (!root.has_value()) return true;
  std::string error;
  const auto args = config_to_args(*root, &error);
  EXPECT_TRUE(args.has_value() || !error.empty());
  return !args.has_value();
}

TEST(RunnerConfig, ScalarsBecomeFlagValuePairs) {
  const std::vector<std::string> args =
      args_of(R"({"nodes": 5, "duration": 10.5, "protocol": "sstsp"})");
  // Key order inside a JSON object is preserved by the parser, so the
  // argv splice is deterministic.
  const std::vector<std::string> expected = {
      "--nodes", "5", "--duration", "10.5", "--protocol", "sstsp"};
  EXPECT_EQ(args, expected);
}

TEST(RunnerConfig, IntegersRenderWithoutDecimalPoint) {
  const std::vector<std::string> args = args_of(R"({"seed": 42})");
  ASSERT_EQ(args.size(), 2u);
  EXPECT_EQ(args[1], "42");
  EXPECT_EQ(args[1].find('.'), std::string::npos);
}

TEST(RunnerConfig, BooleansAreBareFlagsAndFalseIsOmitted) {
  const std::vector<std::string> args =
      args_of(R"({"chart": true, "profile": false, "nodes": 3})");
  const std::vector<std::string> expected = {"--chart", "--nodes", "3"};
  EXPECT_EQ(args, expected);
}

TEST(RunnerConfig, MonitorUsesEqualsForm) {
  const std::vector<std::string> args = args_of(R"({"monitor": "strict"})");
  const std::vector<std::string> expected = {"--monitor=strict"};
  EXPECT_EQ(args, expected);
}

TEST(RunnerConfig, ArraysJoinWithCommas) {
  const std::vector<std::string> args =
      args_of(R"({"departures": [300, 500, 800], "churn": [200, 0.05, 50]})");
  const std::vector<std::string> expected = {
      "--departures", "300,500,800", "--churn", "200,0.05,50"};
  EXPECT_EQ(args, expected);
}

TEST(RunnerConfig, RejectsNonObjectNestingAndRecursiveConfig) {
  EXPECT_TRUE(rejects(R"([1, 2, 3])"));          // not an object
  EXPECT_TRUE(rejects(R"("just a string")"));
  EXPECT_TRUE(rejects(R"({"phy": {"bp": 100}})"));  // nested object
  EXPECT_TRUE(rejects(R"({"departures": [[1], [2]]})"));  // nested array
  EXPECT_TRUE(rejects(R"({"config": "other.json"})"));    // no nesting
}

TEST(RunnerConfig, NullMeansLeaveAtDefault) {
  const std::vector<std::string> args =
      args_of(R"({"seed": null, "nodes": 2})");
  const std::vector<std::string> expected = {"--nodes", "2"};
  EXPECT_EQ(args, expected);
}

TEST(RunnerConfig, LoadReadsFileAndReportsMissingOnes) {
  const std::string path = ::testing::TempDir() + "/sstsp_config_test.json";
  {
    std::ofstream out(path);
    out << R"({"nodes": 4, "monitor": "strict", "expect-sync": true})";
  }
  std::string error;
  const auto args = load_config_args(path, &error);
  ASSERT_TRUE(args.has_value()) << error;
  const std::vector<std::string> expected = {"--nodes", "4",
                                             "--monitor=strict",
                                             "--expect-sync"};
  EXPECT_EQ(*args, expected);
  std::remove(path.c_str());

  EXPECT_FALSE(load_config_args(path, &error).has_value());
  EXPECT_FALSE(error.empty());

  {
    std::ofstream out(path);
    out << "{ not json";
  }
  EXPECT_FALSE(load_config_args(path, &error).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sstsp::run
