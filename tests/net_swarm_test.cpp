// net::Swarm over the virtual-time LoopbackTransport: a 5-node live-stack
// deployment must converge audit-clean under the PR-2 invariant monitor,
// and a seeded run must be bit-reproducible — two runs with the same
// configuration produce byte-identical JSONL sync traces.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "net/swarm.h"
#include "obs/export.h"

namespace sstsp::net {
namespace {

SwarmConfig loopback_config(std::uint64_t seed) {
  SwarmConfig config;
  config.transport = TransportKind::kLoopback;
  config.nodes = 5;
  config.duration_s = 8.0;
  config.seed = seed;
  config.monitor = true;
  config.trace_capacity = 1 << 14;
  return config;
}

// Runs one swarm to completion, streaming the event trace into `jsonl`.
run::RunResult run_swarm(const SwarmConfig& config, std::ostream& jsonl,
                         std::optional<mac::NodeId>* reference,
                         std::optional<double>* final_diff) {
  std::string error;
  std::unique_ptr<Swarm> swarm = Swarm::create(config, &error);
  EXPECT_NE(swarm, nullptr) << error;
  obs::attach_jsonl_sink(*swarm->trace(), jsonl);
  swarm->run();
  if (reference != nullptr) *reference = swarm->current_reference();
  if (final_diff != nullptr) *final_diff = swarm->instant_max_diff_us();
  return swarm->collect();
}

TEST(NetSwarm, FiveNodeLoopbackConvergesAuditClean) {
  std::ostringstream jsonl;
  std::optional<mac::NodeId> reference;
  std::optional<double> final_diff;
  const run::RunResult result =
      run_swarm(loopback_config(1), jsonl, &reference, &final_diff);

  // A reference was elected and every node tracks it inside the guard
  // threshold (eq. 5) — in fact well inside the monitor's 25 us
  // convergence band, or the audit below would not be clean.
  ASSERT_TRUE(reference.has_value());
  ASSERT_TRUE(final_diff.has_value());
  EXPECT_LT(*final_diff, 25.0);

  ASSERT_TRUE(result.audit.has_value());
  EXPECT_TRUE(result.audit->records.empty())
      << result.audit->records.size() << " audit record(s), first: "
      << (result.audit->records.empty()
              ? std::string{}
              : result.audit->records.front().detail);

  // Wire accounting: every beacon was serialized onto the hub and fanned
  // out to the 4 other endpoints; the strict decoder rejected nothing.
  ASSERT_TRUE(result.net.has_value());
  EXPECT_GT(result.net->frames_sent, 0u);
  EXPECT_EQ(result.net->frames_received, result.net->frames_sent * 4);
  EXPECT_EQ(result.net->decode_errors, 0u);
  EXPECT_EQ(result.net->self_frames_dropped, 0u);
  EXPECT_EQ(result.net->transport.send_errors, 0u);
  EXPECT_GT(result.honest.adjustments, 0u);
}

TEST(NetSwarm, SeededRunsProduceByteIdenticalTraces) {
  std::ostringstream first_jsonl;
  std::ostringstream second_jsonl;
  const run::RunResult first =
      run_swarm(loopback_config(42), first_jsonl, nullptr, nullptr);
  const run::RunResult second =
      run_swarm(loopback_config(42), second_jsonl, nullptr, nullptr);

  const std::string a = first_jsonl.str();
  const std::string b = second_jsonl.str();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "seeded loopback runs diverged";

  // The aggregate counters must agree too, not just the trace stream.
  EXPECT_EQ(first.honest.beacons_sent, second.honest.beacons_sent);
  EXPECT_EQ(first.honest.adjustments, second.honest.adjustments);
  EXPECT_EQ(first.events_processed, second.events_processed);
  ASSERT_TRUE(first.net.has_value());
  ASSERT_TRUE(second.net.has_value());
  EXPECT_EQ(first.net->transport.bytes_sent, second.net->transport.bytes_sent);
}

TEST(NetSwarm, DifferentSeedsDiverge) {
  std::ostringstream first_jsonl;
  std::ostringstream second_jsonl;
  (void)run_swarm(loopback_config(1), first_jsonl, nullptr, nullptr);
  (void)run_swarm(loopback_config(2), second_jsonl, nullptr, nullptr);
  EXPECT_NE(first_jsonl.str(), second_jsonl.str());
}

TEST(NetSwarm, RejectsBadConfig) {
  std::string error;
  SwarmConfig config = loopback_config(1);
  config.nodes = 0;
  EXPECT_EQ(Swarm::create(config, &error), nullptr);
  EXPECT_FALSE(error.empty());
  config = loopback_config(1);
  config.duration_s = 0.0;
  EXPECT_EQ(Swarm::create(config, &error), nullptr);
}

}  // namespace
}  // namespace sstsp::net
