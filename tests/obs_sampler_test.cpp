// PhaseSampler: virtual-time tick semantics (interval, catch-up, registry
// metrics), the pure-observer determinism contract for seeded runs, and the
// SIGPROF live mode (hits land, double-arming is refused, stop restores).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "runner/experiment.h"
#include "runner/network.h"

namespace sstsp::obs {
namespace {

run::Scenario seeded_scenario() {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 10;
  s.duration_s = 8.0;
  s.seed = 77;
  s.sstsp.chain_length = 400;
  s.trace_capacity = 1 << 12;
  return s;
}

TEST(Sampler, TicksAtTheVirtualIntervalWithCatchUp) {
  Registry registry;
  PhaseSampler::Options opt;
  opt.interval_s = 1.0;
  PhaseSampler sampler(opt, registry);

  // Dense dispatches inside one interval: exactly one sample at the
  // boundary crossing.
  sampler.on_dispatch(0.2, 5);
  sampler.on_dispatch(0.9, 5);
  EXPECT_EQ(sampler.samples(), 0u);
  sampler.on_dispatch(1.0, 7);
  EXPECT_EQ(sampler.samples(), 1u);

  // A long event gap yields ONE catch-up sample, not a back-dated burst.
  sampler.on_dispatch(10.0, 3);
  EXPECT_EQ(sampler.samples(), 2u);
  sampler.on_dispatch(10.5, 3);
  EXPECT_EQ(sampler.samples(), 2u);
  sampler.on_dispatch(11.0, 3);
  EXPECT_EQ(sampler.samples(), 3u);

  const RegistrySnapshot snap = registry.snapshot();
  bool found_samples = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "sampler.samples") {
      found_samples = true;
      EXPECT_EQ(value, 3u);
    }
  }
  EXPECT_TRUE(found_samples);
  bool found_depth = false;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "sampler.queue_depth") {
      found_depth = true;
      EXPECT_EQ(hist.count, 3u);
    }
  }
  EXPECT_TRUE(found_depth);
}

TEST(Sampler, ScenarioFlagPopulatesRegistryMetrics) {
  run::Scenario s = seeded_scenario();
  s.phase_sampler = true;
  s.phase_sampler_interval_s = 0.01;
  run::Network net(s);
  ASSERT_NE(net.phase_sampler(), nullptr);
  net.run();
  EXPECT_GT(net.phase_sampler()->samples(), 0u);

  const RegistrySnapshot snap = net.metrics_registry().snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "sampler.samples") {
      found = true;
      EXPECT_GT(value, 0u);
    }
  }
  EXPECT_TRUE(found);
}

// The determinism contract: sampling draws nothing from any RNG stream and
// schedules no simulator events, so the seeded JSONL event stream is
// byte-identical with the sampler on or off.
TEST(Sampler, SeededRunByteIdenticalWithSamplerOnOrOff) {
  const auto jsonl_of_run = [](bool with_sampler) {
    run::Scenario s = seeded_scenario();
    s.phase_sampler = with_sampler;
    run::Network net(s);
    std::ostringstream jsonl;
    attach_jsonl_sink(*net.trace(), jsonl);
    net.run();
    net.trace()->set_sink({});
    return jsonl.str();
  };
  const std::string without = jsonl_of_run(false);
  ASSERT_FALSE(without.empty());
  EXPECT_EQ(without, jsonl_of_run(true));
}

TEST(Sampler, LiveModeCountsHitsAndRefusesDoubleArming) {
  Registry registry;
  PhaseSampler::Options opt;
  opt.interval_s = 0.001;
  PhaseSampler sampler(opt, registry);

  std::string error;
  ASSERT_TRUE(sampler.start_live(&error)) << error;
  EXPECT_TRUE(sampler.live());

  // SIGPROF is process-global: a second armed sampler must be refused.
  PhaseSampler other(opt, registry);
  std::string other_error;
  EXPECT_FALSE(other.start_live(&other_error));
  EXPECT_FALSE(other_error.empty());

  // Burn CPU until the ITIMER_PROF tick lands at least once.  The itimer
  // counts CPU time, so this loop is guaranteed to accrue hits eventually;
  // bound the wait generously for slow CI.
  volatile double sink = 0.0;
  std::uint64_t total_hits = 0;
  for (int spin = 0; spin < 20'000 && total_hits == 0; ++spin) {
    for (int i = 0; i < 20'000; ++i) sink = sink * 1.0000001 + i;
    sampler.publish_live();
    total_hits = 0;
    for (const auto& [name, value] : registry.snapshot().counters) {
      if (name.rfind("sampler.hits.", 0) == 0) total_hits += value;
    }
  }
  sampler.stop_live();
  EXPECT_FALSE(sampler.live());
  EXPECT_GT(total_hits, 0u);

  // With no profiler attached every hit is unattributed ("idle" bucket).
  std::uint64_t idle_hits = 0;
  for (const auto& [name, value] : registry.snapshot().counters) {
    if (name == "sampler.hits.idle") idle_hits = value;
  }
  EXPECT_EQ(idle_hits, total_hits);

  // Freed up: arming the second sampler now succeeds.
  ASSERT_TRUE(other.start_live(&other_error)) << other_error;
  other.stop_live();
}

}  // namespace
}  // namespace sstsp::obs
