// Metrics registry: counters, gauges, log-bucketed histograms, snapshots,
// and the merge path parallel sweeps rely on (one registry per thread,
// combined afterwards).
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "runner/thread_pool.h"

namespace sstsp::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Registry reg;
  Counter& c = reg.counter("events");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same counter.
  EXPECT_EQ(reg.counter("events").value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("depth");
  g.set(3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(Histogram, ExactStatsAreExact) {
  Histogram h;
  for (const double v : {4.0, -2.0, 10.0, 0.5}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.5);
  EXPECT_DOUBLE_EQ(h.min(), -2.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.125);
}

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

// Quantiles interpolate within a base-2 bucket, so the relative error is
// bounded by the bucket width: a factor of 2 either way.
TEST(Histogram, QuantilesWithinBucketTolerance) {
  Histogram h;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 100.0);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {0.5, 0.9, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(p * (values.size() - 1))];
    const double est = h.quantile(p);
    EXPECT_GE(est, exact / 2.0) << "p = " << p;
    EXPECT_LE(est, exact * 2.0) << "p = " << p;
  }
  // Quantiles never exceed the observed magnitude extremes.
  EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, MergeEqualsRecordingEverythingInOne) {
  Histogram a;
  Histogram b;
  Histogram all;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    ((i % 2 == 0) ? a : b).record(v);
    all.record(v);
  }
  a.merge_from(b);
  EXPECT_EQ(a.count(), all.count());
  // Sums differ only by floating-point addition order.
  EXPECT_NEAR(a.sum(), all.sum(), 1e-9 * std::fabs(all.sum()) + 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_EQ(a.buckets(), all.buckets());  // bucketed merge is exact
  EXPECT_DOUBLE_EQ(a.quantile(0.9), all.quantile(0.9));
}

// The sweep pattern: one registry per worker thread, no shared state while
// recording, merged into one registry afterwards.
TEST(Registry, MergeAcrossThreadPool) {
  constexpr unsigned kTasks = 8;
  constexpr int kPerTask = 1000;
  std::vector<Registry> parts(kTasks);

  run::ThreadPool pool(4);
  for (unsigned t = 0; t < kTasks; ++t) {
    pool.submit([&parts, t] {
      Registry& reg = parts[t];
      Counter& c = reg.counter("events");
      Histogram& h = reg.histogram("err_us");
      for (int i = 0; i < kPerTask; ++i) {
        c.inc();
        h.record(static_cast<double>(t) + 1.0);
      }
      reg.gauge("last_depth").set(static_cast<double>(t));
    });
  }
  pool.wait_idle();

  Registry total;
  for (const Registry& part : parts) total.merge_from(part);
  EXPECT_EQ(total.counter("events").value(), kTasks * kPerTask);
  EXPECT_EQ(total.histogram("err_us").count(), kTasks * kPerTask);
  EXPECT_DOUBLE_EQ(total.histogram("err_us").min(), 1.0);
  EXPECT_DOUBLE_EQ(total.histogram("err_us").max(), 8.0);
}

TEST(Registry, SnapshotIsSortedPlainData) {
  Registry reg;
  reg.counter("b").inc(2);
  reg.counter("a").inc(1);
  reg.gauge("g").set(-3.5);
  reg.histogram("h").record(7.0);

  const RegistrySnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "a");
  EXPECT_EQ(s.counters[1].first, "b");
  EXPECT_EQ(s.counters[1].second, 2u);
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(s.gauges[0].second, -3.5);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].second.count, 1u);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(RegistrySnapshot{}.empty());
}

TEST(Registry, SnapshotJsonParses) {
  Registry reg;
  reg.counter("event.beacon-tx").inc(3);
  reg.histogram("sync.max_diff_us").record(4.25);

  std::ostringstream os;
  reg.snapshot().write_json(os);
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const json::Value* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* c = counters->find("event.beacon-tx");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number, 3.0);
  const json::Value* h = doc->find("histograms");
  ASSERT_NE(h, nullptr);
  const json::Value* hist = h->find("sync.max_diff_us");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("max")->number, 4.25);
}

}  // namespace
}  // namespace sstsp::obs
