// FaultPlan JSON: parse/serialize round-trip identity, field- and
// line-precise error reporting, and "reference" victim resolution.
#include "fault/plan.h"

#include <gtest/gtest.h>

#include <string>

#include "mac/frame.h"

namespace sstsp::fault {
namespace {

TEST(FaultPlan, ParsesEveryDirectiveKind) {
  std::string error;
  const auto plan = parse_plan_text(R"({
    "seed": 9,
    "packet": [
      {"kind": "drop", "probability": 0.25, "start": 5, "end": 50},
      {"kind": "duplicate", "copies": 2, "copy_spacing_us": 250},
      {"kind": "delay", "delay_min_us": 100, "delay_max_us": 900,
       "from": 3, "to": 7},
      {"kind": "reorder", "gap_us": 50000},
      {"kind": "corrupt", "probability": 0.05}
    ],
    "partitions": [
      {"start": 20, "end": 40, "group_a": [0, 1], "asymmetric": true}
    ],
    "node_faults": [
      {"kind": "crash", "node": "reference", "at": 30, "restart": 45},
      {"kind": "pause", "node": 2, "at": 10}
    ],
    "clock_faults": [
      {"node": 1, "at": 25, "step_us": 500, "drift_delta_ppm": 20}
    ]
  })",
                                    &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->seed, 9u);
  ASSERT_EQ(plan->packet.size(), 5u);
  EXPECT_EQ(plan->packet[0].kind, PacketFaultKind::kDrop);
  EXPECT_DOUBLE_EQ(plan->packet[0].probability, 0.25);
  EXPECT_DOUBLE_EQ(plan->packet[0].start_s, 5.0);
  EXPECT_DOUBLE_EQ(plan->packet[0].end_s, 50.0);
  EXPECT_EQ(plan->packet[1].kind, PacketFaultKind::kDuplicate);
  EXPECT_EQ(plan->packet[1].copies, 2);
  EXPECT_EQ(plan->packet[2].kind, PacketFaultKind::kDelay);
  EXPECT_EQ(plan->packet[2].from, 3u);
  EXPECT_EQ(plan->packet[2].to, 7u);
  EXPECT_EQ(plan->packet[3].kind, PacketFaultKind::kReorder);
  EXPECT_EQ(plan->packet[4].kind, PacketFaultKind::kCorrupt);

  ASSERT_EQ(plan->partitions.size(), 1u);
  EXPECT_TRUE(plan->partitions[0].asymmetric);
  EXPECT_TRUE(plan->partitions[0].group_b.empty());  // complement

  ASSERT_EQ(plan->node_faults.size(), 2u);
  EXPECT_EQ(plan->node_faults[0].kind, NodeFaultKind::kCrash);
  EXPECT_TRUE(plan->node_faults[0].reference);
  EXPECT_DOUBLE_EQ(plan->node_faults[0].restart_s, 45.0);
  EXPECT_EQ(plan->node_faults[1].kind, NodeFaultKind::kPause);
  EXPECT_FALSE(plan->node_faults[1].reference);
  EXPECT_EQ(plan->node_faults[1].node, 2u);

  ASSERT_EQ(plan->clock_faults.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->clock_faults[0].step_us, 500.0);
  EXPECT_DOUBLE_EQ(plan->clock_faults[0].drift_delta_ppm, 20.0);
}

TEST(FaultPlan, RoundTripIsIdentity) {
  std::string error;
  const auto plan = parse_plan_text(R"({
    "seed": 4,
    "packet": [{"kind": "drop", "probability": 0.1, "from": 2}],
    "partitions": [{"start": 10, "end": 20, "group_a": [0], "group_b": [1]}],
    "node_faults": [{"kind": "crash", "node": "reference", "at": 30}],
    "clock_faults": [{"node": 3, "at": 12, "step_us": -250}]
  })",
                                    &error);
  ASSERT_TRUE(plan.has_value()) << error;
  const std::string once = to_json_text(*plan);
  const auto reparsed = parse_plan_text(once, &error);
  ASSERT_TRUE(reparsed.has_value()) << error;
  EXPECT_EQ(to_json_text(*reparsed), once);  // serialize∘parse fixpoint
}

TEST(FaultPlan, EmptyPlanIsEmpty) {
  std::string error;
  const auto plan = parse_plan_text("{}", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlan, UnknownPacketKindNamesFieldAndLine) {
  std::string error;
  const auto plan = parse_plan_text(
      "{\n  \"packet\": [\n    {\"kind\": \"vaporize\"}\n  ]\n}", &error);
  EXPECT_FALSE(plan.has_value());
  EXPECT_NE(error.find("packet[0].kind"), std::string::npos) << error;
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(FaultPlan, NodeFaultRequiresVictim) {
  std::string error;
  const auto plan =
      parse_plan_text(R"({"node_faults": [{"kind": "crash", "at": 5}]})",
                      &error);
  EXPECT_FALSE(plan.has_value());
  EXPECT_NE(error.find("node_faults[0]"), std::string::npos) << error;
}

TEST(FaultPlan, RejectsNonObjectDocument) {
  std::string error;
  EXPECT_FALSE(parse_plan_text("[1, 2]", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(FaultPlan, WildcardNodesStayWildcards) {
  std::string error;
  const auto plan =
      parse_plan_text(R"({"packet": [{"kind": "drop"}]})", &error);
  ASSERT_TRUE(plan.has_value()) << error;
  EXPECT_EQ(plan->packet[0].from, mac::kNoNode);
  EXPECT_EQ(plan->packet[0].to, mac::kNoNode);
}

}  // namespace
}  // namespace sstsp::fault
