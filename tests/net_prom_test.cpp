// Prometheus exposition: name mangling, text rendering from a populated
// registry (validated by the structural checker the CI scrape gate uses),
// the atomic textfile writer, and a real localhost scrape against the
// reactor-hosted /metrics endpoint.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "net/prom_exporter.h"
#include "net/reactor.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace sstsp::net {
namespace {

void populate(obs::Registry& registry) {
  registry.counter("beacons.tx").inc(41);
  registry.counter("beacons.tx").inc();
  registry.gauge("cluster.max_offset_us").set(12.5);
  auto& hist = registry.histogram("sampler.phase_self_us.crypto-verify");
  for (int i = 1; i <= 100; ++i) hist.record(static_cast<double>(i));
}

TEST(Prom, NameManglingMatchesTheCharset) {
  EXPECT_EQ(prometheus_name("beacons.tx"), "beacons_tx");
  EXPECT_EQ(prometheus_name("sampler.phase_self_us.crypto-verify"),
            "sampler_phase_self_us_crypto_verify");
  // No leading digit in the Prometheus charset.
  const std::string mangled = prometheus_name("2fast");
  ASSERT_FALSE(mangled.empty());
  EXPECT_FALSE(mangled[0] >= '0' && mangled[0] <= '9');
}

TEST(Prom, BodyRendersEveryMetricAndValidates) {
  obs::Registry registry;
  populate(registry);
  const std::string body = prometheus_body(
      registry.snapshot(), {{"swarm_nodes_total", 5.0}});

  EXPECT_NE(body.find("sstsp_beacons_tx_total 42"), std::string::npos)
      << body;
  EXPECT_NE(body.find("sstsp_cluster_max_offset_us 12.5"), std::string::npos);
  EXPECT_NE(body.find("sstsp_swarm_nodes_total 5"), std::string::npos);
  // Histograms export as summaries: quantile samples plus _sum/_count.
  EXPECT_NE(body.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(
      body.find("sstsp_sampler_phase_self_us_crypto_verify_count 100"),
      std::string::npos);
  EXPECT_NE(body.find("# TYPE sstsp_beacons_tx_total counter"),
            std::string::npos);

  std::vector<std::string> errors;
  EXPECT_TRUE(validate_prometheus_text(body, &errors))
      << (errors.empty() ? "" : errors.front());
  EXPECT_TRUE(errors.empty());
}

TEST(Prom, ValidatorFlagsDefects) {
  std::vector<std::string> errors;
  EXPECT_FALSE(validate_prometheus_text("9bad_name 1\n", &errors));
  EXPECT_FALSE(errors.empty());

  errors.clear();
  EXPECT_FALSE(validate_prometheus_text("ok_name not-a-number\n", &errors));
  EXPECT_FALSE(errors.empty());

  errors.clear();
  EXPECT_FALSE(
      validate_prometheus_text("# TYPE foo frobnicator\n", &errors));
  EXPECT_FALSE(errors.empty());
}

TEST(Prom, TextfileWriterReplacesAtomically) {
  const std::string path = testing::TempDir() + "/prom_textfile_test.prom";
  std::string error;
  ASSERT_TRUE(write_prometheus_textfile(path, "sstsp_up 1\n", &error))
      << error;
  ASSERT_TRUE(write_prometheus_textfile(path, "sstsp_up 2\n", &error))
      << error;

  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "sstsp_up 2\n");

  EXPECT_FALSE(write_prometheus_textfile(
      "/nonexistent-dir/metrics.prom", "sstsp_up 1\n", &error));
  EXPECT_FALSE(error.empty());
}

TEST(Prom, ExporterServesScrapesOnTheReactor) {
  sim::Simulator sim(1);
  Reactor reactor(sim);

  obs::Registry registry;
  populate(registry);
  PromExporter exporter;
  std::string error;
  int bodies_rendered = 0;
  ASSERT_TRUE(exporter.open(
      reactor, /*port=*/0,
      [&] {
        ++bodies_rendered;
        return prometheus_body(registry.snapshot());
      },
      &error))
      << error;
  ASSERT_NE(exporter.port(), 0);

  // A plain blocking client: connect + send now, let the reactor serve,
  // then read the one-shot HTTP/1.0 response to EOF.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(exporter.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const char request[] = "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
            static_cast<ssize_t>(sizeof(request) - 1));

  reactor.anchor(sim.now());
  reactor.run_until(sim::SimTime::from_us(100'000));

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  ASSERT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos) << response;
  ASSERT_NE(response.find("\r\n\r\n"), std::string::npos);
  const std::string body = response.substr(response.find("\r\n\r\n") + 4);
  std::vector<std::string> errors;
  EXPECT_TRUE(validate_prometheus_text(body, &errors))
      << (errors.empty() ? "" : errors.front());
  EXPECT_NE(body.find("sstsp_beacons_tx_total 42"), std::string::npos);
  EXPECT_EQ(bodies_rendered, 1);
  EXPECT_EQ(exporter.scrapes(), 1u);

  exporter.close();
  EXPECT_FALSE(exporter.is_open());
}

}  // namespace
}  // namespace sstsp::net
