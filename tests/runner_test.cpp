#include <gtest/gtest.h>

#include <atomic>

#include "runner/network.h"
#include "runner/sweep.h"
#include "runner/thread_pool.h"

namespace sstsp::run {
namespace {

Scenario tiny(ProtocolKind kind, std::uint64_t seed) {
  Scenario s;
  s.protocol = kind;
  s.num_nodes = 8;
  s.duration_s = 20.0;
  s.seed = seed;
  s.sstsp.chain_length = 400;
  return s;
}

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, RunParallelHelper) {
  std::atomic<int> sum{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.push_back([&sum, i] { sum += i; });
  }
  run_parallel(std::move(tasks), 3);
  EXPECT_EQ(sum.load(), 55);
}

TEST(Sweep, ResultsInInputOrderAndDeterministic) {
  std::vector<Scenario> scenarios{tiny(ProtocolKind::kTsf, 1),
                                  tiny(ProtocolKind::kSstsp, 2),
                                  tiny(ProtocolKind::kAtsp, 3)};
  const auto parallel = run_sweep(scenarios, 3);
  ASSERT_EQ(parallel.size(), 3u);

  // Re-run serially: identical series (bit-reproducible scenarios).
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto serial = run_scenario(scenarios[i]);
    ASSERT_EQ(serial.max_diff.size(), parallel[i].max_diff.size()) << i;
    for (std::size_t p = 0; p < serial.max_diff.size(); ++p) {
      ASSERT_EQ(serial.max_diff.points()[p].value_us,
                parallel[i].max_diff.points()[p].value_us)
          << "scenario " << i << " point " << p;
    }
  }
}

TEST(Scenario, PaperSection5Factory) {
  const Scenario s = Scenario::paper_section5(ProtocolKind::kSstsp, 300, 5);
  EXPECT_EQ(s.num_nodes, 300);
  EXPECT_EQ(s.duration_s, 1000.0);
  ASSERT_TRUE(s.churn.has_value());
  EXPECT_DOUBLE_EQ(s.churn->period_s, 200.0);
  EXPECT_DOUBLE_EQ(s.churn->fraction, 0.05);
  EXPECT_EQ(s.reference_departures_s.size(), 3u);

  const Scenario t = Scenario::paper_section5(ProtocolKind::kTsf, 100);
  EXPECT_TRUE(t.reference_departures_s.empty());  // TSF has no reference
}

TEST(Scenario, ProtocolNames) {
  EXPECT_STREQ(protocol_name(ProtocolKind::kTsf), "TSF");
  EXPECT_STREQ(protocol_name(ProtocolKind::kSstsp), "SSTSP");
  EXPECT_STREQ(protocol_name(ProtocolKind::kAtsp), "ATSP");
  EXPECT_STREQ(protocol_name(ProtocolKind::kTatsp), "TATSP");
  EXPECT_STREQ(protocol_name(ProtocolKind::kSatsf), "SATSF");
}

TEST(Network, InstantMaxDiffCountsOnlyEligibleStations) {
  Scenario s = tiny(ProtocolKind::kSstsp, 4);
  Network net(s);
  net.run_until(10.0);
  const auto diff = net.instant_max_diff_us();
  ASSERT_TRUE(diff.has_value());
  EXPECT_GE(*diff, 0.0);
  // Power half the network off: the metric must still be computable from
  // the remainder.
  for (std::size_t i = 0; i < net.station_count() / 2; ++i) {
    net.station(i).power_off();
  }
  EXPECT_TRUE(net.instant_max_diff_us().has_value());
}

TEST(Network, SamplerProducesOnePointPerPeriod) {
  Scenario s = tiny(ProtocolKind::kTsf, 6);
  s.sample_period_s = 0.5;
  const auto r = run_scenario(s);
  EXPECT_EQ(r.max_diff.size(), 40u);  // 20 s / 0.5 s
}

TEST(Network, ChurnRespectsFractionAndRecovers) {
  Scenario s = tiny(ProtocolKind::kTsf, 8);
  s.duration_s = 40.0;
  s.churn = ChurnSpec{10.0, 0.25, 5.0};
  Network net(s);
  net.run_until(10.5);
  int awake = 0;
  for (std::size_t i = 0; i < net.station_count(); ++i) {
    if (net.station(i).awake()) ++awake;
  }
  EXPECT_EQ(awake, 6);  // 25% of 8 left
  net.run_until(16.0);
  awake = 0;
  for (std::size_t i = 0; i < net.station_count(); ++i) {
    if (net.station(i).awake()) ++awake;
  }
  EXPECT_EQ(awake, 8);  // and returned
}

TEST(Determinism, IdenticalSeedsIdenticalRuns) {
  for (const auto kind :
       {ProtocolKind::kTsf, ProtocolKind::kSstsp, ProtocolKind::kSatsf}) {
    const auto a = run_scenario(tiny(kind, 99));
    const auto b = run_scenario(tiny(kind, 99));
    ASSERT_EQ(a.max_diff.size(), b.max_diff.size());
    for (std::size_t i = 0; i < a.max_diff.size(); ++i) {
      ASSERT_EQ(a.max_diff.points()[i].value_us, b.max_diff.points()[i].value_us);
    }
    EXPECT_EQ(a.channel.transmissions, b.channel.transmissions);
    EXPECT_EQ(a.honest.beacons_sent, b.honest.beacons_sent);
  }
}

TEST(Determinism, DifferentSeedsDiffer) {
  const auto a = run_scenario(tiny(ProtocolKind::kTsf, 1));
  const auto b = run_scenario(tiny(ProtocolKind::kTsf, 2));
  bool any_diff = a.max_diff.size() != b.max_diff.size();
  for (std::size_t i = 0; !any_diff && i < a.max_diff.size(); ++i) {
    any_diff = a.max_diff.points()[i].value_us != b.max_diff.points()[i].value_us;
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace sstsp::run
