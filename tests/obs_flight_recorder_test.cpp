// Flight recorder: ring-buffer wraparound, the JSONL dump format, the
// audit-dump cap, and the end-to-end trigger paths — an injected fault that
// produces monitor audit records must cause a flight dump carrying the
// trigger record in both the simulator (run::Network) and the live stack
// (net::Swarm over loopback).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "net/swarm.h"
#include "obs/flight_recorder.h"
#include "obs/invariants.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "runner/network.h"
#include "runner/scenario.h"
#include "trace/event_trace.h"

namespace sstsp::obs {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

trace::TraceEvent event_at(double t_s, std::uint64_t trace_id) {
  trace::TraceEvent e;
  e.time = sim::SimTime::from_sec_double(t_s);
  e.node = 1;
  e.kind = trace::EventKind::kBeaconRx;
  e.trace_id = trace_id;
  return e;
}

std::vector<json::Value> parse_lines(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.is_open()) << path;
  std::vector<json::Value> out;
  std::string line;
  while (std::getline(is, line)) {
    auto v = json::parse(line);
    EXPECT_TRUE(v.has_value()) << line;
    if (v) out.push_back(std::move(*v));
  }
  return out;
}

std::string type_of(const json::Value& v) {
  const json::Value* t = v.find("type");
  return t != nullptr && t->is_string() ? t->string : std::string{};
}

TEST(FlightRecorder, RingEvictsOldestAtCapacity) {
  FlightRecorder::Config cfg;
  cfg.event_capacity = 8;
  FlightRecorder recorder(cfg, /*sink=*/nullptr);

  for (std::uint64_t i = 1; i <= 20; ++i) {
    recorder.on_trace_event(event_at(static_cast<double>(i), i));
  }
  EXPECT_EQ(recorder.events_recorded(), 20u);
  ASSERT_EQ(recorder.events_retained(), 8u);
  // The retained window is the newest 8, oldest -> newest.
  EXPECT_EQ(recorder.events().front().trace_id, 13u);
  EXPECT_EQ(recorder.events().back().trace_id, 20u);
}

TEST(FlightRecorder, DumpWritesFramedJsonlWithFlightSeqTags) {
  const std::string path = temp_path("flight_dump.jsonl");
  JsonlSink sink;
  std::string error;
  ASSERT_TRUE(sink.open(path, &error)) << error;

  FlightRecorder::Config cfg;
  cfg.event_capacity = 4;
  FlightRecorder recorder(cfg, &sink);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    recorder.on_trace_event(event_at(static_cast<double>(i), i));
  }
  TelemetrySample sample;
  sample.t_s = 6.0;
  recorder.on_sample(sample);

  recorder.dump(6.5, "dump-request", nullptr);
  EXPECT_EQ(recorder.dumps_written(), 1u);

  const auto lines = parse_lines(path);
  // Header + 4 retained events + 1 retained sample + end marker.
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(type_of(lines.front()), "flight_dump");
  EXPECT_EQ(type_of(lines.back()), "flight_dump_end");
  const json::Value* reason = lines.front().find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->string, "dump-request");
  const json::Value* trigger = lines.front().find("trigger");
  ASSERT_NE(trigger, nullptr);
  EXPECT_TRUE(trigger->is_null());

  for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
    const json::Value* seq = lines[i].find("flight_seq");
    ASSERT_NE(seq, nullptr) << "body line " << i << " missing flight_seq";
    EXPECT_EQ(seq->number, lines.front().find("seq")->number);
  }
  EXPECT_EQ(type_of(lines[1]), "event");
  EXPECT_EQ(lines[1].find("trace_id")->number, 3.0);  // oldest retained
  EXPECT_EQ(type_of(lines[5]), "telemetry");
  std::remove(path.c_str());
}

TEST(FlightRecorder, AuditDumpsAreCappedButExplicitDumpsAreNot) {
  const std::string path = temp_path("flight_cap.jsonl");
  JsonlSink sink;
  std::string error;
  ASSERT_TRUE(sink.open(path, &error)) << error;

  FlightRecorder::Config cfg;
  cfg.max_audit_dumps = 2;
  FlightRecorder recorder(cfg, &sink);
  recorder.on_trace_event(event_at(1.0, 1));

  AuditRecord record;
  record.kind = InvariantKind::kGuardViolation;
  record.severity = Severity::kCritical;
  record.node = 3;
  record.count = 1;
  for (int i = 0; i < 5; ++i) {
    recorder.on_audit_record(2.0 + i, record);
  }
  EXPECT_EQ(recorder.dumps_written(), 2u);
  EXPECT_EQ(recorder.audit_dumps_suppressed(), 3u);

  // The cap never gates operator dump requests.
  recorder.dump(10.0, "dump-request", nullptr);
  EXPECT_EQ(recorder.dumps_written(), 3u);
  std::remove(path.c_str());
}

// One delay burst longer than the 100 ms beacon period: every delayed
// beacon arrives outside its µTESLA disclosure interval, is rejected, and
// the strict monitor files key-disclosure audit records — the flight
// recorder's audit trigger.
fault::FaultPlan delay_storm(double start_s, double end_s) {
  fault::PacketFault f;
  f.kind = fault::PacketFaultKind::kDelay;
  f.start_s = start_s;
  f.end_s = end_s;
  f.probability = 1.0;
  f.delay_min_us = 120000.0;
  f.delay_max_us = 180000.0;
  fault::FaultPlan plan;
  plan.packet.push_back(f);
  return plan;
}

void expect_audit_triggered_dump(const std::string& path) {
  const auto lines = parse_lines(path);
  ASSERT_FALSE(lines.empty()) << "no flight dump was written";
  std::size_t dumps = 0;
  bool saw_trigger = false;
  for (const auto& line : lines) {
    if (type_of(line) != "flight_dump") continue;
    ++dumps;
    const json::Value* reason = line.find("reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_EQ(reason->string, "audit-record");
    const json::Value* trigger = line.find("trigger");
    if (trigger != nullptr && trigger->is_object()) {
      saw_trigger = true;
      const json::Value* kind = trigger->find("kind");
      ASSERT_NE(kind, nullptr);
      EXPECT_FALSE(kind->string.empty());
    }
  }
  EXPECT_GT(dumps, 0u);
  EXPECT_TRUE(saw_trigger) << "no dump carried its trigger audit record";
}

TEST(FlightRecorder, SimAuditRecordTriggersDumpWithTriggerAttached) {
  const std::string path = temp_path("flight_sim.jsonl");
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 10;
  s.duration_s = 8.0;
  s.seed = 7;
  s.monitor = true;
  s.faults = delay_storm(4.0, 5.0);
  s.flight_recorder_out = path;
  s.flight_capacity = 64;

  run::Network net(s);
  net.run();
  ASSERT_NE(net.flight_recorder(), nullptr);
  EXPECT_GT(net.flight_recorder()->dumps_written(), 0u);
  expect_audit_triggered_dump(path);
  std::remove(path.c_str());
}

TEST(FlightRecorder, SwarmAuditRecordTriggersDumpWithTriggerAttached) {
  const std::string path = temp_path("flight_swarm.jsonl");
  net::SwarmConfig config;
  config.transport = net::TransportKind::kLoopback;
  config.nodes = 5;
  config.duration_s = 15.0;
  config.seed = 7;
  config.monitor = true;
  config.faults = delay_storm(8.0, 10.0);
  config.flight_recorder_out = path;
  config.flight_capacity = 64;

  std::string error;
  auto swarm = net::Swarm::create(config, &error);
  ASSERT_NE(swarm, nullptr) << error;
  swarm->run();
  ASSERT_NE(swarm->flight_recorder(), nullptr);
  EXPECT_GT(swarm->flight_recorder()->dumps_written(), 0u);
  expect_audit_triggered_dump(path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sstsp::obs
