// Event trace subsystem: ring-buffer mechanics plus end-to-end recording
// through the scenario runner.
#include <gtest/gtest.h>

#include <sstream>

#include "runner/network.h"
#include "trace/event_trace.h"

namespace sstsp::trace {
namespace {

TraceEvent ev(double t_s, mac::NodeId node, EventKind kind,
              mac::NodeId peer = mac::kNoNode, double value = 0.0) {
  return TraceEvent{sim::SimTime::from_sec_double(t_s), node, kind, peer,
                    value};
}

TEST(EventTrace, RecordsAndCounts) {
  EventTrace trace(16);
  trace.record(ev(0.1, 1, EventKind::kBeaconTx));
  trace.record(ev(0.2, 2, EventKind::kAdjustment, 1, 12.5));
  trace.record(ev(0.3, 2, EventKind::kRejectGuard, 9, 400.0));
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.total_recorded(), 3u);
  EXPECT_EQ(trace.count(EventKind::kBeaconTx), 1u);
  EXPECT_EQ(trace.count(EventKind::kAdjustment), 1u);
  EXPECT_EQ(trace.count(EventKind::kDemotion), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(EventTrace, RingBufferDropsOldestButKeepsCounts) {
  EventTrace trace(4);
  for (int i = 0; i < 10; ++i) {
    trace.record(ev(0.1 * i, static_cast<mac::NodeId>(i),
                    EventKind::kBeaconTx));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.count(EventKind::kBeaconTx), 10u);  // drops still counted
  const auto retained = trace.by_kind(EventKind::kBeaconTx);
  ASSERT_EQ(retained.size(), 4u);
  EXPECT_EQ(retained.front().node, 6u);  // oldest retained
  EXPECT_EQ(retained.back().node, 9u);
}

TEST(EventTrace, SelectByKindAndNode) {
  EventTrace trace(64);
  trace.record(ev(0.1, 1, EventKind::kBeaconTx));
  trace.record(ev(0.2, 2, EventKind::kRejectKey, 7));
  trace.record(ev(0.3, 3, EventKind::kRejectKey, 1));
  EXPECT_EQ(trace.by_kind(EventKind::kRejectKey).size(), 2u);
  // by_node matches both recorder and peer roles.
  EXPECT_EQ(trace.by_node(1).size(), 2u);
  EXPECT_EQ(trace.by_node(7).size(), 1u);
  EXPECT_EQ(trace.select([](const TraceEvent& e) {
              return e.time.to_sec() > 0.15;
            }).size(),
            2u);
}

TEST(EventTrace, DumpIsHumanReadable) {
  EventTrace trace(8);
  trace.record(ev(1.5, 42, EventKind::kDemotion, 7));
  std::ostringstream ss;
  trace.dump(ss);
  EXPECT_NE(ss.str().find("demotion"), std::string::npos);
  EXPECT_NE(ss.str().find("42"), std::string::npos);
  EXPECT_NE(ss.str().find("peer 7"), std::string::npos);
}

TEST(EventTrace, ClearResetsEverything) {
  EventTrace trace(4);
  for (int i = 0; i < 8; ++i) trace.record(ev(0.1, 1, EventKind::kBeaconRx));
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.total_recorded(), 0u);
  EXPECT_EQ(trace.count(EventKind::kBeaconRx), 0u);
}

TEST(EventTrace, AllKindsHaveNames) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    EXPECT_NE(to_string(static_cast<EventKind>(k)), "?");
  }
}

TEST(EventTrace, KindFromStringRoundTrips) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    const auto back = kind_from_string(to_string(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(kind_from_string("no-such-kind").has_value());
}

// ---- end to end ---------------------------------------------------------

TEST(EventTraceIntegration, SstspRunRecordsProtocolLife) {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 12;
  s.duration_s = 30.0;
  s.seed = 3;
  s.sstsp.chain_length = 400;
  s.trace_capacity = 1 << 16;
  run::Network net(s);
  ASSERT_NE(net.trace(), nullptr);
  net.run();

  const auto& trace = *net.trace();
  // One beacon per BP from the reference.
  EXPECT_GE(trace.count(EventKind::kBeaconTx), 280u);
  // Every follower adjusts every BP.
  EXPECT_GT(trace.count(EventKind::kAdjustment), 2000u);
  EXPECT_GE(trace.count(EventKind::kElectionWon), 1u);
  EXPECT_EQ(trace.count(EventKind::kRejectKey), 0u);

  // Events are time-ordered.
  sim::SimTime prev = sim::SimTime::zero();
  for (const auto& e :
       trace.select([](const TraceEvent&) { return true; })) {
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(EventTraceIntegration, AttackRunRecordsRejections) {
  // Same configuration as attack_test's GuardRejectsStepAttacks, with the
  // trace attached: the rejections and the takeover demotion must appear
  // as structured events.
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 15;
  s.duration_s = 120.0;
  s.seed = 9;
  s.sstsp.chain_length = 1400;
  s.trace_capacity = 1 << 16;
  s.attack = "internal-ref";
  s.sstsp_attack.start_s = 40.0;
  s.sstsp_attack.end_s = 100.0;
  s.sstsp_attack.skew_rate_us_per_s = 1e5;  // stepped: rejected by guard
  run::Network net(s);
  net.run();
  EXPECT_GE(net.trace()->count(EventKind::kRejectGuard), 10u);
  EXPECT_GE(net.trace()->count(EventKind::kDemotion), 1u);
  EXPECT_GE(net.trace()->count(EventKind::kElectionWon), 2u);
}

TEST(EventTraceIntegration, NoTraceByDefault) {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kTsf;
  s.num_nodes = 5;
  s.duration_s = 5.0;
  run::Network net(s);
  EXPECT_EQ(net.trace(), nullptr);
  net.run();  // and nothing crashes without a sink
}

}  // namespace
}  // namespace sstsp::trace
