#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "metrics/report.h"
#include "metrics/series.h"

namespace sstsp::metrics {
namespace {

Series ramp() {
  Series s;
  for (int i = 0; i <= 100; ++i) {
    s.push(0.1 * i, static_cast<double>(100 - i));
  }
  return s;
}

TEST(Series, MaxMeanInWindow) {
  const Series s = ramp();
  EXPECT_DOUBLE_EQ(*s.max_in(0.0, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(*s.max_in(5.0, 10.0), 50.0);
  EXPECT_DOUBLE_EQ(*s.mean_in(0.0, 10.0), 50.0);
  EXPECT_FALSE(s.max_in(11.0, 20.0).has_value());
}

TEST(Series, Quantiles) {
  Series s;
  for (int i = 1; i <= 100; ++i) s.push(i, static_cast<double>(i));
  EXPECT_NEAR(*s.quantile_in(0.5, 0, 1000), 50.5, 1e-9);
  EXPECT_NEAR(*s.quantile_in(0.99, 0, 1000), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(*s.quantile_in(0.0, 0, 1000), 1.0);
  EXPECT_DOUBLE_EQ(*s.quantile_in(1.0, 0, 1000), 100.0);
}

TEST(Series, FirstSustainedBelow) {
  Series s;
  // Above threshold until t=5, dips briefly at 6, stays below from 8.
  for (int i = 0; i <= 200; ++i) {
    const double t = 0.1 * i;
    double v = 100.0;
    if (t >= 6.0 && t < 6.3) v = 1.0;
    if (t >= 8.0) v = 2.0;
    s.push(t, v);
  }
  const auto lat = s.first_sustained_below(25.0, 1.0);
  ASSERT_TRUE(lat.has_value());
  EXPECT_NEAR(*lat, 8.0, 1e-9);
  // The brief dip is too short to count.
  EXPECT_FALSE(s.first_sustained_below(25.0, 1.0, 5.9).has_value() &&
               *s.first_sustained_below(25.0, 1.0, 5.9) < 7.0);
}

TEST(Series, FirstSustainedBelowNeverReached) {
  const Series s = ramp();  // values 100 down to 0 over 10 s
  EXPECT_FALSE(s.first_sustained_below(0.5, 5.0).has_value());
}

TEST(TextTable, RendersAlignedAscii) {
  TextTable t({"m", "latency", "error"});
  t.add_row({"1", "0.1", "12"});
  t.add_row({"22", "0.44", "7"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("| m  |"), std::string::npos);
  EXPECT_NE(out.find("| 22 |"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);  // 3 rules + header + 2 rows
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 0), "10");
}

TEST(WriteCsv, RoundTrips) {
  Series s;
  s.push(0.1, 5.5);
  s.push(0.2, 6.5);
  const std::string path = ::testing::TempDir() + "/series_test.csv";
  ASSERT_TRUE(write_csv(s, path, "max_diff_us"));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t_s,max_diff_us");
  std::getline(in, line);
  EXPECT_EQ(line, "0.1,5.5");
  std::remove(path.c_str());
}

TEST(WriteCsv, FailsOnBadPath) {
  Series s;
  EXPECT_FALSE(write_csv(s, "/nonexistent-dir-xyz/foo.csv"));
}

TEST(AsciiSeries, ShowsShape) {
  Series s;
  for (int i = 0; i < 100; ++i) {
    s.push(i, (i > 40 && i < 60) ? 100.0 : 5.0);
  }
  std::ostringstream ss;
  print_ascii_series(ss, s, 10.0);
  const std::string out = ss.str();
  // The attack-window bucket must render a longer bar than quiet buckets.
  EXPECT_NE(out.find("100.00"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(AsciiSeries, EmptySeries) {
  std::ostringstream ss;
  print_ascii_series(ss, Series{}, 1.0);
  EXPECT_NE(ss.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace sstsp::metrics
