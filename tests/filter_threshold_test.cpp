#include "filter/threshold_filter.h"

#include <gtest/gtest.h>

namespace sstsp::filter {
namespace {

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Median, RobustToExtremes) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 1e9}), 2.5);
}

TEST(ThresholdFilter, KeepsWithinThreshold) {
  const auto r = threshold_filter({10.0, 11.0, 9.5, 10.2, 50.0}, 5.0);
  EXPECT_EQ(r.kept.size(), 4u);
  EXPECT_EQ(r.rejected, 1u);
  EXPECT_DOUBLE_EQ(r.center, 10.2);
  EXPECT_NEAR(*r.mean(), (10.0 + 11.0 + 9.5 + 10.2) / 4.0, 1e-12);
}

TEST(ThresholdFilter, CenterIsMedianNotMean) {
  // A huge outlier cannot move the center (mean would be ~2e8).
  const auto r = threshold_filter({1.0, 2.0, 3.0, 1e9}, 10.0);
  EXPECT_EQ(r.kept.size(), 3u);
  EXPECT_EQ(r.rejected, 1u);
}

TEST(ThresholdFilter, MajorityAttackStillBoundedByMedian) {
  // With attackers in the minority, the median sits among honest samples
  // and the attack offsets fall outside the window.
  const auto r =
      threshold_filter({40.0, 42.0, 38.0, 41.0, 39.0, 9000.0, 9001.0}, 100.0);
  EXPECT_EQ(r.kept.size(), 5u);
  for (const double v : r.kept) EXPECT_LT(v, 100.0);
}

TEST(ThresholdFilter, EmptyInput) {
  const auto r = threshold_filter({}, 10.0);
  EXPECT_TRUE(r.kept.empty());
  EXPECT_FALSE(r.mean().has_value());
}

TEST(ThresholdFilter, AllRejectedImpossibleSinceMedianIsASample) {
  // The median is always within threshold of itself, so at least one sample
  // survives any non-empty input.
  const auto r = threshold_filter({5.0, 500.0, 50000.0}, 1.0);
  EXPECT_GE(r.kept.size(), 1u);
  EXPECT_TRUE(r.mean().has_value());
}

TEST(ThresholdFilter, BoundaryInclusive) {
  const auto r = threshold_filter({0.0, 10.0}, 5.0);
  // center = 5.0; both exactly at the threshold -> kept.
  EXPECT_EQ(r.kept.size(), 2u);
}

}  // namespace
}  // namespace sstsp::filter
