// Golden determinism: a Scenario is a pure function of its seed.  Repeated
// runs must produce bit-identical results, and run_sweep must produce the
// same per-point results regardless of worker-thread count (each scenario
// owns its Simulator and RNG substreams; threads never share state).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "runner/json_report.h"
#include "runner/sweep.h"

namespace sstsp::run {
namespace {

Scenario small_scenario(ProtocolKind kind) {
  Scenario s;
  s.protocol = kind;
  s.num_nodes = 25;
  s.duration_s = 8.0;
  s.seed = 7;
  s.sstsp.chain_length = 200;
  return s;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.sync_latency_s, b.sync_latency_s);
  EXPECT_EQ(a.steady_max_us, b.steady_max_us);
  EXPECT_EQ(a.steady_p99_us, b.steady_p99_us);

  EXPECT_EQ(a.channel.transmissions, b.channel.transmissions);
  EXPECT_EQ(a.channel.collided_transmissions,
            b.channel.collided_transmissions);
  EXPECT_EQ(a.channel.deliveries, b.channel.deliveries);
  EXPECT_EQ(a.channel.per_drops, b.channel.per_drops);
  EXPECT_EQ(a.channel.half_duplex_suppressed,
            b.channel.half_duplex_suppressed);
  EXPECT_EQ(a.channel.bytes_on_air, b.channel.bytes_on_air);

  EXPECT_EQ(a.honest.beacons_sent, b.honest.beacons_sent);
  EXPECT_EQ(a.honest.beacons_received, b.honest.beacons_received);
  EXPECT_EQ(a.honest.adjustments, b.honest.adjustments);
  EXPECT_EQ(a.honest.adoptions, b.honest.adoptions);
  EXPECT_EQ(a.honest.rejected_interval, b.honest.rejected_interval);
  EXPECT_EQ(a.honest.rejected_key, b.honest.rejected_key);
  EXPECT_EQ(a.honest.rejected_mac, b.honest.rejected_mac);
  EXPECT_EQ(a.honest.rejected_guard, b.honest.rejected_guard);
  EXPECT_EQ(a.honest.elections_won, b.honest.elections_won);
}

TEST(RunnerDeterminism, RepeatedRunsIdentical) {
  for (const auto kind : {ProtocolKind::kSstsp, ProtocolKind::kTsf}) {
    const Scenario s = small_scenario(kind);
    const RunResult first = run_scenario(s);
    const RunResult second = run_scenario(s);
    expect_identical(first, second);
    EXPECT_GT(first.channel.deliveries, 0u);
  }
}

TEST(RunnerDeterminism, ChurnRunsIdentical) {
  Scenario s = small_scenario(ProtocolKind::kSstsp);
  ChurnSpec churn;
  churn.period_s = 2.0;    // several churn events inside the short run,
  churn.fraction = 0.2;    // less than 1 s apart from the returns — the
  churn.absence_s = 1.0;   // regime that exercises per-event substreams
  s.churn = churn;
  expect_identical(run_scenario(s), run_scenario(s));
}

TEST(RunnerDeterminism, SweepResultsIndependentOfThreadCount) {
  std::vector<Scenario> scenarios;
  scenarios.push_back(small_scenario(ProtocolKind::kSstsp));
  scenarios.push_back(small_scenario(ProtocolKind::kTsf));
  Scenario churned = small_scenario(ProtocolKind::kSstsp);
  churned.churn = ChurnSpec{2.0, 0.2, 1.0};
  scenarios.push_back(churned);

  const auto serial = run_sweep(scenarios, 1);
  const auto parallel = run_sweep(scenarios, 3);
  ASSERT_EQ(serial.size(), scenarios.size());
  ASSERT_EQ(parallel.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

// The sharded kernel's determinism contract (DESIGN.md §12): for a fixed
// scenario, the serialized run document is byte-identical for every
// (shards, threads) combination — wall_seconds is the single wall-derived
// field in the document, so it is pinned before serializing.  Exercised
// over both partition modes (single-hop id blocks and spatial column
// strips) with churn active so the control timeline interleaves windows.
TEST(RunnerDeterminism, ShardThreadMatrixByteIdentical) {
  for (const bool spatial : {false, true}) {
    Scenario base = small_scenario(ProtocolKind::kSstsp);
    base.churn = ChurnSpec{2.0, 0.2, 1.0};
    if (spatial) base.phy.radio_range_m = 30.0;

    std::string reference;
    for (const int shards : {1, 2, 8}) {
      for (const int threads : {1, 2, 4}) {
        Scenario s = base;
        s.shards = shards;
        s.threads = threads;
        RunResult r = run_scenario(s);
        EXPECT_GT(r.channel.deliveries, 0u);
        r.wall_seconds = 0.0;
        std::ostringstream os;
        write_run_json(os, s, r);
        if (reference.empty()) {
          reference = os.str();
        } else {
          EXPECT_EQ(reference, os.str())
              << "shards=" << shards << " threads=" << threads
              << " spatial=" << spatial;
        }
      }
    }
  }
}

}  // namespace
}  // namespace sstsp::run
