// Range-limited channel semantics: reception range, per-receiver
// interference (hidden terminal), and range-aware carrier sense.
#include <gtest/gtest.h>

#include <vector>

#include "mac/channel.h"
#include "sim/simulator.h"

namespace sstsp::mac {
namespace {

using namespace sstsp::sim::literals;

struct Receiver {
  std::vector<Frame> frames;
  Channel::RxHandler handler() {
    return [this](const Frame& f, const RxInfo&) { frames.push_back(f); };
  }
};

Frame beacon(NodeId sender, std::int64_t ts) {
  Frame f;
  f.sender = sender;
  f.air_bytes = 56;
  f.body = TsfBeaconBody{ts};
  return f;
}

PhyParams ranged_phy(double range_m) {
  PhyParams phy;
  phy.packet_error_rate = 0.0;
  phy.radio_range_m = range_m;
  return phy;
}

TEST(RangedChannel, OutOfRangeStationsHearNothing) {
  sim::Simulator sim(1);
  Channel ch(sim, ranged_phy(50.0));
  Receiver near;
  Receiver far;
  const auto tx = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({40, 0}, near.handler());
  ch.add_station({80, 0}, far.handler());
  sim.at(1_ms, [&] { ch.transmit(tx, beacon(0, 1), 36_us); });
  sim.run_until(1_sec);
  EXPECT_EQ(near.frames.size(), 1u);
  EXPECT_TRUE(far.frames.empty());
}

TEST(RangedChannel, HiddenTerminalCollidesOnlyInTheMiddle) {
  // Classic A --- M --- B line: A and B cannot hear each other (hidden),
  // M hears both.  Simultaneous transmissions from A and B are corrupted
  // at M but received intact by A's and B's *own* neighbours.
  sim::Simulator sim(2);
  Channel ch(sim, ranged_phy(50.0));
  Receiver at_m;
  Receiver near_a;
  Receiver near_b;
  const auto a = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto b = ch.add_station({80, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({40, 0}, at_m.handler());    // hears both A and B
  ch.add_station({-30, 0}, near_a.handler());  // hears only A
  ch.add_station({110, 0}, near_b.handler());  // hears only B

  sim.at(1_ms, [&] { ch.transmit(a, beacon(0, 1), 36_us); });
  sim.at(1_ms + 5_us, [&] { ch.transmit(b, beacon(1, 2), 36_us); });
  sim.run_until(1_sec);

  EXPECT_TRUE(at_m.frames.empty());  // corrupted by the overlap
  ASSERT_EQ(near_a.frames.size(), 1u);
  EXPECT_EQ(near_a.frames[0].sender, 0u);
  ASSERT_EQ(near_b.frames.size(), 1u);
  EXPECT_EQ(near_b.frames[0].sender, 1u);
}

TEST(RangedChannel, CarrierSenseIsRangeLimited) {
  sim::Simulator sim(3);
  Channel ch(sim, ranged_phy(50.0));
  const auto tx = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto near = ch.add_station({30, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto far = ch.add_station({90, 0}, Channel::RxHandler([](auto&&...) {}));
  sim.at(1_ms, [&] { ch.transmit(tx, beacon(0, 1), 36_us); });
  sim.run_until(2_sec);
  const sim::SimTime mid = 1_ms + 20_us;
  EXPECT_TRUE(ch.would_detect_busy(near, mid));
  EXPECT_FALSE(ch.would_detect_busy(far, mid));  // cannot sense: hidden
}

TEST(RangedChannel, InRangeHelper) {
  sim::Simulator sim(4);
  Channel limited(sim, ranged_phy(50.0));
  EXPECT_TRUE(limited.in_range({0, 0}, {50, 0}));
  EXPECT_FALSE(limited.in_range({0, 0}, {50.1, 0}));
  Channel unlimited(sim, ranged_phy(0.0));
  EXPECT_TRUE(unlimited.in_range({0, 0}, {1e6, 0}));
}

TEST(RangedChannel, SpatialReuseDeliversBothFrames) {
  // Two far-apart transmitters overlapping in time: each neighbourhood
  // receives its own frame (no global collision).
  sim::Simulator sim(5);
  Channel ch(sim, ranged_phy(50.0));
  Receiver left;
  Receiver right;
  const auto a = ch.add_station({0, 0}, Channel::RxHandler([](auto&&...) {}));
  const auto b = ch.add_station({300, 0}, Channel::RxHandler([](auto&&...) {}));
  ch.add_station({20, 0}, left.handler());
  ch.add_station({320, 0}, right.handler());
  sim.at(1_ms, [&] { ch.transmit(a, beacon(0, 1), 36_us); });
  sim.at(1_ms, [&] { ch.transmit(b, beacon(1, 2), 36_us); });
  sim.run_until(1_sec);
  EXPECT_EQ(left.frames.size(), 1u);
  EXPECT_EQ(right.frames.size(), 1u);
  EXPECT_EQ(ch.stats().collided_transmissions, 0u);
}

}  // namespace
}  // namespace sstsp::mac
