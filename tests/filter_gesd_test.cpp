#include "filter/gesd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"

namespace sstsp::filter {
namespace {

std::vector<double> gaussian(sim::Rng& rng, std::size_t n, double mean,
                             double sd) {
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Box-Muller.
    const double u1 = std::max(rng.uniform(), 1e-15);
    const double u2 = rng.uniform();
    xs.push_back(mean +
                 sd * std::sqrt(-2.0 * std::log(u1)) * std::cos(2 * M_PI * u2));
  }
  return xs;
}

TEST(Gesd, CleanDataHasNoOutliers) {
  sim::Rng rng(21);
  int false_positive_runs = 0;
  for (int run = 0; run < 50; ++run) {
    const auto xs = gaussian(rng, 30, 10.0, 2.0);
    if (gesd(xs, 3, 0.05).has_outliers()) ++false_positive_runs;
  }
  // alpha = 0.05: a few false positives are expected, but not many.
  EXPECT_LE(false_positive_runs, 10);
}

TEST(Gesd, FindsSinglePlantedOutlier) {
  sim::Rng rng(22);
  auto xs = gaussian(rng, 25, 0.0, 1.0);
  xs.push_back(15.0);  // wildly offset timestamp
  const GesdResult r = gesd(xs, 3, 0.05);
  // The planted outlier must be flagged, and as the most extreme sample it
  // must be the first removed.  (At alpha = 0.05 the test may legitimately
  // flag an extra borderline sample or two from the Gaussian tail.)
  ASSERT_GE(r.outlier_indices.size(), 1u);
  EXPECT_EQ(r.outlier_indices[0], xs.size() - 1);
  EXPECT_GT(r.test_statistics[0], r.critical_values[0] * 1.5);
}

TEST(Gesd, FindsMaskedPairOfOutliers) {
  // Two nearby large outliers mask each other for a naive sequential test;
  // GESD's "largest i with R_i > lambda_i" rule still finds both.
  sim::Rng rng(23);
  auto xs = gaussian(rng, 30, 0.0, 1.0);
  xs.push_back(11.8);
  xs.push_back(12.0);
  const GesdResult r = gesd(xs, 5, 0.05);
  EXPECT_EQ(r.outlier_indices.size(), 2u);
}

TEST(Gesd, RespectsMaxOutliers) {
  sim::Rng rng(24);
  auto xs = gaussian(rng, 20, 0.0, 1.0);
  xs.push_back(50.0);
  xs.push_back(60.0);
  xs.push_back(70.0);
  const GesdResult r = gesd(xs, 2, 0.05);
  EXPECT_LE(r.outlier_indices.size(), 2u);
  EXPECT_EQ(r.test_statistics.size(), 2u);
}

TEST(Gesd, TooFewSamplesNoTest) {
  const std::vector<double> xs{1.0, 2.0, 100.0, 3.0};
  EXPECT_FALSE(gesd(xs, 2, 0.05).has_outliers());
}

TEST(Gesd, IdenticalSamplesDegenerate) {
  const std::vector<double> xs(10, 5.0);
  EXPECT_FALSE(gesd(xs, 3, 0.05).has_outliers());
}

TEST(Gesd, FilterRemovesExactlyTheOutliers) {
  sim::Rng rng(25);
  auto xs = gaussian(rng, 40, 100.0, 3.0);
  xs[5] = 400.0;
  xs[17] = -150.0;
  const auto kept = gesd_filter(xs, 4, 0.05);
  EXPECT_EQ(kept.size(), xs.size() - 2);
  EXPECT_EQ(std::count(kept.begin(), kept.end(), 400.0), 0);
  EXPECT_EQ(std::count(kept.begin(), kept.end(), -150.0), 0);
}

TEST(Gesd, AttackScenarioBiasedMinority) {
  // Coarse-sync threat model: a minority of malicious offsets at +5000 us
  // among honest offsets near 40 us.
  sim::Rng rng(26);
  auto xs = gaussian(rng, 12, 40.0, 4.0);
  xs.push_back(5000.0);
  xs.push_back(5020.0);
  const auto kept = gesd_filter(xs, 4, 0.05);
  for (const double v : kept) EXPECT_LT(v, 1000.0);
  EXPECT_EQ(kept.size(), 12u);
}

TEST(Gesd, StatisticsAreOrderedAndPositive) {
  sim::Rng rng(27);
  auto xs = gaussian(rng, 30, 0.0, 1.0);
  xs.push_back(9.0);
  const GesdResult r = gesd(xs, 3, 0.05);
  ASSERT_EQ(r.test_statistics.size(), r.critical_values.size());
  for (std::size_t i = 0; i < r.test_statistics.size(); ++i) {
    EXPECT_GT(r.test_statistics[i], 0.0);
    EXPECT_GT(r.critical_values[i], 0.0);
  }
}

}  // namespace
}  // namespace sstsp::filter
