// Bit-compatibility golden for the clock-discipline API (DESIGN.md §14).
//
// The discipline refactor moved the paper's §3.3 (k, b) solve and its
// sample-history deque behind core::ClockDiscipline.  The contract: with
// the discipline unset (the default) or explicitly set to "paper", a
// seeded run's summary JSON and its solved (k, b) sequence are identical
// to the pre-API protocol, byte for byte.  The constants below were
// captured from the pre-refactor binary (sstsp_sim --nodes 8 --duration 30
// --seed 7 --json-out) and must never be regenerated from current code —
// they ARE the contract.
#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "runner/cli.h"
#include "runner/experiment.h"
#include "runner/json_report.h"
#include "runner/network.h"
#include "trace/event_trace.h"

namespace sstsp::run {
namespace {

// Pre-refactor summary line, normalized: volatile "wall_seconds" value
// replaced by 0 and the trailing provenance block (host/toolchain
// dependent) truncated.
constexpr const char* kGoldenSummary =
    R"({"type":"summary","schema_version":2,"protocol":"SSTSP","nodes":8,"duration_s":30,"seed":7,"attack":"none","sync_latency_s":1.1,"steady_max_us":3.438650172203779,"steady_p99_us":3.4342773109674454,"events_processed":5380,"wall_seconds":0,"channel":{"transmissions":297,"collided":0,"deliveries":2079,"per_drops":0,"half_duplex_suppressed":0,"bytes_on_air":27324},"honest":{"beacons_sent":297,"beacons_received":2079,"adoptions":0,"adjustments":2065,"rejected_interval":0,"rejected_key":0,"rejected_mac":0,"rejected_guard":0,"elections_won":1,"demotions":0,"coarse_steps":0,"solver_rejections":0},"attacker":null,"net":null,"metrics":{"counters":{"event.adjustment":2065,"event.adoption":0,"event.auth-ok":2072,"event.beacon-rx":2079,"event.beacon-tx":297,"event.coarse-step":0,"event.demotion":0,"event.election-won":1,"event.reject-guard":0,"event.reject-interval":0,"event.reject-key":0,"event.reject-mac":0,"event.takeover":0},"gauges":{},"histograms":{"channel.delivery_latency_us":{"count":2079,"sum":139545.242935,"min":66.063968,"max":68.19120699999999,"mean":67.12132897306397,"p50":68.19120699999999,"p90":68.19120699999999,"p99":68.19120699999999},"sim.event_queue_depth":{"count":5380,"sum":53537,"min":8,"max":20,"mean":9.951115241635687,"p50":12.005212211466866,"p90":15.209977661950855,"p99":15.932241250930751},"station.adjustment_rate_ppm":{"count":2065,"sum":-139266.4185543112,"min":-443.97055235467775,"max":384.6434608547611,"mean":-67.44136491734199,"p50":85.5195344970906,"p90":143.3711790393013,"p99":247.33624454148472},"station.coarse_step_us":{"count":0,"sum":0,"min":0,"max":0,"mean":0,"p50":0,"p90":0,"p99":0},"station.reject_offset_us":{"count":0,"sum":0,"min":0,"max":0,"mean":0,"p50":0,"p90":0,"p99":0},"sync.max_diff_us":{"count":300,"sum":2182.446728802286,"min":1.0877102818340063,"max":218.39262806379702,"mean":7.274822429340953,"p50":2.957692307692308,"p90":3.8807692307692307,"p99":181.33333333333334},"sync.node_error_us":{"count":2400,"sum":4939.135107451366,"min":0.0003538294695317745,"max":121.76101071585435,"mean":2.057972961438069,"p50":0.7911764705882354,"p90":1.829663212435233,"p99":51.63636363636364}}},"profile":null,"audit":null,"recovery":null)";

// The first 12 solved adjustment rates, (k - 1) * 1e6 ppm as the trace
// records them — the (k, b) sequence distilled to its free parameter.
constexpr double kGoldenAdjustmentPpm[] = {
    12.719375295899837,  -116.87633908741279, 384.6434608547611,
    -249.9122843540036,  50.951519215303165,  -296.6905632070249,
    -443.97055235467775, -75.09823194784548,  -223.80215412698414,
    -79.733801045756,    214.122101304115,    -81.96643423075133,
};

Scenario golden_scenario(const std::vector<std::string>& extra = {}) {
  std::vector<std::string> args{"--nodes", "8",    "--duration", "30",
                                "--seed",  "7",    "--json-out", "/dev/null"};
  args.insert(args.end(), extra.begin(), extra.end());
  std::string error;
  const auto opts = parse_cli(args, &error);
  EXPECT_TRUE(opts.has_value()) << error;
  return opts->scenario;
}

std::string normalized_summary(const Scenario& s, const RunResult& r) {
  std::ostringstream os;
  write_summary_jsonl(os, s, r);
  std::string line = os.str();
  if (!line.empty() && line.back() == '\n') line.pop_back();
  line = std::regex_replace(
      line, std::regex("\"wall_seconds\":[-+0-9.eE]+"), "\"wall_seconds\":0");
  // Truncate at the provenance block (host/toolchain dependent), exactly
  // as the golden constant was truncated at capture time.
  const auto prov = line.find(",\"provenance\"");
  if (prov != std::string::npos) line.resize(prov);
  return line;
}

TEST(DisciplineGolden, DefaultSummaryByteIdentical) {
  const Scenario s = golden_scenario();
  ASSERT_EQ(s.sstsp.discipline.effective_name(), "paper");
  const RunResult r = run_scenario(s);
  EXPECT_EQ(normalized_summary(s, r), kGoldenSummary);
}

TEST(DisciplineGolden, ExplicitPaperEqualsDefault) {
  const Scenario s = golden_scenario({"--discipline", "paper"});
  const RunResult r = run_scenario(s);
  EXPECT_EQ(normalized_summary(s, r), kGoldenSummary);
}

TEST(DisciplineGolden, AdjustmentSequencePinned) {
  Scenario s = golden_scenario();
  s.trace_capacity = 1 << 18;  // retain everything; no ring eviction
  Network net(s);
  net.run();
  ASSERT_NE(net.trace(), nullptr);
  const auto adjustments =
      net.trace()->by_kind(trace::EventKind::kAdjustment);
  ASSERT_GE(adjustments.size(), std::size(kGoldenAdjustmentPpm));
  for (std::size_t i = 0; i < std::size(kGoldenAdjustmentPpm); ++i) {
    // Bit-exact: the golden values carry the full double precision.
    EXPECT_EQ(adjustments[i].value_us, kGoldenAdjustmentPpm[i])
        << "adjustment #" << i;
  }
}

}  // namespace
}  // namespace sstsp::run
