// Scoped profiler: exclusive-time attribution with nested spans, fake-clock
// determinism, and the null-profiler (disabled) contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "obs/json.h"
#include "obs/profiler.h"

namespace sstsp::obs {
namespace {

// Injectable clock: each test advances `now` by hand, so attribution is
// checked exactly, not statistically.
struct FakeClock {
  std::uint64_t now = 0;
  Profiler make() {
    return Profiler([this] { return now; });
  }
};

TEST(Profiler, SingleSpanChargesItsPhase) {
  FakeClock clk;
  Profiler p = clk.make();
  p.begin(Phase::kDispatch);
  clk.now += 100;
  p.end();
  EXPECT_EQ(p.stats(Phase::kDispatch).exclusive_ns, 100u);
  EXPECT_EQ(p.stats(Phase::kDispatch).spans, 1u);
  EXPECT_EQ(p.total_ns(), 100u);
}

TEST(Profiler, NestedSpanPausesParent) {
  FakeClock clk;
  Profiler p = clk.make();
  p.begin(Phase::kDispatch);
  clk.now += 10;  // dispatch alone
  p.begin(Phase::kCryptoVerify);
  clk.now += 70;  // crypto, dispatch paused
  p.end();
  clk.now += 20;  // dispatch resumes
  p.end();

  EXPECT_EQ(p.stats(Phase::kDispatch).exclusive_ns, 30u);
  EXPECT_EQ(p.stats(Phase::kCryptoVerify).exclusive_ns, 70u);
  EXPECT_EQ(p.total_ns(), 100u);  // breakdown sums to total, no double count
}

TEST(Profiler, SamePhaseNestedStillSumsToTotal) {
  FakeClock clk;
  Profiler p = clk.make();
  p.begin(Phase::kDispatch);
  clk.now += 5;
  p.begin(Phase::kDispatch);  // recursive dispatch (nested simulator step)
  clk.now += 15;
  p.end();
  clk.now += 5;
  p.end();
  EXPECT_EQ(p.stats(Phase::kDispatch).exclusive_ns, 25u);
  EXPECT_EQ(p.stats(Phase::kDispatch).spans, 2u);
}

TEST(Profiler, ThreeLevelNesting) {
  FakeClock clk;
  Profiler p = clk.make();
  p.begin(Phase::kDispatch);
  clk.now += 1;
  p.begin(Phase::kChannelDelivery);
  clk.now += 2;
  p.begin(Phase::kFilterEval);
  clk.now += 4;
  p.end();
  clk.now += 8;
  p.end();
  clk.now += 16;
  p.end();
  EXPECT_EQ(p.stats(Phase::kDispatch).exclusive_ns, 17u);
  EXPECT_EQ(p.stats(Phase::kChannelDelivery).exclusive_ns, 10u);
  EXPECT_EQ(p.stats(Phase::kFilterEval).exclusive_ns, 4u);
  EXPECT_EQ(p.total_ns(), 31u);
}

TEST(Profiler, UnbalancedEndIsIgnored) {
  FakeClock clk;
  Profiler p = clk.make();
  p.end();  // no open span: must not corrupt anything
  p.begin(Phase::kFilterEval);
  clk.now += 3;
  p.end();
  p.end();
  EXPECT_EQ(p.total_ns(), 3u);
}

TEST(Profiler, ResetClearsEverything) {
  FakeClock clk;
  Profiler p = clk.make();
  p.begin(Phase::kDispatch);
  clk.now += 9;
  p.end();
  p.reset();
  EXPECT_EQ(p.total_ns(), 0u);
  EXPECT_EQ(p.stats(Phase::kDispatch).spans, 0u);
}

// The disabled contract: a null profiler makes Span construction and
// destruction no-ops, so instrumented code needs no branches of its own.
TEST(Span, NullProfilerIsANoOp) {
  for (int i = 0; i < 1000; ++i) {
    Span outer(nullptr, Phase::kDispatch);
    Span inner(nullptr, Phase::kCryptoVerify);
  }
  SUCCEED();
}

TEST(Span, RaiiMatchesBeginEnd) {
  FakeClock clk;
  Profiler p = clk.make();
  {
    Span outer(&p, Phase::kDispatch);
    clk.now += 10;
    {
      Span inner(&p, Phase::kFilterEval);
      clk.now += 30;
    }
    clk.now += 2;
  }
  EXPECT_EQ(p.stats(Phase::kDispatch).exclusive_ns, 12u);
  EXPECT_EQ(p.stats(Phase::kFilterEval).exclusive_ns, 30u);
}

TEST(ProfileSnapshot, EventsPerSecondAndJson) {
  FakeClock clk;
  Profiler p = clk.make();
  p.begin(Phase::kCryptoVerify);
  clk.now += 500;
  p.end();

  const ProfileSnapshot s = p.snapshot(/*events=*/1000, /*wall_seconds=*/0.5);
  EXPECT_DOUBLE_EQ(s.events_per_second(), 2000.0);
  EXPECT_EQ(s.total_ns, 500u);

  std::ostringstream os;
  s.write_json(os);
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(doc->find("events")->number, 1000.0);
  const json::Value* phases = doc->find("phases");
  ASSERT_NE(phases, nullptr);
  const json::Value* crypto = phases->find("crypto-verify");
  ASSERT_NE(crypto, nullptr);
  EXPECT_DOUBLE_EQ(crypto->find("exclusive_ns")->number, 500.0);
  EXPECT_DOUBLE_EQ(crypto->find("fraction")->number, 1.0);

  std::ostringstream table;
  s.print(table);
  EXPECT_NE(table.str().find("crypto-verify"), std::string::npos);
  EXPECT_NE(table.str().find("events/s"), std::string::npos);
}

TEST(Phase, AllPhasesHaveNames) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    EXPECT_NE(phase_name(static_cast<Phase>(i)), "?");
  }
}

}  // namespace
}  // namespace sstsp::obs
