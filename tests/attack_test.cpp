// Attack-model tests: the §4/§5 adversaries against both protocols.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/replay.h"
#include "clock/drift_model.h"
#include "core/sstsp.h"
#include "crypto/hash_chain.h"
#include "runner/experiment.h"
#include "runner/network.h"

namespace sstsp::run {
namespace {

Scenario base(ProtocolKind kind, int n, double duration_s,
              std::uint64_t seed = 9) {
  Scenario s;
  s.protocol = kind;
  s.num_nodes = n;
  s.duration_s = duration_s;
  s.seed = seed;
  s.sstsp.chain_length = static_cast<std::size_t>(duration_s * 10) + 100;
  return s;
}

TEST(TsfAttack, SlowBeaconFloodDesynchronizesTsf) {
  Scenario s = base(ProtocolKind::kTsf, 30, 150);
  s.attack = "tsf-slow";
  s.tsf_attack.start_s = 50.0;
  s.tsf_attack.end_s = 120.0;
  const auto r = run_scenario(s);

  const auto before = r.max_diff.mean_in(20.0, 50.0);
  const auto during = r.max_diff.max_in(100.0, 120.0);
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(during.has_value());
  // The attack wins every contention with a never-adopted timestamp, so
  // the honest network free-runs and the spread grows far beyond baseline
  // (~190 ppm relative drift over most of the 70 s window).
  EXPECT_GT(*during, 10.0 * *before);
  EXPECT_GT(*during, 300.0);

  // After the attack the fastest beacon eventually spreads again.
  const auto after = r.max_diff.max_in(145.0, 150.0);
  ASSERT_TRUE(after.has_value());
  EXPECT_LT(*after, 0.2 * *during);
}

TEST(SstspAttack, InternalReferenceCannotDesynchronize) {
  Scenario s = base(ProtocolKind::kSstsp, 30, 150);
  s.attack = "internal-ref";
  s.sstsp_attack.start_s = 50.0;
  s.sstsp_attack.end_s = 120.0;
  const auto r = run_scenario(s);

  // The paper's Fig. 4 claim: max clock difference among honest nodes stays
  // bounded throughout the attack window.
  const auto during = r.max_diff.max_in(55.0, 120.0);
  ASSERT_TRUE(during.has_value());
  EXPECT_LT(*during, 50.0);
  const auto tail = r.max_diff.max_in(140.0, 150.0);
  ASSERT_TRUE(tail.has_value());
  EXPECT_LT(*tail, kSyncThresholdUs);
}

TEST(SstspAttack, InternalReferenceDragsTheVirtualClock) {
  // What the attacker *can* do: bias the common timeline (the paper's
  // "virtual clock ... slightly different to the real clock").  Measure the
  // slope of (network time - real time) before vs during the attack on the
  // same run: the attack must add ~ -skew_rate to it.  (The absolute slope
  // is the reference oscillator's ppm and varies per election.)
  Scenario s = base(ProtocolKind::kSstsp, 10, 120);
  s.attack = "internal-ref";
  s.sstsp_attack.start_s = 30.0;
  s.sstsp_attack.end_s = 110.0;
  s.sstsp_attack.skew_rate_us_per_s = 50.0;

  Network net(s);
  net.arm();
  const std::size_t attacker_idx = net.station_count() - 1;
  auto offset_of = [&net](std::size_t idx) {
    return net.station(idx).protocol().network_time_us(
               net.simulator().now()) -
           net.simulator().now().to_us();
  };
  // During the attack the honest network must track the attacker's virtual
  // clock: the attacker's own (frozen) adjusted clock minus the skew.  The
  // baseline is therefore the attacker's clock rate over the same window,
  // not the pre-attack reference's rate.
  net.run_until(50.0);
  const double h_a = offset_of(0);
  const double atk_a = offset_of(attacker_idx);
  net.run_until(105.0);
  const double h_b = offset_of(0);
  const double atk_b = offset_of(attacker_idx);
  const double honest_slope = (h_b - h_a) / 55.0;
  const double attacker_slope = (atk_b - atk_a) / 55.0;
  EXPECT_NEAR(honest_slope - attacker_slope, -50.0, 5.0);
}

// Hand-wired fixture: a small SSTSP network plus one custom attacker
// station (the scenario runner only wires the two §5 attackers).
struct ManualSstspNet {
  sim::Simulator sim{77};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  core::SstspConfig cfg;
  std::vector<std::unique_ptr<proto::Station>> stations;

  ManualSstspNet() {
    phy.packet_error_rate = 0.0;
    cfg.chain_length = 1200;
    channel = std::make_unique<mac::Channel>(sim, phy);
  }

  proto::Station& add_station(double ppm, double offset_us) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    auto st = std::make_unique<proto::Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us),
        mac::Position{static_cast<double>(id), 0.0});
    stations.push_back(std::move(st));
    return *stations.back();
  }

  proto::Station& add_honest(double ppm, double offset_us) {
    auto& st = add_station(ppm, offset_us);
    directory.register_node(
        st.id(), crypto::ChainParams{crypto::derive_seed(77, st.id()),
                                     cfg.chain_length});
    st.set_protocol(std::make_unique<core::Sstsp>(st, cfg, directory,
                                                  core::Sstsp::Options{}));
    return st;
  }

  void run(double until_s) {
    for (auto& st : stations) {
      if (!st->awake()) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }

  proto::ProtocolStats honest_totals() const {
    proto::ProtocolStats agg;
    for (const auto& st : stations) {
      if (!directory.known(st->id())) continue;
      const auto& s = st->protocol().stats();
      agg.rejected_key += s.rejected_key;
      agg.rejected_interval += s.rejected_interval;
      agg.rejected_mac += s.rejected_mac;
      agg.rejected_guard += s.rejected_guard;
      agg.adjustments += s.adjustments;
    }
    return agg;
  }
};

TEST(SstspAttack, ExternalForgerIsRejectedAtKeyCheck) {
  ManualSstspNet net;
  for (int i = 0; i < 8; ++i) net.add_honest(-70.0 + 20.0 * i, 10.0 * i);
  // The forger has NO registered chain — a pure external identity.
  auto& forger = net.add_station(0.0, 0.0);
  forger.set_protocol(std::make_unique<attack::ExternalForger>(
      forger, attack::ExternalForger::Params{0.1, mac::kNoNode}));
  net.run(40.0);

  const auto agg = net.honest_totals();
  EXPECT_GT(agg.rejected_key, 100u);  // every forged frame bounced
  EXPECT_GT(agg.adjustments, 1000u);  // sync unaffected

  double lo = 1e18, hi = -1e18;
  for (const auto& st : net.stations) {
    if (!net.directory.known(st->id())) continue;
    const double v = st->protocol().network_time_us(net.sim.now());
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(hi - lo, kSyncThresholdUs);
}

TEST(SstspAttack, SpoofedIdentityFailsMacOrKey) {
  ManualSstspNet net;
  for (int i = 0; i < 6; ++i) net.add_honest(-50.0 + 20.0 * i, 5.0 * i);
  auto& forger = net.add_station(0.0, 0.0);
  // Spoof an honest node's identity; the forged MAC/keys still cannot chain
  // to that node's anchor.
  forger.set_protocol(std::make_unique<attack::ExternalForger>(
      forger, attack::ExternalForger::Params{0.1, /*spoofed=*/2}));
  net.run(30.0);
  const auto agg = net.honest_totals();
  EXPECT_GT(agg.rejected_key + agg.rejected_mac, 50u);
}

TEST(SstspAttack, PulseDelayedBeaconsFailGuardCheck) {
  // Paper §4's pulse-delay attack: jam-capture-and-relay within the *same*
  // interval.  The µTESLA interval check passes (the key is not yet
  // disclosed), so the guard time is the defence line: the relayed copy's
  // timestamp sits ~30 ms behind the receiver's clock and is rejected.
  ManualSstspNet net;
  for (int i = 0; i < 6; ++i) net.add_honest(-50.0 + 20.0 * i, 5.0 * i);
  auto& relayer = net.add_station(0.0, 0.0);
  relayer.set_protocol(std::make_unique<attack::ReplayAttacker>(
      relayer, attack::ReplayParams{/*start_s=*/5.0, /*end_s=*/35.0,
                                    /*delay_bps=*/0,
                                    /*extra_delay_us=*/30000.0}));
  net.run(40.0);
  const auto agg = net.honest_totals();
  EXPECT_GT(agg.rejected_guard, 50u);
  EXPECT_EQ(agg.rejected_interval, 0u);  // interval check cannot see this

  // And the network stays synchronized regardless.
  double lo = 1e18, hi = -1e18;
  for (const auto& st : net.stations) {
    if (!net.directory.known(st->id())) continue;
    const double v = st->protocol().network_time_us(net.sim.now());
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(hi - lo, kSyncThresholdUs);
}

TEST(SstspAttack, ReplayedBeaconsFailIntervalCheck) {
  ManualSstspNet net;
  for (int i = 0; i < 6; ++i) net.add_honest(-50.0 + 20.0 * i, 5.0 * i);
  auto& replayer = net.add_station(0.0, 0.0);
  replayer.set_protocol(std::make_unique<attack::ReplayAttacker>(
      replayer, attack::ReplayParams{/*start_s=*/5.0, /*end_s=*/35.0,
                                     /*delay_bps=*/3}));
  net.run(40.0);
  const auto agg = net.honest_totals();
  // Replays land 3 intervals late: outside the µTESLA window, with a stale
  // (already-disclosed) key; receivers bounce them at the interval check.
  EXPECT_GT(agg.rejected_interval, 50u);
  EXPECT_EQ(agg.rejected_guard, 0u);
}

TEST(SstspAttack, SmoothTowIsTrackedWithoutAlarms) {
  // Reproduction finding (documented in EXPERIMENTS.md): an internal
  // reference can tow the virtual clock at rates far beyond the per-beacon
  // guard, because followers track the observed *rate* and every check —
  // guard and µTESLA interval alike — is relative to the synchronized
  // (towed) time.  The mutual synchronization guarantee still holds; only
  // absolute time is biased.
  Scenario s = base(ProtocolKind::kSstsp, 15, 120);
  s.attack = "internal-ref";
  s.sstsp_attack.start_s = 40.0;
  s.sstsp_attack.end_s = 100.0;
  s.sstsp_attack.skew_rate_us_per_s = 5000.0;  // 0.5% rate bias
  const auto r = run_scenario(s);
  EXPECT_EQ(r.honest.rejected_guard, 0u);
  const auto during = r.max_diff.max_in(45.0, 100.0);
  ASSERT_TRUE(during.has_value());
  EXPECT_LT(*during, 100.0);  // honest nodes stay mutually synchronized
}

TEST(SstspAttack, GuardRejectsStepAttacks) {
  // What the guard *does* stop: discontinuous timestamp jumps.  A skew so
  // fast it amounts to a >delta step per beacon is rejected at arrival;
  // the honest network abandons the attacker and re-elects.
  Scenario s = base(ProtocolKind::kSstsp, 15, 120);
  s.attack = "internal-ref";
  s.sstsp_attack.start_s = 40.0;
  s.sstsp_attack.end_s = 100.0;
  // 10 ms per beacon — a discontinuous step.  Every honest node rejects
  // the first stepped beacon at the guard, stops following the attacker,
  // and the network re-elects an honest reference; the silenced attacker's
  // later emissions abort.  One rejection per honest node is the entire
  // footprint of the failed attack.
  s.sstsp_attack.skew_rate_us_per_s = 1e5;
  const auto r = run_scenario(s);
  EXPECT_GE(r.honest.rejected_guard, 10u);
  EXPECT_GE(r.honest.elections_won, 2u);  // honest re-election happened
  // The honest network holds together without the attacker.
  const auto tail = r.max_diff.max_in(110.0, 120.0);
  ASSERT_TRUE(tail.has_value());
  EXPECT_LT(*tail, 100.0);
}

TEST(SstspAttack, TsfBlowupVsSstspBoundedSideBySide) {
  // The headline Fig.3-vs-Fig.4 comparison at equal scale.
  Scenario tsf = base(ProtocolKind::kTsf, 25, 120, 33);
  tsf.attack = "tsf-slow";
  tsf.tsf_attack.start_s = 40.0;
  tsf.tsf_attack.end_s = 110.0;

  Scenario sstsp = base(ProtocolKind::kSstsp, 25, 120, 33);
  sstsp.attack = "internal-ref";
  sstsp.sstsp_attack.start_s = 40.0;
  sstsp.sstsp_attack.end_s = 110.0;

  const auto r_tsf = run_scenario(tsf);
  const auto r_sstsp = run_scenario(sstsp);
  const auto tsf_during = r_tsf.max_diff.max_in(60.0, 110.0);
  const auto sstsp_during = r_sstsp.max_diff.max_in(60.0, 110.0);
  ASSERT_TRUE(tsf_during.has_value());
  ASSERT_TRUE(sstsp_during.has_value());
  EXPECT_GT(*tsf_during, 10.0 * *sstsp_during);
}

}  // namespace
}  // namespace sstsp::run
