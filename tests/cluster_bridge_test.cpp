// Gateway bridge: the TauTracker's authenticate-then-fit path in isolation
// (µTESLA deferred auth, least-squares extrapolation, epoch resets,
// freshness horizon), plus one end-to-end 2-cluster run against the
// documented per-hop translation bound.
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/gateway_bridge.h"
#include "core/beacon_security.h"
#include "core/key_directory.h"
#include "crypto/hash_chain.h"
#include "runner/experiment.h"

namespace sstsp::cluster {
namespace {

constexpr mac::NodeId kGw = 7;
constexpr double kBp = 1e5;
constexpr double kSlack = 2000.0;
constexpr double kStale = 8.0 * kBp;

/// Tracker plus a signing gateway identity: feed() plays one announcement
/// into the tracker the way ClusterSstsp::ingest_bridge would.  µTESLA
/// defers authentication, so the (local, tau) sample for interval j only
/// materializes when interval j+1's announcement discloses K_j.
struct BridgeRig {
  core::KeyDirectory directory;
  crypto::MuTeslaSchedule schedule{0.0, kBp, 64};
  crypto::ChainParams chain{crypto::derive_seed(9, kGw), 64};
  core::BeaconSigner signer{chain, schedule};
  TauTracker tracker{directory, schedule, kSlack, kStale};

  BridgeRig() { directory.register_node(kGw, chain); }

  TauIngest feed(std::int64_t j, double local_us, double tau_us) {
    const double ts_est = local_us + tau_us;
    const auto body = signer.sign(
        j, static_cast<std::int64_t>(std::llround(ts_est)), kGw, /*level=*/1);
    return tracker.ingest(body, kGw, /*arrival_hw_us=*/local_us, ts_est,
                          local_us, static_cast<std::uint64_t>(j));
  }
};

TEST(TauTracker, DeferredAuthThenLinearExtrapolation) {
  BridgeRig rig;
  // Interval 1's announcement arrives: key-valid but nothing authenticated
  // yet, so no sample and no estimate.
  const TauIngest first = rig.feed(1, 1e5, 100.0);
  EXPECT_TRUE(first.interval_ok);
  EXPECT_TRUE(first.key_valid);
  EXPECT_FALSE(first.sample_accepted);
  EXPECT_FALSE(rig.tracker.tau_us(1e5).has_value());

  // Interval 2 discloses K_1: sample (1e5, 100) lands.
  EXPECT_TRUE(rig.feed(2, 2e5, 110.0).sample_accepted);
  // Interval 3 discloses K_2: sample (2e5, 110).  Tau drifts +10 us per BP
  // (rate 1e-4, inside the clamp), so the two-point fit extrapolates the
  // line exactly.
  EXPECT_TRUE(rig.feed(3, 3e5, 120.0).sample_accepted);
  EXPECT_EQ(rig.tracker.announcer(), kGw);
  EXPECT_EQ(rig.tracker.samples_accepted(), 2u);
  ASSERT_TRUE(rig.tracker.fresh(3e5));
  const auto tau = rig.tracker.tau_us(3e5);
  ASSERT_TRUE(tau.has_value());
  EXPECT_NEAR(*tau, 120.0, 1e-9);
}

TEST(TauTracker, RateIsClampedAgainstCorruptedBaselines) {
  BridgeRig rig;
  // 100 us of tau change per BP = 1e-3 relative rate, double the clamp:
  // no honest pair of ±100 ppm oscillators can diverge that fast.
  ASSERT_FALSE(rig.feed(1, 1e5, 0.0).sample_accepted);
  ASSERT_TRUE(rig.feed(2, 2e5, 100.0).sample_accepted);
  ASSERT_TRUE(rig.feed(3, 3e5, 200.0).sample_accepted);
  // Samples (1e5, 0) and (2e5, 100); pivot (1.5e5, 50).  Unclamped the
  // line would read 150 at 2.5e5 — the clamp holds it to 5e-4.
  const auto tau = rig.tracker.tau_us(2.5e5);
  ASSERT_TRUE(tau.has_value());
  EXPECT_NEAR(*tau, 50.0 + 5e-4 * 1e5, 1e-9);
}

TEST(TauTracker, EpochGapRestartsTheBaseline) {
  BridgeRig rig;
  // Establish an old epoch: samples (1e5, 100) and (2e5, 100).
  ASSERT_FALSE(rig.feed(1, 1e5, 100.0).sample_accepted);
  ASSERT_TRUE(rig.feed(2, 2e5, 100.0).sample_accepted);
  ASSERT_TRUE(rig.feed(3, 3e5, 100.0).sample_accepted);

  // Silence past the staleness window (announcer restarted / we coasted
  // detached), then announcements resume with a very different tau.
  ASSERT_FALSE(rig.tracker.fresh(13e5));
  ASSERT_TRUE(rig.feed(13, 13e5, 500.0).key_valid);
  ASSERT_TRUE(rig.feed(14, 14e5, 500.0).sample_accepted);

  // Regression guard: the post-gap fit must be built from the NEW sample
  // only.  (An earlier bug left the ring head pointing past the restart, so
  // the one-sample fit silently read the stale pre-gap slot and served the
  // old epoch's tau.)
  ASSERT_TRUE(rig.tracker.fresh(14e5));
  const auto tau = rig.tracker.tau_us(14e5);
  ASSERT_TRUE(tau.has_value());
  EXPECT_NEAR(*tau, 500.0, 1e-9);
}

TEST(TauTracker, FreshnessHorizonTracksTheFitSpan) {
  BridgeRig rig;
  ASSERT_FALSE(rig.feed(1, 1e5, 100.0).sample_accepted);
  ASSERT_TRUE(rig.feed(2, 2e5, 100.0).sample_accepted);
  // One sample at local 1e5: zero fit span, so the estimate may coast at
  // most one announcement interval past it — never the full staleness
  // window (a young fit's rate is all noise).
  EXPECT_TRUE(rig.tracker.fresh(2e5));
  EXPECT_FALSE(rig.tracker.fresh(2e5 + 1.0));

  // A second sample widens the horizon to span + one interval.
  ASSERT_TRUE(rig.feed(3, 3e5, 100.0).sample_accepted);
  EXPECT_TRUE(rig.tracker.fresh(4e5));
  EXPECT_FALSE(rig.tracker.fresh(4e5 + 1.0));
}

TEST(TauTracker, NearSimultaneousSampleRefreshesInPlace) {
  BridgeRig rig;
  // The interval-check windows of adjacent intervals overlap inside the
  // slack; two authentications landing < 1 ms apart must not form a rate
  // baseline (the quotient would be pure noise) — the newer sample replaces
  // the older in place and the fit stays flat.
  ASSERT_FALSE(rig.feed(1, 1.49e5, 100.0).sample_accepted);
  ASSERT_TRUE(rig.feed(2, 1.495e5, 110.0).sample_accepted);
  // Interval 3 authenticates interval 2's announcement: its sample
  // (1.495e5, 110) lands 500 us after (1.49e5, 100) and replaces it.  Had
  // the pair formed a baseline, the clamped fit would read 105.125 here.
  ASSERT_TRUE(rig.feed(3, 2.5e5, 120.0).sample_accepted);
  const auto tau = rig.tracker.tau_us(1.495e5);
  ASSERT_TRUE(tau.has_value());
  EXPECT_NEAR(*tau, 110.0, 1e-9);
}

TEST(TauTracker, IntervalCheckRejectsOutOfWindowClaims) {
  BridgeRig rig;
  // Claimed interval 5 while the context clock sits in interval 1: the key
  // for interval 5 may already be public — reject before any chain work.
  const TauIngest out = rig.feed(5, 1e5, 0.0);
  EXPECT_FALSE(out.interval_ok);
  EXPECT_FALSE(out.key_valid);
  EXPECT_EQ(rig.tracker.samples_accepted(), 0u);
  // Interval 0 is never valid (chain indices start at 1).
  EXPECT_FALSE(rig.feed(0, 0.0, 0.0).interval_ok);
}

TEST(ClusterBridge, TwoClusterRunStaysInsideTheHopBound) {
  run::Scenario s;
  s.cluster.clusters = 2;
  s.cluster.nodes_per_cluster = 10;
  s.num_nodes = s.cluster.total_nodes();
  s.duration_s = 40.0;
  s.seed = 5;
  s.phy.radio_range_m = 50.0;
  s.preestablished_reference = true;
  s.sstsp.chain_length = 600;

  const run::RunResult res = run::run_scenario(s);
  ASSERT_FALSE(res.cluster_spread.empty());
  ASSERT_TRUE(res.cluster_steady_max_us.has_value());
  // Depth 1: one gateway hop from the root, so the cross-cluster Lemma-1
  // analogue bounds the steady inter-cluster offset by one hop_bound_us.
  EXPECT_LT(*res.cluster_steady_max_us, s.cluster.hop_bound_us);
  // Everybody ends the run attached to the root timescale.
  ASSERT_FALSE(res.attach_fraction.empty());
  EXPECT_DOUBLE_EQ(res.attach_fraction.points().back().value_us, 1.0);
}

}  // namespace
}  // namespace sstsp::cluster
