// On-air frame encoding (src/mac/wire.h): exact round-trips and rejection
// of malformed inputs.
#include <gtest/gtest.h>

#include "crypto/hash_chain.h"
#include "mac/wire.h"
#include "sim/rng.h"

namespace sstsp::mac {
namespace {

Frame tsf_frame(NodeId sender, std::int64_t ts) {
  Frame f;
  f.sender = sender;
  f.air_bytes = kTsfWireBytes;
  f.body = TsfBeaconBody{ts};
  return f;
}

Frame sstsp_frame(NodeId sender, std::int64_t ts, std::int64_t j,
                  std::uint8_t level) {
  Frame f;
  f.sender = sender;
  f.air_bytes = kSstspWireBytes;
  SstspBeaconBody b;
  b.timestamp_us = ts;
  b.interval = j;
  b.level = level;
  const crypto::Digest d = crypto::derive_seed(9, sender);
  b.disclosed_key = d;
  b.mac = crypto::truncate128(crypto::hash_once(d));
  f.body = b;
  return f;
}

TEST(Wire, TsfRoundTripAndSize) {
  const Frame f = tsf_frame(42, 123456789012345);
  const auto bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kTsfWireBytes);
  const auto decoded = decode_frame(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->is_tsf());
  EXPECT_EQ(decoded->sender, 42u);
  EXPECT_EQ(decoded->tsf().timestamp_us, 123456789012345);
}

TEST(Wire, SstspRoundTripAndSize) {
  const Frame f = sstsp_frame(7, 987654321, 314, 3);
  const auto bytes = encode_frame(f);
  EXPECT_EQ(bytes.size(), kSstspWireBytes);
  const auto decoded = decode_frame(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->is_sstsp());
  EXPECT_EQ(decoded->sender, 7u);
  const auto& b = decoded->sstsp();
  EXPECT_EQ(b.timestamp_us, 987654321);
  EXPECT_EQ(b.interval, 314);
  EXPECT_EQ(b.level, 3);
  EXPECT_EQ(b.mac, f.sstsp().mac);
  EXPECT_EQ(b.disclosed_key, f.sstsp().disclosed_key);
}

class WireRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WireRoundTrip, RandomizedSstspFrames) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Frame f = sstsp_frame(
      static_cast<NodeId>(rng.uniform_int(0, 1000)),
      static_cast<std::int64_t>(rng.uniform_int(0, std::uint64_t{1} << 50)),
      static_cast<std::int64_t>(rng.uniform_int(1, 16000)),
      static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  const auto decoded = decode_frame(encode_frame(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, f.sender);
  EXPECT_EQ(decoded->sstsp().timestamp_us, f.sstsp().timestamp_us);
  EXPECT_EQ(decoded->sstsp().interval, f.sstsp().interval);
  EXPECT_EQ(decoded->sstsp().level, f.sstsp().level);
  EXPECT_EQ(decoded->sstsp().disclosed_key, f.sstsp().disclosed_key);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTrip, ::testing::Range(1, 25));

TEST(Wire, RejectsWrongLength) {
  auto bytes = encode_frame(tsf_frame(1, 2));
  bytes.pop_back();
  EXPECT_FALSE(decode_frame(bytes).has_value());
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_FALSE(decode_frame(bytes).has_value());
  EXPECT_FALSE(decode_frame({}).has_value());
}

TEST(Wire, RejectsBadMagicOrType) {
  auto bytes = encode_frame(tsf_frame(1, 2));
  auto corrupted = bytes;
  corrupted[24] = 0xFF;  // magic
  EXPECT_FALSE(decode_frame(corrupted).has_value());
  corrupted = bytes;
  corrupted[26] = 0x7F;  // type
  EXPECT_FALSE(decode_frame(corrupted).has_value());
}

TEST(Wire, TypeLengthMismatchRejected) {
  // An SSTSP type byte inside a TSF-sized frame must not decode.
  auto bytes = encode_frame(tsf_frame(1, 2));
  bytes[26] = 0x02;  // claim SSTSP
  EXPECT_FALSE(decode_frame(bytes).has_value());
}

TEST(Wire, TruncationSweepNeverCrashes) {
  const auto full = encode_frame(sstsp_frame(3, 42, 7, 1));
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::span<const std::uint8_t> prefix(full.data(), len);
    EXPECT_FALSE(decode_frame(prefix).has_value()) << len;
  }
}

TEST(Wire, NegativeTimestampSurvives) {
  // Timestamps are int64; pre-epoch values (misconfigured T0) must round
  // trip rather than corrupt.
  const Frame f = tsf_frame(5, -123456);
  const auto decoded = decode_frame(encode_frame(f));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->tsf().timestamp_us, -123456);
}

}  // namespace
}  // namespace sstsp::mac
