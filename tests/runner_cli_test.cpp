// CLI parser (src/runner/cli.h).
#include <gtest/gtest.h>

#include "runner/cli.h"

namespace sstsp::run {
namespace {

std::optional<CliOptions> parse(std::vector<std::string> args,
                                std::string* err = nullptr) {
  std::string local;
  return parse_cli(args, err != nullptr ? err : &local);
}

TEST(Cli, DefaultsAreSane) {
  const auto opts = parse({});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->scenario.protocol, ProtocolKind::kSstsp);
  EXPECT_EQ(opts->scenario.num_nodes, 100);
  EXPECT_DOUBLE_EQ(opts->scenario.duration_s, 200.0);
  // Chain auto-sized to the duration.
  EXPECT_EQ(opts->scenario.sstsp.chain_length, 2200u);
  EXPECT_FALSE(opts->help);
}

TEST(Cli, ParsesEveryProtocolName) {
  EXPECT_EQ(parse({"--protocol", "tsf"})->scenario.protocol,
            ProtocolKind::kTsf);
  EXPECT_EQ(parse({"--protocol", "atsp"})->scenario.protocol,
            ProtocolKind::kAtsp);
  EXPECT_EQ(parse({"--protocol", "tatsp"})->scenario.protocol,
            ProtocolKind::kTatsp);
  EXPECT_EQ(parse({"--protocol", "satsf"})->scenario.protocol,
            ProtocolKind::kSatsf);
  EXPECT_EQ(parse({"--protocol", "rentel-kunz"})->scenario.protocol,
            ProtocolKind::kRentelKunz);
  EXPECT_EQ(parse({"--protocol", "rk"})->scenario.protocol,
            ProtocolKind::kRentelKunz);
  EXPECT_EQ(parse({"--protocol", "sstsp"})->scenario.protocol,
            ProtocolKind::kSstsp);
}

TEST(Cli, NumericOptions) {
  const auto opts = parse({"--nodes", "42", "--duration", "33.5", "--seed",
                           "7", "--m", "4", "--l", "2", "--per", "0.01",
                           "--guard", "250"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->scenario.num_nodes, 42);
  EXPECT_DOUBLE_EQ(opts->scenario.duration_s, 33.5);
  EXPECT_EQ(opts->scenario.seed, 7u);
  EXPECT_EQ(opts->scenario.sstsp.m, 4);
  EXPECT_EQ(opts->scenario.sstsp.l, 2);
  EXPECT_DOUBLE_EQ(opts->scenario.phy.packet_error_rate, 0.01);
  EXPECT_DOUBLE_EQ(opts->scenario.sstsp.guard_fine_us, 250.0);
}

TEST(Cli, ChurnAndDepartures) {
  const auto opts =
      parse({"--churn", "100,0.1,20", "--departures", "50,150.5"});
  ASSERT_TRUE(opts.has_value());
  ASSERT_TRUE(opts->scenario.churn.has_value());
  EXPECT_DOUBLE_EQ(opts->scenario.churn->period_s, 100.0);
  EXPECT_DOUBLE_EQ(opts->scenario.churn->fraction, 0.1);
  EXPECT_DOUBLE_EQ(opts->scenario.churn->absence_s, 20.0);
  ASSERT_EQ(opts->scenario.reference_departures_s.size(), 2u);
  EXPECT_DOUBLE_EQ(opts->scenario.reference_departures_s[1], 150.5);
}

TEST(Cli, PaperEnvForSstsp) {
  const auto opts = parse({"--paper-env"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_DOUBLE_EQ(opts->scenario.duration_s, 1000.0);
  ASSERT_TRUE(opts->scenario.churn.has_value());
  EXPECT_EQ(opts->scenario.reference_departures_s.size(), 3u);
  // Chain auto-sizing follows the new duration.
  EXPECT_EQ(opts->scenario.sstsp.chain_length, 10200u);
}

TEST(Cli, AttackConfiguration) {
  const auto opts = parse({"--attack", "internal-ref", "--attack-window",
                           "100,250", "--skew", "75"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->scenario.attack, "internal-ref");
  EXPECT_DOUBLE_EQ(opts->scenario.sstsp_attack.start_s, 100.0);
  EXPECT_DOUBLE_EQ(opts->scenario.sstsp_attack.end_s, 250.0);
  EXPECT_DOUBLE_EQ(opts->scenario.sstsp_attack.skew_rate_us_per_s, 75.0);
}

TEST(Cli, OutputOptions) {
  const auto opts = parse({"--csv", "/tmp/x.csv", "--chart", "--trace"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->csv_path, "/tmp/x.csv");
  EXPECT_TRUE(opts->ascii_chart);
  EXPECT_TRUE(opts->dump_trace);
  EXPECT_GT(opts->scenario.trace_capacity, 0u);
}

TEST(Cli, HelpShortCircuits) {
  const auto opts = parse({"--help"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_TRUE(opts->help);
  EXPECT_NE(cli_usage().find("--protocol"), std::string::npos);
}

TEST(Cli, RejectsBadInput) {
  std::string err;
  EXPECT_FALSE(parse({"--protocol", "ntp"}, &err).has_value());
  EXPECT_NE(err.find("unknown protocol"), std::string::npos);
  EXPECT_FALSE(parse({"--nodes", "-3"}, &err).has_value());
  EXPECT_FALSE(parse({"--nodes"}, &err).has_value());
  EXPECT_FALSE(parse({"--duration", "abc"}, &err).has_value());
  EXPECT_FALSE(parse({"--per", "1.5"}, &err).has_value());
  EXPECT_FALSE(parse({"--churn", "1,2"}, &err).has_value());
  EXPECT_FALSE(parse({"--attack-window", "50,40"}, &err).has_value());
  EXPECT_FALSE(parse({"--frobnicate"}, &err).has_value());
  EXPECT_NE(err.find("unknown option"), std::string::npos);
}

TEST(Cli, ExplicitChainLengthWins) {
  const auto opts = parse({"--duration", "500", "--chain-length", "999"});
  ASSERT_TRUE(opts.has_value());
  EXPECT_EQ(opts->scenario.sstsp.chain_length, 999u);
}

TEST(Cli, MonitorFlag) {
  EXPECT_FALSE(parse({})->scenario.monitor);
  const auto plain = parse({"--monitor"});
  ASSERT_TRUE(plain.has_value());
  EXPECT_TRUE(plain->scenario.monitor);
  EXPECT_FALSE(plain->monitor_strict);
  const auto strict = parse({"--monitor=strict"});
  ASSERT_TRUE(strict.has_value());
  EXPECT_TRUE(strict->scenario.monitor);
  EXPECT_TRUE(strict->monitor_strict);
}

TEST(Cli, DisciplineFlags) {
  EXPECT_EQ(parse({})->scenario.sstsp.discipline.effective_name(), "paper");
  const auto rls = parse({"--discipline", "rls"});
  ASSERT_TRUE(rls.has_value());
  EXPECT_EQ(rls->scenario.sstsp.discipline.name, "rls");

  const auto params = parse(
      {"--discipline-params",
       R"({"name":"rls","window":20,"forgetting":0.9})"});
  ASSERT_TRUE(params.has_value());
  EXPECT_EQ(params->scenario.sstsp.discipline.name, "rls");
  EXPECT_EQ(params->scenario.sstsp.discipline.window_bps, 20);
  EXPECT_DOUBLE_EQ(params->scenario.sstsp.discipline.forgetting, 0.9);

  std::string err;
  EXPECT_FALSE(parse({"--discipline", "kalman"}, &err).has_value());
  EXPECT_NE(err.find("unknown discipline"), std::string::npos);
  EXPECT_NE(err.find("holdover"), std::string::npos);  // lists valid names
  EXPECT_FALSE(
      parse({"--discipline-params", "{not json"}, &err).has_value());
  EXPECT_FALSE(
      parse({"--discipline-params", R"({"bogus":1})"}, &err).has_value());
  EXPECT_NE(err.find("discipline.bogus"), std::string::npos);
}

TEST(Cli, ClockModelFlags) {
  EXPECT_FALSE(parse({})->scenario.clock_stress.enabled());
  const auto ramp = parse({"--clock-model", "temp-ramp"});
  ASSERT_TRUE(ramp.has_value());
  EXPECT_EQ(ramp->scenario.clock_stress.kind,
            clk::DriftStressKind::kTempRamp);
  EXPECT_TRUE(ramp->scenario.clock_stress.enabled());

  const auto walk = parse(
      {"--clock-model-params",
       R"({"kind":"random-walk","walk-sigma-ppm":0.5,"period":0.25})"});
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->scenario.clock_stress.kind,
            clk::DriftStressKind::kRandomWalk);
  EXPECT_DOUBLE_EQ(walk->scenario.clock_stress.walk_sigma_ppm, 0.5);
  EXPECT_DOUBLE_EQ(walk->scenario.clock_stress.period_s, 0.25);

  std::string err;
  EXPECT_FALSE(parse({"--clock-model", "sundial"}, &err).has_value());
  EXPECT_NE(err.find("unknown clock model"), std::string::npos);
  EXPECT_FALSE(
      parse({"--clock-model-params", R"({"bogus":1})"}, &err).has_value());
  EXPECT_NE(err.find("clock-model.bogus"), std::string::npos);
}

TEST(Cli, UnknownTraceKindListsEveryValidName) {
  std::string err;
  EXPECT_FALSE(parse({"--trace-kind", "bogus"}, &err).has_value());
  EXPECT_NE(err.find("unknown event kind: bogus"), std::string::npos);
  // The message enumerates every kind to_string knows about.
  for (std::size_t i = 0; i < trace::kEventKindCount; ++i) {
    const auto name =
        std::string(trace::to_string(static_cast<trace::EventKind>(i)));
    EXPECT_NE(err.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace sstsp::run
