// Recovery extension (paper §3.4 future work): local blacklisting of
// senders whose beacons repeatedly fail the security checks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "attack/replay.h"
#include "clock/drift_model.h"
#include "core/sstsp.h"
#include "crypto/hash_chain.h"
#include "runner/experiment.h"
#include "runner/network.h"
#include "trace/event_trace.h"

namespace sstsp::run {
namespace {

/// Small SSTSP cell plus a replay attacker that re-transmits every beacon
/// three intervals late — a sustained stream of interval-check failures,
/// perfect material for the rejection-counting detector.
struct ReplayedCell {
  sim::Simulator sim{55};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  core::SstspConfig cfg;
  trace::EventTrace trace{1 << 16};
  std::vector<std::unique_ptr<proto::Station>> stations;

  explicit ReplayedCell(int blacklist_threshold,
                        double penalty_s = 30.0) {
    phy.packet_error_rate = 0.0;
    cfg.chain_length = 1200;
    cfg.blacklist_threshold = blacklist_threshold;
    cfg.blacklist_penalty_s = penalty_s;
    channel = std::make_unique<mac::Channel>(sim, phy);
    for (int i = 0; i < 8; ++i) {
      auto& st = add_station(-60.0 + 18.0 * i, 6.0 * i);
      directory.register_node(
          st.id(), crypto::ChainParams{crypto::derive_seed(55, st.id()),
                                       cfg.chain_length});
      st.set_protocol(std::make_unique<core::Sstsp>(st, cfg, directory,
                                                    core::Sstsp::Options{}));
    }
    // The replayer is an *internal* identity (registered chain) so its
    // replayed frames reach the rejection counters rather than being
    // dropped as unknown.
    auto& rep = add_station(0.0, 0.0);
    directory.register_node(
        rep.id(), crypto::ChainParams{crypto::derive_seed(55, rep.id()),
                                      cfg.chain_length});
    rep.set_protocol(std::make_unique<attack::ReplayAttacker>(
        rep, attack::ReplayParams{/*start_s=*/5.0, /*end_s=*/55.0,
                                  /*delay_bps=*/3}));
  }

  proto::Station& add_station(double ppm, double offset_us) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    stations.push_back(std::make_unique<proto::Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us),
        mac::Position{static_cast<double>(id) * 2.0, 0.0}));
    stations.back()->set_trace(&trace);
    return *stations.back();
  }

  void run(double until_s) {
    for (auto& st : stations) {
      if (!st->awake()) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }

  [[nodiscard]] std::uint64_t interval_rejections() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i + 1 < stations.size(); ++i) {
      total += stations[i]->protocol().stats().rejected_interval;
    }
    return total;
  }
};

TEST(Recovery, DisabledByDefault) {
  const core::SstspConfig defaults{};
  EXPECT_EQ(defaults.blacklist_threshold, 0);
}

/// Internal forger: a compromised identity with a valid published chain
/// that signs its beacons properly but stamps them a constant offset off —
/// every frame passes the interval and key checks and fails the guard.
/// This is the *attributable* malice the rejection counter is for: only
/// the chain owner can produce these frames.
class OffsetInternalForger final : public proto::SyncProtocol {
 public:
  OffsetInternalForger(proto::Station& station, core::KeyDirectory& directory,
                       const core::SstspConfig& cfg, double offset_us)
      : SyncProtocol(station),
        schedule_{cfg.t0_us, station.channel().phy().beacon_period.to_us(),
                  cfg.chain_length},
        signer_(directory.chain_of(station.id()).value(), schedule_),
        offset_us_(offset_us) {}

  void start() override {
    running_ = true;
    schedule_next();
  }
  void stop() override { running_ = false; }
  void on_receive(const mac::Frame&, const mac::RxInfo&) override {}
  [[nodiscard]] double network_time_us(sim::SimTime real) const override {
    return station_.hw().read_us(real);
  }
  [[nodiscard]] bool is_synchronized() const override { return false; }

 private:
  void schedule_next() {
    station_.sim().after(station_.channel().phy().beacon_period, [this] {
      if (!running_) return;
      emit();
      schedule_next();
    });
  }
  void emit() {
    const double now_us = station_.hw().read_us(station_.sim().now());
    const auto j = schedule_.interval_of(now_us);
    if (j < 1 || static_cast<std::size_t>(j) > schedule_.n) return;
    mac::Frame frame;
    frame.sender = station_.id();
    frame.air_bytes = station_.channel().phy().sstsp_beacon_bytes;
    frame.body = signer_.sign(
        j, static_cast<std::int64_t>(now_us + offset_us_), station_.id());
    station_.transmit(std::move(frame),
                      station_.channel().phy().sstsp_beacon_duration);
    ++stats_.beacons_sent;
  }

  crypto::MuTeslaSchedule schedule_;
  core::BeaconSigner signer_;
  double offset_us_;
  bool running_{false};
};

/// Cell with the offset forger instead of the replayer.
struct ForgedCell {
  sim::Simulator sim{56};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  core::SstspConfig cfg;
  trace::EventTrace trace{1 << 16};
  std::vector<std::unique_ptr<proto::Station>> stations;

  explicit ForgedCell(int blacklist_threshold, double penalty_s = 30.0) {
    phy.packet_error_rate = 0.0;
    cfg.chain_length = 1200;
    cfg.blacklist_threshold = blacklist_threshold;
    cfg.blacklist_penalty_s = penalty_s;
    channel = std::make_unique<mac::Channel>(sim, phy);
    for (int i = 0; i < 8; ++i) {
      auto& st = add_station(-60.0 + 18.0 * i, 6.0 * i);
      directory.register_node(
          st.id(), crypto::ChainParams{crypto::derive_seed(56, st.id()),
                                       cfg.chain_length});
      st.set_protocol(std::make_unique<core::Sstsp>(st, cfg, directory,
                                                    core::Sstsp::Options{}));
    }
    auto& rogue = add_station(0.0, 0.0);
    directory.register_node(
        rogue.id(), crypto::ChainParams{crypto::derive_seed(56, rogue.id()),
                                        cfg.chain_length});
    rogue.set_protocol(std::make_unique<OffsetInternalForger>(
        rogue, directory, cfg, /*offset_us=*/5000.0));
  }

  proto::Station& add_station(double ppm, double offset_us) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    stations.push_back(std::make_unique<proto::Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us),
        mac::Position{static_cast<double>(id) * 2.0, 0.0}));
    stations.back()->set_trace(&trace);
    return *stations.back();
  }

  void run(double until_s) {
    for (auto& st : stations) {
      if (!st->awake()) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }

  [[nodiscard]] std::uint64_t guard_rejections() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i + 1 < stations.size(); ++i) {
      total += stations[i]->protocol().stats().rejected_guard;
    }
    return total;
  }
};

TEST(Recovery, BlacklistMutesInternalForger) {
  ForgedCell without(/*blacklist_threshold=*/0);
  without.run(60.0);
  const auto rejections_without = without.guard_rejections();

  ForgedCell with(/*blacklist_threshold=*/3);
  with.run(60.0);
  const auto rejections_with = with.guard_rejections();

  // Without the extension every forged frame is processed and rejected
  // (~10/s x 7 victims x 60 s); with it each victim pays ~3 rejections and
  // then drops the rogue's frames unprocessed.
  EXPECT_GT(rejections_without, 1000u);
  EXPECT_LT(rejections_with, rejections_without / 10);
  EXPECT_GE(with.trace.count(trace::EventKind::kTakeover), 7u);
}

TEST(Recovery, BlacklistExpiresAndRearms) {
  ForgedCell cell(/*blacklist_threshold=*/3, /*penalty_s=*/5.0);
  cell.run(60.0);
  // ~60 s of forgeries / 5 s penalty: each victim cycles detect -> mute ->
  // expire repeatedly.
  EXPECT_GE(cell.trace.count(trace::EventKind::kTakeover), 3u * 7u);
}

TEST(Recovery, ReplayerCannotFrameTheReference) {
  // Replayed frames carry the *reference's* identity.  The detector counts
  // only consecutive rejections, and every genuine beacon acceptance resets
  // the counter — so a replayer must never get the honest reference
  // blacklisted (that would be an amplification attack against the
  // recovery mechanism itself).
  ReplayedCell cell(/*blacklist_threshold=*/3);
  cell.run(60.0);
  EXPECT_EQ(cell.trace.count(trace::EventKind::kTakeover), 0u);
  // The replays were still detected and discarded the paper's way.
  EXPECT_GT(cell.interval_rejections(), 1000u);
}

TEST(Recovery, HonestRefRejectionsNeverAccumulate) {
  // In a benign run with elections and churn the consecutive-rejection
  // counter must never reach the threshold (acceptances reset it).
  Scenario s;
  s.protocol = ProtocolKind::kSstsp;
  s.num_nodes = 20;
  s.duration_s = 90.0;
  s.seed = 4;
  s.sstsp.chain_length = 1100;
  s.sstsp.blacklist_threshold = 3;
  s.reference_departures_s = {40.0};
  s.churn = ChurnSpec{30.0, 0.15, 15.0};
  s.trace_capacity = 1 << 16;
  Network net(s);
  net.run();
  EXPECT_EQ(net.trace()->count(trace::EventKind::kTakeover), 0u);
  const auto diff = net.instant_max_diff_us();
  ASSERT_TRUE(diff.has_value());
  EXPECT_LT(*diff, kSyncThresholdUs);
}

}  // namespace
}  // namespace sstsp::run
