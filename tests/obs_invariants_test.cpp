// Invariant monitor (src/obs/invariants.h): hook-level unit tests plus
// end-to-end audit behaviour — honest runs stay clean, the §5 attacks leave
// structured audit records.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "attack/replay.h"
#include "clock/drift_model.h"
#include "core/sstsp.h"
#include "crypto/hash_chain.h"
#include "obs/invariants.h"
#include "obs/json.h"
#include "runner/experiment.h"
#include "runner/network.h"

namespace sstsp::obs {
namespace {

sim::SimTime at_s(double s) { return sim::SimTime::from_sec_double(s); }

bool has_kind(const AuditReport& report, InvariantKind kind) {
  for (const auto& r : report.records) {
    if (r.kind == kind) return true;
  }
  return false;
}

const AuditRecord* find_kind(const AuditReport& report, InvariantKind kind) {
  for (const auto& r : report.records) {
    if (r.kind == kind) return &r;
  }
  return nullptr;
}

TEST(InvariantMonitor, FinePhaseLeapIsCritical) {
  InvariantMonitor mon{InvariantConfig{}};
  // A misbehaving clock: the re-solve leaps the adjusted value by 40 us at
  // the switch instant — eq. (2) requires continuity.
  mon.on_clock_adjustment(/*node=*/3, at_s(10.0), /*before_us=*/1e7,
                          /*after_us=*/1e7 + 40.0, /*new_k=*/1.0,
                          /*coarse=*/false);
  const auto report = mon.report();
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].kind, InvariantKind::kClockContinuity);
  EXPECT_EQ(report.records[0].severity, Severity::kCritical);
  EXPECT_EQ(report.records[0].node, 3u);
  EXPECT_NEAR(report.records[0].worst_value_us, 40.0, 1e-9);
  EXPECT_EQ(report.critical_count(), 1u);
}

TEST(InvariantMonitor, CoarseStepsMayLeap) {
  InvariantMonitor mon{InvariantConfig{}};
  mon.on_clock_adjustment(1, at_s(1.0), 0.0, 112.0, 1.0, /*coarse=*/true);
  EXPECT_TRUE(mon.report().clean());
}

TEST(InvariantMonitor, SlopeEscapeIsCritical) {
  InvariantMonitor mon{InvariantConfig{}};
  mon.on_clock_adjustment(2, at_s(5.0), 100.0, 100.0, /*new_k=*/1.2,
                          /*coarse=*/false);
  const auto report = mon.report();
  ASSERT_EQ(report.records.size(), 1u);
  EXPECT_EQ(report.records[0].kind, InvariantKind::kClockContinuity);
  EXPECT_EQ(report.records[0].severity, Severity::kCritical);
}

TEST(InvariantMonitor, ChainRegressionIsCritical) {
  InvariantConfig cfg;
  InvariantMonitor mon{cfg};
  const double in_window = cfg.t0_us + 6.0 * cfg.bp_us;  // key 5's window
  mon.on_key_accepted(/*node=*/1, /*sender=*/9, /*key_index=*/5, in_window,
                      at_s(0.6));
  EXPECT_TRUE(mon.report().clean());
  // Re-accepting an older (already-disclosed) index must be flagged.
  mon.on_key_accepted(1, 9, /*key_index=*/4, in_window, at_s(0.7));
  const auto report = mon.report();
  const auto* rec = find_kind(report, InvariantKind::kChainRegression);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->severity, Severity::kCritical);
  EXPECT_EQ(rec->node, 1u);
  EXPECT_EQ(rec->peer, 9u);
}

TEST(InvariantMonitor, KeyAcceptedOutsideDisclosureWindowIsCritical) {
  InvariantConfig cfg;
  InvariantMonitor mon{cfg};
  // Key 5 is disclosed in interval 6; accepting it while the local clock
  // already reads interval 9 means the µTESLA check is broken.
  const double late = cfg.t0_us + 9.0 * cfg.bp_us;
  mon.on_key_accepted(2, 7, /*key_index=*/5, late, at_s(0.9));
  const auto report = mon.report();
  const auto* rec = find_kind(report, InvariantKind::kKeyDisclosure);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->severity, Severity::kCritical);
}

TEST(InvariantMonitor, TakeoverWithoutElectionIsFlagged) {
  InvariantMonitor mon{InvariantConfig{}};
  mon.on_role_change(4, /*is_reference=*/true, /*via_election=*/true,
                     at_s(1.0));
  EXPECT_TRUE(mon.report().clean());
  mon.on_role_change(5, /*is_reference=*/true, /*via_election=*/false,
                     at_s(2.0));
  const auto report = mon.report();
  const auto* rec = find_kind(report, InvariantKind::kReferenceTakeover);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->severity, Severity::kWarning);
  EXPECT_EQ(rec->node, 5u);
}

TEST(InvariantMonitor, TwoReferencesInOneIntervalAreFlagged) {
  InvariantConfig cfg;
  InvariantMonitor mon{cfg};
  const double t7 = cfg.t0_us + 7.0 * cfg.bp_us;
  mon.on_beacon_tx(1, 7, t7, t7, /*as_reference=*/true, at_s(0.7));
  EXPECT_TRUE(mon.report().clean());
  mon.on_beacon_tx(2, 7, t7, t7, /*as_reference=*/true, at_s(0.75));
  EXPECT_TRUE(
      has_kind(mon.report(), InvariantKind::kReferenceUniqueness));
}

TEST(InvariantMonitor, DraggedTimestampIsFlagged) {
  InvariantConfig cfg;
  InvariantMonitor mon{cfg};
  const double t3 = cfg.t0_us + 3.0 * cfg.bp_us;
  // The §5 internal attacker: stamps a virtual clock 20 us behind its own.
  mon.on_beacon_tx(8, 3, t3 - 20.0, t3, /*as_reference=*/false, at_s(0.3));
  const auto report = mon.report();
  const auto* rec = find_kind(report, InvariantKind::kTimestampIntegrity);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->severity, Severity::kWarning);
  EXPECT_NEAR(rec->worst_value_us, -20.0, 1e-9);
}

TEST(InvariantMonitor, SstspChecksGateEverythingProtocolSpecific) {
  InvariantConfig cfg;
  cfg.sstsp_checks = false;  // a TSF run
  InvariantMonitor mon{cfg};
  mon.on_clock_adjustment(1, at_s(1.0), 0.0, 500.0, 2.0, false);
  mon.on_beacon_tx(1, 3, 0.0, 99999.0, true, at_s(0.3));
  mon.on_key_accepted(1, 2, 5, 0.0, at_s(0.5));
  mon.on_role_change(1, true, false, at_s(1.0));
  mon.on_max_diff_sample(at_s(60.0), 5000.0);
  EXPECT_TRUE(mon.report().clean());
}

TEST(InvariantMonitor, RecordsAggregateAndCap) {
  InvariantConfig cfg;
  cfg.max_records = 2;
  InvariantMonitor mon{cfg};
  for (int i = 0; i < 100; ++i) {
    mon.on_clock_adjustment(1, at_s(i), 0.0, 40.0, 1.0, false);
  }
  mon.on_role_change(2, true, false, at_s(1.0));
  mon.on_role_change(3, true, false, at_s(1.0));  // 3rd class: dropped
  const auto report = mon.report();
  EXPECT_EQ(report.records.size(), 2u);
  EXPECT_EQ(report.dropped_records, 1u);
  EXPECT_FALSE(report.clean());
  const auto* rec = find_kind(report, InvariantKind::kClockContinuity);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->count, 100u);
  EXPECT_EQ(mon.total_violations(), 102u);
}

TEST(InvariantMonitor, AuditJsonRoundTrips) {
  InvariantMonitor mon{InvariantConfig{}};
  mon.on_role_change(5, true, false, at_s(2.0));
  std::ostringstream os;
  json::Writer w(os);
  mon.report().append_json(w);
  const auto doc = json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const auto* records = doc->find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->array.size(), 1u);
  const auto& rec = records->array[0];
  EXPECT_EQ(rec.find("kind")->string, "reference-takeover");
  EXPECT_EQ(rec.find("severity")->string, "warning");
  EXPECT_EQ(rec.find("paper_ref")->string, "§3.3 contention election");
  EXPECT_DOUBLE_EQ(rec.find("node")->number, 5.0);
  EXPECT_TRUE(rec.find("peer")->is_null());
  EXPECT_DOUBLE_EQ(rec.find("count")->number, 1.0);
  EXPECT_DOUBLE_EQ(doc->find("critical")->number, 0.0);
  EXPECT_DOUBLE_EQ(doc->find("warnings")->number, 1.0);
}

TEST(InvariantMonitor, EveryKindHasNameAndPaperReference) {
  for (std::size_t i = 0; i < kInvariantKindCount; ++i) {
    const auto kind = static_cast<InvariantKind>(i);
    EXPECT_NE(to_string(kind), "?");
    EXPECT_NE(paper_reference(kind), "?");
  }
}

// ---- end-to-end: the scenario runner wires the monitor -------------------

TEST(InvariantMonitorIntegration, HonestSstspRunIsClean) {
  // Fig. 2's shape in miniature: churn-free honest run with a reference
  // departure mid-way.  The monitor must stay silent.
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 30;
  s.duration_s = 80.0;
  s.seed = 11;
  s.sstsp.chain_length = 1000;
  s.reference_departures_s = {40.0};
  s.monitor = true;
  const auto r = run::run_scenario(s);
  ASSERT_TRUE(r.audit.has_value());
  EXPECT_TRUE(r.audit->clean()) << "unexpected audit records; first: "
                                << (r.audit->records.empty()
                                        ? ""
                                        : r.audit->records[0].detail);
}

TEST(InvariantMonitorIntegration, HonestTsfRunIsClean) {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kTsf;
  s.num_nodes = 30;
  s.duration_s = 60.0;
  s.seed = 11;
  s.monitor = true;
  const auto r = run::run_scenario(s);
  ASSERT_TRUE(r.audit.has_value());
  EXPECT_TRUE(r.audit->clean());
}

TEST(InvariantMonitorIntegration, UnmonitoredRunCarriesNoAudit) {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 10;
  s.duration_s = 10.0;
  s.sstsp.chain_length = 300;
  const auto r = run::run_scenario(s);
  EXPECT_FALSE(r.audit.has_value());
}

TEST(InvariantMonitorIntegration, InternalAttackerLeavesAuditTrail) {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 20;
  s.duration_s = 100.0;
  s.seed = 11;
  s.sstsp.chain_length = 1200;
  s.attack = "internal-ref";
  s.sstsp_attack.start_s = 40.0;
  s.sstsp_attack.end_s = 90.0;
  s.monitor = true;
  const auto r = run::run_scenario(s);
  ASSERT_TRUE(r.audit.has_value());

  // The smooth tow passes every receiver-side check (see attack_test.cpp's
  // SmoothTowIsTrackedWithoutAlarms) — detection comes from the role and
  // emission invariants instead, each pinned on the attacker.
  const mac::NodeId attacker = 20;  // the extra station
  const auto* takeover =
      find_kind(*r.audit, InvariantKind::kReferenceTakeover);
  ASSERT_NE(takeover, nullptr);
  EXPECT_EQ(takeover->node, attacker);
  const auto* stamp =
      find_kind(*r.audit, InvariantKind::kTimestampIntegrity);
  ASSERT_NE(stamp, nullptr);
  EXPECT_EQ(stamp->node, attacker);
  // And no *critical* records: the protocol itself held up.
  EXPECT_EQ(r.audit->critical_count(), 0u);
}

// Hand-wired net (attack_test.cpp's fixture) with a monitor attached, for
// the replay attacker the scenario runner does not wire.
struct MonitoredSstspNet {
  sim::Simulator sim{77};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  core::SstspConfig cfg;
  InvariantMonitor monitor;
  std::vector<std::unique_ptr<proto::Station>> stations;

  MonitoredSstspNet() : monitor(InvariantConfig{}) {
    phy.packet_error_rate = 0.0;
    cfg.chain_length = 1200;
    channel = std::make_unique<mac::Channel>(sim, phy);
  }

  proto::Station& add_station(double ppm, double offset_us) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    auto st = std::make_unique<proto::Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us),
        mac::Position{static_cast<double>(id), 0.0});
    st->set_monitor(&monitor);
    stations.push_back(std::move(st));
    return *stations.back();
  }

  proto::Station& add_honest(double ppm, double offset_us) {
    auto& st = add_station(ppm, offset_us);
    directory.register_node(
        st.id(), crypto::ChainParams{crypto::derive_seed(77, st.id()),
                                     cfg.chain_length});
    st.set_protocol(std::make_unique<core::Sstsp>(st, cfg, directory,
                                                  core::Sstsp::Options{}));
    return st;
  }

  void run(double until_s) {
    for (auto& st : stations) {
      if (!st->awake()) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }
};

TEST(InvariantMonitorIntegration, PulseDelayAttackProducesGuardRecords) {
  MonitoredSstspNet net;
  for (int i = 0; i < 6; ++i) net.add_honest(-50.0 + 20.0 * i, 5.0 * i);
  auto& relayer = net.add_station(0.0, 0.0);
  relayer.set_protocol(std::make_unique<attack::ReplayAttacker>(
      relayer, attack::ReplayParams{/*start_s=*/5.0, /*end_s=*/35.0,
                                    /*delay_bps=*/0,
                                    /*extra_delay_us=*/30000.0}));
  net.run(40.0);
  const auto report = net.monitor.report();
  const auto* rec = find_kind(report, InvariantKind::kGuardViolation);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->severity, Severity::kWarning);
  EXPECT_EQ(report.critical_count(), 0u);
}

TEST(InvariantMonitorIntegration, ReplayAttackProducesKeyDisclosureRecords) {
  MonitoredSstspNet net;
  for (int i = 0; i < 6; ++i) net.add_honest(-50.0 + 20.0 * i, 5.0 * i);
  auto& replayer = net.add_station(0.0, 0.0);
  replayer.set_protocol(std::make_unique<attack::ReplayAttacker>(
      replayer, attack::ReplayParams{/*start_s=*/5.0, /*end_s=*/35.0,
                                     /*delay_bps=*/3}));
  net.run(40.0);
  const auto report = net.monitor.report();
  const auto* rec = find_kind(report, InvariantKind::kKeyDisclosure);
  ASSERT_NE(rec, nullptr);
  // The protocol *rejected* the stale beacons — evidence, not breakage.
  EXPECT_EQ(rec->severity, Severity::kWarning);
  EXPECT_EQ(report.critical_count(), 0u);
}

}  // namespace
}  // namespace sstsp::obs
