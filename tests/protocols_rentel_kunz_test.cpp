// Rentel-Kunz [1] controlled-clock protocol: convergence, equal
// participation, and p-adaptation dynamics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "protocols/rentel_kunz.h"
#include "runner/experiment.h"
#include "sim/simulator.h"

namespace sstsp::proto {
namespace {

using namespace sstsp::sim::literals;

struct RkNet {
  sim::Simulator sim{41};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  std::vector<std::unique_ptr<Station>> stations;
  std::vector<RentelKunz*> protos;
  RentelKunzParams params{};

  RkNet() {
    phy.packet_error_rate = 0.0;
    channel = std::make_unique<mac::Channel>(sim, phy);
  }

  RentelKunz& add(double ppm, double offset_us) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    auto st = std::make_unique<Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us),
        mac::Position{static_cast<double>(id), 0.0});
    auto proto = std::make_unique<RentelKunz>(*st, params);
    protos.push_back(proto.get());
    st->set_protocol(std::move(proto));
    stations.push_back(std::move(st));
    return *protos.back();
  }

  void run(double until_s) {
    for (auto& st : stations) {
      if (!st->awake()) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }

  double spread_us() const {
    double lo = 1e18, hi = -1e18;
    for (const auto& st : stations) {
      const double v = st->protocol().network_time_us(sim.now());
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  }
};

TEST(RentelKunz, SmallNetworkConverges) {
  RkNet net;
  for (int i = 0; i < 10; ++i) net.add(-100.0 + 20.0 * i, -80.0 + 15.0 * i);
  net.run(60.0);
  // Equal-participation offset control converges to a few hundred us: the
  // half-step feedback balances the drift accumulated between the sparse
  // (T_DELAY-gated) beacons.  This is the accuracy class the paper's §2
  // places [1] in — well above SSTSP's, far below free-running drift.
  EXPECT_LT(net.spread_us(), 300.0);
}

TEST(RentelKunz, ControlledClockSlewsRate) {
  // A slow node synchronized to fast peers must end with s > 1 (its
  // controlled clock runs faster than its hardware clock).
  RkNet net;
  RentelKunz& slow = net.add(-100.0, 0.0);
  net.add(+100.0, 5.0);
  net.add(+90.0, -5.0);
  net.run(60.0);
  EXPECT_GT(slow.s(), 1.0);
  EXPECT_GT(slow.stats().adjustments, 0u);
}

TEST(RentelKunz, ParticipationIsShared) {
  // Equal participation: no single node should dominate beacon duty the
  // way TSF's fastest node does.
  RkNet net;
  for (int i = 0; i < 8; ++i) net.add(-70.0 + 20.0 * i, 3.0 * i);
  net.run(120.0);
  std::uint64_t total = 0;
  std::uint64_t max_one = 0;
  for (const auto* p : net.protos) {
    total += p->stats().beacons_sent;
    max_one = std::max(max_one, p->stats().beacons_sent);
  }
  ASSERT_GT(total, 20u);
  EXPECT_LT(static_cast<double>(max_one) / static_cast<double>(total), 0.6);
}

TEST(RentelKunz, ProbabilityDecaysWhenCovered) {
  // A node that constantly hears beacons backs off (p shrinks).
  RkNet net;
  for (int i = 0; i < 6; ++i) net.add(-50.0 + 20.0 * i, 2.0 * i);
  net.run(60.0);
  int below_initial = 0;
  for (const auto* p : net.protos) {
    if (p->p() < net.params.p_initial) ++below_initial;
  }
  EXPECT_GE(below_initial, 3);
}

TEST(RentelKunz, SilenceSavesTraffic) {
  // The T_DELAY rule keeps the channel quiet relative to TSF: far fewer
  // beacons for comparable sync.
  run::Scenario rk;
  rk.protocol = run::ProtocolKind::kRentelKunz;
  rk.num_nodes = 60;
  rk.duration_s = 60.0;
  rk.seed = 5;
  const auto r_rk = run::run_scenario(rk);

  run::Scenario tsf = rk;
  tsf.protocol = run::ProtocolKind::kTsf;
  const auto r_tsf = run::run_scenario(tsf);

  EXPECT_LT(r_rk.channel.transmissions, r_tsf.channel.transmissions / 2);
}

TEST(RentelKunz, RunsThroughScenarioRunner) {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kRentelKunz;
  s.num_nodes = 30;
  s.duration_s = 60.0;
  s.seed = 11;
  const auto r = run_scenario(s);
  ASSERT_TRUE(r.steady_p99_us.has_value());
  EXPECT_LT(*r.steady_p99_us, 800.0);
  EXPECT_GT(r.honest.adjustments, 100u);
}

}  // namespace
}  // namespace sstsp::proto
