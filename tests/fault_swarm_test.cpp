// The same FaultPlan format through the live stack: partition heal on a
// 5-node loopback swarm (strict-audit-clean), the ISSUE acceptance plan
// (reference crash at t=30 under 10% loss), and failure surfacing for a
// node that goes silent without a planned fault.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fault/plan.h"
#include "net/swarm.h"

namespace sstsp::net {
namespace {

SwarmConfig loopback_config(std::uint64_t seed, double duration_s) {
  SwarmConfig config;
  config.transport = TransportKind::kLoopback;
  config.nodes = 5;
  config.duration_s = duration_s;
  config.seed = seed;
  config.monitor = true;
  return config;
}

fault::FaultPlan plan_from(const char* json) {
  std::string error;
  const auto plan = fault::parse_plan_text(json, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(fault::FaultPlan{});
}

run::RunResult run_swarm(const SwarmConfig& config, Swarm** out = nullptr,
                         std::unique_ptr<Swarm>* keep = nullptr) {
  std::string error;
  std::unique_ptr<Swarm> swarm = Swarm::create(config, &error);
  EXPECT_NE(swarm, nullptr) << error;
  swarm->run();
  const run::RunResult result = swarm->collect();
  if (out != nullptr) *out = swarm.get();
  if (keep != nullptr) *keep = std::move(swarm);
  return result;
}

TEST(FaultSwarm, PartitionHealResyncsAuditClean) {
  SwarmConfig config = loopback_config(1, 30.0);
  config.faults = plan_from(R"({
    "partitions": [{"start": 10, "end": 18, "group_a": [3, 4]}]
  })");
  std::unique_ptr<Swarm> swarm;
  const run::RunResult result = run_swarm(config, nullptr, &swarm);

  ASSERT_TRUE(result.audit.has_value());
  EXPECT_TRUE(result.audit->records.empty())
      << result.audit->records.size() << " audit record(s), first: "
      << result.audit->records.front().detail;
  EXPECT_TRUE(swarm->failed_nodes().empty());

  ASSERT_TRUE(result.recovery.has_value());
  ASSERT_EQ(result.recovery->records.size(), 1u);
  const auto& rec = result.recovery->records[0];
  EXPECT_EQ(rec.fault, "partition-heal");
  EXPECT_TRUE(rec.recovered);
  EXPECT_GE(rec.resync_s, 0.0);
  EXPECT_GT(result.recovery->packet_faults.partition_drops, 0u);
}

TEST(FaultSwarm, AcceptancePlanReelectsWithinBoundStrictClean) {
  // The exact plan examples/faults/ref_crash_loss.json ships — identical
  // JSON runs through sstsp_sim (see fault_injection_test) and this swarm.
  SwarmConfig config = loopback_config(1, 45.0);
  config.faults = plan_from(R"({
    "seed": 1,
    "packet": [{"kind": "drop", "probability": 0.1}],
    "node_faults": [{"kind": "crash", "node": "reference", "at": 30}]
  })");
  std::unique_ptr<Swarm> swarm;
  const run::RunResult result = run_swarm(config, nullptr, &swarm);

  ASSERT_TRUE(result.audit.has_value());
  EXPECT_TRUE(result.audit->records.empty())
      << result.audit->records.size() << " audit record(s), first: "
      << result.audit->records.front().detail;
  EXPECT_TRUE(swarm->failed_nodes().empty());  // the crash was planned

  ASSERT_TRUE(result.recovery.has_value());
  ASSERT_EQ(result.recovery->records.size(), 1u);
  const auto& rec = result.recovery->records[0];
  EXPECT_EQ(rec.fault, "reference-crash");
  EXPECT_TRUE(rec.recovered);
  // Paper bound: detection after l+1 silent BPs, plus contention/confirm.
  EXPECT_LE(rec.reelection_bps, (config.sstsp.l + 1) + 4.0);
  EXPECT_GE(result.recovery->post_fault_steady_max_us, 0.0);
  EXPECT_LT(result.recovery->post_fault_steady_max_us, 25.0);
  EXPECT_GT(result.recovery->packet_faults.drops, 0u);
}

TEST(FaultSwarm, DeafNodeWithoutPlannedFaultIsSurfacedAsFailure) {
  // Cut every delivery to node 4 for the whole run: it never hears a
  // beacon while its peers exchange hundreds.  That is an unplanned
  // failure mode (nothing in the plan says the node should be down), so
  // collect() must flag it instead of reporting a clean run.
  SwarmConfig config = loopback_config(1, 10.0);
  config.faults = plan_from(
      R"({"packet": [{"kind": "drop", "probability": 1.0, "to": 4}]})");
  std::unique_ptr<Swarm> swarm;
  const run::RunResult result = run_swarm(config, nullptr, &swarm);

  ASSERT_EQ(swarm->failed_nodes().size(), 1u);
  EXPECT_EQ(swarm->failed_nodes()[0], 4u);
  ASSERT_TRUE(result.audit.has_value());
  bool found = false;
  for (const auto& record : result.audit->records) {
    if (record.kind == obs::InvariantKind::kNodeFailure &&
        record.node == 4u) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no kNodeFailure audit record for the deaf node";
}

TEST(FaultSwarm, PlannedCrashIsNotFlaggedAsFailure) {
  SwarmConfig config = loopback_config(1, 12.0);
  config.faults = plan_from(
      R"({"node_faults": [{"kind": "crash", "node": 2, "at": 6}]})");
  std::unique_ptr<Swarm> swarm;
  const run::RunResult result = run_swarm(config, nullptr, &swarm);
  (void)result;
  EXPECT_TRUE(swarm->failed_nodes().empty());
}

}  // namespace
}  // namespace sstsp::net
