// TimelineWriter: the Chrome-trace-event document is schema-valid for both
// a synthetic event mix and a real seeded run, seeded exports are
// reproducible byte-for-byte, the event cap degrades to counted drops, and
// — the determinism contract — attaching the writer changes NOTHING else
// about a seeded run (the JSONL event stream stays byte-identical).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/timeline.h"
#include "runner/experiment.h"
#include "runner/network.h"
#include "sim/time_types.h"
#include "trace/event_trace.h"

namespace sstsp::obs {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

trace::TraceEvent event_at(double t_s, mac::NodeId node,
                           trace::EventKind kind, std::uint64_t trace_id) {
  trace::TraceEvent e;
  e.time = sim::SimTime::from_sec_double(t_s);
  e.node = node;
  e.kind = kind;
  e.trace_id = trace_id;
  return e;
}

run::Scenario seeded_scenario() {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 10;
  s.duration_s = 8.0;
  s.seed = 1234;
  s.sstsp.chain_length = 400;
  s.trace_capacity = 1 << 12;
  return s;
}

TEST(Timeline, SyntheticDocumentIsSchemaValid) {
  const std::string path = temp_path("timeline_synth.json");
  TimelineWriter w;
  std::string error;
  ASSERT_TRUE(w.open(path, &error)) << error;

  // A beacon chain across two nodes (flow), phases, a mark, a counter.
  w.protocol_event(event_at(1.0, 0, trace::EventKind::kBeaconTx, 42));
  w.protocol_event(event_at(1.001, 1, trace::EventKind::kBeaconRx, 42));
  w.protocol_event(event_at(1.002, 1, trace::EventKind::kAdjustment, 42));
  w.phase_begin(Phase::kDispatch, 10'000);
  w.phase_begin(Phase::kCryptoVerify, 12'000);
  w.phase_end(Phase::kCryptoVerify, 15'000);
  w.phase_end(Phase::kDispatch, 20'000);
  w.mark("partition", "fault", 2.0);
  w.counter("cluster max offset (us)", 2.5, 17.25);
  w.finish();

  EXPECT_GT(w.events_written(), 0u);
  EXPECT_EQ(w.dropped(), 0u);

  std::vector<std::string> errors;
  EXPECT_TRUE(validate_trace_event_json(slurp(path), &errors))
      << (errors.empty() ? "" : errors.front());
  EXPECT_TRUE(errors.empty());
}

TEST(Timeline, ValidatorRejectsGarbageAndImbalance) {
  std::vector<std::string> errors;
  EXPECT_FALSE(validate_trace_event_json("not json", &errors));
  EXPECT_FALSE(errors.empty());

  errors.clear();
  EXPECT_FALSE(validate_trace_event_json("{\"notTraceEvents\":[]}", &errors));
  EXPECT_FALSE(errors.empty());

  // An unclosed "B" at EOF is tolerated (Perfetto auto-closes it), but an
  // "E" with no matching "B" must be flagged.
  errors.clear();
  EXPECT_TRUE(validate_trace_event_json(
      R"({"traceEvents":[{"ph":"B","pid":2,"tid":0,"ts":1.0,)"
      R"("name":"dispatch","cat":"phase"}]})",
      &errors));
  EXPECT_FALSE(validate_trace_event_json(
      R"({"traceEvents":[{"ph":"E","pid":2,"tid":0,"ts":1.0}]})", &errors));
  EXPECT_FALSE(errors.empty());
}

TEST(Timeline, EventCapCountsDropsAndStaysValid) {
  const std::string path = temp_path("timeline_capped.json");
  TimelineWriter::Options opt;
  opt.max_events = 4;  // preamble metadata does not count against the cap
  TimelineWriter w;
  std::string error;
  ASSERT_TRUE(w.open(path, &error, opt)) << error;
  for (int i = 0; i < 50; ++i) {
    w.protocol_event(
        event_at(0.1 * i, 0, trace::EventKind::kBeaconTx, 100 + i));
  }
  w.finish();
  EXPECT_GT(w.dropped(), 0u);

  std::vector<std::string> errors;
  EXPECT_TRUE(validate_trace_event_json(slurp(path), &errors))
      << (errors.empty() ? "" : errors.front());
}

TEST(Timeline, OpenFailsOnUnwritablePath) {
  TimelineWriter w;
  std::string error;
  EXPECT_FALSE(w.open("/nonexistent-dir/timeline.json", &error));
  EXPECT_FALSE(error.empty());
}

// Golden reproducibility: the same seeded run exports the same bytes.
TEST(Timeline, SeededRunExportIsReproducibleAndValid) {
  const auto export_run = [](const std::string& path) {
    const run::Scenario s = seeded_scenario();
    run::Network net(s);
    TimelineWriter w;
    std::string error;
    ASSERT_TRUE(w.open(path, &error)) << error;
    ASSERT_NE(net.trace(), nullptr);
    net.trace()->set_sink(
        [&w](const trace::TraceEvent& e) { w.protocol_event(e); });
    net.run();
    net.trace()->set_sink({});
    w.finish();
    EXPECT_GT(w.events_written(), 0u);
  };

  const std::string path_a = temp_path("timeline_seeded_a.json");
  const std::string path_b = temp_path("timeline_seeded_b.json");
  export_run(path_a);
  export_run(path_b);

  const std::string a = slurp(path_a);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(path_b));

  std::vector<std::string> errors;
  EXPECT_TRUE(validate_trace_event_json(a, &errors))
      << (errors.empty() ? "" : errors.front());
}

// The determinism contract (DESIGN.md §11): the timeline writer is a pure
// observer.  A seeded run's JSONL event stream — the bytes every analysis
// consumes — is identical whether or not a timeline export rides along.
TEST(Timeline, SeededRunByteIdenticalWithExportOnOrOff) {
  const auto jsonl_of_run = [](bool with_timeline, const std::string& path) {
    const run::Scenario s = seeded_scenario();
    run::Network net(s);
    std::ostringstream jsonl;
    TimelineWriter w;
    if (with_timeline) {
      std::string error;
      EXPECT_TRUE(w.open(path, &error)) << error;
      net.trace()->set_sink([&](const trace::TraceEvent& e) {
        write_event_jsonl(jsonl, e);
        w.protocol_event(e);
      });
    } else {
      attach_jsonl_sink(*net.trace(), jsonl);
    }
    net.run();
    net.trace()->set_sink({});
    w.finish();
    return jsonl.str();
  };

  const std::string without = jsonl_of_run(false, "");
  const std::string with =
      jsonl_of_run(true, temp_path("timeline_observer.json"));
  ASSERT_FALSE(without.empty());
  EXPECT_EQ(without, with);
}

}  // namespace
}  // namespace sstsp::obs
