#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sstsp::crypto {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

std::string hmac_hex(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> msg) {
  const Digest d = hmac_sha256(key, msg);
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// RFC 4231 test cases.
TEST(Hmac, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const auto msg = bytes_of("Hi There");
  EXPECT_EQ(hmac_hex(key, msg),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const auto key = bytes_of("Jefe");
  const auto msg = bytes_of("what do ya want for nothing?");
  EXPECT_EQ(hmac_hex(key, msg),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(hmac_hex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4) {
  std::vector<std::uint8_t> key;
  for (std::uint8_t i = 1; i <= 25; ++i) key.push_back(i);
  const std::vector<std::uint8_t> msg(50, 0xcd);
  EXPECT_EQ(hmac_hex(key, msg),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto msg = bytes_of("Test Using Larger Than Block-Size Key - Hash Key First");
  EXPECT_EQ(hmac_hex(key, msg),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Rfc4231Case7LongKeyLongData) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const auto msg = bytes_of(
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.");
  EXPECT_EQ(hmac_hex(key, msg),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, TruncatedFormMatchesPrefix) {
  const auto key = bytes_of("key");
  const auto msg = bytes_of("message");
  const Digest full = hmac_sha256(key, msg);
  const Digest128 trunc = hmac_sha256_128(key, msg);
  for (std::size_t i = 0; i < trunc.size(); ++i) EXPECT_EQ(trunc[i], full[i]);
}

TEST(Hmac, KeySensitivity) {
  const auto msg = bytes_of("beacon body");
  const auto k1 = bytes_of("k1");
  const auto k2 = bytes_of("k2");
  EXPECT_NE(hmac_sha256(k1, msg), hmac_sha256(k2, msg));
}

TEST(Hmac, MessageSensitivity) {
  const auto key = bytes_of("k");
  EXPECT_NE(hmac_sha256(key, bytes_of("a")), hmac_sha256(key, bytes_of("b")));
}

TEST(DigestEqual, Basics) {
  const auto a = bytes_of("0123456789abcdef");
  auto b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[15] ^= 0x01;
  EXPECT_FALSE(digest_equal(a, b));
  const auto shorter = bytes_of("0123");
  EXPECT_FALSE(digest_equal(a, shorter));
}

}  // namespace
}  // namespace sstsp::crypto
