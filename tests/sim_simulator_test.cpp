#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace sstsp::sim {
namespace {

using namespace sstsp::sim::literals;

TEST(Simulator, RunsEventsAndAdvancesClock) {
  Simulator sim;
  std::vector<std::int64_t> at_us;
  sim.at(10_us, [&] { at_us.push_back(sim.now().to_us_floor()); });
  sim.at(5_us, [&] { at_us.push_back(sim.now().to_us_floor()); });
  sim.run_until(1_ms);
  EXPECT_EQ(at_us, (std::vector<std::int64_t>{5, 10}));
  EXPECT_EQ(sim.now(), 1_ms);  // clock lands on the horizon
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, HorizonIsInclusive) {
  Simulator sim;
  bool fired = false;
  sim.at(100_us, [&] { fired = true; });
  sim.run_until(100_us);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsBeyondHorizonStayPending) {
  Simulator sim;
  bool fired = false;
  sim.at(200_us, [&] { fired = true; });
  sim.run_until(100_us);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run_until(300_us);
  EXPECT_TRUE(fired);
}

TEST(Simulator, SchedulingInPastClampsToNow) {
  Simulator sim;
  sim.at(50_us, [&] {
    // From inside an event at t=50, schedule "at 10": must fire, at >= 50.
    sim.at(10_us, [&] { EXPECT_EQ(sim.now(), 50_us); });
  });
  sim.run_until(1_ms);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  std::int64_t fired_at = -1;
  sim.at(30_us, [&] {
    sim.after(12_us, [&] { fired_at = sim.now().to_us_floor(); });
  });
  sim.run_until(1_ms);
  EXPECT_EQ(fired_at, 42);
}

TEST(Simulator, CancelWorksThroughSimulator) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(10_us, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run_until(1_ms);
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepProcessesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.at(1_us, [&] { ++count; });
  sim.at(2_us, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsCanChainIndefinitelyUntilHorizon) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    sim.after(100_us, chain);
  };
  sim.at(SimTime::zero(), chain);
  sim.run_until(10_ms);
  EXPECT_EQ(fired, 101);  // t = 0, 100us, ..., 10ms inclusive
}

TEST(Simulator, SubstreamsFromSeed) {
  Simulator a(5);
  Simulator b(5);
  Rng ra = a.substream("x", 1);
  Rng rb = b.substream("x", 1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ra(), rb());
}

}  // namespace
}  // namespace sstsp::sim
