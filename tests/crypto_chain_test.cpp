#include "crypto/hash_chain.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace sstsp::crypto {
namespace {

ChainParams make_chain(std::size_t n) {
  return ChainParams{derive_seed(/*scenario=*/1, /*node=*/42), n};
}

TEST(HashChain, HashTimesComposes) {
  const Digest seed = derive_seed(1, 1);
  EXPECT_EQ(hash_times(seed, 0), seed);
  EXPECT_EQ(hash_times(seed, 3), hash_once(hash_once(hash_once(seed))));
}

TEST(HashChain, DeriveSeedDistinct) {
  EXPECT_NE(derive_seed(1, 1), derive_seed(1, 2));
  EXPECT_NE(derive_seed(1, 1), derive_seed(2, 1));
  EXPECT_EQ(derive_seed(7, 9), derive_seed(7, 9));
}

TEST(HashChain, AnchorIsNthElement) {
  const ChainParams c = make_chain(16);
  EXPECT_EQ(c.anchor(), c.element(16));
  EXPECT_EQ(c.element(0), c.seed);
}

TEST(HashChain, MuTeslaVerifyIdentity) {
  // h^{j-1}(K_{j-1}) == anchor with K_{j-1} = v_{n-j+1}, for all j.
  const std::size_t n = 32;
  const ChainParams c = make_chain(n);
  const Digest anchor = c.anchor();
  for (std::size_t j = 2; j <= n; ++j) {
    const Digest disclosed = c.element(n - j + 1);
    EXPECT_EQ(hash_times(disclosed, j - 1), anchor) << "j=" << j;
  }
}

class TraversalEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TraversalEquivalence, AllStrategiesYieldSameSequence) {
  const std::size_t n = GetParam();
  const ChainParams c = make_chain(n);
  FullStorageTraversal full(c);
  RecomputeTraversal recompute(c);
  FractalTraversal fractal(c);

  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_FALSE(full.exhausted());
    ASSERT_EQ(full.position(), n - 1 - i);
    ASSERT_EQ(recompute.position(), full.position());
    ASSERT_EQ(fractal.position(), full.position());
    const Digest a = full.next();
    const Digest b = recompute.next();
    const Digest d = fractal.next();
    ASSERT_EQ(a, b) << "i=" << i;
    ASSERT_EQ(a, d) << "i=" << i;
    ASSERT_EQ(a, c.element(n - 1 - i)) << "i=" << i;
  }
  EXPECT_TRUE(full.exhausted());
  EXPECT_TRUE(recompute.exhausted());
  EXPECT_TRUE(fractal.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Lengths, TraversalEquivalence,
                         ::testing::Values(1, 2, 3, 7, 8, 64, 100, 256, 1000));

class FractalBounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FractalBounds, LogarithmicStorageAndAmortizedWork) {
  const std::size_t n = GetParam();
  const ChainParams c = make_chain(n);
  FractalTraversal fractal(c);
  const auto log2n = static_cast<std::size_t>(std::ceil(std::log2(n))) + 2;

  std::size_t max_stored = 0;
  for (std::size_t i = 0; i < n; ++i) {
    (void)fractal.next();
    max_stored = std::max(max_stored, fractal.stored_digests());
  }
  EXPECT_LE(max_stored, log2n) << "n=" << n;
  // Total work O(n log n): amortized log per step.
  EXPECT_LE(fractal.hash_ops(),
            static_cast<std::uint64_t>(
                static_cast<double>(n) * (std::log2(static_cast<double>(n)) + 2)))
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, FractalBounds,
                         ::testing::Values(16, 64, 128, 1024, 4096));

TEST(Traversal, WorkAccounting) {
  const std::size_t n = 64;
  const ChainParams c = make_chain(n);

  FullStorageTraversal full(c);
  EXPECT_EQ(full.hash_ops(), n - 1);  // all work up front
  EXPECT_EQ(full.stored_digests(), n);

  RecomputeTraversal recompute(c);
  EXPECT_EQ(recompute.stored_digests(), 1u);
  (void)recompute.next();  // v_{n-1}: costs n-1 hashes
  EXPECT_EQ(recompute.hash_ops(), n - 1);
  (void)recompute.next();
  EXPECT_EQ(recompute.hash_ops(), 2 * n - 3);
}

TEST(CheckpointedChain, RandomAccessMatchesDirect) {
  const std::size_t n = 500;
  const ChainParams c = make_chain(n);
  CheckpointedChain cc(c, /*spacing=*/64);
  for (const std::size_t i : {0u, 1u, 63u, 64u, 65u, 200u, 499u, 500u}) {
    EXPECT_EQ(cc.element(i), c.element(i)) << "i=" << i;
  }
  EXPECT_EQ(cc.anchor(), c.anchor());
  // ceil(500/64) interior checkpoints + v_0 + anchor slot.
  EXPECT_LE(cc.stored_digests(), n / 64 + 3);
}

TEST(CheckpointedChain, SpacingOneStoresEverything) {
  const ChainParams c = make_chain(10);
  CheckpointedChain cc(c, 1);
  for (std::size_t i = 0; i <= 10; ++i) EXPECT_EQ(cc.element(i), c.element(i));
}

TEST(Traversal, EmptyChainIsExhausted) {
  const ChainParams c = make_chain(0);
  FullStorageTraversal full(c);
  RecomputeTraversal recompute(c);
  FractalTraversal fractal(c);
  EXPECT_TRUE(full.exhausted());
  EXPECT_TRUE(recompute.exhausted());
  EXPECT_TRUE(fractal.exhausted());
}

}  // namespace
}  // namespace sstsp::crypto
