#include "filter/student_t.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sstsp::filter {
namespace {

TEST(LnGamma, KnownValues) {
  EXPECT_NEAR(ln_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(ln_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(ln_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(ln_gamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  EXPECT_NEAR(ln_gamma(10.5), 13.940625219403763, 1e-9);
}

TEST(IncompleteBeta, Boundaries) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, SymmetricCase) {
  // I_{1/2}(a, a) = 1/2.
  for (const double a : {0.5, 1.0, 2.5, 7.0}) {
    EXPECT_NEAR(incomplete_beta(a, a, 0.5), 0.5, 1e-10) << a;
  }
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (const double x : {0.1, 0.25, 0.75, 0.9}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-10) << x;
  }
}

TEST(IncompleteBeta, AgainstClosedForm) {
  // I_x(2, 2) = x^2 (3 - 2x).
  for (const double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(incomplete_beta(2.0, 2.0, x), x * x * (3 - 2 * x), 1e-10);
  }
}

TEST(StudentT, CdfSymmetry) {
  for (const double nu : {1.0, 3.0, 10.0, 30.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, nu), 0.5, 1e-12);
    for (const double t : {0.5, 1.7, 4.2}) {
      EXPECT_NEAR(student_t_cdf(t, nu) + student_t_cdf(-t, nu), 1.0, 1e-10);
    }
  }
}

TEST(StudentT, CauchyClosedForm) {
  // nu = 1 is Cauchy: CDF(t) = 1/2 + atan(t)/pi.
  for (const double t : {-3.0, -1.0, 0.3, 2.5, 10.0}) {
    EXPECT_NEAR(student_t_cdf(t, 1.0), 0.5 + std::atan(t) / M_PI, 1e-9) << t;
  }
}

TEST(StudentT, Nu2ClosedForm) {
  // nu = 2: CDF(t) = 1/2 + t / (2 sqrt(2 + t^2)).
  for (const double t : {-2.0, -0.5, 0.0, 1.0, 4.0}) {
    EXPECT_NEAR(student_t_cdf(t, 2.0),
                0.5 + t / (2.0 * std::sqrt(2.0 + t * t)), 1e-9)
        << t;
  }
}

TEST(StudentT, ReferenceQuantiles) {
  // Classical table values.
  EXPECT_NEAR(student_t_quantile(0.975, 10.0), 2.228, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.95, 5.0), 2.015, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.99, 20.0), 2.528, 2e-3);
  EXPECT_NEAR(student_t_quantile(0.975, 1.0), 12.706, 2e-2);
  EXPECT_DOUBLE_EQ(student_t_quantile(0.5, 7.0), 0.0);
}

class QuantileRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(QuantileRoundTrip, CdfOfQuantileIsP) {
  const auto [p, nu] = GetParam();
  const double t = student_t_quantile(p, nu);
  EXPECT_NEAR(student_t_cdf(t, nu), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuantileRoundTrip,
    ::testing::Combine(::testing::Values(0.005, 0.05, 0.25, 0.5, 0.9, 0.975,
                                         0.999),
                       ::testing::Values(1.0, 2.0, 4.0, 9.0, 29.0, 100.0)));

TEST(StudentT, QuantileMonotoneInP) {
  double prev = -1e18;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double t = student_t_quantile(p, 6.0);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace sstsp::filter
