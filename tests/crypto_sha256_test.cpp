#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sstsp::crypto {
namespace {

std::string hex_of(std::string_view msg) {
  const Digest d = Sha256::hash(msg);
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  const Digest d = ctx.finish();
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways.";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 ctx;
    ctx.update(std::string_view(msg).substr(0, split));
    ctx.update(std::string_view(msg).substr(split));
    EXPECT_EQ(ctx.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/64/119/120 bytes hit the padding edge cases.
  for (const std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 ctx;
    for (const char c : msg) {
      ctx.update(std::string_view(&c, 1));
    }
    EXPECT_EQ(ctx.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST(Sha256, ContextReusableAfterFinish) {
  Sha256 ctx;
  ctx.update("abc");
  const Digest first = ctx.finish();
  ctx.update("abc");
  EXPECT_EQ(ctx.finish(), first);
}

TEST(Sha256, Truncate128TakesPrefix) {
  const Digest d = Sha256::hash("abc");
  const Digest128 t = truncate128(d);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], d[i]);
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(t.data(), t.size())),
            "ba7816bf8f01cfea414140de5dae2223");
}

TEST(Sha256, ToHexFormatting) {
  const std::vector<std::uint8_t> bytes{0x00, 0x0f, 0xa5, 0xff};
  EXPECT_EQ(to_hex(std::span<const std::uint8_t>(bytes.data(), bytes.size())),
            "000fa5ff");
}

}  // namespace
}  // namespace sstsp::crypto
