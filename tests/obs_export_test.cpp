// Structured export round-trip: the JSONL event stream, the summary record,
// and the standalone run document all parse back with the documented schema.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "runner/experiment.h"
#include "runner/json_report.h"
#include "runner/network.h"

namespace sstsp {
namespace {

run::Scenario small_scenario() {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 8;
  s.duration_s = 10.0;
  s.seed = 42;
  s.sstsp.chain_length = 400;
  s.trace_capacity = 1 << 12;
  s.profile = true;
  return s;
}

TEST(ExportJsonl, SingleEventShape) {
  trace::TraceEvent e;
  e.time = sim::SimTime::from_sec_double(1.5);
  e.node = 3;
  e.kind = trace::EventKind::kAdjustment;
  e.peer = 0;
  e.value_us = -4.25;

  std::ostringstream os;
  obs::write_event_jsonl(os, e);
  const std::string line = os.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  const auto doc = obs::json::parse(line);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("type")->string, "event");
  EXPECT_DOUBLE_EQ(doc->find("t_s")->number, 1.5);
  EXPECT_DOUBLE_EQ(doc->find("node")->number, 3.0);
  EXPECT_EQ(doc->find("kind")->string, "adjustment");
  EXPECT_DOUBLE_EQ(doc->find("peer")->number, 0.0);
  EXPECT_DOUBLE_EQ(doc->find("value_us")->number, -4.25);
}

TEST(ExportJsonl, PeerOmittedWhenAbsent) {
  trace::TraceEvent e;
  e.time = sim::SimTime::from_sec(0.1);
  e.node = 1;
  e.kind = trace::EventKind::kBeaconTx;

  std::ostringstream os;
  obs::write_event_jsonl(os, e);
  const auto doc = obs::json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("peer"), nullptr);
}

// End to end: stream a real (small) run through the sink, terminate with the
// summary record, and parse every line back.
TEST(ExportJsonl, FullRunRoundTrips) {
  const run::Scenario s = small_scenario();
  run::Network net(s);
  ASSERT_NE(net.trace(), nullptr);

  std::ostringstream stream;
  obs::attach_jsonl_sink(*net.trace(), stream);
  net.run();
  net.trace()->set_sink({});
  const run::RunResult result = run::collect_result(net, /*wall_seconds=*/0.1);
  run::write_summary_jsonl(stream, s, result);

  std::istringstream lines(stream.str());
  std::string line;
  std::size_t events = 0;
  std::size_t summaries = 0;
  while (std::getline(lines, line)) {
    const auto doc = obs::json::parse(line);
    ASSERT_TRUE(doc.has_value()) << "unparseable line: " << line;
    ASSERT_TRUE(doc->is_object());
    const obs::json::Value* type = doc->find("type");
    ASSERT_NE(type, nullptr);
    if (type->string == "event") {
      ++events;
      EXPECT_NE(doc->find("t_s"), nullptr);
      EXPECT_NE(doc->find("node"), nullptr);
      // Every kind string maps back to a real EventKind.
      EXPECT_TRUE(
          trace::kind_from_string(doc->find("kind")->string).has_value());
    } else {
      ASSERT_EQ(type->string, "summary");
      ++summaries;
    }
  }
  // The sink sees the complete stream, independent of ring eviction.
  EXPECT_EQ(events, net.trace()->total_recorded());
  EXPECT_GT(events, 0u);
  EXPECT_EQ(summaries, 1u);
}

TEST(RunJson, DocumentMatchesSchema) {
  const run::Scenario s = small_scenario();
  const run::RunResult result = run::run_scenario(s);

  std::ostringstream os;
  run::write_run_json(os, s, result);
  const auto doc = obs::json::parse(os.str());
  ASSERT_TRUE(doc.has_value());

  EXPECT_EQ(doc->find("protocol")->string, "SSTSP");
  EXPECT_DOUBLE_EQ(doc->find("nodes")->number, 8.0);
  EXPECT_DOUBLE_EQ(doc->find("duration_s")->number, 10.0);
  EXPECT_EQ(doc->find("attack")->string, "none");
  // Absent quantities are null, never omitted.
  ASSERT_NE(doc->find("attacker"), nullptr);
  EXPECT_TRUE(doc->find("attacker")->is_null());

  const obs::json::Value* channel = doc->find("channel");
  ASSERT_NE(channel, nullptr);
  EXPECT_GT(channel->find("transmissions")->number, 0.0);

  const obs::json::Value* honest = doc->find("honest");
  ASSERT_NE(honest, nullptr);
  EXPECT_NE(honest->find("adjustments"), nullptr);

  // Metrics were collected (default) and carry the wired instrument names.
  const obs::json::Value* metrics = doc->find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::json::Value* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("event.beacon-tx"), nullptr);
  EXPECT_GT(counters->find("event.beacon-tx")->number, 0.0);
  const obs::json::Value* hists = metrics->find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::json::Value* max_diff = hists->find("sync.max_diff_us");
  ASSERT_NE(max_diff, nullptr);
  EXPECT_GT(max_diff->find("count")->number, 0.0);

  // profile was requested, so the document carries the phase breakdown.
  const obs::json::Value* profile = doc->find("profile");
  ASSERT_NE(profile, nullptr);
  ASSERT_TRUE(profile->is_object());
  EXPECT_GT(profile->find("events")->number, 0.0);
  ASSERT_NE(profile->find("phases"), nullptr);
  EXPECT_NE(profile->find("phases")->find("event-dispatch"), nullptr);
}

TEST(RunJson, ProfileNullWhenDisabled) {
  run::Scenario s = small_scenario();
  s.profile = false;
  s.duration_s = 5.0;
  const run::RunResult result = run::run_scenario(s);

  std::ostringstream os;
  run::write_run_json(os, s, result);
  const auto doc = obs::json::parse(os.str());
  ASSERT_TRUE(doc.has_value());
  ASSERT_NE(doc->find("profile"), nullptr);
  EXPECT_TRUE(doc->find("profile")->is_null());
}

TEST(ExportJsonl, WriteTraceJsonlHonorsLimit) {
  trace::EventTrace trace(16);
  for (int i = 0; i < 10; ++i) {
    trace::TraceEvent e;
    e.time = sim::SimTime::from_sec(i);
    e.node = static_cast<mac::NodeId>(i);
    e.kind = trace::EventKind::kBeaconRx;
    trace.record(e);
  }
  std::ostringstream os;
  obs::write_trace_jsonl(os, trace, 3);
  std::istringstream lines(os.str());
  std::string line;
  std::vector<double> nodes;
  while (std::getline(lines, line)) {
    const auto doc = obs::json::parse(line);
    ASSERT_TRUE(doc.has_value());
    nodes.push_back(doc->find("node")->number);
  }
  // Newest 3 of 10.
  EXPECT_EQ(nodes, (std::vector<double>{7.0, 8.0, 9.0}));
}

}  // namespace
}  // namespace sstsp
