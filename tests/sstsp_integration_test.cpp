// End-to-end SSTSP behaviour on the full simulated IBSS: synchronization
// quality, continuity of the adjusted clocks, election dynamics, churn
// recovery, and traffic discipline.
#include <gtest/gtest.h>

#include "core/sstsp.h"
#include "runner/experiment.h"
#include "runner/network.h"

namespace sstsp::run {
namespace {

Scenario small_sstsp(int n, double duration_s, std::uint64_t seed = 7) {
  Scenario s;
  s.protocol = ProtocolKind::kSstsp;
  s.num_nodes = n;
  s.duration_s = duration_s;
  s.seed = seed;
  s.sstsp.chain_length = static_cast<std::size_t>(duration_s * 10) + 100;
  return s;
}

TEST(SstspIntegration, SynchronizesWellBelowIndustrialThreshold) {
  const auto r = run_scenario(small_sstsp(25, 60));
  ASSERT_TRUE(r.sync_latency_s.has_value());
  ASSERT_TRUE(r.steady_max_us.has_value());
  EXPECT_LT(*r.steady_max_us, kSyncThresholdUs);
  EXPECT_LT(*r.steady_p99_us, 15.0);  // paper: below 10 us typical
}

TEST(SstspIntegration, ExactlyOneBeaconPerBpAfterStabilization) {
  const auto r = run_scenario(small_sstsp(25, 60));
  // ~600 BPs; election may add a handful of extra beacons at the start.
  EXPECT_GE(r.honest.beacons_sent, 550u);
  EXPECT_LE(r.honest.beacons_sent, 640u);
}

TEST(SstspIntegration, SecuredBeaconBytesAccounted) {
  const auto r = run_scenario(small_sstsp(10, 30));
  // Every SSTSP beacon is 92 bytes on air (paper §3.4).
  EXPECT_EQ(r.channel.bytes_on_air, r.channel.transmissions * 92u);
}

TEST(SstspIntegration, NoRejectionsInBenignRun) {
  const auto r = run_scenario(small_sstsp(25, 60));
  EXPECT_EQ(r.honest.rejected_key, 0u);
  EXPECT_EQ(r.honest.rejected_mac, 0u);
  EXPECT_EQ(r.honest.rejected_guard, 0u);
  EXPECT_EQ(r.honest.rejected_interval, 0u);
}

TEST(SstspIntegration, AdjustedClocksNeverLeap) {
  // The paper's structural guarantee: no backward or discontinuous leaps.
  // Drive the network manually and sample every node's adjusted clock at
  // 10 ms granularity; consecutive readings must increase and never jump by
  // more than the sampling step +/- a generous slope band.
  Scenario s = small_sstsp(12, 40);
  Network net(s);
  net.arm();
  std::vector<double> prev(net.station_count(), -1e18);
  for (int step = 1; step <= 4000; ++step) {
    net.run_until(0.01 * step);
    for (std::size_t i = 0; i < net.station_count(); ++i) {
      if (!net.station(i).awake()) continue;
      const double v = net.station(i).protocol().network_time_us(
          net.simulator().now());
      if (prev[i] > -1e17) {
        const double delta = v - prev[i];
        ASSERT_GT(delta, 0.0) << "backward leap, station " << i;
        ASSERT_LT(delta, 10'000.0 * 1.01) << "forward jump, station " << i;
        ASSERT_GT(delta, 10'000.0 * 0.99) << "stall, station " << i;
      }
      prev[i] = v;
    }
  }
}

TEST(SstspIntegration, ExactlyOneReferenceAfterStabilization) {
  Scenario s = small_sstsp(20, 30);
  Network net(s);
  net.run_until(30.0);
  int refs = 0;
  for (std::size_t i = 0; i < net.station_count(); ++i) {
    const auto* proto =
        dynamic_cast<const core::Sstsp*>(&net.station(i).protocol());
    ASSERT_NE(proto, nullptr);
    if (proto->state() == core::Sstsp::State::kReference) ++refs;
  }
  EXPECT_EQ(refs, 1);
}

TEST(SstspIntegration, ReferenceDepartureTriggersReElection) {
  Scenario s = small_sstsp(20, 120);
  s.reference_departures_s = {40.0};
  const auto r = run_scenario(s);
  // The old reference left at 40 s; a new one must have been elected and
  // the network must re-stabilize.
  EXPECT_GE(r.honest.elections_won, 2u);
  const auto post = r.max_diff.max_in(60.0, 120.0);
  ASSERT_TRUE(post.has_value());
  EXPECT_LT(*post, kSyncThresholdUs);
  // During the election gap the error may exceed the threshold briefly.
  const auto during = r.max_diff.max_in(40.0, 45.0);
  ASSERT_TRUE(during.has_value());
  EXPECT_LT(*during, 500.0);  // bounded by Lemma 2 + guard machinery
}

TEST(SstspIntegration, ChurnReturnersResyncThroughCoarsePhase) {
  Scenario s = small_sstsp(20, 120);
  s.churn = ChurnSpec{/*period_s=*/30.0, /*fraction=*/0.2, /*absence_s=*/20.0};
  const auto r = run_scenario(s);
  EXPECT_GT(r.honest.coarse_steps, 0u);
  const auto tail = r.max_diff.max_in(100.0, 120.0);
  ASSERT_TRUE(tail.has_value());
  EXPECT_LT(*tail, kSyncThresholdUs);
}

TEST(SstspIntegration, PreestablishedReferenceSkipsElection) {
  Scenario s = small_sstsp(15, 30);
  s.preestablished_reference = true;
  Network net(s);
  net.run_until(30.0);
  const auto ref = net.current_reference_index();
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(*ref, 0u);
  // Node 0 never had to win a contention.
  EXPECT_EQ(net.station(0).protocol().stats().elections_won, 0u);
}

class MSweepLatency : public ::testing::TestWithParam<int> {};

// Table 1's qualitative law: latency increases with m while the converged
// error saturates.  (The quantitative table is bench/tab1_m_sweep.)
TEST_P(MSweepLatency, ConvergesAndRespectsLatencyOrdering) {
  Scenario s = small_sstsp(15, 40, /*seed=*/21);
  s.preestablished_reference = true;
  s.sstsp.m = GetParam();
  const auto r = run_scenario(s);
  ASSERT_TRUE(r.sync_latency_s.has_value()) << "m=" << GetParam();
  EXPECT_LT(*r.sync_latency_s, 3.0);
  ASSERT_TRUE(r.steady_max_us.has_value());
  EXPECT_LT(*r.steady_max_us, kSyncThresholdUs);
}

INSTANTIATE_TEST_SUITE_P(MValues, MSweepLatency, ::testing::Values(1, 2, 3, 4, 5));

TEST(SstspIntegration, SurvivesHeavyPacketLoss) {
  Scenario s = small_sstsp(15, 60);
  s.phy.packet_error_rate = 0.02;  // 200x the paper's rate
  s.sstsp.l = 3;                   // the paper's suggested mitigation
  const auto r = run_scenario(s);
  const auto tail = r.max_diff.max_in(40.0, 60.0);
  ASSERT_TRUE(tail.has_value());
  EXPECT_LT(*tail, 50.0);
}

TEST(SstspIntegration, ChainExhaustionStopsBeaconing) {
  // A chain that only covers 100 intervals: after it runs out the reference
  // must stop emitting (keys would be invalid) rather than misbehave.
  Scenario s = small_sstsp(5, 30);
  s.sstsp.chain_length = 100;
  const auto r = run_scenario(s);
  EXPECT_LE(r.honest.beacons_sent, 110u);
}

}  // namespace
}  // namespace sstsp::run
