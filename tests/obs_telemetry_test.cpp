// Streaming telemetry (DESIGN.md §10): sampler cadence and counter-delta
// logic, JSONL schema round-trip, line-atomic sink behavior, concurrent
// counter snapshots (run this binary under TSan), and the determinism
// contract — enabling telemetry must not perturb a seeded simulation by a
// single bit, and repeated telemetry runs must produce byte-identical
// streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "runner/experiment.h"
#include "runner/network.h"
#include "runner/scenario.h"
#include "runner/sweep.h"

namespace sstsp::obs {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(TelemetrySampler, FirstSampleDueAfterOneFullInterval) {
  std::vector<TelemetrySample> out;
  TelemetrySampler sampler({/*interval_s=*/2.0, "sim", false},
                           [&](const TelemetrySample& s) { out.push_back(s); });
  EXPECT_FALSE(sampler.due(0.0));
  EXPECT_FALSE(sampler.due(1.999));
  EXPECT_TRUE(sampler.due(2.0));
}

TEST(TelemetrySampler, EmitsPerIntervalDeltasNotCumulativeTotals) {
  std::vector<TelemetrySample> out;
  TelemetrySampler sampler({1.0, "sim", false},
                           [&](const TelemetrySample& s) { out.push_back(s); });

  TelemetryCumulative totals;
  totals.beacons_tx = 10;
  totals.beacons_rx = 40;
  totals.adjustments = 38;
  totals.events = 1000;
  sampler.emit(1.0, TelemetrySample{}, totals);

  totals.beacons_tx = 25;  // +15 over the second interval
  totals.beacons_rx = 100;
  totals.adjustments = 95;
  totals.rejects = 3;
  totals.events = 2500;
  sampler.emit(2.0, TelemetrySample{}, totals);

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].beacons_tx, 10u);  // first delta is against zero
  EXPECT_EQ(out[0].events, 1000u);
  EXPECT_EQ(out[1].beacons_tx, 15u);
  EXPECT_EQ(out[1].beacons_rx, 60u);
  EXPECT_EQ(out[1].adjustments, 57u);
  EXPECT_EQ(out[1].rejects, 3u);
  EXPECT_EQ(out[1].events, 1500u);
  EXPECT_EQ(sampler.emitted(), 2u);

  // The next due time advanced past both emissions.
  EXPECT_FALSE(sampler.due(2.5));
  EXPECT_TRUE(sampler.due(3.0));

  // Sim samples never carry process stats.
  EXPECT_EQ(out[1].rss_kb, -1);
  EXPECT_TRUE(std::isnan(out[1].wall_s));
}

TEST(TelemetrySample, JsonlRoundTripPreservesEveryField) {
  TelemetrySample s;
  s.t_s = 12.5;
  s.source = "swarm";
  s.node = -1;
  s.nodes_total = 5;
  s.nodes_awake = 4;
  s.nodes_synced = 3;
  s.reference = 2;
  s.max_offset_us = 7.25;
  s.mean_offset_us = 1.5;
  s.beacons_tx = 10;
  s.beacons_rx = 40;
  s.adjustments = 39;
  s.coarse_steps = 1;
  s.rejects = 2;
  s.elections = 1;
  s.events = 1234;
  s.queue_depth = 17;
  s.audit_records = 3;
  s.recovery_pending = true;
  s.rss_kb = 2048;
  s.wall_s = 0.75;
  s.node_errors.push_back({0, -3.5, true});
  s.node_errors.push_back({4, 2.0, false});

  const std::string line = telemetry_to_jsonl(s);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto value = json::parse(line);
  ASSERT_TRUE(value.has_value());
  const auto back = telemetry_from_json(*value);
  ASSERT_TRUE(back.has_value());

  EXPECT_DOUBLE_EQ(back->t_s, s.t_s);
  EXPECT_EQ(back->source, s.source);
  EXPECT_EQ(back->node, s.node);
  EXPECT_EQ(back->nodes_total, s.nodes_total);
  EXPECT_EQ(back->nodes_awake, s.nodes_awake);
  EXPECT_EQ(back->nodes_synced, s.nodes_synced);
  EXPECT_EQ(back->reference, s.reference);
  EXPECT_DOUBLE_EQ(back->max_offset_us, s.max_offset_us);
  EXPECT_DOUBLE_EQ(back->mean_offset_us, s.mean_offset_us);
  EXPECT_EQ(back->beacons_tx, s.beacons_tx);
  EXPECT_EQ(back->beacons_rx, s.beacons_rx);
  EXPECT_EQ(back->adjustments, s.adjustments);
  EXPECT_EQ(back->coarse_steps, s.coarse_steps);
  EXPECT_EQ(back->rejects, s.rejects);
  EXPECT_EQ(back->elections, s.elections);
  EXPECT_EQ(back->events, s.events);
  EXPECT_EQ(back->queue_depth, s.queue_depth);
  EXPECT_EQ(back->audit_records, s.audit_records);
  EXPECT_EQ(back->recovery_pending, s.recovery_pending);
  EXPECT_EQ(back->rss_kb, s.rss_kb);
  EXPECT_DOUBLE_EQ(back->wall_s, s.wall_s);
  ASSERT_EQ(back->node_errors.size(), 2u);
  EXPECT_EQ(back->node_errors[0].node, 0);
  EXPECT_DOUBLE_EQ(back->node_errors[0].err_us, -3.5);
  EXPECT_TRUE(back->node_errors[0].synced);
  EXPECT_EQ(back->node_errors[1].node, 4);
  EXPECT_FALSE(back->node_errors[1].synced);
}

TEST(TelemetrySample, NotApplicableFieldsSerializeAsNull) {
  TelemetrySample s;  // defaults: node=-1, reference=-1, NaN offsets, no rss
  const std::string line = telemetry_to_jsonl(s);
  EXPECT_NE(line.find("\"node\":null"), std::string::npos);
  EXPECT_NE(line.find("\"reference\":null"), std::string::npos);
  EXPECT_NE(line.find("\"max_offset_us\":null"), std::string::npos);
  EXPECT_NE(line.find("\"rss_kb\":null"), std::string::npos);
  EXPECT_EQ(line.find("nan"), std::string::npos);

  const auto back = telemetry_from_json(*json::parse(line));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node, -1);
  EXPECT_EQ(back->reference, -1);
  EXPECT_TRUE(std::isnan(back->max_offset_us));
  EXPECT_EQ(back->rss_kb, -1);
}

TEST(TelemetrySample, UnknownSchemaVersionOrTypeIsRejected) {
  const auto wrong_type = json::parse(R"({"type":"event","v":1})");
  ASSERT_TRUE(wrong_type.has_value());
  EXPECT_FALSE(telemetry_from_json(*wrong_type).has_value());

  const auto future = json::parse(R"({"type":"telemetry","v":999,"t_s":1})");
  ASSERT_TRUE(future.has_value());
  EXPECT_FALSE(telemetry_from_json(*future).has_value());
}

TEST(JsonlSink, EveryWriteLandsAsOneCompleteLine) {
  const std::string path = temp_path("sink_lines.jsonl");
  {
    JsonlSink sink;
    std::string error;
    ASSERT_TRUE(sink.open(path, &error)) << error;
    sink.write_line(R"({"a":1})");
    // Flushed at line granularity: the file already holds the whole line
    // (trailing newline included) while the sink is still open.
    EXPECT_EQ(read_file(path), "{\"a\":1}\n");
    sink.write_line(R"({"b":2})");
    EXPECT_EQ(sink.lines_written(), 2u);
    EXPECT_TRUE(sink.ok());
  }
  EXPECT_EQ(read_file(path), "{\"a\":1}\n{\"b\":2}\n");
  std::remove(path.c_str());
}

TEST(MetricsCounters, SnapshotWhileAnotherThreadIncrements) {
  // Counters are relaxed atomics precisely so live telemetry can snapshot
  // the registry mid-run; under TSan this test proves the claim.
  Registry registry;
  Counter& hits = registry.counter("test.hits");
  constexpr std::uint64_t kIncrements = 200000;

  std::atomic<bool> go{false};
  std::thread writer([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t i = 0; i < kIncrements; ++i) hits.inc();
  });

  go.store(true, std::memory_order_release);
  std::uint64_t last_seen = 0;
  for (int i = 0; i < 200; ++i) {
    const RegistrySnapshot snap = registry.snapshot();
    for (const auto& [name, value] : snap.counters) {
      if (name == "test.hits") {
        EXPECT_GE(value, last_seen);  // monotone across snapshots
        last_seen = value;
      }
    }
  }
  writer.join();

  const RegistrySnapshot final_snap = registry.snapshot();
  for (const auto& [name, value] : final_snap.counters) {
    if (name == "test.hits") {
      EXPECT_EQ(value, kIncrements);
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism contract (ISSUE 6 acceptance): telemetry must be a pure
// observer of the simulation.

run::Scenario telemetry_scenario(const std::string& telemetry_path) {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = 15;
  s.duration_s = 6.0;
  s.seed = 11;
  s.telemetry_out = telemetry_path;
  s.telemetry_interval_s = 0.5;
  s.telemetry_per_node = 1;
  return s;
}

TEST(TelemetryDeterminism, SeededTelemetryStreamsAreByteIdentical) {
  const std::string path_a = temp_path("tele_det_a.jsonl");
  const std::string path_b = temp_path("tele_det_b.jsonl");
  (void)run::run_scenario(telemetry_scenario(path_a));
  (void)run::run_scenario(telemetry_scenario(path_b));

  const std::string a = read_file(path_a);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, read_file(path_b));
  // ~12 samples (6 s / 0.5 s); the first interval has no sample at t=0.
  EXPECT_GE(std::count(a.begin(), a.end(), '\n'), 10);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(TelemetryDeterminism, EnablingTelemetryDoesNotPerturbTheRun) {
  run::Scenario off = telemetry_scenario("");
  off.telemetry_out.clear();
  const run::RunResult base = run::run_scenario(off);

  const std::string path = temp_path("tele_det_on.jsonl");
  const run::RunResult with = run::run_scenario(telemetry_scenario(path));
  std::remove(path.c_str());

  // Bit-identical event count and protocol counters: telemetry piggybacks
  // on the existing sampling tick and schedules NO events of its own.
  EXPECT_EQ(base.events_processed, with.events_processed);
  EXPECT_EQ(base.sync_latency_s, with.sync_latency_s);
  EXPECT_EQ(base.steady_max_us, with.steady_max_us);
  EXPECT_EQ(base.honest.beacons_sent, with.honest.beacons_sent);
  EXPECT_EQ(base.honest.beacons_received, with.honest.beacons_received);
  EXPECT_EQ(base.honest.adjustments, with.honest.adjustments);
  EXPECT_EQ(base.honest.elections_won, with.honest.elections_won);
  EXPECT_EQ(base.channel.transmissions, with.channel.transmissions);
  EXPECT_EQ(base.channel.bytes_on_air, with.channel.bytes_on_air);
}

TEST(TelemetryDeterminism, SweepThreadCountDoesNotChangeTelemetry) {
  std::vector<run::Scenario> serial_scenarios;
  std::vector<run::Scenario> parallel_scenarios;
  std::vector<std::string> serial_paths, parallel_paths;
  for (int i = 0; i < 3; ++i) {
    serial_paths.push_back(temp_path("sweep_s" + std::to_string(i)));
    parallel_paths.push_back(temp_path("sweep_p" + std::to_string(i)));
    run::Scenario s = telemetry_scenario(serial_paths.back());
    s.seed = 20 + static_cast<std::uint64_t>(i);
    serial_scenarios.push_back(s);
    s.telemetry_out = parallel_paths.back();
    parallel_scenarios.push_back(s);
  }

  (void)run::run_sweep(serial_scenarios, 1);
  (void)run::run_sweep(parallel_scenarios, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(read_file(serial_paths[i]), read_file(parallel_paths[i]))
        << "sweep point " << i;
    std::remove(serial_paths[i].c_str());
    std::remove(parallel_paths[i].c_str());
  }
}

TEST(TelemetryNetwork, ClusterSamplesCarryTheExpectedSchema) {
  const std::string path = temp_path("tele_schema.jsonl");
  run::Scenario s = telemetry_scenario(path);
  run::Network net(s);
  net.run();
  ASSERT_NE(net.telemetry_sampler(), nullptr);
  EXPECT_GT(net.telemetry_sampler()->emitted(), 0u);
  const run::RunResult result = run::collect_result(net, 0.0);
  EXPECT_GT(result.honest.beacons_sent, 0u);

  std::ifstream is(path);
  std::string line;
  std::size_t lines = 0;
  std::uint64_t beacons_tx_total = 0;
  while (std::getline(is, line)) {
    const auto value = json::parse(line);
    ASSERT_TRUE(value.has_value()) << line;
    const auto sample = telemetry_from_json(*value);
    ASSERT_TRUE(sample.has_value()) << line;
    EXPECT_EQ(sample->source, "sim");
    EXPECT_EQ(sample->node, -1);  // cluster-wide samples
    EXPECT_EQ(sample->nodes_total, 15);
    EXPECT_EQ(sample->node_errors.size(), 15u);  // per-node opted in
    beacons_tx_total += sample->beacons_tx;
    ++lines;
  }
  EXPECT_GT(lines, 0u);
  // Interval deltas must sum back to (approximately) the cumulative total;
  // the tail beyond the last sample instant is the only unsampled part.
  EXPECT_LE(beacons_tx_total, result.honest.beacons_sent);
  EXPECT_GE(beacons_tx_total + 2, result.honest.beacons_sent);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sstsp::obs
