#include <gtest/gtest.h>

#include <cmath>

#include "clock/adjusted_clock.h"
#include "clock/drift_model.h"
#include "clock/hardware_clock.h"
#include "clock/settable_clock.h"
#include "sim/rng.h"

namespace sstsp::clk {
namespace {

using sim::SimTime;

TEST(DriftModel, PpmConversions) {
  EXPECT_DOUBLE_EQ(DriftModel::perfect().frequency, 1.0);
  EXPECT_NEAR(DriftModel::from_ppm(100).frequency, 1.0001, 1e-12);
  EXPECT_NEAR(DriftModel::from_ppm(-50).ppm(), -50.0, 1e-9);
}

TEST(DriftModel, UniformWithinTolerance) {
  sim::Rng rng(5);
  double min_ppm = 1e9;
  double max_ppm = -1e9;
  for (int i = 0; i < 10'000; ++i) {
    const double ppm = DriftModel::uniform(rng).ppm();
    ASSERT_GE(ppm, -100.0);
    ASSERT_LE(ppm, 100.0);
    min_ppm = std::min(min_ppm, ppm);
    max_ppm = std::max(max_ppm, ppm);
  }
  EXPECT_LT(min_ppm, -95.0);  // the distribution actually fills the range
  EXPECT_GT(max_ppm, 95.0);
}

TEST(HardwareClock, AffineReading) {
  const HardwareClock hw(DriftModel::from_ppm(100), 50.0);
  EXPECT_DOUBLE_EQ(hw.read_us(SimTime::zero()), 50.0);
  // After 1 s: 50 + 1.0001 * 1e6.
  EXPECT_NEAR(hw.read_us(SimTime::from_sec(1)), 50.0 + 1.0001e6, 1e-6);
}

TEST(HardwareClock, InverseMapping) {
  const HardwareClock hw(DriftModel::from_ppm(-73), -12.5);
  for (const double target : {0.0, 1.0, 1e5, 9.87e8}) {
    const SimTime real = hw.real_at(target);
    EXPECT_NEAR(hw.read_us(real), target, 1e-5) << target;
  }
}

TEST(HardwareClock, CounterTruncates) {
  const HardwareClock hw(DriftModel::perfect(), 0.25);
  EXPECT_EQ(hw.read_counter(SimTime::zero()), 0);
  EXPECT_EQ(hw.read_counter(SimTime::from_us(3)), 3);  // 3.25 -> 3
  const HardwareClock neg(DriftModel::perfect(), -0.25);
  EXPECT_EQ(neg.read_counter(SimTime::zero()), -1);  // floor(-0.25)
}

TEST(HardwareClock, DriftAccumulatesAsExpected) {
  // Two clocks +/-100 ppm apart diverge by 200 us per second.
  const HardwareClock fast(DriftModel::from_ppm(100), 0.0);
  const HardwareClock slow(DriftModel::from_ppm(-100), 0.0);
  const SimTime t = SimTime::from_sec(10);
  EXPECT_NEAR(fast.read_us(t) - slow.read_us(t), 2000.0, 1e-6);
}

TEST(SettableClock, SetValueJumps) {
  const HardwareClock hw(DriftModel::from_ppm(40), 10.0);
  SettableClock timer(&hw);
  const SimTime t1 = SimTime::from_sec(1);
  EXPECT_DOUBLE_EQ(timer.read_us(t1), hw.read_us(t1));
  timer.set_value(t1, 5'000'000.0);
  EXPECT_DOUBLE_EQ(timer.read_us(t1), 5'000'000.0);
  // Keeps ticking at the hardware rate afterwards.
  const SimTime t2 = SimTime::from_sec(2);
  EXPECT_NEAR(timer.read_us(t2) - timer.read_us(t1), 1.00004e6, 1e-3);
}

TEST(SettableClock, RealAtInverse) {
  const HardwareClock hw(DriftModel::from_ppm(-100), 3.0);
  SettableClock timer(&hw);
  timer.set_value(SimTime::from_sec(5), 123456.0);
  const SimTime when = timer.real_at(200000.0);
  EXPECT_NEAR(timer.read_us(when), 200000.0, 1e-5);
}

TEST(AdjustedClock, IdentityByDefault) {
  const HardwareClock hw(DriftModel::from_ppm(25), 7.0);
  AdjustedClock adj(&hw);
  EXPECT_DOUBLE_EQ(adj.k(), 1.0);
  EXPECT_DOUBLE_EQ(adj.b(), 0.0);
  EXPECT_DOUBLE_EQ(adj.read_us(SimTime::from_sec(3)),
                   hw.read_us(SimTime::from_sec(3)));
}

TEST(AdjustedClock, SlopeChangeIsContinuous) {
  const HardwareClock hw(DriftModel::perfect(), 0.0);
  AdjustedClock adj(&hw);
  adj.set_params(1.00005, -20.0);
  const double hw_now = 5e8;
  const double before = adj.value_at_hw(hw_now);
  adj.set_slope_continuous(0.99997, hw_now);
  EXPECT_NEAR(adj.value_at_hw(hw_now), before, 1e-6);
  EXPECT_DOUBLE_EQ(adj.k(), 0.99997);
  EXPECT_EQ(adj.adjustments(), 2u);
}

TEST(AdjustedClock, StepToSetsValue) {
  const HardwareClock hw(DriftModel::perfect(), 0.0);
  AdjustedClock adj(&hw);
  adj.step_to(777.0, 100.0);
  EXPECT_DOUBLE_EQ(adj.value_at_hw(100.0), 777.0);
  EXPECT_DOUBLE_EQ(adj.k(), 1.0);
}

TEST(AdjustedClock, RealAtInverse) {
  const HardwareClock hw(DriftModel::from_ppm(80), -4.0);
  AdjustedClock adj(&hw);
  adj.set_params(0.99998, 42.0);
  const SimTime when = adj.real_at(3.21e8);
  EXPECT_NEAR(adj.read_us(when), 3.21e8, 1e-4);
}

TEST(AdjustedClock, MonotoneForPositiveSlope) {
  const HardwareClock hw(DriftModel::from_ppm(-100), 0.0);
  AdjustedClock adj(&hw);
  adj.set_params(0.9999, 10.0);
  double prev = adj.read_us(SimTime::zero());
  for (int i = 1; i <= 100; ++i) {
    const double v = adj.read_us(SimTime::from_ms(i));
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(RngNormal, MomentsAndDeterminism) {
  sim::Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);

  sim::Rng a(99), b(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
  }
}

TEST(DriftStress, DisabledByDefault) {
  DriftStress spec;
  EXPECT_FALSE(spec.enabled());
  spec.kind = DriftStressKind::kTempRamp;
  EXPECT_TRUE(spec.enabled());
  spec.period_s = 0.0;
  EXPECT_FALSE(spec.enabled());
}

TEST(DriftStress, TempRampRespectsWindowAndSusceptibility) {
  DriftStress spec;
  spec.kind = DriftStressKind::kTempRamp;
  spec.ramp_ppm_per_s = 2.0;
  spec.ramp_start_s = 10.0;
  spec.ramp_end_s = 20.0;
  sim::Rng rng(5);
  DriftStressor stressor(spec, rng.substream("clock-stress", 0));
  EXPECT_GE(stressor.susceptibility(), -1.0);
  EXPECT_LE(stressor.susceptibility(), 1.0);
  // Outside the active window the ramp contributes nothing.
  EXPECT_EQ(stressor.step_delta_ppm(5.0, 1.0), 0.0);
  EXPECT_EQ(stressor.step_delta_ppm(25.0, 1.0), 0.0);
  // Inside: susceptibility * rate * dt exactly.
  EXPECT_DOUBLE_EQ(stressor.step_delta_ppm(15.0, 1.0),
                   stressor.susceptibility() * 2.0);
}

TEST(DriftStress, TempRampEndNegativeMeansWholeRun) {
  DriftStress spec;
  spec.kind = DriftStressKind::kTempRamp;
  spec.ramp_ppm_per_s = 1.0;
  spec.ramp_end_s = -1.0;
  sim::Rng rng(6);
  DriftStressor stressor(spec, rng.substream("clock-stress", 3));
  EXPECT_DOUBLE_EQ(stressor.step_delta_ppm(1e6, 1.0),
                   stressor.susceptibility());
}

TEST(DriftStress, AgingIsMonotoneNonNegative) {
  DriftStress spec;
  spec.kind = DriftStressKind::kAging;
  spec.aging_ppm_per_day = 86400.0;  // 1 ppm/s at susceptibility 1
  sim::Rng rng(7);
  DriftStressor stressor(spec, rng.substream("clock-stress", 1));
  EXPECT_GE(stressor.susceptibility(), 0.0);
  EXPECT_LE(stressor.susceptibility(), 1.0);
  const double d = stressor.step_delta_ppm(100.0, 1.0);
  EXPECT_GE(d, 0.0);
  EXPECT_DOUBLE_EQ(d, stressor.susceptibility());
}

TEST(DriftStress, RandomWalkIsDeterministicPerSubstream) {
  DriftStress spec;
  spec.kind = DriftStressKind::kRandomWalk;
  spec.walk_sigma_ppm = 0.5;
  sim::Rng rng(9);
  DriftStressor s1(spec, rng.substream("clock-stress", 2));
  DriftStressor s2(spec, rng.substream("clock-stress", 2));
  DriftStressor other(spec, rng.substream("clock-stress", 3));
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    const double a = s1.step_delta_ppm(i, 1.0);
    EXPECT_EQ(a, s2.step_delta_ppm(i, 1.0));
    if (a != other.step_delta_ppm(i, 1.0)) differs = true;
  }
  EXPECT_TRUE(differs);  // distinct nodes walk distinct paths
}

}  // namespace
}  // namespace sstsp::clk
