// Fault injection through the simulated channel: seeded determinism of
// FaultPlan replay, packet-directive effects on channel accounting, and
// per-fault recovery records (reference crash, partition heal, clock step).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/plan.h"
#include "obs/export.h"
#include "runner/experiment.h"
#include "runner/network.h"

namespace sstsp::run {
namespace {

Scenario base_scenario() {
  Scenario s;
  s.num_nodes = 10;
  s.duration_s = 20.0;
  s.seed = 1;
  s.sstsp.chain_length = 400;
  s.monitor = true;
  return s;
}

fault::FaultPlan plan_from(const char* json) {
  std::string error;
  const auto plan = fault::parse_plan_text(json, &error);
  EXPECT_TRUE(plan.has_value()) << error;
  return plan.value_or(fault::FaultPlan{});
}

// Runs the scenario capturing the full protocol-event trace as JSONL.
std::string run_trace(const Scenario& scenario, RunResult* result) {
  Scenario s = scenario;
  s.trace_capacity = 1 << 15;
  Network net(s);
  std::ostringstream jsonl;
  obs::attach_jsonl_sink(*net.trace(), jsonl);
  net.run();
  if (result != nullptr) *result = collect_result(net, 0.0);
  return jsonl.str();
}

TEST(FaultInjection, SamePlanAndSeedReplayBitIdentical) {
  Scenario s = base_scenario();
  s.faults = plan_from(R"({
    "seed": 5,
    "packet": [{"kind": "drop", "probability": 0.2},
               {"kind": "duplicate", "probability": 0.05},
               {"kind": "delay", "probability": 0.1,
                "delay_min_us": 50, "delay_max_us": 400}],
    "node_faults": [{"kind": "crash", "node": "reference", "at": 10}]
  })");
  RunResult first_result;
  RunResult second_result;
  const std::string first = run_trace(s, &first_result);
  const std::string second = run_trace(s, &second_result);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // bit-identical sim trace
  EXPECT_EQ(first_result.events_processed, second_result.events_processed);
  ASSERT_TRUE(first_result.recovery.has_value());
  ASSERT_TRUE(second_result.recovery.has_value());
  EXPECT_EQ(first_result.recovery->packet_faults.drops,
            second_result.recovery->packet_faults.drops);
  EXPECT_EQ(first_result.recovery->post_fault_steady_max_us,
            second_result.recovery->post_fault_steady_max_us);
}

TEST(FaultInjection, DropDirectiveSuppressesDeliveries) {
  Scenario pristine = base_scenario();
  const RunResult clean = run_scenario(pristine);

  Scenario faulted = base_scenario();
  faulted.faults =
      plan_from(R"({"packet": [{"kind": "drop", "probability": 0.3}]})");
  const RunResult lossy = run_scenario(faulted);

  ASSERT_TRUE(lossy.recovery.has_value());
  EXPECT_GT(lossy.recovery->packet_faults.drops, 0u);
  EXPECT_LT(lossy.honest.beacons_received, clean.honest.beacons_received);
  // The injector draws from its own substream: the channel's own PHY
  // accounting of transmissions stays deterministic and comparable.
  EXPECT_GT(lossy.channel.transmissions, 0u);
}

TEST(FaultInjection, DuplicateDirectiveDeliversExtraCopies) {
  Scenario s = base_scenario();
  s.faults = plan_from(
      R"({"packet": [{"kind": "duplicate", "probability": 1.0, "copies": 1}]})");
  const RunResult result = run_scenario(s);
  ASSERT_TRUE(result.recovery.has_value());
  EXPECT_GT(result.recovery->packet_faults.duplicates, 0u);
  // Replayed copies of an already-seen interval are rejected, not adopted.
  EXPECT_GT(result.honest.beacons_received, 0u);
}

TEST(FaultInjection, ReferenceCrashOpensReelectionRecord) {
  Scenario s = base_scenario();
  s.duration_s = 30.0;
  s.sstsp.chain_length = 600;
  s.faults = plan_from(
      R"({"node_faults": [{"kind": "crash", "node": "reference", "at": 15}]})");
  const RunResult result = run_scenario(s);
  ASSERT_TRUE(result.recovery.has_value());
  ASSERT_EQ(result.recovery->records.size(), 1u);
  const auto& rec = result.recovery->records[0];
  EXPECT_EQ(rec.fault, "reference-crash");
  EXPECT_TRUE(rec.needs_election);
  EXPECT_TRUE(rec.recovered);
  // Detection alone takes l+1 silent BPs; contention + confirmation adds a
  // couple more.  Bound with slack over the paper's l+1 detection floor.
  EXPECT_GT(rec.reelection_bps, 0.0);
  EXPECT_LE(rec.reelection_bps, (s.sstsp.l + 1) + 4.0);
  EXPECT_GE(result.recovery->post_fault_steady_max_us, 0.0);
}

TEST(FaultInjection, PartitionHealOpensResyncRecord) {
  Scenario s = base_scenario();
  s.duration_s = 30.0;
  s.sstsp.chain_length = 600;
  s.faults = plan_from(R"({
    "partitions": [{"start": 10, "end": 18, "group_a": [7, 8, 9]}]
  })");
  const RunResult result = run_scenario(s);
  ASSERT_TRUE(result.recovery.has_value());
  ASSERT_EQ(result.recovery->records.size(), 1u);
  const auto& rec = result.recovery->records[0];
  EXPECT_EQ(rec.fault, "partition-heal");
  EXPECT_FALSE(rec.needs_election);
  EXPECT_TRUE(rec.recovered);
  EXPECT_GE(rec.resync_s, 0.0);
  EXPECT_GT(result.recovery->packet_faults.partition_drops, 0u);
}

TEST(FaultInjection, ClockStepOpensResyncRecord) {
  Scenario s = base_scenario();
  s.duration_s = 25.0;
  s.sstsp.chain_length = 500;
  s.faults = plan_from(
      R"({"clock_faults": [{"node": 4, "at": 12, "step_us": 400}]})");
  const RunResult result = run_scenario(s);
  ASSERT_TRUE(result.recovery.has_value());
  ASSERT_EQ(result.recovery->records.size(), 1u);
  const auto& rec = result.recovery->records[0];
  EXPECT_EQ(rec.fault, "clock-fault");
  EXPECT_EQ(rec.node, 4u);
  EXPECT_TRUE(rec.recovered);
}

TEST(FaultInjection, AcceptancePlanRunsStrictCleanInSim) {
  // The ISSUE acceptance plan: reference crash at t=30 under 10% loss.
  Scenario s = base_scenario();
  s.duration_s = 45.0;
  s.sstsp.chain_length = 900;
  s.faults = plan_from(R"({
    "seed": 1,
    "packet": [{"kind": "drop", "probability": 0.1}],
    "node_faults": [{"kind": "crash", "node": "reference", "at": 30}]
  })");
  const RunResult result = run_scenario(s);
  ASSERT_TRUE(result.audit.has_value());
  EXPECT_TRUE(result.audit->records.empty())
      << result.audit->records.front().detail;
  ASSERT_TRUE(result.recovery.has_value());
  ASSERT_EQ(result.recovery->records.size(), 1u);
  const auto& rec = result.recovery->records[0];
  EXPECT_TRUE(rec.recovered);
  EXPECT_LE(rec.reelection_bps, (s.sstsp.l + 1) + 4.0);
  EXPECT_GE(result.recovery->post_fault_steady_max_us, 0.0);
  EXPECT_LT(result.recovery->post_fault_steady_max_us, 25.0);
}

}  // namespace
}  // namespace sstsp::run
