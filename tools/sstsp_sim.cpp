// sstsp_sim — command-line scenario runner.
//
//   $ sstsp_sim --protocol sstsp --nodes 200 --duration 300 --chart
//   $ sstsp_sim --protocol tsf --nodes 300 --paper-env --csv tsf300.csv
//   $ sstsp_sim --attack internal-ref --attack-window 100,200 --trace
//   $ sstsp_sim --json-out run.jsonl --metrics-out metrics.json --profile
//
// See --help for the full option list.  Everything the tool does is also
// available programmatically through runner::run_scenario.
#include <chrono>
#include <fstream>
#include <iostream>

#include "metrics/report.h"
#include "obs/export.h"
#include "runner/cli.h"
#include "runner/experiment.h"
#include "runner/json_report.h"
#include "runner/network.h"

int main(int argc, char** argv) {
  using namespace sstsp;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto opts = run::parse_cli(args, &error);
  if (!opts) {
    std::cerr << "error: " << error << "\n\n" << run::cli_usage();
    return 2;
  }
  if (opts->help) {
    std::cout << run::cli_usage();
    return 0;
  }

  const run::Scenario& s = opts->scenario;
  std::cout << "running " << run::protocol_name(s.protocol) << ", "
            << s.num_nodes << " nodes, " << s.duration_s << " s, seed "
            << s.seed;
  if (s.attack != run::AttackKind::kNone) std::cout << ", with attacker";
  std::cout << " ...\n";

  run::Network net(s);

  // The JSONL sink must be attached before the run: it streams every event
  // at record time, so the file captures the complete stream even though
  // the in-memory ring only retains the newest slice.
  std::ofstream json_out;
  if (!opts->json_out_path.empty()) {
    json_out.open(opts->json_out_path);
    if (!json_out) {
      std::cerr << "error: could not open " << opts->json_out_path << '\n';
      return 1;
    }
    if (net.trace() == nullptr) {
      std::cerr << "error: --json-out needs an event trace (internal)\n";
      return 1;
    }
    obs::attach_jsonl_sink(*net.trace(), json_out);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  net.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  const run::RunResult result = run::collect_result(net, wall_seconds);

  const auto& series = result.max_diff;
  const auto& honest = result.honest;
  std::cout << "\nsync latency (<25 us sustained): "
            << (result.sync_latency_s
                    ? metrics::fmt(*result.sync_latency_s, 2) + " s"
                    : std::string("never"))
            << "\nsteady max / p99 clock difference: "
            << (result.steady_max_us ? metrics::fmt(*result.steady_max_us, 2)
                                     : std::string("-"))
            << " / "
            << (result.steady_p99_us ? metrics::fmt(*result.steady_p99_us, 2)
                                     : std::string("-"))
            << " us\nbeacons: " << result.channel.transmissions << " ("
            << result.channel.collided_transmissions << " collided), "
            << result.channel.bytes_on_air << " bytes on air\n"
            << "adjustments/adoptions: " << honest.adjustments << "/"
            << honest.adoptions << ", elections " << honest.elections_won
            << ", rejections g/i/k/m " << honest.rejected_guard << "/"
            << honest.rejected_interval << "/" << honest.rejected_key << "/"
            << honest.rejected_mac << '\n';

  if (result.profile) {
    std::cout << '\n';
    result.profile->print(std::cout);
  }

  if (result.audit) {
    const obs::AuditReport& audit = *result.audit;
    std::cout << "\ninvariant monitor: ";
    if (audit.clean()) {
      std::cout << "clean (0 audit records)\n";
    } else {
      std::cout << audit.records.size() << " audit record(s), "
                << audit.critical_count() << " critical / "
                << audit.warning_count() << " warnings";
      if (audit.dropped_records > 0) {
        std::cout << " (" << audit.dropped_records << " dropped)";
      }
      std::cout << '\n';
      std::size_t shown = 0;
      for (const auto& r : audit.records) {
        if (shown++ == 10) {
          std::cout << "  ... (" << audit.records.size() - 10 << " more)\n";
          break;
        }
        std::cout << "  [" << obs::to_string(r.severity) << "] "
                  << obs::to_string(r.kind) << " x" << r.count;
        if (r.node != mac::kNoNode) std::cout << " node " << r.node;
        if (r.peer != mac::kNoNode) std::cout << " peer " << r.peer;
        std::cout << " t=" << metrics::fmt(r.first_t_s, 1) << ".."
                  << metrics::fmt(r.last_t_s, 1) << " s — " << r.detail
                  << " (" << obs::paper_reference(r.kind) << ")\n";
      }
    }
  }

  if (opts->ascii_chart) {
    std::cout << '\n';
    metrics::print_ascii_series(std::cout, series,
                                std::max(1.0, s.duration_s / 50.0),
                                /*log_scale=*/true);
  }
  if (!opts->csv_path.empty()) {
    if (metrics::write_csv(series, opts->csv_path, "max_clock_diff_us")) {
      std::cout << "series written to " << opts->csv_path << '\n';
    } else {
      std::cerr << "error: could not write " << opts->csv_path << '\n';
      return 1;
    }
  }
  if (json_out.is_open()) {
    net.trace()->set_sink({});
    run::write_summary_jsonl(json_out, s, result);
    if (!json_out) {
      std::cerr << "error: failed writing " << opts->json_out_path << '\n';
      return 1;
    }
    std::cout << "event stream written to " << opts->json_out_path << " ("
              << net.trace()->total_recorded() << " events + summary)\n";
  }
  if (!opts->metrics_out_path.empty()) {
    std::ofstream metrics_out(opts->metrics_out_path);
    if (!metrics_out) {
      std::cerr << "error: could not write " << opts->metrics_out_path
                << '\n';
      return 1;
    }
    run::write_run_json(metrics_out, s, result);
    std::cout << "metrics written to " << opts->metrics_out_path << '\n';
  }
  if (opts->dump_trace && net.trace() != nullptr) {
    std::cout << "\nnewest protocol events";
    if (opts->trace_kind) {
      std::cout << " (" << trace::to_string(*opts->trace_kind) << " only)";
    }
    std::cout << ":\n";
    net.trace()->dump(std::cout, opts->trace_limit, opts->trace_kind);
    std::cout << "(recorded " << net.trace()->total_recorded()
              << " events total, " << net.trace()->dropped()
              << " dropped from the ring)\n";
  }
  if (opts->monitor_strict && result.audit && !result.audit->clean()) {
    std::cerr << "error: --monitor=strict and the run produced "
              << result.audit->records.size() << " audit record(s)\n";
    return 3;
  }
  return 0;
}
