// sstsp_sim — command-line scenario runner.
//
//   $ sstsp_sim --protocol sstsp --nodes 200 --duration 300 --chart
//   $ sstsp_sim --protocol tsf --nodes 300 --paper-env --csv tsf300.csv
//   $ sstsp_sim --attack internal-ref --attack-window 100,200 --trace
//   $ sstsp_sim --json-out run.jsonl --metrics-out metrics.json --profile
//   $ sstsp_sim --telemetry-out tele.jsonl --flight-recorder flight.jsonl
//   $ sstsp_sim --config experiment.json
//
// See --help for the full option list.  Everything the tool does is also
// available programmatically through runner::run_scenario.
#include <chrono>
#include <csignal>
#include <exception>
#include <iostream>

#include "runner/cli.h"
#include "runner/experiment.h"
#include "runner/network.h"
#include "runner/parallel_network.h"
#include "runner/run_output.h"

namespace {
// SIGUSR1 -> flight-recorder dump at the next sampling tick (async-signal-
// safe: the handler only sets the flag; the run loop does the I/O).
volatile std::sig_atomic_t g_dump_requested = 0;
void on_sigusr1(int) { g_dump_requested = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace sstsp;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto opts = run::parse_cli(args, &error);
  if (!opts) {
    std::cerr << "error: " << error << "\n\n" << run::cli_usage();
    return 2;
  }
  if (opts->help) {
    std::cout << run::cli_usage();
    return 0;
  }

  const run::Scenario& s = opts->scenario;
  std::cout << "running " << run::protocol_name(s.protocol) << ", "
            << s.num_nodes << " nodes, " << s.duration_s << " s, seed "
            << s.seed;
  if (!s.attack.empty()) std::cout << ", attack " << s.attack;
  if (!s.faults.empty()) std::cout << ", faults injected";
  std::cout << " ...\n";

  try {
    if (s.threads > 0 || s.shards > 0) {
      // Sharded parallel kernel.  The JSONL event stream writes at record
      // time and would interleave nondeterministically across shards, so
      // it stays a single-kernel feature; traces are merged post-run.
      if (!opts->json_out_path.empty()) {
        std::cerr << "error: --json-out is not supported with --threads; "
                     "use --trace, --metrics-out or --csv\n";
        return 2;
      }
      run::ParallelNetwork net(s);
      run::RunOutput output(run::OutputOptions::from_cli(*opts));
      if (!output.begin(nullptr, &error)) {
        std::cerr << "error: " << error << '\n';
        return 1;
      }
      const auto wall_start = std::chrono::steady_clock::now();
      net.run();
      const double wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      const run::RunResult result = run::collect_result(net, wall_seconds);
      const auto merged = net.merged_trace();
      return output.finish(std::cout, std::cerr, s, result, merged.get());
    }
    run::Network net(s);
    if (!s.flight_recorder_out.empty()) {
      std::signal(SIGUSR1, on_sigusr1);
      net.set_dump_request_flag(&g_dump_requested);
    }

    run::RunOutput output(run::OutputOptions::from_cli(*opts));
    if (!output.begin(net.trace(), &error)) {
      std::cerr << "error: " << error << '\n';
      return 1;
    }
    output.attach_profiler(net.profiler());

    const auto wall_start = std::chrono::steady_clock::now();
    net.run();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    const run::RunResult result = run::collect_result(net, wall_seconds);

    return output.finish(std::cout, std::cerr, s, result, net.trace());
  } catch (const std::exception& e) {
    // Network's constructor throws on unopenable telemetry/flight sinks.
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
