// sstsp_sim — command-line scenario runner.
//
//   $ sstsp_sim --protocol sstsp --nodes 200 --duration 300 --chart
//   $ sstsp_sim --protocol tsf --nodes 300 --paper-env --csv tsf300.csv
//   $ sstsp_sim --attack internal-ref --attack-window 100,200 --trace
//
// See --help for the full option list.  Everything the tool does is also
// available programmatically through runner::run_scenario.
#include <iostream>

#include "metrics/report.h"
#include "runner/cli.h"
#include "runner/experiment.h"
#include "runner/network.h"

int main(int argc, char** argv) {
  using namespace sstsp;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto opts = run::parse_cli(args, &error);
  if (!opts) {
    std::cerr << "error: " << error << "\n\n" << run::cli_usage();
    return 2;
  }
  if (opts->help) {
    std::cout << run::cli_usage();
    return 0;
  }

  const run::Scenario& s = opts->scenario;
  std::cout << "running " << run::protocol_name(s.protocol) << ", "
            << s.num_nodes << " nodes, " << s.duration_s << " s, seed "
            << s.seed;
  if (s.attack != run::AttackKind::kNone) std::cout << ", with attacker";
  std::cout << " ...\n";

  run::Network net(s);
  net.run();

  const auto& series = net.max_diff_series();
  const auto honest = net.honest_stats();
  const auto latency =
      series.first_sustained_below(run::kSyncThresholdUs, 1.0);
  const double steady_from = std::max(20.0, latency.value_or(0.0) + 5.0);
  const auto steady_max = series.max_in(steady_from, s.duration_s);
  const auto steady_p99 =
      series.quantile_in(0.99, steady_from, s.duration_s);

  std::cout << "\nsync latency (<25 us sustained): "
            << (latency ? metrics::fmt(*latency, 2) + " s"
                        : std::string("never"))
            << "\nsteady max / p99 clock difference: "
            << (steady_max ? metrics::fmt(*steady_max, 2) : std::string("-"))
            << " / "
            << (steady_p99 ? metrics::fmt(*steady_p99, 2) : std::string("-"))
            << " us\nbeacons: " << net.channel_stats().transmissions << " ("
            << net.channel_stats().collided_transmissions << " collided), "
            << net.channel_stats().bytes_on_air << " bytes on air\n"
            << "adjustments/adoptions: " << honest.adjustments << "/"
            << honest.adoptions << ", elections " << honest.elections_won
            << ", rejections g/i/k/m " << honest.rejected_guard << "/"
            << honest.rejected_interval << "/" << honest.rejected_key << "/"
            << honest.rejected_mac << '\n';

  if (opts->ascii_chart) {
    std::cout << '\n';
    metrics::print_ascii_series(std::cout, series,
                                std::max(1.0, s.duration_s / 50.0),
                                /*log_scale=*/true);
  }
  if (!opts->csv_path.empty()) {
    if (metrics::write_csv(series, opts->csv_path, "max_clock_diff_us")) {
      std::cout << "series written to " << opts->csv_path << '\n';
    } else {
      std::cerr << "error: could not write " << opts->csv_path << '\n';
      return 1;
    }
  }
  if (opts->dump_trace && net.trace() != nullptr) {
    std::cout << "\nnewest protocol events:\n";
    net.trace()->dump(std::cout, 40);
    std::cout << "(recorded " << net.trace()->total_recorded()
              << " events total, " << net.trace()->dropped()
              << " dropped from the ring)\n";
  }
  return 0;
}
