// sstsp_tracetool — cross-node trace/telemetry analyzer.
//
// Merges the JSONL streams a run (or several per-node runs) produced —
// event streams (--json-out), telemetry time-series (--telemetry-out),
// flight-recorder dumps and run summaries — and reports the beacon funnel,
// the convergence timeline (first sync, error spikes, re-convergence) and
// per-fault recovery, stitched across nodes by trace_id:
//
//   $ sstsp_tracetool run.jsonl tele.jsonl
//   $ sstsp_tracetool --merged-out merged.jsonl --timeline-out t.csv
//         node0.jsonl node1.jsonl node2.jsonl swarm-tele.jsonl
//   $ sstsp_tracetool --curves-out curves.csv faulted-run.jsonl tele.jsonl
//
// Torn lines (a crashed writer's truncated tail) are counted and skipped,
// never fatal.  Exit codes: 0 ok, 1 I/O error, 2 usage.
#include <iostream>
#include <string>
#include <vector>

#include "trace/analyzer.h"

namespace {

const char* usage() {
  return R"(usage: sstsp_tracetool [options] FILE...

Analyzes JSONL streams from sstsp_sim / sstsp_swarm / sstsp_node: protocol
events, telemetry samples, flight-recorder dumps and run summaries, in any
combination and split across any number of files.

options:
  --merged-out PATH     write all inputs as one time-ordered JSONL stream
  --timeline-out PATH   write the convergence timeline as CSV
                        (t_s,node,err_us,synced; node -1 = cluster max)
  --curves-out PATH     write per-fault recovery curves as CSV (needs fault
                        marks from a {"type":"summary"} record)
  --threshold US        sync threshold for convergence/spike analysis
                        (default 25, the paper's industry bound)
  --quiet               suppress the report (writers only)
  --help                this text
)";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sstsp;

  std::string merged_out;
  std::string timeline_out;
  std::string curves_out;
  bool quiet = false;
  trace::AnalyzerOptions options;
  std::vector<std::string> files;

  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= args.size()) return false;
      *out = args[++i];
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return 0;
    } else if (arg == "--merged-out") {
      if (!next(&merged_out)) {
        std::cerr << "error: --merged-out needs a path\n\n" << usage();
        return 2;
      }
    } else if (arg == "--timeline-out") {
      if (!next(&timeline_out)) {
        std::cerr << "error: --timeline-out needs a path\n\n" << usage();
        return 2;
      }
    } else if (arg == "--curves-out") {
      if (!next(&curves_out)) {
        std::cerr << "error: --curves-out needs a path\n\n" << usage();
        return 2;
      }
    } else if (arg == "--threshold") {
      std::string v;
      double t = 0.0;
      try {
        std::size_t used = 0;
        if (!next(&v)) throw std::invalid_argument("missing");
        t = std::stod(v, &used);
        if (used != v.size() || t <= 0.0) throw std::invalid_argument(v);
      } catch (...) {
        std::cerr << "error: --threshold needs a positive value in us\n\n"
                  << usage();
        return 2;
      }
      options.sync_threshold_us = t;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option: " << arg << "\n\n" << usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "error: no input files\n\n" << usage();
    return 2;
  }

  std::string error;
  const auto analysis = trace::TraceAnalysis::load(files, &error, options);
  if (!analysis) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }

  if (!merged_out.empty() &&
      !analysis->write_merged_jsonl(merged_out, &error)) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }
  if (!timeline_out.empty() &&
      !analysis->write_timeline_csv(timeline_out, &error)) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }
  if (!curves_out.empty()) {
    const auto curves = analysis->recovery_curves();
    if (curves.empty()) {
      std::cerr << "warning: --curves-out: no fault marks found (no "
                   "{\"type\":\"summary\"} with recovery records in the "
                   "inputs); writing an empty table\n";
    }
    if (!trace::TraceAnalysis::write_curves_csv(curves, curves_out, &error)) {
      std::cerr << "error: " << error << '\n';
      return 1;
    }
  }

  if (!quiet) analysis->print_report(std::cout);
  return 0;
}
