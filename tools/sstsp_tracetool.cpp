// sstsp_tracetool — cross-node trace/telemetry analyzer.
//
// Merges the JSONL streams a run (or several per-node runs) produced —
// event streams (--json-out), telemetry time-series (--telemetry-out),
// flight-recorder dumps and run summaries — and reports the beacon funnel,
// the convergence timeline (first sync, error spikes, re-convergence) and
// per-fault recovery, stitched across nodes by trace_id:
//
//   $ sstsp_tracetool run.jsonl tele.jsonl
//   $ sstsp_tracetool --merged-out merged.jsonl --timeline-out t.csv
//         node0.jsonl node1.jsonl node2.jsonl swarm-tele.jsonl
//   $ sstsp_tracetool --curves-out curves.csv faulted-run.jsonl tele.jsonl
//   $ sstsp_tracetool timeline --out trace.json run.jsonl tele.jsonl
//
// The `timeline` subcommand converts the inputs to Chrome-trace-event JSON
// loadable in ui.perfetto.dev / chrome://tracing (DESIGN.md §11) — the
// post-hoc twin of the runners' live --timeline-out.
//
// Torn lines (a crashed writer's truncated tail) are counted and skipped,
// never fatal — but inputs with ZERO parseable lines are an error (exit 1):
// that is a wrong file, not a torn one.  Exit codes: 0 ok, 1 I/O error, 2
// usage.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timeline.h"
#include "trace/analyzer.h"

namespace {

const char* usage() {
  return R"(usage: sstsp_tracetool [options] FILE...
       sstsp_tracetool timeline --out TRACE.json FILE...

Analyzes JSONL streams from sstsp_sim / sstsp_swarm / sstsp_node: protocol
events, telemetry samples, flight-recorder dumps and run summaries, in any
combination and split across any number of files.

options:
  --merged-out PATH     write all inputs as one time-ordered JSONL stream
  --timeline-out PATH   write the convergence timeline as CSV
                        (t_s,node,err_us,synced; node -1 = cluster max)
  --curves-out PATH     write per-fault recovery curves as CSV (needs fault
                        marks from a {"type":"summary"} record)
  --threshold US        sync threshold for convergence/spike analysis
                        (default 25, the paper's industry bound)
  --quiet               suppress the report (writers only)
  --help                this text

timeline subcommand (performance observatory, DESIGN.md s11):
  sstsp_tracetool timeline --out TRACE.json FILE...
                        convert the inputs to Chrome-trace-event JSON —
                        protocol events as per-node instants with trace_id
                        flow arrows, cluster telemetry as counter tracks,
                        fault marks as global instants; open the result in
                        ui.perfetto.dev or chrome://tracing
  --check               re-read the written file and run the trace-event
                        schema validator over it (exit 1 on defects)
)";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sstsp;

  std::string merged_out;
  std::string timeline_out;
  std::string curves_out;
  std::string trace_out;  // `timeline` subcommand: Chrome-trace-event JSON
  bool timeline_mode = false;
  bool check_trace = false;
  bool quiet = false;
  trace::AnalyzerOptions options;
  std::vector<std::string> files;

  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "timeline") {
    timeline_mode = true;
    args.erase(args.begin());
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= args.size()) return false;
      *out = args[++i];
      return true;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return 0;
    } else if (arg == "--merged-out") {
      if (!next(&merged_out)) {
        std::cerr << "error: --merged-out needs a path\n\n" << usage();
        return 2;
      }
    } else if (arg == "--timeline-out") {
      if (!next(&timeline_out)) {
        std::cerr << "error: --timeline-out needs a path\n\n" << usage();
        return 2;
      }
    } else if (timeline_mode && arg == "--out") {
      if (!next(&trace_out)) {
        std::cerr << "error: timeline --out needs a path\n\n" << usage();
        return 2;
      }
    } else if (timeline_mode && arg == "--check") {
      check_trace = true;
    } else if (arg == "--curves-out") {
      if (!next(&curves_out)) {
        std::cerr << "error: --curves-out needs a path\n\n" << usage();
        return 2;
      }
    } else if (arg == "--threshold") {
      std::string v;
      double t = 0.0;
      try {
        std::size_t used = 0;
        if (!next(&v)) throw std::invalid_argument("missing");
        t = std::stod(v, &used);
        if (used != v.size() || t <= 0.0) throw std::invalid_argument(v);
      } catch (...) {
        std::cerr << "error: --threshold needs a positive value in us\n\n"
                  << usage();
        return 2;
      }
      options.sync_threshold_us = t;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown option: " << arg << "\n\n" << usage();
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "error: no input files\n\n" << usage();
    return 2;
  }
  if (timeline_mode && trace_out.empty()) {
    std::cerr << "error: the timeline subcommand needs --out TRACE.json\n\n"
              << usage();
    return 2;
  }

  std::string error;
  const auto analysis = trace::TraceAnalysis::load(files, &error, options);
  if (!analysis) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }

  // Torn tails are tolerated, but a fully unparseable input set means the
  // wrong files were passed (a pcap, a binary, an empty capture) — failing
  // loudly beats an empty report that reads as "all converged".
  const trace::LoadStats& stats = analysis->stats();
  if (stats.lines == 0 || stats.lines == stats.torn) {
    std::cerr << "error: no parseable JSONL lines in ";
    for (std::size_t i = 0; i < files.size(); ++i) {
      std::cerr << (i != 0 ? ", " : "") << files[i];
    }
    std::cerr << " (" << stats.lines << " line(s), " << stats.torn
              << " torn) — expected --json-out / --telemetry-out / flight "
                 "dump streams from sstsp_sim, sstsp_swarm or sstsp_node\n";
    return 1;
  }

  if (timeline_mode) {
    if (!analysis->write_timeline_trace(trace_out, &error)) {
      std::cerr << "error: " << error << '\n';
      return 1;
    }
    if (check_trace) {
      std::ifstream in(trace_out, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      std::vector<std::string> defects;
      if (!in || !obs::validate_trace_event_json(buf.str(), &defects)) {
        std::cerr << "error: " << trace_out
                  << " failed the trace-event schema check:\n";
        for (const std::string& d : defects) std::cerr << "  " << d << '\n';
        return 1;
      }
      if (!quiet) std::cout << "schema check ok: " << trace_out << '\n';
    }
    if (!quiet) {
      std::cout << "perfetto timeline written to " << trace_out
                << " (load it in ui.perfetto.dev)\n";
    }
    return 0;
  }

  if (!merged_out.empty() &&
      !analysis->write_merged_jsonl(merged_out, &error)) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }
  if (!timeline_out.empty() &&
      !analysis->write_timeline_csv(timeline_out, &error)) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }
  if (!curves_out.empty()) {
    const auto curves = analysis->recovery_curves();
    if (curves.empty()) {
      std::cerr << "warning: --curves-out: no fault marks found (no "
                   "{\"type\":\"summary\"} with recovery records in the "
                   "inputs); writing an empty table\n";
    }
    if (!trace::TraceAnalysis::write_curves_csv(curves, curves_out, &error)) {
      std::cerr << "error: " << error << '\n';
      return 1;
    }
  }

  if (!quiet) analysis->print_report(std::cout);
  return 0;
}
