#!/usr/bin/env python3
"""Compare a fresh perf_smoke run against the committed baseline.

Usage: check_perf_regression.py BASELINE.json FRESH.json [--tolerance 0.25]

Both files are BENCH_perf.json documents written by bench/perf_smoke.  For
every sample label present in the baseline, the fresh run must not regress
any tracked metric by more than the tolerance (default 25 %):

  * events_per_sec   (lower is worse)
  * deliveries_per_sec (lower is worse)
  * wall_seconds     (higher is worse)
  * peak_rss_kb      (higher is worse)

Exit status: 0 ok, 1 regression detected, 2 usage/schema error.

CI machines are noisy, so the default tolerance is deliberately loose; the
gate exists to catch order-of-magnitude mistakes (an accidental O(N^2) in
the fan-out, a debug build slipping into the lane), not 5 % drift.

--metrics and --samples narrow the comparison.  The telemetry-overhead gate
uses both: it compares two documents produced by the SAME machine in the
SAME process minutes apart (BENCH_perf.json vs BENCH_perf_telemetry.json),
so a much tighter tolerance is meaningful there:

  check_perf_regression.py BENCH_perf.json BENCH_perf_telemetry.json \\
      --tolerance 0.02 --metrics events_per_sec \\
      --samples sstsp_n2000,tsf_n2000
"""

import argparse
import json
import sys

TRACKED = (
    # (key, direction): +1 means higher-is-better, -1 means lower-is-better.
    ("events_per_sec", +1),
    ("deliveries_per_sec", +1),
    ("wall_seconds", -1),
    ("peak_rss_kb", -1),
)


def load_samples(path, tracked=TRACKED):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("bench") != "perf_smoke":
        raise ValueError(f"{path}: not a perf_smoke document")
    samples = doc.get("samples")
    if not isinstance(samples, list):
        raise ValueError(f"{path}: missing 'samples' array")
    by_label = {}
    for i, sample in enumerate(samples):
        label = sample.get("label")
        if not label:
            raise ValueError(f"{path}: samples[{i}] has no 'label'")
        for key, _ in tracked:
            if key not in sample:
                raise ValueError(
                    f"{path}: sample '{label}' is missing tracked metric "
                    f"'{key}' (stale baseline or mismatched perf_smoke "
                    f"version?)")
            try:
                float(sample[key])
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}: sample '{label}' metric '{key}' is not a "
                    f"number: {sample[key]!r}")
        by_label[label] = sample
    return by_label


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    parser.add_argument("--metrics", default=None,
                        help="comma-separated subset of tracked metrics to "
                             "compare (default: all)")
    parser.add_argument("--samples", default=None,
                        help="comma-separated sample labels to compare "
                             "(default: every baseline label)")
    args = parser.parse_args()

    tracked = TRACKED
    if args.metrics is not None:
        wanted = [m.strip() for m in args.metrics.split(",") if m.strip()]
        known = {key for key, _ in TRACKED}
        unknown = [m for m in wanted if m not in known]
        if unknown or not wanted:
            print(f"error: --metrics: unknown metric(s) "
                  f"{unknown or args.metrics!r}; tracked: "
                  f"{', '.join(sorted(known))}", file=sys.stderr)
            return 2
        tracked = [(key, d) for key, d in TRACKED if key in wanted]

    try:
        baseline = load_samples(args.baseline, tracked)
        fresh = load_samples(args.fresh, tracked)
    except (OSError, ValueError, KeyError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    # Compare the union of labels: a lane present only in the fresh run
    # (e.g. a new per-thread-count sample the committed baseline predates)
    # must surface as an explicit SKIP, never read as silently covered.
    labels = sorted(set(baseline) | set(fresh))
    if args.samples is not None:
        labels = [l.strip() for l in args.samples.split(",") if l.strip()]
        unknown = [l for l in labels
                   if l not in baseline and l not in fresh]
        if unknown or not labels:
            print(f"error: --samples: label(s) in neither document: "
                  f"{unknown or args.samples!r}", file=sys.stderr)
            return 2

    failures = []
    skipped = []
    for label in labels:
        base = baseline.get(label)
        if base is None:
            skipped.append(label)
            print(f"{label:>16s} {'(all metrics)':<20s} {'-':>12s} -> "
                  f"{'-':>12s} {'':>9s}  SKIP (label not in baseline)")
            continue
        cur = fresh.get(label)
        if cur is None:
            failures.append(f"{label}: missing from fresh run")
            continue
        for key, direction in tracked:
            b, c = float(base[key]), float(cur[key])
            if b <= 0:
                continue  # nothing meaningful to compare against
            change = (c - b) / b * direction  # negative == regression
            status = "ok"
            if change < -args.tolerance:
                status = "REGRESSION"
                failures.append(
                    f"{label}.{key}: {b:.6g} -> {c:.6g} "
                    f"({change * 100:+.1f} %)")
            print(f"{label:>16s} {key:<20s} {b:>12.6g} -> {c:>12.6g} "
                  f"{change * 100:+7.1f} %  {status}")

    if failures:
        print(f"\n{len(failures)} tracked metric(s) regressed beyond "
              f"{args.tolerance * 100:.0f} %:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nperf check ok: no tracked metric regressed beyond "
          f"{args.tolerance * 100:.0f} %")
    if skipped:
        print(f"SKIPPED (not gated — {len(skipped)} label(s) absent from "
              f"the baseline; regenerate it to cover them): "
              f"{', '.join(skipped)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
