// sstsp_node — one live SSTSP node over UDP.
//
// Runs the unmodified protocol core against real sockets, wall-clock
// paced.  Several processes started with the same --seed/--nodes and
// wired to each other (explicit peers or one multicast group) form a live
// deployment; each emits the same JSONL event stream and run JSON
// document as sstsp_sim, so the audit/trace tooling works unchanged:
//
//   # two-node deployment on one host
//   $ sstsp_node --id 0 --nodes 2 --port 47000 --peer 127.0.0.1:47001
//       --duration 10 --json-out node0.jsonl &
//   $ sstsp_node --id 1 --nodes 2 --port 47001 --peer 127.0.0.1:47000
//       --duration 10 --json-out node1.jsonl
//
//   # multicast on the loopback interface, shared timeline
//   $ EPOCH=$(date +%s)
//   $ sstsp_node --id 0 --nodes 3 --multicast 239.255.47.10:47100
//       --epoch $EPOCH --duration 30 &
//   ...
//
// --epoch anchors the node's protocol timeline at the given UNIX time, so
// processes started seconds apart still agree on beacon-period boundaries
// and µTESLA interval indices.
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "core/discipline.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "fault/transport.h"
#include "metrics/report.h"
#include "net/node.h"
#include "net/prom_exporter.h"
#include "net/reactor.h"
#include "net/telemetry_link.h"
#include "net/udp.h"
#include "obs/flight_recorder.h"
#include "obs/instruments.h"
#include "obs/invariants.h"
#include "obs/profiler.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "runner/config_file.h"
#include "runner/run_output.h"
#include "trace/lifecycle.h"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void on_signal(int) { g_interrupted = 1; }
void on_sigusr1(int) { g_dump_requested = 1; }

bool parse_double(const std::string& s, double* out) {
  try {
    std::size_t used = 0;
    *out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_int(const std::string& s, long long* out) {
  try {
    std::size_t used = 0;
    *out = std::stoll(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_endpoint(const std::string& s, std::string* host,
                    std::uint16_t* port) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return false;
  }
  long long p = 0;
  if (!parse_int(s.substr(colon + 1), &p) || p < 1 || p > 65535) return false;
  *host = s.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return true;
}

const char* usage() {
  return R"(usage: sstsp_node [options]

identity:
  --id N                this node's id in [0, nodes) (default 0)
  --nodes N             deployment size; every process must agree
                        (default 5)
  --seed S              deployment seed: trust anchors + emulated clocks;
                        every process must agree (default 1)
  --duration S          run length in seconds (default 10)

endpoint (unicast mesh):
  --bind ADDR           bind address (default 0.0.0.0)
  --port P              bind port (default 0 = ephemeral; print and wire
                        peers by hand, or use fixed ports)
  --peer HOST:PORT      a peer endpoint; repeatable

endpoint (multicast, replaces --peer):
  --multicast G:P       join group G, send/receive on port P
  --mcast-if ADDR       interface address to join on (default 127.0.0.1)
  --ttl N               multicast TTL (default 0 = same host)
  --wire-latency US     expected one-way wire latency compensated on
                        receive (default 50, a localhost UDP hop)

timeline:
  --epoch UNIX_S        anchor the protocol timeline at this UNIX time so
                        separately started processes share beacon-period
                        boundaries; default: this process's start

clock emulation:
  --max-drift PPM       emulated drift bound (default 100)
  --initial-offset US   emulated initial offset bound (default 112)
  --drift PPM           explicit drift (disables emulation)
  --offset US           explicit initial offset (disables emulation)

protocol:
  --m M, --l L, --guard US, --chain-length N
                        as in sstsp_sim (chain defaults sized to
                        epoch-elapsed + duration)
  --reference           boot directly in the reference role
  --discipline NAME     clock discipline: paper (default) | rls | holdover
  --discipline-params JSON
                        discipline overrides (same keys as the config
                        "discipline" block; see sstsp_sim --help)

faults:
  --faults PATH         fault plan (JSON; same format as sstsp_sim) —
                        packet directives apply to this node's received
                        datagrams; clock faults hit the emulated oscillator
  --faults-json TEXT    the same plan given inline as JSON text

config:
  --config PATH         load flags from a flat JSON object; flags after
                        --config override the file

output (same semantics as sstsp_sim):
  --json-out PATH, --metrics-out PATH, --trace, --trace-limit N,
  --trace-kind KIND, --profile, --monitor[=strict]

telemetry (same schema as sstsp_sim; DESIGN.md §10):
  --telemetry-out PATH  append this node's JSONL samples (source "node")
  --telemetry-udp HOST:PORT
                        also publish each sample as one UDP datagram (e.g.
                        to a sstsp_swarm collector or `nc -lu`)
  --telemetry-interval S  sampling interval in seconds (default 1)
  --flight-recorder PATH  ring of recent events + samples, dumped on new
                        audit record classes and SIGUSR1
  --flight-capacity N   flight-recorder event ring size (default 512)

performance observatory (DESIGN.md §11):
  --timeline-out PATH   write the run as Chrome-trace-event JSON loadable
                        in ui.perfetto.dev
  --sampler             phase-sampling profiler into the metrics registry
                        (dispatch-gated + SIGPROF statistical sampling)
  --sampler-interval S  sampling interval in seconds (default 0.001;
                        implies --sampler)
  --prom-textfile PATH  dump the final metrics registry in Prometheus text
                        exposition format
  --prom-port P         serve a live /metrics endpoint on 127.0.0.1:P from
                        the reactor (0 = ephemeral, printed at startup)
  --help                this text
)";
}

struct NodeCli {
  NodeCli() { node.wire_latency_us = sstsp::net::kUdpWireLatencyUs; }

  sstsp::net::NodeConfig node;
  sstsp::net::UdpConfig udp;
  sstsp::fault::FaultPlan faults;
  double duration_s = 10.0;
  double epoch_unix_s = -1.0;  ///< <0: unset
  bool chain_set = false;
  std::size_t trace_capacity = 0;
  bool collect_metrics = true;
  bool profile = false;
  bool monitor = false;
  std::string telemetry_out;
  std::string telemetry_udp_host;
  std::uint16_t telemetry_udp_port = 0;
  double telemetry_interval_s = 1.0;
  std::string flight_recorder_out;
  std::size_t flight_capacity = 512;
  bool phase_sampler = false;
  double phase_sampler_interval_s = 0.001;
  int prom_port = -1;  ///< -1 off, 0 ephemeral, > 0 fixed
  sstsp::run::OutputOptions output;
  bool help = false;
};

std::optional<NodeCli> parse_args(const std::vector<std::string>& args,
                                  std::string* error) {
  NodeCli cli;
  bool explicit_clock = false;
  bool config_loaded = false;

  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  std::vector<std::string> argv = args;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argv.size()) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;
    long long n = 0;
    double d = 0;

    if (arg == "--help" || arg == "-h") {
      cli.help = true;
      return cli;
    } else if (arg == "--id") {
      if (!next(&v) || !parse_int(v, &n) || n < 0) {
        return fail("--id needs a non-negative integer");
      }
      cli.node.id = static_cast<sstsp::mac::NodeId>(n);
    } else if (arg == "--nodes") {
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--nodes needs a positive integer");
      }
      cli.node.total_nodes = static_cast<int>(n);
    } else if (arg == "--seed") {
      if (!next(&v) || !parse_int(v, &n)) {
        return fail("--seed needs an integer");
      }
      cli.node.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--duration") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--duration needs a positive number of seconds");
      }
      cli.duration_s = d;
    } else if (arg == "--bind") {
      if (!next(&cli.udp.bind_address)) return fail("--bind needs an address");
    } else if (arg == "--port") {
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 65535) {
        return fail("--port needs a port number");
      }
      cli.udp.bind_port = static_cast<std::uint16_t>(n);
    } else if (arg == "--peer") {
      sstsp::net::UdpEndpoint peer;
      if (!next(&v) || !parse_endpoint(v, &peer.host, &peer.port)) {
        return fail("--peer needs HOST:PORT");
      }
      cli.udp.peers.push_back(peer);
    } else if (arg == "--multicast") {
      std::string host;
      std::uint16_t port = 0;
      if (!next(&v) || !parse_endpoint(v, &host, &port)) {
        return fail("--multicast needs GROUP:PORT");
      }
      cli.udp.multicast_group = host;
      cli.udp.multicast_port = port;
    } else if (arg == "--mcast-if") {
      if (!next(&cli.udp.multicast_interface)) {
        return fail("--mcast-if needs an address");
      }
    } else if (arg == "--ttl") {
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 255) {
        return fail("--ttl needs a value in [0, 255]");
      }
      cli.udp.multicast_ttl = static_cast<int>(n);
    } else if (arg == "--wire-latency") {
      if (!next(&v) || !parse_double(v, &d) || d < 0) {
        return fail("--wire-latency needs a value in us");
      }
      cli.node.wire_latency_us = d;
    } else if (arg == "--epoch") {
      if (!next(&v) || !parse_double(v, &d) || d < 0) {
        return fail("--epoch needs a UNIX time in seconds");
      }
      cli.epoch_unix_s = d;
    } else if (arg == "--max-drift") {
      if (!next(&v) || !parse_double(v, &d) || d < 0) {
        return fail("--max-drift needs a value in ppm");
      }
      cli.node.max_drift_ppm = d;
    } else if (arg == "--initial-offset") {
      if (!next(&v) || !parse_double(v, &d) || d < 0) {
        return fail("--initial-offset needs a value in us");
      }
      cli.node.initial_offset_us = d;
    } else if (arg == "--drift") {
      if (!next(&v) || !parse_double(v, &d)) {
        return fail("--drift needs a value in ppm");
      }
      cli.node.drift_ppm = d;
      explicit_clock = true;
    } else if (arg == "--offset") {
      if (!next(&v) || !parse_double(v, &d)) {
        return fail("--offset needs a value in us");
      }
      cli.node.offset_us = d;
      explicit_clock = true;
    } else if (arg == "--m") {
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--m needs a positive integer");
      }
      cli.node.sstsp.m = static_cast<int>(n);
    } else if (arg == "--l") {
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--l needs a positive integer");
      }
      cli.node.sstsp.l = static_cast<int>(n);
    } else if (arg == "--guard") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--guard needs a positive value in us");
      }
      cli.node.sstsp.guard_fine_us = d;
    } else if (arg == "--chain-length") {
      if (!next(&v) || !parse_int(v, &n) || n < 10) {
        return fail("--chain-length needs an integer >= 10");
      }
      cli.node.sstsp.chain_length = static_cast<std::size_t>(n);
      cli.chain_set = true;
    } else if (arg == "--discipline") {
      if (!next(&v)) return fail("--discipline needs a name");
      if (!sstsp::core::discipline_known(v)) {
        return fail("unknown discipline: " + v +
                    " (known: paper, rls, holdover)");
      }
      cli.node.sstsp.discipline.name = v;
    } else if (arg == "--discipline-params") {
      if (!next(&v)) return fail("--discipline-params needs a JSON object");
      const auto parsed = sstsp::obs::json::parse(v);
      if (!parsed) {
        return fail("--discipline-params is not valid JSON: " + v);
      }
      std::string dsc_error;
      if (!sstsp::core::apply_discipline_json(*parsed, &cli.node.sstsp,
                                              &dsc_error)) {
        return fail("--discipline-params: " + dsc_error);
      }
    } else if (arg == "--reference") {
      cli.node.start_as_reference = true;
    } else if (arg == "--faults") {
      if (!next(&v)) return fail("--faults needs a path");
      std::string plan_error;
      const auto plan = sstsp::fault::load_plan(v, &plan_error);
      if (!plan) return fail(plan_error);
      cli.faults = *plan;
    } else if (arg == "--faults-json") {
      if (!next(&v)) return fail("--faults-json needs JSON text");
      std::string plan_error;
      const auto plan = sstsp::fault::parse_plan_text(v, &plan_error);
      if (!plan) return fail("--faults-json: " + plan_error);
      cli.faults = *plan;
    } else if (arg == "--config") {
      if (!next(&v)) return fail("--config needs a path");
      if (config_loaded) return fail("--config may be given only once");
      config_loaded = true;
      std::string cfg_error;
      const auto cfg_args = sstsp::run::load_config_args(
          v, sstsp::run::ConfigTool::kNode, &cfg_error);
      if (!cfg_args) return fail(cfg_error);
      argv.insert(argv.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  cfg_args->begin(), cfg_args->end());
    } else if (arg == "--trace") {
      cli.output.dump_trace = true;
      cli.trace_capacity = std::max<std::size_t>(cli.trace_capacity, 1 << 18);
    } else if (arg == "--trace-limit") {
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--trace-limit needs a positive integer");
      }
      cli.output.trace_limit = static_cast<std::size_t>(n);
      cli.output.dump_trace = true;
      cli.trace_capacity = std::max<std::size_t>(cli.trace_capacity, 1 << 18);
    } else if (arg == "--trace-kind") {
      if (!next(&v)) return fail("--trace-kind needs an event kind");
      const auto kind = sstsp::trace::kind_from_string(v);
      if (!kind) return fail("unknown event kind: " + v);
      cli.output.trace_kind = *kind;
      cli.output.dump_trace = true;
      cli.trace_capacity = std::max<std::size_t>(cli.trace_capacity, 1 << 18);
    } else if (arg == "--json-out") {
      if (!next(&cli.output.json_out_path)) {
        return fail("--json-out needs a path");
      }
      cli.trace_capacity = std::max<std::size_t>(cli.trace_capacity, 1 << 12);
    } else if (arg == "--metrics-out") {
      if (!next(&cli.output.metrics_out_path)) {
        return fail("--metrics-out needs a path");
      }
    } else if (arg == "--profile") {
      cli.profile = true;
    } else if (arg == "--monitor" || arg == "--monitor=strict") {
      cli.monitor = true;
      if (arg == "--monitor=strict") cli.output.monitor_strict = true;
    } else if (arg == "--telemetry-out") {
      if (!next(&cli.telemetry_out)) {
        return fail("--telemetry-out needs a path");
      }
    } else if (arg == "--telemetry-udp") {
      if (!next(&v) || !parse_endpoint(v, &cli.telemetry_udp_host,
                                       &cli.telemetry_udp_port)) {
        return fail("--telemetry-udp needs HOST:PORT");
      }
    } else if (arg == "--telemetry-interval") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--telemetry-interval needs a positive number of seconds");
      }
      cli.telemetry_interval_s = d;
    } else if (arg == "--flight-recorder") {
      if (!next(&cli.flight_recorder_out)) {
        return fail("--flight-recorder needs a path");
      }
    } else if (arg == "--flight-capacity") {
      if (!next(&v) || !parse_int(v, &n) || n < 16) {
        return fail("--flight-capacity needs an integer >= 16");
      }
      cli.flight_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--timeline-out") {
      if (!next(&cli.output.timeline_out_path)) {
        return fail("--timeline-out needs a path");
      }
      cli.trace_capacity = std::max<std::size_t>(cli.trace_capacity, 1 << 12);
    } else if (arg == "--sampler") {
      cli.phase_sampler = true;
    } else if (arg == "--sampler-interval") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--sampler-interval needs a positive number of seconds");
      }
      cli.phase_sampler_interval_s = d;
      cli.phase_sampler = true;
    } else if (arg == "--prom-textfile") {
      if (!next(&cli.output.prom_textfile_path)) {
        return fail("--prom-textfile needs a path");
      }
    } else if (arg == "--prom-port") {
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 65535) {
        return fail("--prom-port needs a port number (0 = ephemeral)");
      }
      cli.prom_port = static_cast<int>(n);
    } else {
      return fail("unknown option: " + arg);
    }
  }

  if (cli.node.id >= static_cast<sstsp::mac::NodeId>(cli.node.total_nodes)) {
    return fail("--id must be < --nodes");
  }
  if (explicit_clock) cli.node.emulate_clock = false;
  if (cli.udp.multicast_group.empty() && cli.udp.peers.empty()) {
    return fail("need at least one --peer or a --multicast group");
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sstsp;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  auto cli = parse_args(args, &error);
  if (!cli) {
    std::cerr << "error: " << error << "\n\n" << usage();
    return 2;
  }
  if (cli->help) {
    std::cout << usage();
    return 0;
  }

  // Timeline anchor: sim time 0 is the epoch; this process enters at
  // `start_s` on that timeline (0 when no epoch was given).
  double start_s = 0.0;
  if (cli->epoch_unix_s >= 0.0) {
    const double now_unix =
        std::chrono::duration<double>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
    start_s = now_unix - cli->epoch_unix_s;
    if (start_s < 0.0) {
      std::cerr << "error: --epoch lies in the future\n";
      return 2;
    }
  }
  if (!cli->chain_set) {
    // The chain must cover every interval since the epoch, not just the
    // run: indices are absolute on the shared timeline.
    cli->node.sstsp.chain_length =
        static_cast<std::size_t>((start_s + cli->duration_s) * 10.0) + 200;
  }

  sim::Simulator sim(cli->node.seed);
  net::Reactor reactor(sim);
  auto transport = net::UdpTransport::open(reactor, cli->udp, &error);
  if (!transport) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }

  // Fault plan: decorate the transport so packet directives apply to this
  // node's received datagrams; clock faults fire against the emulated
  // oscillator on this node's timeline.  Node crash/pause directives need
  // an orchestrator that owns every process — sstsp_swarm — and are
  // ignored here.
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<fault::FaultyTransport> faulty;
  net::Transport* endpoint = transport.get();
  if (!cli->faults.empty()) {
    injector = std::make_unique<fault::FaultInjector>(
        cli->faults, sim.substream("faults", cli->faults.seed));
    faulty = std::make_unique<fault::FaultyTransport>(
        *transport, sim, *injector, cli->node.id);
    endpoint = faulty.get();
  }

  net::NodeRuntime node(sim, *endpoint, cli->node);
  node.set_wall_clock([&reactor] { return reactor.wall_sim_now(); });
  if (injector) {
    fault::FaultHooks hooks;
    hooks.clock_fault = [&node](mac::NodeId id, double step_us,
                                double drift_delta_ppm) {
      if (id == node.config().id) {
        node.station().inject_clock_fault(step_us, drift_delta_ppm);
      }
    };
    fault::schedule_fault_events(sim, cli->faults, injector.get(),
                                 std::move(hooks));
  }

  // Observability: same sharing model as run::Network, scoped to one node.
  obs::Registry registry;
  std::unique_ptr<obs::Instruments> instruments;
  std::unique_ptr<obs::Profiler> profiler;
  std::unique_ptr<obs::InvariantMonitor> monitor;
  std::unique_ptr<trace::BeaconLifecycle> lifecycle;
  std::unique_ptr<trace::EventTrace> event_trace;
  if (cli->collect_metrics) {
    instruments = std::make_unique<obs::Instruments>(registry);
    sim.set_instruments(instruments.get());
  }
  if (cli->profile) {
    profiler = std::make_unique<obs::Profiler>();
    sim.set_profiler(profiler.get());
  }
  std::unique_ptr<obs::PhaseSampler> phase_sampler;
  if (cli->phase_sampler) {
    obs::PhaseSampler::Options popts;
    if (cli->phase_sampler_interval_s > 0.0) {
      popts.interval_s = cli->phase_sampler_interval_s;
    }
    phase_sampler = std::make_unique<obs::PhaseSampler>(popts, registry);
    phase_sampler->attach_profiler(profiler.get());
    sim.set_phase_sampler(phase_sampler.get());
  }
  if (cli->monitor) {
    obs::InvariantConfig cfg;
    cfg.sstsp_checks = true;
    cfg.bp_us = cli->node.phy.beacon_period.to_us();
    cfg.m = cli->node.sstsp.m;
    cfg.l = cli->node.sstsp.l;
    cfg.t0_us = cli->node.sstsp.t0_us;
    cfg.interval_slack_us = cli->node.sstsp.interval_slack_us;
    cfg.k_min = cli->node.sstsp.k_min;
    cfg.k_max = cli->node.sstsp.k_max;
    monitor = std::make_unique<obs::InvariantMonitor>(cfg);
    lifecycle = std::make_unique<trace::BeaconLifecycle>(registry);
  }
  if (cli->trace_capacity > 0) {
    event_trace = std::make_unique<trace::EventTrace>(cli->trace_capacity);
  }
  node.set_trace(event_trace.get());
  node.set_instruments(instruments.get());
  node.set_profiler(profiler.get());
  node.set_monitor(monitor.get());
  node.set_lifecycle(lifecycle.get());

  // Telemetry + flight recorder (DESIGN.md §10).
  std::unique_ptr<obs::JsonlSink> flight_sink;
  std::unique_ptr<obs::FlightRecorder> flight;
  if (!cli->flight_recorder_out.empty()) {
    flight_sink = std::make_unique<obs::JsonlSink>();
    if (!flight_sink->open(cli->flight_recorder_out, &error)) {
      std::cerr << "error: " << error << '\n';
      return 1;
    }
    obs::FlightRecorder::Config fc;
    fc.event_capacity = cli->flight_capacity;
    flight = std::make_unique<obs::FlightRecorder>(fc, flight_sink.get());
    node.set_flight(flight.get());
    if (monitor) {
      monitor->set_on_new_record(
          [&flight](sim::SimTime when, const obs::AuditRecord& rec) {
            flight->on_audit_record(when.to_sec(), rec);
          });
    }
  }
  std::unique_ptr<obs::JsonlSink> telemetry_sink;
  if (!cli->telemetry_out.empty()) {
    telemetry_sink = std::make_unique<obs::JsonlSink>();
    if (!telemetry_sink->open(cli->telemetry_out, &error)) {
      std::cerr << "error: " << error << '\n';
      return 1;
    }
  }
  std::unique_ptr<net::TelemetryExporter> telemetry_exporter;
  if (!cli->telemetry_udp_host.empty()) {
    telemetry_exporter = net::TelemetryExporter::open(
        cli->telemetry_udp_host, cli->telemetry_udp_port, &error);
    if (!telemetry_exporter) {
      std::cerr << "error: --telemetry-udp: " << error << '\n';
      return 1;
    }
  }

  run::RunOutput output(cli->output);
  if (!output.begin(event_trace.get(), &error)) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }
  output.attach_profiler(profiler.get());

  std::unique_ptr<net::PromExporter> prom;
  if (cli->prom_port >= 0) {
    prom = std::make_unique<net::PromExporter>();
    const auto body = [&] {
      if (phase_sampler) phase_sampler->publish_live();
      std::vector<std::pair<std::string, double>> extra;
      extra.emplace_back("node_id", static_cast<double>(cli->node.id));
      extra.emplace_back("node_sim_time_seconds", sim.now().to_sec());
      extra.emplace_back("reactor_wait_seconds",
                         static_cast<double>(reactor.wait_ns()) * 1e-9);
      extra.emplace_back("reactor_work_seconds",
                         static_cast<double>(reactor.work_ns()) * 1e-9);
      return net::prometheus_body(registry.snapshot(), extra);
    };
    if (!prom->open(reactor, static_cast<std::uint16_t>(cli->prom_port), body,
                    &error)) {
      std::cerr << "error: --prom-port: " << error << '\n';
      return 1;
    }
    std::cout << "prometheus /metrics on 127.0.0.1:" << prom->port() << '\n';
  }

  std::cout << "node " << cli->node.id << "/" << cli->node.total_nodes
            << " on " << transport->describe() << ", timeline t="
            << metrics::fmt(start_s, 2) << " s, running "
            << cli->duration_s << " s ...\n";

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  reactor.set_interrupt_flag(&g_interrupted);

  // Re-read the wall clock immediately before anchoring: the start_s
  // computed at argv time is stale by however long this process spent on
  // startup (socket open, µTESLA chain precompute, trace setup), and that
  // span differs per process — anchoring with it would shift each node's
  // timeline by its own startup cost, a constant ms-scale inter-process
  // clock error no receive-side compensation can see.  The earlier value
  // still sized the key chain; headroom there covers the drift.
  if (cli->epoch_unix_s >= 0.0) {
    start_s = std::chrono::duration<double>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count() -
              cli->epoch_unix_s;
  }
  const auto start_sim = sim::SimTime::from_sec_double(start_s);
  const auto end_sim =
      start_sim + sim::SimTime::from_sec_double(cli->duration_s);
  sim.at(start_sim, [&] {
    node.start();
    if (telemetry_sink || telemetry_exporter || flight) {
      // Scheduled from the start instant so the first tick lands one
      // interval into the run, not at a stale pre-epoch time.
      obs::TelemetrySampler::Options topts;
      topts.interval_s = cli->telemetry_interval_s;
      topts.source = "node";
      topts.process_stats = true;  // wall-paced: RSS + wall clock apply
      node.start_telemetry(
          topts, end_sim, [&](const obs::TelemetrySample& sample) {
            if (telemetry_sink) {
              telemetry_sink->write_line(obs::telemetry_to_jsonl(sample));
            }
            if (telemetry_exporter) telemetry_exporter->publish(sample);
            // SIGUSR1 poll, piggybacked on the telemetry tick (the only
            // periodic event this tool owns).
            if (flight && g_dump_requested != 0) {
              g_dump_requested = 0;
              flight->dump(sim.now().to_sec(), "dump-request", nullptr);
            }
          });
    }
  });
  if (flight) std::signal(SIGUSR1, on_sigusr1);
  reactor.anchor(start_sim);

  const auto wall_start = std::chrono::steady_clock::now();
  if (phase_sampler) {
    std::string live_error;
    if (!phase_sampler->start_live(&live_error)) {
      std::cerr << "warning: live phase sampler: " << live_error << '\n';
    }
  }
  reactor.run_until(end_sim);
  if (phase_sampler) phase_sampler->stop_live();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (g_interrupted != 0) {
    std::cout << "(interrupted — reporting the partial run)\n";
  }

  run::RunResult result;
  result.channel = node.channel().stats();
  result.honest = node.station().protocol().stats();
  result.net = node.net_stats();
  registry.gauge("reactor.wait_seconds")
      .set(static_cast<double>(reactor.wait_ns()) * 1e-9);
  registry.gauge("reactor.work_seconds")
      .set(static_cast<double>(reactor.work_ns()) * 1e-9);
  result.metrics = registry.snapshot();
  result.events_processed = sim.events_processed();
  result.wall_seconds = wall_seconds;
  if (profiler) {
    result.profile = profiler->snapshot(result.events_processed, wall_seconds);
  }
  if (monitor) result.audit = monitor->report();
  // No pairwise series from a single vantage point: sync_latency_s and the
  // steady stats stay null in the report.

  const auto& protocol = node.station().protocol();
  std::cout << "\nrole: "
            << (protocol.is_reference()      ? "reference"
                : protocol.is_synchronized() ? "synchronized"
                                             : "unsynchronized")
            << ", network time "
            << metrics::fmt(protocol.network_time_us(sim.now()), 1)
            << " us\n";

  run::Scenario scenario;
  scenario.protocol = run::ProtocolKind::kSstsp;
  scenario.num_nodes = cli->node.total_nodes;
  scenario.duration_s = cli->duration_s;
  scenario.seed = cli->node.seed;
  scenario.sstsp = cli->node.sstsp;
  scenario.phy = cli->node.phy;
  scenario.max_drift_ppm = cli->node.max_drift_ppm;
  scenario.initial_offset_us = cli->node.initial_offset_us;
  scenario.trace_capacity = cli->trace_capacity;
  scenario.collect_metrics = cli->collect_metrics;
  scenario.profile = cli->profile;
  scenario.monitor = cli->monitor;
  scenario.phase_sampler = cli->phase_sampler;
  scenario.phase_sampler_interval_s = cli->phase_sampler_interval_s;

  return output.finish(std::cout, std::cerr, scenario, result,
                       event_trace.get());
}
