// sstsp_swarm — in-process live-stack emulation harness.
//
// Spawns N SSTSP nodes in one process, each with its own emulated
// oscillator and its own transport endpoint, and lets them synchronize
// over a real wire instead of the simulated 802.11 channel:
//
//   $ sstsp_swarm --nodes 5 --duration 10            # loopback UDP, wall
//   $ sstsp_swarm --transport loopback --seed 7      # virtual time, fast,
//                                                    # bit-reproducible
//   $ sstsp_swarm --nodes 5 --duration 10 --monitor=strict
//       --json-out swarm.jsonl --metrics-out swarm.json
//
// Output is byte-compatible with sstsp_sim (same JSONL event stream, same
// run JSON document + a "net" wire-accounting section), so the audit and
// trace tooling consumes live runs unchanged.
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "core/discipline.h"
#include "fault/plan.h"
#include "metrics/report.h"
#include "net/swarm.h"
#include "runner/config_file.h"
#include "runner/run_output.h"

namespace {

volatile std::sig_atomic_t g_interrupted = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void on_signal(int) { g_interrupted = 1; }
void on_sigusr1(int) { g_dump_requested = 1; }

bool parse_double(const std::string& s, double* out) {
  try {
    std::size_t used = 0;
    *out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_int(const std::string& s, long long* out) {
  try {
    std::size_t used = 0;
    *out = std::stoll(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string item;
  for (const char c : s) {
    if (c == sep) {
      parts.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  parts.push_back(item);
  return parts;
}

const char* usage() {
  return R"(usage: sstsp_swarm [options]

deployment:
  --nodes N             node count (default 5)
  --duration S          run length in seconds (default 10)
  --seed S              deployment seed: trust anchors, emulated clocks,
                        loopback latency draws
  --transport T         udp (real sockets on 127.0.0.1, wall-clock paced)
                        or loopback (in-process hub, virtual time,
                        bit-reproducible); default udp
  --bind ADDR           UDP bind address (default 127.0.0.1)
  --base-port P         UDP: node i binds P+i (default 0 = ephemeral)
  --latency MIN,MAX     loopback one-way latency bounds in us (default
                        35,45)
  --drop P              loopback per-delivery drop probability (default 0)
  --wire-latency US     expected one-way wire latency compensated on
                        receive (default: loopback model midpoint, or 10
                        for UDP)
  --diverge-threshold US  monitor's Lemma-1 divergence bound (default: 50,
                        or 150 for wall-paced UDP — see DESIGN.md "Live
                        stack" on emulation noise)

protocol:
  --m M                 SSTSP aggressiveness (default 3)
  --l L                 missed-beacon tolerance (default 1)
  --guard US            base guard time in us
  --chain-length N      µTESLA chain length (default sized to duration)
  --max-drift PPM       emulated oscillator drift bound (default 100)
  --initial-offset US   emulated initial offset bound (default 112)
  --preestablished      node 0 boots as the reference
  --sample-period S     max-offset sampling cadence (default 0.1)
  --discipline NAME     clock discipline: paper (default) | rls | holdover
  --discipline-params JSON
                        discipline overrides (same keys as the config
                        "discipline" block; see sstsp_sim --help)

faults:
  --faults PATH         load a fault plan (JSON; same format as sstsp_sim):
                        packet faults apply per arriving datagram, node
                        crash/pause stop/start nodes, clock faults step the
                        emulated oscillators
  --faults-json TEXT    the same plan given inline as JSON text

config:
  --config PATH         load flags from a flat JSON object ({"nodes": 5});
                        flags after --config override the file

output (same semantics as sstsp_sim):
  --csv PATH, --chart, --trace, --trace-limit N, --trace-kind KIND,
  --json-out PATH, --metrics-out PATH, --profile, --monitor[=strict]

telemetry (same schema as sstsp_sim; DESIGN.md §10):
  --telemetry-out PATH  aggregate JSONL stream: cluster samples
                        (source "swarm") + per-node samples published by
                        every node — over a datagram socket on the reactor
                        in UDP mode, in-process on loopback
  --telemetry-interval S  sampling interval in seconds (default 1)
  --telemetry-per-node 0|1  per-node error arrays on cluster samples
                        (default auto: on for <= 64 nodes)
  --flight-recorder PATH  ring of recent events + samples, dumped on new
                        audit record classes, unplanned node failures and
                        SIGUSR1
  --flight-capacity N   flight-recorder event ring size (default 512)
  --watch               live status line on stderr, one refresh per
                        telemetry interval (wall-paced runs)

performance observatory (DESIGN.md §11):
  --timeline-out PATH   write the run as Chrome-trace-event JSON loadable
                        in ui.perfetto.dev (protocol events per node,
                        beacon flow arrows, profiler spans with --profile)
  --sampler             phase-sampling profiler into the metrics registry;
                        wall-paced runs add a SIGPROF statistical sampler
  --sampler-interval S  sampling interval in seconds (default 0.001;
                        implies --sampler)
  --prom-textfile PATH  dump the final metrics registry in Prometheus text
                        exposition format
  --prom-port P         serve a live /metrics endpoint on 127.0.0.1:P from
                        the reactor (udp transport only; 0 = ephemeral,
                        the chosen port is printed at startup)

checks:
  --expect-sync         exit 4 unless a reference holds the role and the
                        final max pairwise adjusted-clock offset is under
                        the guard threshold (CI smoke)
  --help                this text
)";
}

struct SwarmCli {
  sstsp::net::SwarmConfig swarm;
  sstsp::run::OutputOptions output;
  bool expect_sync = false;
  bool help = false;
};

std::optional<SwarmCli> parse_args(const std::vector<std::string>& args,
                                   std::string* error) {
  using sstsp::net::TransportKind;
  SwarmCli cli;
  bool chain_set = false;
  bool config_loaded = false;

  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  std::vector<std::string> argv = args;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argv.size()) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;
    long long n = 0;
    double d = 0;

    if (arg == "--help" || arg == "-h") {
      cli.help = true;
      return cli;
    } else if (arg == "--nodes") {
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--nodes needs a positive integer");
      }
      cli.swarm.nodes = static_cast<int>(n);
    } else if (arg == "--duration") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--duration needs a positive number of seconds");
      }
      cli.swarm.duration_s = d;
    } else if (arg == "--seed") {
      if (!next(&v) || !parse_int(v, &n)) {
        return fail("--seed needs an integer");
      }
      cli.swarm.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--transport") {
      if (!next(&v)) return fail("--transport needs udp | loopback");
      if (v == "udp") {
        cli.swarm.transport = TransportKind::kUdp;
      } else if (v == "loopback") {
        cli.swarm.transport = TransportKind::kLoopback;
      } else {
        return fail("unknown transport: " + v);
      }
    } else if (arg == "--bind") {
      if (!next(&cli.swarm.bind_address)) return fail("--bind needs an address");
    } else if (arg == "--base-port") {
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 65535) {
        return fail("--base-port needs a port number");
      }
      cli.swarm.base_port = static_cast<std::uint16_t>(n);
    } else if (arg == "--latency") {
      if (!next(&v)) return fail("--latency needs min,max in us");
      const auto parts = split(v, ',');
      double lo = 0;
      double hi = 0;
      if (parts.size() != 2 || !parse_double(parts[0], &lo) ||
          !parse_double(parts[1], &hi) || lo < 0 || hi < lo) {
        return fail("--latency needs min,max in us with max >= min >= 0");
      }
      cli.swarm.loopback.latency_min = sstsp::sim::SimTime::from_us_double(lo);
      cli.swarm.loopback.latency_max = sstsp::sim::SimTime::from_us_double(hi);
    } else if (arg == "--wire-latency") {
      if (!next(&v) || !parse_double(v, &d) || d < 0) {
        return fail("--wire-latency needs a value in us");
      }
      cli.swarm.wire_latency_us = d;
    } else if (arg == "--diverge-threshold") {
      if (!next(&v) || !parse_double(v, &d) || d < 0) {
        return fail("--diverge-threshold needs a value in us");
      }
      cli.swarm.monitor_diverge_us = d;
    } else if (arg == "--drop") {
      if (!next(&v) || !parse_double(v, &d) || d < 0 || d >= 1) {
        return fail("--drop needs a probability in [0, 1)");
      }
      cli.swarm.loopback.drop_probability = d;
    } else if (arg == "--m") {
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--m needs a positive integer");
      }
      cli.swarm.sstsp.m = static_cast<int>(n);
    } else if (arg == "--l") {
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--l needs a positive integer");
      }
      cli.swarm.sstsp.l = static_cast<int>(n);
    } else if (arg == "--guard") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--guard needs a positive value in us");
      }
      cli.swarm.sstsp.guard_fine_us = d;
    } else if (arg == "--chain-length") {
      if (!next(&v) || !parse_int(v, &n) || n < 10) {
        return fail("--chain-length needs an integer >= 10");
      }
      cli.swarm.sstsp.chain_length = static_cast<std::size_t>(n);
      chain_set = true;
    } else if (arg == "--discipline") {
      if (!next(&v)) return fail("--discipline needs a name");
      if (!sstsp::core::discipline_known(v)) {
        return fail("unknown discipline: " + v +
                    " (known: paper, rls, holdover)");
      }
      cli.swarm.sstsp.discipline.name = v;
    } else if (arg == "--discipline-params") {
      if (!next(&v)) return fail("--discipline-params needs a JSON object");
      const auto parsed = sstsp::obs::json::parse(v);
      if (!parsed) {
        return fail("--discipline-params is not valid JSON: " + v);
      }
      std::string dsc_error;
      if (!sstsp::core::apply_discipline_json(*parsed, &cli.swarm.sstsp,
                                              &dsc_error)) {
        return fail("--discipline-params: " + dsc_error);
      }
    } else if (arg == "--max-drift") {
      if (!next(&v) || !parse_double(v, &d) || d < 0) {
        return fail("--max-drift needs a value in ppm");
      }
      cli.swarm.max_drift_ppm = d;
    } else if (arg == "--initial-offset") {
      if (!next(&v) || !parse_double(v, &d) || d < 0) {
        return fail("--initial-offset needs a value in us");
      }
      cli.swarm.initial_offset_us = d;
    } else if (arg == "--preestablished") {
      cli.swarm.preestablished_reference = true;
    } else if (arg == "--sample-period") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--sample-period needs a positive number of seconds");
      }
      cli.swarm.sample_period_s = d;
    } else if (arg == "--faults") {
      if (!next(&v)) return fail("--faults needs a path");
      std::string plan_error;
      const auto plan = sstsp::fault::load_plan(v, &plan_error);
      if (!plan) return fail(plan_error);
      cli.swarm.faults = *plan;
    } else if (arg == "--faults-json") {
      if (!next(&v)) return fail("--faults-json needs JSON text");
      std::string plan_error;
      const auto plan = sstsp::fault::parse_plan_text(v, &plan_error);
      if (!plan) return fail("--faults-json: " + plan_error);
      cli.swarm.faults = *plan;
    } else if (arg == "--config") {
      if (!next(&v)) return fail("--config needs a path");
      if (config_loaded) return fail("--config may be given only once");
      config_loaded = true;
      std::string cfg_error;
      const auto cfg_args = sstsp::run::load_config_args(
          v, sstsp::run::ConfigTool::kSwarm, &cfg_error);
      if (!cfg_args) return fail(cfg_error);
      argv.insert(argv.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  cfg_args->begin(), cfg_args->end());
    } else if (arg == "--csv") {
      if (!next(&cli.output.csv_path)) return fail("--csv needs a path");
    } else if (arg == "--chart") {
      cli.output.ascii_chart = true;
    } else if (arg == "--trace") {
      cli.output.dump_trace = true;
      cli.swarm.trace_capacity =
          std::max<std::size_t>(cli.swarm.trace_capacity, 1 << 18);
    } else if (arg == "--trace-limit") {
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--trace-limit needs a positive integer");
      }
      cli.output.trace_limit = static_cast<std::size_t>(n);
      cli.output.dump_trace = true;
      cli.swarm.trace_capacity =
          std::max<std::size_t>(cli.swarm.trace_capacity, 1 << 18);
    } else if (arg == "--trace-kind") {
      if (!next(&v)) return fail("--trace-kind needs an event kind");
      const auto kind = sstsp::trace::kind_from_string(v);
      if (!kind) return fail("unknown event kind: " + v);
      cli.output.trace_kind = *kind;
      cli.output.dump_trace = true;
      cli.swarm.trace_capacity =
          std::max<std::size_t>(cli.swarm.trace_capacity, 1 << 18);
    } else if (arg == "--json-out") {
      if (!next(&cli.output.json_out_path)) {
        return fail("--json-out needs a path");
      }
      cli.swarm.trace_capacity =
          std::max<std::size_t>(cli.swarm.trace_capacity, 1 << 12);
    } else if (arg == "--metrics-out") {
      if (!next(&cli.output.metrics_out_path)) {
        return fail("--metrics-out needs a path");
      }
    } else if (arg == "--profile") {
      cli.swarm.profile = true;
    } else if (arg == "--monitor" || arg == "--monitor=strict") {
      cli.swarm.monitor = true;
      if (arg == "--monitor=strict") cli.output.monitor_strict = true;
    } else if (arg == "--telemetry-out") {
      if (!next(&cli.swarm.telemetry_out)) {
        return fail("--telemetry-out needs a path");
      }
    } else if (arg == "--telemetry-interval") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--telemetry-interval needs a positive number of seconds");
      }
      cli.swarm.telemetry_interval_s = d;
    } else if (arg == "--telemetry-per-node") {
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 1) {
        return fail("--telemetry-per-node needs 0 or 1");
      }
      cli.swarm.telemetry_per_node = static_cast<int>(n);
    } else if (arg == "--flight-recorder") {
      if (!next(&cli.swarm.flight_recorder_out)) {
        return fail("--flight-recorder needs a path");
      }
    } else if (arg == "--flight-capacity") {
      if (!next(&v) || !parse_int(v, &n) || n < 16) {
        return fail("--flight-capacity needs an integer >= 16");
      }
      cli.swarm.flight_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--watch") {
      cli.swarm.watch = true;
    } else if (arg == "--timeline-out") {
      if (!next(&cli.output.timeline_out_path)) {
        return fail("--timeline-out needs a path");
      }
      cli.swarm.trace_capacity =
          std::max<std::size_t>(cli.swarm.trace_capacity, 1 << 12);
    } else if (arg == "--sampler") {
      cli.swarm.phase_sampler = true;
    } else if (arg == "--sampler-interval") {
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--sampler-interval needs a positive number of seconds");
      }
      cli.swarm.phase_sampler_interval_s = d;
      cli.swarm.phase_sampler = true;
    } else if (arg == "--prom-textfile") {
      if (!next(&cli.output.prom_textfile_path)) {
        return fail("--prom-textfile needs a path");
      }
    } else if (arg == "--prom-port") {
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 65535) {
        return fail("--prom-port needs a port number (0 = ephemeral)");
      }
      cli.swarm.prom_port = static_cast<int>(n);
    } else if (arg == "--expect-sync") {
      cli.expect_sync = true;
    } else {
      return fail("unknown option: " + arg);
    }
  }

  if (!chain_set) {
    cli.swarm.sstsp.chain_length =
        static_cast<std::size_t>(cli.swarm.duration_s * 10.0) + 200;
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sstsp;

  std::vector<std::string> args(argv + 1, argv + argc);
  std::string error;
  const auto cli = parse_args(args, &error);
  if (!cli) {
    std::cerr << "error: " << error << "\n\n" << usage();
    return 2;
  }
  if (cli->help) {
    std::cout << usage();
    return 0;
  }

  auto swarm = net::Swarm::create(cli->swarm, &error);
  if (!swarm) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }

  const bool wall_paced =
      cli->swarm.transport == net::TransportKind::kUdp;
  std::cout << "swarm: " << cli->swarm.nodes << " nodes over "
            << net::transport_kind_name(cli->swarm.transport) << ", "
            << cli->swarm.duration_s << " s ("
            << (wall_paced ? "wall-clock paced" : "virtual time")
            << "), seed " << cli->swarm.seed << " ...\n";
  if (wall_paced) {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    swarm->set_interrupt_flag(&g_interrupted);
  }
  if (!cli->swarm.flight_recorder_out.empty()) {
    std::signal(SIGUSR1, on_sigusr1);
    swarm->set_dump_request_flag(&g_dump_requested);
  }

  run::RunOutput output(cli->output);
  if (!output.begin(swarm->trace(), &error)) {
    std::cerr << "error: " << error << '\n';
    return 1;
  }
  output.attach_profiler(swarm->profiler());
  if (swarm->prom_exporter() != nullptr) {
    std::cout << "prometheus /metrics on 127.0.0.1:"
              << swarm->prom_exporter()->port() << '\n';
  }

  swarm->run();
  if (g_interrupted != 0) {
    std::cout << "(interrupted — reporting the partial run)\n";
  }

  const run::RunResult result = swarm->collect();
  const run::Scenario scenario = swarm->reporting_scenario();

  const auto reference = swarm->current_reference();
  const auto final_diff = swarm->instant_max_diff_us();
  std::cout << "\nreference: "
            << (reference ? "node " + std::to_string(*reference)
                          : std::string("none"))
            << "\nfinal max pairwise offset: "
            << (final_diff ? metrics::fmt(*final_diff, 2) + " us"
                           : std::string("- (no synchronized nodes)"))
            << '\n';

  const int code = output.finish(std::cout, std::cerr, scenario, result,
                                 swarm->trace());

  if (!swarm->failed_nodes().empty()) {
    std::cerr << "error: node(s)";
    for (const auto id : swarm->failed_nodes()) std::cerr << ' ' << id;
    std::cerr << " died or stayed silent with no planned fault "
                 "(see the node-failure audit records)\n";
    return 5;
  }
  if (code != 0) return code;

  if (cli->expect_sync) {
    const double guard = cli->swarm.sstsp.guard_fine_us;
    if (!reference || !final_diff || *final_diff >= guard) {
      std::cerr << "error: --expect-sync: "
                << (!reference ? "no reference holds the role"
                    : !final_diff
                        ? "no synchronized nodes"
                        : "final max offset " + metrics::fmt(*final_diff, 2) +
                              " us >= guard " + metrics::fmt(guard, 2) +
                              " us")
                << '\n';
      return 4;
    }
    std::cout << "expect-sync: ok (offset under the " << guard
              << " us guard)\n";
  }
  return 0;
}
