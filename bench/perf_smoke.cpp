// PERF — simulator-core throughput smoke test (regression harness).
//
// Not a paper artifact: this bench pins a small matrix of honest scenarios
// (SSTSP and TSF at n = 100 / 500 / 2000, 60 simulated seconds, fixed seed)
// and reports wall time, sim-events/sec, deliveries/sec and peak RSS for
// each.  The committed BENCH_perf.json at the repository root is the
// baseline; the CI release lane re-runs this binary and fails if any
// tracked metric regresses by more than 25 % (tools/check_perf_regression.py).
//
// Scenarios run with metrics/profiling/monitoring off so the numbers track
// the bare hot path (channel fan-out, event queue, crypto verify); run them
// sequentially so samples never contend for cores.
//
// With SSTSP_PERF_TELEMETRY set in the environment, a second pass measures
// the streaming-telemetry overhead budget (DESIGN.md §10) at n=2000: it
// alternates control and telemetry-enabled runs of the same pinned scenario
// and keeps the best of five of each (noise is one-sided — runs only ever
// get slower), writing BENCH_perf_telemetry_base.json (controls) and
// BENCH_perf_telemetry.json (telemetry on).  Pass-2 samples measure process
// CPU seconds, not wall seconds, so co-tenant jitter on a shared CI runner
// cannot masquerade as overhead.  CI compares the two fresh same-machine
// documents and fails when telemetry costs more than 2 % of events per CPU
// second.  The committed-baseline comparison above is deliberately not
// reused here: a 2 % question needs paired fresh runs, not a months-old
// number from different hardware.
#include <sys/resource.h>

#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "runner/experiment.h"

namespace {

long peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // KiB on Linux
}

// Process CPU seconds (user + system).  The telemetry-overhead pass works
// in CPU time, not wall time: a 2 % budget is invisible under the wall
// jitter a co-tenanted CI runner adds, while CPU seconds only move when
// the workload itself does.
double process_cpu_seconds() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  const auto sec = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return sec(usage.ru_utime) + sec(usage.ru_stime);
}

}  // namespace

int main() {
  using namespace sstsp;
  bench::banner("PERF", "Simulator-core throughput smoke",
                "n/a (engineering regression harness, not a paper figure)");

  struct Point {
    run::ProtocolKind protocol;
    int nodes;
  };
  const std::vector<Point> points{
      {run::ProtocolKind::kSstsp, 100},  {run::ProtocolKind::kSstsp, 500},
      {run::ProtocolKind::kSstsp, 2000}, {run::ProtocolKind::kTsf, 100},
      {run::ProtocolKind::kTsf, 500},    {run::ProtocolKind::kTsf, 2000},
  };
  const double duration_s = 60.0;

  std::vector<bench::PerfSample> samples;
  for (const Point& p : points) {
    run::Scenario s;
    s.protocol = p.protocol;
    s.num_nodes = p.nodes;
    s.duration_s = duration_s;
    s.seed = 2006;
    s.sstsp.chain_length = 2200;
    s.collect_metrics = false;  // bare hot path: no instruments/profiler
    const auto r = run::run_scenario(s);

    bench::PerfSample sample;
    sample.label = std::string(run::protocol_name(p.protocol)) + "_n" +
                   std::to_string(p.nodes);
    sample.protocol = run::protocol_name(p.protocol);
    sample.nodes = p.nodes;
    sample.sim_seconds = duration_s;
    sample.wall_seconds = r.wall_seconds;
    sample.events = r.events_processed;
    sample.deliveries = r.channel.deliveries;
    sample.peak_rss_kb = peak_rss_kb();
    samples.push_back(sample);
    std::cout << sample.label << ": " << metrics::fmt(r.wall_seconds, 3)
              << " s wall\n";
  }

  metrics::TextTable table({"scenario", "wall (s)", "events/s", "deliv/s",
                            "events", "deliveries", "peak RSS (MB)"});
  for (const auto& s : samples) {
    table.add_row({s.label, metrics::fmt(s.wall_seconds, 3),
                   metrics::fmt(s.events_per_second(), 0),
                   metrics::fmt(s.deliveries_per_second(), 0),
                   std::to_string(s.events), std::to_string(s.deliveries),
                   metrics::fmt(static_cast<double>(s.peak_rss_kb) / 1024.0,
                                1)});
  }
  table.print(std::cout);
  std::cout << "(peak RSS is the process high-water mark at sample time, so "
               "later rows include earlier runs'\n memory; per-scenario "
               "deltas are indicative only)\n";

  bench::write_perf_json(bench::out_dir() + "/BENCH_perf.json", samples);

  if (std::getenv("SSTSP_PERF_TELEMETRY") != nullptr) {
    std::cout << "\ntelemetry overhead pass (SSTSP_PERF_TELEMETRY set):\n";
    std::vector<bench::PerfSample> control_samples;
    std::vector<bench::PerfSample> tele_samples;
    for (const Point& p : points) {
      if (p.nodes != 2000) continue;  // overhead only matters at scale
      const std::string label = std::string(run::protocol_name(p.protocol)) +
                                "_n" + std::to_string(p.nodes);
      run::Scenario base;
      base.protocol = p.protocol;
      base.num_nodes = p.nodes;
      base.duration_s = duration_s;
      base.seed = 2006;
      base.sstsp.chain_length = 2200;
      base.collect_metrics = false;

      run::Scenario tele = base;
      tele.telemetry_interval_s = 1.0;
      tele.telemetry_per_node = 0;  // cluster gauges only, like a real fleet
      tele.telemetry_out =
          bench::out_dir() + "/perf_telemetry_" + label + ".jsonl";

      bench::PerfSample best_control;
      bench::PerfSample best_tele;
      for (int round = 0; round < 5; ++round) {
        for (const bool with_telemetry : {false, true}) {
          const double cpu_before = process_cpu_seconds();
          const auto r = run::run_scenario(with_telemetry ? tele : base);
          const double cpu_s = process_cpu_seconds() - cpu_before;
          bench::PerfSample sample;
          sample.label = label;
          sample.protocol = run::protocol_name(p.protocol);
          sample.nodes = p.nodes;
          sample.sim_seconds = duration_s;
          // CPU seconds, deliberately — see process_cpu_seconds().  The
          // derived events_per_sec is events per CPU second here.
          sample.wall_seconds = cpu_s;
          sample.events = r.events_processed;
          sample.deliveries = r.channel.deliveries;
          sample.peak_rss_kb = peak_rss_kb();  // process-wide high-water
          bench::PerfSample& best =
              with_telemetry ? best_tele : best_control;
          if (best.label.empty() || sample.wall_seconds < best.wall_seconds) {
            best = sample;
          }
        }
      }
      control_samples.push_back(best_control);
      tele_samples.push_back(best_tele);
      std::cout << label << ": control " << metrics::fmt(
                       best_control.wall_seconds, 3)
                << " s vs +telemetry "
                << metrics::fmt(best_tele.wall_seconds, 3)
                << " s CPU (best of 5 each)\n";
    }
    bench::write_perf_json(
        bench::out_dir() + "/BENCH_perf_telemetry_base.json",
        control_samples);
    bench::write_perf_json(bench::out_dir() + "/BENCH_perf_telemetry.json",
                           tele_samples);
  }
  return 0;
}
