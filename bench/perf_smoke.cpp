// PERF — simulator-core throughput smoke test (regression harness).
//
// Not a paper artifact: this bench pins a small matrix of honest scenarios
// (SSTSP and TSF at n = 100 / 500 / 2000, 60 simulated seconds, fixed seed)
// and reports wall time, sim-events/sec, deliveries/sec and peak RSS for
// each.  The committed BENCH_perf.json at the repository root is the
// baseline; the CI release lane re-runs this binary and fails if any
// tracked metric regresses by more than 25 % (tools/check_perf_regression.py).
//
// Scenarios run with metrics/profiling/monitoring off so the numbers track
// the bare hot path (channel fan-out, event queue, crypto verify); run them
// sequentially so samples never contend for cores.
#include <sys/resource.h>

#include <vector>

#include "bench_common.h"
#include "runner/experiment.h"

namespace {

long peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // KiB on Linux
}

}  // namespace

int main() {
  using namespace sstsp;
  bench::banner("PERF", "Simulator-core throughput smoke",
                "n/a (engineering regression harness, not a paper figure)");

  struct Point {
    run::ProtocolKind protocol;
    int nodes;
  };
  const std::vector<Point> points{
      {run::ProtocolKind::kSstsp, 100},  {run::ProtocolKind::kSstsp, 500},
      {run::ProtocolKind::kSstsp, 2000}, {run::ProtocolKind::kTsf, 100},
      {run::ProtocolKind::kTsf, 500},    {run::ProtocolKind::kTsf, 2000},
  };
  const double duration_s = 60.0;

  std::vector<bench::PerfSample> samples;
  for (const Point& p : points) {
    run::Scenario s;
    s.protocol = p.protocol;
    s.num_nodes = p.nodes;
    s.duration_s = duration_s;
    s.seed = 2006;
    s.sstsp.chain_length = 2200;
    s.collect_metrics = false;  // bare hot path: no instruments/profiler
    const auto r = run::run_scenario(s);

    bench::PerfSample sample;
    sample.label = std::string(run::protocol_name(p.protocol)) + "_n" +
                   std::to_string(p.nodes);
    sample.protocol = run::protocol_name(p.protocol);
    sample.nodes = p.nodes;
    sample.sim_seconds = duration_s;
    sample.wall_seconds = r.wall_seconds;
    sample.events = r.events_processed;
    sample.deliveries = r.channel.deliveries;
    sample.peak_rss_kb = peak_rss_kb();
    samples.push_back(sample);
    std::cout << sample.label << ": " << metrics::fmt(r.wall_seconds, 3)
              << " s wall\n";
  }

  metrics::TextTable table({"scenario", "wall (s)", "events/s", "deliv/s",
                            "events", "deliveries", "peak RSS (MB)"});
  for (const auto& s : samples) {
    table.add_row({s.label, metrics::fmt(s.wall_seconds, 3),
                   metrics::fmt(s.events_per_second(), 0),
                   metrics::fmt(s.deliveries_per_second(), 0),
                   std::to_string(s.events), std::to_string(s.deliveries),
                   metrics::fmt(static_cast<double>(s.peak_rss_kb) / 1024.0,
                                1)});
  }
  table.print(std::cout);
  std::cout << "(peak RSS is the process high-water mark at sample time, so "
               "later rows include earlier runs'\n memory; per-scenario "
               "deltas are indicative only)\n";

  bench::write_perf_json(bench::out_dir() + "/BENCH_perf.json", samples);
  return 0;
}
