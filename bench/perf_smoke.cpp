// PERF — simulator-core throughput smoke test (regression harness).
//
// Not a paper artifact: this bench pins a small matrix of honest scenarios
// (SSTSP and TSF at n = 100 / 500 / 2000, 60 simulated seconds, fixed seed)
// plus sharded-kernel lanes (SSTSP at n = 100k and n = 1M, spatial
// deployments on the windowed parallel kernel, single-thread and multicore)
// and reports wall time, sim-events/sec, deliveries/sec and peak RSS for
// each.  The committed BENCH_perf.json at the repository root is the
// baseline; the CI release lane re-runs this binary and fails if any
// tracked metric regresses by more than 25 % (tools/check_perf_regression.py);
// lanes the baseline predates are reported as SKIP, not silently passed.
//
// Scenarios run with metrics/profiling/monitoring off so the numbers track
// the bare hot path (channel fan-out, event queue, crypto verify); run them
// sequentially so samples never contend for cores.
//
// With SSTSP_PERF_TELEMETRY set in the environment, a second pass measures
// the streaming-telemetry overhead budget (DESIGN.md §10) at n=2000: it
// alternates control and telemetry-enabled runs of the same pinned scenario
// and keeps the best of five of each (noise is one-sided — runs only ever
// get slower), writing BENCH_perf_telemetry_base.json (controls) and
// BENCH_perf_telemetry.json (telemetry on).  Pass-2 samples measure process
// CPU seconds, not wall seconds, so co-tenant jitter on a shared CI runner
// cannot masquerade as overhead.  CI compares the two fresh same-machine
// documents and fails when telemetry costs more than 2 % of events per CPU
// second.  The committed-baseline comparison above is deliberately not
// reused here: a 2 % question needs paired fresh runs, not a months-old
// number from different hardware.
//
// SSTSP_PERF_SAMPLER works the same way for the phase-sampling profiler
// (DESIGN.md §11): paired control vs --sampler runs at n=2000, best-of-five
// CPU seconds each, written to BENCH_perf_sampler_base.json and
// BENCH_perf_sampler.json; CI gates the sampler's cost at the same 2 %.
//
// SSTSP_PERF_DISCIPLINE likewise for the clock-discipline API (DESIGN.md
// §14): paired default (paper) vs --discipline rls runs — the deepest
// non-default estimator path — written to BENCH_perf_discipline_base.json
// and BENCH_perf_discipline.json.  RLS runs a 3x3 covariance update plus a
// Newton target solve per received beacon where the paper solver does a
// two-point quotient, so its budget is 15 % (measured ~11 % CPU at
// n=2000), not the passive-instrument 2 %.  The *default* path's refactor
// cost is the 2 % question, and it is pinned structurally instead: seeded
// output is byte-identical to the pre-API protocol (golden test) and the
// main BENCH_perf.json lanes ride the committed-baseline comparison.
#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "runner/experiment.h"

namespace {

long peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // KiB on Linux
}

// Resets the kernel's RSS high-water mark so the next vm_hwm_kb() read is
// per-scenario, not the process-lifetime maximum getrusage() reports.
// Writing "5" to /proc/self/clear_refs is Linux-specific and can be absent
// (kernel without CONFIG_PROC_PAGE_MONITOR, hardened container); callers
// fall back to the monotonic getrusage() number when this returns false.
bool reset_rss_peak() {
  std::ofstream f("/proc/self/clear_refs");
  if (!f.is_open()) return false;
  f << "5";
  f.flush();
  return f.good();
}

// Per-scenario peak RSS: VmHWM from /proc/self/status, valid since the last
// successful reset_rss_peak().
long vm_hwm_kb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

// Process CPU seconds (user + system).  The telemetry-overhead pass works
// in CPU time, not wall time: a 2 % budget is invisible under the wall
// jitter a co-tenanted CI runner adds, while CPU seconds only move when
// the workload itself does.
double process_cpu_seconds() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  const auto sec = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return sec(usage.ru_utime) + sec(usage.ru_stime);
}

}  // namespace

int main() {
  using namespace sstsp;
  bench::banner("PERF", "Simulator-core throughput smoke",
                "n/a (engineering regression harness, not a paper figure)");

  struct Point {
    run::ProtocolKind protocol;
    int nodes;
  };
  const std::vector<Point> points{
      {run::ProtocolKind::kSstsp, 100},  {run::ProtocolKind::kSstsp, 500},
      {run::ProtocolKind::kSstsp, 2000}, {run::ProtocolKind::kTsf, 100},
      {run::ProtocolKind::kTsf, 500},    {run::ProtocolKind::kTsf, 2000},
  };
  const double duration_s = 60.0;

  std::vector<bench::PerfSample> samples;
  bool rss_per_scenario = true;
  for (const Point& p : points) {
    run::Scenario s;
    s.protocol = p.protocol;
    s.num_nodes = p.nodes;
    s.duration_s = duration_s;
    s.seed = 2006;
    s.sstsp.chain_length = 2200;
    s.collect_metrics = false;  // bare hot path: no instruments/profiler
    const bool rss_reset = reset_rss_peak();
    rss_per_scenario = rss_per_scenario && rss_reset;
    const auto r = run::run_scenario(s);

    bench::PerfSample sample;
    sample.label = std::string(run::protocol_name(p.protocol)) + "_n" +
                   std::to_string(p.nodes);
    sample.protocol = run::protocol_name(p.protocol);
    sample.nodes = p.nodes;
    sample.sim_seconds = duration_s;
    sample.wall_seconds = r.wall_seconds;
    sample.events = r.events_processed;
    sample.deliveries = r.channel.deliveries;
    sample.peak_rss_kb = rss_reset ? vm_hwm_kb() : peak_rss_kb();
    samples.push_back(sample);
    std::cout << sample.label << ": " << metrics::fmt(r.wall_seconds, 3)
              << " s wall\n";
  }

  // Sharded-kernel lanes: SSTSP at n = 100k and n = 1M on the windowed
  // parallel kernel (DESIGN.md §12).  Spatial deployments at the same node
  // density as the default n = 100 disc (placement radius grows as sqrt(n),
  // radio range fixed at 25 m -> ~25 audible neighbours), short pinned
  // durations: the point is a tracked throughput + footprint trajectory at
  // scale, not a convergence study.  Shard counts are pinned so the event
  // stream is machine-independent (bit-identical for any thread count); the
  // _mt lane uses every hardware thread (floored at 2 so the worker pool is
  // always exercised) and is honest by construction — on a single-core host
  // it measures the pool's coordination overhead, not a speedup.
  const int hw = static_cast<int>(
      std::max(2u, std::thread::hardware_concurrency()));
  struct XlPoint {
    int nodes;
    double sim_s;
    int shards;
    int threads;
    const char* suffix;
  };
  const std::vector<XlPoint> xl_points{
      {100000, 2.0, 8, 1, "_t1"},
      {100000, 2.0, 8, hw, "_mt"},
      {1000000, 0.3, 32, hw, "_mt"},
  };
  for (const XlPoint& p : xl_points) {
    run::Scenario s;
    s.protocol = run::ProtocolKind::kSstsp;
    s.num_nodes = p.nodes;
    s.duration_s = p.sim_s;
    s.seed = 2006;
    s.sstsp.chain_length = 64;
    s.collect_metrics = false;
    s.phy.radio_range_m = 25.0;
    s.phy.placement_radius_m = 50.0 * std::sqrt(p.nodes / 100.0);
    s.threads = p.threads;
    s.shards = p.shards;
    const bool rss_reset = reset_rss_peak();
    rss_per_scenario = rss_per_scenario && rss_reset;
    const auto r = run::run_scenario(s);

    bench::PerfSample sample;
    sample.label = "SSTSP_n" + std::to_string(p.nodes) + p.suffix;
    sample.protocol = run::protocol_name(s.protocol);
    sample.nodes = p.nodes;
    sample.threads = p.threads;
    sample.sim_seconds = p.sim_s;
    sample.wall_seconds = r.wall_seconds;
    sample.events = r.events_processed;
    sample.deliveries = r.channel.deliveries;
    sample.peak_rss_kb = rss_reset ? vm_hwm_kb() : peak_rss_kb();
    samples.push_back(sample);
    std::cout << sample.label << ": " << metrics::fmt(r.wall_seconds, 3)
              << " s wall (" << p.shards << " shards, " << p.threads
              << " threads)\n";
  }

  metrics::TextTable table({"scenario", "thr", "wall (s)", "events/s",
                            "deliv/s", "events", "deliveries",
                            "peak RSS (MB)"});
  for (const auto& s : samples) {
    table.add_row({s.label, std::to_string(s.threads),
                   metrics::fmt(s.wall_seconds, 3),
                   metrics::fmt(s.events_per_second(), 0),
                   metrics::fmt(s.deliveries_per_second(), 0),
                   std::to_string(s.events), std::to_string(s.deliveries),
                   metrics::fmt(static_cast<double>(s.peak_rss_kb) / 1024.0,
                                1)});
  }
  table.print(std::cout);
  if (rss_per_scenario) {
    std::cout << "(peak RSS is per-scenario: the kernel watermark is reset "
                 "before each run via\n /proc/self/clear_refs, so rows are "
                 "directly comparable)\n";
  } else {
    std::cout << "(peak RSS is the process high-water mark at sample time — "
                 "/proc/self/clear_refs is\n unavailable here, so later rows "
                 "include earlier runs' memory; per-scenario deltas\n are "
                 "indicative only)\n";
  }

  bench::write_perf_json(bench::out_dir() + "/BENCH_perf.json", samples);

  // Paired-overhead passes: alternate control and variant runs of the same
  // pinned n=2000 scenarios and keep the best CPU seconds of five of each
  // (noise is one-sided — runs only ever get slower), writing two fresh
  // same-machine documents for CI to compare at a tight tolerance.
  const auto paired_pass =
      [&](const char* what, const std::string& base_out,
          const std::string& variant_out,
          const std::function<void(run::Scenario&, const std::string&)>&
              enable_variant) {
        std::cout << '\n' << what << " overhead pass:\n";
        std::vector<bench::PerfSample> control_samples;
        std::vector<bench::PerfSample> variant_samples;
        for (const Point& p : points) {
          if (p.nodes != 2000) continue;  // overhead only matters at scale
          const std::string label =
              std::string(run::protocol_name(p.protocol)) + "_n" +
              std::to_string(p.nodes);
          run::Scenario base;
          base.protocol = p.protocol;
          base.num_nodes = p.nodes;
          base.duration_s = duration_s;
          base.seed = 2006;
          base.sstsp.chain_length = 2200;
          base.collect_metrics = false;

          run::Scenario variant = base;
          enable_variant(variant, label);

          bench::PerfSample best_control;
          bench::PerfSample best_variant;
          for (int round = 0; round < 5; ++round) {
            for (const bool with_variant : {false, true}) {
              const double cpu_before = process_cpu_seconds();
              const auto r =
                  run::run_scenario(with_variant ? variant : base);
              const double cpu_s = process_cpu_seconds() - cpu_before;
              bench::PerfSample sample;
              sample.label = label;
              sample.protocol = run::protocol_name(p.protocol);
              sample.nodes = p.nodes;
              sample.sim_seconds = duration_s;
              // CPU seconds, deliberately — see process_cpu_seconds().  The
              // derived events_per_sec is events per CPU second here.
              sample.wall_seconds = cpu_s;
              sample.events = r.events_processed;
              sample.deliveries = r.channel.deliveries;
              sample.peak_rss_kb = peak_rss_kb();  // process-wide high-water
              bench::PerfSample& best =
                  with_variant ? best_variant : best_control;
              if (best.label.empty() ||
                  sample.wall_seconds < best.wall_seconds) {
                best = sample;
              }
            }
          }
          control_samples.push_back(best_control);
          variant_samples.push_back(best_variant);
          std::cout << label << ": control "
                    << metrics::fmt(best_control.wall_seconds, 3)
                    << " s vs +" << what << ' '
                    << metrics::fmt(best_variant.wall_seconds, 3)
                    << " s CPU (best of 5 each)\n";
        }
        bench::write_perf_json(base_out, control_samples);
        bench::write_perf_json(variant_out, variant_samples);
      };

  if (std::getenv("SSTSP_PERF_TELEMETRY") != nullptr) {
    paired_pass("telemetry",
                bench::out_dir() + "/BENCH_perf_telemetry_base.json",
                bench::out_dir() + "/BENCH_perf_telemetry.json",
                [](run::Scenario& s, const std::string& label) {
                  s.telemetry_interval_s = 1.0;
                  s.telemetry_per_node = 0;  // cluster gauges, like a fleet
                  s.telemetry_out = bench::out_dir() + "/perf_telemetry_" +
                                    label + ".jsonl";
                });
  }
  if (std::getenv("SSTSP_PERF_SAMPLER") != nullptr) {
    paired_pass("sampler",
                bench::out_dir() + "/BENCH_perf_sampler_base.json",
                bench::out_dir() + "/BENCH_perf_sampler.json",
                [](run::Scenario& s, const std::string&) {
                  s.phase_sampler = true;  // default ~1 kHz virtual tick
                });
  }
  if (std::getenv("SSTSP_PERF_DISCIPLINE") != nullptr) {
    paired_pass("discipline",
                bench::out_dir() + "/BENCH_perf_discipline_base.json",
                bench::out_dir() + "/BENCH_perf_discipline.json",
                [](run::Scenario& s, const std::string&) {
                  // The deepest non-default estimator path: per-sample RLS
                  // update + Newton target solve + verdict counters.
                  s.sstsp.discipline.name = "rls";
                });
  }
  return 0;
}
