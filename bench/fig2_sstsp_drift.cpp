// FIG2 — "Maximum clock difference: SSTSP, 500 nodes, m = 4" (paper Fig. 2).
//
// The paper's headline accuracy result: with 500 stations, churn, and the
// reference node departing at 300/500/800 s, SSTSP keeps the maximum clock
// difference below ~10 us once stabilized, with brief excursions at the
// reference changes (bounded by Lemma 2).
#include "bench_common.h"

int main() {
  using namespace sstsp;
  bench::banner("FIG2", "Maximum clock difference — SSTSP, 500 nodes, m = 4",
                "below 10 us after stabilization; brief spikes at the "
                "reference departures (300/500/800 s)");

  auto scenario =
      run::Scenario::paper_section5(run::ProtocolKind::kSstsp, 500,
                                    /*seed=*/2006);
  scenario.sstsp.m = 4;
  scenario.monitor = true;
  const auto result = run::run_scenario(scenario);
  bench::JsonReport report("fig2");
  report.add_run("sstsp_n500_m4", scenario, result);

  bench::dump_series(result.max_diff, "fig2_sstsp_n500_m4", 20.0,
                     /*log_scale=*/false);
  bench::summarize(result, scenario.duration_s);

  // Quiet-window statistics (between churn / departure events) — the
  // regime the paper's "below 10 us" claim refers to.
  std::cout << "\nquiet-window max clock difference:\n";
  metrics::TextTable table({"window (s)", "max (us)", "p99 (us)"});
  const double windows[][2] = {{50, 195},  {255, 295}, {350, 395},
                               {555, 595}, {650, 795}, {900, 995}};
  for (const auto& w : windows) {
    const auto mx = result.max_diff.max_in(w[0], w[1]);
    const auto p99 = result.max_diff.quantile_in(0.99, w[0], w[1]);
    table.add_row({metrics::fmt(w[0], 0) + "-" + metrics::fmt(w[1], 0),
                   mx ? metrics::fmt(*mx, 2) : "-",
                   p99 ? metrics::fmt(*p99, 2) : "-"});
  }
  table.print(std::cout);

  std::cout << "reference-change excursions (Lemma 2 windows):\n";
  metrics::TextTable exc({"departure (s)", "max within +10 s (us)"});
  for (const double t : {300.0, 500.0, 800.0}) {
    const auto mx = result.max_diff.max_in(t, t + 10.0);
    exc.add_row({metrics::fmt(t, 0), mx ? metrics::fmt(*mx, 2) : "-"});
  }
  exc.print(std::cout);
  report.write();
  return 0;
}
