// ABL-FAULT — the resilience matrix behind DESIGN.md §9: one seeded
// scenario swept across the fault-plan directives (packet loss, reference
// crash, their combination, a partition heal, a clock step), each run
// reporting the per-fault recovery accounting (re-election latency in
// beacon periods, re-sync latency, post-recovery steady error) plus the
// invariant-audit verdict.  The paper's recovery claims under test:
// re-election within l+1 silent BPs of losing the reference (§3.3) and
// Lemma-1 steady error (< 25 us) restored after every transient.
#include <string>
#include <vector>

#include "bench_common.h"
#include "fault/plan.h"
#include "runner/sweep.h"
#include "trace/analyzer.h"

namespace {

struct Cell {
  std::string label;
  const char* plan_json;  // nullptr = fault-free baseline
};

}  // namespace

int main() {
  using namespace sstsp;
  bench::banner("ABL-FAULT",
                "Fault matrix: recovery accounting per fault-plan directive",
                "re-election within l+1 silent BPs, Lemma-1 steady error "
                "restored after every transient");

  const std::vector<Cell> cells{
      {"baseline", nullptr},
      {"drop10", R"({"packet": [{"kind": "drop", "probability": 0.1}]})"},
      {"ref_crash",
       R"({"node_faults": [{"kind": "crash", "node": "reference", "at": 30}]})"},
      {"ref_crash_drop10",
       R"({"seed": 1,
           "packet": [{"kind": "drop", "probability": 0.1}],
           "node_faults": [{"kind": "crash", "node": "reference", "at": 30}]})"},
      {"partition_heal",
       R"({"partitions": [{"start": 20, "end": 30, "group_a": [7, 8, 9]}]})"},
      {"clock_step",
       R"({"clock_faults": [{"node": 4, "at": 30, "step_us": 400}]})"},
  };

  std::vector<run::Scenario> scenarios;
  for (const Cell& cell : cells) {
    run::Scenario s;
    s.protocol = run::ProtocolKind::kSstsp;
    s.num_nodes = 10;
    s.duration_s = 60.0;
    s.seed = 1;
    s.sstsp.chain_length = 1200;
    s.monitor = true;
    // Per-cell telemetry time-series: 0.5 s samples feed the recovery
    // curves written next to the matrix (bench_out/*.curve.csv).
    s.telemetry_out =
        bench::out_dir() + "/abl_fault_" + cell.label + ".telemetry.jsonl";
    s.telemetry_interval_s = 0.5;
    s.telemetry_per_node = 1;
    if (cell.plan_json != nullptr) {
      std::string error;
      const auto plan = fault::parse_plan_text(cell.plan_json, &error);
      if (!plan) {
        std::cerr << cell.label << ": bad plan: " << error << '\n';
        return 1;
      }
      s.faults = *plan;
    }
    scenarios.push_back(s);
  }
  const auto results = run::run_sweep(scenarios);

  bench::JsonReport report("abl_fault_matrix");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    report.add_run(cells[i].label, scenarios[i], results[i]);
  }

  metrics::TextTable table({"fault", "injected drops", "reelect (BPs)",
                            "resync (s)", "post-fault steady (us)",
                            "audit records"});
  bool all_recovered = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const run::RunResult& r = results[i];
    std::string reelect = "-";
    std::string resync = "-";
    std::string steady = "-";
    std::uint64_t drops = 0;
    if (r.recovery) {
      drops = r.recovery->packet_faults.drops +
              r.recovery->packet_faults.partition_drops;
      for (const auto& rec : r.recovery->records) {
        if (!rec.recovered) all_recovered = false;
        if (rec.needs_election && rec.reelection_bps >= 0.0) {
          reelect = metrics::fmt(rec.reelection_bps, 2);
        }
        if (rec.resync_s >= 0.0) resync = metrics::fmt(rec.resync_s, 2);
      }
      if (r.recovery->post_fault_steady_max_us >= 0.0) {
        steady = metrics::fmt(r.recovery->post_fault_steady_max_us, 2);
      }
    }
    if (steady == "-" && r.steady_max_us) {
      steady = metrics::fmt(*r.steady_max_us, 2);  // fault-free baseline
    }
    table.add_row({cells[i].label, std::to_string(drops), reelect, resync,
                   steady,
                   std::to_string(r.audit ? r.audit->records.size() : 0)});
  }
  table.print(std::cout);
  report.write();

  // Recovery curves: for every fault episode, the cluster max-offset
  // telemetry in a window around the fault instant — the raw material for
  // the paper's §5 resilience plots, one CSV per cell.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const run::RunResult& r = results[i];
    if (!r.recovery || r.recovery->records.empty()) continue;
    std::vector<trace::FaultMark> marks;
    for (const auto& rec : r.recovery->records) {
      trace::FaultMark mark;
      mark.fault = rec.fault;
      mark.node = rec.node == mac::kNoNode
                      ? -1
                      : static_cast<std::int64_t>(rec.node);
      mark.t_s = rec.fault_t_s;
      mark.resync_s = rec.resync_s;
      mark.recovered = rec.recovered;
      marks.push_back(std::move(mark));
    }
    std::string error;
    const auto analysis =
        trace::TraceAnalysis::load({scenarios[i].telemetry_out}, &error);
    if (!analysis) {
      std::cerr << cells[i].label << ": telemetry reload failed: " << error
                << '\n';
      return 1;
    }
    const auto curves =
        analysis->recovery_curves(marks, /*pre_s=*/5.0, /*post_s=*/20.0);
    const std::string path =
        bench::out_dir() + "/abl_fault_" + cells[i].label + ".curve.csv";
    if (!trace::TraceAnalysis::write_curves_csv(curves, path, &error)) {
      std::cerr << cells[i].label << ": " << error << '\n';
      return 1;
    }
    std::cout << "(recovery curve written to " << path << ")\n";
  }

  if (!all_recovered) {
    std::cerr << "FAIL: a fault cell never recovered\n";
    return 1;
  }
  return 0;
}
