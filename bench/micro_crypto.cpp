// Micro-benchmarks for the crypto substrate: the on-the-fly-hash premise.
//
// The paper's design rests on hash operations being "three to four orders
// of magnitude faster than asymmetric operations" and cheap enough to run
// per beacon with no measurable delay.  These benchmarks quantify every
// cryptographic step on the beacon path.
#include <benchmark/benchmark.h>

#include <cstring>

#include "crypto/hash_chain.h"
#include "crypto/mutesla.h"
#include "mac/frame.h"

namespace {

using namespace sstsp;

void BM_Sha256_32B(benchmark::State& state) {
  crypto::Digest input{};
  input[0] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hash_once(input));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_Sha256_32B);

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> buf(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crypto::Sha256::hash(std::span<const std::uint8_t>(buf)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_HmacSha256_BeaconBody(benchmark::State& state) {
  const auto body = mac::serialize_unsecured_beacon(123456789, 42);
  crypto::Digest key{};
  key[5] = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256_128(
        std::span<const std::uint8_t>(key.data(), key.size()),
        std::span<const std::uint8_t>(body.data(), body.size())));
  }
}
BENCHMARK(BM_HmacSha256_BeaconBody);

void BM_ChainElement_Checkpointed(benchmark::State& state) {
  const crypto::ChainParams params{crypto::derive_seed(1, 1),
                                   static_cast<std::size_t>(state.range(0))};
  crypto::CheckpointedChain chain(params, 128);
  std::size_t i = params.length;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.element(--i));
    if (i == 0) i = params.length;
  }
}
BENCHMARK(BM_ChainElement_Checkpointed)->Arg(12000);

void BM_FractalTraversalStep(benchmark::State& state) {
  const crypto::ChainParams params{crypto::derive_seed(1, 2),
                                   static_cast<std::size_t>(state.range(0))};
  auto traversal = std::make_unique<crypto::FractalTraversal>(params);
  for (auto _ : state) {
    if (traversal->exhausted()) {
      state.PauseTiming();
      traversal = std::make_unique<crypto::FractalTraversal>(params);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(traversal->next());
  }
}
BENCHMARK(BM_FractalTraversalStep)->Arg(4096)->Arg(12000);

void BM_MuTeslaVerifyStep(benchmark::State& state) {
  const std::size_t n = 12000;
  const crypto::ChainParams params{crypto::derive_seed(1, 3), n};
  const crypto::MuTeslaSchedule schedule{0.0, 1e5, n};
  crypto::MuTeslaSigner signer(params, schedule);
  // Pre-derive sequential keys so the loop measures only verification.
  std::vector<crypto::Digest> keys;
  keys.reserve(2000);
  for (std::int64_t j = 1; j <= 2000; ++j) {
    keys.push_back(signer.key_for_interval(j));
  }
  crypto::MuTeslaVerifier verifier(signer.anchor(), schedule);
  std::int64_t j = 0;
  for (auto _ : state) {
    if (j == 2000) {
      state.PauseTiming();
      verifier = crypto::MuTeslaVerifier(signer.anchor(), schedule);
      j = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(
        verifier.verify_key(j + 1, keys[static_cast<std::size_t>(j)]));
    ++j;
  }
}
BENCHMARK(BM_MuTeslaVerifyStep);

void BM_BeaconSign(benchmark::State& state) {
  const std::size_t n = 12000;
  const crypto::ChainParams params{crypto::derive_seed(1, 4), n};
  const crypto::MuTeslaSchedule schedule{0.0, 1e5, n};
  crypto::MuTeslaSigner signer(params, schedule);
  const auto body = mac::serialize_unsecured_beacon(987654321, 7);
  std::int64_t j = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.mac(
        j, std::span<const std::uint8_t>(body.data(), body.size())));
    j = (j % 10000) + 1;
  }
}
BENCHMARK(BM_BeaconSign);

}  // namespace

BENCHMARK_MAIN();
