// ABL-OVERHEAD — the paper's §3.4 cost accounting, measured.
//
//   * Traffic: "the number of synchronization beacons emitted in SSTSP is
//     the same as in TSF, while the size of each beacon increases from 56
//     bytes ... to 92 bytes".  (In practice SSTSP emits *fewer* beacons:
//     exactly one per BP versus TSF's collision clusters.)
//   * Storage: hash-chain traversal strategies — full storage, on-demand
//     recomputation, Jakobsson fractal traversal (log n storage and
//     amortized log n work), and the checkpointed random-access walker the
//     in-simulator signer uses.
#include <cmath>

#include "bench_common.h"
#include "crypto/hash_chain.h"

int main() {
  using namespace sstsp;
  bench::banner("ABL-OVERHEAD", "Beacon traffic & hash-chain storage costs",
                "92 B vs 56 B per beacon; log2(n) storage / log2(n) work "
                "fractal traversal (Jakobsson [6])");

  // ---- traffic ---------------------------------------------------------
  std::cout << "\n-- traffic over 200 s, 100 nodes --\n";
  bench::JsonReport report("abl_overhead");
  metrics::TextTable traffic({"protocol", "beacons", "collided",
                              "bytes on air", "bytes/beacon", "bytes/s"});
  for (const auto kind : {run::ProtocolKind::kTsf, run::ProtocolKind::kSstsp}) {
    run::Scenario s;
    s.protocol = kind;
    s.num_nodes = 100;
    s.duration_s = 200.0;
    s.seed = 2006;
    s.sstsp.chain_length = 2200;
    s.monitor = true;
    const auto r = run::run_scenario(s);
    report.add_run(std::string("traffic_") + run::protocol_name(kind), s, r);
    traffic.add_row(
        {run::protocol_name(kind), std::to_string(r.channel.transmissions),
         std::to_string(r.channel.collided_transmissions),
         std::to_string(r.channel.bytes_on_air),
         metrics::fmt(static_cast<double>(r.channel.bytes_on_air) /
                          static_cast<double>(r.channel.transmissions),
                      1),
         metrics::fmt(static_cast<double>(r.channel.bytes_on_air) / 200.0,
                      1)});
  }
  traffic.print(std::cout);

  // ---- chain storage/work ---------------------------------------------
  std::cout << "\n-- one-way chain traversal strategies (full walk) --\n";
  metrics::TextTable chain({"n", "strategy", "peak stored digests",
                            "total hash ops", "ops/element"});
  for (const std::size_t n : {1024u, 4096u, 12000u}) {
    const crypto::ChainParams params{crypto::derive_seed(1, 1), n};

    crypto::FullStorageTraversal full(params);
    std::size_t full_peak = full.stored_digests();
    for (std::size_t i = 0; i < n; ++i) (void)full.next();
    report.add_values(
        "chain_full_n" + std::to_string(n),
        {{"peak_stored", static_cast<double>(full_peak)},
         {"hash_ops", static_cast<double>(full.hash_ops())}});
    chain.add_row({std::to_string(n), "full storage",
                   std::to_string(full_peak),
                   std::to_string(full.hash_ops()),
                   metrics::fmt(static_cast<double>(full.hash_ops()) /
                                    static_cast<double>(n),
                                2)});

    if (n <= 4096) {  // the quadratic one gets slow beyond this
      crypto::RecomputeTraversal rec(params);
      for (std::size_t i = 0; i < n; ++i) (void)rec.next();
      chain.add_row({std::to_string(n), "recompute", "1",
                     std::to_string(rec.hash_ops()),
                     metrics::fmt(static_cast<double>(rec.hash_ops()) /
                                      static_cast<double>(n),
                                  2)});
    }

    crypto::FractalTraversal frac(params);
    std::size_t frac_peak = 0;
    for (std::size_t i = 0; i < n; ++i) {
      (void)frac.next();
      frac_peak = std::max(frac_peak, frac.stored_digests());
    }
    report.add_values(
        "chain_fractal_n" + std::to_string(n),
        {{"peak_stored", static_cast<double>(frac_peak)},
         {"hash_ops", static_cast<double>(frac.hash_ops())}});
    chain.add_row({std::to_string(n), "fractal (Jakobsson)",
                   std::to_string(frac_peak),
                   std::to_string(frac.hash_ops()),
                   metrics::fmt(static_cast<double>(frac.hash_ops()) /
                                    static_cast<double>(n),
                                2)});

    crypto::CheckpointedChain cp(params, 128);
    const auto init_ops = cp.hash_ops();
    for (std::size_t j = 1; j <= n; ++j) (void)cp.element(n - j);
    chain.add_row(
        {std::to_string(n), "checkpointed (spacing 128)",
         std::to_string(cp.stored_digests()),
         std::to_string(cp.hash_ops()) + " (init " +
             std::to_string(init_ops) + ")",
         metrics::fmt(static_cast<double>(cp.hash_ops() - init_ops) /
                          static_cast<double>(n),
                      2)});
  }
  chain.print(std::cout);
  std::cout << "fractal peak storage vs ceil(log2 n)+1: matches the "
               "Jakobsson bound cited in paper §3.4.\n";
  std::cout << "per-receiver beacon buffer: 2 stored beacons x ~46 B + "
               "verifier state (32 B) -- within the paper's 300-500 B "
               "estimate.\n";
  report.write();
  return 0;
}
