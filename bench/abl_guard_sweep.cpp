// ABL-GUARD — guard time delta vs attack effectiveness (paper §3.3/§4).
//
// The guard bounds how far a single beacon can claim to be from the local
// clock, so an internal attacker's *rate* of dragging the virtual clock is
// limited by delta per beacon.  Sweep the attacker's skew rate against the
// default guard: slow skews pass and tow the network; fast skews trip the
// guard, the attacker's beacons are rejected, and the honest network
// re-elects around it.  Also sweep the guard base at a fixed skew.
#include <vector>

#include "bench_common.h"
#include "runner/sweep.h"

int main() {
  using namespace sstsp;
  bench::banner("ABL-GUARD", "Guard time vs internal-attacker effectiveness",
                "skew below guard/BP is followed (bounded bias); above it "
                "the beacons are rejected and the attack fails entirely");

  // (a) skew-rate sweep at the default guard (300 us + growth).
  const std::vector<double> skews{10.0, 50.0, 200.0, 1000.0, 5000.0};
  std::vector<run::Scenario> scenarios;
  for (const double skew : skews) {
    run::Scenario s;
    s.protocol = run::ProtocolKind::kSstsp;
    s.num_nodes = 50;
    s.duration_s = 160.0;
    s.seed = 2006;
    s.sstsp.chain_length = 1800;
    s.attack = "internal-ref";
    s.sstsp_attack.start_s = 40.0;
    s.sstsp_attack.end_s = 140.0;
    s.sstsp_attack.skew_rate_us_per_s = skew;
    s.monitor = true;
    scenarios.push_back(s);
  }
  const auto results = run::run_sweep(scenarios);

  bench::JsonReport report("abl_guard_sweep");
  for (std::size_t i = 0; i < skews.size(); ++i) {
    report.add_run("skew" + metrics::fmt(skews[i], 0), scenarios[i],
                   results[i]);
  }

  metrics::TextTable table({"skew (us/s)", "skew/beacon (us)",
                            "guard rejections", "honest max diff (us)",
                            "demotions", "elections"});
  for (std::size_t i = 0; i < skews.size(); ++i) {
    const auto& r = results[i];
    const auto during = r.max_diff.max_in(45.0, 140.0);
    table.add_row({metrics::fmt(skews[i], 0), metrics::fmt(skews[i] * 0.1, 1),
                   std::to_string(r.honest.rejected_guard),
                   during ? metrics::fmt(*during, 1) : "-",
                   std::to_string(r.honest.demotions),
                   std::to_string(r.honest.elections_won)});
  }
  table.print(std::cout);
  std::cout << "(honest max diff stays bounded in every row — the attacker "
               "can bias but never desynchronize)\n\n";

  // (b) guard-base sweep at a fixed, moderate skew.
  const std::vector<double> guards{50.0, 150.0, 300.0, 1000.0, 5000.0};
  std::vector<run::Scenario> gsweep;
  for (const double g : guards) {
    run::Scenario s;
    s.protocol = run::ProtocolKind::kSstsp;
    s.num_nodes = 50;
    s.duration_s = 160.0;
    s.seed = 2008;
    s.sstsp.chain_length = 1800;
    s.sstsp.guard_fine_us = g;
    s.attack = "internal-ref";
    s.sstsp_attack.start_s = 40.0;
    s.sstsp_attack.end_s = 140.0;
    s.sstsp_attack.skew_rate_us_per_s = 200.0;
    s.monitor = true;
    gsweep.push_back(s);
  }
  const auto gresults = run::run_sweep(gsweep);

  metrics::TextTable gtable({"guard base (us)", "guard rejections",
                             "honest max diff (us)", "benign max (no "
                             "attack, us)"});
  for (std::size_t i = 0; i < guards.size(); ++i) {
    run::Scenario benign = gsweep[i];
    benign.attack = "";
    const auto b = run::run_scenario(benign);
    report.add_run("guard" + metrics::fmt(guards[i], 0), gsweep[i],
                   gresults[i]);
    report.add_run("guard" + metrics::fmt(guards[i], 0) + "_benign", benign,
                   b);
    const auto during = gresults[i].max_diff.max_in(45.0, 140.0);
    const auto benign_max = b.steady_max_us;
    gtable.add_row({metrics::fmt(guards[i], 0),
                    std::to_string(gresults[i].honest.rejected_guard),
                    during ? metrics::fmt(*during, 1) : "-",
                    benign_max ? metrics::fmt(*benign_max, 1) : "-"});
  }
  gtable.print(std::cout);
  std::cout << "(too-tight guards start rejecting honest beacons after "
               "elections; too-loose guards admit bigger per-beacon lies)\n";
  report.write();
  return 0;
}
