// ABL-CLUSTER — hierarchical cluster sweep: clusters x nodes-per-cluster,
// inter-cluster error vs gateway depth (DESIGN.md §13).
//
// Expected shape: the inter-cluster steady max grows with gateway depth but
// stays inside hop_bound_us x depth at every size; cluster population
// mostly affects intra-cluster contention, not the translation error, so
// the depth curves for K = 10 and K = 20 should nearly coincide.
#include <string>

#include "bench_common.h"

namespace {

using namespace sstsp;

run::Scenario cluster_scenario(int clusters, int nodes_per_cluster,
                               std::uint64_t seed) {
  run::Scenario s;
  s.cluster.clusters = clusters;
  s.cluster.nodes_per_cluster = nodes_per_cluster;
  s.num_nodes = s.cluster.total_nodes();
  s.duration_s = 60.0;
  s.seed = seed;
  s.phy.radio_range_m = 50.0;
  s.preestablished_reference = true;
  s.sstsp.chain_length = 700;
  s.monitor = true;
  return s;
}

}  // namespace

int main() {
  using namespace sstsp;
  bench::banner("ABL-CLUSTER",
                "Hierarchical cluster sync: inter-cluster error vs gateway "
                "depth and cluster size",
                "inter-cluster max offset bounded by per-hop error x "
                "gateway depth (cross-cluster Lemma-1 analogue)");

  bench::JsonReport report("abl_cluster");
  metrics::TextTable table({"clusters", "K", "nodes", "depth",
                            "inter-cluster max (us)", "bound (us)",
                            "sync latency (s)", "attach", "audit"});
  for (const int clusters : {2, 3, 4}) {
    for (const int k : {10, 20}) {
      const run::Scenario s = cluster_scenario(clusters, k, 2006);
      const run::RunResult r = run::run_scenario(s);
      report.add_run(
          "c" + std::to_string(clusters) + "_k" + std::to_string(k), s, r);

      const double attach = r.attach_fraction.empty()
                                ? 0.0
                                : r.attach_fraction.points().back().value_us;
      const bool audit_ok = r.audit && r.audit->critical_count() == 0;
      table.add_row(
          {std::to_string(clusters), std::to_string(k),
           std::to_string(s.num_nodes), std::to_string(s.cluster.max_depth()),
           r.cluster_steady_max_us ? metrics::fmt(*r.cluster_steady_max_us, 2)
                                   : std::string("n/a"),
           metrics::fmt(s.cluster.cross_cluster_bound_us(), 0),
           r.sync_latency_s ? metrics::fmt(*r.sync_latency_s, 2)
                            : std::string("never"),
           metrics::fmt(attach, 2), audit_ok ? "clean" : "VIOLATIONS"});
    }
  }
  table.print(std::cout);
  std::cout << "(every cluster elects its own reference with the unmodified "
               "l-BP contention; the\n bridge plane carries the root "
               "timescale down the chain, one gateway hop per depth)\n";
  report.write();
  return 0;
}
