// ABL-MULTIHOP — the paper's §6 future work, quantified: synchronization
// error vs hop count for the multi-hop SSTSP extension (src/multihop/) on
// line topologies where each node only hears its direct neighbours.
//
// Expected shape: per-hop error accumulation — end-to-end error grows
// roughly with the square root to linearly in the hop count (independent
// per-hop estimation noise), while each cell's local sync stays at the
// single-hop level.
#include <memory>
#include <vector>

#include "bench_common.h"
#include "clock/drift_model.h"
#include "crypto/hash_chain.h"
#include "multihop/sstsp_mh.h"

namespace {

using namespace sstsp;

struct LineResult {
  double end_to_end_max_us = 0;
  double adjacent_max_us = 0;
  std::uint64_t beacons = 0;
  std::uint64_t collided = 0;
  bool all_synced = true;
};

LineResult run_line(int hops, std::uint64_t seed) {
  sim::Simulator sim(seed);
  mac::PhyParams phy;
  phy.radio_range_m = 50.0;
  mac::Channel channel(sim, phy);
  core::KeyDirectory directory;
  multihop::MultiHopConfig cfg;
  cfg.base.chain_length = 1300;
  cfg.max_level = hops + 1;

  std::vector<std::unique_ptr<proto::Station>> stations;
  std::vector<multihop::SstspMh*> protos;
  sim::Rng rng(seed * 13 + 1);
  for (int i = 0; i <= hops; ++i) {
    const auto id = static_cast<mac::NodeId>(i);
    auto st = std::make_unique<proto::Station>(
        sim, channel, id,
        clk::HardwareClock(clk::DriftModel::uniform(rng),
                           rng.uniform(-50.0, 50.0)),
        mac::Position{i * 40.0, 0.0});
    directory.register_node(
        id, crypto::ChainParams{crypto::derive_seed(seed, id),
                                cfg.base.chain_length});
    auto proto = std::make_unique<multihop::SstspMh>(
        *st, cfg, directory, multihop::SstspMh::Options{i == 0});
    protos.push_back(proto.get());
    st->set_protocol(std::move(proto));
    stations.push_back(std::move(st));
  }
  for (auto& st : stations) st->power_on();

  LineResult result;
  // Warm up 20 s, then sample the tail 80 s.
  sim.run_until(sim::SimTime::from_sec(20));
  for (int sample = 0; sample < 800; ++sample) {
    sim.run_until(sim.now() + sim::SimTime::from_ms(100));
    double lo = 1e18, hi = -1e18;
    double prev = 0;
    for (std::size_t i = 0; i < protos.size(); ++i) {
      if (!protos[i]->is_synchronized()) {
        result.all_synced = false;
        continue;
      }
      const double v = protos[i]->network_time_us(sim.now());
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      if (i > 0) {
        result.adjacent_max_us =
            std::max(result.adjacent_max_us, std::abs(v - prev));
      }
      prev = v;
    }
    result.end_to_end_max_us = std::max(result.end_to_end_max_us, hi - lo);
  }
  result.beacons = channel.stats().transmissions;
  result.collided = channel.stats().collided_transmissions;
  return result;
}

}  // namespace

int main() {
  using namespace sstsp;
  bench::banner("ABL-MULTIHOP", "Multi-hop SSTSP: error vs hop count "
                                "(line topology, 1 node per hop)",
                "per-hop error accumulation; local (adjacent) sync stays at "
                "the single-hop level");

  bench::JsonReport report("abl_multihop");
  metrics::TextTable table({"hops", "end-to-end max (us)",
                            "adjacent max (us)", "beacons/BP", "collided",
                            "all synced"});
  for (const int hops : {1, 2, 4, 6, 8}) {
    const LineResult r = run_line(hops, 2006);
    report.add_values(
        "hops" + std::to_string(hops),
        {{"end_to_end_max_us", r.end_to_end_max_us},
         {"adjacent_max_us", r.adjacent_max_us},
         {"beacons", static_cast<double>(r.beacons)},
         {"collided", static_cast<double>(r.collided)},
         {"all_synced", r.all_synced ? 1.0 : 0.0}});
    table.add_row({std::to_string(hops),
                   metrics::fmt(r.end_to_end_max_us, 2),
                   metrics::fmt(r.adjacent_max_us, 2),
                   metrics::fmt(static_cast<double>(r.beacons) / 1000.0, 2),
                   std::to_string(r.collided),
                   r.all_synced ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "(beacons/BP = reference + one relay per intermediate hop; "
               "the relay stagger\n serializes levels so spatial reuse "
               "needs no extra contention)\n";
  report.write();
  return 0;
}
