// ABL-MULTIHOP — the paper's §6 future work, quantified on the hierarchical
// cluster layer (src/cluster/): synchronization error vs gateway hop count
// for a chain of broadcast-domain clusters, each running the unmodified
// single-domain SSTSP and bridged by gateway tau announcements.
//
// Expected shape: per-hop error accumulation — the inter-cluster offset
// grows roughly linearly in the gateway depth (independent per-hop
// translation noise, bound hop_bound_us x depth), while each cluster's
// internal sync stays at the single-hop level.
#include <string>

#include "bench_common.h"

namespace {

using namespace sstsp;

run::Scenario chain_scenario(int hops, std::uint64_t seed) {
  run::Scenario s;
  s.cluster.clusters = hops + 1;
  s.cluster.nodes_per_cluster = 8;
  s.num_nodes = s.cluster.total_nodes();
  s.duration_s = 90.0;
  s.seed = seed;
  s.phy.radio_range_m = 50.0;
  s.preestablished_reference = true;
  s.sstsp.chain_length = 1000;
  s.monitor = true;
  return s;
}

}  // namespace

int main() {
  using namespace sstsp;
  bench::banner("ABL-MULTIHOP",
                "Multi-hop SSTSP via hierarchical clusters: error vs "
                "gateway depth (chain of broadcast domains)",
                "per-hop error accumulation; each cluster's internal sync "
                "stays at the single-hop level");

  bench::JsonReport report("abl_multihop");
  metrics::TextTable table({"gw hops", "inter-cluster max (us)", "bound (us)",
                            "steady max (us)", "attach", "audit"});
  // Depth 6 is the validated envelope of the linear hop-bound model: each
  // gateway announces a fit of its parent's already-extrapolated signal, so
  // the per-hop noise compounds and an 8-hop chain overshoots the linear
  // extrapolation of the bound roughly 2x (DESIGN.md §13).
  for (const int hops : {1, 2, 4, 6}) {
    const run::Scenario s = chain_scenario(hops, 2006);
    const run::RunResult r = run::run_scenario(s);
    report.add_run("hops" + std::to_string(hops), s, r);

    const double bound = s.cluster.cross_cluster_bound_us();
    const double attach = r.attach_fraction.empty()
                              ? 0.0
                              : r.attach_fraction.points().back().value_us;
    const bool audit_ok = r.audit && r.audit->critical_count() == 0;
    table.add_row(
        {std::to_string(hops),
         r.cluster_steady_max_us ? metrics::fmt(*r.cluster_steady_max_us, 2)
                                 : std::string("n/a"),
         metrics::fmt(bound, 0),
         r.steady_max_us ? metrics::fmt(*r.steady_max_us, 2)
                         : std::string("n/a"),
         metrics::fmt(attach, 2),
         audit_ok ? "clean" : "VIOLATIONS"});
  }
  table.print(std::cout);
  std::cout << "(inter-cluster max = steady max-min spread of per-cluster "
               "mean global readings;\n bound = hop_bound_us x gateway "
               "depth, the cross-cluster Lemma-1 analogue)\n";
  report.write();
  return 0;
}
