// Micro-benchmarks for the simulation substrate and protocol math.
#include <benchmark/benchmark.h>

#include "core/adjustment.h"
#include "filter/gesd.h"
#include "filter/student_t.h"
#include "mac/channel.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

using namespace sstsp;
using namespace sstsp::sim::literals;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Rng rng(5);
  // Keep a standing population the size of a 500-node scenario's queue.
  for (int i = 0; i < 2000; ++i) {
    q.schedule(sim::SimTime::from_ps(static_cast<std::int64_t>(rng() >> 20)),
               [] {});
  }
  for (auto _ : state) {
    q.schedule(sim::SimTime::from_ps(static_cast<std::int64_t>(rng() >> 20)),
               [] {});
    auto fired = q.pop();
    benchmark::DoNotOptimize(fired.id);
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_SimulatorEventChain(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 1000) simulator.after(1_us, chain);
    };
    simulator.at(sim::SimTime::zero(), chain);
    simulator.run_until(sim::SimTime::from_ms(10));
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulatorEventChain);

void BM_ChannelBroadcast(benchmark::State& state) {
  const auto receivers = state.range(0);
  sim::Simulator simulator;
  mac::PhyParams phy;
  phy.packet_error_rate = 0.0;
  mac::Channel channel(simulator, phy);
  std::size_t delivered = 0;
  const auto tx =
      channel.add_station({0, 0}, [](const mac::Frame&, const mac::RxInfo&) {});
  for (int i = 0; i < receivers; ++i) {
    channel.add_station({static_cast<double>(i % 50), static_cast<double>(i / 50)},
                        [&delivered](const mac::Frame&, const mac::RxInfo&) {
                          ++delivered;
                        });
  }
  mac::Frame frame;
  frame.sender = 0;
  frame.air_bytes = 56;
  frame.body = mac::TsfBeaconBody{1};
  for (auto _ : state) {
    channel.transmit(tx, frame, 36_us);
    simulator.run_until(simulator.now() + 1_ms);
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          receivers);
}
BENCHMARK(BM_ChannelBroadcast)->Arg(100)->Arg(500);

void BM_AdjustmentSolve(benchmark::State& state) {
  const core::SstspConfig cfg;
  const core::ClockParams prev{1.00003, -12.5};
  const core::RefSample older{1.0000e8, 1.0000e8};
  const core::RefSample newest{1.0001e8 + 3.0, 1.0001e8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve_adjustment(
        prev, 1.0002e8, newest, older, 1.0004e8, cfg));
  }
}
BENCHMARK(BM_AdjustmentSolve);

void BM_StudentTQuantile(benchmark::State& state) {
  double p = 0.90;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::student_t_quantile(p, 24.0));
    p += 0.0001;
    if (p > 0.999) p = 0.90;
  }
}
BENCHMARK(BM_StudentTQuantile);

void BM_GesdCoarseWindow(benchmark::State& state) {
  sim::Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 16; ++i) samples.push_back(rng.uniform(-50, 50));
  samples.push_back(4000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::gesd(samples, 3, 0.05));
  }
}
BENCHMARK(BM_GesdCoarseWindow);

void BM_RngSubstreamDraw(benchmark::State& state) {
  sim::Rng root(11);
  for (auto _ : state) {
    sim::Rng sub = root.substream("bench", 7);
    benchmark::DoNotOptimize(sub.uniform_int(0, 30));
  }
}
BENCHMARK(BM_RngSubstreamDraw);

}  // namespace

BENCHMARK_MAIN();
