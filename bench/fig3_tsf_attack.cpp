// FIG3 — "Maximum clock difference: TSF, 100 nodes, an attacker"
// (paper Fig. 3).
//
// An attacker beacons at every BP without delay during 400-600 s, carrying
// timestamps slower than its clock.  It silences the fast stations (it
// wins/wrecks the contention) while never being adopted, so the honest
// network free-runs: the paper reports the error exploding to ~2*10^4 us
// during the window and recovering afterwards.
//
// Our CSMA model is less forgiving to the attacker than the paper's
// contention abstraction: honest stragglers drift out of the attacker's
// beacon-burst coverage and occasionally re-synchronize their neighbours,
// capping the excursion at the coverage width (several hundred us) instead
// of letting it grow unboundedly.  The shape — orders-of-magnitude blowup
// during the window, prompt recovery after — is preserved; see
// EXPERIMENTS.md for the discussion.
#include "bench_common.h"

int main() {
  using namespace sstsp;
  bench::banner("FIG3", "Maximum clock difference — TSF, 100 nodes, attacker "
                        "active 400-600 s",
                "error explodes (paper: ~2*10^4 us) during the attack, "
                "recovers after");

  auto scenario = run::Scenario::paper_section5(run::ProtocolKind::kTsf, 100,
                                                /*seed=*/2006);
  scenario.attack = "tsf-slow";
  scenario.tsf_attack.start_s = 400.0;
  scenario.tsf_attack.end_s = 600.0;
  scenario.monitor = true;
  const auto result = run::run_scenario(scenario);
  bench::JsonReport report("fig3");
  report.add_run("tsf_attack", scenario, result);

  bench::dump_series(result.max_diff, "fig3_tsf_attack", 20.0,
                     /*log_scale=*/true);
  bench::summarize(result, scenario.duration_s);

  // TSF's baseline already shows multi-ms *transients* whenever a churned
  // node returns 50 s of free-run later (it re-enters up to ~5 ms off and
  // is adopted within seconds), so the attack's signature is the
  // *sustained* error level: medians and p95s, not maxima.
  metrics::TextTable table({"window", "median (us)", "p95 (us)", "max (us)"});
  struct Win {
    const char* name;
    double a, b;
  };
  for (const Win w : {Win{"before attack (100-400 s)", 100, 400},
                      Win{"during attack (400-600 s)", 400, 600},
                      Win{"after attack (650-1000 s)", 650, 1000}}) {
    const auto med = result.max_diff.quantile_in(0.5, w.a, w.b);
    const auto p95 = result.max_diff.quantile_in(0.95, w.a, w.b);
    const auto mx = result.max_diff.max_in(w.a, w.b);
    table.add_row({w.name, med ? metrics::fmt(*med, 1) : "-",
                   p95 ? metrics::fmt(*p95, 1) : "-",
                   mx ? metrics::fmt(*mx, 1) : "-"});
  }
  table.print(std::cout);
  std::cout << "fraction of attack-window samples above 100 us: ";
  std::size_t above = 0;
  std::size_t total = 0;
  for (const auto& p : result.max_diff.points()) {
    if (p.t_s >= 405.0 && p.t_s <= 600.0) {
      ++total;
      if (p.value_us > 100.0) ++above;
    }
  }
  std::cout << metrics::fmt(100.0 * static_cast<double>(above) /
                                static_cast<double>(total),
                            1)
            << " %\n";
  if (result.attacker) {
    std::cout << "attacker transmitted " << result.attacker->beacons_sent
              << " forged beacons\n";
  }
  report.write();
  return 0;
}
