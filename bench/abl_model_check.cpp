// ABL-MODEL — analytical models (src/analysis/) vs measured simulation.
//
// Three cross-checks:
//   1. Lemma 1 convergence latency vs simulated SSTSP sync latency per m.
//   2. Lemma 2 reference-change bound vs simulated departure excursions.
//   3. TSF slotted-contention drought/drift scale vs simulated TSF error.
#include <vector>

#include "analysis/models.h"
#include "bench_common.h"
#include "runner/sweep.h"

int main() {
  using namespace sstsp;
  bench::banner("ABL-MODEL", "Analytical models vs simulation",
                "Lemma 1/2 predictions and the slotted-contention TSF model "
                "should bracket the measured values");

  constexpr double kBpUs = 1e5;
  bench::JsonReport report("abl_model_check");

  // ---- Lemma 1 latency ---------------------------------------------------
  std::cout << "\n-- Lemma 1: convergence latency vs m (N=50, offsets "
               "±112 us, threshold 25 us) --\n";
  {
    std::vector<run::Scenario> scenarios;
    for (int m = 1; m <= 5; ++m) {
      run::Scenario s;
      s.protocol = run::ProtocolKind::kSstsp;
      s.num_nodes = 50;
      s.duration_s = 40.0;
      s.seed = 2006;
      s.preestablished_reference = true;
      s.sstsp.m = m;
      s.sstsp.chain_length = 500;
      s.monitor = true;
      scenarios.push_back(s);
    }
    const auto results = run::run_sweep(scenarios);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      report.add_run("lemma1_m" + std::to_string(scenarios[i].sstsp.m),
                     scenarios[i], results[i]);
    }
    metrics::TextTable table({"m", "model BPs (+3 pipeline)",
                              "model latency (s)", "measured latency (s)"});
    for (int m = 1; m <= 5; ++m) {
      const int bps =
          analysis::lemma1_convergence_bps(m, 112.0, run::kSyncThresholdUs,
                                           kBpUs) +
          3;
      const auto& r = results[static_cast<std::size_t>(m - 1)];
      table.add_row({std::to_string(m), std::to_string(bps),
                     metrics::fmt(0.1 * bps, 2),
                     r.sync_latency_s ? metrics::fmt(*r.sync_latency_s, 2)
                                      : "-"});
    }
    table.print(std::cout);
  }

  // ---- Lemma 2 reference-change excursion ---------------------------------
  std::cout << "\n-- Lemma 2: departure excursion vs (m, l) --\n";
  {
    struct Case {
      int l;
      int m;
    };
    const std::vector<Case> cases{{1, 4}, {1, 1}, {2, 5}, {3, 6}};
    std::vector<run::Scenario> scenarios;
    for (const Case c : cases) {
      run::Scenario s;
      s.protocol = run::ProtocolKind::kSstsp;
      s.num_nodes = 50;
      s.duration_s = 100.0;
      s.seed = 2006;
      s.sstsp.l = c.l;
      s.sstsp.m = c.m;
      s.sstsp.chain_length = 1100;
      s.reference_departures_s = {60.0};
      s.monitor = true;
      scenarios.push_back(s);
    }
    const auto results = run::run_sweep(scenarios);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      report.add_run("lemma2_l" + std::to_string(cases[i].l) + "_m" +
                         std::to_string(cases[i].m),
                     scenarios[i], results[i]);
    }
    metrics::TextTable table({"l", "m", "model bound (us)",
                              "measured excursion (us)"});
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const auto pre = results[i].max_diff.quantile_in(0.9, 40.0, 59.0);
      const double bound = analysis::reference_change_error_bound_us(
          cases[i].m, cases[i].l, pre.value_or(8.0), 3.0);
      const auto exc = results[i].max_diff.max_in(60.0, 70.0);
      table.add_row({std::to_string(cases[i].l), std::to_string(cases[i].m),
                     metrics::fmt(bound + 2.0 * 220.0 * 0.1 * (cases[i].l + 3),
                                  1),  // + free-run drift over l+3 BPs
                     exc ? metrics::fmt(*exc, 1) : "-"});
    }
    table.print(std::cout);
    std::cout << "(model bound = |m-l-3|/m * pre-error + 2 eps + free-run "
                 "drift during the l+3 BP gap)\n";
  }

  // ---- TSF drought scale ---------------------------------------------------
  std::cout << "\n-- TSF: slotted-contention model vs simulated error --\n";
  {
    std::vector<run::Scenario> scenarios;
    const std::vector<int> sizes{50, 100, 200};
    for (const int n : sizes) {
      run::Scenario s;
      s.protocol = run::ProtocolKind::kTsf;
      s.num_nodes = n;
      s.duration_s = 120.0;
      s.seed = 2006;
      s.monitor = true;
      scenarios.push_back(s);
    }
    const auto results = run::run_sweep(scenarios);
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      report.add_run("tsf_n" + std::to_string(scenarios[i].num_nodes),
                     scenarios[i], results[i]);
    }
    metrics::TextTable table({"N", "P(success)/BP", "expected drought (BPs)",
                              "model drift scale (us)",
                              "measured p99 (us)"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const int n = sizes[i];
      table.add_row(
          {std::to_string(n),
           metrics::fmt(analysis::tsf_success_probability(n, 30), 3),
           metrics::fmt(analysis::tsf_expected_drought_bps(n, 30), 1),
           metrics::fmt(analysis::tsf_expected_drift_us(n, 30, kBpUs, 190.0),
                        1),
           results[i].steady_p99_us ? metrics::fmt(*results[i].steady_p99_us, 1)
                                    : "-"});
    }
    table.print(std::cout);
    std::cout << "(the model idealizes slotted contention; the simulator's "
                 "CCA-window physics differ,\n so agreement in scale — not "
                 "value — is the success criterion)\n";
  }
  report.write();
  return 0;
}
