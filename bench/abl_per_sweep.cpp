// ABL-PER — robustness to beacon loss.
//
// The paper's evaluation uses PER = 0.01 %; this ablation stresses the
// missed-beacon machinery (l, election backoff, µTESLA disclosure gaps) at
// losses up to 500x that.  SSTSP's per-beacon adjustment makes full use of
// every beacon that does arrive (Lemma 1 contraction per received beacon),
// so accuracy should degrade gracefully.
#include <vector>

#include "bench_common.h"
#include "runner/sweep.h"

int main() {
  using namespace sstsp;
  bench::banner("ABL-PER", "Packet error rate sweep — SSTSP vs TSF",
                "graceful degradation; spurious elections suppressed by l");

  const std::vector<double> pers{1e-4, 1e-3, 1e-2, 5e-2};
  std::vector<run::Scenario> scenarios;
  for (const auto kind : {run::ProtocolKind::kSstsp, run::ProtocolKind::kTsf}) {
    for (const double per : pers) {
      run::Scenario s;
      s.protocol = kind;
      s.num_nodes = 50;
      s.duration_s = 200.0;
      s.seed = 2006;
      s.phy.packet_error_rate = per;
      s.sstsp.l = 3;  // the paper's own mitigation for lossy channels
      s.sstsp.chain_length = 2200;
      s.monitor = true;
      scenarios.push_back(s);
    }
  }
  const auto results = run::run_sweep(scenarios);

  bench::JsonReport report("abl_per_sweep");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    report.add_run(
        std::string(run::protocol_name(scenarios[i].protocol)) + "_per" +
            metrics::fmt(scenarios[i].phy.packet_error_rate * 100.0, 2),
        scenarios[i], results[i]);
  }

  metrics::TextTable table({"protocol", "PER", "p99 err (us)", "max err (us)",
                            "elections", "PER drops"});
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    const auto& r = results[i];
    table.add_row({run::protocol_name(s.protocol),
                   metrics::fmt(s.phy.packet_error_rate * 100.0, 2) + " %",
                   r.steady_p99_us ? metrics::fmt(*r.steady_p99_us, 2) : "-",
                   r.steady_max_us ? metrics::fmt(*r.steady_max_us, 2) : "-",
                   std::to_string(r.honest.elections_won),
                   std::to_string(r.channel.per_drops)});
  }
  table.print(std::cout);
  report.write();
  return 0;
}
