// FIG1 — "Maximum clock difference: TSF, 100 and 300 nodes" (paper Fig. 1).
//
// Reproduces the paper's §5 environment for plain IEEE 802.11 TSF: 1000 s,
// w = 30, BP = 0.1 s, PER = 0.01 %, 5 % churn every 200 s.  The shape to
// reproduce: the max clock difference repeatedly climbs far beyond the
// 25 us industrial expectation (fastest-node asynchronization + beacon
// collisions), visibly worse at 300 nodes than at 100.
#include "bench_common.h"

int main() {
  using namespace sstsp;
  bench::banner("FIG1", "Maximum clock difference — TSF, 100 & 300 nodes",
                "drift grows with N; sawtooth spikes of 100s-1000s of us "
                "(scalability problem)");

  bench::JsonReport report("fig1");
  for (const int n : {100, 300}) {
    auto scenario = run::Scenario::paper_section5(run::ProtocolKind::kTsf, n,
                                                  /*seed=*/2006);
    scenario.monitor = true;
    const auto result = run::run_scenario(scenario);
    report.add_run("tsf_n" + std::to_string(n), scenario, result);
    std::cout << "\n--- TSF, N = " << n << " ---\n";
    bench::dump_series(result.max_diff, "fig1_tsf_n" + std::to_string(n),
                       /*bucket_s=*/20.0, /*log_scale=*/true);
    bench::summarize(result, scenario.duration_s);
    std::cout << "fraction of samples above 25 us: ";
    std::size_t above = 0;
    for (const auto& p : result.max_diff.points()) {
      if (p.value_us > run::kSyncThresholdUs) ++above;
    }
    std::cout << metrics::fmt(100.0 * static_cast<double>(above) /
                                  static_cast<double>(result.max_diff.size()),
                              1)
              << " %\n";
  }
  report.write();
  return 0;
}
