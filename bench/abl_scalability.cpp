// ABL-SCALE — scalability comparison across the protocol family.
//
// The paper positions SSTSP against TSF and its contention-tuning
// improvements (ATSP, TATSP [4], SATSF [10]), arguing that priority tweaks
// mitigate but do not remove the contention bottleneck, while SSTSP removes
// it "from its root" (one reference beacon per BP, no per-BP contention).
// This bench sweeps N and reports post-stabilization error and traffic.
//
// Every run uses the sharded parallel kernel (Scenario::threads /
// Scenario::shards, DESIGN.md §12) instead of the old process-level
// SSTSP_BENCH_THREADS sweep: each scenario shards its own deployment, which
// is what actually scales past n = 2000, and results stay bit-identical for
// any worker-thread count.  The shard count is pinned so the numbers are
// machine-independent; the invariant monitor is unsupported on the sharded
// kernel, so this bench no longer enables it (tests/ covers the invariants
// on the single-threaded kernel).
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "runner/experiment.h"

int main() {
  using namespace sstsp;
  bench::banner("ABL-SCALE", "Steady-state error vs network size, all "
                             "protocols",
                "TSF degrades sharply with N; ATSP/TATSP/SATSF degrade "
                "more slowly; SSTSP stays flat");

  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));

  // Full protocol family at the paper's sizes, then an extended axis for
  // the two protocols the paper's scalability argument hinges on.
  const std::vector<int> sizes{100, 200, 300, 500};
  const std::vector<run::ProtocolKind> kinds{
      run::ProtocolKind::kTsf, run::ProtocolKind::kAtsp,
      run::ProtocolKind::kTatsp, run::ProtocolKind::kSatsf,
      run::ProtocolKind::kRentelKunz, run::ProtocolKind::kSstsp};
  const std::vector<int> extended_sizes{1000, 2000, 5000};
  const std::vector<run::ProtocolKind> extended_kinds{
      run::ProtocolKind::kTsf, run::ProtocolKind::kSstsp};

  std::vector<run::Scenario> scenarios;
  const auto add_point = [&](run::ProtocolKind kind, int n) {
    run::Scenario s;
    s.protocol = kind;
    s.num_nodes = n;
    s.duration_s = 200.0;
    s.seed = 2006;
    s.sstsp.chain_length = 2200;
    s.threads = hw;
    s.shards = 8;  // pinned: same event stream on every machine
    scenarios.push_back(s);
  };
  for (const auto kind : kinds) {
    for (const int n : sizes) add_point(kind, n);
  }
  for (const auto kind : extended_kinds) {
    for (const int n : extended_sizes) add_point(kind, n);
  }

  std::vector<run::RunResult> results;
  results.reserve(scenarios.size());
  for (const auto& s : scenarios) {
    results.push_back(run::run_scenario(s));
  }

  bench::JsonReport report("abl_scalability");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    report.add_run(std::string(run::protocol_name(scenarios[i].protocol)) +
                       "_n" + std::to_string(scenarios[i].num_nodes),
                   scenarios[i], results[i]);
  }

  metrics::TextTable table(
      {"protocol", "N", "p99 err (us)", "max err (us)", "latency (s)",
       "beacons", "collided"});
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    const auto& r = results[i];
    table.add_row(
        {run::protocol_name(s.protocol), std::to_string(s.num_nodes),
         r.steady_p99_us ? metrics::fmt(*r.steady_p99_us, 2) : "-",
         r.steady_max_us ? metrics::fmt(*r.steady_max_us, 2) : "-",
         r.sync_latency_s ? metrics::fmt(*r.sync_latency_s, 2) : "never",
         std::to_string(r.channel.transmissions),
         std::to_string(r.channel.collided_transmissions)});
  }
  table.print(std::cout);
  report.write();
  return 0;
}
