// ABL-SCALE — scalability comparison across the protocol family.
//
// The paper positions SSTSP against TSF and its contention-tuning
// improvements (ATSP, TATSP [4], SATSF [10]), arguing that priority tweaks
// mitigate but do not remove the contention bottleneck, while SSTSP removes
// it "from its root" (one reference beacon per BP, no per-BP contention).
// This bench sweeps N and reports post-stabilization error and traffic.
#include <vector>

#include "bench_common.h"
#include "runner/sweep.h"

int main() {
  using namespace sstsp;
  bench::banner("ABL-SCALE", "Steady-state error vs network size, all "
                             "protocols",
                "TSF degrades sharply with N; ATSP/TATSP/SATSF degrade "
                "more slowly; SSTSP stays flat");

  const std::vector<int> sizes{100, 200, 300, 500};
  const std::vector<run::ProtocolKind> kinds{
      run::ProtocolKind::kTsf, run::ProtocolKind::kAtsp,
      run::ProtocolKind::kTatsp, run::ProtocolKind::kSatsf,
      run::ProtocolKind::kRentelKunz, run::ProtocolKind::kSstsp};

  std::vector<run::Scenario> scenarios;
  for (const auto kind : kinds) {
    for (const int n : sizes) {
      run::Scenario s;
      s.protocol = kind;
      s.num_nodes = n;
      s.duration_s = 200.0;
      s.seed = 2006;
      s.sstsp.chain_length = 2200;
      s.monitor = true;
      scenarios.push_back(s);
    }
  }
  const auto results = run::run_sweep(scenarios, bench::bench_threads());

  bench::JsonReport report("abl_scalability");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    report.add_run(std::string(run::protocol_name(scenarios[i].protocol)) +
                       "_n" + std::to_string(scenarios[i].num_nodes),
                   scenarios[i], results[i]);
  }

  metrics::TextTable table(
      {"protocol", "N", "p99 err (us)", "max err (us)", "latency (s)",
       "beacons", "collided"});
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    const auto& r = results[i];
    table.add_row(
        {run::protocol_name(s.protocol), std::to_string(s.num_nodes),
         r.steady_p99_us ? metrics::fmt(*r.steady_p99_us, 2) : "-",
         r.steady_max_us ? metrics::fmt(*r.steady_max_us, 2) : "-",
         r.sync_latency_s ? metrics::fmt(*r.sync_latency_s, 2) : "never",
         std::to_string(r.channel.transmissions),
         std::to_string(r.channel.collided_transmissions)});
  }
  table.print(std::cout);
  report.write();
  return 0;
}
