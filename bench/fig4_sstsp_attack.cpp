// FIG4 — "Maximum clock difference: SSTSP, 500 nodes, an attacker"
// (paper Fig. 4).
//
// The same attack window (400-600 s), but against SSTSP the adversary must
// be an *internal* attacker: a compromised node with a valid published hash
// chain.  It seizes the reference role (emitting ahead of the honest
// reference, which defers and yields) and feeds timestamps crafted to pass
// the guard-time check.  The paper's claim: the attacker can bias the
// common "virtual clock" but cannot desynchronize the network — the max
// clock difference among honest nodes stays bounded throughout.
#include "bench_common.h"

int main() {
  using namespace sstsp;
  bench::banner("FIG4", "Maximum clock difference — SSTSP, 500 nodes, "
                        "internal attacker active 400-600 s",
                "network stays synchronized (max difference bounded, no "
                "explosion) despite the attacker holding the reference role");

  auto scenario = run::Scenario::paper_section5(run::ProtocolKind::kSstsp, 500,
                                                /*seed=*/2006);
  scenario.attack = "internal-ref";
  scenario.sstsp_attack.start_s = 400.0;
  scenario.sstsp_attack.end_s = 600.0;
  scenario.monitor = true;
  const auto result = run::run_scenario(scenario);
  bench::JsonReport report("fig4");
  report.add_run("sstsp_attack", scenario, result);

  bench::dump_series(result.max_diff, "fig4_sstsp_attack", 20.0,
                     /*log_scale=*/false);
  bench::summarize(result, scenario.duration_s);

  metrics::TextTable table({"window", "max clock diff (us)"});
  struct Win {
    const char* name;
    double a, b;
  };
  for (const Win w : {Win{"before attack (100-400 s)", 100, 400},
                      Win{"during attack (400-600 s)", 400, 600},
                      Win{"after attack (650-1000 s)", 650, 1000}}) {
    const auto mx = result.max_diff.max_in(w.a, w.b);
    table.add_row({w.name, mx ? metrics::fmt(*mx, 1) : "-"});
  }
  table.print(std::cout);

  std::cout << "honest-side security counters: guard rejections = "
            << result.honest.rejected_guard
            << ", interval rejections = " << result.honest.rejected_interval
            << ", key rejections = " << result.honest.rejected_key
            << ", demotions = " << result.honest.demotions << '\n';
  if (result.attacker) {
    std::cout << "attacker transmitted " << result.attacker->beacons_sent
              << " secured beacons while holding the reference role\n";
  }
  report.write();
  return 0;
}
