// Shared helpers for the figure/table reproduction binaries.
//
// Every bench binary prints (a) what the paper reports for this artifact,
// (b) the measured reproduction as an ASCII table/strip-chart, and (c)
// writes the raw series to CSV under bench_out/ so the curves can be
// re-plotted with any tool.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/report.h"
#include "obs/json.h"
#include "obs/provenance.h"
#include "runner/experiment.h"
#include "runner/json_report.h"

namespace sstsp::bench {

inline std::string out_dir() {
  const char* env = std::getenv("SSTSP_BENCH_OUT");
  std::string dir = (env != nullptr) ? env : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Worker-thread count for run_sweep-based benches: the SSTSP_BENCH_THREADS
/// environment variable when set (0 = hardware concurrency), otherwise 0.
/// Per-point results are independent of the thread count — each scenario
/// runs on its own Simulator with its own seeded RNG streams (verified by
/// tests/runner_determinism_test.cpp).
inline unsigned bench_threads() {
  const char* env = std::getenv("SSTSP_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<unsigned>(v) : 0;
}

inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << id << " — " << title << '\n'
            << "paper: " << paper_claim << '\n'
            << "================================================================\n";
}

inline void dump_series(const metrics::Series& series, const std::string& name,
                        double bucket_s, bool log_scale) {
  metrics::print_ascii_series(std::cout, series, bucket_s, log_scale);
  const std::string path = out_dir() + "/" + name + ".csv";
  if (metrics::write_csv(series, path, "max_clock_diff_us")) {
    std::cout << "(series written to " << path << ")\n";
  }
}

inline void summarize(const run::RunResult& r, double duration_s) {
  std::cout << "sync latency (<25 us sustained): "
            << (r.sync_latency_s ? metrics::fmt(*r.sync_latency_s, 2) + " s"
                                 : std::string("never"))
            << " | steady max: "
            << (r.steady_max_us ? metrics::fmt(*r.steady_max_us, 2) + " us"
                                : std::string("n/a"))
            << " | steady p99: "
            << (r.steady_p99_us ? metrics::fmt(*r.steady_p99_us, 2) + " us"
                                : std::string("n/a"))
            << '\n';
  std::cout << "traffic: " << r.channel.transmissions << " beacons ("
            << r.channel.collided_transmissions << " collided), "
            << r.channel.bytes_on_air << " bytes on air over "
            << metrics::fmt(duration_s, 0) << " s\n";
}

/// Machine-readable companion to each bench's text output: accumulates the
/// bench's runs (full RunResult serialization, metrics registry included)
/// into bench_out/<id>.metrics.json as
///
///   {"bench":"fig2","runs":[{"label":...,"run":{...}},
///                           {"label":...,"values":{...}}]}
///
/// Benches that don't go through run_scenario (abl_multihop's line-topology
/// driver) use add_values() to report their custom quantities instead.
class JsonReport {
 public:
  explicit JsonReport(const std::string& id)
      : path_(out_dir() + "/" + id + ".metrics.json"), os_(path_), w_(os_) {
    w_.begin_object();
    w_.kv("bench", id);
    w_.key("runs").begin_array();
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add_run(const std::string& label, const run::Scenario& scenario,
               const run::RunResult& result) {
    w_.begin_object();
    w_.kv("label", label);
    w_.key("run");
    run::append_run_json(w_, scenario, result);
    w_.end_object();
  }

  void add_values(const std::string& label,
                  const std::vector<std::pair<std::string, double>>& values) {
    w_.begin_object();
    w_.kv("label", label);
    w_.key("values").begin_object();
    for (const auto& [key, value] : values) w_.kv(key, value);
    w_.end_object();
    w_.end_object();
  }

  /// Finishes the document; call once at the end of main.
  void write() {
    w_.end_array();
    w_.end_object();
    os_ << '\n';
    os_.close();
    std::cout << "(metrics written to " << path_ << ")\n";
  }

 private:
  std::string path_;
  std::ofstream os_;
  obs::json::Writer w_;
};

/// One measured perf-smoke scenario: throughput + cost of a pinned run.
struct PerfSample {
  std::string label;
  std::string protocol;
  int nodes{0};
  /// Worker threads of the sharded kernel (0 = legacy single-threaded
  /// kernel).  Recorded so per-thread-count lanes stay distinguishable in
  /// the baseline even across machines with different core counts.
  int threads{0};
  double sim_seconds{0.0};
  double wall_seconds{0.0};
  std::uint64_t events{0};
  std::uint64_t deliveries{0};
  long peak_rss_kb{0};  ///< process-wide high-water mark at sample time

  [[nodiscard]] double events_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(events) / wall_seconds
                              : 0.0;
  }
  [[nodiscard]] double deliveries_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(deliveries) / wall_seconds
                              : 0.0;
  }
};

/// Shared writer for the perf-regression trajectory (BENCH_perf.json): the
/// committed copy at the repository root is the baseline the CI release
/// lane compares fresh runs against (tools/check_perf_regression.py).
inline void write_perf_json(const std::string& path,
                            const std::vector<PerfSample>& samples) {
  std::ofstream os(path);
  obs::json::Writer w(os);
  w.begin_object();
  w.kv("bench", "perf_smoke");
  w.kv("schema_version", static_cast<std::int64_t>(1));
  w.key("samples").begin_array();
  for (const PerfSample& s : samples) {
    w.begin_object();
    w.kv("label", s.label);
    w.kv("protocol", s.protocol);
    w.kv("nodes", static_cast<std::int64_t>(s.nodes));
    w.kv("threads", static_cast<std::int64_t>(s.threads));
    w.kv("sim_seconds", s.sim_seconds);
    w.kv("wall_seconds", s.wall_seconds);
    w.kv("events", static_cast<std::int64_t>(s.events));
    w.kv("events_per_sec", s.events_per_second());
    w.kv("deliveries", static_cast<std::int64_t>(s.deliveries));
    w.kv("deliveries_per_sec", s.deliveries_per_second());
    w.kv("peak_rss_kb", static_cast<std::int64_t>(s.peak_rss_kb));
    w.end_object();
  }
  w.end_array();
  // Provenance (git sha, compiler, build flags, host): a perf number with
  // no record of what built it is uncomparable months later.
  obs::append_provenance_json(w);
  w.end_object();
  os << '\n';
  std::cout << "(perf samples written to " << path << ")\n";
}

}  // namespace sstsp::bench
