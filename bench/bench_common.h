// Shared helpers for the figure/table reproduction binaries.
//
// Every bench binary prints (a) what the paper reports for this artifact,
// (b) the measured reproduction as an ASCII table/strip-chart, and (c)
// writes the raw series to CSV under bench_out/ so the curves can be
// re-plotted with any tool.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/report.h"
#include "obs/json.h"
#include "runner/experiment.h"
#include "runner/json_report.h"

namespace sstsp::bench {

inline std::string out_dir() {
  const char* env = std::getenv("SSTSP_BENCH_OUT");
  std::string dir = (env != nullptr) ? env : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << id << " — " << title << '\n'
            << "paper: " << paper_claim << '\n'
            << "================================================================\n";
}

inline void dump_series(const metrics::Series& series, const std::string& name,
                        double bucket_s, bool log_scale) {
  metrics::print_ascii_series(std::cout, series, bucket_s, log_scale);
  const std::string path = out_dir() + "/" + name + ".csv";
  if (metrics::write_csv(series, path, "max_clock_diff_us")) {
    std::cout << "(series written to " << path << ")\n";
  }
}

inline void summarize(const run::RunResult& r, double duration_s) {
  std::cout << "sync latency (<25 us sustained): "
            << (r.sync_latency_s ? metrics::fmt(*r.sync_latency_s, 2) + " s"
                                 : std::string("never"))
            << " | steady max: "
            << (r.steady_max_us ? metrics::fmt(*r.steady_max_us, 2) + " us"
                                : std::string("n/a"))
            << " | steady p99: "
            << (r.steady_p99_us ? metrics::fmt(*r.steady_p99_us, 2) + " us"
                                : std::string("n/a"))
            << '\n';
  std::cout << "traffic: " << r.channel.transmissions << " beacons ("
            << r.channel.collided_transmissions << " collided), "
            << r.channel.bytes_on_air << " bytes on air over "
            << metrics::fmt(duration_s, 0) << " s\n";
}

/// Machine-readable companion to each bench's text output: accumulates the
/// bench's runs (full RunResult serialization, metrics registry included)
/// into bench_out/<id>.metrics.json as
///
///   {"bench":"fig2","runs":[{"label":...,"run":{...}},
///                           {"label":...,"values":{...}}]}
///
/// Benches that don't go through run_scenario (abl_multihop's line-topology
/// driver) use add_values() to report their custom quantities instead.
class JsonReport {
 public:
  explicit JsonReport(const std::string& id)
      : path_(out_dir() + "/" + id + ".metrics.json"), os_(path_), w_(os_) {
    w_.begin_object();
    w_.kv("bench", id);
    w_.key("runs").begin_array();
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add_run(const std::string& label, const run::Scenario& scenario,
               const run::RunResult& result) {
    w_.begin_object();
    w_.kv("label", label);
    w_.key("run");
    run::append_run_json(w_, scenario, result);
    w_.end_object();
  }

  void add_values(const std::string& label,
                  const std::vector<std::pair<std::string, double>>& values) {
    w_.begin_object();
    w_.kv("label", label);
    w_.key("values").begin_object();
    for (const auto& [key, value] : values) w_.kv(key, value);
    w_.end_object();
    w_.end_object();
  }

  /// Finishes the document; call once at the end of main.
  void write() {
    w_.end_array();
    w_.end_object();
    os_ << '\n';
    os_.close();
    std::cout << "(metrics written to " << path_ << ")\n";
  }

 private:
  std::string path_;
  std::ofstream os_;
  obs::json::Writer w_;
};

}  // namespace sstsp::bench
