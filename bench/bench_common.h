// Shared helpers for the figure/table reproduction binaries.
//
// Every bench binary prints (a) what the paper reports for this artifact,
// (b) the measured reproduction as an ASCII table/strip-chart, and (c)
// writes the raw series to CSV under bench_out/ so the curves can be
// re-plotted with any tool.
#pragma once

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "metrics/report.h"
#include "runner/experiment.h"

namespace sstsp::bench {

inline std::string out_dir() {
  const char* env = std::getenv("SSTSP_BENCH_OUT");
  std::string dir = (env != nullptr) ? env : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

inline void banner(const std::string& id, const std::string& title,
                   const std::string& paper_claim) {
  std::cout << "================================================================\n"
            << id << " — " << title << '\n'
            << "paper: " << paper_claim << '\n'
            << "================================================================\n";
}

inline void dump_series(const metrics::Series& series, const std::string& name,
                        double bucket_s, bool log_scale) {
  metrics::print_ascii_series(std::cout, series, bucket_s, log_scale);
  const std::string path = out_dir() + "/" + name + ".csv";
  if (metrics::write_csv(series, path, "max_clock_diff_us")) {
    std::cout << "(series written to " << path << ")\n";
  }
}

inline void summarize(const run::RunResult& r, double duration_s) {
  std::cout << "sync latency (<25 us sustained): "
            << (r.sync_latency_s ? metrics::fmt(*r.sync_latency_s, 2) + " s"
                                 : std::string("never"))
            << " | steady max: "
            << (r.steady_max_us ? metrics::fmt(*r.steady_max_us, 2) + " us"
                                : std::string("n/a"))
            << " | steady p99: "
            << (r.steady_p99_us ? metrics::fmt(*r.steady_p99_us, 2) + " us"
                                : std::string("n/a"))
            << '\n';
  std::cout << "traffic: " << r.channel.transmissions << " beacons ("
            << r.channel.collided_transmissions << " collided), "
            << r.channel.bytes_on_air << " bytes on air over "
            << metrics::fmt(duration_s, 0) << " s\n";
}

}  // namespace sstsp::bench
