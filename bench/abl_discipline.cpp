// ABL-DISCIPLINE — the clock-discipline ablation behind DESIGN.md §14: one
// seeded scenario swept across {paper, rls, holdover} x a grid of clock
// environments (quiet crystals, a thermal drift ramp, random-walk frequency
// noise, and two clock-drift fault plans).  The paper's §3.3 two-point
// solver is the bit-identical default everywhere else in the repo; this
// matrix is where the alternatives earn their keep.  Acceptance: the RLS
// discipline must beat the paper solver's steady-state max offset by >= 20%
// under both drift fault plans.
#include <cmath>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "clock/drift_model.h"
#include "core/discipline.h"
#include "fault/plan.h"
#include "runner/sweep.h"

namespace {

struct Env {
  std::string label;
  sstsp::fault::FaultPlan plan;
  sstsp::clk::DriftStress stress;
};

struct Disc {
  std::string name;
};

/// A thermal transient as a clock-fault train: a raised-cosine frequency
/// pulse peaking at `peak_ppm`, spanning [start_s, start_s + span_s] on
/// `node`, rendered as drift deltas every `dt_s`.  Crystal warm-up curves
/// are smooth — per-sample the slew hides inside timestamp quantization,
/// but at the peak it walks the rate several ppm per second.
void thermal_pulse(sstsp::fault::FaultPlan* plan, sstsp::mac::NodeId node,
                   double start_s, double span_s, double peak_ppm,
                   double dt_s = 0.25) {
  const double two_pi = 6.28318530717958647692;
  auto profile = [&](double t_s) {
    if (t_s <= 0.0 || t_s >= span_s) return 0.0;
    return peak_ppm * (1.0 - std::cos(two_pi * t_s / span_s)) / 2.0;
  };
  double prev = 0.0;
  for (double t = dt_s; t <= span_s; t += dt_s) {
    const double now = profile(t);
    sstsp::fault::ClockFault f;
    f.node = node;
    f.at_s = start_s + t;
    f.drift_delta_ppm = now - prev;
    plan->clock_faults.push_back(f);
    prev = now;
  }
}

}  // namespace

int main() {
  using namespace sstsp;
  bench::banner("ABL-DISCIPLINE",
                "Clock-discipline matrix: paper 2-point solve vs RLS drift "
                "tracking vs holdover",
                "paper solver swings under drift transients; windowed RLS "
                "must cut steady-state max offset >= 20% on drift plans");

  // Two clock-drift fault plans (the acceptance pair): thermal transients
  // the adjustment layer must re-learn from authenticated beacons alone.
  fault::FaultPlan plan_a;  // a warm-up/cool-down cycle on two nodes
  thermal_pulse(&plan_a, 3, 15.0, 60.0, 80.0);
  thermal_pulse(&plan_a, 7, 25.0, 50.0, -40.0);

  fault::FaultPlan plan_b;  // a deeper swing plus a second overlapping node
  thermal_pulse(&plan_b, 2, 10.0, 70.0, 100.0);
  thermal_pulse(&plan_b, 9, 25.0, 55.0, 60.0);

  clk::DriftStress ramp;
  ramp.kind = clk::DriftStressKind::kTempRamp;
  ramp.ramp_ppm_per_s = 0.8;
  ramp.ramp_start_s = 20.0;
  ramp.ramp_end_s = 70.0;

  clk::DriftStress walk;
  walk.kind = clk::DriftStressKind::kRandomWalk;
  walk.walk_sigma_ppm = 0.3;
  walk.period_s = 0.5;

  const std::vector<Env> envs{
      {"baseline", {}, {}},
      {"temp_ramp", {}, ramp},
      {"random_walk", {}, walk},
      {"drift_plan_a", plan_a, {}},
      {"drift_plan_b", plan_b, {}},
  };
  const std::vector<Disc> discs{{"paper"}, {"rls"}, {"holdover"}};

  std::vector<run::Scenario> scenarios;
  std::vector<std::string> labels;
  for (const Env& env : envs) {
    for (const Disc& disc : discs) {
      run::Scenario s;
      s.protocol = run::ProtocolKind::kSstsp;
      s.num_nodes = 10;
      s.duration_s = 90.0;
      s.seed = 3;
      s.sstsp.chain_length = 2000;
      s.preestablished_reference = true;
      s.monitor = true;
      s.sstsp.discipline.name = disc.name;
      s.clock_stress = env.stress;
      s.faults = env.plan;
      scenarios.push_back(s);
      labels.push_back(env.label + "/" + disc.name);
    }
  }
  const auto results = run::run_sweep(scenarios);

  bench::JsonReport report("abl_discipline");
  for (std::size_t i = 0; i < labels.size(); ++i) {
    report.add_run(labels[i], scenarios[i], results[i]);
  }

  auto steady = [&](std::size_t i) {
    return results[i].steady_max_us ? *results[i].steady_max_us : -1.0;
  };

  metrics::TextTable table({"environment", "discipline", "steady max (us)",
                            "steady p99 (us)", "applied", "screened",
                            "vs paper"});
  bool accepted = true;
  for (std::size_t e = 0; e < envs.size(); ++e) {
    const std::size_t base = e * discs.size();  // the paper cell of this row
    for (std::size_t d = 0; d < discs.size(); ++d) {
      const std::size_t i = base + d;
      const run::RunResult& r = results[i];
      const auto& verdicts = r.honest.discipline_verdicts;
      const auto applied =
          verdicts[static_cast<std::size_t>(
              core::DisciplineVerdict::kApplied)] +
          verdicts[static_cast<std::size_t>(
              core::DisciplineVerdict::kHoldoverCoast)];
      const auto screened = verdicts[static_cast<std::size_t>(
          core::DisciplineVerdict::kInnovationRejected)];
      std::string vs = "-";
      if (d > 0 && steady(base) > 0.0 && steady(i) > 0.0) {
        // Positive = this discipline beats the paper cell of the same row.
        const double gain = 100.0 * (1.0 - steady(i) / steady(base));
        vs = metrics::fmt(gain, 1) + "%";
      }
      table.add_row({envs[e].label, discs[d].name,
                     steady(i) >= 0.0 ? metrics::fmt(steady(i), 2) : "n/a",
                     r.steady_p99_us ? metrics::fmt(*r.steady_p99_us, 2)
                                     : "n/a",
                     std::to_string(applied), std::to_string(screened), vs});
    }
  }
  table.print(std::cout);
  report.write();

  // Acceptance: RLS beats the paper solver's steady-state max offset by
  // >= 20% under both clock-drift fault plans.
  for (const std::string& plan : {std::string("drift_plan_a"),
                                  std::string("drift_plan_b")}) {
    std::size_t e = 0;
    while (e < envs.size() && envs[e].label != plan) ++e;
    const std::size_t base = e * discs.size();
    const double paper = steady(base);
    const double rls = steady(base + 1);
    if (paper <= 0.0 || rls <= 0.0 || rls > 0.8 * paper) {
      std::cerr << "FAIL: " << plan << ": rls steady " << rls
                << " us not >= 20% under paper steady " << paper << " us\n";
      accepted = false;
    } else {
      std::cout << plan << ": rls " << metrics::fmt(rls, 2) << " us vs paper "
                << metrics::fmt(paper, 2) << " us ("
                << metrics::fmt(100.0 * (1.0 - rls / paper), 1)
                << "% better)\n";
    }
  }
  return accepted ? 0 : 1;
}
