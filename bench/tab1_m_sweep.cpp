// TAB1 — "Maximum clock difference & synchronization latency vs m"
// (paper Table 1).
//
// Paper setup: initial clock offsets uniform in (-112 us, 112 us); the
// network counts as synchronized when the max clock difference drops below
// 25 us.  Paper values:
//
//     m | latency | error          shape: latency grows ~linearly with m,
//     1 |   0.1 s | 12 us          error drops and saturates around m = 3
//     2 |   0.4 s |  7 us          (m = 2..3 is the sweet spot).
//     3 |   0.6 s |  6 us
//     4 |   0.8 s |  6 us
//     5 |   1.1 s |  6 us
//
// We run each m twice: with a pre-established reference (isolating the
// paper's convergence latency from election time) and with a full cold
// start (election included), and report both.
#include <vector>

#include "bench_common.h"
#include "runner/sweep.h"

int main() {
  using namespace sstsp;
  bench::banner("TAB1", "Synchronization latency & error vs m",
                "latency 0.1->1.1 s increasing in m; error 12->6 us "
                "saturating at m ~ 3");

  const std::vector<int> ms{1, 2, 3, 4, 5};
  std::vector<run::Scenario> scenarios;
  for (const bool preestablished : {true, false}) {
    for (const int m : ms) {
      run::Scenario s;
      s.protocol = run::ProtocolKind::kSstsp;
      s.num_nodes = 100;
      s.duration_s = 200.0;
      s.seed = 2006;
      s.sstsp.m = m;
      s.sstsp.chain_length = 2200;
      s.preestablished_reference = preestablished;
      s.monitor = true;
      scenarios.push_back(s);
    }
  }
  const auto results = run::run_sweep(scenarios, bench::bench_threads());

  bench::JsonReport report("tab1");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    report.add_run("m" + std::to_string(s.sstsp.m) +
                       (s.preestablished_reference ? "_pre" : "_cold"),
                   s, results[i]);
  }

  metrics::TextTable table({"m", "latency (s)", "error (us)",
                            "latency cold (s)", "error cold (us)"});
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto& pre = results[i];
    const auto& cold = results[ms.size() + i];
    table.add_row(
        {std::to_string(ms[i]),
         pre.sync_latency_s ? metrics::fmt(*pre.sync_latency_s, 2) : "-",
         pre.steady_max_us ? metrics::fmt(*pre.steady_max_us, 2) : "-",
         cold.sync_latency_s ? metrics::fmt(*cold.sync_latency_s, 2) : "-",
         cold.steady_max_us ? metrics::fmt(*cold.steady_max_us, 2) : "-"});
  }
  table.print(std::cout);
  std::cout << "(latency: first time the max clock difference stays below "
               "25 us; error: max difference after stabilization;\n "
               "'cold' columns include the initial reference election)\n";
  report.write();
  return 0;
}
