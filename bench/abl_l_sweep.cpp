// ABL-L — the l parameter trade-off (paper §3.3):
//
//   "A larger value of l makes the mechanism more robust since the failure
//    to receive a beacon may be due to collision or temporary wireless
//    channel instability other than the leave of the reference node.  As
//    price, a larger l increases the synchronization error when the
//    reference node changes."  (Lemma 2: D+ <= (l+2) D-.)
//
// Two sweeps: (a) reference departure at a fixed time — the excursion after
// it should grow with l; (b) heavy packet loss — small l triggers spurious
// elections, large l rides the losses out.
#include <vector>

#include "bench_common.h"
#include "runner/sweep.h"

int main() {
  using namespace sstsp;
  bench::banner("ABL-L", "Missed-beacon tolerance l: robustness vs "
                         "reference-change error",
                "larger l -> bigger excursion at reference change, fewer "
                "spurious elections under loss");

  const std::vector<int> ls{1, 2, 3, 5};

  // (a) reference change impact.
  std::vector<run::Scenario> change;
  for (const int l : ls) {
    run::Scenario s;
    s.protocol = run::ProtocolKind::kSstsp;
    s.num_nodes = 100;
    s.duration_s = 120.0;
    s.seed = 2006;
    s.sstsp.l = l;
    s.sstsp.m = l + 3;  // the Lemma-2 optimum for each l
    s.sstsp.chain_length = 1400;
    s.reference_departures_s = {60.0};
    s.monitor = true;
    change.push_back(s);
  }
  const auto change_results = run::run_sweep(change);

  // (b) lossy channel.
  std::vector<run::Scenario> lossy;
  for (const int l : ls) {
    run::Scenario s;
    s.protocol = run::ProtocolKind::kSstsp;
    s.num_nodes = 100;
    s.duration_s = 120.0;
    s.seed = 2007;
    s.sstsp.l = l;
    s.sstsp.chain_length = 1400;
    s.phy.packet_error_rate = 0.02;  // 200x the paper's PER
    s.monitor = true;
    lossy.push_back(s);
  }
  const auto lossy_results = run::run_sweep(lossy);

  bench::JsonReport report("abl_l_sweep");
  for (std::size_t i = 0; i < ls.size(); ++i) {
    report.add_run("l" + std::to_string(ls[i]) + "_refchange", change[i],
                   change_results[i]);
    report.add_run("l" + std::to_string(ls[i]) + "_lossy", lossy[i],
                   lossy_results[i]);
  }

  metrics::TextTable table({"l", "m", "excursion after ref change (us)",
                            "steady max (us)", "elections @PER=2%",
                            "p99 @PER=2% (us)"});
  for (std::size_t i = 0; i < ls.size(); ++i) {
    const auto exc = change_results[i].max_diff.max_in(60.0, 70.0);
    const auto steady = change_results[i].steady_max_us;
    const auto lossy_p99 = lossy_results[i].steady_p99_us;
    table.add_row({std::to_string(ls[i]), std::to_string(ls[i] + 3),
                   exc ? metrics::fmt(*exc, 1) : "-",
                   steady ? metrics::fmt(*steady, 1) : "-",
                   std::to_string(lossy_results[i].honest.elections_won),
                   lossy_p99 ? metrics::fmt(*lossy_p99, 1) : "-"});
  }
  table.print(std::cout);
  report.write();
  return 0;
}
