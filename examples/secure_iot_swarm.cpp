// A day-in-the-life scenario: a 150-device sensor swarm (single-hop 802.11
// IBSS) that needs synchronized time for TDMA-style duty cycling.  Devices
// churn in and out, the elected time reference dies twice, and halfway
// through a compromised device mounts the §5 internal attack.
//
// The example drives the Network directly (rather than run_scenario) to
// interleave its own probes with the simulation and narrate what happens.
#include <iomanip>
#include <iostream>

#include "core/sstsp.h"
#include "metrics/report.h"
#include "runner/network.h"

int main() {
  using namespace sstsp;

  run::Scenario scenario;
  scenario.protocol = run::ProtocolKind::kSstsp;
  scenario.num_nodes = 150;
  scenario.duration_s = 300.0;
  scenario.seed = 7;
  scenario.sstsp.m = 3;
  scenario.sstsp.chain_length = 3200;
  scenario.churn = run::ChurnSpec{/*period_s=*/60.0, /*fraction=*/0.1,
                                  /*absence_s=*/25.0};
  scenario.reference_departures_s = {90.0, 210.0};
  scenario.attack = "internal-ref";
  scenario.sstsp_attack.start_s = 140.0;
  scenario.sstsp_attack.end_s = 180.0;
  scenario.sstsp_attack.skew_rate_us_per_s = 40.0;

  run::Network net(scenario);
  net.arm();

  std::cout << "secure_iot_swarm: 150 devices, 300 s, churn every 60 s,\n"
            << "reference dies at 90/210 s, internal attacker 140-180 s\n\n";
  std::cout << "  t(s)   awake  synced  ref   max_diff(us)  events\n";

  std::size_t last_elections = 0;
  std::size_t last_demotions = 0;
  for (int t = 10; t <= 300; t += 10) {
    net.run_until(t);
    int awake = 0;
    int synced = 0;
    for (std::size_t i = 0; i + 1 < net.station_count(); ++i) {
      if (net.station(i).awake()) ++awake;
      if (net.station(i).awake() &&
          net.station(i).protocol().is_synchronized()) {
        ++synced;
      }
    }
    const auto agg = net.honest_stats();
    const auto ref = net.current_reference_index();
    const auto diff = net.instant_max_diff_us();

    std::string events;
    if (agg.elections_won > last_elections) events += "ELECTION ";
    if (agg.demotions > last_demotions) events += "HANDOFF ";
    if (t == 140) events += "<- attacker seizes reference";
    if (t == 180) events += "<- attack ends, attacker rescans";
    last_elections = agg.elections_won;
    last_demotions = agg.demotions;

    std::cout << std::setw(6) << t << std::setw(8) << awake << std::setw(8)
              << synced << std::setw(6)
              << (ref ? std::to_string(*ref) : std::string("--"))
              << std::setw(13)
              << (diff ? metrics::fmt(*diff, 1) : std::string("--")) << "  "
              << events << '\n';
  }

  const auto agg = net.honest_stats();
  std::cout << "\nend-of-run accounting:\n"
            << "  reference elections: " << agg.elections_won << '\n'
            << "  role hand-offs (RULE R demotions): " << agg.demotions << '\n'
            << "  coarse re-synchronizations after churn: "
            << agg.coarse_steps << '\n'
            << "  clock adjustments applied: " << agg.adjustments << '\n'
            << "  beacons rejected (guard/interval/key/MAC): "
            << agg.rejected_guard << '/' << agg.rejected_interval << '/'
            << agg.rejected_key << '/' << agg.rejected_mac << '\n'
            << "  beacons on air: " << net.channel_stats().transmissions
            << " (" << net.channel_stats().collided_transmissions
            << " collided)\n";
  std::cout << "\nNote the attack window (140-180 s): the attacker tows the "
               "swarm's shared timeline\nslowly off true time, but the "
               "devices stay mutually synchronized — TDMA slots\nkeep "
               "working.  That is exactly the paper's Fig. 4 claim.\n";
  return 0;
}
