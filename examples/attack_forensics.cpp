// Attack forensics: wire up every adversary the paper's §4 discusses
// against a small SSTSP cell and show exactly which defence layer stops
// each one.  Also demonstrates the coarse-phase outlier filters (GESD +
// threshold) on a poisoned offset sample, standalone.
#include <iostream>
#include <memory>

#include "attack/replay.h"
#include "core/coarse_sync.h"
#include "core/sstsp.h"
#include "filter/gesd.h"
#include "metrics/report.h"
#include "protocols/station.h"
#include "sim/simulator.h"

using namespace sstsp;

namespace {

struct Cell {
  sim::Simulator sim{1234};
  mac::PhyParams phy;
  std::unique_ptr<mac::Channel> channel;
  core::KeyDirectory directory;
  core::SstspConfig cfg;
  std::vector<std::unique_ptr<proto::Station>> stations;

  Cell() {
    phy.packet_error_rate = 0.0;
    cfg.chain_length = 1000;
    channel = std::make_unique<mac::Channel>(sim, phy);
  }

  proto::Station& add_station(double ppm, double offset_us) {
    const auto id = static_cast<mac::NodeId>(stations.size());
    stations.push_back(std::make_unique<proto::Station>(
        sim, *channel, id,
        clk::HardwareClock(clk::DriftModel::from_ppm(ppm), offset_us),
        mac::Position{static_cast<double>(id) * 3.0, 0.0}));
    return *stations.back();
  }

  proto::Station& add_honest(double ppm, double offset_us) {
    auto& st = add_station(ppm, offset_us);
    directory.register_node(
        st.id(), crypto::ChainParams{crypto::derive_seed(1234, st.id()),
                                     cfg.chain_length});
    st.set_protocol(std::make_unique<core::Sstsp>(st, cfg, directory,
                                                  core::Sstsp::Options{}));
    return st;
  }

  void run_all(double until_s) {
    for (auto& st : stations) {
      if (!st->awake()) st->power_on();
    }
    sim.run_until(sim::SimTime::from_sec_double(until_s));
  }

  proto::ProtocolStats totals() const {
    proto::ProtocolStats agg;
    for (const auto& st : stations) {
      if (!directory.known(st->id())) continue;
      const auto& s = st->protocol().stats();
      agg.rejected_key += s.rejected_key;
      agg.rejected_mac += s.rejected_mac;
      agg.rejected_interval += s.rejected_interval;
      agg.rejected_guard += s.rejected_guard;
      agg.adjustments += s.adjustments;
    }
    return agg;
  }

  double spread_us() const {
    double lo = 1e18, hi = -1e18;
    for (const auto& st : stations) {
      if (!directory.known(st->id()) || !st->awake()) continue;
      const double v = st->protocol().network_time_us(sim.now());
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  }
};

void banner(const char* name) {
  std::cout << "\n=== " << name << " ===\n";
}

}  // namespace

int main() {
  std::cout << "SSTSP attack forensics — which defence layer stops what\n";

  banner("external forger (no credentials)");
  {
    Cell cell;
    for (int i = 0; i < 8; ++i) cell.add_honest(-60.0 + 15.0 * i, 8.0 * i);
    auto& forger = cell.add_station(0.0, 0.0);
    forger.set_protocol(std::make_unique<attack::ExternalForger>(
        forger, attack::ExternalForger::Params{0.1, mac::kNoNode}));
    cell.run_all(30.0);
    const auto agg = cell.totals();
    std::cout << "forged beacons rejected at the DISCLOSED-KEY check: "
              << agg.rejected_key << "\n"
              << "honest adjustments unaffected: " << agg.adjustments
              << ", network spread " << metrics::fmt(cell.spread_us(), 1)
              << " us\n"
              << "-> an identity without a published hash-chain anchor "
                 "cannot produce verifiable keys (µTESLA).\n";
  }

  banner("identity spoofer (forges an honest node's id)");
  {
    Cell cell;
    for (int i = 0; i < 8; ++i) cell.add_honest(-60.0 + 15.0 * i, 8.0 * i);
    auto& forger = cell.add_station(0.0, 0.0);
    forger.set_protocol(std::make_unique<attack::ExternalForger>(
        forger, attack::ExternalForger::Params{0.1, /*spoofed=*/3}));
    cell.run_all(30.0);
    const auto agg = cell.totals();
    std::cout << "spoofed-identity beacons rejected (key/MAC): "
              << agg.rejected_key << "/" << agg.rejected_mac << '\n'
              << "-> knowing an identity is useless without its chain "
                 "seed; keys must hash to the published anchor.\n";
  }

  banner("replay attacker (records and re-transmits valid beacons)");
  {
    Cell cell;
    for (int i = 0; i < 8; ++i) cell.add_honest(-60.0 + 15.0 * i, 8.0 * i);
    auto& rep = cell.add_station(0.0, 0.0);
    rep.set_protocol(std::make_unique<attack::ReplayAttacker>(
        rep, attack::ReplayParams{5.0, 30.0, /*delay_bps=*/3}));
    cell.run_all(35.0);
    const auto agg = cell.totals();
    std::cout << "replayed beacons rejected at the INTERVAL check: "
              << agg.rejected_interval << '\n'
              << "-> a beacon replayed after its interval claims a key "
                 "that is already public; µTESLA's security condition "
                 "rejects it before any clock math runs.\n";
  }

  banner("coarse-phase poisoning (bogus offsets during (re)join scan)");
  {
    // Standalone filter demonstration: 10 honest offsets near +70 us, three
    // malicious ones trying to pull the joining node 8 ms into the future.
    core::SstspConfig cfg;
    core::CoarseSync coarse(cfg);
    sim::Rng rng(99);
    for (int i = 0; i < 10; ++i) coarse.add_offset(rng.uniform(60.0, 80.0));
    for (int i = 0; i < 3; ++i) coarse.add_offset(8000.0 + i);
    std::size_t rejected = 0;
    const auto est = coarse.estimate(&rejected);
    std::cout << "13 offset samples (3 poisoned at +8000 us) -> estimate "
              << metrics::fmt(est.value_or(-1), 1) << " us, " << rejected
              << " rejected by GESD + threshold filter\n"
              << "-> the Song-Zhu-Cao filters keep a joining node's single "
                 "coarse step honest.\n";
  }

  std::cout << "\n(The §5 headline attacks — slow-beacon flooding against "
               "TSF and the internal\nreference takeover against SSTSP — "
               "are reproduced quantitatively by\nbench/fig3_tsf_attack and "
               "bench/fig4_sstsp_attack.)\n";
  return 0;
}
