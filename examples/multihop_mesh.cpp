// Multi-hop mesh: a campus corridor of 802.11 nodes where only neighbours
// hear each other.  Demonstrates the multi-hop SSTSP extension (the paper's
// §6 future work): the time reference sits at one end, relays flood its
// timeline outward one stagger per hop, every hop µTESLA-authenticated with
// the relay's own chain.
#include <iomanip>
#include <iostream>
#include <memory>
#include <vector>

#include "clock/drift_model.h"
#include "crypto/hash_chain.h"
#include "metrics/report.h"
#include "multihop/sstsp_mh.h"

int main() {
  using namespace sstsp;

  constexpr int kNodes = 10;        // a 9-hop corridor
  constexpr double kSpacing = 40.0;  // metres between nodes
  constexpr double kRange = 55.0;    // radio range: direct neighbours only

  sim::Simulator sim(2024);
  mac::PhyParams phy;
  phy.radio_range_m = kRange;
  mac::Channel channel(sim, phy);
  core::KeyDirectory directory;
  multihop::MultiHopConfig cfg;
  cfg.base.chain_length = 2500;
  cfg.max_level = kNodes;

  std::vector<std::unique_ptr<proto::Station>> stations;
  std::vector<multihop::SstspMh*> protos;
  sim::Rng rng(99);
  for (int i = 0; i < kNodes; ++i) {
    const auto id = static_cast<mac::NodeId>(i);
    auto st = std::make_unique<proto::Station>(
        sim, channel, id,
        clk::HardwareClock(clk::DriftModel::uniform(rng),
                           rng.uniform(-60.0, 60.0)),
        mac::Position{i * kSpacing, 0.0});
    directory.register_node(
        id, crypto::ChainParams{crypto::derive_seed(2024, id),
                                cfg.base.chain_length});
    auto proto = std::make_unique<multihop::SstspMh>(
        *st, cfg, directory, multihop::SstspMh::Options{i == 0});
    protos.push_back(proto.get());
    st->set_protocol(std::move(proto));
    stations.push_back(std::move(st));
  }
  for (auto& st : stations) st->power_on();

  std::cout << "multihop_mesh: " << kNodes << " nodes, " << kSpacing
            << " m apart, radio range " << kRange
            << " m (neighbours only)\nreference at node 0; watch the tree "
               "build out one level per few beacons:\n\n";
  std::cout << "  t(s)  levels (— = not yet synchronized)        "
               "end-to-end diff\n";

  for (const double t : {0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 30.0}) {
    sim.run_until(sim::SimTime::from_sec_double(t));
    std::cout << std::setw(6) << t << "  ";
    double lo = 1e18, hi = -1e18;
    for (const auto* p : protos) {
      if (p->is_synchronized()) {
        std::cout << std::setw(3) << static_cast<int>(p->level());
        const double v = p->network_time_us(sim.now());
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      } else {
        std::cout << "  —";
      }
    }
    std::cout << "   "
              << (hi > lo ? metrics::fmt(hi - lo, 1) + " us" : std::string("—"))
              << '\n';
  }

  std::cout << "\nafter 30 s:\n";
  for (int i = 0; i < kNodes; ++i) {
    const auto& st = *protos[static_cast<std::size_t>(i)];
    std::cout << "  node " << i << ": level " << int(st.level())
              << (st.is_reference() ? " (reference)" : "")
              << ", upstream "
              << (st.upstream() == mac::kNoNode
                      ? std::string("—")
                      : std::to_string(st.upstream()))
              << ", " << st.stats().beacons_sent << " beacons relayed, "
              << st.stats().adjustments << " clock adjustments\n";
  }
  std::cout << "\nEvery relay hop re-signs with its own µTESLA chain — a "
               "forged or replayed relay\nbeacon is rejected exactly like a "
               "forged reference beacon in the single-hop case.\n";
  return 0;
}
