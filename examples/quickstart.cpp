// Quickstart: simulate a 20-node IEEE 802.11 IBSS running SSTSP for one
// minute and inspect how well the network synchronizes.
//
//   $ ./examples/quickstart
//
// The high-level entry point is runner::run_scenario: describe the network
// (protocol, size, duration, radio/protocol parameters) as a Scenario and
// get back the max-clock-difference time series plus derived metrics.
#include <iostream>

#include "metrics/report.h"
#include "runner/experiment.h"

int main() {
  using namespace sstsp;

  // 1. Describe the experiment.
  run::Scenario scenario;
  scenario.protocol = run::ProtocolKind::kSstsp;
  scenario.num_nodes = 20;
  scenario.duration_s = 60.0;
  scenario.seed = 42;              // runs are bit-reproducible per seed
  scenario.sstsp.m = 3;            // convergence aggressiveness (Table 1)
  scenario.sstsp.chain_length = 700;  // one µTESLA key per beacon period

  // 2. Run it.  One discrete-event simulation: 802.11 OFDM beaconing,
  //    contention, collisions, per-node oscillator drift, real SHA-256
  //    µTESLA authentication on every beacon.
  const run::RunResult result = run::run_scenario(scenario);

  // 3. Look at the outcome.
  std::cout << "SSTSP quickstart: " << scenario.num_nodes << " nodes, "
            << scenario.duration_s << " s\n\n";
  std::cout << "max clock difference over time (one bar per 2 s):\n";
  metrics::print_ascii_series(std::cout, result.max_diff, 2.0);

  std::cout << "\nsynchronization latency (max diff < 25 us): "
            << (result.sync_latency_s
                    ? metrics::fmt(*result.sync_latency_s, 2) + " s"
                    : std::string("not reached"))
            << '\n';
  std::cout << "steady-state max clock difference: "
            << metrics::fmt(result.steady_max_us.value_or(-1), 2) << " us\n";
  std::cout << "beacons transmitted: " << result.channel.transmissions
            << " (exactly one per beacon period once the reference is "
               "elected)\n";
  std::cout << "secured beacon bytes on air: " << result.channel.bytes_on_air
            << " (92 B per beacon: timestamp + interval + 128-bit HMAC + "
               "disclosed key)\n";
  std::cout << "beacons rejected by security checks: "
            << result.honest.rejected_key + result.honest.rejected_mac +
                   result.honest.rejected_guard +
                   result.honest.rejected_interval
            << " (benign run: expect 0)\n";
  return 0;
}
