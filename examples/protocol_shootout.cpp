// Protocol shootout: all five implemented synchronization protocols on the
// same 150-node IBSS, same seeds, same radio — TSF (IEEE 802.11 baseline),
// ATSP, TATSP, SATSF (the contention-tuning improvements the paper compares
// against) and SSTSP (the paper's contribution).
#include <iostream>
#include <vector>

#include "metrics/report.h"
#include "runner/sweep.h"

int main() {
  using namespace sstsp;

  const std::vector<run::ProtocolKind> kinds{
      run::ProtocolKind::kTsf, run::ProtocolKind::kAtsp,
      run::ProtocolKind::kTatsp, run::ProtocolKind::kSatsf,
      run::ProtocolKind::kRentelKunz, run::ProtocolKind::kSstsp};

  std::vector<run::Scenario> scenarios;
  for (const auto kind : kinds) {
    run::Scenario s;
    s.protocol = kind;
    s.num_nodes = 150;
    s.duration_s = 120.0;
    s.seed = 99;
    s.sstsp.chain_length = 1400;
    scenarios.push_back(s);
  }

  std::cout << "protocol shootout: 150 nodes, 120 s, identical conditions\n"
            << "(running " << scenarios.size() << " simulations";
#ifndef NDEBUG
  std::cout << ", debug build may be slow";
#endif
  std::cout << ")\n\n";

  const auto results = run::run_sweep(scenarios);

  metrics::TextTable table({"protocol", "latency (s)", "p99 err (us)",
                            "max err (us)", "beacons", "collided",
                            "bytes/s", "secure?"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const auto& r = results[i];
    table.add_row(
        {run::protocol_name(kinds[i]),
         r.sync_latency_s ? metrics::fmt(*r.sync_latency_s, 2) : "never",
         r.steady_p99_us ? metrics::fmt(*r.steady_p99_us, 2) : "-",
         r.steady_max_us ? metrics::fmt(*r.steady_max_us, 2) : "-",
         std::to_string(r.channel.transmissions),
         std::to_string(r.channel.collided_transmissions),
         metrics::fmt(static_cast<double>(r.channel.bytes_on_air) / 120.0, 0),
         kinds[i] == run::ProtocolKind::kSstsp ? "yes (µTESLA)" : "no"});
  }
  table.print(std::cout);

  std::cout
      << "\nreading guide:\n"
      << "  * TSF shows the fastest-node-asynchronization / collision "
         "problem at this size;\n"
      << "  * ATSP/TATSP/SATSF thin the contention and improve on TSF, but "
         "keep the same per-BP\n"
      << "    contention mechanism (and none of them authenticates "
         "anything);\n"
      << "  * SSTSP emits exactly one (authenticated) beacon per BP and "
         "achieves the tightest sync\n"
      << "    at the lowest airtime despite its bigger 92-byte frames.\n";
  return 0;
}
