# Empty compiler generated dependencies file for fig1_tsf_drift.
# This may be replaced when dependencies are built.
