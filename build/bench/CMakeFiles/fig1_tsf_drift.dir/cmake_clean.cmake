file(REMOVE_RECURSE
  "CMakeFiles/fig1_tsf_drift.dir/fig1_tsf_drift.cpp.o"
  "CMakeFiles/fig1_tsf_drift.dir/fig1_tsf_drift.cpp.o.d"
  "fig1_tsf_drift"
  "fig1_tsf_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tsf_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
