# Empty dependencies file for abl_guard_sweep.
# This may be replaced when dependencies are built.
