file(REMOVE_RECURSE
  "CMakeFiles/abl_guard_sweep.dir/abl_guard_sweep.cpp.o"
  "CMakeFiles/abl_guard_sweep.dir/abl_guard_sweep.cpp.o.d"
  "abl_guard_sweep"
  "abl_guard_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_guard_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
