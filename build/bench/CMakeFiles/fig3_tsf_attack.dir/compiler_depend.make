# Empty compiler generated dependencies file for fig3_tsf_attack.
# This may be replaced when dependencies are built.
