file(REMOVE_RECURSE
  "CMakeFiles/abl_per_sweep.dir/abl_per_sweep.cpp.o"
  "CMakeFiles/abl_per_sweep.dir/abl_per_sweep.cpp.o.d"
  "abl_per_sweep"
  "abl_per_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_per_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
