# Empty compiler generated dependencies file for abl_per_sweep.
# This may be replaced when dependencies are built.
