file(REMOVE_RECURSE
  "CMakeFiles/abl_l_sweep.dir/abl_l_sweep.cpp.o"
  "CMakeFiles/abl_l_sweep.dir/abl_l_sweep.cpp.o.d"
  "abl_l_sweep"
  "abl_l_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_l_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
