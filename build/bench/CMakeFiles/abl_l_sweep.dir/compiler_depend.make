# Empty compiler generated dependencies file for abl_l_sweep.
# This may be replaced when dependencies are built.
