# Empty dependencies file for tab1_m_sweep.
# This may be replaced when dependencies are built.
