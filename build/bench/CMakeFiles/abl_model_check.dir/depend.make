# Empty dependencies file for abl_model_check.
# This may be replaced when dependencies are built.
