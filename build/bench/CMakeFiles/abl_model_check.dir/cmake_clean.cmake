file(REMOVE_RECURSE
  "CMakeFiles/abl_model_check.dir/abl_model_check.cpp.o"
  "CMakeFiles/abl_model_check.dir/abl_model_check.cpp.o.d"
  "abl_model_check"
  "abl_model_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
