file(REMOVE_RECURSE
  "CMakeFiles/abl_multihop.dir/abl_multihop.cpp.o"
  "CMakeFiles/abl_multihop.dir/abl_multihop.cpp.o.d"
  "abl_multihop"
  "abl_multihop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
