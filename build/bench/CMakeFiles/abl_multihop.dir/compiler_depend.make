# Empty compiler generated dependencies file for abl_multihop.
# This may be replaced when dependencies are built.
