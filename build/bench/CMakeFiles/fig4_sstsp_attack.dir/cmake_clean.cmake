file(REMOVE_RECURSE
  "CMakeFiles/fig4_sstsp_attack.dir/fig4_sstsp_attack.cpp.o"
  "CMakeFiles/fig4_sstsp_attack.dir/fig4_sstsp_attack.cpp.o.d"
  "fig4_sstsp_attack"
  "fig4_sstsp_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sstsp_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
