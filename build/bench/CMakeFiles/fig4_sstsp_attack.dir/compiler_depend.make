# Empty compiler generated dependencies file for fig4_sstsp_attack.
# This may be replaced when dependencies are built.
