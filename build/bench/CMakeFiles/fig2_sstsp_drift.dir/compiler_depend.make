# Empty compiler generated dependencies file for fig2_sstsp_drift.
# This may be replaced when dependencies are built.
