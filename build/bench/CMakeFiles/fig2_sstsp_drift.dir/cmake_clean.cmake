file(REMOVE_RECURSE
  "CMakeFiles/fig2_sstsp_drift.dir/fig2_sstsp_drift.cpp.o"
  "CMakeFiles/fig2_sstsp_drift.dir/fig2_sstsp_drift.cpp.o.d"
  "fig2_sstsp_drift"
  "fig2_sstsp_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sstsp_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
