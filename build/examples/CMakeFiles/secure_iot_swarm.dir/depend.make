# Empty dependencies file for secure_iot_swarm.
# This may be replaced when dependencies are built.
