file(REMOVE_RECURSE
  "CMakeFiles/secure_iot_swarm.dir/secure_iot_swarm.cpp.o"
  "CMakeFiles/secure_iot_swarm.dir/secure_iot_swarm.cpp.o.d"
  "secure_iot_swarm"
  "secure_iot_swarm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_iot_swarm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
