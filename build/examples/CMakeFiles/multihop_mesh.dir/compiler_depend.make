# Empty compiler generated dependencies file for multihop_mesh.
# This may be replaced when dependencies are built.
