file(REMOVE_RECURSE
  "CMakeFiles/multihop_mesh.dir/multihop_mesh.cpp.o"
  "CMakeFiles/multihop_mesh.dir/multihop_mesh.cpp.o.d"
  "multihop_mesh"
  "multihop_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihop_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
