
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/models.cpp" "src/CMakeFiles/sstsp.dir/analysis/models.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/analysis/models.cpp.o.d"
  "/root/repo/src/core/adjustment.cpp" "src/CMakeFiles/sstsp.dir/core/adjustment.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/core/adjustment.cpp.o.d"
  "/root/repo/src/core/beacon_security.cpp" "src/CMakeFiles/sstsp.dir/core/beacon_security.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/core/beacon_security.cpp.o.d"
  "/root/repo/src/core/coarse_sync.cpp" "src/CMakeFiles/sstsp.dir/core/coarse_sync.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/core/coarse_sync.cpp.o.d"
  "/root/repo/src/core/sstsp.cpp" "src/CMakeFiles/sstsp.dir/core/sstsp.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/core/sstsp.cpp.o.d"
  "/root/repo/src/crypto/hash_chain.cpp" "src/CMakeFiles/sstsp.dir/crypto/hash_chain.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/crypto/hash_chain.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/sstsp.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/mutesla.cpp" "src/CMakeFiles/sstsp.dir/crypto/mutesla.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/crypto/mutesla.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/sstsp.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/filter/gesd.cpp" "src/CMakeFiles/sstsp.dir/filter/gesd.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/filter/gesd.cpp.o.d"
  "/root/repo/src/filter/student_t.cpp" "src/CMakeFiles/sstsp.dir/filter/student_t.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/filter/student_t.cpp.o.d"
  "/root/repo/src/filter/threshold_filter.cpp" "src/CMakeFiles/sstsp.dir/filter/threshold_filter.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/filter/threshold_filter.cpp.o.d"
  "/root/repo/src/mac/channel.cpp" "src/CMakeFiles/sstsp.dir/mac/channel.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/mac/channel.cpp.o.d"
  "/root/repo/src/mac/frame.cpp" "src/CMakeFiles/sstsp.dir/mac/frame.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/mac/frame.cpp.o.d"
  "/root/repo/src/mac/phy_params.cpp" "src/CMakeFiles/sstsp.dir/mac/phy_params.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/mac/phy_params.cpp.o.d"
  "/root/repo/src/mac/wire.cpp" "src/CMakeFiles/sstsp.dir/mac/wire.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/mac/wire.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/sstsp.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/metrics/report.cpp.o.d"
  "/root/repo/src/metrics/series.cpp" "src/CMakeFiles/sstsp.dir/metrics/series.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/metrics/series.cpp.o.d"
  "/root/repo/src/multihop/sstsp_mh.cpp" "src/CMakeFiles/sstsp.dir/multihop/sstsp_mh.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/multihop/sstsp_mh.cpp.o.d"
  "/root/repo/src/protocols/rentel_kunz.cpp" "src/CMakeFiles/sstsp.dir/protocols/rentel_kunz.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/protocols/rentel_kunz.cpp.o.d"
  "/root/repo/src/protocols/station.cpp" "src/CMakeFiles/sstsp.dir/protocols/station.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/protocols/station.cpp.o.d"
  "/root/repo/src/protocols/tsf_family.cpp" "src/CMakeFiles/sstsp.dir/protocols/tsf_family.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/protocols/tsf_family.cpp.o.d"
  "/root/repo/src/runner/cli.cpp" "src/CMakeFiles/sstsp.dir/runner/cli.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/runner/cli.cpp.o.d"
  "/root/repo/src/runner/experiment.cpp" "src/CMakeFiles/sstsp.dir/runner/experiment.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/runner/experiment.cpp.o.d"
  "/root/repo/src/runner/network.cpp" "src/CMakeFiles/sstsp.dir/runner/network.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/runner/network.cpp.o.d"
  "/root/repo/src/runner/scenario.cpp" "src/CMakeFiles/sstsp.dir/runner/scenario.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/runner/scenario.cpp.o.d"
  "/root/repo/src/runner/sweep.cpp" "src/CMakeFiles/sstsp.dir/runner/sweep.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/runner/sweep.cpp.o.d"
  "/root/repo/src/runner/thread_pool.cpp" "src/CMakeFiles/sstsp.dir/runner/thread_pool.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/runner/thread_pool.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/sstsp.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/rng.cpp" "src/CMakeFiles/sstsp.dir/sim/rng.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/sim/rng.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/sstsp.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/time_types.cpp" "src/CMakeFiles/sstsp.dir/sim/time_types.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/sim/time_types.cpp.o.d"
  "/root/repo/src/trace/event_trace.cpp" "src/CMakeFiles/sstsp.dir/trace/event_trace.cpp.o" "gcc" "src/CMakeFiles/sstsp.dir/trace/event_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
