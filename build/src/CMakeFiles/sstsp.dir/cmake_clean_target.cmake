file(REMOVE_RECURSE
  "libsstsp.a"
)
