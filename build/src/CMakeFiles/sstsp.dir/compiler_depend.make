# Empty compiler generated dependencies file for sstsp.
# This may be replaced when dependencies are built.
