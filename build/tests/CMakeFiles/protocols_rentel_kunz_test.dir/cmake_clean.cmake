file(REMOVE_RECURSE
  "CMakeFiles/protocols_rentel_kunz_test.dir/protocols_rentel_kunz_test.cpp.o"
  "CMakeFiles/protocols_rentel_kunz_test.dir/protocols_rentel_kunz_test.cpp.o.d"
  "protocols_rentel_kunz_test"
  "protocols_rentel_kunz_test.pdb"
  "protocols_rentel_kunz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_rentel_kunz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
