# Empty dependencies file for protocols_rentel_kunz_test.
# This may be replaced when dependencies are built.
