file(REMOVE_RECURSE
  "CMakeFiles/crypto_sha256_test.dir/crypto_sha256_test.cpp.o"
  "CMakeFiles/crypto_sha256_test.dir/crypto_sha256_test.cpp.o.d"
  "crypto_sha256_test"
  "crypto_sha256_test.pdb"
  "crypto_sha256_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_sha256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
