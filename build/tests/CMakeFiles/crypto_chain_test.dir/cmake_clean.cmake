file(REMOVE_RECURSE
  "CMakeFiles/crypto_chain_test.dir/crypto_chain_test.cpp.o"
  "CMakeFiles/crypto_chain_test.dir/crypto_chain_test.cpp.o.d"
  "crypto_chain_test"
  "crypto_chain_test.pdb"
  "crypto_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
