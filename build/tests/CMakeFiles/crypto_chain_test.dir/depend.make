# Empty dependencies file for crypto_chain_test.
# This may be replaced when dependencies are built.
