# Empty dependencies file for protocols_variants_test.
# This may be replaced when dependencies are built.
