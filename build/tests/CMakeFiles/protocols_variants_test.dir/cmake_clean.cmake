file(REMOVE_RECURSE
  "CMakeFiles/protocols_variants_test.dir/protocols_variants_test.cpp.o"
  "CMakeFiles/protocols_variants_test.dir/protocols_variants_test.cpp.o.d"
  "protocols_variants_test"
  "protocols_variants_test.pdb"
  "protocols_variants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
