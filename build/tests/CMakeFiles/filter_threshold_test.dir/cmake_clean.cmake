file(REMOVE_RECURSE
  "CMakeFiles/filter_threshold_test.dir/filter_threshold_test.cpp.o"
  "CMakeFiles/filter_threshold_test.dir/filter_threshold_test.cpp.o.d"
  "filter_threshold_test"
  "filter_threshold_test.pdb"
  "filter_threshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
