# Empty compiler generated dependencies file for filter_threshold_test.
# This may be replaced when dependencies are built.
