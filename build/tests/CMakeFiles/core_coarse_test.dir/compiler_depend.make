# Empty compiler generated dependencies file for core_coarse_test.
# This may be replaced when dependencies are built.
