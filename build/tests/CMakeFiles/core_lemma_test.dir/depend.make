# Empty dependencies file for core_lemma_test.
# This may be replaced when dependencies are built.
