file(REMOVE_RECURSE
  "CMakeFiles/core_lemma_test.dir/core_lemma_test.cpp.o"
  "CMakeFiles/core_lemma_test.dir/core_lemma_test.cpp.o.d"
  "core_lemma_test"
  "core_lemma_test.pdb"
  "core_lemma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lemma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
