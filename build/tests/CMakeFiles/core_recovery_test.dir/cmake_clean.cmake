file(REMOVE_RECURSE
  "CMakeFiles/core_recovery_test.dir/core_recovery_test.cpp.o"
  "CMakeFiles/core_recovery_test.dir/core_recovery_test.cpp.o.d"
  "core_recovery_test"
  "core_recovery_test.pdb"
  "core_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
