# Empty compiler generated dependencies file for mac_hidden_terminal_test.
# This may be replaced when dependencies are built.
