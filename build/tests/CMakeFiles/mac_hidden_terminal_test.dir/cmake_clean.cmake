file(REMOVE_RECURSE
  "CMakeFiles/mac_hidden_terminal_test.dir/mac_hidden_terminal_test.cpp.o"
  "CMakeFiles/mac_hidden_terminal_test.dir/mac_hidden_terminal_test.cpp.o.d"
  "mac_hidden_terminal_test"
  "mac_hidden_terminal_test.pdb"
  "mac_hidden_terminal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_hidden_terminal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
