# Empty dependencies file for filter_student_t_test.
# This may be replaced when dependencies are built.
