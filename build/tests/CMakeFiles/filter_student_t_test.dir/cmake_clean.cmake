file(REMOVE_RECURSE
  "CMakeFiles/filter_student_t_test.dir/filter_student_t_test.cpp.o"
  "CMakeFiles/filter_student_t_test.dir/filter_student_t_test.cpp.o.d"
  "filter_student_t_test"
  "filter_student_t_test.pdb"
  "filter_student_t_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_student_t_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
