file(REMOVE_RECURSE
  "CMakeFiles/core_adjustment_test.dir/core_adjustment_test.cpp.o"
  "CMakeFiles/core_adjustment_test.dir/core_adjustment_test.cpp.o.d"
  "core_adjustment_test"
  "core_adjustment_test.pdb"
  "core_adjustment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_adjustment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
