# Empty compiler generated dependencies file for core_adjustment_test.
# This may be replaced when dependencies are built.
