# Empty compiler generated dependencies file for runner_cli_test.
# This may be replaced when dependencies are built.
