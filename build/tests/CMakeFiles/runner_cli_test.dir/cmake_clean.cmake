file(REMOVE_RECURSE
  "CMakeFiles/runner_cli_test.dir/runner_cli_test.cpp.o"
  "CMakeFiles/runner_cli_test.dir/runner_cli_test.cpp.o.d"
  "runner_cli_test"
  "runner_cli_test.pdb"
  "runner_cli_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_cli_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
