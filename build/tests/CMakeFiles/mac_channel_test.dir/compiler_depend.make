# Empty compiler generated dependencies file for mac_channel_test.
# This may be replaced when dependencies are built.
