# Empty dependencies file for analysis_models_test.
# This may be replaced when dependencies are built.
