file(REMOVE_RECURSE
  "CMakeFiles/analysis_models_test.dir/analysis_models_test.cpp.o"
  "CMakeFiles/analysis_models_test.dir/analysis_models_test.cpp.o.d"
  "analysis_models_test"
  "analysis_models_test.pdb"
  "analysis_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
