# Empty compiler generated dependencies file for filter_gesd_test.
# This may be replaced when dependencies are built.
