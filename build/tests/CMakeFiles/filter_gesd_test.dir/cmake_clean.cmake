file(REMOVE_RECURSE
  "CMakeFiles/filter_gesd_test.dir/filter_gesd_test.cpp.o"
  "CMakeFiles/filter_gesd_test.dir/filter_gesd_test.cpp.o.d"
  "filter_gesd_test"
  "filter_gesd_test.pdb"
  "filter_gesd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_gesd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
