file(REMOVE_RECURSE
  "CMakeFiles/mac_wire_test.dir/mac_wire_test.cpp.o"
  "CMakeFiles/mac_wire_test.dir/mac_wire_test.cpp.o.d"
  "mac_wire_test"
  "mac_wire_test.pdb"
  "mac_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mac_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
