# Empty compiler generated dependencies file for crypto_mutesla_test.
# This may be replaced when dependencies are built.
