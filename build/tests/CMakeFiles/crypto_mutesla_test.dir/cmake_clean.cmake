file(REMOVE_RECURSE
  "CMakeFiles/crypto_mutesla_test.dir/crypto_mutesla_test.cpp.o"
  "CMakeFiles/crypto_mutesla_test.dir/crypto_mutesla_test.cpp.o.d"
  "crypto_mutesla_test"
  "crypto_mutesla_test.pdb"
  "crypto_mutesla_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_mutesla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
