file(REMOVE_RECURSE
  "CMakeFiles/protocols_tsf_test.dir/protocols_tsf_test.cpp.o"
  "CMakeFiles/protocols_tsf_test.dir/protocols_tsf_test.cpp.o.d"
  "protocols_tsf_test"
  "protocols_tsf_test.pdb"
  "protocols_tsf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_tsf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
