# Empty compiler generated dependencies file for protocols_tsf_test.
# This may be replaced when dependencies are built.
