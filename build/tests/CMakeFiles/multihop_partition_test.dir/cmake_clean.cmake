file(REMOVE_RECURSE
  "CMakeFiles/multihop_partition_test.dir/multihop_partition_test.cpp.o"
  "CMakeFiles/multihop_partition_test.dir/multihop_partition_test.cpp.o.d"
  "multihop_partition_test"
  "multihop_partition_test.pdb"
  "multihop_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multihop_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
