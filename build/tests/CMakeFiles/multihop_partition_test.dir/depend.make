# Empty dependencies file for multihop_partition_test.
# This may be replaced when dependencies are built.
