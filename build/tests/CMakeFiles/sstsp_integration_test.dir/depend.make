# Empty dependencies file for sstsp_integration_test.
# This may be replaced when dependencies are built.
