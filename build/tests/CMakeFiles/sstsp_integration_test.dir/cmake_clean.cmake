file(REMOVE_RECURSE
  "CMakeFiles/sstsp_integration_test.dir/sstsp_integration_test.cpp.o"
  "CMakeFiles/sstsp_integration_test.dir/sstsp_integration_test.cpp.o.d"
  "sstsp_integration_test"
  "sstsp_integration_test.pdb"
  "sstsp_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstsp_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
