add_test([=[MultiHopPartition.SeveredLineFormsTwoCoherentIslands]=]  /root/repo/build/tests/multihop_partition_test [==[--gtest_filter=MultiHopPartition.SeveredLineFormsTwoCoherentIslands]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MultiHopPartition.SeveredLineFormsTwoCoherentIslands]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  multihop_partition_test_TESTS MultiHopPartition.SeveredLineFormsTwoCoherentIslands)
