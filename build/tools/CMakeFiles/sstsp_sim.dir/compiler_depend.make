# Empty compiler generated dependencies file for sstsp_sim.
# This may be replaced when dependencies are built.
