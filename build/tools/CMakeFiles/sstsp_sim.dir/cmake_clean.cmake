file(REMOVE_RECURSE
  "CMakeFiles/sstsp_sim.dir/sstsp_sim.cpp.o"
  "CMakeFiles/sstsp_sim.dir/sstsp_sim.cpp.o.d"
  "sstsp_sim"
  "sstsp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstsp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
