// Plain-text reporting helpers shared by the bench binaries and examples:
// fixed-width tables, CSV dumps, and a coarse ASCII rendering of a series
// so figure benches show the *shape* the paper plots directly on stdout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/series.h"

namespace sstsp::metrics {

/// Simple fixed-width table: set headers, add string rows, stream out.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision.
[[nodiscard]] std::string fmt(double v, int precision = 2);

/// Writes "t_s,value_us" lines (with a header) to a CSV file; returns false
/// on I/O failure.
[[nodiscard]] bool write_csv(const Series& series, const std::string& path,
                             const std::string& value_label = "value_us");

/// Renders the series as an ASCII strip chart: one output row per time
/// bucket (bucket_s wide, showing the bucket max), bar length scaled to the
/// global max (or log-scaled when `log_scale`).  This is what the figure
/// benches print so the paper's curves can be eyeballed in a terminal.
void print_ascii_series(std::ostream& os, const Series& series,
                        double bucket_s, bool log_scale = false,
                        int width = 60);

}  // namespace sstsp::metrics
