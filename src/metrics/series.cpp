#include "metrics/series.h"

#include <algorithm>
#include <cmath>

namespace sstsp::metrics {

std::optional<double> Series::max_in(double from_s, double to_s) const {
  std::optional<double> best;
  for (const SeriesPoint& p : points_) {
    if (p.t_s < from_s || p.t_s > to_s) continue;
    if (!best || p.value_us > *best) best = p.value_us;
  }
  return best;
}

std::optional<double> Series::mean_in(double from_s, double to_s) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const SeriesPoint& p : points_) {
    if (p.t_s < from_s || p.t_s > to_s) continue;
    sum += p.value_us;
    ++n;
  }
  if (n == 0) return std::nullopt;
  return sum / static_cast<double>(n);
}

std::optional<double> Series::quantile_in(double p, double from_s,
                                          double to_s) const {
  std::vector<double> vals;
  for (const SeriesPoint& pt : points_) {
    if (pt.t_s >= from_s && pt.t_s <= to_s) vals.push_back(pt.value_us);
  }
  if (vals.empty()) return std::nullopt;
  std::sort(vals.begin(), vals.end());
  const double idx = p * static_cast<double>(vals.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - std::floor(idx);
  return vals[lo] * (1.0 - frac) + vals[hi] * frac;
}

std::optional<double> Series::first_sustained_below(double threshold_us,
                                                    double hold_s,
                                                    double from_s) const {
  std::optional<double> run_start;
  for (const SeriesPoint& p : points_) {
    if (p.t_s < from_s) continue;
    if (p.value_us < threshold_us) {
      if (!run_start) run_start = p.t_s;
      if (p.t_s - *run_start >= hold_s) return run_start;
    } else {
      run_start.reset();
    }
  }
  return std::nullopt;
}

}  // namespace sstsp::metrics
