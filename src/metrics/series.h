// Time series of a scalar metric (e.g. max pairwise clock difference).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace sstsp::metrics {

struct SeriesPoint {
  double t_s;       ///< simulation time, seconds
  double value_us;  ///< metric value, microseconds
};

class Series {
 public:
  void push(double t_s, double value_us) {
    points_.push_back(SeriesPoint{t_s, value_us});
  }

  [[nodiscard]] const std::vector<SeriesPoint>& points() const {
    return points_;
  }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Maximum value over [from_s, to_s].
  [[nodiscard]] std::optional<double> max_in(double from_s, double to_s) const;
  /// Mean value over [from_s, to_s].
  [[nodiscard]] std::optional<double> mean_in(double from_s,
                                              double to_s) const;
  /// p-quantile (0..1) of values in [from_s, to_s].
  [[nodiscard]] std::optional<double> quantile_in(double p, double from_s,
                                                  double to_s) const;

  /// First time t >= from_s such that the value stays strictly below
  /// `threshold_us` for at least `hold_s` of consecutive samples — the
  /// "synchronization latency" detector (paper Table 1: the network counts
  /// as synchronized when the max clock difference is under 25 us).
  [[nodiscard]] std::optional<double> first_sustained_below(
      double threshold_us, double hold_s, double from_s = 0.0) const;

 private:
  std::vector<SeriesPoint> points_;
};

}  // namespace sstsp::metrics
