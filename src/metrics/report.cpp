#include "metrics/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace sstsp::metrics {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = (c < cells.size()) ? cells[c] : std::string{};
      os << ' ' << v << std::string(widths[c] - v.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

bool write_csv(const Series& series, const std::string& path,
               const std::string& value_label) {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_s," << value_label << '\n';
  for (const SeriesPoint& p : series.points()) {
    out << p.t_s << ',' << p.value_us << '\n';
  }
  return static_cast<bool>(out);
}

void print_ascii_series(std::ostream& os, const Series& series,
                        double bucket_s, bool log_scale, int width) {
  if (series.empty()) {
    os << "(empty series)\n";
    return;
  }
  const auto& pts = series.points();
  const double t_end = pts.back().t_s;

  struct Bucket {
    double max = 0.0;
    bool any = false;
  };
  const auto nbuckets =
      static_cast<std::size_t>(std::ceil(t_end / bucket_s)) + 1;
  std::vector<Bucket> buckets(nbuckets);
  double global_max = 0.0;
  for (const SeriesPoint& p : pts) {
    auto& b = buckets[static_cast<std::size_t>(p.t_s / bucket_s)];
    b.max = b.any ? std::max(b.max, p.value_us) : p.value_us;
    b.any = true;
    global_max = std::max(global_max, p.value_us);
  }
  if (global_max <= 0.0) global_max = 1.0;

  auto scale = [&](double v) -> int {
    if (v <= 0.0) return 0;
    double frac;
    if (log_scale) {
      // Map [0.1 us, global_max] logarithmically.
      const double lo = std::log10(0.1);
      const double hi = std::log10(std::max(global_max, 0.2));
      frac = (std::log10(std::max(v, 0.1)) - lo) / (hi - lo);
    } else {
      frac = v / global_max;
    }
    return static_cast<int>(std::lround(frac * width));
  };

  os << "  t(s)    max_diff(us)  " << (log_scale ? "[log scale]" : "")
     << '\n';
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (!buckets[i].any) continue;
    const double t = static_cast<double>(i) * bucket_s;
    os << std::setw(6) << std::fixed << std::setprecision(0) << t << "  "
       << std::setw(12) << std::setprecision(2) << buckets[i].max << "  |"
       << std::string(static_cast<std::size_t>(scale(buckets[i].max)), '#')
       << '\n';
  }
}

}  // namespace sstsp::metrics
