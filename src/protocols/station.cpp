#include "protocols/station.h"

#include <cassert>

namespace sstsp::proto {

Station::Station(sim::Simulator& sim, mac::Medium& channel, mac::NodeId id,
                 clk::HardwareClock hw, mac::Position pos)
    : sim_(sim),
      channel_(channel),
      id_(id),
      hw_(hw),
      rng_(sim.substream("station", id)) {
  channel_index_ = channel_.add_station(
      pos, [this](const mac::Frame& frame, const mac::RxInfo& rx) {
        if (awake_ && proto_) proto_->on_receive(frame, rx);
      });
  channel_.set_listening(channel_index_, false);
}

void Station::power_on() {
  assert(proto_ && "set_protocol() before power_on()");
  if (awake_) return;
  awake_ = true;
  channel_.set_listening(channel_index_, true);
  proto_->start();
}

void Station::power_off() {
  if (!awake_) return;
  awake_ = false;
  channel_.set_listening(channel_index_, false);
  proto_->stop();
}

}  // namespace sstsp::proto
