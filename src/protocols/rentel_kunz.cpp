#include "protocols/rentel_kunz.h"

#include <algorithm>
#include <cmath>

namespace sstsp::proto {

void RentelKunz::start() {
  running_ = true;
  beacon_seen_this_bp_ = false;
  silent_bps_ = 0;
  last_tbtt_us_ = -1.0;
  last_obs_.clear();
  schedule_next_tbtt();
}

void RentelKunz::stop() {
  running_ = false;
  if (tbtt_event_ != 0) {
    station_.sim().cancel(tbtt_event_);
    tbtt_event_ = 0;
  }
  if (backoff_event_ != 0) {
    station_.sim().cancel(backoff_event_);
    backoff_event_ = 0;
  }
}

void RentelKunz::schedule_next_tbtt() {
  if (tbtt_event_ != 0) station_.sim().cancel(tbtt_event_);
  const double bp_us = station_.channel().phy().beacon_period.to_us();
  const double c_now = network_time_us(station_.sim().now());
  double next = (std::floor(c_now / bp_us) + 1.0) * bp_us;
  if (next <= last_tbtt_us_) next = last_tbtt_us_ + bp_us;
  next_tbtt_us_ = next;
  // Invert the controlled clock to real time: hw at value, then real at hw.
  const double hw_at = (next - b_) / s_;
  tbtt_event_ =
      station_.sim().at(station_.hw().real_at(hw_at), [this] { handle_tbtt(); });
}

void RentelKunz::handle_tbtt() {
  tbtt_event_ = 0;
  if (!running_) return;
  last_tbtt_us_ = next_tbtt_us_;

  if (!beacon_seen_this_bp_) {
    ++silent_bps_;
    p_ = std::min(params_.p_max, p_ * params_.p_recovery);
  }
  beacon_seen_this_bp_ = false;

  if (silent_bps_ >= params_.t_delay_bps) {
    // Eligibility restores at least the baseline probability: T_DELAY
    // beacon-free periods mean nobody is covering the duty, however hard
    // this node backed off before.
    p_ = std::max(p_, params_.p_initial);
  }
  if (silent_bps_ >= params_.t_delay_bps &&
      station_.rng().bernoulli(p_)) {
    const auto& phy = station_.channel().phy();
    const auto slot = static_cast<std::int64_t>(station_.rng().uniform_int(
        0, static_cast<std::uint64_t>(phy.contention_window)));
    if (backoff_event_ != 0) station_.sim().cancel(backoff_event_);
    backoff_event_ = station_.sim().after(phy.slot_time * slot,
                                          [this] { handle_backoff_expiry(); });
  }
  schedule_next_tbtt();
}

void RentelKunz::handle_backoff_expiry() {
  backoff_event_ = 0;
  if (!running_ || beacon_seen_this_bp_) return;
  const sim::SimTime now = station_.sim().now();
  if (station_.medium_busy(now)) return;

  const auto& phy = station_.channel().phy();
  mac::Frame frame;
  frame.sender = station_.id();
  frame.air_bytes = phy.tsf_beacon_bytes;
  const double c = network_time_us(now);
  frame.body = mac::TsfBeaconBody{static_cast<std::int64_t>(std::floor(c))};
  station_.transmit(std::move(frame), phy.tsf_beacon_duration);
  ++stats_.beacons_sent;
  beacon_seen_this_bp_ = true;
}

void RentelKunz::on_receive(const mac::Frame& frame, const mac::RxInfo& rx) {
  if (!frame.is_tsf()) return;  // shares the plain beacon format
  ++stats_.beacons_received;
  beacon_seen_this_bp_ = true;
  silent_bps_ = 0;
  p_ = std::max(1e-3, p_ * params_.p_decay);
  if (backoff_event_ != 0) {
    station_.sim().cancel(backoff_event_);
    backoff_event_ = 0;
  }

  const double hw = station_.hw().read_us(rx.delivered);
  const double ts_est =
      static_cast<double>(frame.tsf().timestamp_us) + rx.nominal_delay_us;

  // Rate slew: the sender's clock rate against our oscillator, from this
  // sender's previous observation.
  const auto obs = last_obs_.find(frame.sender);
  if (obs != last_obs_.end() && ts_est > obs->second.second + 1.0 &&
      hw > obs->second.first + 1.0) {
    const double observed_rate =
        (ts_est - obs->second.second) / (hw - obs->second.first);
    const double band = params_.s_max_ppm * 1e-6;
    if (observed_rate > 1.0 - 2.0 * band && observed_rate < 1.0 + 2.0 * band) {
      s_ += params_.beta * (observed_rate - s_);
      s_ = std::clamp(s_, 1.0 - band, 1.0 + band);
    }
  }
  if (last_obs_.size() > 32) last_obs_.clear();  // bounded memory
  last_obs_[frame.sender] = {hw, ts_est};

  // Offset half-step toward the sender (both directions: controlled clock).
  const double c = value_at_hw(hw);
  b_ += params_.alpha * (ts_est - c);
  ++stats_.adjustments;
  schedule_next_tbtt();  // the controlled clock moved; re-derive the TBTT
}

}  // namespace sstsp::proto
