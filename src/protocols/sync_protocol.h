// Protocol strategy interface.
//
// A Station owns exactly one SyncProtocol.  The station layer provides the
// hardware (clock, radio, rng); the protocol decides when to beacon and how
// to discipline its notion of network time.  All five protocols in the
// library (TSF, ATSP, TATSP, SATSF, SSTSP) and the attacker behaviours
// implement this interface, so scenarios and metrics are protocol-agnostic.
#pragma once

#include <array>
#include <cstdint>

#include "mac/channel.h"
#include "mac/frame.h"
#include "sim/time_types.h"

namespace sstsp::proto {

class Station;

struct ProtocolStats {
  std::uint64_t beacons_sent{0};
  std::uint64_t beacons_received{0};
  std::uint64_t adoptions{0};        ///< TSF family: timestamps adopted
  std::uint64_t adjustments{0};      ///< SSTSP: (k, b) re-solves
  std::uint64_t rejected_interval{0};
  std::uint64_t rejected_key{0};
  std::uint64_t rejected_mac{0};
  std::uint64_t rejected_guard{0};
  std::uint64_t elections_won{0};
  std::uint64_t demotions{0};
  std::uint64_t coarse_steps{0};
  std::uint64_t solver_rejections{0};
  /// Per-verdict clock-discipline outcomes, indexed by
  /// core::DisciplineVerdict (this layer sits below core, hence the plain
  /// array; core static_asserts the bound).  solver_rejections stays the
  /// legacy aggregate of the rejecting verdicts.
  std::array<std::uint64_t, 8> discipline_verdicts{};
};

class SyncProtocol {
 public:
  explicit SyncProtocol(Station& station) : station_(station) {}
  virtual ~SyncProtocol() = default;

  SyncProtocol(const SyncProtocol&) = delete;
  SyncProtocol& operator=(const SyncProtocol&) = delete;

  /// Station powered on (initial boot or churn return).
  virtual void start() = 0;
  /// Station powered off; cancel all pending activity.
  virtual void stop() = 0;

  /// A frame was delivered by the channel.
  virtual void on_receive(const mac::Frame& frame, const mac::RxInfo& rx) = 0;

  /// The protocol's synchronized time at simulation instant `real` —
  /// the quantity whose network-wide spread the paper plots.
  [[nodiscard]] virtual double network_time_us(sim::SimTime real) const = 0;

  /// Whether this node should be included in synchronization-error metrics
  /// (rejoining nodes are excluded until they re-synchronize).
  [[nodiscard]] virtual bool is_synchronized() const = 0;

  /// True while this node acts as the SSTSP reference (always false for
  /// the TSF family).
  [[nodiscard]] virtual bool is_reference() const { return false; }

  /// Virtual so composite protocols (the cluster wrapper runs a member and
  /// an uplink instance per gateway) can aggregate their halves.
  [[nodiscard]] virtual const ProtocolStats& stats() const { return stats_; }

 protected:
  Station& station_;
  ProtocolStats stats_;
};

}  // namespace sstsp::proto
