#include "protocols/tsf_family.h"

#include <cmath>

namespace sstsp::proto {

TsfFamilyBase::TsfFamilyBase(Station& station)
    : SyncProtocol(station), timer_(&station.hw()) {}

void TsfFamilyBase::start() {
  running_ = true;
  beacon_seen_this_bp_ = false;
  last_tbtt_us_ = -1.0;
  schedule_next_tbtt();
}

void TsfFamilyBase::stop() {
  running_ = false;
  if (tbtt_event_ != 0) {
    station_.sim().cancel(tbtt_event_);
    tbtt_event_ = 0;
  }
  if (backoff_event_ != 0) {
    station_.sim().cancel(backoff_event_);
    backoff_event_ = 0;
  }
}

void TsfFamilyBase::schedule_next_tbtt() {
  if (tbtt_event_ != 0) station_.sim().cancel(tbtt_event_);
  const double bp_us = station_.channel().phy().beacon_period.to_us();
  const double timer_now = timer_.read_us(station_.sim().now());
  // Guard against floating-point re-derivation of the boundary just fired:
  // the next TBTT must be strictly after the last one handled, or the event
  // would re-arm at the same instant forever.
  double next_tbtt = (std::floor(timer_now / bp_us) + 1.0) * bp_us;
  if (next_tbtt <= last_tbtt_us_) next_tbtt = last_tbtt_us_ + bp_us;
  next_tbtt_us_ = next_tbtt;
  tbtt_event_ = station_.sim().at(timer_.real_at(next_tbtt),
                                  [this] { handle_tbtt(); });
}

void TsfFamilyBase::handle_tbtt() {
  tbtt_event_ = 0;
  if (!running_) return;
  last_tbtt_us_ = next_tbtt_us_;
  ++bp_count_;
  beacon_seen_this_bp_ = false;
  on_bp_begin(bp_count_);

  if (participates(bp_count_)) {
    const auto& phy = station_.channel().phy();
    if (backoff_event_ != 0) station_.sim().cancel(backoff_event_);
    backoff_event_ = station_.sim().after(phy.slot_time * backoff_slots(),
                                          [this] { handle_backoff_expiry(); });
  }
  schedule_next_tbtt();
}

std::int64_t TsfFamilyBase::backoff_slots() {
  const auto& phy = station_.channel().phy();
  return static_cast<std::int64_t>(station_.rng().uniform_int(
      0, static_cast<std::uint64_t>(phy.contention_window)));
}

void TsfFamilyBase::handle_backoff_expiry() {
  backoff_event_ = 0;
  if (!running_) return;
  const sim::SimTime now = station_.sim().now();
  if (!force_transmit()) {
    if (beacon_seen_this_bp_) return;
    if (station_.medium_busy(now)) return;  // defer: someone else won
  }

  const auto& phy = station_.channel().phy();
  mac::Frame frame;
  frame.sender = station_.id();
  frame.air_bytes = phy.tsf_beacon_bytes;
  frame.body = mac::TsfBeaconBody{beacon_timestamp(now)};
  const std::uint64_t tid =
      station_.transmit(std::move(frame), phy.tsf_beacon_duration);
  ++stats_.beacons_sent;
  station_.trace_event(trace::EventKind::kBeaconTx, mac::kNoNode, 0.0, tid);
  beacon_seen_this_bp_ = true;  // one beacon per BP, ours counts
}

void TsfFamilyBase::on_receive(const mac::Frame& frame,
                               const mac::RxInfo& rx) {
  if (!frame.is_tsf()) return;  // TSF stations ignore secured beacons
  ++stats_.beacons_received;
  beacon_seen_this_bp_ = true;
  if (backoff_event_ != 0) {
    station_.sim().cancel(backoff_event_);
    backoff_event_ = 0;
  }

  const double ts_est =
      static_cast<double>(frame.tsf().timestamp_us) + rx.nominal_delay_us;
  const double own = timer_.read_us(rx.delivered);
  const bool later = ts_est > own;
  if (later) {
    // Forward-only adoption (standard TSF rule) — the timer never leaps
    // backwards, which tests/protocols_tsf_test.cpp asserts.
    timer_.set_value(rx.delivered, ts_est);
    ++stats_.adoptions;
    station_.trace_event(trace::EventKind::kAdoption, frame.sender,
                         ts_est - own, frame.trace_id);
    // The timer jumped forward, so the next TBTT arrives earlier in real
    // time than previously scheduled.
    schedule_next_tbtt();
  }
  on_beacon_observation(later);
}

}  // namespace sstsp::proto
