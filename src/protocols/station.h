// Station: one IBSS node — hardware clock, radio attachment, RNG streams,
// power state — mediating between the simulation substrate and the protocol.
#pragma once

#include <memory>
#include <string>

#include "clock/hardware_clock.h"
#include "fault/recovery.h"
#include "mac/medium.h"
#include "obs/flight_recorder.h"
#include "obs/instruments.h"
#include "obs/invariants.h"
#include "obs/profiler.h"
#include "protocols/sync_protocol.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "trace/event_trace.h"
#include "trace/lifecycle.h"

namespace sstsp::proto {

class Station {
 public:
  /// `channel` may be the run-wide mac::Channel or one shard of the
  /// parallel kernel — the station only uses the mac::Medium surface.
  Station(sim::Simulator& sim, mac::Medium& channel, mac::NodeId id,
          clk::HardwareClock hw, mac::Position pos);

  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  [[nodiscard]] mac::NodeId id() const { return id_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] mac::Medium& channel() { return channel_; }
  [[nodiscard]] const clk::HardwareClock& hw() const { return hw_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }

  /// Hardware clock reading now.
  [[nodiscard]] double hw_us_now() const { return hw_.read_us(sim_.now()); }

  [[nodiscard]] bool awake() const { return awake_; }

  /// Installs the protocol; must happen before the first power_on().
  void set_protocol(std::unique_ptr<SyncProtocol> proto) {
    proto_ = std::move(proto);
  }
  [[nodiscard]] SyncProtocol& protocol() { return *proto_; }
  [[nodiscard]] const SyncProtocol& protocol() const { return *proto_; }
  [[nodiscard]] bool has_protocol() const { return proto_ != nullptr; }

  void power_on();
  void power_off();

  /// Radio: transmit a frame of the given on-air duration, starting now.
  /// Returns the channel-assigned lifecycle trace ID (see Frame::trace_id).
  std::uint64_t transmit(mac::Frame frame, sim::SimTime duration) {
    return channel_.transmit(channel_index_, std::move(frame), duration);
  }

  /// Carrier sense at time `at` (usually now).
  [[nodiscard]] bool medium_busy(sim::SimTime at) const {
    return channel_.would_detect_busy(channel_index_, at);
  }

  /// Attaches a trace sink (nullptr detaches).  Shared across stations by
  /// the scenario runner when Scenario::trace_capacity > 0.
  void set_trace(trace::EventTrace* sink) {
    trace_ = sink;
    refresh_observed();
  }
  [[nodiscard]] trace::EventTrace* trace() { return trace_; }

  /// Attaches the shared metrics instruments / profiler (nullptr detaches);
  /// wired by the scenario runner, same sharing model as the trace.
  void set_instruments(obs::Instruments* instruments) {
    obs_ = instruments;
    refresh_observed();
  }
  [[nodiscard]] obs::Instruments* instruments() { return obs_; }
  void set_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  [[nodiscard]] obs::Profiler* profiler() { return profiler_; }

  /// Attaches the shared invariant monitor / beacon-lifecycle tracker
  /// (nullptr detaches); wired by the scenario runner when
  /// Scenario::monitor is set.  The protocol calls the monitor's pipeline
  /// hooks through monitor() directly (null-checked at each site).
  void set_monitor(obs::InvariantMonitor* monitor) {
    monitor_ = monitor;
    refresh_observed();
  }
  [[nodiscard]] obs::InvariantMonitor* monitor() { return monitor_; }
  void set_lifecycle(trace::BeaconLifecycle* lifecycle) {
    lifecycle_ = lifecycle;
    refresh_observed();
  }
  [[nodiscard]] trace::BeaconLifecycle* lifecycle() { return lifecycle_; }

  /// Attaches the shared per-fault recovery tracker (nullptr detaches);
  /// wired by the runners when the scenario carries a fault plan.
  void set_recovery(fault::RecoveryTracker* recovery) {
    recovery_ = recovery;
    refresh_observed();
  }
  [[nodiscard]] fault::RecoveryTracker* recovery() { return recovery_; }

  /// Attaches the flight recorder (nullptr detaches): a bounded ring of
  /// the newest events, dumped as a post-mortem on audit records, node
  /// failures and SIGUSR1.  Shared per run in the simulator, per node in
  /// the live stack.
  void set_flight(obs::FlightRecorder* flight) {
    flight_ = flight;
    refresh_observed();
  }
  [[nodiscard]] obs::FlightRecorder* flight() { return flight_; }

  /// Fault injection: applies a hardware-clock step and/or drift change at
  /// the current instant (fault::ClockFault).  The protocol keeps running on
  /// the perturbed oscillator — exactly what a real glitch looks like.
  void inject_clock_fault(double step_us, double drift_delta_ppm) {
    if (drift_delta_ppm != 0.0) {
      hw_.fault_drift_delta_ppm(drift_delta_ppm, sim_.now());
    }
    if (step_us != 0.0) hw_.fault_step_us(step_us);
  }

  /// Records a protocol event into every attached observer (trace ring,
  /// metrics registry, invariant monitor, lifecycle tracker).  When none
  /// is attached the call is a single branch on a flag cached at
  /// attachment time — the event struct is not even built.  `trace_id`
  /// ties the event to a beacon transmission (0 = not beacon-scoped).
  void trace_event(trace::EventKind kind, mac::NodeId peer = mac::kNoNode,
                   double value_us = 0.0, std::uint64_t trace_id = 0) {
    if (!observed_) return;
    const trace::TraceEvent event{sim_.now(), id_,      kind,
                                  peer,       value_us, trace_id};
    if (trace_ != nullptr) trace_->record(event);
    if (obs_ != nullptr) obs_->on_protocol_event(kind, value_us);
    if (monitor_ != nullptr) monitor_->on_event(event);
    if (lifecycle_ != nullptr) lifecycle_->on_event(event);
    if (recovery_ != nullptr) recovery_->on_trace_event(event);
    if (flight_ != nullptr) flight_->on_trace_event(event);
  }

 private:
  void refresh_observed() {
    observed_ = trace_ != nullptr || obs_ != nullptr || monitor_ != nullptr ||
                lifecycle_ != nullptr || recovery_ != nullptr ||
                flight_ != nullptr;
  }

  sim::Simulator& sim_;
  mac::Medium& channel_;
  mac::NodeId id_;
  clk::HardwareClock hw_;
  sim::Rng rng_;
  std::size_t channel_index_;
  std::unique_ptr<SyncProtocol> proto_;
  trace::EventTrace* trace_{nullptr};
  obs::Instruments* obs_{nullptr};
  obs::Profiler* profiler_{nullptr};
  obs::InvariantMonitor* monitor_{nullptr};
  trace::BeaconLifecycle* lifecycle_{nullptr};
  fault::RecoveryTracker* recovery_{nullptr};
  obs::FlightRecorder* flight_{nullptr};
  bool observed_{false};  ///< any observer attached (cached for trace_event)
  bool awake_{false};
};

}  // namespace sstsp::proto
