// TATSP — Tiered ATSP (Lai & Zhou [4], improved variant).
//
// Stations are dynamically classified into three tiers by inferred clock
// speed: tier 1 contends every BP, tier 2 once in a while, tier 3 rarely.
// Classification uses the same observable as ATSP — received timestamps
// relative to the local clock — with a consecutive-lead counter:
//
//   heard a later timestamp          -> tier 3 (a faster node exists)
//   lead count >= promote_to_tier2   -> tier 2 (among the faster ones)
//   lead count >= promote_to_tier1   -> tier 1 (probably fastest)
//
// As in our ATSP, inference only advances on actual receptions.
#pragma once

#include "protocols/tsf_family.h"

namespace sstsp::proto {

struct TatspParams {
  std::uint64_t tier2_interval = 5;
  std::uint64_t tier3_interval = 20;
  std::uint64_t promote_to_tier2_leads = 2;  ///< lead observations for tier 2
  std::uint64_t promote_to_tier1_leads = 5;  ///< lead observations for tier 1
};

class Tatsp final : public TsfFamilyBase {
 public:
  Tatsp(Station& station, TatspParams params)
      : TsfFamilyBase(station), params_(params) {}

  [[nodiscard]] int tier() const { return tier_; }

 protected:
  [[nodiscard]] bool participates(std::uint64_t bp_count) override {
    switch (tier_) {
      case 1:
        return true;
      case 2:
        return bp_count % params_.tier2_interval == 0;
      default:
        return bp_count % params_.tier3_interval == 0;
    }
  }

  void on_beacon_observation(bool heard_later) override {
    if (heard_later) {
      leads_ = 0;
      tier_ = 3;
      return;
    }
    ++leads_;
    if (leads_ >= params_.promote_to_tier1_leads) {
      tier_ = 1;
    } else if (leads_ >= params_.promote_to_tier2_leads) {
      tier_ = 2;
    }
  }

 private:
  TatspParams params_;
  int tier_{1};  // start optimistic, like ATSP's I = 1
  std::uint64_t leads_{0};
};

}  // namespace sstsp::proto
