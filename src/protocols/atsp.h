// ATSP — Adaptive Timing Synchronization Procedure (Lai & Zhou, AINA'03).
//
// The paper's §2 summary: "let the fastest node compete for beacon
// transmission every BP and let other nodes compete only every Imax BPs".
// A station cannot know directly that it is fastest, so ATSP infers it from
// received beacons:
//
//   * hearing a timestamp *later* than its own clock proves a faster node
//     exists -> back off to I(i) = Imax;
//   * hearing beacons whose timestamps are *not* later — i.e. the station's
//     own clock led everything it observed — is evidence of being fastest;
//     after `fast_evidence` consecutive such observations, I(i) = 1.
//
// Inference only advances on actual receptions: silent BPs (collisions,
// losses) carry no information about relative clock speed, so they neither
// promote nor demote.  Station i contends only in BPs where
// bp_count % I(i) == 0.
#pragma once

#include "protocols/tsf_family.h"

namespace sstsp::proto {

struct AtspParams {
  std::uint64_t i_max = 20;
  /// Consecutive lead observations before a station claims the fast role.
  std::uint64_t fast_evidence = 3;
};

class Atsp final : public TsfFamilyBase {
 public:
  Atsp(Station& station, AtspParams params)
      : TsfFamilyBase(station), params_(params) {}

  [[nodiscard]] std::uint64_t current_interval() const { return interval_; }

 protected:
  [[nodiscard]] bool participates(std::uint64_t bp_count) override {
    return bp_count % interval_ == 0;
  }

  void on_beacon_observation(bool heard_later) override {
    if (heard_later) {
      interval_ = params_.i_max;  // a faster clock exists; back off
      lead_observations_ = 0;
    } else if (++lead_observations_ >= params_.fast_evidence) {
      interval_ = 1;  // everything heard trails us: act as the fastest
    }
  }

 private:
  AtspParams params_;
  std::uint64_t interval_{1};
  std::uint64_t lead_observations_{0};
};

}  // namespace sstsp::proto
