// SATSF — Scalable/compatible clock synchronization (Zhou & Lai, ICPP'05).
//
// Per the paper's §2 summary: "node i competes for beacon transmission every
// FFT(i) BPs.  FFT(i) is adjusted at the end of each BP in the way that fast
// nodes will gradually increase their FFT value, thus competing more
// frequently than slow nodes."  We encode FFT as a contention *frequency*
// score in [1, fft_max]: a station contends in a BP when
// bp_count % ceil(fft_max / FFT) == 0, so FFT = fft_max means every BP and
// FFT = 1 means once in fft_max BPs.
//
//   * FFT += 1 after a reception whose timestamp trailed the local clock
//     (evidence of being fast), saturating at fft_max;
//   * FFT halves when a later timestamp is heard (evidence of being slow),
//     flooring at 1.
//
// Silent BPs carry no speed information and leave FFT unchanged.
#pragma once

#include "protocols/tsf_family.h"

namespace sstsp::proto {

struct SatsfParams {
  std::uint64_t fft_max = 16;
};

class Satsf final : public TsfFamilyBase {
 public:
  Satsf(Station& station, SatsfParams params)
      : TsfFamilyBase(station), params_(params), fft_(1) {}

  [[nodiscard]] std::uint64_t fft() const { return fft_; }

 protected:
  [[nodiscard]] bool participates(std::uint64_t bp_count) override {
    const std::uint64_t stride =
        (params_.fft_max + fft_ - 1) / fft_;  // ceil(fft_max / FFT)
    return bp_count % stride == 0;
  }

  void on_beacon_observation(bool heard_later) override {
    if (heard_later) {
      fft_ = (fft_ > 1) ? fft_ / 2 : 1;
    } else if (fft_ < params_.fft_max) {
      ++fft_;
    }
  }

 private:
  SatsfParams params_;
  std::uint64_t fft_;
};

}  // namespace sstsp::proto
