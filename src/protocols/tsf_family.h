// Shared machinery for the TSF protocol family (TSF, ATSP, TATSP, SATSF).
//
// All four follow the IEEE 802.11 IBSS beacon generation scheme: at each
// Target Beacon Transmission Time (a multiple of the beacon period on the
// station's own TSF timer) a participating station draws a random delay
// uniform in [0, w] slots, cancels its pending beacon if one is received
// first, defers if the medium is sensed busy at expiry, and otherwise
// transmits a beacon carrying its TSF timestamp.  Receivers adopt a
// timestamp if and only if it is later than their own timer (forward-only —
// TSF's "no backward leap" guarantee).
//
// The variants differ *only* in the participation policy (which BPs a
// station contends in) — exactly the axis ATSP/TATSP/SATSF explore — so the
// base class exposes that policy as a virtual and keeps everything else.
#pragma once

#include "clock/settable_clock.h"
#include "protocols/station.h"
#include "protocols/sync_protocol.h"

namespace sstsp::proto {

class TsfFamilyBase : public SyncProtocol {
 public:
  explicit TsfFamilyBase(Station& station);

  void start() override;
  void stop() override;
  void on_receive(const mac::Frame& frame, const mac::RxInfo& rx) override;

  [[nodiscard]] double network_time_us(sim::SimTime real) const override {
    return timer_.read_us(real);
  }
  [[nodiscard]] bool is_synchronized() const override { return true; }

  [[nodiscard]] const clk::SettableClock& timer() const { return timer_; }

 protected:
  /// Does this station contend for beacon transmission in this BP?
  [[nodiscard]] virtual bool participates(std::uint64_t bp_count) = 0;

  /// Backoff draw in slots; the standard behaviour is uniform [0, w].
  /// Attackers override this to seize the window.
  [[nodiscard]] virtual std::int64_t backoff_slots();

  /// When true, the station transmits even if the medium is busy or a
  /// beacon was already received this BP (malicious behaviour).
  [[nodiscard]] virtual bool force_transmit() const { return false; }

  /// Timestamp stamped into an outgoing beacon; the standard behaviour is
  /// the TSF register.  Attackers override this to lie.
  [[nodiscard]] virtual std::int64_t beacon_timestamp(sim::SimTime now) const {
    return timer_.read_counter(now);
  }

  /// End-of-reception hook: `heard_later` is true when the received
  /// timestamp was ahead of the local timer (i.e. the sender is faster).
  virtual void on_beacon_observation(bool /*heard_later*/) {}

  /// Per-BP hook, fired at TBTT before the contention draw.
  virtual void on_bp_begin(std::uint64_t /*bp_count*/) {}

  clk::SettableClock timer_;

  /// Re-derives the next TBTT from the current timer value (needed after
  /// any externally induced timer jump, e.g. an attacker biasing itself).
  void schedule_next_tbtt();

 private:
  void handle_tbtt();
  void handle_backoff_expiry();

  sim::EventId tbtt_event_{0};
  sim::EventId backoff_event_{0};
  double last_tbtt_us_{-1.0};
  double next_tbtt_us_{0.0};
  std::uint64_t bp_count_{0};
  bool beacon_seen_this_bp_{false};
  bool running_{false};
};

/// Plain IEEE 802.11 TSF: every station contends in every beacon period.
class Tsf final : public TsfFamilyBase {
 public:
  using TsfFamilyBase::TsfFamilyBase;

 protected:
  [[nodiscard]] bool participates(std::uint64_t) override { return true; }
};

}  // namespace sstsp::proto
