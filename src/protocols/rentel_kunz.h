// Rentel-Kunz network synchronization (reference [1] of the paper:
// C. Rentel & T. Kunz, "Network Synchronization in Wireless Ad Hoc
// Networks", Carleton SCE-04-08, 2004).
//
// The paper's §2 summary, which this implementation follows: "all nodes
// participate equally in the synchronization of the network.  The authors
// define a controlled clock, which is an adjusted clock of the real clock,
// and a parameter s = controlled clock / real clock.  Each node
// participates in the contention with probability p every T_DELAY BPs if
// no beacons are received within the last T_DELAY beacons.  When receiving
// a beacon, the node updates s and p to synchronize to the sender."
//
// Concrete rules (faithful to that summary; internals of [1] are not in
// the paper, so the update laws are standard control-loop choices,
// documented here):
//   * controlled clock c(t) = s * t + b over the hardware clock;
//   * on each received beacon: offset half-steps toward the sender
//     (b += alpha * (ts_est - c)), and s slews toward the sender's observed
//     rate via the last two observations (EMA with gain beta);
//   * a node whose last T_DELAY BPs were beacon-silent contends with
//     probability p at its next TBTT; p decays multiplicatively after each
//     heard beacon (someone else is covering the duty) and recovers toward
//     1 during silence.
//
// Unlike TSF there is no forward-only rule: the controlled clock converges
// from both sides (and is therefore not leap-free; SSTSP's continuity
// guarantee is the paper's answer to that).
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>

#include "clock/settable_clock.h"
#include "protocols/station.h"
#include "protocols/sync_protocol.h"

namespace sstsp::proto {

struct RentelKunzParams {
  int t_delay_bps = 3;       ///< silent BPs before joining the contention
  double p_initial = 0.3;    ///< initial contention probability
  double p_decay = 0.5;      ///< p *= decay on every heard beacon
  double p_recovery = 1.15;  ///< p *= recovery per silent BP
  double p_max = 0.5;        ///< cap: keeps duty shared — the node whose
                             ///< controlled clock runs ahead reaches its
                             ///< TBTT first every round, so an uncapped p
                             ///< would let it monopolize beaconing
  double alpha = 0.5;        ///< offset half-step gain
  double beta = 0.3;         ///< rate EMA gain
  /// Physical bound on the controlled-clock rate: oscillators are within
  /// +/-100 ppm, so s outside ~3x that tolerance is estimation noise, and
  /// an unbounded s random-walks whole networks off by milliseconds.
  double s_max_ppm = 300.0;
};

class RentelKunz final : public SyncProtocol {
 public:
  RentelKunz(Station& station, RentelKunzParams params)
      : SyncProtocol(station), params_(params), p_(params.p_initial) {}

  void start() override;
  void stop() override;
  void on_receive(const mac::Frame& frame, const mac::RxInfo& rx) override;

  [[nodiscard]] double network_time_us(sim::SimTime real) const override {
    return value_at_hw(station_.hw().read_us(real));
  }
  [[nodiscard]] bool is_synchronized() const override { return true; }

  [[nodiscard]] double s() const { return s_; }
  [[nodiscard]] double p() const { return p_; }

 private:
  [[nodiscard]] double value_at_hw(double hw_us) const {
    return s_ * hw_us + b_;
  }
  void schedule_next_tbtt();
  void handle_tbtt();
  void handle_backoff_expiry();

  RentelKunzParams params_;
  // Controlled clock c = s * hw + b.
  double s_{1.0};
  double b_{0.0};
  double p_;
  int silent_bps_{0};

  /// Last (hw, ts_est) observation *per sender*: a rate estimated across
  /// two different senders would read their clock offset as frequency and
  /// random-walk s into divergence.
  std::unordered_map<mac::NodeId, std::pair<double, double>> last_obs_;

  sim::EventId tbtt_event_{0};
  sim::EventId backoff_event_{0};
  double last_tbtt_us_{-1.0};
  double next_tbtt_us_{0.0};
  bool beacon_seen_this_bp_{false};
  bool running_{false};
};

}  // namespace sstsp::proto
