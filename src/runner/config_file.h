// JSON run configs for the runner tools (--config).
//
// A config file is one JSON object describing a run.  Most keys are CLI
// flag names (without the leading "--") with the flag's argument as value;
// two keys are structured:
//
//   {
//     "protocol": "sstsp",
//     "nodes": 5,
//     "duration": 60,
//     "departures": [300, 500, 800],
//     "monitor": "strict",
//     "faults": {                       // inline fault plan (fault/plan.h),
//       "seed": 1,                      // or a string path to a plan file
//       "packet": [{"kind": "drop", "probability": 0.1}],
//       "node_faults": [{"kind": "crash", "node": "reference", "at": 30}]
//     },
//     "attack": {"name": "internal-ref",  // or just "internal-ref"
//                "window": [400, 600],
//                "params": {"skew": 80}}
//   }
//
// One schema, three tools: the same file is accepted by sstsp_sim,
// sstsp_node and sstsp_swarm.  Every key the *union* of the tools
// understands is legal everywhere; keys that do not apply to the invoking
// tool (e.g. "protocol" under sstsp_swarm) are skipped, so a single config
// describes one experiment across the sim and live runners.  A key no tool
// knows is an error naming the key and its line in the file.
//
// The object is converted to the equivalent argv vector and spliced into
// the command line at the position of the --config flag, so flags after
// --config override the file and flags before it are overridden by it —
// the per-tool CLI flags are thin aliases of the config keys.
// Conversion rules:
//   * true        -> bare flag ("chart": true -> --chart); false is omitted
//   * number      -> flag + value (integers render without a decimal point)
//   * string      -> flag + value; "monitor": "strict" is the one
//                    =-style special case (-> --monitor=strict)
//   * array       -> flag + comma-joined scalars ("churn": [200,0.05,50]);
//                    "peer" arrays repeat the flag per element
//   * "faults"    -> object: --faults-json <compact dump>
//                    string: --faults <path>
//   * "attack"    -> string: --attack NAME; object {name, window, params}:
//                    --attack NAME [--attack-window A,B]
//                    [--attack-params <compact dump>]
//   * "config"    -> rejected (config files do not nest)
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "clock/drift_model.h"
#include "obs/json.h"

namespace sstsp::run {

/// Clock-stressor kind by config/CLI name ("none", "temp-ramp", "aging",
/// "random-walk"); nullopt for unknown names.
[[nodiscard]] std::optional<clk::DriftStressKind> clock_model_kind_from_string(
    std::string_view name);

/// Is `key` valid inside the nested "clock-model" config block?
[[nodiscard]] bool clock_model_param_key_known(std::string_view key);

/// Applies a parsed "clock-model" JSON object (or kind string) onto
/// `stress`: {"kind": "temp-ramp", "period": 1, "ramp-ppm-per-s": 0.5,
/// "ramp-start": 0, "ramp-end": -1, "aging-ppm-per-day": 25,
/// "walk-sigma-ppm": 0.25}.  Unknown or ill-typed keys fail with the nested
/// path in *error.
[[nodiscard]] bool apply_clock_model_json(const obs::json::Value& value,
                                          clk::DriftStress* stress,
                                          std::string* error);

/// Which tool is consuming the config; selects the subset of the universal
/// key schema that turns into flags (the rest is skipped, not rejected).
/// kAny accepts every known key — used by tests and the legacy overloads.
enum class ConfigTool { kAny, kSim, kNode, kSwarm };

/// Converts a parsed config object into argv-style flags for `tool`.
/// nullopt + *error (naming the offending key and line) on malformed
/// documents or keys outside the universal schema.
[[nodiscard]] std::optional<std::vector<std::string>> config_to_args(
    const obs::json::Value& root, ConfigTool tool, std::string* error);

/// Reads + parses `path` and converts it (see config_to_args).
[[nodiscard]] std::optional<std::vector<std::string>> load_config_args(
    const std::string& path, ConfigTool tool, std::string* error);

/// Legacy spellings: ConfigTool::kAny.
[[nodiscard]] inline std::optional<std::vector<std::string>> config_to_args(
    const obs::json::Value& root, std::string* error) {
  return config_to_args(root, ConfigTool::kAny, error);
}
[[nodiscard]] inline std::optional<std::vector<std::string>> load_config_args(
    const std::string& path, std::string* error) {
  return load_config_args(path, ConfigTool::kAny, error);
}

}  // namespace sstsp::run
