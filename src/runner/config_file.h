// JSON config files for the runner tools (--config).
//
// A config file is one flat JSON object whose keys are CLI flag names
// (without the leading "--") and whose values are the flag arguments:
//
//   {
//     "protocol": "sstsp",
//     "nodes": 5,
//     "duration": 10,
//     "departures": [300, 500, 800],
//     "monitor": "strict",
//     "chart": true
//   }
//
// The object is converted to the equivalent argv vector and spliced into
// the command line at the position of the --config flag, so flags after
// --config override the file and flags before it are overridden by it.
// Conversion rules:
//   * true        -> bare flag ("chart": true -> --chart); false is omitted
//   * number      -> flag + value (integers render without a decimal point)
//   * string      -> flag + value; "monitor": "strict" is the one
//                    =-style special case (-> --monitor=strict)
//   * array       -> flag + comma-joined scalars ("churn": [200,0.05,50])
//   * "config"    -> rejected (config files do not nest)
//
// Because the conversion is flag-schema-agnostic, the same loader serves
// every tool (sstsp_sim scenario flags, sstsp_node endpoint flags, ...);
// unknown keys are diagnosed by the tool's own parser, with the same
// message a mistyped flag would get.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace sstsp::run {

/// Converts a parsed config object into argv-style flags.  nullopt +
/// *error when the document is not a flat object of scalars/arrays.
[[nodiscard]] std::optional<std::vector<std::string>> config_to_args(
    const obs::json::Value& root, std::string* error);

/// Reads + parses `path` and converts it (see config_to_args).
[[nodiscard]] std::optional<std::vector<std::string>> load_config_args(
    const std::string& path, std::string* error);

}  // namespace sstsp::run
