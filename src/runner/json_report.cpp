#include "runner/json_report.h"

#include <ostream>

#include "core/discipline.h"
#include "obs/provenance.h"

namespace sstsp::run {

namespace {

void append_optional(obs::json::Writer& w, std::string_view key,
                     const std::optional<double>& v) {
  if (v) {
    w.kv(key, *v);
  } else {
    w.kv_null(key);
  }
}

void append_protocol_stats(obs::json::Writer& w,
                           const proto::ProtocolStats& s) {
  w.begin_object();
  w.kv("beacons_sent", s.beacons_sent);
  w.kv("beacons_received", s.beacons_received);
  w.kv("adoptions", s.adoptions);
  w.kv("adjustments", s.adjustments);
  w.kv("rejected_interval", s.rejected_interval);
  w.kv("rejected_key", s.rejected_key);
  w.kv("rejected_mac", s.rejected_mac);
  w.kv("rejected_guard", s.rejected_guard);
  w.kv("elections_won", s.elections_won);
  w.kv("demotions", s.demotions);
  w.kv("coarse_steps", s.coarse_steps);
  w.kv("solver_rejections", s.solver_rejections);
  w.end_object();
}

void append_body(obs::json::Writer& w, const Scenario& scenario,
                 const RunResult& result) {
  // Bump kRunSchemaVersion (runner/json_report.h) whenever a field is
  // removed or its meaning changes; purely additive fields do not bump it.
  w.kv("schema_version", static_cast<std::int64_t>(kRunSchemaVersion));
  w.kv("protocol", protocol_name(scenario.protocol));
  w.kv("nodes", static_cast<std::int64_t>(scenario.num_nodes));
  w.kv("duration_s", scenario.duration_s);
  w.kv("seed", static_cast<std::uint64_t>(scenario.seed));
  w.kv("attack",
       scenario.attack.empty() ? std::string_view("none")
                               : std::string_view(scenario.attack));
  append_optional(w, "sync_latency_s", result.sync_latency_s);
  append_optional(w, "steady_max_us", result.steady_max_us);
  append_optional(w, "steady_p99_us", result.steady_p99_us);
  if (scenario.cluster.enabled()) {
    w.key("cluster").begin_object();
    w.kv("clusters", static_cast<std::int64_t>(scenario.cluster.clusters));
    w.kv("nodes_per_cluster",
         static_cast<std::int64_t>(scenario.cluster.nodes_per_cluster));
    w.kv("gateways", static_cast<std::int64_t>(scenario.cluster.gateways));
    w.kv("max_depth", static_cast<std::int64_t>(scenario.cluster.max_depth()));
    w.kv("hop_bound_us", scenario.cluster.hop_bound_us);
    w.kv("cross_cluster_bound_us",
         scenario.cluster.cross_cluster_bound_us());
    append_optional(w, "steady_inter_cluster_max_us",
                    result.cluster_steady_max_us);
    w.end_object();
  }
  w.kv("events_processed", result.events_processed);
  w.kv("wall_seconds", result.wall_seconds);

  w.key("channel").begin_object();
  w.kv("transmissions", result.channel.transmissions);
  w.kv("collided", result.channel.collided_transmissions);
  w.kv("deliveries", result.channel.deliveries);
  w.kv("per_drops", result.channel.per_drops);
  w.kv("half_duplex_suppressed", result.channel.half_duplex_suppressed);
  w.kv("bytes_on_air", result.channel.bytes_on_air);
  w.end_object();

  w.key("honest");
  append_protocol_stats(w, result.honest);
  if (result.attacker) {
    w.key("attacker");
    append_protocol_stats(w, *result.attacker);
  } else {
    w.kv_null("attacker");
  }

  // Additive: only emitted for non-default disciplines so that runs using
  // the paper solver keep byte-identical summaries (bit-compatibility
  // contract, see core/discipline.h).
  if (scenario.sstsp.discipline.effective_name() != "paper") {
    w.key("discipline").begin_object();
    w.kv("name", scenario.sstsp.discipline.effective_name());
    w.key("verdicts").begin_object();
    const auto names = core::discipline_verdict_names();
    for (std::size_t v = 0;
         v < names.size() && v < result.honest.discipline_verdicts.size();
         ++v) {
      w.kv(names[v], result.honest.discipline_verdicts[v]);
    }
    w.end_object();
    w.end_object();
  }

  if (result.net) {
    w.key("net").begin_object();
    w.key("transport").begin_object();
    w.kv("datagrams_sent", result.net->transport.datagrams_sent);
    w.kv("bytes_sent", result.net->transport.bytes_sent);
    w.kv("send_errors", result.net->transport.send_errors);
    w.kv("datagrams_received", result.net->transport.datagrams_received);
    w.kv("bytes_received", result.net->transport.bytes_received);
    w.kv("recv_errors", result.net->transport.recv_errors);
    w.end_object();
    w.kv("frames_sent", result.net->frames_sent);
    w.kv("frames_received", result.net->frames_received);
    w.kv("self_frames_dropped", result.net->self_frames_dropped);
    w.kv("decode_errors", result.net->decode_errors);
    w.kv("stale_frames_dropped", result.net->stale_frames_dropped);
    w.end_object();
  } else {
    w.kv_null("net");
  }

  w.key("metrics");
  result.metrics.append_json(w);
  if (result.profile) {
    w.key("profile");
    result.profile->append_json(w);
  } else {
    w.kv_null("profile");
  }
  if (result.audit) {
    w.key("audit");
    result.audit->append_json(w);
  } else {
    w.kv_null("audit");
  }
  if (result.recovery) {
    w.key("recovery");
    result.recovery->append_json(w);
  } else {
    w.kv_null("recovery");
  }
  obs::append_provenance_json(w);
}

}  // namespace

void append_run_json(obs::json::Writer& w, const Scenario& scenario,
                     const RunResult& result) {
  w.begin_object();
  append_body(w, scenario, result);
  w.end_object();
}

void write_summary_jsonl(std::ostream& os, const Scenario& scenario,
                         const RunResult& result) {
  obs::json::Writer w(os);
  w.begin_object();
  w.kv("type", "summary");
  append_body(w, scenario, result);
  w.end_object();
  os << '\n';
}

void write_run_json(std::ostream& os, const Scenario& scenario,
                    const RunResult& result) {
  obs::json::Writer w(os);
  append_run_json(w, scenario, result);
  os << '\n';
}

}  // namespace sstsp::run
