// ParallelNetwork: the sharded counterpart of run::Network.
//
// Materializes a Scenario onto the parallel kernel: a sim::ShardExecutor
// (one simulator per shard + one control simulator), a mac::ShardedWorld
// partitioning the deployment, and the stations distributed across shards.
// The run-global timeline — churn, reference departures, clock-spread
// sampling — executes on the control simulator between windows, serialized
// against every shard, replicating Network's schedule and RNG substream
// keying draw for draw; with the kernel's exactness contract (DESIGN.md
// §12) a run is bit-identical for any --threads/--shards combination.
//
// Deliberately narrower than Network: fault plans, invariant monitoring,
// telemetry streaming, flight recording and the phase sampler are not
// wired into the sharded kernel yet, and the constructor rejects scenarios
// requesting them (std::runtime_error) rather than silently dropping them.
#pragma once

#include <memory>
#include <vector>

#include "core/key_directory.h"
#include "mac/sharded_channel.h"
#include "metrics/series.h"
#include "obs/instruments.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "protocols/station.h"
#include "runner/experiment.h"
#include "runner/scenario.h"
#include "sim/shard_exec.h"
#include "trace/event_trace.h"

namespace sstsp::run {

class ParallelNetwork {
 public:
  /// Throws std::runtime_error when the scenario requests a feature the
  /// sharded kernel does not support, or when the PHY parameters leave no
  /// conservative lookahead (cca_time or rx_latency_min of zero).
  explicit ParallelNetwork(const Scenario& scenario);

  ParallelNetwork(const ParallelNetwork&) = delete;
  ParallelNetwork& operator=(const ParallelNetwork&) = delete;

  /// Runs the full scenario (power-on through duration_s).
  void run();

  [[nodiscard]] const Scenario& scenario() const { return scenario_; }
  [[nodiscard]] int shard_count() const { return exec_.shard_count(); }

  [[nodiscard]] const metrics::Series& max_diff_series() const {
    return max_diff_;
  }
  [[nodiscard]] mac::ChannelStats channel_stats() const {
    return world_->stats();
  }
  [[nodiscard]] proto::ProtocolStats honest_stats() const;
  [[nodiscard]] const proto::ProtocolStats* attacker_stats() const;
  [[nodiscard]] std::uint64_t events_processed() const {
    return exec_.total_events();
  }

  [[nodiscard]] std::size_t station_count() const { return stations_.size(); }
  [[nodiscard]] proto::Station& station(std::size_t i) {
    return *stations_[i];
  }

  /// Merged view of every shard registry (plus the control registry);
  /// counters sum, histograms merge bucket-wise, in shard order.
  [[nodiscard]] obs::RegistrySnapshot metrics_snapshot() const;

  /// Per-shard protocol-event traces; empty unless trace_capacity > 0.
  /// Events of one shard are in record order; use trace::EventTrace::select
  /// and sort across shards for a global view.
  [[nodiscard]] const std::vector<std::unique_ptr<trace::EventTrace>>&
  shard_traces() const {
    return traces_;
  }

  /// Merged per-shard profiler phases; meaningful only when
  /// Scenario::profile is set.
  [[nodiscard]] obs::ProfileSnapshot profile_snapshot(
      double wall_seconds) const;

  /// Deterministic cross-shard trace merge: every retained per-shard event
  /// sorted by (time, node, kind) — a stable sort, so one node's causal
  /// order survives — replayed into a fresh ring of the scenario's
  /// capacity.  nullptr unless trace_capacity > 0.  Per-shard rings drop
  /// their oldest slices independently, so under eviction the merged ring
  /// holds each shard's newest slice, not a globally-newest window.
  [[nodiscard]] std::unique_ptr<trace::EventTrace> merged_trace() const;

 private:
  void build_stations();
  void arm();
  void schedule_environment();
  void schedule_sampling();
  void sample_clock_spread();
  [[nodiscard]] std::optional<std::size_t> current_reference_index() const;
  [[nodiscard]] sim::Simulator& control() { return exec_.control(); }
  void publish_shard_metrics();

  Scenario scenario_;
  sim::ShardExecutor exec_;
  std::unique_ptr<mac::ShardedWorld> world_;
  /// One key directory per shard (verification caches are per-receiver-
  /// shard); each holds the chains of every node audible to that shard.
  std::vector<std::unique_ptr<core::KeyDirectory>> directories_;
  std::vector<std::unique_ptr<proto::Station>> stations_;  // global id order
  std::vector<std::unique_ptr<trace::EventTrace>> traces_;
  /// registries_[0..S-1] per shard; control_registry_ for sampling-side
  /// instruments and the kernel's own gauges.
  std::vector<std::unique_ptr<obs::Registry>> registries_;
  obs::Registry control_registry_;
  std::vector<std::unique_ptr<obs::Instruments>> instruments_;
  std::unique_ptr<obs::Instruments> control_instruments_;
  std::vector<std::unique_ptr<obs::Profiler>> profilers_;
  std::size_t attacker_index_;  // == stations_.size() when no attacker
  metrics::Series max_diff_;
  std::vector<double> sample_values_;  // reused per sampling tick
  bool armed_{false};
};

/// Collects a finished ParallelNetwork run into a RunResult (the sharded
/// counterpart of collect_result(Network&, double)).
[[nodiscard]] RunResult collect_result(ParallelNetwork& net,
                                       double wall_seconds);

/// Builds, runs and collects a sharded scenario (the --threads > 0 path of
/// run_scenario).
[[nodiscard]] RunResult run_parallel_scenario(const Scenario& scenario);

}  // namespace sstsp::run
