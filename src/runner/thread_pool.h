// Minimal fixed-size thread pool for embarrassingly parallel sweeps.
//
// Parallelism in this library is explicit and coarse-grained, following the
// HPC guides: one Simulator per task, zero shared mutable state between
// tasks, results written to pre-sized slots (no locking on the data path).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sstsp::run {

class ThreadPool {
 public:
  /// `threads` == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Tasks must not throw (simulation code reports errors
  /// through result objects); an escaping exception terminates, by design.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_{0};
  bool stop_{false};
};

/// Runs `tasks` on a temporary pool and returns when all are done.
void run_parallel(std::vector<std::function<void()>> tasks,
                  unsigned threads = 0);

}  // namespace sstsp::run
