// Network: materializes a Scenario into a simulator, channel, stations and
// schedule of environmental events (churn, reference departures, attacks,
// metric sampling), then runs it.
#pragma once

#include <csignal>
#include <memory>
#include <vector>

#include "core/key_directory.h"
#include "fault/injector.h"
#include "fault/recovery.h"
#include "obs/flight_recorder.h"
#include "obs/instruments.h"
#include "obs/invariants.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "trace/event_trace.h"
#include "trace/lifecycle.h"
#include "metrics/series.h"
#include "protocols/station.h"
#include "runner/scenario.h"

namespace sstsp::run {

class Network {
 public:
  explicit Network(const Scenario& scenario);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Runs the full scenario (power-on through duration_s).
  void run();

  /// Runs up to `horizon_s` only; callable repeatedly (examples use this to
  /// interleave their own probes).
  void run_until(double horizon_s);

  /// Call once before the first run_until(); run() does this itself.
  void arm();

  [[nodiscard]] const metrics::Series& max_diff_series() const {
    return max_diff_;
  }

  /// Cluster runs only (empty otherwise): per-sample inter-cluster spread
  /// (max - min of per-cluster mean global readings, attached nodes only)
  /// and the fraction of awake honest nodes attached to the root timescale.
  [[nodiscard]] const metrics::Series& cluster_spread_series() const {
    return cluster_spread_;
  }
  [[nodiscard]] const metrics::Series& attach_fraction_series() const {
    return attach_fraction_;
  }
  [[nodiscard]] const mac::ChannelStats& channel_stats() const;
  [[nodiscard]] proto::ProtocolStats honest_stats() const;
  [[nodiscard]] const proto::ProtocolStats* attacker_stats() const;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const Scenario& scenario() const { return scenario_; }

  [[nodiscard]] std::size_t station_count() const { return stations_.size(); }
  [[nodiscard]] proto::Station& station(std::size_t i) {
    return *stations_[i];
  }

  /// Index of the station currently holding the reference role (SSTSP),
  /// or nullopt.
  [[nodiscard]] std::optional<std::size_t> current_reference_index() const;

  /// Instantaneous max pairwise difference of the synchronized clocks of
  /// awake, synchronized, honest stations (max - min; O(N)).
  [[nodiscard]] std::optional<double> instant_max_diff_us() const;

  /// The shared protocol-event trace; nullptr unless
  /// Scenario::trace_capacity > 0.
  [[nodiscard]] trace::EventTrace* trace() { return trace_.get(); }

  /// The run's metrics registry (always present; empty when
  /// Scenario::collect_metrics is false).
  [[nodiscard]] obs::Registry& metrics_registry() { return registry_; }
  [[nodiscard]] const obs::Registry& metrics_registry() const {
    return registry_;
  }

  /// The hot-path profiler; nullptr unless Scenario::profile is set.
  [[nodiscard]] obs::Profiler* profiler() { return profiler_.get(); }

  /// The phase-sampling profiler; nullptr unless Scenario::phase_sampler is
  /// set.  Records into metrics_registry().
  [[nodiscard]] obs::PhaseSampler* phase_sampler() {
    return phase_sampler_.get();
  }

  /// The invariant monitor / lifecycle tracker; nullptr unless
  /// Scenario::monitor is set.
  [[nodiscard]] obs::InvariantMonitor* monitor() { return monitor_.get(); }
  [[nodiscard]] const obs::InvariantMonitor* monitor() const {
    return monitor_.get();
  }
  [[nodiscard]] trace::BeaconLifecycle* lifecycle() {
    return lifecycle_.get();
  }

  /// Fault machinery; nullptr unless the scenario carries a fault plan.
  [[nodiscard]] fault::FaultInjector* fault_injector() {
    return injector_.get();
  }
  [[nodiscard]] fault::RecoveryTracker* recovery_tracker() {
    return recovery_.get();
  }

  /// Streaming telemetry / flight recorder; nullptr unless the scenario
  /// sets telemetry_out / flight_recorder_out.  The Network constructor
  /// throws std::runtime_error when either output path cannot be opened.
  [[nodiscard]] obs::TelemetrySampler* telemetry_sampler() {
    return sampler_.get();
  }
  [[nodiscard]] obs::FlightRecorder* flight_recorder() {
    return flight_.get();
  }

  /// Registers an async-signal flag (SIGUSR1 handler storage): when the
  /// flag is non-zero at a sampling tick, the flight recorder dumps with
  /// reason "dump-request" and the flag is cleared.
  void set_dump_request_flag(volatile std::sig_atomic_t* flag) {
    dump_flag_ = flag;
  }

 private:
  void build_stations();
  void schedule_environment();
  void schedule_clock_stress();
  void schedule_faults();
  void schedule_sampling();
  void sample_clock_spread();
  void sample_cluster(sim::SimTime now);
  void emit_telemetry(sim::SimTime now, bool have, double lo, double hi,
                      double sum);

  Scenario scenario_;
  sim::Simulator sim_;
  mac::Channel channel_;
  core::KeyDirectory directory_;
  std::vector<std::unique_ptr<proto::Station>> stations_;
  std::unique_ptr<trace::EventTrace> trace_;
  obs::Registry registry_;
  std::unique_ptr<obs::Instruments> instruments_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::PhaseSampler> phase_sampler_;
  std::unique_ptr<obs::InvariantMonitor> monitor_;
  std::unique_ptr<trace::BeaconLifecycle> lifecycle_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::RecoveryTracker> recovery_;
  std::unique_ptr<obs::JsonlSink> flight_sink_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::JsonlSink> telemetry_sink_;
  std::unique_ptr<obs::TelemetrySampler> sampler_;
  volatile std::sig_atomic_t* dump_flag_{nullptr};
  std::size_t attacker_index_;  // == stations_.size() when no attacker
  metrics::Series max_diff_;
  metrics::Series cluster_spread_;
  metrics::Series attach_fraction_;
  std::vector<double> sample_values_;  // reused per sampling tick
  std::vector<double> cluster_sum_;    // per-cluster scratch, cluster runs
  std::vector<int> cluster_n_;
  bool armed_{false};
};

}  // namespace sstsp::run
