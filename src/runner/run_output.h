// Shared result-output plumbing for the runner tools.
//
// sstsp_sim, sstsp_swarm and sstsp_node all end a run the same way: print
// the human-readable summary (+ profile + audit), optionally stream the
// event trace as JSONL with a terminating summary record, optionally write
// the CSV series / metrics JSON document / trace dump, and turn a
// --monitor=strict violation into a non-zero exit.  This helper owns that
// sequence so the tools stay thin and their outputs stay byte-compatible
// (the PR-2 audit/trace tooling reads all three the same way).
//
// Usage:
//   run::RunOutput output(run::OutputOptions::from_cli(*opts));
//   if (!output.begin(net.trace(), &error)) { ... return 1; }
//   ... run ...
//   return output.finish(std::cout, std::cerr, scenario, result,
//                        net.trace());
#pragma once

#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>

#include "obs/timeline.h"
#include "runner/cli.h"
#include "runner/experiment.h"
#include "runner/scenario.h"
#include "trace/event_trace.h"

namespace sstsp::run {

struct OutputOptions {
  std::string csv_path;          ///< empty: no CSV dump
  std::string json_out_path;     ///< empty: no JSONL event/summary stream
  std::string metrics_out_path;  ///< empty: no metrics JSON document
  std::string timeline_out_path;  ///< empty: no Perfetto trace JSON
  std::string prom_textfile_path;  ///< empty: no Prometheus textfile dump
  bool ascii_chart = false;
  bool dump_trace = false;
  std::size_t trace_limit = 40;
  std::optional<trace::EventKind> trace_kind;
  bool monitor_strict = false;

  [[nodiscard]] static OutputOptions from_cli(const CliOptions& opts);
};

/// Prints the result block (latency/steady/beacons/rejections, wire stats
/// when present, profile, audit) — the part of the summary that does not
/// depend on which front end ran the scenario.
void print_result_summary(std::ostream& out, const RunResult& result);

class RunOutput {
 public:
  explicit RunOutput(OutputOptions options) : options_(std::move(options)) {}

  RunOutput(const RunOutput&) = delete;
  RunOutput& operator=(const RunOutput&) = delete;

  /// Opens --json-out and attaches the streaming JSONL sink.  Must run
  /// before the scenario does: the sink streams at record time, so the
  /// file captures the complete stream even though the in-memory ring only
  /// retains the newest slice.  false + *error on failure (including
  /// --json-out without a trace).
  [[nodiscard]] bool begin(trace::EventTrace* trace, std::string* error);

  /// Routes profiler span edges into the --timeline-out document as B/E
  /// events (wall-time track).  Call after begin(), before the run; no-op
  /// unless both --profile and --timeline-out are active.
  void attach_profiler(obs::Profiler* profiler);

  /// Emits everything post-run.  Returns the process exit code: 0 on
  /// success, 1 on an output I/O failure, 3 when --monitor=strict and the
  /// audit is not clean.
  [[nodiscard]] int finish(std::ostream& out, std::ostream& err,
                           const Scenario& scenario, const RunResult& result,
                           trace::EventTrace* trace);

  /// The timeline writer (for tools that attach counters of their own).
  [[nodiscard]] obs::TimelineWriter& timeline() { return timeline_; }

 private:
  OutputOptions options_;
  std::ofstream json_out_;
  obs::TimelineWriter timeline_;
  obs::Profiler* span_profiler_{nullptr};
};

}  // namespace sstsp::run
