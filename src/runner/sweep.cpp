#include "runner/sweep.h"

#include "runner/thread_pool.h"

namespace sstsp::run {

std::vector<RunResult> run_sweep(const std::vector<Scenario>& scenarios,
                                 unsigned threads) {
  std::vector<RunResult> results(scenarios.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    tasks.push_back(
        [&results, &scenarios, i] { results[i] = run_scenario(scenarios[i]); });
  }
  run_parallel(std::move(tasks), threads);
  return results;
}

}  // namespace sstsp::run
