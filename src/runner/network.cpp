#include "runner/network.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "attack/adversary.h"
#include "cluster/sstsp_cluster.h"
#include "core/sstsp.h"
#include "crypto/hash_chain.h"
#include "obs/json.h"
#include "protocols/tsf_family.h"

namespace sstsp::run {

Network::Network(const Scenario& scenario)
    : scenario_(scenario),
      sim_(scenario.seed),
      channel_(sim_, scenario.phy),
      attacker_index_(0) {
  if (scenario_.cluster.enabled()) {
    const auto& c = scenario_.cluster;
    if (scenario_.protocol != ProtocolKind::kSstsp) {
      throw std::runtime_error("cluster scenarios require the SSTSP protocol");
    }
    if (!scenario_.attack.empty()) {
      throw std::runtime_error(
          "cluster scenarios do not support attacker stations");
    }
    if (scenario_.num_nodes != c.total_nodes()) {
      throw std::runtime_error(
          "cluster scenarios require num_nodes == clusters * "
          "nodes_per_cluster");
    }
    if (c.gateways < 1 || c.gateways >= c.nodes_per_cluster) {
      throw std::runtime_error(
          "cluster scenarios need 1 <= gateways < nodes_per_cluster");
    }
    // The geometry contract (cluster/cluster_config.h): members hear their
    // reference, gateways hear both clusters, and bridge announcements of
    // cluster c reach the gateways of c+1.
    const double range = scenario_.phy.radio_range_m;
    if (range > 0.0 &&
        (2.0 * c.radius_m > range || c.spacing_m / 2.0 + c.radius_m > range ||
         c.spacing_m > range)) {
      throw std::runtime_error(
          "cluster geometry violates the radio-range contract "
          "(need 2*radius, spacing/2 + radius and spacing <= range)");
    }
  }
  if (scenario_.collect_metrics) {
    instruments_ = std::make_unique<obs::Instruments>(registry_);
    sim_.set_instruments(instruments_.get());
    channel_.set_instruments(instruments_.get());
    if (scenario_.sstsp.discipline.effective_name() != "paper") {
      // Per-verdict counters only for non-default disciplines: the default
      // path's registry snapshot (and with it the seeded run JSON) must
      // stay byte-identical (DESIGN.md §14).
      instruments_->enable_discipline(
          scenario_.sstsp.discipline.effective_name(),
          core::discipline_verdict_names());
    }
  }
  if (scenario_.profile) {
    profiler_ = std::make_unique<obs::Profiler>();
    sim_.set_profiler(profiler_.get());
    channel_.set_profiler(profiler_.get());
  }
  if (scenario_.phase_sampler) {
    obs::PhaseSampler::Options opt;
    if (scenario_.phase_sampler_interval_s > 0.0) {
      opt.interval_s = scenario_.phase_sampler_interval_s;
    }
    phase_sampler_ = std::make_unique<obs::PhaseSampler>(opt, registry_);
    phase_sampler_->attach_profiler(profiler_.get());
    sim_.set_phase_sampler(phase_sampler_.get());
  }
  if (scenario_.monitor) {
    obs::InvariantConfig cfg;
    cfg.sstsp_checks = scenario_.protocol == ProtocolKind::kSstsp;
    cfg.bp_us = scenario_.phy.beacon_period.to_us();
    cfg.m = scenario_.sstsp.m;
    cfg.l = scenario_.sstsp.l;
    cfg.t0_us = scenario_.sstsp.t0_us;
    cfg.interval_slack_us = scenario_.sstsp.interval_slack_us;
    cfg.k_min = scenario_.sstsp.k_min;
    cfg.k_max = scenario_.sstsp.k_max;
    if (scenario_.cluster.enabled()) {
      // The global spread now includes the inter-cluster translation error,
      // so the single-domain Lemma-1 thresholds widen by the documented
      // cross-cluster bound; the dedicated cluster-spread check enforces
      // the bound itself.
      const double bound = scenario_.cluster.cross_cluster_bound_us();
      cfg.converged_threshold_us += bound;
      cfg.diverge_threshold_us += bound;
      cfg.cluster_max_depth = scenario_.cluster.max_depth();
      cfg.cluster_hop_bound_us = scenario_.cluster.hop_bound_us;
    }
    monitor_ = std::make_unique<obs::InvariantMonitor>(cfg);
    lifecycle_ = std::make_unique<trace::BeaconLifecycle>(registry_);
    if (scenario_.cluster.enabled()) {
      std::vector<obs::NodeDomainInfo> topo(
          static_cast<std::size_t>(scenario_.num_nodes));
      for (int i = 0; i < scenario_.num_nodes; ++i) {
        const int c = cluster::cluster_of(scenario_.cluster,
                                          static_cast<mac::NodeId>(i));
        topo[static_cast<std::size_t>(i)].cluster = c;
        topo[static_cast<std::size_t>(i)].phase_us =
            cluster::phase_of(scenario_.cluster, c);
      }
      monitor_->set_cluster_topology(std::move(topo));
    }
  }
  if (!scenario_.faults.empty()) {
    // The injector owns its RNG substream, keyed by the plan's seed: the
    // channel's own draw sequence is untouched, so attaching a plan never
    // perturbs the baseline run and the same (plan, seed) pair replays
    // bit-identically.
    injector_ = std::make_unique<fault::FaultInjector>(
        scenario_.faults, sim_.substream("faults", scenario_.faults.seed));
    channel_.set_fault_injector(injector_.get());
    recovery_ = std::make_unique<fault::RecoveryTracker>(
        scenario_.phy.beacon_period.to_us() * 1e-6,
        /*sync_threshold_us=*/25.0);
    if (monitor_ != nullptr) {
      // Planned partitions and node outages are disturbances, not
      // violations: suspend the invariants a healthy network is *supposed*
      // to break while recovering (one reference per partition, Lemma 1
      // restart).
      for (const auto& p : scenario_.faults.partitions) {
        monitor_->add_disturbance(
            sim::SimTime::from_sec_double(p.start_s),
            p.end_s < 0.0 ? sim::SimTime::never()
                          : sim::SimTime::from_sec_double(p.end_s));
      }
      for (const auto& f : scenario_.faults.node_faults) {
        monitor_->add_disturbance(
            sim::SimTime::from_sec_double(f.at_s),
            f.restart_s < 0.0 ? sim::SimTime::from_sec_double(f.at_s)
                              : sim::SimTime::from_sec_double(f.restart_s));
      }
      for (const auto& c : scenario_.faults.clock_faults) {
        monitor_->add_disturbance(sim::SimTime::from_sec_double(c.at_s),
                                  sim::SimTime::from_sec_double(c.at_s));
      }
    }
  }
  if (!scenario_.flight_recorder_out.empty()) {
    flight_sink_ = std::make_unique<obs::JsonlSink>();
    std::string err;
    if (!flight_sink_->open(scenario_.flight_recorder_out, &err)) {
      throw std::runtime_error(err);
    }
    obs::FlightRecorder::Config cfg;
    cfg.event_capacity = scenario_.flight_capacity;
    flight_ = std::make_unique<obs::FlightRecorder>(cfg, flight_sink_.get());
    if (monitor_ != nullptr) {
      // Dump the retained history the instant a *new* violation class
      // appears — the post-mortem is written before the failure cascades.
      monitor_->set_on_new_record(
          [this](sim::SimTime now, const obs::AuditRecord& rec) {
            flight_->on_audit_record(now.to_sec(), rec);
          });
    }
  }
  if (!scenario_.telemetry_out.empty()) {
    telemetry_sink_ = std::make_unique<obs::JsonlSink>();
    std::string err;
    if (!telemetry_sink_->open(scenario_.telemetry_out, &err)) {
      throw std::runtime_error(err);
    }
    obs::TelemetrySampler::Options opt;
    opt.interval_s =
        scenario_.telemetry_interval_s > 0.0 ? scenario_.telemetry_interval_s
                                             : 1.0;
    opt.source = "sim";
    sampler_ = std::make_unique<obs::TelemetrySampler>(
        opt, [this](const obs::TelemetrySample& sample) {
          telemetry_sink_->write_line(obs::telemetry_to_jsonl(sample));
          if (flight_ != nullptr) flight_->on_sample(sample);
        });
  }
  build_stations();
}

void Network::build_stations() {
  const int n = scenario_.num_nodes;
  const bool has_attacker = !scenario_.attack.empty();
  const int total = n + (has_attacker ? 1 : 0);
  attacker_index_ = has_attacker ? static_cast<std::size_t>(n)
                                 : static_cast<std::size_t>(total);

  sim::Rng placement = sim_.substream("placement", 0);
  sim::Rng clocks = sim_.substream("clocks", 0);

  const bool is_sstsp = scenario_.protocol == ProtocolKind::kSstsp;

  const bool cluster_mode = scenario_.cluster.enabled();
  for (int i = 0; i < total; ++i) {
    mac::Position pos;
    if (cluster_mode) {
      const auto cid = static_cast<mac::NodeId>(i);
      if (cluster::is_gateway(scenario_.cluster, cid)) {
        // Deterministic (no placement draw): gateways must sit where both
        // clusters are in range, not wherever the disc sampler lands.
        pos = cluster::gateway_position(scenario_.cluster, cid);
      } else {
        const double r =
            scenario_.cluster.radius_m * std::sqrt(placement.uniform());
        const double theta = placement.uniform(0.0, 2.0 * M_PI);
        const mac::Position center = cluster::cluster_center(
            scenario_.cluster, cluster::cluster_of(scenario_.cluster, cid));
        pos = {center.x_m + r * std::cos(theta),
               center.y_m + r * std::sin(theta)};
      }
    } else {
      // Uniform position in the deployment disc.
      const double r =
          scenario_.phy.placement_radius_m * std::sqrt(placement.uniform());
      const double theta = placement.uniform(0.0, 2.0 * M_PI);
      pos = {r * std::cos(theta), r * std::sin(theta)};
    }

    auto drift = clk::DriftModel::uniform(clocks, scenario_.max_drift_ppm);
    const double offset = clocks.uniform(-scenario_.initial_offset_us,
                                         scenario_.initial_offset_us);
    const auto id = static_cast<mac::NodeId>(i);
    if (has_attacker && static_cast<std::size_t>(i) == attacker_index_) {
      // Some adversaries bring deliberately tuned oscillator hardware
      // (e.g. the TSF attacker's fast clock that wins every contention,
      // §5); the registry publishes the factor, NaN = honest draw.
      const double factor =
          attack::adversary_drift_factor(scenario_.attack);
      if (!std::isnan(factor)) {
        drift = clk::DriftModel::from_ppm(factor * scenario_.max_drift_ppm);
      }
    }

    auto station = std::make_unique<proto::Station>(
        sim_, channel_, id, clk::HardwareClock(drift, offset), pos);

    if (is_sstsp) {
      // Every node (including the internal attacker) owns a published
      // chain; see core/key_directory.h for the trust-bootstrap model.
      directory_.register_node(
          id, crypto::ChainParams{crypto::derive_seed(scenario_.seed, id),
                                  scenario_.sstsp.chain_length});
    }
    stations_.push_back(std::move(station));
  }

  for (int i = 0; i < total; ++i) {
    proto::Station& st = *stations_[static_cast<std::size_t>(i)];
    const bool is_attacker =
        has_attacker && static_cast<std::size_t>(i) == attacker_index_;

    std::unique_ptr<proto::SyncProtocol> proto;
    if (is_attacker) {
      std::optional<obs::json::Value> params;
      if (!scenario_.attack_params_json.empty()) {
        params = obs::json::parse(scenario_.attack_params_json);
        if (!params) {
          throw std::runtime_error("invalid attack params JSON: " +
                                   scenario_.attack_params_json);
        }
      }
      attack::AdversaryContext ctx{st,
                                   directory_,
                                   scenario_.sstsp,
                                   scenario_.tsf_attack,
                                   scenario_.sstsp_attack,
                                   params ? &*params : nullptr};
      proto = attack::make_adversary(scenario_.attack, ctx);
      if (proto == nullptr) {
        // CLI / config validation rejects unknown names before we get
        // here; a programmatic Scenario with a typo'd name should fail
        // loudly, not run attacker-less.
        throw std::runtime_error("unknown adversary: " + scenario_.attack);
      }
    } else {
      switch (scenario_.protocol) {
        case ProtocolKind::kTsf:
          proto = std::make_unique<proto::Tsf>(st);
          break;
        case ProtocolKind::kAtsp:
          proto = std::make_unique<proto::Atsp>(st, scenario_.atsp);
          break;
        case ProtocolKind::kTatsp:
          proto = std::make_unique<proto::Tatsp>(st, scenario_.tatsp);
          break;
        case ProtocolKind::kSatsf:
          proto = std::make_unique<proto::Satsf>(st, scenario_.satsf);
          break;
        case ProtocolKind::kRentelKunz:
          proto = std::make_unique<proto::RentelKunz>(st,
                                                      scenario_.rentel_kunz);
          break;
        case ProtocolKind::kSstsp: {
          if (scenario_.cluster.enabled()) {
            const auto& spec = scenario_.cluster;
            const auto cid = static_cast<mac::NodeId>(i);
            cluster::ClusterSstsp::Options copts;
            copts.spec = spec;
            copts.cluster = cluster::cluster_of(spec, cid);
            copts.gateway = cluster::is_gateway(spec, cid);
            // Preestablished references: the first non-gateway member of
            // every cluster (gateways must stay followers — their chain is
            // spent on the bridge, and a reference cannot also be passive
            // uplink prey to guard resets).
            copts.start_as_reference =
                scenario_.preestablished_reference &&
                cluster::member_index(spec, cid) ==
                    (copts.cluster == 0 ? 0 : spec.gateways);
            proto = std::make_unique<cluster::ClusterSstsp>(
                st, scenario_.sstsp, directory_, copts);
            break;
          }
          core::Sstsp::Options opts;
          opts.calibrated_boot = true;
          opts.start_as_reference =
              scenario_.preestablished_reference && i == 0;
          proto = std::make_unique<core::Sstsp>(st, scenario_.sstsp,
                                                directory_, opts);
          break;
        }
      }
    }
    st.set_protocol(std::move(proto));
  }

  if (scenario_.trace_capacity > 0) {
    trace_ = std::make_unique<trace::EventTrace>(scenario_.trace_capacity);
    for (auto& station : stations_) station->set_trace(trace_.get());
  }
  for (auto& station : stations_) {
    station->set_instruments(instruments_.get());
    station->set_profiler(profiler_.get());
    station->set_monitor(monitor_.get());
    station->set_lifecycle(lifecycle_.get());
    station->set_recovery(recovery_.get());
    station->set_flight(flight_.get());
  }
}

void Network::arm() {
  if (armed_) return;
  armed_ = true;
  for (auto& st : stations_) st->power_on();
  schedule_environment();
  schedule_faults();
  schedule_sampling();
}

void Network::schedule_faults() {
  if (scenario_.faults.empty()) return;
  fault::FaultHooks hooks;
  hooks.current_reference = [this]() -> std::optional<mac::NodeId> {
    const auto idx = current_reference_index();
    if (!idx) return std::nullopt;
    // Station channel indices double as node ids in the scenario runner.
    return static_cast<mac::NodeId>(*idx);
  };
  hooks.set_power = [this](mac::NodeId id, bool powered) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= stations_.size() || idx == attacker_index_) return;
    if (powered) {
      stations_[idx]->power_on();
    } else {
      stations_[idx]->power_off();
    }
  };
  hooks.clock_fault = [this](mac::NodeId id, double step_us,
                             double drift_delta_ppm) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= stations_.size()) return;
    stations_[idx]->inject_clock_fault(step_us, drift_delta_ppm);
  };
  if (recovery_ != nullptr) {
    hooks.on_node_fault = [this](const fault::NodeFault& f, mac::NodeId id) {
      // Losing the reference forces a re-election (the paper's l-BP
      // silence tolerance, §3.3); losing a follower only dents coverage.
      if (f.reference) {
        recovery_->expect_reelection(f.kind == fault::NodeFaultKind::kCrash
                                         ? "reference-crash"
                                         : "reference-pause",
                                     id, sim_.now().to_sec());
      } else if (scenario_.cluster.enabled() &&
                 cluster::is_gateway(scenario_.cluster, id)) {
        // Losing a gateway severs a cluster's translation path: wait for
        // the attach fraction to dip (stale-tau detachment) and return.
        recovery_->expect_reattach(f.kind == fault::NodeFaultKind::kCrash
                                       ? "gateway-crash"
                                       : "gateway-pause",
                                   id, sim_.now().to_sec());
      }
    };
    hooks.on_clock_fault = [this](const fault::ClockFault&, mac::NodeId id) {
      recovery_->expect_resync("clock-fault", id, sim_.now().to_sec());
    };
    // Partition heals that happen inside the run are re-sync deadlines.
    for (const auto& p : scenario_.faults.partitions) {
      if (p.end_s >= 0.0 && p.end_s < scenario_.duration_s) {
        const double heal_s = p.end_s;
        sim_.at(sim::SimTime::from_sec_double(heal_s), [this, heal_s] {
          recovery_->expect_resync("partition-heal", mac::kNoNode, heal_s);
        });
      }
    }
  }
  fault::schedule_fault_events(sim_, scenario_.faults, injector_.get(),
                               std::move(hooks));
}

void Network::schedule_environment() {
  // Churn: `fraction` of the honest, non-reference stations leave at each
  // multiple of period_s and return absence_s later.
  if (scenario_.churn) {
    const ChurnSpec churn = *scenario_.churn;
    std::uint64_t churn_index = 0;
    for (double t = churn.period_s; t < scenario_.duration_s;
         t += churn.period_s) {
      // Substreams are keyed by the churn-event index, not the (truncated)
      // event time: churn events less than 1 s apart would otherwise reuse
      // the same substream and pick identical leaver sets.
      const std::uint64_t event_index = churn_index++;
      sim_.at(sim::SimTime::from_sec_double(t), [this, churn, event_index] {
        sim::Rng pick = sim_.substream("churn", event_index);
        const auto ref = current_reference_index();
        const auto honest_count = std::min(
            stations_.size(), attacker_index_);
        const auto leavers = static_cast<std::size_t>(
            std::lround(churn.fraction * static_cast<double>(honest_count)));
        std::size_t left = 0;
        std::size_t guardrail = 0;
        while (left < leavers && guardrail++ < honest_count * 20) {
          const auto idx = static_cast<std::size_t>(
              pick.uniform_int(0, honest_count - 1));
          if (!stations_[idx]->awake()) continue;
          if (ref && *ref == idx) continue;  // ref departures are separate
          stations_[idx]->power_off();
          sim_.after(sim::SimTime::from_sec_double(churn.absence_s),
                     [this, idx] { stations_[idx]->power_on(); });
          ++left;
        }
      });
    }
  }

  // Reference departures (SSTSP experiments).
  for (const double t : scenario_.reference_departures_s) {
    sim_.at(sim::SimTime::from_sec_double(t), [this] {
      const auto ref = current_reference_index();
      if (!ref) return;
      const std::size_t idx = *ref;
      stations_[idx]->power_off();
      sim_.after(sim::SimTime::from_sec_double(scenario_.departure_absence_s),
                 [this, idx] { stations_[idx]->power_on(); });
    });
  }

  schedule_clock_stress();
}

void Network::schedule_clock_stress() {
  // Oscillator stressors (clock/drift_model.h): periodic per-honest-node
  // frequency deltas via inject_clock_fault, so phase stays continuous.
  if (!scenario_.clock_stress.enabled()) return;
  const auto honest_count = std::min(stations_.size(), attacker_index_);
  auto stressors = std::make_shared<std::vector<clk::DriftStressor>>();
  stressors->reserve(honest_count);
  for (std::size_t i = 0; i < honest_count; ++i) {
    stressors->emplace_back(scenario_.clock_stress,
                            sim_.substream("clock-stress", i));
  }
  const double dt_s = scenario_.clock_stress.period_s;
  const auto period = sim::SimTime::from_sec_double(dt_s);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, stressors, dt_s, period, tick, honest_count] {
    const double t_s = sim_.now().to_sec();
    for (std::size_t i = 0; i < honest_count; ++i) {
      const double delta = (*stressors)[i].step_delta_ppm(t_s, dt_s);
      if (delta != 0.0) stations_[i]->inject_clock_fault(0.0, delta);
    }
    if (sim_.now() + period <=
        sim::SimTime::from_sec_double(scenario_.duration_s)) {
      sim_.after(period, *tick);
    }
  };
  sim_.at(period, *tick);
}

void Network::schedule_sampling() {
  const auto period =
      sim::SimTime::from_sec_double(scenario_.sample_period_s);
  // Each sample schedules the next; the recursive closure lives in a
  // shared_ptr so the copies the event queue stores stay coherent.
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, tick] {
    sample_clock_spread();
    if (sim_.now() + period <=
        sim::SimTime::from_sec_double(scenario_.duration_s)) {
      sim_.after(period, *tick);
    }
  };
  sim_.at(period, *tick);
}

void Network::sample_clock_spread() {
  sample_values_.clear();
  const sim::SimTime now = sim_.now();
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (i == attacker_index_) continue;  // honest clocks only
    const proto::Station& st = *stations_[i];
    if (!st.awake() || !st.protocol().is_synchronized()) continue;
    sample_values_.push_back(st.protocol().network_time_us(now));
  }
  const bool have = !sample_values_.empty();
  double lo = 0.0;
  double hi = 0.0;
  double sum = 0.0;
  if (have) {
    lo = hi = sample_values_.front();
    for (const double v : sample_values_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    const double diff = hi - lo;
    max_diff_.push(now.to_sec(), diff);
    if (monitor_ != nullptr) monitor_->on_max_diff_sample(now, diff);
    if (recovery_ != nullptr) {
      recovery_->on_max_diff_sample(now.to_sec(), diff);
    }
    if (instruments_ != nullptr) {
      instruments_->on_max_diff_sample(diff);
      const double mean = sum / static_cast<double>(sample_values_.size());
      for (const double v : sample_values_) {
        instruments_->on_node_error_sample(std::fabs(v - mean));
      }
    }
  }
  if (scenario_.cluster.enabled()) sample_cluster(now);
  // Telemetry rides the same tick — no extra events, so a seeded run's
  // event/RNG sequence is identical with telemetry on or off.
  if (sampler_ != nullptr && sampler_->due(now.to_sec())) {
    emit_telemetry(now, have, lo, hi, sum);
  }
  if (dump_flag_ != nullptr && *dump_flag_ != 0) {
    *dump_flag_ = 0;
    if (flight_ != nullptr) {
      flight_->dump(now.to_sec(), "dump-request", nullptr);
    }
  }
}

void Network::sample_cluster(sim::SimTime now) {
  const auto& spec = scenario_.cluster;
  cluster_sum_.assign(static_cast<std::size_t>(spec.clusters), 0.0);
  cluster_n_.assign(static_cast<std::size_t>(spec.clusters), 0);
  int awake = 0;
  int attached = 0;
  for (const auto& station : stations_) {
    const proto::Station& st = *station;
    if (!st.awake()) continue;
    ++awake;
    // Cluster scenarios reject attackers and run ClusterSstsp on every
    // station, so the downcast is total.
    const auto& cs =
        static_cast<const cluster::ClusterSstsp&>(st.protocol());
    if (!cs.is_synchronized()) continue;
    ++attached;
    const auto c = static_cast<std::size_t>(cs.cluster());
    cluster_sum_[c] += cs.network_time_us(now);
    ++cluster_n_[c];
  }
  bool have = false;
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t c = 0; c < cluster_sum_.size(); ++c) {
    if (cluster_n_[c] == 0) continue;
    const double mean = cluster_sum_[c] / static_cast<double>(cluster_n_[c]);
    if (!have) {
      lo = hi = mean;
      have = true;
    } else {
      lo = std::min(lo, mean);
      hi = std::max(hi, mean);
    }
  }
  if (have) {
    const double spread = hi - lo;
    cluster_spread_.push(now.to_sec(), spread);
    if (monitor_ != nullptr) monitor_->on_cluster_spread_sample(now, spread);
  }
  const double fraction =
      awake > 0 ? static_cast<double>(attached) / static_cast<double>(awake)
                : 0.0;
  attach_fraction_.push(now.to_sec(), fraction);
  if (recovery_ != nullptr) {
    recovery_->on_cluster_attach_sample(now.to_sec(), fraction);
  }
}

void Network::emit_telemetry(sim::SimTime now, bool have, double lo,
                             double hi, double sum) {
  obs::TelemetrySample s;
  s.nodes_total = scenario_.num_nodes;
  int awake = 0;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (i == attacker_index_) continue;
    if (stations_[i]->awake()) ++awake;
  }
  s.nodes_awake = awake;
  s.nodes_synced = static_cast<int>(sample_values_.size());
  const auto ref = current_reference_index();
  if (ref) s.reference = static_cast<std::int64_t>(*ref);
  const auto count = sample_values_.size();
  const double mean = have ? sum / static_cast<double>(count) : 0.0;
  if (count >= 2) {
    s.max_offset_us = hi - lo;
    double abs_dev = 0.0;
    for (const double v : sample_values_) abs_dev += std::fabs(v - mean);
    s.mean_offset_us = abs_dev / static_cast<double>(count);
  }
  s.queue_depth = sim_.events_pending();
  if (monitor_ != nullptr) s.audit_records = monitor_->total_violations();
  s.recovery_pending = recovery_ != nullptr && recovery_->pending();

  const bool per_node =
      scenario_.telemetry_per_node > 0 ||
      (scenario_.telemetry_per_node < 0 && scenario_.num_nodes <= 64);
  if (per_node && have) {
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      if (i == attacker_index_) continue;
      const proto::Station& st = *stations_[i];
      obs::TelemetrySample::NodeError e;
      e.node = static_cast<std::int64_t>(st.id());
      e.synced = st.awake() && st.protocol().is_synchronized();
      if (e.synced) e.err_us = st.protocol().network_time_us(now) - mean;
      s.node_errors.push_back(e);
    }
  }

  obs::TelemetryCumulative cum;
  const proto::ProtocolStats hs = honest_stats();
  cum.beacons_tx = hs.beacons_sent;
  cum.beacons_rx = hs.beacons_received;
  cum.adjustments = hs.adjustments + hs.adoptions;
  cum.coarse_steps = hs.coarse_steps;
  cum.rejects = hs.rejected_interval + hs.rejected_key + hs.rejected_mac +
                hs.rejected_guard;
  cum.elections = hs.elections_won;
  cum.events = sim_.events_processed();
  sampler_->emit(now.to_sec(), std::move(s), cum);
}

std::optional<std::size_t> Network::current_reference_index() const {
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (i == attacker_index_) continue;
    if (stations_[i]->awake() && stations_[i]->protocol().is_reference()) {
      // Cluster runs elect one reference per cluster; "the" reference —
      // the one fault plans and departures target — is the root cluster's
      // (the network timescale's origin).
      if (scenario_.cluster.enabled() &&
          cluster::cluster_of(scenario_.cluster,
                              static_cast<mac::NodeId>(i)) != 0) {
        continue;
      }
      return i;
    }
  }
  return std::nullopt;
}

std::optional<double> Network::instant_max_diff_us() const {
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  const sim::SimTime now = sim_.now();
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (i == attacker_index_) continue;  // honest clocks only
    const proto::Station& st = *stations_[i];
    if (!st.awake() || !st.protocol().is_synchronized()) continue;
    const double v = st.protocol().network_time_us(now);
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!any) return std::nullopt;
  return hi - lo;
}

void Network::run() { run_until(scenario_.duration_s); }

void Network::run_until(double horizon_s) {
  arm();
  sim_.run_until(sim::SimTime::from_sec_double(horizon_s));
}

const mac::ChannelStats& Network::channel_stats() const {
  return channel_.stats();
}

proto::ProtocolStats Network::honest_stats() const {
  proto::ProtocolStats agg;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (i == attacker_index_) continue;
    const auto& s = stations_[i]->protocol().stats();
    agg.beacons_sent += s.beacons_sent;
    agg.beacons_received += s.beacons_received;
    agg.adoptions += s.adoptions;
    agg.adjustments += s.adjustments;
    agg.rejected_interval += s.rejected_interval;
    agg.rejected_key += s.rejected_key;
    agg.rejected_mac += s.rejected_mac;
    agg.rejected_guard += s.rejected_guard;
    agg.elections_won += s.elections_won;
    agg.demotions += s.demotions;
    agg.coarse_steps += s.coarse_steps;
    agg.solver_rejections += s.solver_rejections;
    for (std::size_t v = 0; v < agg.discipline_verdicts.size(); ++v) {
      agg.discipline_verdicts[v] += s.discipline_verdicts[v];
    }
  }
  return agg;
}

const proto::ProtocolStats* Network::attacker_stats() const {
  if (attacker_index_ >= stations_.size()) return nullptr;
  return &stations_[attacker_index_]->protocol().stats();
}

}  // namespace sstsp::run
