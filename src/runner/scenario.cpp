#include "runner/scenario.h"

namespace sstsp::run {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kTsf:
      return "TSF";
    case ProtocolKind::kAtsp:
      return "ATSP";
    case ProtocolKind::kTatsp:
      return "TATSP";
    case ProtocolKind::kSatsf:
      return "SATSF";
    case ProtocolKind::kRentelKunz:
      return "RENTEL-KUNZ";
    case ProtocolKind::kSstsp:
      return "SSTSP";
  }
  return "?";
}

Scenario Scenario::paper_section5(ProtocolKind protocol, int num_nodes,
                                  std::uint64_t seed) {
  Scenario s;
  s.protocol = protocol;
  s.num_nodes = num_nodes;
  s.seed = seed;
  s.duration_s = 1000.0;
  s.churn = ChurnSpec{};  // 5 % leave at k*200 s, return after 50 s
  if (protocol == ProtocolKind::kSstsp) {
    s.reference_departures_s = {300.0, 500.0, 800.0};
  }
  return s;
}

}  // namespace sstsp::run
