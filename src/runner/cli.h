// Command-line front end for the scenario runner (used by tools/sstsp_sim).
//
// Kept in the library (rather than the tool's main.cpp) so the parsing is
// unit-testable; see tests/runner_cli_test.cpp.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "runner/scenario.h"
#include "trace/event_trace.h"

namespace sstsp::run {

struct CliOptions {
  Scenario scenario;
  std::string csv_path;       ///< empty: no CSV dump
  std::string json_out_path;  ///< empty: no JSONL event/summary stream
  std::string metrics_out_path;  ///< empty: no metrics/profile JSON document
  std::string timeline_out_path;  ///< empty: no Perfetto trace JSON
  std::string prom_textfile_path;  ///< empty: no Prometheus textfile dump
  bool ascii_chart = false;   ///< print the strip chart
  bool dump_trace = false;    ///< print the newest trace events
  std::size_t trace_limit = 40;  ///< how many events --trace prints
  std::optional<trace::EventKind> trace_kind;  ///< --trace filter, if any
  /// --monitor=strict: any audit record makes the run exit non-zero
  /// (scenario.monitor itself is set by plain --monitor too).
  bool monitor_strict = false;
  bool help = false;
};

/// Parses argv-style arguments (without the program name).  On failure
/// returns nullopt and stores a one-line message in *error.
[[nodiscard]] std::optional<CliOptions> parse_cli(
    const std::vector<std::string>& args, std::string* error);

/// Usage text for --help and parse failures.
[[nodiscard]] std::string cli_usage();

}  // namespace sstsp::run
