#include "runner/cli.h"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "attack/adversary.h"
#include "core/discipline.h"
#include "fault/plan.h"
#include "obs/json.h"
#include "runner/config_file.h"

namespace sstsp::run {

namespace {

bool parse_double(const std::string& s, double* out) {
  try {
    std::size_t used = 0;
    *out = std::stod(s, &used);
    return used == s.size();
  } catch (...) {
    return false;
  }
}

bool parse_int(const std::string& s, long long* out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) parts.push_back(item);
  return parts;
}

std::optional<ProtocolKind> parse_protocol(const std::string& name) {
  if (name == "tsf") return ProtocolKind::kTsf;
  if (name == "atsp") return ProtocolKind::kAtsp;
  if (name == "tatsp") return ProtocolKind::kTatsp;
  if (name == "satsf") return ProtocolKind::kSatsf;
  if (name == "rentel-kunz" || name == "rk") return ProtocolKind::kRentelKunz;
  if (name == "sstsp") return ProtocolKind::kSstsp;
  return std::nullopt;
}

}  // namespace

std::string cli_usage() {
  return R"(usage: sstsp_sim [options]

scenario:
  --protocol P          tsf | atsp | tatsp | satsf | rentel-kunz | sstsp
                        (default sstsp)
  --nodes N             honest station count (default 100)
  --duration S          simulated seconds (default 200)
  --threads N           run on the sharded parallel kernel with N worker
                        threads (0 = legacy single-threaded kernel);
                        results are bit-identical for any thread count
  --shards N            shard count for the parallel kernel (default: the
                        thread count); pinning it keeps runs with
                        different --threads byte-identical
  --radio-range M       radio range in metres (0 = single-hop: everyone
                        hears everyone; finite ranges enable the spatial
                        partition large runs need)
  --placement-radius M  deployment disc radius in metres (default 50)
  --seed S              RNG seed; identical seeds reproduce bit-exactly
  --paper-env           the paper's §5 environment: 1000 s, 5% churn every
                        200 s, reference departures at 300/500/800 s

protocol parameters:
  --m M                 SSTSP aggressiveness (default 3)
  --l L                 SSTSP missed-beacon tolerance (default 1)
  --guard US            SSTSP base guard time in us
  --chain-length N      µTESLA chain length (default sized to duration)
  --per P               packet error rate (default 1e-4)
  --preestablished      node 0 boots as the SSTSP reference

clock discipline (DESIGN.md §14):
  --discipline NAME     clock-discipline estimator: paper (the §3.3 span
                        solver, default; bit-identical to the legacy path),
                        rls (recursive least squares with forgetting +
                        innovation gating), holdover (paper solver that
                        coasts on the last fitted rate through droughts)
  --discipline-params JSON
                        discipline overrides as a JSON object, same keys as
                        the config "discipline" block (e.g. '{"name":"rls",
                        "window":16,"forgetting":0.98,
                        "innovation-gate":200,"holdover-max-age":32,
                        "span":8,"k-min":0.95,"k-max":1.05}')
  --clock-model KIND    oscillator stressor beyond the paper's constant
                        drift: none (default) | temp-ramp | aging |
                        random-walk
  --clock-model-params JSON
                        stressor overrides, same keys as the config
                        "clock-model" block (e.g. '{"kind":"temp-ramp",
                        "period":1,"ramp-ppm-per-s":0.5,"ramp-start":0,
                        "ramp-end":-1,"aging-ppm-per-day":25,
                        "walk-sigma-ppm":0.25}')

clusters (hierarchical multi-domain sync, SSTSP only; DESIGN.md §13):
  --clusters N          partition the network into N broadcast-domain
                        clusters chained off a root timescale (0 = off);
                        overrides --nodes with clusters * cluster-nodes
  --cluster-nodes K     nodes per cluster, gateways included (default 20)
  --cluster-gateways G  gateway nodes per non-root cluster (default 1)
  --cluster-spacing M   distance between adjacent cluster centers (default
                        45; the geometry contract needs spacing <= range)
  --cluster-radius M    per-cluster placement disc radius (default 14)
  --cluster-phase US    per-depth schedule phase stagger (default 1500)
  --cluster-hop-bound US
                        documented per-gateway-hop error bound; the monitor
                        checks inter-cluster spread <= bound * max depth

environment:
  --churn P,F,A         period_s, fraction, absence_s (e.g. 200,0.05,50)
  --departures T1,T2    reference departure times (SSTSP)

attack:
  --attack NAME         adversary by registry name: tsf-slow, internal-ref,
                        replay, forge, delayed-disclosure
  --attack-window A,B   active interval in seconds (default 400,600)
  --attack-params JSON  adversary-specific overrides as a JSON object
                        (e.g. '{"skew":80,"delay_us":5000}')
  --skew R              internal-ref skew rate in us/s (default 50)

faults:
  --faults PATH         load a fault plan (JSON; see DESIGN.md §9): packet
                        drop/dup/delay/reorder/corrupt directives,
                        partitions, node crash/pause, clock steps/drift
  --faults-json TEXT    the same plan given inline as JSON text

environment overrides:
  --sample-period S     max-diff sampling cadence (default 0.1)
  --max-drift PPM       hardware drift bound (default 100)
  --initial-offset US   initial clock offset bound (default 112)

config:
  --config PATH         load a run config (JSON object; see README "Config
                        files"): scenario keys plus nested "faults" /
                        "attack" objects; flags after --config override the
                        file

output:
  --csv PATH            write the max-clock-difference series as CSV
  --chart               print an ASCII strip chart of the series
  --trace               record and print the newest protocol events
  --trace-limit N       how many events --trace prints (default 40)
  --trace-kind KIND     only print events of KIND (e.g. adjustment,
                        reject-guard; implies --trace)
  --json-out PATH       stream every protocol event as JSON Lines to PATH,
                        terminated by a {"type":"summary"} record
  --metrics-out PATH    write the run's metrics registry (+ profile when
                        --profile) as one JSON document
  --profile             profile the hot paths; prints the per-phase
                        wall-time breakdown and events/sec after the run
  --monitor[=strict]    online invariant monitor + beacon-lifecycle tracing;
                        violations become audit records in the JSON report.
                        strict: exit 3 when any audit record was produced

telemetry (DESIGN.md §10):
  --telemetry-out PATH  append one JSONL telemetry sample per interval:
                        max/mean offset error, beacon funnel rates, engine
                        load, recovery state (schema v1; feed sstsp_tracetool)
  --telemetry-interval S
                        sampling interval in simulated seconds (default 1)
  --telemetry-per-node 0|1
                        attach per-node error arrays to cluster samples
                        (default: auto, on for runs of <= 64 nodes)
  --flight-recorder PATH
                        keep a ring of recent events + samples per run and
                        dump it to PATH on any new audit record class or on
                        SIGUSR1 (JSONL, "flight_seq"-tagged)
  --flight-capacity N   flight-recorder event ring size (default 512)

performance observatory (DESIGN.md §11):
  --timeline-out PATH   write the run as Chrome-trace-event JSON loadable in
                        ui.perfetto.dev: protocol events per node, beacon
                        flow arrows, profiler phase spans (with --profile),
                        fault/audit marks
  --sampler             phase-sampling profiler: sample current phase,
                        event-queue depth and per-phase exclusive time into
                        the metrics registry (see --metrics-out)
  --sampler-interval S  sampling interval in simulated seconds (default
                        0.001; implies --sampler)
  --prom-textfile PATH  dump the final metrics registry in Prometheus text
                        exposition format (node_exporter textfile shape)
  --help                this text
)";
}

std::optional<CliOptions> parse_cli(const std::vector<std::string>& args,
                                    std::string* error) {
  CliOptions opts;
  Scenario& s = opts.scenario;
  s.num_nodes = 100;
  s.duration_s = 200.0;
  bool chain_set = false;
  bool config_loaded = false;

  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  // --config splices the file's flags in place, so iterate a mutable copy.
  std::vector<std::string> argv = args;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argv.size()) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;

    if (arg == "--help" || arg == "-h") {
      opts.help = true;
      return opts;
    } else if (arg == "--protocol") {
      if (!next(&v)) return fail("--protocol needs a value");
      const auto kind = parse_protocol(v);
      if (!kind) return fail("unknown protocol: " + v);
      s.protocol = *kind;
    } else if (arg == "--nodes") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 1 || n > 1000000) {
        return fail("--nodes needs a positive integer (max 1000000)");
      }
      s.num_nodes = static_cast<int>(n);
    } else if (arg == "--threads") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 1024) {
        return fail("--threads needs an integer in [0, 1024]");
      }
      s.threads = static_cast<int>(n);
    } else if (arg == "--shards") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 4096) {
        return fail("--shards needs an integer in [0, 4096]");
      }
      s.shards = static_cast<int>(n);
    } else if (arg == "--radio-range") {
      double m = 0;
      if (!next(&v) || !parse_double(v, &m) || m < 0) {
        return fail("--radio-range needs a distance in metres >= 0");
      }
      s.phy.radio_range_m = m;
    } else if (arg == "--placement-radius") {
      double m = 0;
      if (!next(&v) || !parse_double(v, &m) || m <= 0) {
        return fail("--placement-radius needs a distance in metres > 0");
      }
      s.phy.placement_radius_m = m;
    } else if (arg == "--duration") {
      double d = 0;
      if (!next(&v) || !parse_double(v, &d) || d <= 0) {
        return fail("--duration needs a positive number of seconds");
      }
      s.duration_s = d;
    } else if (arg == "--seed") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n)) return fail("--seed needs an integer");
      s.seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--paper-env") {
      s.churn = ChurnSpec{};
      s.duration_s = 1000.0;
      if (s.protocol == ProtocolKind::kSstsp) {
        s.reference_departures_s = {300.0, 500.0, 800.0};
      }
    } else if (arg == "--m") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--m needs a positive integer");
      }
      s.sstsp.m = static_cast<int>(n);
    } else if (arg == "--l") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--l needs a positive integer");
      }
      s.sstsp.l = static_cast<int>(n);
    } else if (arg == "--guard") {
      double g = 0;
      if (!next(&v) || !parse_double(v, &g) || g <= 0) {
        return fail("--guard needs a positive value in us");
      }
      s.sstsp.guard_fine_us = g;
    } else if (arg == "--chain-length") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 10) {
        return fail("--chain-length needs an integer >= 10");
      }
      s.sstsp.chain_length = static_cast<std::size_t>(n);
      chain_set = true;
    } else if (arg == "--per") {
      double p = 0;
      if (!next(&v) || !parse_double(v, &p) || p < 0 || p >= 1) {
        return fail("--per needs a probability in [0, 1)");
      }
      s.phy.packet_error_rate = p;
    } else if (arg == "--preestablished") {
      s.preestablished_reference = true;
    } else if (arg == "--discipline") {
      if (!next(&v)) return fail("--discipline needs a name");
      if (!core::discipline_known(v)) {
        std::string valid;
        for (const auto& name : core::discipline_names()) {
          if (!valid.empty()) valid += ", ";
          valid += name;
        }
        return fail("unknown discipline: " + v + " (known: " + valid + ")");
      }
      s.sstsp.discipline.name = v;
    } else if (arg == "--discipline-params") {
      if (!next(&v)) return fail("--discipline-params needs a JSON object");
      const auto parsed = obs::json::parse(v);
      if (!parsed) {
        return fail("--discipline-params is not valid JSON: " + v);
      }
      std::string dsc_error;
      if (!core::apply_discipline_json(*parsed, &s.sstsp, &dsc_error)) {
        return fail("--discipline-params: " + dsc_error);
      }
    } else if (arg == "--clock-model") {
      if (!next(&v)) return fail("--clock-model needs a kind");
      const auto kind = clock_model_kind_from_string(v);
      if (!kind) {
        return fail("unknown clock model: " + v +
                    " (known: none, temp-ramp, aging, random-walk)");
      }
      s.clock_stress.kind = *kind;
    } else if (arg == "--clock-model-params") {
      if (!next(&v)) return fail("--clock-model-params needs a JSON object");
      const auto parsed = obs::json::parse(v);
      if (!parsed) {
        return fail("--clock-model-params is not valid JSON: " + v);
      }
      std::string clk_error;
      if (!apply_clock_model_json(*parsed, &s.clock_stress, &clk_error)) {
        return fail("--clock-model-params: " + clk_error);
      }
    } else if (arg == "--clusters") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 0x7f) {
        return fail("--clusters needs an integer in [0, 127]");
      }
      s.cluster.clusters = static_cast<int>(n);
    } else if (arg == "--cluster-nodes") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 2) {
        return fail("--cluster-nodes needs an integer >= 2");
      }
      s.cluster.nodes_per_cluster = static_cast<int>(n);
    } else if (arg == "--cluster-gateways") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--cluster-gateways needs a positive integer");
      }
      s.cluster.gateways = static_cast<int>(n);
    } else if (arg == "--cluster-spacing") {
      double m = 0;
      if (!next(&v) || !parse_double(v, &m) || m <= 0) {
        return fail("--cluster-spacing needs a distance in metres > 0");
      }
      s.cluster.spacing_m = m;
    } else if (arg == "--cluster-radius") {
      double m = 0;
      if (!next(&v) || !parse_double(v, &m) || m <= 0) {
        return fail("--cluster-radius needs a distance in metres > 0");
      }
      s.cluster.radius_m = m;
    } else if (arg == "--cluster-phase") {
      double p = 0;
      if (!next(&v) || !parse_double(v, &p) || p < 0) {
        return fail("--cluster-phase needs a us value >= 0");
      }
      s.cluster.phase_us = p;
    } else if (arg == "--cluster-hop-bound") {
      double b = 0;
      if (!next(&v) || !parse_double(v, &b) || b <= 0) {
        return fail("--cluster-hop-bound needs a positive us value");
      }
      s.cluster.hop_bound_us = b;
    } else if (arg == "--churn") {
      if (!next(&v)) return fail("--churn needs period,fraction,absence");
      const auto parts = split(v, ',');
      ChurnSpec churn;
      if (parts.size() != 3 || !parse_double(parts[0], &churn.period_s) ||
          !parse_double(parts[1], &churn.fraction) ||
          !parse_double(parts[2], &churn.absence_s)) {
        return fail("--churn needs period,fraction,absence");
      }
      s.churn = churn;
    } else if (arg == "--departures") {
      if (!next(&v)) return fail("--departures needs t1,t2,...");
      s.reference_departures_s.clear();
      for (const auto& part : split(v, ',')) {
        double t = 0;
        if (!parse_double(part, &t)) {
          return fail("--departures needs numeric times");
        }
        s.reference_departures_s.push_back(t);
      }
    } else if (arg == "--attack") {
      if (!next(&v)) return fail("--attack needs a kind");
      if (!attack::adversary_known(v)) {
        std::string valid;
        for (const auto& name : attack::adversary_names()) {
          if (!valid.empty()) valid += ", ";
          valid += name;
        }
        return fail("unknown attack: " + v + " (known: " + valid + ")");
      }
      s.attack = v;
    } else if (arg == "--attack-params") {
      if (!next(&v)) return fail("--attack-params needs a JSON object");
      if (!obs::json::parse(v)) {
        return fail("--attack-params is not valid JSON: " + v);
      }
      s.attack_params_json = v;
    } else if (arg == "--faults") {
      if (!next(&v)) return fail("--faults needs a path");
      std::string plan_error;
      const auto plan = fault::load_plan(v, &plan_error);
      if (!plan) return fail(plan_error);
      s.faults = *plan;
    } else if (arg == "--faults-json") {
      if (!next(&v)) return fail("--faults-json needs JSON text");
      std::string plan_error;
      const auto plan = fault::parse_plan_text(v, &plan_error);
      if (!plan) return fail("--faults-json: " + plan_error);
      s.faults = *plan;
    } else if (arg == "--sample-period") {
      double p = 0;
      if (!next(&v) || !parse_double(v, &p) || p <= 0) {
        return fail("--sample-period needs a positive number of seconds");
      }
      s.sample_period_s = p;
    } else if (arg == "--max-drift") {
      double p = 0;
      if (!next(&v) || !parse_double(v, &p) || p < 0) {
        return fail("--max-drift needs a ppm value >= 0");
      }
      s.max_drift_ppm = p;
    } else if (arg == "--initial-offset") {
      double p = 0;
      if (!next(&v) || !parse_double(v, &p) || p < 0) {
        return fail("--initial-offset needs a us value >= 0");
      }
      s.initial_offset_us = p;
    } else if (arg == "--attack-window") {
      if (!next(&v)) return fail("--attack-window needs start,end");
      const auto parts = split(v, ',');
      double a = 0;
      double b = 0;
      if (parts.size() != 2 || !parse_double(parts[0], &a) ||
          !parse_double(parts[1], &b) || b <= a) {
        return fail("--attack-window needs start,end with end > start");
      }
      s.tsf_attack.start_s = a;
      s.tsf_attack.end_s = b;
      s.sstsp_attack.start_s = a;
      s.sstsp_attack.end_s = b;
    } else if (arg == "--skew") {
      double r = 0;
      if (!next(&v) || !parse_double(v, &r)) {
        return fail("--skew needs a rate in us/s");
      }
      s.sstsp_attack.skew_rate_us_per_s = r;
    } else if (arg == "--config") {
      if (!next(&v)) return fail("--config needs a path");
      if (config_loaded) return fail("--config may be given only once");
      config_loaded = true;
      std::string cfg_error;
      const auto cfg_args = load_config_args(v, ConfigTool::kSim, &cfg_error);
      if (!cfg_args) return fail(cfg_error);
      argv.insert(argv.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  cfg_args->begin(), cfg_args->end());
    } else if (arg == "--csv") {
      if (!next(&opts.csv_path)) return fail("--csv needs a path");
    } else if (arg == "--chart") {
      opts.ascii_chart = true;
    } else if (arg == "--trace") {
      opts.dump_trace = true;
      s.trace_capacity = std::max<std::size_t>(s.trace_capacity, 1 << 18);
    } else if (arg == "--trace-limit") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 1) {
        return fail("--trace-limit needs a positive integer");
      }
      opts.trace_limit = static_cast<std::size_t>(n);
      opts.dump_trace = true;
      s.trace_capacity = std::max<std::size_t>(s.trace_capacity, 1 << 18);
    } else if (arg == "--trace-kind") {
      if (!next(&v)) return fail("--trace-kind needs an event kind");
      const auto kind = trace::kind_from_string(v);
      if (!kind) {
        std::string valid;
        for (int k = 0; k < static_cast<int>(trace::kEventKindCount); ++k) {
          if (!valid.empty()) valid += ", ";
          valid += trace::to_string(static_cast<trace::EventKind>(k));
        }
        return fail("unknown event kind: " + v + " (valid kinds: " + valid +
                    ")");
      }
      opts.trace_kind = *kind;
      opts.dump_trace = true;
      s.trace_capacity = std::max<std::size_t>(s.trace_capacity, 1 << 18);
    } else if (arg == "--json-out") {
      if (!next(&opts.json_out_path)) return fail("--json-out needs a path");
      // The sink streams at record time, so a modest ring suffices.
      s.trace_capacity = std::max<std::size_t>(s.trace_capacity, 1 << 12);
    } else if (arg == "--metrics-out") {
      if (!next(&opts.metrics_out_path)) {
        return fail("--metrics-out needs a path");
      }
    } else if (arg == "--profile") {
      s.profile = true;
    } else if (arg == "--monitor" || arg == "--monitor=strict") {
      s.monitor = true;
      if (arg == "--monitor=strict") opts.monitor_strict = true;
    } else if (arg == "--telemetry-out") {
      if (!next(&s.telemetry_out)) return fail("--telemetry-out needs a path");
    } else if (arg == "--telemetry-interval") {
      double p = 0;
      if (!next(&v) || !parse_double(v, &p) || p <= 0) {
        return fail("--telemetry-interval needs a positive number of seconds");
      }
      s.telemetry_interval_s = p;
    } else if (arg == "--telemetry-per-node") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 0 || n > 1) {
        return fail("--telemetry-per-node needs 0 or 1");
      }
      s.telemetry_per_node = static_cast<int>(n);
    } else if (arg == "--flight-recorder") {
      if (!next(&s.flight_recorder_out)) {
        return fail("--flight-recorder needs a path");
      }
    } else if (arg == "--flight-capacity") {
      long long n = 0;
      if (!next(&v) || !parse_int(v, &n) || n < 16) {
        return fail("--flight-capacity needs an integer >= 16");
      }
      s.flight_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--timeline-out") {
      if (!next(&opts.timeline_out_path)) {
        return fail("--timeline-out needs a path");
      }
      // Timeline events stream at record time; a modest ring suffices.
      s.trace_capacity = std::max<std::size_t>(s.trace_capacity, 1 << 12);
    } else if (arg == "--sampler") {
      s.phase_sampler = true;
    } else if (arg == "--sampler-interval") {
      double p = 0;
      if (!next(&v) || !parse_double(v, &p) || p <= 0) {
        return fail("--sampler-interval needs a positive number of seconds");
      }
      s.phase_sampler_interval_s = p;
      s.phase_sampler = true;
    } else if (arg == "--prom-textfile") {
      if (!next(&opts.prom_textfile_path)) {
        return fail("--prom-textfile needs a path");
      }
    } else {
      return fail("unknown option: " + arg);
    }
  }

  if (!chain_set) {
    // Size the chain to the run, with slack for the coarse/election phases.
    s.sstsp.chain_length =
        static_cast<std::size_t>(s.duration_s * 10.0) + 200;
  }
  if (s.cluster.enabled()) {
    // The cluster layout fixes the node count; --nodes would silently
    // disagree with the cluster-major id arithmetic otherwise.
    s.num_nodes = s.cluster.total_nodes();
  }
  return opts;
}

}  // namespace sstsp::run
