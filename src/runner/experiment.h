// One-call experiment execution + the derived quantities the paper reports.
#pragma once

#include <cstdint>
#include <optional>

#include "fault/recovery.h"
#include "mac/channel.h"
#include "metrics/series.h"
#include "net/transport.h"
#include "obs/invariants.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "protocols/sync_protocol.h"
#include "runner/scenario.h"

namespace sstsp::run {

/// The industrial expectation the paper adopts: an IBSS of any size counts
/// as synchronized while the max clock difference is under 25 us.
inline constexpr double kSyncThresholdUs = 25.0;

struct RunResult {
  metrics::Series max_diff;
  mac::ChannelStats channel;
  proto::ProtocolStats honest;
  std::optional<proto::ProtocolStats> attacker;

  /// Time from start until the max difference stays below 25 us for >= 1 s
  /// (paper Table 1's "synchronization latency").
  std::optional<double> sync_latency_s;

  /// Post-stabilization max difference: the max over the window starting
  /// 20 s in (or after sync latency, whichever is later) — paper Table 1's
  /// "synchronization error", and the "below 10 us after the protocol
  /// stabilizes" claim of Fig. 2.
  std::optional<double> steady_max_us;
  std::optional<double> steady_p99_us;

  /// Observability: metric values recorded during the run (empty when
  /// Scenario::collect_metrics was off), the per-phase wall-time profile
  /// (present when Scenario::profile was set), and the run's raw cost.
  obs::RegistrySnapshot metrics;
  std::optional<obs::ProfileSnapshot> profile;

  /// Invariant-monitor audit report (present when Scenario::monitor was
  /// set); clean() distinguishes a monitored-and-clean run from an
  /// unmonitored one.
  std::optional<obs::AuditReport> audit;

  /// Cluster runs only (empty / absent otherwise): the inter-cluster
  /// spread series (max - min of per-cluster mean global readings), its
  /// steady-state max over the same window as steady_max_us, and the
  /// per-sample attached fraction.  The cross-cluster Lemma-1 analogue
  /// bounds cluster_steady_max_us by hop_bound_us * max gateway depth.
  metrics::Series cluster_spread;
  metrics::Series attach_fraction;
  std::optional<double> cluster_steady_max_us;

  /// Per-fault recovery accounting (present when the scenario carried a
  /// fault plan): re-election latency after reference loss, re-sync
  /// latency after partition heal / clock faults, forged-frame rejection
  /// counts, and the injector's packet-fault tallies.
  std::optional<fault::RecoveryReport> recovery;
  std::uint64_t events_processed{0};
  double wall_seconds{0.0};

  /// Live-stack wire accounting (net::Swarm / sstsp_node runs); absent for
  /// pure simulation runs.
  std::optional<net::NetRunStats> net;
};

[[nodiscard]] RunResult run_scenario(const Scenario& scenario);

/// Fills sync_latency_s / steady_max_us / steady_p99_us from
/// result.max_diff over [0, duration_s] — the derivation shared by the
/// simulation collector below and the live-stack net::Swarm collector.
void derive_series_stats(RunResult& result, double duration_s);

class Network;

/// Derives a RunResult from a Network whose run() has completed —
/// run_scenario's second half, exposed for callers (tools/sstsp_sim) that
/// drive the Network themselves to attach trace sinks before running.
/// `wall_seconds` is the caller-measured wall-clock cost of the run.
[[nodiscard]] RunResult collect_result(Network& net, double wall_seconds);

}  // namespace sstsp::run
