#include "runner/parallel_network.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "attack/adversary.h"
#include "core/sstsp.h"
#include "crypto/hash_chain.h"
#include "obs/json.h"
#include "protocols/tsf_family.h"

namespace sstsp::run {

namespace {

[[noreturn]] void reject(const char* what) {
  throw std::runtime_error(std::string("the sharded kernel (--threads) does "
                                       "not support ") +
                           what + " yet; run with --threads 0");
}

/// Validates the scenario and derives the executor geometry.  Runs before
/// any member construction, so unsupported scenarios fail loudly instead
/// of half-building.
sim::ShardExecutor::Options exec_options(const Scenario& s) {
  if (s.monitor) reject("the invariant monitor (--monitor)");
  if (s.cluster.enabled()) reject("cluster scenarios (--clusters)");
  if (!s.faults.empty()) reject("fault plans");
  if (!s.telemetry_out.empty()) reject("telemetry streaming");
  if (!s.flight_recorder_out.empty()) reject("the flight recorder");
  if (s.phase_sampler) reject("the phase sampler");

  sim::ShardExecutor::Options opt;
  opt.threads = std::max(1, s.threads);
  opt.shards = s.shards > 0 ? s.shards : opt.threads;
  opt.lookahead = std::min(s.phy.cca_time, s.phy.rx_latency_min);
  if (!(opt.lookahead > sim::SimTime::zero())) {
    throw std::runtime_error(
        "the sharded kernel needs a positive conservative lookahead: "
        "min(cca_time, rx_latency_min) must be > 0");
  }
  return opt;
}

std::size_t vm_hwm_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace

ParallelNetwork::ParallelNetwork(const Scenario& scenario)
    : scenario_(scenario),
      exec_(exec_options(scenario), scenario.seed),
      attacker_index_(0) {
  const int shards = exec_.shard_count();
  if (scenario_.collect_metrics) {
    registries_.reserve(static_cast<std::size_t>(shards));
    instruments_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      registries_.push_back(std::make_unique<obs::Registry>());
      instruments_.push_back(
          std::make_unique<obs::Instruments>(*registries_.back()));
    }
    control_instruments_ =
        std::make_unique<obs::Instruments>(control_registry_);
    if (scenario_.sstsp.discipline.effective_name() != "paper") {
      // Same non-default-only rule as Network: the default registry
      // snapshot must stay byte-identical across kernels.
      for (auto& ins : instruments_) {
        ins->enable_discipline(scenario_.sstsp.discipline.effective_name(),
                               core::discipline_verdict_names());
      }
      control_instruments_->enable_discipline(
          scenario_.sstsp.discipline.effective_name(),
          core::discipline_verdict_names());
    }
    // Note: unlike Network, no Instruments hook on the simulators — the
    // queue-depth histogram would describe per-shard queues and change
    // with the partition, breaking the any-shard-count bit-identity of
    // the metrics snapshot.  Every other instrument records quantities
    // the exactness contract fixes.
  }
  if (scenario_.profile) {
    profilers_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      profilers_.push_back(std::make_unique<obs::Profiler>());
      exec_.shard(s).set_profiler(profilers_.back().get());
    }
    exec_.set_collect_wall_stats(true);
  }

  std::vector<sim::Simulator*> sims;
  sims.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) sims.push_back(&exec_.shard(s));
  world_ = std::make_unique<mac::ShardedWorld>(scenario_.phy, std::move(sims));

  build_stations();
}

void ParallelNetwork::build_stations() {
  const int n = scenario_.num_nodes;
  const bool has_attacker = !scenario_.attack.empty();
  const int total = n + (has_attacker ? 1 : 0);
  attacker_index_ = has_attacker ? static_cast<std::size_t>(n)
                                 : static_cast<std::size_t>(total);

  // Exactly Network::build_stations' draw sequence, from the control
  // simulator's root RNG — same seed, same substreams, same per-stream
  // order, so every node gets the position and oscillator it would get on
  // the single-threaded kernel.
  sim::Rng placement = control().substream("placement", 0);
  sim::Rng clocks = control().substream("clocks", 0);

  struct NodeDraw {
    mac::Position pos;
    clk::DriftModel drift;
    double offset;
  };
  std::vector<NodeDraw> draws;
  draws.reserve(static_cast<std::size_t>(total));
  std::vector<mac::Position> positions;
  positions.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    const double r =
        scenario_.phy.placement_radius_m * std::sqrt(placement.uniform());
    const double theta = placement.uniform(0.0, 2.0 * M_PI);
    const mac::Position pos{r * std::cos(theta), r * std::sin(theta)};
    auto drift = clk::DriftModel::uniform(clocks, scenario_.max_drift_ppm);
    const double offset = clocks.uniform(-scenario_.initial_offset_us,
                                         scenario_.initial_offset_us);
    if (has_attacker && static_cast<std::size_t>(i) == attacker_index_) {
      const double factor = attack::adversary_drift_factor(scenario_.attack);
      if (!std::isnan(factor)) {
        drift = clk::DriftModel::from_ppm(factor * scenario_.max_drift_ppm);
      }
    }
    draws.push_back(NodeDraw{pos, drift, offset});
    positions.push_back(pos);
  }

  world_->partition(positions);
  const int shards = exec_.shard_count();

  const bool is_sstsp = scenario_.protocol == ProtocolKind::kSstsp;
  directories_.clear();
  for (int s = 0; s < shards; ++s) {
    directories_.push_back(std::make_unique<core::KeyDirectory>());
  }
  if (is_sstsp) {
    // A shard verifies only frames its stations can hear, so each node's
    // chain goes into exactly the directories of its announce fan-out set
    // (all shards in the single-hop configuration) — memory stays linear
    // in the shard's audible population, not the whole deployment.
    std::vector<int> audible;
    for (int i = 0; i < total; ++i) {
      const auto id = static_cast<mac::NodeId>(i);
      const crypto::ChainParams params{
          crypto::derive_seed(scenario_.seed, id),
          scenario_.sstsp.chain_length};
      world_->audible_shards(positions[static_cast<std::size_t>(i)].x_m,
                             audible);
      for (const int s : audible) {
        directories_[static_cast<std::size_t>(s)]->register_node(id, params);
      }
    }
  }

  if (scenario_.trace_capacity > 0) {
    for (int s = 0; s < shards; ++s) {
      traces_.push_back(
          std::make_unique<trace::EventTrace>(scenario_.trace_capacity));
    }
  }
  if (scenario_.collect_metrics) {
    for (int s = 0; s < shards; ++s) {
      world_->channel(s).set_instruments(
          instruments_[static_cast<std::size_t>(s)].get());
    }
  }

  for (int i = 0; i < total; ++i) {
    const auto id = static_cast<mac::NodeId>(i);
    const auto shard =
        static_cast<std::size_t>(world_->shard_of(static_cast<std::size_t>(i)));
    const NodeDraw& d = draws[static_cast<std::size_t>(i)];
    auto station = std::make_unique<proto::Station>(
        exec_.shard(static_cast<int>(shard)), world_->channel(static_cast<int>(shard)),
        id, clk::HardwareClock(d.drift, d.offset), d.pos);

    const bool is_attacker =
        has_attacker && static_cast<std::size_t>(i) == attacker_index_;
    core::KeyDirectory& directory = *directories_[shard];
    std::unique_ptr<proto::SyncProtocol> proto;
    if (is_attacker) {
      std::optional<obs::json::Value> params;
      if (!scenario_.attack_params_json.empty()) {
        params = obs::json::parse(scenario_.attack_params_json);
        if (!params) {
          throw std::runtime_error("invalid attack params JSON: " +
                                   scenario_.attack_params_json);
        }
      }
      attack::AdversaryContext ctx{*station,
                                   directory,
                                   scenario_.sstsp,
                                   scenario_.tsf_attack,
                                   scenario_.sstsp_attack,
                                   params ? &*params : nullptr};
      proto = attack::make_adversary(scenario_.attack, ctx);
      if (proto == nullptr) {
        throw std::runtime_error("unknown adversary: " + scenario_.attack);
      }
    } else {
      switch (scenario_.protocol) {
        case ProtocolKind::kTsf:
          proto = std::make_unique<proto::Tsf>(*station);
          break;
        case ProtocolKind::kAtsp:
          proto = std::make_unique<proto::Atsp>(*station, scenario_.atsp);
          break;
        case ProtocolKind::kTatsp:
          proto = std::make_unique<proto::Tatsp>(*station, scenario_.tatsp);
          break;
        case ProtocolKind::kSatsf:
          proto = std::make_unique<proto::Satsf>(*station, scenario_.satsf);
          break;
        case ProtocolKind::kRentelKunz:
          proto = std::make_unique<proto::RentelKunz>(*station,
                                                      scenario_.rentel_kunz);
          break;
        case ProtocolKind::kSstsp: {
          core::Sstsp::Options opts;
          opts.calibrated_boot = true;
          opts.start_as_reference =
              scenario_.preestablished_reference && i == 0;
          proto = std::make_unique<core::Sstsp>(*station, scenario_.sstsp,
                                                directory, opts);
          break;
        }
      }
    }
    station->set_protocol(std::move(proto));
    if (!traces_.empty()) station->set_trace(traces_[shard].get());
    if (!instruments_.empty()) {
      station->set_instruments(instruments_[shard].get());
    }
    if (!profilers_.empty()) station->set_profiler(profilers_[shard].get());
    stations_.push_back(std::move(station));
  }
}

void ParallelNetwork::arm() {
  if (armed_) return;
  armed_ = true;
  for (auto& st : stations_) st->power_on();
  schedule_environment();
  schedule_sampling();
}

void ParallelNetwork::schedule_environment() {
  // Identical schedule and substream keying to Network (the control
  // simulator shares the scenario seed, so substream("churn", k) yields
  // the same leaver picks).
  if (scenario_.churn) {
    const ChurnSpec churn = *scenario_.churn;
    std::uint64_t churn_index = 0;
    for (double t = churn.period_s; t < scenario_.duration_s;
         t += churn.period_s) {
      const std::uint64_t event_index = churn_index++;
      control().at(
          sim::SimTime::from_sec_double(t), [this, churn, event_index] {
            sim::Rng pick = control().substream("churn", event_index);
            const auto ref = current_reference_index();
            const auto honest_count =
                std::min(stations_.size(), attacker_index_);
            const auto leavers = static_cast<std::size_t>(std::lround(
                churn.fraction * static_cast<double>(honest_count)));
            std::size_t left = 0;
            std::size_t guardrail = 0;
            while (left < leavers && guardrail++ < honest_count * 20) {
              const auto idx = static_cast<std::size_t>(
                  pick.uniform_int(0, honest_count - 1));
              if (!stations_[idx]->awake()) continue;
              if (ref && *ref == idx) continue;
              stations_[idx]->power_off();
              control().after(
                  sim::SimTime::from_sec_double(churn.absence_s),
                  [this, idx] { stations_[idx]->power_on(); });
              ++left;
            }
          });
    }
  }

  for (const double t : scenario_.reference_departures_s) {
    control().at(sim::SimTime::from_sec_double(t), [this] {
      const auto ref = current_reference_index();
      if (!ref) return;
      const std::size_t idx = *ref;
      stations_[idx]->power_off();
      control().after(
          sim::SimTime::from_sec_double(scenario_.departure_absence_s),
          [this, idx] { stations_[idx]->power_on(); });
    });
  }

  // Oscillator stressors: identical substream keying to Network so both
  // kernels drive the same per-node frequency walk.
  if (scenario_.clock_stress.enabled()) {
    const auto honest_count = std::min(stations_.size(), attacker_index_);
    auto stressors = std::make_shared<std::vector<clk::DriftStressor>>();
    stressors->reserve(honest_count);
    for (std::size_t i = 0; i < honest_count; ++i) {
      stressors->emplace_back(scenario_.clock_stress,
                              control().substream("clock-stress", i));
    }
    const double dt_s = scenario_.clock_stress.period_s;
    const auto period = sim::SimTime::from_sec_double(dt_s);
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [this, stressors, dt_s, period, tick, honest_count] {
      const double t_s = control().now().to_sec();
      for (std::size_t i = 0; i < honest_count; ++i) {
        const double delta = (*stressors)[i].step_delta_ppm(t_s, dt_s);
        if (delta != 0.0) stations_[i]->inject_clock_fault(0.0, delta);
      }
      if (control().now() + period <=
          sim::SimTime::from_sec_double(scenario_.duration_s)) {
        control().after(period, *tick);
      }
    };
    control().at(period, *tick);
  }
}

void ParallelNetwork::schedule_sampling() {
  const auto period = sim::SimTime::from_sec_double(scenario_.sample_period_s);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, tick] {
    sample_clock_spread();
    if (control().now() + period <=
        sim::SimTime::from_sec_double(scenario_.duration_s)) {
      control().after(period, *tick);
    }
  };
  control().at(period, *tick);
}

void ParallelNetwork::sample_clock_spread() {
  sample_values_.clear();
  // The executor advanced every shard clock to this control instant, so a
  // protocol's network_time_us reads a consistent now() on its own shard.
  const sim::SimTime now = control().now();
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (i == attacker_index_) continue;  // honest clocks only
    const proto::Station& st = *stations_[i];
    if (!st.awake() || !st.protocol().is_synchronized()) continue;
    sample_values_.push_back(st.protocol().network_time_us(now));
  }
  if (sample_values_.empty()) return;
  double lo = sample_values_.front();
  double hi = lo;
  double sum = 0.0;
  for (const double v : sample_values_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    sum += v;
  }
  const double diff = hi - lo;
  max_diff_.push(now.to_sec(), diff);
  if (control_instruments_ != nullptr) {
    control_instruments_->on_max_diff_sample(diff);
    const double mean = sum / static_cast<double>(sample_values_.size());
    for (const double v : sample_values_) {
      control_instruments_->on_node_error_sample(std::fabs(v - mean));
    }
  }
}

std::optional<std::size_t> ParallelNetwork::current_reference_index() const {
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (i == attacker_index_) continue;
    if (stations_[i]->awake() && stations_[i]->protocol().is_reference()) {
      return i;
    }
  }
  return std::nullopt;
}

void ParallelNetwork::run() {
  arm();
  exec_.run(
      sim::SimTime::from_sec_double(scenario_.duration_s),
      [this](sim::SimTime end) { world_->exchange(end); },
      [this](int s, sim::SimTime end) {
        // Attribute barrier settlement (interference + delivery fan-out)
        // to the channel-delivery phase, like Channel::finish_transmission.
        obs::Span span(
            profilers_.empty() ? nullptr
                               : profilers_[static_cast<std::size_t>(s)].get(),
            obs::Phase::kChannelDelivery);
        world_->settle(s, end);
      },
      [this](sim::SimTime end) { world_->commit(end); });
  if (scenario_.profile) publish_shard_metrics();
}

void ParallelNetwork::publish_shard_metrics() {
  obs::Registry& r = control_registry_;
  r.gauge("shard.count").set(static_cast<double>(exec_.shard_count()));
  r.counter("shard.windows").inc(exec_.windows());
  r.counter("shard.announcements").inc(world_->announcements_total());
  r.gauge("run.peak_rss_kb").set(static_cast<double>(vm_hwm_kb()));
  const sim::ShardWallStats& ws = exec_.wall_stats();
  if (!ws.busy_ns.empty()) {
    r.gauge("shard.imbalance").set(ws.imbalance());
    r.gauge("shard.phase_wall_ns")
        .set(static_cast<double>(ws.phase_wall_ns));
  }
  for (int s = 0; s < exec_.shard_count(); ++s) {
    const std::string prefix = "shard." + std::to_string(s);
    const auto i = static_cast<std::size_t>(s);
    r.counter(prefix + ".events").inc(exec_.shard(s).events_processed());
    r.gauge(prefix + ".stations")
        .set(static_cast<double>(world_->channel(s).station_count()));
    r.gauge(prefix + ".peak_tx_records")
        .set(static_cast<double>(world_->channel(s).peak_tx_records()));
    r.counter(prefix + ".announcements")
        .inc(world_->channel(s).announcements_sent());
    if (!ws.busy_ns.empty()) {
      r.gauge(prefix + ".busy_ns").set(static_cast<double>(ws.busy_ns[i]));
      r.gauge(prefix + ".barrier_wait_ns")
          .set(static_cast<double>(ws.wait_ns[i]));
    }
  }
}

proto::ProtocolStats ParallelNetwork::honest_stats() const {
  proto::ProtocolStats agg;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (i == attacker_index_) continue;
    const auto& s = stations_[i]->protocol().stats();
    agg.beacons_sent += s.beacons_sent;
    agg.beacons_received += s.beacons_received;
    agg.adoptions += s.adoptions;
    agg.adjustments += s.adjustments;
    agg.rejected_interval += s.rejected_interval;
    agg.rejected_key += s.rejected_key;
    agg.rejected_mac += s.rejected_mac;
    agg.rejected_guard += s.rejected_guard;
    agg.elections_won += s.elections_won;
    agg.demotions += s.demotions;
    agg.coarse_steps += s.coarse_steps;
    agg.solver_rejections += s.solver_rejections;
    for (std::size_t v = 0; v < agg.discipline_verdicts.size(); ++v) {
      agg.discipline_verdicts[v] += s.discipline_verdicts[v];
    }
  }
  return agg;
}

const proto::ProtocolStats* ParallelNetwork::attacker_stats() const {
  if (attacker_index_ >= stations_.size()) return nullptr;
  return &stations_[attacker_index_]->protocol().stats();
}

obs::RegistrySnapshot ParallelNetwork::metrics_snapshot() const {
  obs::Registry merged;
  merged.merge_from(control_registry_);
  for (const auto& r : registries_) merged.merge_from(*r);
  return merged.snapshot();
}

obs::ProfileSnapshot ParallelNetwork::profile_snapshot(
    double wall_seconds) const {
  obs::ProfileSnapshot snap;
  for (const auto& p : profilers_) {
    for (std::size_t ph = 0; ph < obs::kPhaseCount; ++ph) {
      const obs::PhaseStats& st = p->stats(static_cast<obs::Phase>(ph));
      snap.phases[ph].exclusive_ns += st.exclusive_ns;
      snap.phases[ph].spans += st.spans;
      snap.total_ns += st.exclusive_ns;
    }
  }
  snap.events = events_processed();
  snap.wall_seconds = wall_seconds;
  return snap;
}

std::unique_ptr<trace::EventTrace> ParallelNetwork::merged_trace() const {
  if (traces_.empty()) return nullptr;
  std::vector<trace::TraceEvent> all;
  for (const auto& t : traces_) {
    const auto events =
        t->select([](const trace::TraceEvent&) { return true; });
    all.insert(all.end(), events.begin(), events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const trace::TraceEvent& a, const trace::TraceEvent& b) {
                     if (a.time < b.time) return true;
                     if (b.time < a.time) return false;
                     if (a.node != b.node) return a.node < b.node;
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  auto merged =
      std::make_unique<trace::EventTrace>(scenario_.trace_capacity);
  for (const auto& e : all) merged->record(e);
  return merged;
}

RunResult collect_result(ParallelNetwork& net, double wall_seconds) {
  const Scenario& scenario = net.scenario();
  RunResult result;
  result.max_diff = net.max_diff_series();
  result.channel = net.channel_stats();
  result.honest = net.honest_stats();
  if (const auto* atk = net.attacker_stats()) result.attacker = *atk;
  result.metrics = net.metrics_snapshot();
  result.events_processed = net.events_processed();
  result.wall_seconds = wall_seconds;
  if (scenario.profile) {
    result.profile = net.profile_snapshot(wall_seconds);
  }
  derive_series_stats(result, scenario.duration_s);
  return result;
}

RunResult run_parallel_scenario(const Scenario& scenario) {
  ParallelNetwork net(scenario);
  const auto wall_start = std::chrono::steady_clock::now();
  net.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return collect_result(net, wall_seconds);
}

}  // namespace sstsp::run
