#include "runner/thread_pool.h"

#include <algorithm>

namespace sstsp::run {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void run_parallel(std::vector<std::function<void()>> tasks, unsigned threads) {
  ThreadPool pool(threads);
  for (auto& t : tasks) pool.submit(std::move(t));
  pool.wait_idle();
}

}  // namespace sstsp::run
