#include "runner/run_output.h"

#include <algorithm>
#include <ostream>

#include "metrics/report.h"
#include "net/prom_exporter.h"
#include "obs/export.h"
#include "runner/json_report.h"

namespace sstsp::run {

OutputOptions OutputOptions::from_cli(const CliOptions& opts) {
  OutputOptions out;
  out.csv_path = opts.csv_path;
  out.json_out_path = opts.json_out_path;
  out.metrics_out_path = opts.metrics_out_path;
  out.timeline_out_path = opts.timeline_out_path;
  out.prom_textfile_path = opts.prom_textfile_path;
  out.ascii_chart = opts.ascii_chart;
  out.dump_trace = opts.dump_trace;
  out.trace_limit = opts.trace_limit;
  out.trace_kind = opts.trace_kind;
  out.monitor_strict = opts.monitor_strict;
  return out;
}

void print_result_summary(std::ostream& out, const RunResult& result) {
  const auto& honest = result.honest;
  out << "\nsync latency (<25 us sustained): "
      << (result.sync_latency_s
              ? metrics::fmt(*result.sync_latency_s, 2) + " s"
              : std::string("never"))
      << "\nsteady max / p99 clock difference: "
      << (result.steady_max_us ? metrics::fmt(*result.steady_max_us, 2)
                               : std::string("-"))
      << " / "
      << (result.steady_p99_us ? metrics::fmt(*result.steady_p99_us, 2)
                               : std::string("-"))
      << " us\nbeacons: " << result.channel.transmissions << " ("
      << result.channel.collided_transmissions << " collided), "
      << result.channel.bytes_on_air << " bytes on air\n"
      << "adjustments/adoptions: " << honest.adjustments << "/"
      << honest.adoptions << ", elections " << honest.elections_won
      << ", rejections g/i/k/m " << honest.rejected_guard << "/"
      << honest.rejected_interval << "/" << honest.rejected_key << "/"
      << honest.rejected_mac << '\n';

  if (result.cluster_steady_max_us || !result.cluster_spread.empty()) {
    out << "steady inter-cluster spread: "
        << (result.cluster_steady_max_us
                ? metrics::fmt(*result.cluster_steady_max_us, 2) + " us"
                : std::string("-"))
        << '\n';
  }

  if (result.net) {
    const auto& net = *result.net;
    out << "wire: " << net.frames_sent << " frames sent, "
        << net.frames_received << " received ("
        << net.transport.datagrams_sent << "/"
        << net.transport.datagrams_received << " datagrams, "
        << net.transport.bytes_sent << "/" << net.transport.bytes_received
        << " bytes), " << net.decode_errors << " decode errors, "
        << net.self_frames_dropped << " self echoes dropped";
    if (net.stale_frames_dropped > 0) {
      out << ", " << net.stale_frames_dropped << " stale frames skipped";
    }
    if (net.transport.send_errors + net.transport.recv_errors > 0) {
      out << ", " << net.transport.send_errors << " send / "
          << net.transport.recv_errors << " recv errors";
    }
    out << '\n';
  }

  if (result.profile) {
    out << '\n';
    result.profile->print(out);
  }

  if (result.audit) {
    const obs::AuditReport& audit = *result.audit;
    out << "\ninvariant monitor: ";
    if (audit.clean()) {
      out << "clean (0 audit records)\n";
    } else {
      out << audit.records.size() << " audit record(s), "
          << audit.critical_count() << " critical / "
          << audit.warning_count() << " warnings";
      if (audit.dropped_records > 0) {
        out << " (" << audit.dropped_records << " dropped)";
      }
      out << '\n';
      std::size_t shown = 0;
      for (const auto& r : audit.records) {
        if (shown++ == 10) {
          out << "  ... (" << audit.records.size() - 10 << " more)\n";
          break;
        }
        out << "  [" << obs::to_string(r.severity) << "] "
            << obs::to_string(r.kind) << " x" << r.count;
        if (r.node != mac::kNoNode) out << " node " << r.node;
        if (r.peer != mac::kNoNode) out << " peer " << r.peer;
        out << " t=" << metrics::fmt(r.first_t_s, 1) << ".."
            << metrics::fmt(r.last_t_s, 1) << " s — " << r.detail << " ("
            << obs::paper_reference(r.kind) << ")\n";
      }
    }
  }
}

bool RunOutput::begin(trace::EventTrace* trace, std::string* error) {
  const bool want_json = !options_.json_out_path.empty();
  const bool want_timeline = !options_.timeline_out_path.empty();
  if (!want_json && !want_timeline) return true;

  if (trace == nullptr) {
    if (error != nullptr) {
      *error = std::string(want_json ? "--json-out" : "--timeline-out") +
               " needs an event trace (internal)";
    }
    return false;
  }
  if (want_json) {
    json_out_.open(options_.json_out_path);
    if (!json_out_) {
      if (error != nullptr) {
        *error = "could not open " + options_.json_out_path;
      }
      return false;
    }
  }
  if (want_timeline &&
      !timeline_.open(options_.timeline_out_path, error)) {
    return false;
  }

  // EventTrace carries a single streaming sink, so the JSONL stream and the
  // timeline compose into one lambda when both are requested.
  if (want_json && want_timeline) {
    trace->set_sink([this](const trace::TraceEvent& e) {
      obs::write_event_jsonl(json_out_, e);
      timeline_.protocol_event(e);
    });
  } else if (want_json) {
    obs::attach_jsonl_sink(*trace, json_out_);
  } else {
    trace->set_sink(
        [this](const trace::TraceEvent& e) { timeline_.protocol_event(e); });
  }
  return true;
}

void RunOutput::attach_profiler(obs::Profiler* profiler) {
  if (profiler == nullptr || !timeline_.is_open()) return;
  span_profiler_ = profiler;
  profiler->set_span_sink(
      [this](obs::Phase phase, bool is_begin, std::uint64_t now_ns) {
        if (is_begin) {
          timeline_.phase_begin(phase, now_ns);
        } else {
          timeline_.phase_end(phase, now_ns);
        }
      });
}

int RunOutput::finish(std::ostream& out, std::ostream& err,
                      const Scenario& scenario, const RunResult& result,
                      trace::EventTrace* trace) {
  print_result_summary(out, result);

  if (options_.ascii_chart) {
    out << '\n';
    metrics::print_ascii_series(out, result.max_diff,
                                std::max(1.0, scenario.duration_s / 50.0),
                                /*log_scale=*/true);
  }
  if (!options_.csv_path.empty()) {
    if (metrics::write_csv(result.max_diff, options_.csv_path,
                           "max_clock_diff_us")) {
      out << "series written to " << options_.csv_path << '\n';
    } else {
      err << "error: could not write " << options_.csv_path << '\n';
      return 1;
    }
  }
  if (json_out_.is_open()) {
    trace->set_sink({});
    write_summary_jsonl(json_out_, scenario, result);
    if (!json_out_) {
      err << "error: failed writing " << options_.json_out_path << '\n';
      return 1;
    }
    out << "event stream written to " << options_.json_out_path << " ("
        << trace->total_recorded() << " events + summary)\n";
  }
  if (timeline_.is_open()) {
    if (span_profiler_ != nullptr) {
      span_profiler_->set_span_sink({});
      span_profiler_ = nullptr;
    }
    if (trace != nullptr && !json_out_.is_open()) trace->set_sink({});
    // Fault-plan activations and audit records land on the marks track so
    // the cause sits next to its protocol-level effect in Perfetto.
    for (const auto& p : scenario.faults.partitions) {
      timeline_.mark("partition", "fault", p.start_s);
      if (p.end_s >= 0.0) timeline_.mark("partition-heal", "fault", p.end_s);
    }
    for (const auto& f : scenario.faults.node_faults) {
      timeline_.mark(f.kind == fault::NodeFaultKind::kCrash ? "node-crash"
                                                            : "node-pause",
                     "fault", f.at_s);
      if (f.restart_s >= 0.0) {
        timeline_.mark("node-restart", "fault", f.restart_s);
      }
    }
    for (const auto& c : scenario.faults.clock_faults) {
      timeline_.mark("clock-fault", "fault", c.at_s);
    }
    if (result.audit) {
      for (const auto& r : result.audit->records) {
        timeline_.mark(obs::to_string(r.kind), "audit", r.first_t_s);
      }
    }
    const std::uint64_t written = timeline_.events_written();
    const std::uint64_t dropped = timeline_.dropped();
    timeline_.finish();
    out << "timeline written to " << options_.timeline_out_path << " ("
        << written << " trace events";
    if (dropped > 0) out << ", " << dropped << " dropped at the cap";
    out << ")\n";
  }
  if (!options_.prom_textfile_path.empty()) {
    std::string prom_error;
    if (!net::write_prometheus_textfile(options_.prom_textfile_path,
                                        net::prometheus_body(result.metrics),
                                        &prom_error)) {
      err << "error: " << prom_error << '\n';
      return 1;
    }
    out << "prometheus textfile written to " << options_.prom_textfile_path
        << '\n';
  }
  if (!options_.metrics_out_path.empty()) {
    std::ofstream metrics_out(options_.metrics_out_path);
    if (!metrics_out) {
      err << "error: could not write " << options_.metrics_out_path << '\n';
      return 1;
    }
    write_run_json(metrics_out, scenario, result);
    out << "metrics written to " << options_.metrics_out_path << '\n';
  }
  if (options_.dump_trace && trace != nullptr) {
    out << "\nnewest protocol events";
    if (options_.trace_kind) {
      out << " (" << trace::to_string(*options_.trace_kind) << " only)";
    }
    out << ":\n";
    trace->dump(out, options_.trace_limit, options_.trace_kind);
    out << "(recorded " << trace->total_recorded() << " events total, "
        << trace->dropped() << " dropped from the ring)\n";
  }
  if (options_.monitor_strict && result.audit && !result.audit->clean()) {
    err << "error: --monitor=strict and the run produced "
        << result.audit->records.size() << " audit record(s)\n";
    return 3;
  }
  return 0;
}

}  // namespace sstsp::run
