#include "runner/run_output.h"

#include <algorithm>
#include <ostream>

#include "metrics/report.h"
#include "obs/export.h"
#include "runner/json_report.h"

namespace sstsp::run {

OutputOptions OutputOptions::from_cli(const CliOptions& opts) {
  OutputOptions out;
  out.csv_path = opts.csv_path;
  out.json_out_path = opts.json_out_path;
  out.metrics_out_path = opts.metrics_out_path;
  out.ascii_chart = opts.ascii_chart;
  out.dump_trace = opts.dump_trace;
  out.trace_limit = opts.trace_limit;
  out.trace_kind = opts.trace_kind;
  out.monitor_strict = opts.monitor_strict;
  return out;
}

void print_result_summary(std::ostream& out, const RunResult& result) {
  const auto& honest = result.honest;
  out << "\nsync latency (<25 us sustained): "
      << (result.sync_latency_s
              ? metrics::fmt(*result.sync_latency_s, 2) + " s"
              : std::string("never"))
      << "\nsteady max / p99 clock difference: "
      << (result.steady_max_us ? metrics::fmt(*result.steady_max_us, 2)
                               : std::string("-"))
      << " / "
      << (result.steady_p99_us ? metrics::fmt(*result.steady_p99_us, 2)
                               : std::string("-"))
      << " us\nbeacons: " << result.channel.transmissions << " ("
      << result.channel.collided_transmissions << " collided), "
      << result.channel.bytes_on_air << " bytes on air\n"
      << "adjustments/adoptions: " << honest.adjustments << "/"
      << honest.adoptions << ", elections " << honest.elections_won
      << ", rejections g/i/k/m " << honest.rejected_guard << "/"
      << honest.rejected_interval << "/" << honest.rejected_key << "/"
      << honest.rejected_mac << '\n';

  if (result.net) {
    const auto& net = *result.net;
    out << "wire: " << net.frames_sent << " frames sent, "
        << net.frames_received << " received ("
        << net.transport.datagrams_sent << "/"
        << net.transport.datagrams_received << " datagrams, "
        << net.transport.bytes_sent << "/" << net.transport.bytes_received
        << " bytes), " << net.decode_errors << " decode errors, "
        << net.self_frames_dropped << " self echoes dropped";
    if (net.stale_frames_dropped > 0) {
      out << ", " << net.stale_frames_dropped << " stale frames skipped";
    }
    if (net.transport.send_errors + net.transport.recv_errors > 0) {
      out << ", " << net.transport.send_errors << " send / "
          << net.transport.recv_errors << " recv errors";
    }
    out << '\n';
  }

  if (result.profile) {
    out << '\n';
    result.profile->print(out);
  }

  if (result.audit) {
    const obs::AuditReport& audit = *result.audit;
    out << "\ninvariant monitor: ";
    if (audit.clean()) {
      out << "clean (0 audit records)\n";
    } else {
      out << audit.records.size() << " audit record(s), "
          << audit.critical_count() << " critical / "
          << audit.warning_count() << " warnings";
      if (audit.dropped_records > 0) {
        out << " (" << audit.dropped_records << " dropped)";
      }
      out << '\n';
      std::size_t shown = 0;
      for (const auto& r : audit.records) {
        if (shown++ == 10) {
          out << "  ... (" << audit.records.size() - 10 << " more)\n";
          break;
        }
        out << "  [" << obs::to_string(r.severity) << "] "
            << obs::to_string(r.kind) << " x" << r.count;
        if (r.node != mac::kNoNode) out << " node " << r.node;
        if (r.peer != mac::kNoNode) out << " peer " << r.peer;
        out << " t=" << metrics::fmt(r.first_t_s, 1) << ".."
            << metrics::fmt(r.last_t_s, 1) << " s — " << r.detail << " ("
            << obs::paper_reference(r.kind) << ")\n";
      }
    }
  }
}

bool RunOutput::begin(trace::EventTrace* trace, std::string* error) {
  if (options_.json_out_path.empty()) return true;
  json_out_.open(options_.json_out_path);
  if (!json_out_) {
    if (error != nullptr) {
      *error = "could not open " + options_.json_out_path;
    }
    return false;
  }
  if (trace == nullptr) {
    if (error != nullptr) {
      *error = "--json-out needs an event trace (internal)";
    }
    return false;
  }
  obs::attach_jsonl_sink(*trace, json_out_);
  return true;
}

int RunOutput::finish(std::ostream& out, std::ostream& err,
                      const Scenario& scenario, const RunResult& result,
                      trace::EventTrace* trace) {
  print_result_summary(out, result);

  if (options_.ascii_chart) {
    out << '\n';
    metrics::print_ascii_series(out, result.max_diff,
                                std::max(1.0, scenario.duration_s / 50.0),
                                /*log_scale=*/true);
  }
  if (!options_.csv_path.empty()) {
    if (metrics::write_csv(result.max_diff, options_.csv_path,
                           "max_clock_diff_us")) {
      out << "series written to " << options_.csv_path << '\n';
    } else {
      err << "error: could not write " << options_.csv_path << '\n';
      return 1;
    }
  }
  if (json_out_.is_open()) {
    trace->set_sink({});
    write_summary_jsonl(json_out_, scenario, result);
    if (!json_out_) {
      err << "error: failed writing " << options_.json_out_path << '\n';
      return 1;
    }
    out << "event stream written to " << options_.json_out_path << " ("
        << trace->total_recorded() << " events + summary)\n";
  }
  if (!options_.metrics_out_path.empty()) {
    std::ofstream metrics_out(options_.metrics_out_path);
    if (!metrics_out) {
      err << "error: could not write " << options_.metrics_out_path << '\n';
      return 1;
    }
    write_run_json(metrics_out, scenario, result);
    out << "metrics written to " << options_.metrics_out_path << '\n';
  }
  if (options_.dump_trace && trace != nullptr) {
    out << "\nnewest protocol events";
    if (options_.trace_kind) {
      out << " (" << trace::to_string(*options_.trace_kind) << " only)";
    }
    out << ":\n";
    trace->dump(out, options_.trace_limit, options_.trace_kind);
    out << "(recorded " << trace->total_recorded() << " events total, "
        << trace->dropped() << " dropped from the ring)\n";
  }
  if (options_.monitor_strict && result.audit && !result.audit->clean()) {
    err << "error: --monitor=strict and the run produced "
        << result.audit->records.size() << " audit record(s)\n";
    return 3;
  }
  return 0;
}

}  // namespace sstsp::run
