#include "runner/experiment.h"

#include <algorithm>

#include "runner/network.h"

namespace sstsp::run {

RunResult run_scenario(const Scenario& scenario) {
  Network net(scenario);
  net.run();

  RunResult result;
  result.max_diff = net.max_diff_series();
  result.channel = net.channel_stats();
  result.honest = net.honest_stats();
  if (const auto* atk = net.attacker_stats()) result.attacker = *atk;

  result.sync_latency_s =
      result.max_diff.first_sustained_below(kSyncThresholdUs, 1.0);

  const double steady_from =
      std::max(20.0, result.sync_latency_s.value_or(0.0) + 5.0);
  result.steady_max_us =
      result.max_diff.max_in(steady_from, scenario.duration_s);
  result.steady_p99_us =
      result.max_diff.quantile_in(0.99, steady_from, scenario.duration_s);
  return result;
}

}  // namespace sstsp::run
