#include "runner/experiment.h"

#include <algorithm>
#include <chrono>

#include "runner/network.h"
#include "runner/parallel_network.h"

namespace sstsp::run {

void derive_series_stats(RunResult& result, double duration_s) {
  result.sync_latency_s =
      result.max_diff.first_sustained_below(kSyncThresholdUs, 1.0);

  const double steady_from =
      std::max(20.0, result.sync_latency_s.value_or(0.0) + 5.0);
  result.steady_max_us = result.max_diff.max_in(steady_from, duration_s);
  result.steady_p99_us =
      result.max_diff.quantile_in(0.99, steady_from, duration_s);
}

RunResult collect_result(Network& net, double wall_seconds) {
  const Scenario& scenario = net.scenario();
  RunResult result;
  result.max_diff = net.max_diff_series();
  result.channel = net.channel_stats();
  result.honest = net.honest_stats();
  if (const auto* atk = net.attacker_stats()) result.attacker = *atk;
  result.metrics = net.metrics_registry().snapshot();
  result.events_processed = net.simulator().events_processed();
  result.wall_seconds = wall_seconds;
  if (net.profiler() != nullptr) {
    result.profile =
        net.profiler()->snapshot(result.events_processed, wall_seconds);
  }
  if (net.monitor() != nullptr) result.audit = net.monitor()->report();
  if (scenario.cluster.enabled()) {
    result.cluster_spread = net.cluster_spread_series();
    result.attach_fraction = net.attach_fraction_series();
    // Same steady window as derive_series_stats, but against the widened
    // cluster threshold (global spread carries the translation error).
    const double threshold =
        kSyncThresholdUs + scenario.cluster.cross_cluster_bound_us();
    const auto latency =
        result.max_diff.first_sustained_below(threshold, 1.0);
    const double steady_from = std::max(20.0, latency.value_or(0.0) + 5.0);
    result.cluster_steady_max_us =
        result.cluster_spread.max_in(steady_from, scenario.duration_s);
  }
  if (net.recovery_tracker() != nullptr) {
    net.recovery_tracker()->finalize(net.fault_injector()->stats());
    result.recovery = net.recovery_tracker()->report();
  }

  derive_series_stats(result, scenario.duration_s);
  return result;
}

RunResult run_scenario(const Scenario& scenario) {
  if (scenario.threads > 0 || scenario.shards > 0) {
    return run_parallel_scenario(scenario);
  }
  Network net(scenario);
  const auto wall_start = std::chrono::steady_clock::now();
  net.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return collect_result(net, wall_seconds);
}

}  // namespace sstsp::run
