// Scenario description: everything needed to reproduce one simulation run
// of the paper's evaluation (§5), as plain data.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attack/internal_reference.h"
#include "attack/tsf_attacker.h"
#include "clock/drift_model.h"
#include "cluster/cluster_config.h"
#include "core/sstsp_config.h"
#include "fault/plan.h"
#include "mac/phy_params.h"
#include "protocols/atsp.h"
#include "protocols/rentel_kunz.h"
#include "protocols/satsf.h"
#include "protocols/tatsp.h"

namespace sstsp::run {

enum class ProtocolKind { kTsf, kAtsp, kTatsp, kSatsf, kRentelKunz, kSstsp };

[[nodiscard]] const char* protocol_name(ProtocolKind kind);

/// Periodic churn: `fraction` of the stations leave every `period_s`
/// seconds and return `absence_s` later (paper §5: 5 % at k*200 s, back
/// after 50 s).
struct ChurnSpec {
  double period_s = 200.0;
  double fraction = 0.05;
  double absence_s = 50.0;
};

struct Scenario {
  ProtocolKind protocol = ProtocolKind::kSstsp;
  int num_nodes = 100;          ///< honest stations (attacker is extra)
  double duration_s = 1000.0;   ///< paper: 1000 s runs
  std::uint64_t seed = 1;

  mac::PhyParams phy{};
  core::SstspConfig sstsp{};
  proto::AtspParams atsp{};
  proto::TatspParams tatsp{};
  proto::SatsfParams satsf{};
  proto::RentelKunzParams rentel_kunz{};

  /// Hardware clocks start offset uniform in (-x, +x) us (paper Table 1
  /// setup uses 112 us) and drift uniform in +/-max_drift_ppm.
  double initial_offset_us = 112.0;
  double max_drift_ppm = 100.0;

  /// When true (SSTSP only) node 0 boots directly in the reference role —
  /// used by convergence experiments that must not mix election time into
  /// the measured latency.
  bool preestablished_reference = false;

  std::optional<ChurnSpec> churn{};

  /// Times at which the current reference departs (SSTSP; paper: 300, 500,
  /// 800 s), returning after `departure_absence_s`.
  std::vector<double> reference_departures_s{};
  double departure_absence_s = 50.0;

  /// Adversary deployed on the extra attacker station, by registry name
  /// ("tsf-slow", "internal-ref", "replay", ...; see attack/adversary.h).
  /// Empty: no attacker.  attack_params_json carries adversary-specific
  /// overrides as a JSON object text ({"start":400,"skew":50,...}).
  std::string attack{};
  std::string attack_params_json{};
  attack::TsfAttackParams tsf_attack{};
  attack::SstspAttackParams sstsp_attack{};

  /// Hierarchical cluster layout (cluster/cluster_config.h).  When
  /// cluster.enabled(), the network is partitioned into
  /// cluster.clusters broadcast domains of cluster.nodes_per_cluster
  /// nodes each (num_nodes must equal their product), every node runs
  /// the ClusterSstsp wrapper, and gateways bridge the root timescale
  /// down the chain.  SSTSP only; incompatible with attackers.
  cluster::ClusterSpec cluster{};

  /// Injected faults (fault/plan.h); empty = pristine environment.  The
  /// same plan drives the simulated channel and the live transports.
  fault::FaultPlan faults{};

  /// Second-order oscillator stressor (clock/drift_model.h): temperature
  /// ramp, aging, or random-walk frequency noise applied per honest node on
  /// a periodic tick.  Disabled by default (the paper's constant-rate
  /// model); enabling it perturbs the seeded event stream.
  clk::DriftStress clock_stress{};

  /// Max-clock-difference sampling cadence.
  double sample_period_s = 0.1;

  /// When > 0, the network attaches a shared protocol-event trace (ring
  /// buffer of this capacity) to every station; read it back through
  /// Network::trace().
  std::size_t trace_capacity = 0;

  /// Metrics collection (counters/histograms through obs::Instruments).
  /// On by default: the recording cost is a pointer-indirect increment per
  /// event; RunResult carries the snapshot.
  bool collect_metrics = true;

  /// Wall-clock profiling of the simulation hot paths (obs::Profiler).
  /// Off by default; when off, the only cost is a null-pointer test at
  /// each span site.
  bool profile = false;

  /// Online invariant monitor + beacon-lifecycle tracking
  /// (obs::InvariantMonitor / trace::BeaconLifecycle).  Off by default;
  /// when off, every hook site is a null-pointer test.  Violations are
  /// collected as audit records in RunResult::audit.
  bool monitor = false;

  /// Streaming telemetry (DESIGN.md §10): when non-empty, append one
  /// TelemetrySample JSONL line per telemetry_interval_s of virtual time to
  /// this path.  Piggybacks on the clock-spread sampling tick, so enabling
  /// it adds no simulator events and leaves seeded runs bit-identical.
  std::string telemetry_out{};
  double telemetry_interval_s = 1.0;
  /// Attach per-node offset errors to cluster samples: 1 on, 0 off,
  /// -1 auto (on while num_nodes <= 64).
  int telemetry_per_node = -1;

  /// Phase-sampling profiler (obs::PhaseSampler, DESIGN.md §11): samples
  /// the current profiler phase, event-queue depth and per-phase exclusive
  /// time every phase_sampler_interval_s of virtual time.  Gated on the
  /// dispatch loop (one compare per event) — adds no simulator events and
  /// leaves seeded runs bit-identical.  Implies nothing about `profile`;
  /// phase attribution needs it, queue-depth sampling does not.
  bool phase_sampler = false;
  double phase_sampler_interval_s = 0.001;

  /// Flight recorder (obs::FlightRecorder): when non-empty, retain the
  /// newest flight_capacity protocol events and dump them to this path on
  /// any new audit record or an external dump request (SIGUSR1).
  std::string flight_recorder_out{};
  std::size_t flight_capacity = 512;

  /// Sharded parallel kernel (sim::ShardExecutor + mac::ShardedWorld).
  /// threads > 0 or shards > 0 selects it; shards defaults to the thread
  /// count when only threads is given.  Results are bit-identical for any
  /// (threads, shards) combination — including the single-threaded legacy
  /// kernel when PER is 0 and rx latency is fixed; see DESIGN.md §12 for
  /// the exactness contract and the two documented RNG-stream deviations.
  int threads = 0;
  int shards = 0;

  /// Convenience: the paper's §5 environment (churn + reference
  /// departures) on top of the defaults.
  [[nodiscard]] static Scenario paper_section5(ProtocolKind protocol,
                                               int num_nodes,
                                               std::uint64_t seed = 1);
};

}  // namespace sstsp::run
