#include "runner/config_file.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sstsp::run {

namespace {

/// Renders a JSON number the way a user would type it on the command line:
/// whole values without a decimal point, everything else round-trippable.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  // Shortest representation that still round-trips through strtod: a
  // config value of 0.05 must splice into argv as "0.05", not the full
  // 17-digit expansion.
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool scalar_to_string(const obs::json::Value& v, std::string* out) {
  switch (v.kind) {
    case obs::json::Value::Kind::kNumber:
      *out = format_number(v.number);
      return true;
    case obs::json::Value::Kind::kString:
      *out = v.string;
      return true;
    case obs::json::Value::Kind::kBool:
      *out = v.boolean ? "true" : "false";
      return true;
    default:
      return false;
  }
}

}  // namespace

std::optional<std::vector<std::string>> config_to_args(
    const obs::json::Value& root, std::string* error) {
  auto fail =
      [error](std::string message) -> std::optional<std::vector<std::string>> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  if (!root.is_object()) return fail("config must be a JSON object");

  std::vector<std::string> args;
  for (const auto& [key, value] : root.object) {
    if (key.empty()) return fail("config keys must be non-empty");
    if (key == "config") return fail("config files cannot nest (key 'config')");
    const std::string flag = "--" + key;

    switch (value.kind) {
      case obs::json::Value::Kind::kBool:
        if (value.boolean) args.push_back(flag);
        break;
      case obs::json::Value::Kind::kString:
        if (key == "monitor" && value.string == "strict") {
          args.push_back(flag + "=strict");
          break;
        }
        args.push_back(flag);
        args.push_back(value.string);
        break;
      case obs::json::Value::Kind::kNumber:
        args.push_back(flag);
        args.push_back(format_number(value.number));
        break;
      case obs::json::Value::Kind::kArray: {
        std::string joined;
        for (const auto& item : value.array) {
          std::string part;
          if (!scalar_to_string(item, &part)) {
            return fail("config key '" + key +
                        "': arrays may only contain scalars");
          }
          if (!joined.empty()) joined += ',';
          joined += part;
        }
        args.push_back(flag);
        args.push_back(joined);
        break;
      }
      case obs::json::Value::Kind::kNull:
        break;  // explicit "leave at default"
      case obs::json::Value::Kind::kObject:
        return fail("config key '" + key +
                    "': nested objects are not supported");
    }
  }
  return args;
}

std::optional<std::vector<std::string>> load_config_args(
    const std::string& path, std::string* error) {
  auto fail =
      [error](std::string message) -> std::optional<std::vector<std::string>> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  std::ifstream in(path);
  if (!in) return fail("could not read config file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();

  const auto parsed = obs::json::parse(buffer.str());
  if (!parsed) return fail("config file is not valid JSON: " + path);

  std::string convert_error;
  auto args = config_to_args(*parsed, &convert_error);
  if (!args) return fail(path + ": " + convert_error);
  return args;
}

}  // namespace sstsp::run
