#include "runner/config_file.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "core/discipline.h"

namespace sstsp::run {

namespace {

// Universal key schema: the union of the three tools' flag sets, each key
// tagged with the tools it applies to.  A config key outside this table is
// an error everywhere; a key inside it is silently skipped by tools it
// does not apply to, so one file drives sim and live runs alike.
constexpr unsigned kSim = 1U;
constexpr unsigned kNode = 2U;
constexpr unsigned kSwarm = 4U;
constexpr unsigned kAll = kSim | kNode | kSwarm;

struct KeySpec {
  std::string_view key;
  unsigned tools;
};

constexpr KeySpec kSchema[] = {
    // scenario / deployment
    {"protocol", kSim},
    {"nodes", kAll},
    {"duration", kAll},
    {"seed", kAll},
    {"paper-env", kSim},
    {"threads", kSim},
    {"shards", kSim},
    {"radio-range", kSim},
    {"placement-radius", kSim},
    {"id", kNode},
    // protocol parameters
    {"m", kAll},
    {"l", kAll},
    {"guard", kAll},
    {"chain-length", kAll},
    {"per", kSim},
    {"preestablished", kSim | kSwarm},
    {"reference", kNode},
    // clusters (hierarchical multi-domain sync, DESIGN.md §13)
    {"clusters", kSim},
    {"cluster-nodes", kSim},
    {"cluster-gateways", kSim},
    {"cluster-spacing", kSim},
    {"cluster-radius", kSim},
    {"cluster-phase", kSim},
    {"cluster-hop-bound", kSim},
    // environment
    {"churn", kSim},
    {"departures", kSim},
    {"sample-period", kSim | kSwarm},
    {"max-drift", kAll},
    {"initial-offset", kAll},
    {"drift", kNode},
    {"offset", kNode},
    // attack + faults (first-class; see conversion below)
    {"attack", kSim},
    {"attack-window", kSim},
    {"attack-params", kSim},
    {"skew", kSim},
    {"faults", kAll},
    {"faults-json", kAll},
    // clock discipline + oscillator stress (DESIGN.md §14)
    {"discipline", kAll},
    {"discipline-params", kAll},
    {"clock-model", kSim},
    {"clock-model-params", kSim},
    // live endpoints / pacing
    {"transport", kSwarm},
    {"bind", kNode | kSwarm},
    {"port", kNode},
    {"base-port", kSwarm},
    {"peer", kNode},
    {"multicast", kNode},
    {"mcast-if", kNode},
    {"ttl", kNode},
    {"latency", kSwarm},
    {"drop", kSwarm},
    {"wire-latency", kNode | kSwarm},
    {"diverge-threshold", kSwarm},
    {"epoch", kNode},
    // output / checks
    {"csv", kSim | kSwarm},
    {"chart", kSim | kSwarm},
    {"trace", kAll},
    {"trace-limit", kAll},
    {"trace-kind", kAll},
    {"json-out", kAll},
    {"metrics-out", kAll},
    {"profile", kAll},
    {"monitor", kAll},
    {"expect-sync", kSwarm},
    // telemetry / flight recorder (DESIGN.md §10)
    {"telemetry-out", kAll},
    {"telemetry-interval", kAll},
    {"telemetry-per-node", kSim | kSwarm},
    {"telemetry-udp", kNode},
    {"flight-recorder", kAll},
    {"flight-capacity", kAll},
    {"watch", kSwarm},
    // performance observatory (DESIGN.md §11)
    {"timeline-out", kAll},
    {"sampler", kAll},
    {"sampler-interval", kAll},
    {"prom-textfile", kAll},
    {"prom-port", kNode | kSwarm},
};

const KeySpec* find_key(std::string_view key) {
  for (const auto& spec : kSchema) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

unsigned tool_mask(ConfigTool tool) {
  switch (tool) {
    case ConfigTool::kSim:
      return kSim;
    case ConfigTool::kNode:
      return kNode;
    case ConfigTool::kSwarm:
      return kSwarm;
    case ConfigTool::kAny:
      break;
  }
  return kAll;
}

/// Renders a JSON number the way a user would type it on the command line:
/// whole values without a decimal point, everything else round-trippable.
std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  // Shortest representation that still round-trips through strtod: a
  // config value of 0.05 must splice into argv as "0.05", not the full
  // 17-digit expansion.
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool scalar_to_string(const obs::json::Value& v, std::string* out) {
  switch (v.kind) {
    case obs::json::Value::Kind::kNumber:
      *out = format_number(v.number);
      return true;
    case obs::json::Value::Kind::kString:
      *out = v.string;
      return true;
    case obs::json::Value::Kind::kBool:
      *out = v.boolean ? "true" : "false";
      return true;
    default:
      return false;
  }
}

std::string at_line(const obs::json::Value& v) {
  return v.line > 0 ? "line " + std::to_string(v.line) + ": " : "";
}

}  // namespace

std::optional<clk::DriftStressKind> clock_model_kind_from_string(
    std::string_view name) {
  if (name == "none") return clk::DriftStressKind::kNone;
  if (name == "temp-ramp") return clk::DriftStressKind::kTempRamp;
  if (name == "aging") return clk::DriftStressKind::kAging;
  if (name == "random-walk") return clk::DriftStressKind::kRandomWalk;
  return std::nullopt;
}

bool clock_model_param_key_known(std::string_view key) {
  return key == "kind" || key == "period" || key == "ramp-ppm-per-s" ||
         key == "ramp-start" || key == "ramp-end" ||
         key == "aging-ppm-per-day" || key == "walk-sigma-ppm";
}

bool apply_clock_model_json(const obs::json::Value& value,
                            clk::DriftStress* stress, std::string* error) {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };

  if (value.kind == obs::json::Value::Kind::kString) {
    const auto kind = clock_model_kind_from_string(value.string);
    if (!kind) {
      return fail(at_line(value) + "unknown clock model '" + value.string +
                  "' (have: none, temp-ramp, aging, random-walk)");
    }
    stress->kind = *kind;
    return true;
  }
  if (!value.is_object()) {
    return fail(at_line(value) +
                "config key 'clock-model' must be a kind string or an "
                "object {kind, period, ...}");
  }
  for (const auto& [key, v] : value.object) {
    if (!clock_model_param_key_known(key)) {
      return fail(at_line(v) + "unknown config key 'clock-model." + key +
                  "'");
    }
    auto need_number = [&](double lo, double hi) -> bool {
      return v.kind == obs::json::Value::Kind::kNumber && v.number >= lo &&
             v.number <= hi;
    };
    if (key == "kind") {
      std::optional<clk::DriftStressKind> kind;
      if (v.kind == obs::json::Value::Kind::kString) {
        kind = clock_model_kind_from_string(v.string);
      }
      if (!kind) {
        return fail(at_line(v) + "config key 'clock-model.kind' must be one "
                                 "of: none, temp-ramp, aging, random-walk");
      }
      stress->kind = *kind;
    } else if (key == "period") {
      if (!need_number(1e-3, 1e6)) {
        return fail(at_line(v) + "config key 'clock-model.period' must be a "
                                 "number of seconds >= 0.001");
      }
      stress->period_s = v.number;
    } else if (key == "ramp-ppm-per-s") {
      if (!need_number(0.0, 1e6)) {
        return fail(at_line(v) + "config key 'clock-model.ramp-ppm-per-s' "
                                 "must be a number >= 0");
      }
      stress->ramp_ppm_per_s = v.number;
    } else if (key == "ramp-start") {
      if (!need_number(0.0, 1e9)) {
        return fail(at_line(v) + "config key 'clock-model.ramp-start' must "
                                 "be a number of seconds >= 0");
      }
      stress->ramp_start_s = v.number;
    } else if (key == "ramp-end") {
      if (!need_number(-1.0, 1e9)) {
        return fail(at_line(v) + "config key 'clock-model.ramp-end' must be "
                                 "a number of seconds (-1 = whole run)");
      }
      stress->ramp_end_s = v.number;
    } else if (key == "aging-ppm-per-day") {
      if (!need_number(0.0, 1e6)) {
        return fail(at_line(v) + "config key 'clock-model.aging-ppm-per-day' "
                                 "must be a number >= 0");
      }
      stress->aging_ppm_per_day = v.number;
    } else if (key == "walk-sigma-ppm") {
      if (!need_number(0.0, 1e6)) {
        return fail(at_line(v) + "config key 'clock-model.walk-sigma-ppm' "
                                 "must be a number >= 0");
      }
      stress->walk_sigma_ppm = v.number;
    }
  }
  return true;
}

std::optional<std::vector<std::string>> config_to_args(
    const obs::json::Value& root, ConfigTool tool, std::string* error) {
  auto fail =
      [error](std::string message) -> std::optional<std::vector<std::string>> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  if (!root.is_object()) return fail("config must be a JSON object");
  const unsigned mask = tool_mask(tool);

  std::vector<std::string> args;
  for (const auto& [key, value] : root.object) {
    if (key.empty()) return fail("config keys must be non-empty");
    if (key == "config") {
      return fail(at_line(value) + "config files cannot nest (key 'config')");
    }
    const KeySpec* spec = find_key(key);
    if (spec == nullptr) {
      return fail(at_line(value) + "unknown config key '" + key + "'");
    }
    if ((spec->tools & mask) == 0) continue;  // another tool's key
    const std::string flag = "--" + key;

    // First-class structured keys.
    if (key == "faults") {
      if (value.is_object()) {
        // Splice the plan inline; the tool's --faults-json flag parses
        // (and so validates) it with plan-level line diagnostics lost to
        // the re-dump, which is why parse errors here are rare: the
        // document already parsed as JSON.
        args.push_back("--faults-json");
        args.push_back(obs::json::dump(value));
      } else if (value.kind == obs::json::Value::Kind::kString) {
        args.push_back("--faults");
        args.push_back(value.string);
      } else {
        return fail(at_line(value) +
                    "config key 'faults' must be a plan object or a path "
                    "string");
      }
      continue;
    }
    if (key == "discipline") {
      if (value.kind == obs::json::Value::Kind::kString) {
        if (!core::discipline_known(value.string)) {
          return fail(at_line(value) + "unknown discipline '" + value.string +
                      "'");
        }
        args.push_back("--discipline");
        args.push_back(value.string);
        continue;
      }
      if (!value.is_object()) {
        return fail(at_line(value) +
                    "config key 'discipline' must be a name string or an "
                    "object {name, window, forgetting, ...}");
      }
      // Validate the nested keys here so errors carry file line numbers;
      // --discipline-params re-parses (and so re-validates) the dump.
      for (const auto& [dkey, dvalue] : value.object) {
        if (!core::discipline_param_key_known(dkey)) {
          return fail(at_line(dvalue) + "unknown config key 'discipline." +
                      dkey + "'");
        }
      }
      args.push_back("--discipline-params");
      args.push_back(obs::json::dump(value));
      continue;
    }
    if (key == "clock-model") {
      if (value.kind == obs::json::Value::Kind::kString) {
        if (!clock_model_kind_from_string(value.string)) {
          return fail(at_line(value) + "unknown clock model '" + value.string +
                      "' (have: none, temp-ramp, aging, random-walk)");
        }
        args.push_back("--clock-model");
        args.push_back(value.string);
        continue;
      }
      if (!value.is_object()) {
        return fail(at_line(value) +
                    "config key 'clock-model' must be a kind string or an "
                    "object {kind, period, ...}");
      }
      for (const auto& [ckey, cvalue] : value.object) {
        if (!clock_model_param_key_known(ckey)) {
          return fail(at_line(cvalue) + "unknown config key 'clock-model." +
                      ckey + "'");
        }
      }
      args.push_back("--clock-model-params");
      args.push_back(obs::json::dump(value));
      continue;
    }
    if (key == "attack") {
      if (value.kind == obs::json::Value::Kind::kString) {
        args.push_back("--attack");
        args.push_back(value.string);
        continue;
      }
      if (!value.is_object()) {
        return fail(at_line(value) +
                    "config key 'attack' must be a name string or an "
                    "object {name, window, params}");
      }
      const obs::json::Value* name = nullptr;
      const obs::json::Value* window = nullptr;
      const obs::json::Value* params = nullptr;
      for (const auto& [akey, avalue] : value.object) {
        if (akey == "name") {
          name = &avalue;
        } else if (akey == "window") {
          window = &avalue;
        } else if (akey == "params") {
          params = &avalue;
        } else {
          return fail(at_line(avalue) + "attack: unknown key '" + akey +
                      "'");
        }
      }
      if (name == nullptr ||
          name->kind != obs::json::Value::Kind::kString) {
        return fail(at_line(value) + "attack: needs a 'name' string");
      }
      args.push_back("--attack");
      args.push_back(name->string);
      if (window != nullptr) {
        if (window->kind != obs::json::Value::Kind::kArray ||
            window->array.size() != 2 ||
            window->array[0].kind != obs::json::Value::Kind::kNumber ||
            window->array[1].kind != obs::json::Value::Kind::kNumber) {
          return fail(at_line(*window) +
                      "attack: 'window' must be [start_s, end_s]");
        }
        args.push_back("--attack-window");
        args.push_back(format_number(window->array[0].number) + "," +
                       format_number(window->array[1].number));
      }
      if (params != nullptr) {
        if (!params->is_object()) {
          return fail(at_line(*params) +
                      "attack: 'params' must be an object");
        }
        args.push_back("--attack-params");
        args.push_back(obs::json::dump(*params));
      }
      continue;
    }

    switch (value.kind) {
      case obs::json::Value::Kind::kBool:
        if (value.boolean) args.push_back(flag);
        break;
      case obs::json::Value::Kind::kString:
        if (key == "monitor" && value.string == "strict") {
          args.push_back(flag + "=strict");
          break;
        }
        args.push_back(flag);
        args.push_back(value.string);
        break;
      case obs::json::Value::Kind::kNumber:
        args.push_back(flag);
        args.push_back(format_number(value.number));
        break;
      case obs::json::Value::Kind::kArray: {
        if (key == "peer") {
          // Repeatable flag: one --peer per endpoint.
          for (const auto& item : value.array) {
            std::string part;
            if (!scalar_to_string(item, &part)) {
              return fail(at_line(item) +
                          "config key 'peer': array items must be "
                          "HOST:PORT strings");
            }
            args.push_back(flag);
            args.push_back(part);
          }
          break;
        }
        std::string joined;
        for (const auto& item : value.array) {
          std::string part;
          if (!scalar_to_string(item, &part)) {
            return fail(at_line(value) + "config key '" + key +
                        "': arrays may only contain scalars");
          }
          if (!joined.empty()) joined += ',';
          joined += part;
        }
        args.push_back(flag);
        args.push_back(joined);
        break;
      }
      case obs::json::Value::Kind::kNull:
        break;  // explicit "leave at default"
      case obs::json::Value::Kind::kObject:
        return fail(at_line(value) + "config key '" + key +
                    "': nested objects are not supported");
    }
  }
  return args;
}

std::optional<std::vector<std::string>> load_config_args(
    const std::string& path, ConfigTool tool, std::string* error) {
  auto fail =
      [error](std::string message) -> std::optional<std::vector<std::string>> {
    if (error != nullptr) *error = std::move(message);
    return std::nullopt;
  };

  std::ifstream in(path);
  if (!in) return fail("could not read config file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();

  const auto parsed = obs::json::parse(buffer.str());
  if (!parsed) return fail("config file is not valid JSON: " + path);

  std::string convert_error;
  auto args = config_to_args(*parsed, tool, &convert_error);
  if (!args) return fail(path + ": " + convert_error);
  return args;
}

}  // namespace sstsp::run
