// Parameter sweeps: run many scenarios concurrently, results in input order.
#pragma once

#include <vector>

#include "runner/experiment.h"

namespace sstsp::run {

/// Runs every scenario (one Simulator per pool task) and returns results in
/// the same order.  `threads` == 0: hardware concurrency.
[[nodiscard]] std::vector<RunResult> run_sweep(
    const std::vector<Scenario>& scenarios, unsigned threads = 0);

}  // namespace sstsp::run
