// RunResult -> JSON: the machine-readable counterpart of the text summary
// every tool/bench prints.
//
// Two shapes, one schema:
//   * write_run_json      — a standalone document per run (--metrics-out,
//                           bench_out/*.metrics.json);
//   * write_summary_jsonl — the same object with "type":"summary" on one
//                           line, terminating a --json-out event stream.
//
// Schema (stable keys; absent quantities are null, never omitted):
//   schema_version, protocol, nodes, duration_s, seed, attack,
//   sync_latency_s, steady_max_us, steady_p99_us,
//   events_processed, wall_seconds,
//   channel{transmissions, collided, deliveries, per_drops,
//           half_duplex_suppressed, bytes_on_air},
//   honest{beacons_sent, beacons_received, adoptions, adjustments,
//          rejected_interval, rejected_key, rejected_mac, rejected_guard,
//          elections_won, demotions, coarse_steps, solver_rejections},
//   attacker (same keys | null),
//   net{transport{datagrams_sent, bytes_sent, send_errors,
//                 datagrams_received, bytes_received, recv_errors},
//       frames_sent, frames_received, self_frames_dropped,
//       decode_errors, stale_frames_dropped} | null (null for pure
//       simulation runs),
//   metrics{counters, gauges, histograms}, profile{...} | null,
//   audit{records[], dropped_records, critical, warnings} | null,
//   recovery{records[], packet_faults{...}, rejected_frames,
//            post_fault_steady_max_us} | null (null when the run carried
//            no fault plan)
#pragma once

#include <iosfwd>

#include "obs/json.h"
#include "runner/experiment.h"

namespace sstsp::run {

/// Version of the run-document schema above.  History:
///   1 — initial export (implicit; documents carried no version field)
///   2 — adds schema_version itself and the audit section
inline constexpr int kRunSchemaVersion = 2;

/// Appends one run as a JSON object value into an enclosing document
/// (bench reports nest these in a "runs" array).
void append_run_json(obs::json::Writer& w, const Scenario& scenario,
                     const RunResult& result);

/// One JSONL line: {"type":"summary", ...}\n.
void write_summary_jsonl(std::ostream& os, const Scenario& scenario,
                         const RunResult& result);

/// Standalone document (newline-terminated).
void write_run_json(std::ostream& os, const Scenario& scenario,
                    const RunResult& result);

}  // namespace sstsp::run
