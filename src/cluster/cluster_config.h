// Multi-domain cluster topology: configuration and membership helpers.
//
// The network is partitioned into broadcast-domain clusters arranged in a
// chain (cluster c's parent is c-1, the root is cluster 0).  Each cluster
// elects its own SSTSP reference with the unmodified l-BP contention; the
// first `gateways` node ids of every non-root cluster are gateway nodes that
// additionally listen to the parent cluster and bridge its timescale across
// the boundary (see sstsp_cluster.h).  Node ids are cluster-major: cluster c
// owns [c*K, (c+1)*K) with K = nodes_per_cluster.
//
// Domains (mac::Frame::domain):
//   c           — cluster c's member plane (beacons, election, (k,b) solve)
//   0x80 | c    — cluster c's bridge plane (gateway tau announcements)
//
// Geometry contract for a finite radio range R (checked by the runner):
//   2 * radius            <= R   members hear their own reference
//   spacing / 2 + radius  <= R   gateways (placed midway between adjacent
//                                cluster centers) hear both clusters
//   spacing               <= R   cluster c's bridge announcements reach the
//                                gateways of cluster c+1, so the root
//                                timescale can chain down cluster by cluster
#pragma once

#include <cstdint>

#include "mac/phy_params.h"

namespace sstsp::cluster {

struct ClusterSpec {
  /// Number of clusters; 0 disables cluster mode entirely.
  int clusters = 0;
  /// Nodes per cluster, gateways included.
  int nodes_per_cluster = 20;
  /// Gateway nodes per non-root cluster (the root has none).
  int gateways = 1;
  /// Distance between adjacent cluster centers (meters).
  double spacing_m = 45.0;
  /// Placement disc radius around each cluster center (meters).
  double radius_m = 14.0;
  /// Per-depth schedule phase stagger: cluster c's µTESLA schedule origin is
  /// t0 + depth(c) * phase_us.  Small versus BP; it de-correlates the
  /// no-delay reference emissions of adjacent clusters so a gateway sitting
  /// in range of both references is not starved by systematic collisions.
  double phase_us = 1500.0;
  /// Offset of the bridge-plane announcement inside each BP, measured from
  /// the home cluster's nominal emission time (clear of the reference
  /// beacon and the early contention slots).
  double bridge_stagger_us = 4000.0;
  /// Documented per-gateway-hop translation error bound (µs).  The
  /// cross-cluster Lemma-1 analogue asserts that the inter-cluster max
  /// offset stays within hop_bound_us * max gateway depth (DESIGN.md §13).
  double hop_bound_us = 25.0;
  /// Bridge announcements older than this many BPs no longer count as
  /// attachment evidence: the cluster is detached until re-bridged.
  int tau_stale_bps = 8;

  [[nodiscard]] bool enabled() const { return clusters > 0; }
  [[nodiscard]] int total_nodes() const { return clusters * nodes_per_cluster; }
  /// Gateway hops from the root to the deepest cluster.
  [[nodiscard]] int max_depth() const { return clusters > 0 ? clusters - 1 : 0; }
  /// Network-wide inter-cluster offset bound (the Lemma-1 analogue).
  [[nodiscard]] double cross_cluster_bound_us() const {
    return hop_bound_us * static_cast<double>(max_depth());
  }
};

[[nodiscard]] inline int cluster_of(const ClusterSpec& spec, mac::NodeId id) {
  return static_cast<int>(id) / spec.nodes_per_cluster;
}

[[nodiscard]] inline int member_index(const ClusterSpec& spec, mac::NodeId id) {
  return static_cast<int>(id) % spec.nodes_per_cluster;
}

/// Gateways are the first `gateways` ids of every non-root cluster.
[[nodiscard]] inline bool is_gateway(const ClusterSpec& spec, mac::NodeId id) {
  return cluster_of(spec, id) > 0 && member_index(spec, id) < spec.gateways;
}

[[nodiscard]] inline int depth_of(const ClusterSpec& /*spec*/, int cluster) {
  return cluster;  // chain topology: depth equals the cluster index
}

[[nodiscard]] inline int parent_of(const ClusterSpec& /*spec*/, int cluster) {
  return cluster - 1;
}

/// Schedule phase of cluster c's µTESLA/beacon timetable.
[[nodiscard]] inline double phase_of(const ClusterSpec& spec, int cluster) {
  return static_cast<double>(depth_of(spec, cluster)) * spec.phase_us;
}

[[nodiscard]] inline std::uint8_t member_domain(int cluster) {
  return static_cast<std::uint8_t>(cluster);
}

[[nodiscard]] inline std::uint8_t bridge_domain(int cluster) {
  return static_cast<std::uint8_t>(0x80 | cluster);
}

/// Center of cluster c's placement disc (chain laid out along the x axis).
[[nodiscard]] inline mac::Position cluster_center(const ClusterSpec& spec,
                                                  int cluster) {
  return {static_cast<double>(cluster) * spec.spacing_m, 0.0};
}

/// Deterministic gateway placement: midway between the home and parent
/// centers, fanned out on y so co-gateways do not stack on one point.
[[nodiscard]] inline mac::Position gateway_position(const ClusterSpec& spec,
                                                    mac::NodeId id) {
  const int c = cluster_of(spec, id);
  const mac::Position home = cluster_center(spec, c);
  const mac::Position parent = cluster_center(spec, parent_of(spec, c));
  const double y = 2.0 * static_cast<double>(member_index(spec, id));
  return {(home.x_m + parent.x_m) / 2.0, y};
}

/// Deterministic emission offset of a staggered transmitter inside its
/// interval: `level` stagger windows, then a fixed per-node slot.  Shared by
/// the multi-hop relay tree and the gateway bridge so slot arithmetic stays
/// in one place.
[[nodiscard]] inline double stagger_offset_us(int level, int slot,
                                              double stagger_us,
                                              double slot_us) {
  return static_cast<double>(level) * stagger_us +
         static_cast<double>(slot) * slot_us;
}

}  // namespace sstsp::cluster
