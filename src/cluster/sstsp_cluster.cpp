#include "cluster/sstsp_cluster.h"

#include <algorithm>
#include <cmath>

namespace sstsp::cluster {

namespace {
/// Spacing between co-gateway announcement slots inside the bridge stagger
/// window: comfortably beyond one beacon's air time, so co-gateways never
/// systematically overlap even before CSMA deference.
constexpr double kAnnounceSlotUs = 200.0;
}  // namespace

ClusterSstsp::ClusterSstsp(proto::Station& station,
                           const core::SstspConfig& base_cfg,
                           core::KeyDirectory& directory, Options options)
    : SyncProtocol(station),
      options_(options),
      home_schedule_{base_cfg.t0_us + phase_of(options.spec, options.cluster),
                     station.channel().phy().beacon_period.to_us(),
                     base_cfg.chain_length},
      directory_(directory) {
  const double bp = home_schedule_.interval_us;
  tau_stale_us_ = static_cast<double>(options_.spec.tau_stale_bps) * bp;

  core::SstspConfig home_cfg = base_cfg;
  home_cfg.t0_us = home_schedule_.t0_us;
  core::Sstsp::Options member_opts;
  member_opts.calibrated_boot = options_.calibrated_boot;
  member_opts.start_as_reference = options_.start_as_reference;
  member_opts.domain = member_domain(options_.cluster);
  // A gateway sits at the geometric midpoint between clusters, where the
  // two parents' beacons are mutually hidden terminals: letting it contend
  // would hand it the home reference role on every phase-crossing collision
  // burst.  Its member half therefore only listens; the µTESLA chain is
  // spent on bridge announcements instead.
  member_opts.passive = options_.gateway;
  // Adjacent clusters' references drift through each other's slots (the
  // phase stagger only separates them at boot); defer-and-retry across one
  // beacon air time instead of silently dropping intervals.  The retry
  // window stays inside the receivers' interval slack.
  member_opts.busy_retries = 8;
  member_opts.busy_retry_step_us =
      std::max(50.0, base_cfg.interval_slack_us / 8.0);
  member_ = std::make_unique<core::Sstsp>(station, home_cfg, directory,
                                          member_opts);

  if (options_.cluster > 0) {
    home_tau_.emplace(directory, home_schedule_, base_cfg.interval_slack_us,
                      tau_stale_us_);
  }
  if (options_.gateway) {
    const int parent = parent_of(options_.spec, options_.cluster);
    core::SstspConfig parent_cfg = base_cfg;
    parent_cfg.t0_us = base_cfg.t0_us + phase_of(options_.spec, parent);
    core::Sstsp::Options uplink_opts;
    uplink_opts.calibrated_boot = options_.calibrated_boot;
    uplink_opts.domain = member_domain(parent);
    uplink_opts.passive = true;
    uplink_ = std::make_unique<core::Sstsp>(station, parent_cfg, directory,
                                            uplink_opts);
    if (parent > 0) {
      const crypto::MuTeslaSchedule parent_schedule{parent_cfg.t0_us, bp,
                                                    base_cfg.chain_length};
      parent_tau_.emplace(directory, parent_schedule,
                          base_cfg.interval_slack_us, tau_stale_us_);
    }
    bridge_ = std::make_unique<GatewayBridge>(
        station, directory, home_schedule_,
        GatewayBridge::Config{bridge_domain(options_.cluster),
                              static_cast<std::uint8_t>(depth())});
    announce_offset_us_ =
        options_.spec.bridge_stagger_us +
        static_cast<double>(member_index(options_.spec, station.id())) *
            kAnnounceSlotUs;
  }
}

void ClusterSstsp::start() {
  running_ = true;
  last_announce_j_ = INT64_MIN;
  if (home_tau_) home_tau_->reset();
  if (parent_tau_) parent_tau_->reset();
  member_->start();
  if (uplink_) uplink_->start();
  if (bridge_) schedule_announce();
}

void ClusterSstsp::stop() {
  running_ = false;
  if (announce_event_ != 0) {
    station_.sim().cancel(announce_event_);
    announce_event_ = 0;
  }
  member_->stop();
  if (uplink_) uplink_->stop();
}

void ClusterSstsp::schedule_announce() {
  if (announce_event_ != 0) station_.sim().cancel(announce_event_);
  const double c_now = member_->adjusted().read_us(station_.sim().now());
  std::int64_t next_j =
      std::max(last_announce_j_ + 1, home_schedule_.interval_of(c_now));
  while (home_schedule_.emission_time(next_j) + announce_offset_us_ <=
         c_now + 1.0) {
    ++next_j;
  }
  if (next_j > static_cast<std::int64_t>(home_schedule_.n)) return;
  const double tx_time =
      home_schedule_.emission_time(next_j) + announce_offset_us_;
  announce_event_ = station_.sim().at(
      member_->adjusted().real_at(tx_time),
      [this, next_j] { handle_announce(next_j); });
}

void ClusterSstsp::handle_announce(std::int64_t j) {
  announce_event_ = 0;
  if (!running_) return;
  last_announce_j_ = j;
  // Announce only from the uplink path: re-broadcasting a tau learned from
  // a co-gateway's announcement would feed translation error back into the
  // very plane it was learned from.
  if (j >= 1 && member_->is_synchronized()) {
    if (const auto global = uplink_global_us(station_.sim().now())) {
      bridge_->announce(j, *global);
    }
  }
  schedule_announce();
}

std::optional<double> ClusterSstsp::uplink_global_us(sim::SimTime real) const {
  if (!uplink_ || !uplink_->is_synchronized()) return std::nullopt;
  const double up = uplink_->adjusted().read_us(real);
  if (!parent_tau_) return up;  // parent IS the root: tau = 0
  if (!parent_tau_->fresh(up)) return std::nullopt;
  const auto tau = parent_tau_->tau_us(up);
  if (!tau) return std::nullopt;
  return up + *tau;
}

double ClusterSstsp::network_time_us(sim::SimTime real) const {
  const double local = member_->adjusted().read_us(real);
  if (options_.cluster == 0) return local;  // the root timescale itself
  if (const auto global = uplink_global_us(real)) return *global;
  if (home_tau_ && home_tau_->fresh(local)) {
    if (const auto tau = home_tau_->tau_us(local)) return local + *tau;
  }
  // Detached: the cluster-local reading (excluded from spread metrics via
  // is_synchronized(), but still a monotone clock for local consumers).
  return local;
}

bool ClusterSstsp::attached() const {
  if (options_.cluster == 0) return true;
  const sim::SimTime now = station_.sim().now();
  if (uplink_global_us(now)) return true;
  const double local = member_->adjusted().read_us(now);
  return home_tau_ && home_tau_->fresh(local);
}

bool ClusterSstsp::is_synchronized() const {
  return member_->is_synchronized() && attached();
}

void ClusterSstsp::on_receive(const mac::Frame& frame, const mac::RxInfo& rx) {
  if (!frame.is_sstsp()) return;
  const std::uint8_t d = frame.domain;
  if (d == member_domain(options_.cluster)) {
    member_->on_receive(frame, rx);
    return;
  }
  if (uplink_ &&
      d == member_domain(parent_of(options_.spec, options_.cluster))) {
    uplink_->on_receive(frame, rx);
    return;
  }
  if (home_tau_ && d == bridge_domain(options_.cluster)) {
    ingest_bridge(*home_tau_, member_->adjusted(), frame, rx);
    return;
  }
  if (parent_tau_ &&
      d == bridge_domain(parent_of(options_.spec, options_.cluster))) {
    ingest_bridge(*parent_tau_, uplink_->adjusted(), frame, rx);
  }
  // Any other domain: out-of-cluster traffic, filtered like a foreign BSSID.
}

void ClusterSstsp::ingest_bridge(TauTracker& tracker,
                                 const clk::AdjustedClock& ctx,
                                 const mac::Frame& frame,
                                 const mac::RxInfo& rx) {
  ++stats_.beacons_received;
  const auto& body = frame.sstsp();
  const double local = ctx.read_us(rx.delivered);
  const double arrival_hw = station_.hw().read_us(rx.delivered);
  const double ts_est =
      static_cast<double>(body.timestamp_us) + rx.nominal_delay_us;
  station_.trace_event(trace::EventKind::kBeaconRx, frame.sender,
                       ts_est - local, frame.trace_id);
  const TauIngest res = tracker.ingest(body, frame.sender, arrival_hw, ts_est,
                                       local, frame.trace_id);
  if (!res.interval_ok) {
    ++stats_.rejected_interval;
    station_.trace_event(trace::EventKind::kRejectInterval, frame.sender,
                         ts_est - local, frame.trace_id);
    return;
  }
  if (!res.key_valid) {
    ++stats_.rejected_key;
    station_.trace_event(trace::EventKind::kRejectKey, frame.sender, 0.0,
                         frame.trace_id);
    return;
  }
  if (res.disclosed_index >= 1) {
    if (auto* mon = station_.monitor()) {
      mon->on_key_accepted(station_.id(), frame.sender, res.disclosed_index,
                           local, station_.sim().now());
    }
  }
}

const proto::ProtocolStats& ClusterSstsp::stats() const {
  const auto add = [](proto::ProtocolStats& acc,
                      const proto::ProtocolStats& s) {
    acc.beacons_sent += s.beacons_sent;
    acc.beacons_received += s.beacons_received;
    acc.adoptions += s.adoptions;
    acc.adjustments += s.adjustments;
    acc.rejected_interval += s.rejected_interval;
    acc.rejected_key += s.rejected_key;
    acc.rejected_mac += s.rejected_mac;
    acc.rejected_guard += s.rejected_guard;
    acc.elections_won += s.elections_won;
    acc.demotions += s.demotions;
    acc.coarse_steps += s.coarse_steps;
    acc.solver_rejections += s.solver_rejections;
    for (std::size_t v = 0; v < acc.discipline_verdicts.size(); ++v) {
      acc.discipline_verdicts[v] += s.discipline_verdicts[v];
    }
  };
  merged_ = stats_;  // this wrapper's own bridge-plane receive counters
  add(merged_, member_->stats());
  if (uplink_) add(merged_, uplink_->stats());
  if (bridge_) merged_.beacons_sent += bridge_->announcements();
  return merged_;
}

}  // namespace sstsp::cluster
