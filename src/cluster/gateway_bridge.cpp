#include "cluster/gateway_bridge.h"

#include <algorithm>
#include <cmath>

namespace sstsp::cluster {

namespace {
/// Relative-rate clamp for the tau extrapolation: two ±100 ppm oscillators
/// plus the fit noise of a settled baseline stay far inside ±500 ppm;
/// anything beyond is a corrupted baseline (e.g. samples from different
/// clock epochs) and must not be extrapolated.
constexpr double kMaxTauRate = 5e-4;
/// Minimum baseline for a rate estimate: below this the quotient amplifies
/// sample noise instead of measuring drift, so the newer sample replaces
/// the old instead of pairing with it.
constexpr double kMinBaselineUs = 1000.0;
}  // namespace

TauTracker::TauTracker(core::KeyDirectory& directory,
                       crypto::MuTeslaSchedule schedule,
                       double interval_slack_us, double stale_us)
    : directory_(directory),
      schedule_(schedule),
      interval_slack_us_(interval_slack_us),
      stale_us_(stale_us) {}

void TauTracker::reset() {
  announcers_.clear();
  best_ = mac::kNoNode;
}

TauTracker::Announcer* TauTracker::announcer_for(mac::NodeId sender) {
  auto it = announcers_.find(sender);
  if (it != announcers_.end()) return &it->second;
  const auto anchor = directory_.anchor_of(sender);
  if (!anchor) return nullptr;  // unknown identity
  if (announcers_.size() >= 8) {
    for (auto evict = announcers_.begin(); evict != announcers_.end();
         ++evict) {
      if (evict->first != best_) {
        announcers_.erase(evict);
        break;
      }
    }
  }
  auto [ins, _] = announcers_.emplace(
      sender, Announcer(*anchor, schedule_, &directory_.verify_cache()));
  return &ins->second;
}

TauIngest TauTracker::ingest(const mac::SstspBeaconBody& body,
                             mac::NodeId sender, double arrival_hw_us,
                             double ts_est_us, double local_us,
                             std::uint64_t trace_id) {
  TauIngest out;
  const std::int64_t j = body.interval;
  // The µTESLA security condition against the *context* clock: it tracks
  // the announcer's cluster timeline, which is exactly the timeline the
  // announcer's schedule lives on.
  if (!schedule_.interval_check(j, local_us, interval_slack_us_)) return out;
  out.interval_ok = true;

  Announcer* a = announcer_for(sender);
  if (a == nullptr) return out;
  a->local_at[static_cast<std::size_t>(j) % a->local_at.size()] = {j,
                                                                   local_us};
  const core::PipelineResult res =
      a->pipeline.ingest(body, sender, arrival_hw_us, ts_est_us, trace_id);
  if (!res.key_valid) return out;
  out.key_valid = true;
  if (j > 1) out.disclosed_index = j - 1;
  if (!res.authenticated) return out;

  // The previous interval's announcement just authenticated: pair its
  // announced global estimate with the context-clock reading recorded at
  // its own arrival.
  const auto& slot =
      a->local_at[static_cast<std::size_t>(res.authenticated->interval) %
                  a->local_at.size()];
  if (slot.first != res.authenticated->interval) return out;
  Announcer::Sample sample{slot.second,
                           res.authenticated->ts_est_us - slot.second};
  // A gap beyond the staleness bound means a different clock epoch (the
  // announcer restarted, or we coasted detached): restart the baseline.
  if (a->count > 0 && sample.local_us - a->newest().local_us > stale_us_) {
    a->count = 0;
  }
  if (a->count > 0 &&
      sample.local_us - a->newest().local_us < kMinBaselineUs) {
    a->ring[static_cast<std::size_t>(a->head)] = sample;  // refresh in place
  } else {
    a->push(sample);
  }
  ++samples_accepted_;
  out.sample_accepted = true;

  // Freshest announcer serves the estimate; ties break toward the lower id
  // so the choice is deterministic.
  if (best_ == mac::kNoNode) {
    best_ = sender;
  } else if (sender != best_) {
    const auto bit = announcers_.find(best_);
    if (bit == announcers_.end() || bit->second.count == 0 ||
        sample.local_us > bit->second.newest().local_us ||
        (sample.local_us == bit->second.newest().local_us &&
         sender < best_)) {
      best_ = sender;
    }
  }
  return out;
}

TauTracker::TauFit TauTracker::fit_of(const Announcer& a) {
  TauFit fit;
  if (a.count == 0) return fit;
  double sum_l = 0.0;
  double sum_t = 0.0;
  for (int i = 0; i < a.count; ++i) {
    sum_l += a.ring[static_cast<std::size_t>(i)].local_us;
    sum_t += a.ring[static_cast<std::size_t>(i)].tau_us;
  }
  fit.local_us = sum_l / a.count;
  fit.tau_us = sum_t / a.count;
  if (a.count < 2) return fit;
  double sxx = 0.0;
  double sxy = 0.0;
  for (int i = 0; i < a.count; ++i) {
    const auto& s = a.ring[static_cast<std::size_t>(i)];
    const double dl = s.local_us - fit.local_us;
    sxx += dl * dl;
    sxy += dl * (s.tau_us - fit.tau_us);
  }
  if (sxx > 0.0) {
    fit.rate = std::clamp(sxy / sxx, -kMaxTauRate, kMaxTauRate);
  }
  return fit;
}

bool TauTracker::fresh(double local_now_us) const {
  const auto it = announcers_.find(best_);
  if (it == announcers_.end() || it->second.count == 0) return false;
  const Announcer& a = it->second;
  // Extrapolation hygiene: never coast further past the newest sample than
  // the span the rate was actually fit on (plus one announcement interval,
  // so a young fit can still bridge to its next sample).  A two-sample
  // rate carries O(100 ppm) of noise — harmless over one interval, tens of
  // microseconds over the full staleness window.
  double oldest = a.newest().local_us;
  for (int i = 0; i < a.count; ++i) {
    oldest = std::min(oldest, a.ring[static_cast<std::size_t>(i)].local_us);
  }
  const double span = a.newest().local_us - oldest;
  const double horizon = std::min(stale_us_, span + schedule_.interval_us);
  return local_now_us - a.newest().local_us <= horizon;
}

std::optional<double> TauTracker::tau_us(double local_now_us) const {
  const auto it = announcers_.find(best_);
  if (it == announcers_.end() || it->second.count == 0) return std::nullopt;
  const TauFit fit = fit_of(it->second);
  return fit.tau_us + fit.rate * (local_now_us - fit.local_us);
}

GatewayBridge::GatewayBridge(proto::Station& station,
                             core::KeyDirectory& directory,
                             const crypto::MuTeslaSchedule& home_schedule,
                             Config cfg)
    : station_(station),
      signer_(directory.chain_of(station.id()).value(), home_schedule),
      cfg_(cfg) {}

bool GatewayBridge::announce(std::int64_t j, double global_est_us) {
  const sim::SimTime now = station_.sim().now();
  if (station_.medium_busy(now)) return false;  // CSMA: skip this BP
  const auto& phy = station_.channel().phy();
  const auto ts = static_cast<std::int64_t>(std::floor(global_est_us));
  mac::Frame frame;
  frame.sender = station_.id();
  frame.air_bytes = phy.sstsp_beacon_bytes + 1;  // + level (= depth) byte
  frame.domain = cfg_.domain;
  frame.body = signer_.sign(j, ts, station_.id(), cfg_.depth);
  const std::uint64_t tid =
      station_.transmit(std::move(frame), phy.sstsp_beacon_duration);
  ++announcements_;
  station_.trace_event(trace::EventKind::kBeaconTx, mac::kNoNode,
                       static_cast<double>(j), tid);
  if (auto* mon = station_.monitor()) {
    // Announcements are schedule-staggered, not reference emissions: the
    // timestamp-integrity check applies (ts is the clock it was read from),
    // the reference-schedule/uniqueness checks do not.
    mon->on_beacon_tx(station_.id(), j, static_cast<double>(ts),
                      global_est_us, /*as_reference=*/false, now);
  }
  return true;
}

}  // namespace sstsp::cluster
