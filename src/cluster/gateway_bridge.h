// Gateway bridging: the offset-translation step of the hierarchical cluster
// layer (DESIGN.md §13).
//
// A gateway node is a member of two clusters.  Its *member* half runs the
// unmodified per-cluster SSTSP (election, guard, (k, b) solve) in its home
// cluster; its *uplink* half is a passive SSTSP follower of the parent
// cluster.  Once per BP the gateway broadcasts a µTESLA-signed announcement
// on its home cluster's bridge plane (domain 0x80 | c) whose timestamp is
// the gateway's current estimate of the ROOT cluster's timescale:
//
//   global = uplink_adjusted + tau(parent)        (tau(root) = 0)
//
// Home-cluster members receive these announcements, authenticate them with
// the announcer's ordinary hash chain over the home schedule, and maintain
//
//   tau(home) = global - member_adjusted
//
// as a two-sample linear extrapolation (offset + relative rate).  No
// per-cluster clock is ever steered across the boundary: translation rides
// entirely on top of the unmodified intra-cluster solve, so each hop adds
// its own bounded estimation error and the network-wide inter-cluster
// offset is bounded by per-hop error x gateway depth (the cross-cluster
// Lemma-1 analogue checked by obs/invariants).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/beacon_security.h"
#include "core/key_directory.h"
#include "mac/frame.h"
#include "protocols/station.h"

namespace sstsp::cluster {

/// Outcome of feeding one bridge-plane frame to a TauTracker, surfaced so
/// the owning protocol can report trace/monitor events (the tracker itself
/// is station-agnostic and unit-testable in isolation).
struct TauIngest {
  bool interval_ok{false};     ///< passed the µTESLA interval check
  bool key_valid{false};       ///< disclosed key verified against the chain
  std::int64_t disclosed_index{-1};  ///< accepted chain element, -1 if none
  bool sample_accepted{false};  ///< a (local, tau) sample was recorded
};

/// Receiver side of the bridge: authenticates tau announcements from the
/// gateways of one cluster and serves the extrapolated translation offset.
///
/// `local` everywhere below is the *context clock* the tau is relative to:
/// the member adjusted clock for a node learning its home cluster's tau, or
/// the uplink adjusted clock for a gateway learning its parent's.
class TauTracker {
 public:
  TauTracker(core::KeyDirectory& directory, crypto::MuTeslaSchedule schedule,
             double interval_slack_us, double stale_us);

  /// Feeds one bridge-plane beacon body.  `ts_est_us` is the announced
  /// global estimate compensated for propagation; `local_us` is the context
  /// clock at delivery (recorded per interval so the deferred-auth tau
  /// sample pairs the announcement with the exact clock reading at its own
  /// arrival, not at the disclosing frame's).
  TauIngest ingest(const mac::SstspBeaconBody& body, mac::NodeId sender,
                   double arrival_hw_us, double ts_est_us, double local_us,
                   std::uint64_t trace_id);

  /// Drops all announcer state (protocol restart).
  void reset();

  /// A usable, non-stale tau estimate exists at context-clock `local_now`.
  [[nodiscard]] bool fresh(double local_now_us) const;

  /// Extrapolated translation offset at context-clock `local_now`; nullopt
  /// until the first authenticated sample.  Not freshness-gated — callers
  /// decide staleness policy via fresh().
  [[nodiscard]] std::optional<double> tau_us(double local_now_us) const;

  /// Announcer currently serving the estimate (freshest sample wins).
  [[nodiscard]] mac::NodeId announcer() const { return best_; }

  [[nodiscard]] std::uint64_t samples_accepted() const {
    return samples_accepted_;
  }

 private:
  struct Announcer {
    Announcer(const crypto::Digest& anchor,
              const crypto::MuTeslaSchedule& schedule,
              crypto::VerifyCache* cache)
        : pipeline(anchor, schedule, cache) {}

    core::SenderPipeline pipeline;
    /// Context-clock reading at ingest, keyed by claimed interval: µTESLA
    /// defers authentication by one interval, and evaluating an old hw
    /// instant against the *current* (k, b) would smear the sample by the
    /// parameter change since.
    std::array<std::pair<std::int64_t, double>, 4> local_at{};
    struct Sample {
      double local_us{0.0};
      double tau_us{0.0};
    };
    /// Ring of recent samples spanning (up to) the staleness window.  The
    /// tau line is a least-squares fit over the whole ring: a one-BP
    /// two-point quotient would turn ±10 us of per-sample solve noise into
    /// hundreds of ppm of rate error, and every extrapolated microsecond of
    /// that is re-announced downstream — the depth-2 spread blows through
    /// the hop bound.  An 8-BP baseline divides the same noise to O(10 ppm).
    std::array<Sample, 9> ring{};
    int count{0};
    int head{0};  ///< index of the most recent sample while count > 0

    [[nodiscard]] const Sample& newest() const { return ring[head]; }
    /// Maintains the invariant that ring[0 .. count-1] are exactly the live
    /// samples (head rewinds to 0 on an epoch restart, so a stale pre-gap
    /// slot can never leak into the fit).
    void push(const Sample& s) {
      head = count == 0 ? 0 : (head + 1) % static_cast<int>(ring.size());
      ring[head] = s;
      count = std::min(count + 1, static_cast<int>(ring.size()));
    }
  };

  Announcer* announcer_for(mac::NodeId sender);
  /// Least-squares (offset, rate) of tau vs context clock over the ring.
  struct TauFit {
    double local_us{0.0};  ///< fit pivot (mean context clock)
    double tau_us{0.0};    ///< fitted tau at the pivot
    double rate{0.0};      ///< clamped relative rate
  };
  [[nodiscard]] static TauFit fit_of(const Announcer& a);

  core::KeyDirectory& directory_;
  crypto::MuTeslaSchedule schedule_;
  double interval_slack_us_;
  double stale_us_;
  std::unordered_map<mac::NodeId, Announcer> announcers_;
  mac::NodeId best_{mac::kNoNode};
  std::uint64_t samples_accepted_{0};
};

/// Announcer side: signs and transmits one bridge-plane announcement per BP
/// on the home cluster's schedule, spending the gateway's ordinary hash
/// chain (same key K_j covers the member beacon and the announcement of
/// interval j — both disclose on the same schedule, so neither weakens the
/// other's µTESLA security condition).
class GatewayBridge {
 public:
  struct Config {
    std::uint8_t domain{0};  ///< bridge plane to announce on (0x80 | home)
    std::uint8_t depth{0};   ///< gateway hops from the root (level byte)
  };

  GatewayBridge(proto::Station& station, core::KeyDirectory& directory,
                const crypto::MuTeslaSchedule& home_schedule, Config cfg);

  /// Signs + transmits the announcement for home interval `j` carrying the
  /// gateway's current root-timescale estimate.  Returns false when the
  /// medium is busy (skipped; extrapolation covers the gap).
  bool announce(std::int64_t j, double global_est_us);

  [[nodiscard]] std::uint64_t announcements() const { return announcements_; }

 private:
  proto::Station& station_;
  core::BeaconSigner signer_;
  Config cfg_;
  std::uint64_t announcements_{0};
};

}  // namespace sstsp::cluster
