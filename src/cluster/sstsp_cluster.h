// Hierarchical cluster synchronization: the multi-domain SSTSP protocol.
//
// One ClusterSstsp per node.  It composes:
//
//   member_   an unmodified core::Sstsp in the node's home-cluster domain —
//             the per-cluster election, guard checks and (k, b) solve run
//             exactly as in single-domain SSTSP (one reference per cluster);
//   uplink_   (gateways only) a *passive* core::Sstsp following the parent
//             cluster's reference — same checks, never transmits, so the
//             gateway's single hash chain is only ever spent on its home
//             schedule;
//   bridge_   (gateways only) the per-BP tau announcer (gateway_bridge.h);
//   tau trackers
//             home_tau_   — every non-root node learns tau(home) from its
//                           cluster's bridge plane;
//             parent_tau_ — gateways at depth >= 2 learn tau(parent) from
//                           the parent cluster's bridge plane (in range by
//                           the spacing <= radio-range geometry contract).
//
// The node's network time is its member clock plus the extrapolated home
// tau (root members: member clock alone; gateways prefer the uplink path —
// one hop fresher).  A node whose tau source has gone stale (gateway crash,
// partition) reports is_synchronized() == false: it is *detached*, drops
// out of the spread metrics, and re-attaches automatically once
// announcements resume — the latency the RecoveryTracker measures.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "cluster/cluster_config.h"
#include "cluster/gateway_bridge.h"
#include "core/sstsp.h"

namespace sstsp::cluster {

class ClusterSstsp : public proto::SyncProtocol {
 public:
  struct Options {
    ClusterSpec spec{};
    int cluster{0};
    bool gateway{false};
    /// Per-cluster preestablished reference (experiment convenience): the
    /// member half boots holding the home cluster's reference role.
    bool start_as_reference{false};
    bool calibrated_boot{true};
  };

  ClusterSstsp(proto::Station& station, const core::SstspConfig& base_cfg,
               core::KeyDirectory& directory, Options options);

  void start() override;
  void stop() override;
  void on_receive(const mac::Frame& frame, const mac::RxInfo& rx) override;

  [[nodiscard]] double network_time_us(sim::SimTime real) const override;
  [[nodiscard]] bool is_synchronized() const override;
  [[nodiscard]] bool is_reference() const override {
    return member_->is_reference();
  }
  [[nodiscard]] const proto::ProtocolStats& stats() const override;

  /// Attached: this node currently has a live translation path to the root
  /// timescale (trivially true for root-cluster members).
  [[nodiscard]] bool attached() const;

  [[nodiscard]] int cluster() const { return options_.cluster; }
  [[nodiscard]] int depth() const {
    return depth_of(options_.spec, options_.cluster);
  }
  [[nodiscard]] bool gateway() const { return options_.gateway; }
  [[nodiscard]] const core::Sstsp& member() const { return *member_; }
  [[nodiscard]] const core::Sstsp* uplink() const { return uplink_.get(); }
  [[nodiscard]] const GatewayBridge* bridge() const { return bridge_.get(); }
  [[nodiscard]] const TauTracker* home_tau() const {
    return home_tau_ ? &*home_tau_ : nullptr;
  }

 private:
  void schedule_announce();
  void handle_announce(std::int64_t j);
  /// Root-timescale estimate via the gateway's uplink path, if live.
  [[nodiscard]] std::optional<double> uplink_global_us(sim::SimTime real) const;
  void ingest_bridge(TauTracker& tracker, const clk::AdjustedClock& ctx,
                     const mac::Frame& frame, const mac::RxInfo& rx);

  Options options_;
  crypto::MuTeslaSchedule home_schedule_;
  core::KeyDirectory& directory_;
  std::unique_ptr<core::Sstsp> member_;
  std::unique_ptr<core::Sstsp> uplink_;      // gateways only
  std::unique_ptr<GatewayBridge> bridge_;    // gateways only
  std::optional<TauTracker> home_tau_;       // non-root clusters
  std::optional<TauTracker> parent_tau_;     // gateways at depth >= 2
  double tau_stale_us_{0.0};
  double announce_offset_us_{0.0};
  bool running_{false};
  std::int64_t last_announce_j_{INT64_MIN};
  sim::EventId announce_event_{0};
  mutable proto::ProtocolStats merged_;
};

}  // namespace sstsp::cluster
