#include "net/swarm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>

#include "core/discipline.h"

namespace sstsp::net {

const char* transport_kind_name(TransportKind kind) {
  switch (kind) {
    case TransportKind::kLoopback:
      return "loopback";
    case TransportKind::kUdp:
      return "udp";
  }
  return "?";
}

Swarm::Swarm(const SwarmConfig& config)
    : config_(config), sim_(config.seed) {
  if (config_.collect_metrics) {
    instruments_ = std::make_unique<obs::Instruments>(registry_);
    sim_.set_instruments(instruments_.get());
    if (config_.sstsp.discipline.effective_name() != "paper") {
      instruments_->enable_discipline(
          config_.sstsp.discipline.effective_name(),
          core::discipline_verdict_names());
    }
  }
  if (config_.profile) {
    profiler_ = std::make_unique<obs::Profiler>();
    sim_.set_profiler(profiler_.get());
  }
  if (config_.phase_sampler) {
    obs::PhaseSampler::Options opt;
    if (config_.phase_sampler_interval_s > 0.0) {
      opt.interval_s = config_.phase_sampler_interval_s;
    }
    phase_sampler_ = std::make_unique<obs::PhaseSampler>(opt, registry_);
    phase_sampler_->attach_profiler(profiler_.get());
    sim_.set_phase_sampler(phase_sampler_.get());
  }
  if (config_.monitor) {
    obs::InvariantConfig cfg;
    cfg.sstsp_checks = true;
    cfg.bp_us = config_.phy.beacon_period.to_us();
    cfg.m = config_.sstsp.m;
    cfg.l = config_.sstsp.l;
    cfg.t0_us = config_.sstsp.t0_us;
    cfg.interval_slack_us = config_.sstsp.interval_slack_us;
    cfg.k_min = config_.sstsp.k_min;
    cfg.k_max = config_.sstsp.k_max;
    double diverge_us = config_.monitor_diverge_us;
    if (diverge_us < 0.0 && config_.transport == TransportKind::kUdp) {
      diverge_us = kUdpDivergeThresholdUs;
    }
    if (diverge_us >= 0.0) cfg.diverge_threshold_us = diverge_us;
    monitor_ = std::make_unique<obs::InvariantMonitor>(cfg);
    lifecycle_ = std::make_unique<trace::BeaconLifecycle>(registry_);
  }
  if (!config_.faults.empty()) {
    // Same substream discipline as run::Network: the injector draws only
    // from its own stream, so attaching a plan never perturbs the nodes'
    // seeded clock/latency draws.
    injector_ = std::make_unique<fault::FaultInjector>(
        config_.faults, sim_.substream("faults", config_.faults.seed));
    recovery_ = std::make_unique<fault::RecoveryTracker>(
        config_.phy.beacon_period.to_us() * 1e-6,
        /*sync_threshold_us=*/25.0);
    if (monitor_ != nullptr) {
      for (const auto& p : config_.faults.partitions) {
        monitor_->add_disturbance(
            sim::SimTime::from_sec_double(p.start_s),
            p.end_s < 0.0 ? sim::SimTime::never()
                          : sim::SimTime::from_sec_double(p.end_s));
      }
      for (const auto& f : config_.faults.node_faults) {
        monitor_->add_disturbance(
            sim::SimTime::from_sec_double(f.at_s),
            f.restart_s < 0.0 ? sim::SimTime::from_sec_double(f.at_s)
                              : sim::SimTime::from_sec_double(f.restart_s));
      }
      for (const auto& c : config_.faults.clock_faults) {
        monitor_->add_disturbance(sim::SimTime::from_sec_double(c.at_s),
                                  sim::SimTime::from_sec_double(c.at_s));
      }
    }
  }
}

std::unique_ptr<Swarm> Swarm::create(const SwarmConfig& config,
                                     std::string* error) {
  auto fail = [error](std::string message) -> std::unique_ptr<Swarm> {
    if (error != nullptr) *error = std::move(message);
    return nullptr;
  };
  if (config.nodes < 1) return fail("swarm needs at least one node");
  if (config.nodes > 250) {
    // One UDP socket and one private channel per node; the cap is a sanity
    // bound well past the paper's 100-node deployments.
    return fail("swarm is capped at 250 nodes");
  }
  if (config.duration_s <= 0.0) return fail("duration must be positive");

  auto swarm = std::unique_ptr<Swarm>(new Swarm(config));
  if (!swarm->init(error)) return nullptr;
  return swarm;
}

bool Swarm::init(std::string* error) {
  std::vector<Transport*> endpoints;
  endpoints.reserve(static_cast<std::size_t>(config_.nodes));

  if (config_.transport == TransportKind::kUdp) {
    reactor_ = std::make_unique<Reactor>(sim_);
    for (int i = 0; i < config_.nodes; ++i) {
      UdpConfig uc;
      uc.bind_address = config_.bind_address;
      uc.bind_port =
          config_.base_port == 0
              ? std::uint16_t{0}
              : static_cast<std::uint16_t>(config_.base_port + i);
      std::string udp_error;
      auto transport = UdpTransport::open(*reactor_, uc, &udp_error);
      if (!transport) {
        if (error != nullptr) {
          *error = "node " + std::to_string(i) + ": " + udp_error;
        }
        return false;
      }
      udp_.push_back(std::move(transport));
    }
    // Every socket is bound (ephemeral ports resolved) — wire the full
    // unicast mesh.
    for (int i = 0; i < config_.nodes; ++i) {
      std::vector<UdpEndpoint> peers;
      peers.reserve(static_cast<std::size_t>(config_.nodes - 1));
      for (int j = 0; j < config_.nodes; ++j) {
        if (j == i) continue;
        peers.push_back(UdpEndpoint{
            config_.bind_address,
            udp_[static_cast<std::size_t>(j)]->local_port()});
      }
      std::string peer_error;
      if (!udp_[static_cast<std::size_t>(i)]->set_peers(peers,
                                                        &peer_error)) {
        if (error != nullptr) *error = std::move(peer_error);
        return false;
      }
      endpoints.push_back(udp_[static_cast<std::size_t>(i)].get());
    }
  } else {
    hub_ = std::make_unique<LoopbackHub>(sim_, config_.loopback);
    for (int i = 0; i < config_.nodes; ++i) {
      endpoints.push_back(&hub_->create_endpoint());
    }
  }

  if (injector_ != nullptr) {
    // Decorate every endpoint: the node installs its rx handler on the
    // decorator, which consults the injector per arriving datagram —
    // identical verdict semantics to the simulated channel's hook.
    for (int i = 0; i < config_.nodes; ++i) {
      faulty_.push_back(std::make_unique<fault::FaultyTransport>(
          *endpoints[static_cast<std::size_t>(i)], sim_, *injector_,
          static_cast<mac::NodeId>(i)));
      endpoints[static_cast<std::size_t>(i)] =
          faulty_.back().get();
    }
  }

  double wire_latency_us = config_.wire_latency_us;
  if (wire_latency_us < 0.0) {
    wire_latency_us =
        config_.transport == TransportKind::kLoopback
            ? 0.5 * (config_.loopback.latency_min.to_us() +
                     config_.loopback.latency_max.to_us())
            : kUdpWireLatencyUs;
  }

  for (int i = 0; i < config_.nodes; ++i) {
    NodeConfig nc;
    nc.id = static_cast<mac::NodeId>(i);
    nc.total_nodes = config_.nodes;
    nc.seed = config_.seed;
    nc.sstsp = config_.sstsp;
    nc.phy = config_.phy;
    nc.max_drift_ppm = config_.max_drift_ppm;
    nc.initial_offset_us = config_.initial_offset_us;
    nc.wire_latency_us = wire_latency_us;
    nc.start_as_reference = config_.preestablished_reference && i == 0;
    nodes_.push_back(std::make_unique<NodeRuntime>(
        sim_, *endpoints[static_cast<std::size_t>(i)], nc));
  }

  if (config_.trace_capacity > 0) {
    trace_ = std::make_unique<trace::EventTrace>(config_.trace_capacity);
  }
  for (auto& node : nodes_) {
    if (reactor_ != nullptr) {
      // Wall-paced mode: let every node measure its own tx dispatch
      // lateness and reconstruct datagram arrivals (see
      // NodeRuntime::set_wall_clock).
      node->set_wall_clock(
          [reactor = reactor_.get()] { return reactor->wall_sim_now(); });
    }
    node->set_trace(trace_.get());
    node->set_instruments(instruments_.get());
    node->set_profiler(profiler_.get());
    node->set_monitor(monitor_.get());
    node->set_lifecycle(lifecycle_.get());
    node->set_recovery(recovery_.get());
  }
  expected_down_.assign(nodes_.size(), false);

  if (config_.prom_port >= 0) {
    if (reactor_ == nullptr) {
      if (error != nullptr) {
        *error = "--prom-port needs the udp transport (a loopback run has "
                 "no live reactor to serve scrapes)";
      }
      return false;
    }
    prom_ = std::make_unique<PromExporter>();
    if (!prom_->open(
            *reactor_, static_cast<std::uint16_t>(config_.prom_port),
            [this] { return prometheus_scrape_body(); }, error)) {
      return false;
    }
  }
  return init_telemetry(error);
}

std::string Swarm::prometheus_scrape_body() {
  // Fold the SIGPROF hit counters in first so a scrape always sees current
  // totals, then attach the cluster-state gauges the registry does not
  // carry (they are instantaneous derivations, not recorded metrics).
  if (phase_sampler_ != nullptr) phase_sampler_->publish_live();
  std::vector<std::pair<std::string, double>> extra;
  int awake = 0;
  int synced = 0;
  for (const auto& node : nodes_) {
    const proto::Station& st = node->station();
    if (!st.awake()) continue;
    ++awake;
    if (st.protocol().is_synchronized()) ++synced;
  }
  extra.emplace_back("swarm_nodes_total", static_cast<double>(config_.nodes));
  extra.emplace_back("swarm_nodes_awake", static_cast<double>(awake));
  extra.emplace_back("swarm_nodes_synced", static_cast<double>(synced));
  if (const auto diff = instant_max_diff_us()) {
    extra.emplace_back("swarm_max_offset_us", *diff);
  }
  extra.emplace_back("swarm_sim_time_seconds", sim_.now().to_sec());
  if (reactor_ != nullptr) {
    extra.emplace_back("reactor_wait_seconds",
                       static_cast<double>(reactor_->wait_ns()) * 1e-9);
    extra.emplace_back("reactor_work_seconds",
                       static_cast<double>(reactor_->work_ns()) * 1e-9);
  }
  return prometheus_body(registry_.snapshot(), extra);
}

bool Swarm::init_telemetry(std::string* error) {
  if (!config_.flight_recorder_out.empty()) {
    flight_sink_ = std::make_unique<obs::JsonlSink>();
    std::string sink_error;
    if (!flight_sink_->open(config_.flight_recorder_out, &sink_error)) {
      if (error != nullptr) *error = std::move(sink_error);
      return false;
    }
    obs::FlightRecorder::Config fc;
    fc.event_capacity = config_.flight_capacity;
    flight_ =
        std::make_unique<obs::FlightRecorder>(fc, flight_sink_.get());
    for (auto& node : nodes_) node->set_flight(flight_.get());
    if (monitor_ != nullptr) {
      monitor_->set_on_new_record(
          [this](sim::SimTime now, const obs::AuditRecord& rec) {
            flight_->on_audit_record(now.to_sec(), rec);
          });
    }
  }

  const bool want_telemetry = !config_.telemetry_out.empty() || config_.watch;
  if (!want_telemetry) return true;
  if (!config_.telemetry_out.empty()) {
    telemetry_sink_ = std::make_unique<obs::JsonlSink>();
    std::string sink_error;
    if (!telemetry_sink_->open(config_.telemetry_out, &sink_error)) {
      if (error != nullptr) *error = std::move(sink_error);
      return false;
    }
  }

  // Process stats (RSS, wall clock) only on the wall-paced transport; a
  // virtual-time loopback run stays bit-reproducible.
  const bool wall_paced = config_.transport == TransportKind::kUdp;
  obs::TelemetrySampler::Options opts;
  opts.interval_s =
      config_.telemetry_interval_s > 0.0 ? config_.telemetry_interval_s : 1.0;
  opts.source = "swarm";
  opts.process_stats = wall_paced;
  sampler_ = std::make_unique<obs::TelemetrySampler>(
      opts, [this](const obs::TelemetrySample& sample) {
        write_sample(sample);
        if (flight_ != nullptr) flight_->on_sample(sample);
        if (config_.watch) print_watch_line(sample);
      });

  if (wall_paced) {
    // Live export path: each node publishes its sample as one datagram to
    // the swarm's collector socket on the reactor — the same path an
    // external collector would use — and the collector folds whatever
    // arrives into the aggregate JSONL stream.
    std::string link_error;
    collector_ = TelemetryCollector::open(
        *reactor_, "127.0.0.1", 0,
        [this](const obs::TelemetrySample& sample) { write_sample(sample); },
        &link_error);
    if (collector_ == nullptr) {
      if (error != nullptr) *error = "telemetry collector: " + link_error;
      return false;
    }
    for (int i = 0; i < config_.nodes; ++i) {
      auto exporter = TelemetryExporter::open(
          "127.0.0.1", collector_->local_port(), &link_error);
      if (exporter == nullptr) {
        if (error != nullptr) {
          *error = "telemetry exporter " + std::to_string(i) + ": " +
                   link_error;
        }
        return false;
      }
      exporters_.push_back(std::move(exporter));
    }
  }
  return true;
}

void Swarm::arm() {
  if (armed_) return;
  armed_ = true;
  for (auto& node : nodes_) node->start();
  if (sampler_ != nullptr) {
    // Per-node samplers ride the hosting timeline: wall-paced through the
    // reactor in UDP mode (published as datagrams), virtual-time in
    // loopback mode (folded straight into the aggregate stream).
    const auto until = sim::SimTime::from_sec_double(config_.duration_s);
    const bool wall_paced = config_.transport == TransportKind::kUdp;
    obs::TelemetrySampler::Options node_opts = sampler_->options();
    node_opts.source = "node";
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      obs::TelemetrySampler::EmitFn emit;
      if (wall_paced) {
        emit = [exporter = exporters_[i].get()](
                   const obs::TelemetrySample& sample) {
          exporter->publish(sample);
        };
      } else {
        emit = [this](const obs::TelemetrySample& sample) {
          write_sample(sample);
        };
      }
      nodes_[i]->start_telemetry(node_opts, until, std::move(emit));
    }
  }
  schedule_faults();
  schedule_sampling();
}

void Swarm::schedule_faults() {
  if (injector_ == nullptr) return;
  fault::FaultHooks hooks;
  hooks.current_reference = [this] { return current_reference(); };
  hooks.set_power = [this](mac::NodeId id, bool powered) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= nodes_.size()) return;
    expected_down_[idx] = !powered;
    if (powered) {
      nodes_[idx]->start();
    } else {
      nodes_[idx]->stop();
    }
  };
  hooks.clock_fault = [this](mac::NodeId id, double step_us,
                             double drift_delta_ppm) {
    const auto idx = static_cast<std::size_t>(id);
    if (idx >= nodes_.size()) return;
    nodes_[idx]->station().inject_clock_fault(step_us, drift_delta_ppm);
  };
  if (recovery_ != nullptr) {
    hooks.on_node_fault = [this](const fault::NodeFault& f, mac::NodeId id) {
      if (f.reference) {
        recovery_->expect_reelection(f.kind == fault::NodeFaultKind::kCrash
                                         ? "reference-crash"
                                         : "reference-pause",
                                     id, sim_.now().to_sec());
      }
    };
    hooks.on_clock_fault = [this](const fault::ClockFault&, mac::NodeId id) {
      recovery_->expect_resync("clock-fault", id, sim_.now().to_sec());
    };
    for (const auto& p : config_.faults.partitions) {
      if (p.end_s >= 0.0 && p.end_s < config_.duration_s) {
        const double heal_s = p.end_s;
        sim_.at(sim::SimTime::from_sec_double(heal_s), [this, heal_s] {
          recovery_->expect_resync("partition-heal", mac::kNoNode, heal_s);
        });
      }
    }
  }
  fault::schedule_fault_events(sim_, config_.faults, injector_.get(),
                               std::move(hooks));
}

void Swarm::schedule_sampling() {
  const auto period = sim::SimTime::from_sec_double(config_.sample_period_s);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, tick] {
    sample_clock_spread();
    if (sim_.now() + period <=
        sim::SimTime::from_sec_double(config_.duration_s)) {
      sim_.after(period, *tick);
    }
  };
  sim_.at(period, *tick);
}

void Swarm::sample_clock_spread() {
  sample_values_.clear();
  const sim::SimTime now = sim_.now();
  for (const auto& node : nodes_) {
    const proto::Station& st = node->station();
    if (!st.awake() || !st.protocol().is_synchronized()) continue;
    sample_values_.push_back(st.protocol().network_time_us(now));
  }
  const bool have = !sample_values_.empty();
  double lo = 0.0;
  double hi = 0.0;
  double sum = 0.0;
  if (have) {
    lo = hi = sample_values_.front();
    for (const double v : sample_values_) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    const double diff = hi - lo;
    max_diff_.push(now.to_sec(), diff);
    if (monitor_ != nullptr) monitor_->on_max_diff_sample(now, diff);
    if (recovery_ != nullptr) {
      recovery_->on_max_diff_sample(now.to_sec(), diff);
    }
    if (instruments_ != nullptr) {
      instruments_->on_max_diff_sample(diff);
      const double mean = sum / static_cast<double>(sample_values_.size());
      for (const double v : sample_values_) {
        instruments_->on_node_error_sample(std::fabs(v - mean));
      }
    }
  }
  if (sampler_ != nullptr && sampler_->due(now.to_sec())) {
    emit_telemetry(now, have, lo, hi, sum);
  }
  if (dump_flag_ != nullptr && *dump_flag_ != 0 && flight_ != nullptr) {
    *dump_flag_ = 0;
    flight_->dump(now.to_sec(), "dump-request", nullptr);
  }
}

void Swarm::emit_telemetry(sim::SimTime now, bool have, double lo, double hi,
                           double sum) {
  obs::TelemetrySample s;
  s.nodes_total = config_.nodes;
  for (const auto& node : nodes_) {
    if (node->station().awake()) ++s.nodes_awake;
  }
  s.nodes_synced = static_cast<int>(sample_values_.size());
  if (const auto ref = current_reference()) {
    s.reference = static_cast<std::int64_t>(*ref);
  }
  const double mean =
      have ? sum / static_cast<double>(sample_values_.size()) : 0.0;
  if (sample_values_.size() >= 2) {
    s.max_offset_us = hi - lo;
    double dev = 0.0;
    for (const double v : sample_values_) dev += std::fabs(v - mean);
    s.mean_offset_us = dev / static_cast<double>(sample_values_.size());
  }
  s.queue_depth = sim_.events_pending();
  if (monitor_ != nullptr) s.audit_records = monitor_->total_violations();
  s.recovery_pending = recovery_ != nullptr && recovery_->pending();

  const bool per_node =
      config_.telemetry_per_node > 0 ||
      (config_.telemetry_per_node < 0 && config_.nodes <= 64);
  obs::TelemetryCumulative cum;
  for (const auto& node : nodes_) {
    const proto::Station& st = node->station();
    const proto::ProtocolStats& ps = st.protocol().stats();
    cum.beacons_tx += ps.beacons_sent;
    cum.beacons_rx += ps.beacons_received;
    cum.adjustments += ps.adjustments + ps.adoptions;
    cum.coarse_steps += ps.coarse_steps;
    cum.rejects += ps.rejected_interval + ps.rejected_key + ps.rejected_mac +
                   ps.rejected_guard;
    cum.elections += ps.elections_won;
    if (per_node && have && st.awake() && st.protocol().is_synchronized()) {
      obs::TelemetrySample::NodeError ne;
      ne.node = static_cast<std::int64_t>(node->config().id);
      ne.err_us = st.protocol().network_time_us(now) - mean;
      ne.synced = true;
      s.node_errors.push_back(ne);
    }
  }
  cum.events = sim_.events_processed();
  sampler_->emit(now.to_sec(), std::move(s), cum);
}

void Swarm::write_sample(const obs::TelemetrySample& sample) {
  if (telemetry_sink_ != nullptr) {
    telemetry_sink_->write_line(obs::telemetry_to_jsonl(sample));
  }
}

void Swarm::print_watch_line(const obs::TelemetrySample& sample) {
  std::string ref = sample.reference >= 0
                        ? std::to_string(sample.reference)
                        : std::string("-");
  std::string err = "-";
  if (std::isfinite(sample.max_offset_us)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", sample.max_offset_us);
    err = buf;
  }
  std::fprintf(stderr,
               "\r[swarm %7.1fs] synced %d/%d ref %s max %s us rx %llu "
               "audit %llu   ",
               sample.t_s, sample.nodes_synced, sample.nodes_total,
               ref.c_str(), err.c_str(),
               static_cast<unsigned long long>(sample.beacons_rx),
               static_cast<unsigned long long>(sample.audit_records));
  std::fflush(stderr);
}

void Swarm::run() {
  // Anchor before arming so any frame transmitted during power-on already
  // measures its dispatch lateness against a live wall mapping.
  if (config_.transport == TransportKind::kUdp) reactor_->anchor(sim_.now());
  arm();
  const auto wall_start = std::chrono::steady_clock::now();
  const auto horizon = sim::SimTime::from_sec_double(config_.duration_s);
  if (config_.transport == TransportKind::kUdp) {
    // Wall-paced runs add the statistical SIGPROF sampler on top of the
    // dispatch-gated one: ITIMER_PROF fires on consumed CPU time, so
    // reactor sleeps are invisible to it (the wait/work gauges cover them).
    if (phase_sampler_ != nullptr) {
      std::string live_error;
      if (!phase_sampler_->start_live(&live_error)) {
        std::fprintf(stderr, "warning: live phase sampler: %s\n",
                     live_error.c_str());
      }
    }
    reactor_->run_until(horizon);
    if (phase_sampler_ != nullptr) phase_sampler_->stop_live();
  } else {
    sim_.run_until(horizon);
  }
  wall_seconds_ = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  if (config_.watch) std::fputc('\n', stderr);
}

run::RunResult Swarm::collect() {
  run::RunResult result;
  result.max_diff = max_diff_;
  for (const auto& node : nodes_) {
    const mac::ChannelStats& ch = node->channel().stats();
    // Per-node private channels: transmissions are the node's own beacons;
    // "deliveries" are wire-tap handoffs (1:1 with transmissions), not
    // over-the-air receptions — those live in RunResult::net.
    result.channel.transmissions += ch.transmissions;
    result.channel.collided_transmissions += ch.collided_transmissions;
    result.channel.deliveries += ch.deliveries;
    result.channel.per_drops += ch.per_drops;
    result.channel.half_duplex_suppressed += ch.half_duplex_suppressed;
    result.channel.bytes_on_air += ch.bytes_on_air;

    const proto::ProtocolStats& s = node->station().protocol().stats();
    result.honest.beacons_sent += s.beacons_sent;
    result.honest.beacons_received += s.beacons_received;
    result.honest.adoptions += s.adoptions;
    result.honest.adjustments += s.adjustments;
    result.honest.rejected_interval += s.rejected_interval;
    result.honest.rejected_key += s.rejected_key;
    result.honest.rejected_mac += s.rejected_mac;
    result.honest.rejected_guard += s.rejected_guard;
    result.honest.elections_won += s.elections_won;
    result.honest.demotions += s.demotions;
    result.honest.coarse_steps += s.coarse_steps;
    result.honest.solver_rejections += s.solver_rejections;
    for (std::size_t v = 0; v < result.honest.discipline_verdicts.size();
         ++v) {
      result.honest.discipline_verdicts[v] += s.discipline_verdicts[v];
    }
  }

  NetRunStats net;
  for (const auto& node : nodes_) {
    const NetRunStats snapshot = node->net_stats();
    net.transport.datagrams_sent += snapshot.transport.datagrams_sent;
    net.transport.bytes_sent += snapshot.transport.bytes_sent;
    net.transport.send_errors += snapshot.transport.send_errors;
    net.transport.datagrams_received +=
        snapshot.transport.datagrams_received;
    net.transport.bytes_received += snapshot.transport.bytes_received;
    net.transport.recv_errors += snapshot.transport.recv_errors;
    net.frames_sent += snapshot.frames_sent;
    net.frames_received += snapshot.frames_received;
    net.self_frames_dropped += snapshot.self_frames_dropped;
    net.decode_errors += snapshot.decode_errors;
    net.stale_frames_dropped += snapshot.stale_frames_dropped;
  }
  result.net = net;

  if (reactor_ != nullptr) {
    registry_.gauge("reactor.wait_seconds")
        .set(static_cast<double>(reactor_->wait_ns()) * 1e-9);
    registry_.gauge("reactor.work_seconds")
        .set(static_cast<double>(reactor_->work_ns()) * 1e-9);
  }
  result.metrics = registry_.snapshot();
  result.events_processed = sim_.events_processed();
  result.wall_seconds = wall_seconds_;
  if (profiler_ != nullptr) {
    result.profile =
        profiler_->snapshot(result.events_processed, wall_seconds_);
  }
  if (monitor_ != nullptr) result.audit = monitor_->report();
  if (recovery_ != nullptr) {
    recovery_->finalize(injector_->stats());
    result.recovery = recovery_->report();
  }

  // A node that died or stayed deaf without a planned fault must not pass
  // as a clean (just quieter) run: flag it as a node-failure audit record
  // and report it through failed_nodes() so the tool exits nonzero.
  // "Deaf" = it decoded not a single frame while its peers were clearly
  // beaconing.  The whole-run peer-frame count only witnesses against a
  // node when those frames were actually deliverable to it: under a
  // declared partition the plan itself drops cross-group frames, so an
  // isolated side's reference legitimately hears nothing while the other
  // side beacons — the heuristic stands down for partition plans rather
  // than misread planned isolation as a wedged process.
  failed_nodes_.clear();
  const bool plan_partitions = !config_.faults.partitions.empty();
  std::uint64_t frames_on_wire = 0;
  for (const auto& node : nodes_) {
    frames_on_wire += node->net_stats().frames_sent;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (expected_down_[i]) continue;
    const auto& node = *nodes_[i];
    const std::uint64_t peer_frames =
        frames_on_wire - node.net_stats().frames_sent;
    const bool dead = !node.station().awake();
    const bool deaf = !plan_partitions &&
                      node.net_stats().frames_received == 0 &&
                      peer_frames > 10;
    if (!dead && !deaf) continue;
    const mac::NodeId id = node.config().id;
    failed_nodes_.push_back(id);
    if (!result.audit) result.audit.emplace();
    obs::AuditRecord record;
    record.kind = obs::InvariantKind::kNodeFailure;
    record.severity = obs::Severity::kCritical;
    record.node = id;
    record.count = 1;
    record.first_t_s = record.last_t_s = sim_.now().to_sec();
    record.detail = dead ? "node is down with no planned fault"
                         : "node received no frame while peers sent " +
                               std::to_string(peer_frames);
    if (flight_ != nullptr) {
      // Unplanned death is exactly what the flight recorder exists for:
      // dump the recent history with the failure record attached (never
      // rate-limited, unlike audit-triggered dumps).
      flight_->dump(sim_.now().to_sec(), "node-failure", &record);
    }
    result.audit->records.push_back(std::move(record));
  }

  run::derive_series_stats(result, config_.duration_s);
  return result;
}

run::Scenario Swarm::reporting_scenario() const {
  run::Scenario s;
  s.protocol = run::ProtocolKind::kSstsp;
  s.num_nodes = config_.nodes;
  s.duration_s = config_.duration_s;
  s.seed = config_.seed;
  s.phy = config_.phy;
  s.sstsp = config_.sstsp;
  s.initial_offset_us = config_.initial_offset_us;
  s.max_drift_ppm = config_.max_drift_ppm;
  s.preestablished_reference = config_.preestablished_reference;
  s.faults = config_.faults;
  s.sample_period_s = config_.sample_period_s;
  s.trace_capacity = config_.trace_capacity;
  s.collect_metrics = config_.collect_metrics;
  s.profile = config_.profile;
  s.monitor = config_.monitor;
  s.telemetry_out = config_.telemetry_out;
  s.telemetry_interval_s = config_.telemetry_interval_s;
  s.telemetry_per_node = config_.telemetry_per_node;
  s.flight_recorder_out = config_.flight_recorder_out;
  s.flight_capacity = config_.flight_capacity;
  s.phase_sampler = config_.phase_sampler;
  s.phase_sampler_interval_s = config_.phase_sampler_interval_s;
  return s;
}

std::optional<mac::NodeId> Swarm::current_reference() const {
  for (const auto& node : nodes_) {
    if (node->station().awake() &&
        node->station().protocol().is_reference()) {
      return node->config().id;
    }
  }
  return std::nullopt;
}

std::optional<double> Swarm::instant_max_diff_us() const {
  double lo = 0.0;
  double hi = 0.0;
  bool any = false;
  const sim::SimTime now = sim_.now();
  for (const auto& node : nodes_) {
    const proto::Station& st = node->station();
    if (!st.awake() || !st.protocol().is_synchronized()) continue;
    const double v = st.protocol().network_time_us(now);
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!any) return std::nullopt;
  return hi - lo;
}

}  // namespace sstsp::net
