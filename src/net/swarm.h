// In-process N-node live-stack orchestrator (the sstsp_swarm engine).
//
// A Swarm spawns `nodes` NodeRuntimes on one hosting Simulator, connects
// them through either
//   * LoopbackTransport — virtual-time hub, sim_.run_until() drives the
//     run to completion as fast as the host can execute it, and a seeded
//     run is bit-reproducible (tests/net_swarm_test.cpp); or
//   * UdpTransport     — one real non-blocking UDP socket per node on the
//     loopback host, unicast peer mesh over the discovered ephemeral
//     ports, paced in real time by a net::Reactor (so a 10 s run takes
//     10 s of wall clock),
// and shares one observability surface (metrics registry, event trace,
// invariant monitor, beacon lifecycle) across all of them — the same
// sharing model as run::Network, so the PR-2 audit/trace tooling consumes
// a live run unchanged.
//
// The result is reported as a run::RunResult (plus RunResult::net wire
// accounting) against a synthesized run::Scenario, which makes the JSON
// report and the strict-audit exit-code plumbing of sstsp_sim directly
// reusable by sstsp_swarm.
#pragma once

#include <csignal>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "fault/plan.h"
#include "fault/recovery.h"
#include "fault/transport.h"
#include "metrics/series.h"
#include "net/loopback.h"
#include "net/node.h"
#include "net/prom_exporter.h"
#include "net/reactor.h"
#include "net/telemetry_link.h"
#include "net/udp.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/instruments.h"
#include "obs/invariants.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/sampler.h"
#include "runner/experiment.h"
#include "runner/scenario.h"
#include "sim/simulator.h"
#include "trace/event_trace.h"
#include "trace/lifecycle.h"

namespace sstsp::net {

enum class TransportKind { kLoopback, kUdp };

[[nodiscard]] const char* transport_kind_name(TransportKind kind);

struct SwarmConfig {
  int nodes = 5;
  double duration_s = 10.0;
  std::uint64_t seed = 1;

  TransportKind transport = TransportKind::kUdp;

  /// UDP mode: one socket per node, bound to this (loopback) address.
  /// base_port == 0 binds ephemeral ports and wires the peer mesh from the
  /// discovered ports; otherwise node i binds base_port + i.
  std::string bind_address = "127.0.0.1";
  std::uint16_t base_port = 0;

  /// Loopback mode: hub latency/drop model.
  LoopbackConfig loopback{};

  /// Expected one-way wire latency (NodeConfig::wire_latency_us).  < 0 =
  /// auto: the loopback latency-model midpoint, or kUdpWireLatencyUs for
  /// real sockets.
  double wire_latency_us = -1.0;

  core::SstspConfig sstsp = live_sstsp_defaults();
  mac::PhyParams phy{};

  /// Injected faults (fault/plan.h) — the same plan format run::Network
  /// consumes; packet directives apply through a FaultyTransport decorator
  /// on each node's endpoint, node faults stop/start NodeRuntimes.
  fault::FaultPlan faults{};

  double max_drift_ppm = 100.0;
  double initial_offset_us = 112.0;
  /// Node 0 boots directly in the reference role (skips election).
  bool preestablished_reference = false;

  // Observability — same semantics as the run::Scenario fields.
  /// Lemma-1 divergence bound handed to the invariant monitor.  < 0 =
  /// auto: the library default (sim-calibrated 50 us) for virtual-time
  /// loopback runs, or kUdpDivergeThresholdUs for wall-paced UDP runs —
  /// user space cannot fully compensate a scheduler preemption landing
  /// between a clock read and the adjacent syscall, so one guard-accepted
  /// noisy measurement can transiently move a node's (k, b) solve by more
  /// than the hardware-timestamping model allows (see DESIGN.md
  /// "Live stack").  Convergence stays judged at the strict 25 us.
  double monitor_diverge_us = -1.0;
  double sample_period_s = 0.1;
  std::size_t trace_capacity = 0;
  bool collect_metrics = true;
  bool profile = false;
  bool monitor = false;

  // Streaming telemetry + flight recorder (DESIGN.md §10) — same semantics
  // as the run::Scenario fields.  Cluster samples (source="swarm") are
  // emitted from the existing clock-spread sampling tick; per-node samples
  // (source="node") are emitted by each NodeRuntime and aggregated into the
  // same JSONL stream — over a datagram socket on the reactor in UDP mode,
  // by direct callback in virtual-time loopback mode.
  std::string telemetry_out{};
  double telemetry_interval_s = 1.0;
  /// Attach the per-node error array to cluster samples: 1 = always,
  /// 0 = never, < 0 = auto (deployments of <= 64 nodes).
  int telemetry_per_node = -1;
  std::string flight_recorder_out{};
  std::size_t flight_capacity = 512;
  /// Live status line on stderr, refreshed once per telemetry interval
  /// (wall-paced UDP runs; a loopback run finishes in milliseconds).
  bool watch = false;

  // Performance observatory (DESIGN.md §11).
  /// Phase-sampling profiler into the metrics registry: virtual-time gated
  /// on the dispatch loop, plus a SIGPROF statistical sampler on wall-paced
  /// UDP runs.
  bool phase_sampler = false;
  double phase_sampler_interval_s = 0.001;
  /// Prometheus /metrics endpoint on the reactor (UDP mode only):
  /// -1 = off, 0 = ephemeral (port printed at startup), > 0 = fixed port.
  int prom_port = -1;
};

class Swarm {
 public:
  /// Builds the whole deployment (sockets bound, peer mesh wired, nodes
  /// constructed, observability attached) without starting the protocol.
  /// nullptr + *error on any failure (bad config, socket errors).
  [[nodiscard]] static std::unique_ptr<Swarm> create(
      const SwarmConfig& config, std::string* error);

  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  /// Powers every node on and runs to `duration_s` — virtual-time
  /// (loopback) or wall-paced (UDP).  Blocking; call once.
  void run();

  /// Derives the run report; call after run().
  [[nodiscard]] run::RunResult collect();

  /// The scenario the report is written against (for json_report).
  [[nodiscard]] run::Scenario reporting_scenario() const;

  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] NodeRuntime& node(int i) {
    return *nodes_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] trace::EventTrace* trace() { return trace_.get(); }
  [[nodiscard]] obs::Profiler* profiler() { return profiler_.get(); }
  [[nodiscard]] obs::PhaseSampler* phase_sampler() {
    return phase_sampler_.get();
  }
  [[nodiscard]] PromExporter* prom_exporter() { return prom_.get(); }
  [[nodiscard]] obs::InvariantMonitor* monitor() { return monitor_.get(); }
  [[nodiscard]] trace::BeaconLifecycle* lifecycle() {
    return lifecycle_.get();
  }
  [[nodiscard]] const SwarmConfig& config() const { return config_; }
  [[nodiscard]] fault::RecoveryTracker* recovery_tracker() {
    return recovery_.get();
  }
  [[nodiscard]] obs::TelemetrySampler* telemetry_sampler() {
    return sampler_.get();
  }
  [[nodiscard]] obs::FlightRecorder* flight_recorder() {
    return flight_.get();
  }
  [[nodiscard]] TelemetryCollector* telemetry_collector() {
    return collector_.get();
  }

  /// Arms SIGUSR1-style dump requests: when *flag becomes nonzero, the next
  /// sampling tick resets it and dumps the flight recorder (no-op without
  /// --flight-recorder).
  void set_dump_request_flag(volatile std::sig_atomic_t* flag) {
    dump_flag_ = flag;
  }

  /// Nodes that collect() found dead or silent without a planned fault —
  /// a partial deployment must not masquerade as a clean run; the caller
  /// (sstsp_swarm) turns a non-empty list into a nonzero exit.  Valid
  /// after collect().
  [[nodiscard]] const std::vector<mac::NodeId>& failed_nodes() const {
    return failed_nodes_;
  }

  /// The node currently holding the reference role, if any.
  [[nodiscard]] std::optional<mac::NodeId> current_reference() const;
  /// Max pairwise adjusted-clock offset over awake synchronized nodes at
  /// the current instant (nullopt until at least one node synchronizes).
  [[nodiscard]] std::optional<double> instant_max_diff_us() const;

  /// Async-signal-safe Ctrl-C support (UDP mode; loopback runs are not
  /// interruptible mid-flight, they finish in milliseconds).
  void set_interrupt_flag(const volatile std::sig_atomic_t* flag) {
    if (reactor_) reactor_->set_interrupt_flag(flag);
  }

 private:
  explicit Swarm(const SwarmConfig& config);

  [[nodiscard]] bool init(std::string* error);
  [[nodiscard]] bool init_telemetry(std::string* error);
  void arm();
  void schedule_faults();
  void schedule_sampling();
  void sample_clock_spread();
  void emit_telemetry(sim::SimTime now, bool have, double lo, double hi,
                      double sum);
  void write_sample(const obs::TelemetrySample& sample);
  void print_watch_line(const obs::TelemetrySample& sample);
  [[nodiscard]] std::string prometheus_scrape_body();

  SwarmConfig config_;
  sim::Simulator sim_;

  std::unique_ptr<Reactor> reactor_;             ///< UDP mode
  std::vector<std::unique_ptr<UdpTransport>> udp_;
  std::unique_ptr<LoopbackHub> hub_;             ///< loopback mode

  obs::Registry registry_;
  std::unique_ptr<obs::Instruments> instruments_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::PhaseSampler> phase_sampler_;
  std::unique_ptr<PromExporter> prom_;
  std::unique_ptr<obs::InvariantMonitor> monitor_;
  std::unique_ptr<trace::BeaconLifecycle> lifecycle_;
  std::unique_ptr<trace::EventTrace> trace_;

  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::RecoveryTracker> recovery_;
  std::vector<std::unique_ptr<fault::FaultyTransport>> faulty_;

  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  /// Per node: a planned fault currently holds it down (crash/pause
  /// scheduling flips this) — collect() only flags *unplanned* deaths.
  std::vector<bool> expected_down_;
  std::vector<mac::NodeId> failed_nodes_;

  metrics::Series max_diff_;
  std::vector<double> sample_values_;
  bool armed_{false};
  double wall_seconds_{0.0};

  // Telemetry pipeline.  Everything below runs on the single sim/reactor
  // thread (collector callbacks included), so no locking is needed.
  std::unique_ptr<obs::JsonlSink> telemetry_sink_;
  std::unique_ptr<obs::TelemetrySampler> sampler_;  ///< cluster samples
  std::unique_ptr<obs::JsonlSink> flight_sink_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::vector<std::unique_ptr<TelemetryExporter>> exporters_;  ///< UDP mode
  std::unique_ptr<TelemetryCollector> collector_;              ///< UDP mode
  volatile std::sig_atomic_t* dump_flag_{nullptr};
};

}  // namespace sstsp::net
