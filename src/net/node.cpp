#include "net/node.h"

#include "crypto/hash_chain.h"

namespace sstsp::net {

namespace {
/// Trace-id range seed for a node: the node id in the high bits keeps the
/// per-node channel counters disjoint, so lifecycle ids stay unique across
/// the whole deployment (and 0 stays reserved for "no beacon").
[[nodiscard]] std::uint64_t trace_id_base(mac::NodeId id) {
  return (static_cast<std::uint64_t>(id) + 1) << 40;
}
}  // namespace

mac::PhyParams NodeRuntime::live_phy(const mac::PhyParams& phy) {
  mac::PhyParams live = phy;
  // The private channel only carries the node's own frames to the wire tap:
  // loss and range belong to the real network now, not the model.
  live.packet_error_rate = 0.0;
  live.radio_range_m = 0.0;
  return live;
}

clk::HardwareClock NodeRuntime::make_clock(const NodeConfig& cfg) {
  if (!cfg.emulate_clock) {
    return clk::HardwareClock(clk::DriftModel::from_ppm(cfg.drift_ppm),
                              cfg.offset_us);
  }
  // Per-node deterministic draw, independent of every other consumer and
  // of which process hosts the node.
  sim::Rng rng = sim::Rng(cfg.seed).substream("node-clock", cfg.id);
  const auto drift = clk::DriftModel::uniform(rng, cfg.max_drift_ppm);
  const double offset =
      rng.uniform(-cfg.initial_offset_us, cfg.initial_offset_us);
  return clk::HardwareClock(drift, offset);
}

NodeRuntime::NodeRuntime(sim::Simulator& sim, Transport& transport,
                         const NodeConfig& config)
    : sim_(sim),
      transport_(transport),
      config_(config),
      channel_(sim, live_phy(config.phy)) {
  channel_.seed_trace_ids(trace_id_base(config_.id));

  // The station registers itself as channel index 0...
  station_ = std::make_unique<proto::Station>(
      sim_, channel_, config_.id, make_clock(config_), mac::Position{});
  // ...and the wire tap, co-located, as index 1.  Being the only *other*
  // station, it receives every local transmission (half-duplex excludes
  // the sender itself) after the frame's air time + receive latency.
  channel_.add_station(mac::Position{},
                       [this](const mac::Frame& frame, const mac::RxInfo&) {
                         on_local_frame(frame);
                       });

  // Trust bootstrap: every node of the deployment derives the same anchor
  // directory from the shared seed (see core/key_directory.h).
  for (int i = 0; i < config_.total_nodes; ++i) {
    const auto id = static_cast<mac::NodeId>(i);
    directory_.register_node(
        id, crypto::ChainParams{crypto::derive_seed(config_.seed, id),
                                config_.sstsp.chain_length});
  }

  core::Sstsp::Options options;
  options.calibrated_boot = true;
  options.start_as_reference = config_.start_as_reference;
  station_->set_protocol(std::make_unique<core::Sstsp>(
      *station_, config_.sstsp, directory_, options));

  transport_.set_rx_handler(
      [this](std::span<const std::uint8_t> bytes, const RxMeta& meta) {
        on_datagram(bytes, meta);
      });
}

void NodeRuntime::start() { station_->power_on(); }

void NodeRuntime::stop() { station_->power_off(); }

void NodeRuntime::start_telemetry(
    const obs::TelemetrySampler::Options& options, sim::SimTime until,
    obs::TelemetrySampler::EmitFn emit) {
  sampler_ = std::make_unique<obs::TelemetrySampler>(
      options, [this, emit = std::move(emit)](const obs::TelemetrySample& s) {
        if (station_->flight() != nullptr) station_->flight()->on_sample(s);
        if (emit) emit(s);
      });
  const auto period = sim::SimTime::from_sec_double(options.interval_s);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, until, tick] {
    emit_telemetry_sample();
    if (sim_.now() + period <= until) sim_.after(period, *tick);
  };
  sim_.after(period, *tick);
}

void NodeRuntime::emit_telemetry_sample() {
  obs::TelemetrySample s;
  s.node = static_cast<std::int64_t>(config_.id);
  s.nodes_total = config_.total_nodes;
  const bool awake = station_->awake();
  s.nodes_awake = awake ? 1 : 0;
  s.nodes_synced = awake && station_->protocol().is_synchronized() ? 1 : 0;
  if (awake && station_->protocol().is_reference()) {
    s.reference = s.node;
  }
  // Per-node samples carry no offset error: a live node has no ground
  // truth to compare against (the swarm's cluster samples do).
  s.queue_depth = sim_.events_pending();
  if (station_->monitor() != nullptr) {
    s.audit_records = station_->monitor()->total_violations();
  }
  s.recovery_pending =
      station_->recovery() != nullptr && station_->recovery()->pending();

  const auto& stats = station_->protocol().stats();
  obs::TelemetryCumulative cum;
  cum.beacons_tx = stats.beacons_sent;
  cum.beacons_rx = stats.beacons_received;
  cum.adjustments = stats.adjustments + stats.adoptions;
  cum.coarse_steps = stats.coarse_steps;
  cum.rejects = stats.rejected_interval + stats.rejected_key +
                stats.rejected_mac + stats.rejected_guard;
  cum.elections = stats.elections_won;
  cum.events = sim_.events_processed();
  sampler_->emit(sim_.now().to_sec(), std::move(s), cum);
}

void NodeRuntime::on_local_frame(const mac::Frame& frame) {
  // The frame's timestamps describe this tap event's *scheduled* instant,
  // but the datagram physically leaves whenever the OS dispatches the
  // sendto.  Real beacon hardware stamps at the antenna so the two
  // coincide; here the transport measures the dispatch lateness against
  // the schedule per peer copy and publishes it in the envelope for the
  // receiver to compensate (no-op on virtual-time transports, which
  // deliver exactly on schedule).
  TxMeta meta;
  if (wall_now_) {
    meta.has_schedule = true;
    meta.scheduled = sim_.now();
    // A host stall between the scheduled instant and this dispatch makes
    // the beacon stale: skip it like a missed TBTT window rather than
    // feed receivers replay-shaped evidence (see kMaxTxLatenessUs).
    if ((wall_now_() - meta.scheduled).to_us() > kMaxTxLatenessUs) {
      ++stats_.stale_frames_dropped;
      return;
    }
  }
  ++stats_.frames_sent;
  const std::vector<std::uint8_t> datagram = encode_datagram(frame);
  if (!transport_.send(datagram, meta)) {
    // Already accounted in the transport's send_errors; nothing to retry —
    // beacons are periodic soft state.
  }
}

void NodeRuntime::on_datagram(std::span<const std::uint8_t> bytes,
                              const RxMeta& meta) {
  const DecodeOutcome outcome = decode_datagram(bytes);
  if (!outcome.ok()) {
    ++stats_.decode_errors;
    ++decode_error_by_kind_[static_cast<std::size_t>(outcome.error)];
    return;
  }
  const mac::Frame& frame = *outcome.frame;
  if (frame.sender == config_.id) {
    // Own multicast echo: the live stand-in for half-duplex suppression.
    ++stats_.self_frames_dropped;
    return;
  }
  ++stats_.frames_received;
  if (!station_->awake() || !station_->has_protocol()) return;

  // Arrival-instant RxInfo on the same timeline the protocol's timers run
  // on.  The nominal delay is the same receiver-side compensation constant
  // a simulated delivery carries (air time + nominal propagation + nominal
  // receive latency), plus what the real path adds on top of the modelled
  // one:
  //   * wire_latency_us — the expected transport hop (operator constant);
  //   * the sender's self-reported dispatch lateness — the envelope's
  //     emulation-metadata stand-in for hardware tx timestamping.
  // Symmetrically, the receiver backs its own wake-up latency out of the
  // arrival estimate (kernel rx timestamp via RxMeta), so only genuine
  // path jitter around wire_latency_us survives as the paper's epsilon.
  const sim::SimTime duration = frame.is_sstsp()
                                    ? channel_.phy().sstsp_beacon_duration
                                    : channel_.phy().tsf_beacon_duration;
  mac::RxInfo rx;
  const sim::SimTime now = wall_now_ ? wall_now_() : sim_.now();
  rx.delivered = now - sim::SimTime::from_ns(meta.rx_lateness_ns);
  rx.nominal_delay_us = channel_.nominal_delay_us(duration) +
                        config_.wire_latency_us +
                        static_cast<double>(outcome.tx_lateness_ns) / 1'000.0;
  // Ground-truth tx start is unknowable across the wire; the nominal
  // estimate is only used for RULE R's earlier-transmitter tie-break.
  rx.tx_start =
      rx.delivered - sim::SimTime::from_us_double(rx.nominal_delay_us);
  station_->protocol().on_receive(frame, rx);
}

NetRunStats NodeRuntime::net_stats() const {
  NetRunStats snapshot = stats_;
  snapshot.transport = transport_.stats();
  return snapshot;
}

}  // namespace sstsp::net
