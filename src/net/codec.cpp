#include "net/codec.h"

#include <algorithm>

#include "mac/wire.h"

namespace sstsp::net {

namespace {

constexpr std::uint8_t kMagic[4] = {0x53, 0x53, 0x57, 0x50};  // "SSWP"

void put_u16le(std::uint8_t* out, std::uint16_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
}

void put_u64le(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

[[nodiscard]] std::uint16_t get_u16le(std::span<const std::uint8_t> in,
                                      std::size_t at) {
  return static_cast<std::uint16_t>(in[at] |
                                    (static_cast<std::uint16_t>(in[at + 1])
                                     << 8));
}

[[nodiscard]] std::uint64_t get_u64le(std::span<const std::uint8_t> in,
                                      std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[at + static_cast<std::size_t>(i)];
  }
  return v;
}

}  // namespace

std::string_view to_string(DecodeError error) {
  switch (error) {
    case DecodeError::kNone: return "none";
    case DecodeError::kTruncated: return "truncated";
    case DecodeError::kBadMagic: return "bad-magic";
    case DecodeError::kBadVersion: return "bad-version";
    case DecodeError::kBadFlags: return "bad-flags";
    case DecodeError::kOversizedLength: return "oversized-length";
    case DecodeError::kLengthMismatch: return "length-mismatch";
    case DecodeError::kBadPayload: return "bad-payload";
    case DecodeError::kDecodeErrorCount: break;
  }
  return "?";
}

std::vector<std::uint8_t> encode_datagram(const mac::Frame& frame,
                                          std::uint64_t tx_lateness_ns) {
  const std::vector<std::uint8_t> payload = mac::encode_frame(frame);
  std::vector<std::uint8_t> out(kEnvelopeHeaderBytes + payload.size());
  std::copy(std::begin(kMagic), std::end(kMagic), out.begin());
  out[4] = kCodecVersion;
  out[5] = 0x00;  // flags, reserved
  put_u16le(&out[6], static_cast<std::uint16_t>(payload.size()));
  put_u64le(&out[8], frame.trace_id);
  put_u64le(&out[16], tx_lateness_ns);
  std::copy(payload.begin(), payload.end(),
            out.begin() + kEnvelopeHeaderBytes);
  return out;
}

void patch_tx_lateness(std::span<std::uint8_t> datagram,
                       std::uint64_t tx_lateness_ns) {
  if (datagram.size() < kEnvelopeHeaderBytes) return;
  put_u64le(datagram.data() + kTxLatenessOffset, tx_lateness_ns);
}

DecodeOutcome decode_datagram(std::span<const std::uint8_t> bytes) {
  DecodeOutcome outcome;
  if (bytes.size() < kEnvelopeHeaderBytes) {
    outcome.error = DecodeError::kTruncated;
    return outcome;
  }
  for (std::size_t i = 0; i < 4; ++i) {
    if (bytes[i] != kMagic[i]) {
      outcome.error = DecodeError::kBadMagic;
      return outcome;
    }
  }
  if (bytes[4] != kCodecVersion) {
    outcome.error = DecodeError::kBadVersion;
    return outcome;
  }
  if (bytes[5] != 0x00) {
    outcome.error = DecodeError::kBadFlags;
    return outcome;
  }
  const std::size_t declared = get_u16le(bytes, 6);
  if (declared > kMaxPayloadBytes) {
    outcome.error = DecodeError::kOversizedLength;
    return outcome;
  }
  // Strict framing: the length prefix must account for every byte present.
  // A datagram service preserves message boundaries, so both a short *and*
  // a long datagram indicate corruption or a speaking-past-the-spec peer.
  if (declared != bytes.size() - kEnvelopeHeaderBytes) {
    outcome.error = DecodeError::kLengthMismatch;
    return outcome;
  }
  auto frame = mac::decode_frame(bytes.subspan(kEnvelopeHeaderBytes));
  if (!frame) {
    outcome.error = DecodeError::kBadPayload;
    return outcome;
  }
  frame->trace_id = get_u64le(bytes, 8);
  outcome.tx_lateness_ns = get_u64le(bytes, 16);
  outcome.frame = std::move(*frame);
  return outcome;
}

}  // namespace sstsp::net
