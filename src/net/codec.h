// Datagram wire codec for the live SSTSP stack.
//
// The simulator moves frames as structured values; mac/wire.h defines the
// on-air octet layout the paper's size accounting refers to.  This module
// adds the *transport* framing a deployment needs when beacons ride a
// datagram service (UDP emulation, a packet radio, a capture file) instead
// of a physical 802.11 PHY:
//
//   offset  size  field
//   0       4     magic "SSWP" (0x53 0x53 0x57 0x50)
//   4       1     codec version (kCodecVersion; decoders reject others)
//   5       1     flags (reserved, must be zero)
//   6       2     payload length, little-endian u16
//   8       8     lifecycle trace ID, little-endian u64
//   16      8     tx dispatch lateness in ns, little-endian u64
//   24      N     payload: the mac::wire on-air encoding of one frame
//
// The trace ID and tx lateness are *emulation metadata*, not on-air
// fields.  The trace ID carries the sender-assigned beacon lifecycle ID
// (see mac::Frame::trace_id) across the process boundary so the PR-2
// causal tracing correlates a live tx with its per-receiver rx/verify/
// adjust events exactly as in simulation.  The tx lateness is how long
// after the beacon's scheduled transmit instant the hosting process was
// actually dispatched to put it on the wire: real 802.11 hardware
// timestamps the beacon at the antenna when the slot arrives, but a
// user-space emulation is at the mercy of the OS scheduler, so the sender
// measures its own dispatch lateness and the receiver folds it into the
// nominal-delay compensation (see NodeRuntime::on_datagram) — restoring
// the hardware-timestamping assumption the paper's guard-time analysis is
// built on.  A real deployment would drop all 16 bytes.
//
// Decoding is strict and bounds-checked: every malformed shape (truncated
// header, bad magic/version/flags, length prefix larger than the datagram
// or the payload cap, trailing garbage, payload mac/wire rejects) maps to a
// distinct DecodeError and never reads out of bounds — exercised against a
// malformed-input corpus under ASan/UBSan in tests/net_codec_test.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "mac/frame.h"

namespace sstsp::net {

inline constexpr std::uint8_t kCodecVersion = 1;
inline constexpr std::size_t kEnvelopeHeaderBytes = 24;
/// Envelope offset of the tx-lateness field, for transports that re-stamp
/// it immediately before each per-peer send (see patch_tx_lateness).
inline constexpr std::size_t kTxLatenessOffset = 16;

/// Hard cap on the payload a decoder will accept.  Beacons are <= 96 bytes
/// (mac::kSstspWireBytes); the cap leaves headroom for future frame types
/// while keeping an oversized length prefix an immediate, allocation-free
/// rejection.
inline constexpr std::size_t kMaxPayloadBytes = 512;

enum class DecodeError : std::uint8_t {
  kNone,            ///< decoded successfully
  kTruncated,       ///< shorter than the 24-byte envelope header
  kBadMagic,        ///< first four bytes are not "SSWP"
  kBadVersion,      ///< version byte != kCodecVersion
  kBadFlags,        ///< reserved flags byte non-zero
  kOversizedLength, ///< length prefix exceeds kMaxPayloadBytes
  kLengthMismatch,  ///< length prefix != bytes actually present
  kBadPayload,      ///< mac::wire decode rejected the payload
  kDecodeErrorCount,  // sentinel
};

inline constexpr std::size_t kDecodeErrorCount =
    static_cast<std::size_t>(DecodeError::kDecodeErrorCount);

[[nodiscard]] std::string_view to_string(DecodeError error);

struct DecodeOutcome {
  /// Present iff error == kNone; Frame::trace_id carries the envelope's
  /// lifecycle ID.
  std::optional<mac::Frame> frame;
  /// Sender-reported dispatch lateness (envelope offset 16); valid iff ok().
  std::uint64_t tx_lateness_ns{0};
  DecodeError error{DecodeError::kNone};

  [[nodiscard]] bool ok() const { return error == DecodeError::kNone; }
};

/// Encodes one frame into a self-contained datagram (envelope + mac::wire
/// payload).  The envelope trace ID is taken from frame.trace_id;
/// `tx_lateness_ns` is how far behind its scheduled transmit instant the
/// sender was actually dispatched (0 for virtual-time transports, where
/// events run exactly on schedule).
[[nodiscard]] std::vector<std::uint8_t> encode_datagram(
    const mac::Frame& frame, std::uint64_t tx_lateness_ns = 0);

/// Strict inverse of encode_datagram; see DecodeError for every rejection
/// class.  Never reads past bytes.size().
[[nodiscard]] DecodeOutcome decode_datagram(
    std::span<const std::uint8_t> bytes);

/// Rewrites the envelope's tx-lateness field in place.  Sequential per-peer
/// sendto() calls are microseconds apart, so a wall-paced transport
/// re-stamps the field right before each one — a stamp taken once at encode
/// time goes stale by the syscall cost times the peer's position in the
/// fan-out order, which shows up as a per-pair clock bias.  No-op on a
/// buffer shorter than the envelope header.
void patch_tx_lateness(std::span<std::uint8_t> datagram,
                       std::uint64_t tx_lateness_ns);

}  // namespace sstsp::net
