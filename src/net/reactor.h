// Wall-clock reactor: hosts a discrete-event Simulator in real time.
//
// The whole protocol library schedules against sim::Simulator, whose clock
// only advances when events run.  The reactor is the bridge that makes that
// same event queue tick against the wall: it anchors a simulator instant to
// a std::chrono::steady_clock instant, then alternates between
//
//   1. running every event whose time has been reached on the wall clock
//      (so BP-aligned protocol timers — ticks, contention slots, reference
//      emissions — fire at their scheduled instant), and
//   2. sleeping in ppoll() until the earlier of the next pending event and
//      readiness of a registered fd (UDP sockets).
//
// Readable fds are dispatched *as simulator events* scheduled at the
// current wall instant: the fd handler (UdpTransport::on_readable, which
// drains the socket and invokes the rx path) therefore always runs with
// sim.now() equal to the arrival time, so received frames are timestamped
// on the same timeline as everything else.
//
// ppoll's nanosecond timeout keeps timer lateness at scheduler granularity
// (~0.1 ms), well inside the protocol's 300 us guard window; an event that
// does fire late still runs at its *scheduled* sim time, so the beacons it
// stamps stay consistent with the schedule and the lateness only appears
// as receive-path epsilon.
#pragma once

#include <chrono>
#include <csignal>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/time_types.h"

namespace sstsp::net {

class Reactor {
 public:
  using FdHandler = std::function<void()>;

  explicit Reactor(sim::Simulator& sim) : sim_(sim) {}

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for readability dispatch.  The handler must drain the
  /// fd (read until EAGAIN): dispatch is level-triggered.
  void add_fd(int fd, FdHandler on_readable);
  void remove_fd(int fd);

  /// Pins "steady_clock now" to simulator instant `sim_at_now`.  Optional;
  /// run_until() anchors to sim.now() on first use.  sstsp_node uses this
  /// to place several OS processes on one shared timeline
  /// (sim time = CLOCK_REALTIME - configured epoch).
  void anchor(sim::SimTime sim_at_now);

  /// Runs until the wall clock reaches `horizon` on the simulator timeline
  /// (all events at or before it executed), the interrupt flag is raised,
  /// or request_stop() is called from a handler.
  void run_until(sim::SimTime horizon);

  void request_stop() { stop_ = true; }

  /// Async-signal-safe interruption: the loop exits promptly (<= one poll
  /// timeout, capped at 50 ms) once *flag becomes non-zero.
  void set_interrupt_flag(const volatile std::sig_atomic_t* flag) {
    interrupt_ = flag;
  }

  /// The current wall instant on the simulator timeline.
  [[nodiscard]] sim::SimTime wall_sim_now() const;

  /// Wait-vs-work accounting across every run_until() call: wall time spent
  /// blocked in ppoll() vs everything else (event dispatch, fd handling).
  /// Read by the observability layer (phase sampler / Prometheus export) to
  /// tell reactor idle time apart from protocol work — ITIMER_PROF cannot
  /// see sleeps (they consume no CPU time).
  [[nodiscard]] std::uint64_t wait_ns() const { return wait_ns_; }
  [[nodiscard]] std::uint64_t work_ns() const { return work_ns_; }

 private:
  struct Registration {
    int fd;
    FdHandler handler;
  };

  sim::Simulator& sim_;
  std::vector<Registration> fds_;
  std::chrono::steady_clock::time_point anchor_wall_{};
  sim::SimTime anchor_sim_{sim::SimTime::zero()};
  bool anchored_{false};
  bool stop_{false};
  std::uint64_t wait_ns_{0};
  std::uint64_t work_ns_{0};
  const volatile std::sig_atomic_t* interrupt_{nullptr};
};

}  // namespace sstsp::net
