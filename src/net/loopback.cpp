#include "net/loopback.h"

namespace sstsp::net {

LoopbackHub::LoopbackHub(sim::Simulator& sim, LoopbackConfig config)
    : sim_(sim), config_(config), rng_(sim.substream("loopback", 0)) {}

LoopbackHub::~LoopbackHub() = default;

LoopbackTransport& LoopbackHub::create_endpoint() {
  endpoints_.push_back(std::unique_ptr<LoopbackTransport>(
      new LoopbackTransport(*this, endpoints_.size())));
  return *endpoints_.back();
}

void LoopbackHub::broadcast(
    std::size_t from,
    std::shared_ptr<const std::vector<std::uint8_t>> bytes) {
  const std::int64_t lo = config_.latency_min.ps;
  const std::int64_t hi = config_.latency_max.ps;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    if (i == from) continue;
    // Draws happen in ascending endpoint order at send time (not delivery
    // time), so the RNG consumption — and therefore the whole run — is
    // independent of how deliveries interleave.
    const std::int64_t jitter =
        (hi > lo) ? static_cast<std::int64_t>(rng_.uniform_int(
                        0, static_cast<std::uint64_t>(hi - lo)))
                  : 0;
    if (config_.drop_probability > 0.0 &&
        rng_.bernoulli(config_.drop_probability)) {
      continue;
    }
    LoopbackTransport* receiver = endpoints_[i].get();
    sim_.after(sim::SimTime{lo + jitter},
               [receiver, bytes] { receiver->deliver(*bytes); });
  }
}

bool LoopbackTransport::send(std::span<const std::uint8_t> datagram,
                             const TxMeta& /*meta*/) {
  // Virtual-time sends happen exactly at their scheduled instant; the
  // encoded tx lateness of zero is already correct.
  ++stats_.datagrams_sent;
  stats_.bytes_sent += datagram.size();
  hub_.broadcast(index_, std::make_shared<const std::vector<std::uint8_t>>(
                             datagram.begin(), datagram.end()));
  return true;
}

void LoopbackTransport::deliver(const std::vector<std::uint8_t>& bytes) {
  ++stats_.datagrams_received;
  stats_.bytes_received += bytes.size();
  // Virtual-time delivery runs exactly at its scheduled instant: no
  // receive-side lateness to report.
  if (rx_handler_) rx_handler_(bytes, RxMeta{});
}

std::string LoopbackTransport::describe() const {
  return "loopback:" + std::to_string(index_) + "/" +
         std::to_string(hub_.endpoint_count());
}

}  // namespace sstsp::net
