#include "net/prom_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "net/reactor.h"

namespace sstsp::net {

namespace {

bool name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

// Prometheus sample values: decimal floats plus the spec's specials.
bool parse_value(std::string_view token) {
  if (token.empty()) return false;
  if (token == "NaN" || token == "+Inf" || token == "-Inf") return true;
  char* end = nullptr;
  const std::string copy(token);
  std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // The exposition format spells specials its own way.
  if (std::strcmp(buf, "nan") == 0 || std::strcmp(buf, "-nan") == 0) {
    return "NaN";
  }
  if (std::strcmp(buf, "inf") == 0) return "+Inf";
  if (std::strcmp(buf, "-inf") == 0) return "-Inf";
  return buf;
}

void summary_quantile(std::ostream& os, const std::string& name,
                      const char* q, double v) {
  os << name << "{quantile=\"" << q << "\"} " << format_value(v) << '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) out.push_back(name_char(c) ? c : '_');
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

void write_prometheus_text(
    std::ostream& os, const obs::RegistrySnapshot& snapshot,
    const std::vector<std::pair<std::string, double>>& extra_gauges,
    std::string_view prefix) {
  const std::string p = std::string(prefix) + "_";
  for (const auto& [name, value] : snapshot.counters) {
    const std::string full = p + prometheus_name(name) + "_total";
    os << "# TYPE " << full << " counter\n"
       << full << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string full = p + prometheus_name(name);
    os << "# TYPE " << full << " gauge\n"
       << full << ' ' << format_value(value) << '\n';
  }
  for (const auto& [name, value] : extra_gauges) {
    const std::string full = p + prometheus_name(name);
    os << "# TYPE " << full << " gauge\n"
       << full << ' ' << format_value(value) << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string full = p + prometheus_name(name);
    os << "# TYPE " << full << " summary\n";
    summary_quantile(os, full, "0.5", h.p50);
    summary_quantile(os, full, "0.9", h.p90);
    summary_quantile(os, full, "0.99", h.p99);
    os << full << "_sum " << format_value(h.sum) << '\n'
       << full << "_count " << h.count << '\n';
  }
}

std::string prometheus_body(
    const obs::RegistrySnapshot& snapshot,
    const std::vector<std::pair<std::string, double>>& extra_gauges,
    std::string_view prefix) {
  std::ostringstream os;
  write_prometheus_text(os, snapshot, extra_gauges, prefix);
  return os.str();
}

bool validate_prometheus_text(std::string_view text,
                              std::vector<std::string>* errors) {
  const std::size_t before = errors != nullptr ? errors->size() : 0;
  const auto fail = [&](int line_no, const std::string& what) {
    if (errors != nullptr && errors->size() < 20) {
      errors->push_back("line " + std::to_string(line_no) + ": " + what);
    }
  };
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Comments must be "# HELP name ..." / "# TYPE name kind" or free
      // text ("# anything" is legal); validate TYPE kinds when present.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::size_t sp = line.find(' ', 7);
        const std::string_view kind =
            sp == std::string_view::npos ? "" : line.substr(sp + 1);
        if (kind != "counter" && kind != "gauge" && kind != "summary" &&
            kind != "histogram" && kind != "untyped") {
          fail(line_no, "unknown TYPE kind");
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value [timestamp]
    std::size_t i = 0;
    while (i < line.size() && name_char(line[i])) ++i;
    if (i == 0 || (line[0] >= '0' && line[0] <= '9')) {
      fail(line_no, "illegal metric name");
      continue;
    }
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) {
        fail(line_no, "unterminated label set");
        continue;
      }
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') {
      fail(line_no, "missing value");
      continue;
    }
    std::string_view rest = line.substr(i + 1);
    const std::size_t sp = rest.find(' ');
    const std::string_view value_tok =
        sp == std::string_view::npos ? rest : rest.substr(0, sp);
    if (!parse_value(value_tok)) fail(line_no, "unparseable value");
  }
  return errors == nullptr || errors->size() == before;
}

bool write_prometheus_textfile(const std::string& path, std::string_view body,
                               std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::out | std::ios::trunc);
    if (!os.is_open()) {
      if (error != nullptr) *error = "cannot open " + tmp;
      return false;
    }
    os << body;
    if (!os.good()) {
      if (error != nullptr) *error = "write failed: " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename " + tmp + " -> " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

bool PromExporter::open(Reactor& reactor, std::uint16_t port, BodyFn body,
                        std::string* error) {
  close();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = "socket(): " + std::string(strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 8) != 0) {
    if (error != nullptr) {
      *error = "bind/listen 127.0.0.1:" + std::to_string(port) + ": " +
               strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  body_ = std::move(body);
  reactor_ = &reactor;
  reactor.add_fd(listen_fd_, [this] { on_accept(); });
  return true;
}

void PromExporter::on_accept() {
  while (true) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) return;  // EAGAIN: drained
    // Serve inline with short timeouts: scrapers are local and polite;
    // a stalled peer costs the reactor at most ~2 x 200 ms.
    timeval tv{};
    tv.tv_usec = 200'000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    char request[2048];
    (void)::read(conn, request, sizeof(request));  // one segment on loopback
    const std::string body = body_ ? body_() : std::string();
    std::string response =
        "HTTP/1.0 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    std::size_t off = 0;
    while (off < response.size()) {
      const ssize_t n =
          ::write(conn, response.data() + off, response.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(conn);
    ++scrapes_;
  }
}

void PromExporter::close() {
  if (listen_fd_ < 0) return;
  if (reactor_ != nullptr) reactor_->remove_fd(listen_fd_);
  ::close(listen_fd_);
  listen_fd_ = -1;
  reactor_ = nullptr;
}

}  // namespace sstsp::net
