// Transport abstraction for the live SSTSP stack.
//
// A Transport moves opaque datagrams (net::codec envelopes) between nodes.
// It replaces the simulator's mac::Channel at the process boundary: where
// the channel models the 802.11 broadcast medium (carrier sense, collisions,
// propagation), a transport is a plain best-effort datagram service — the
// IBSS broadcast domain collapses to "send reaches every peer".  What that
// abstraction deliberately does NOT model is documented in DESIGN.md
// ("Live stack": no carrier sense across the wire, no collisions, no
// half-duplex suppression beyond dropping one's own multicast echo).
//
// Two implementations:
//   * UdpTransport (udp.h)      — non-blocking UDP unicast fan-out or
//                                 multicast over a poll reactor; wall clock.
//   * LoopbackTransport (loopback.h) — in-process hub driven by virtual
//                                 time on a shared Simulator; deterministic,
//                                 for tests and seeded reproduction runs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "sim/time_types.h"

namespace sstsp::net {

struct TransportStats {
  std::uint64_t datagrams_sent{0};
  std::uint64_t bytes_sent{0};
  std::uint64_t send_errors{0};  ///< per-peer send failures (EAGAIN, ...)
  std::uint64_t datagrams_received{0};
  std::uint64_t bytes_received{0};
  std::uint64_t recv_errors{0};
};

/// Aggregate live-stack accounting for one run; carried by RunResult::net
/// so the run JSON reports the wire the same way it reports the channel.
struct NetRunStats {
  TransportStats transport;
  std::uint64_t frames_sent{0};      ///< frames encoded onto the wire
  std::uint64_t frames_received{0};  ///< decoded + handed to the protocol
  std::uint64_t self_frames_dropped{0};  ///< own multicast echoes discarded
  std::uint64_t decode_errors{0};        ///< malformed datagrams rejected
  /// Frames whose dispatch ran so far behind schedule (host stall) that
  /// the beacon would certainly fail the receivers' µTESLA timing check;
  /// dropped at the sender like a missed TBTT window (see
  /// net::kMaxTxLatenessUs).
  std::uint64_t stale_frames_dropped{0};
};

/// Per-datagram send metadata.
struct TxMeta {
  /// When set, the simulator instant the datagram's content says it leaves
  /// the sender (the wire-tap delivery time).  A wall-paced transport uses
  /// it to re-stamp the envelope's tx-lateness field (codec offset
  /// kTxLatenessOffset) immediately before every per-peer send, so each
  /// receiver learns exactly how far behind schedule its copy physically
  /// departed.  Virtual-time transports deliver on schedule and ignore it.
  bool has_schedule{false};
  sim::SimTime scheduled{};
};

/// Per-datagram receive metadata.
struct RxMeta {
  /// How long the datagram sat between its arrival stamp and the handler
  /// running, in ns.  UdpTransport measures it against the kernel's
  /// SO_TIMESTAMPNS receive timestamp, so scheduler wake-up and dispatch
  /// latency can be subtracted back out of the arrival estimate; a
  /// virtual-time transport delivers exactly on schedule and reports 0.
  std::int64_t rx_lateness_ns{0};
};

class Transport {
 public:
  /// Receive callback: one complete datagram, valid only for the duration
  /// of the call.  Invoked from the transport's delivery context (a reactor
  /// dispatch event or a loopback hub delivery event), i.e. always with the
  /// owning Simulator's now() at the delivery instant.
  using RxHandler =
      std::function<void(std::span<const std::uint8_t>, const RxMeta&)>;

  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Broadcasts one datagram to every peer.  Returns false when no copy
  /// could be handed to the OS/hub at all (partial failure counts in
  /// stats().send_errors but still returns true).
  virtual bool send(std::span<const std::uint8_t> datagram,
                    const TxMeta& meta) = 0;
  bool send(std::span<const std::uint8_t> datagram) {
    return send(datagram, TxMeta{});
  }

  virtual void set_rx_handler(RxHandler handler) = 0;

  [[nodiscard]] virtual const TransportStats& stats() const = 0;

  /// Human-readable endpoint description ("udp:127.0.0.1:45400 (4 peers)").
  [[nodiscard]] virtual std::string describe() const = 0;
};

}  // namespace sstsp::net
