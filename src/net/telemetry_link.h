// Datagram telemetry link for the live stack.
//
// Each NodeRuntime publishes its newest TelemetrySample as one JSONL-encoded
// UDP datagram (TelemetryExporter, fire-and-forget: telemetry must never
// block or back-pressure the protocol path), and the Swarm — or any external
// collector, `nc -lu` included — receives them on a socket serviced by the
// existing ppoll reactor (TelemetryCollector).  One sample per datagram, so
// a lost packet loses one sample, never the framing.
//
// The wire format is exactly the JSONL line format of obs::telemetry_to_
// jsonl(); a datagram that fails to parse is counted as torn and dropped,
// mirroring sstsp_tracetool's skip-and-count rule.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/telemetry.h"

namespace sstsp::net {

class Reactor;

/// Best-effort sample publisher (plain UDP sendto; no reactor needed — the
/// socket is only ever written).
class TelemetryExporter {
 public:
  /// Connects a datagram socket to host:port; nullptr + *error on failure.
  static std::unique_ptr<TelemetryExporter> open(const std::string& host,
                                                 std::uint16_t port,
                                                 std::string* error);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Encodes and sends one sample; false when the kernel refused the send
  /// (counted, never fatal).
  bool publish(const obs::TelemetrySample& sample);

  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t send_errors() const { return send_errors_; }

 private:
  explicit TelemetryExporter(int fd) : fd_(fd) {}

  int fd_;
  std::uint64_t published_{0};
  std::uint64_t send_errors_{0};
};

/// Sample receiver on the reactor: binds bind_address:port (port 0 = kernel
/// pick, read back via local_port()) and invokes the handler once per
/// decoded sample, on the reactor thread.
class TelemetryCollector {
 public:
  using Handler = std::function<void(const obs::TelemetrySample&)>;

  static std::unique_ptr<TelemetryCollector> open(
      Reactor& reactor, const std::string& bind_address, std::uint16_t port,
      Handler handler, std::string* error);
  ~TelemetryCollector();

  TelemetryCollector(const TelemetryCollector&) = delete;
  TelemetryCollector& operator=(const TelemetryCollector&) = delete;

  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  /// Datagrams that did not parse as a telemetry sample (dropped).
  [[nodiscard]] std::uint64_t torn() const { return torn_; }

 private:
  TelemetryCollector(Reactor& reactor, int fd, Handler handler)
      : reactor_(reactor), fd_(fd), handler_(std::move(handler)) {}

  void on_readable();

  Reactor& reactor_;
  int fd_;
  Handler handler_;
  std::uint16_t local_port_{0};
  std::uint64_t received_{0};
  std::uint64_t torn_{0};
};

}  // namespace sstsp::net
