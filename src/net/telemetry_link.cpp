#include "net/telemetry_link.h"

#include <arpa/inet.h>
#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "net/reactor.h"
#include "obs/json.h"

namespace sstsp::net {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::unique_ptr<TelemetryExporter> TelemetryExporter::open(
    const std::string& host, std::uint16_t port, std::string* error) {
  auto fail = [error](std::string msg) -> std::unique_ptr<TelemetryExporter> {
    if (error != nullptr) *error = std::move(msg);
    return nullptr;
  };
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &dest.sin_addr) != 1) {
    return fail("invalid telemetry host: " + host);
  }
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail(errno_string("socket"));
  // connect() pins the destination so publish() is a plain send() and
  // ICMP errors surface as send errors instead of being silently eaten.
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&dest), sizeof(dest)) !=
      0) {
    const std::string msg = errno_string("connect");
    ::close(fd);
    return fail(msg);
  }
  return std::unique_ptr<TelemetryExporter>(new TelemetryExporter(fd));
}

TelemetryExporter::~TelemetryExporter() {
  if (fd_ >= 0) ::close(fd_);
}

bool TelemetryExporter::publish(const obs::TelemetrySample& sample) {
  const std::string line = obs::telemetry_to_jsonl(sample);
  const ssize_t sent = ::send(fd_, line.data(), line.size(), 0);
  if (sent == static_cast<ssize_t>(line.size())) {
    ++published_;
    return true;
  }
  ++send_errors_;
  return false;
}

std::unique_ptr<TelemetryCollector> TelemetryCollector::open(
    Reactor& reactor, const std::string& bind_address, std::uint16_t port,
    Handler handler, std::string* error) {
  auto fail = [error](std::string msg) -> std::unique_ptr<TelemetryCollector> {
    if (error != nullptr) *error = std::move(msg);
    return nullptr;
  };
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail(errno_string("socket"));
  auto fail_close = [&](std::string msg) {
    ::close(fd);
    return fail(std::move(msg));
  };
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_address.c_str(), &bind_addr.sin_addr) != 1) {
    return fail_close("invalid telemetry bind address: " + bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&bind_addr),
             sizeof(bind_addr)) != 0) {
    return fail_close(errno_string("bind"));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return fail_close(errno_string("getsockname"));
  }

  auto collector = std::unique_ptr<TelemetryCollector>(
      new TelemetryCollector(reactor, fd, std::move(handler)));
  collector->local_port_ = ntohs(bound.sin_port);
  reactor.add_fd(fd, [raw = collector.get()] { raw->on_readable(); });
  return collector;
}

TelemetryCollector::~TelemetryCollector() {
  if (fd_ >= 0) {
    reactor_.remove_fd(fd_);
    ::close(fd_);
  }
}

void TelemetryCollector::on_readable() {
  // Level-triggered dispatch: drain until EAGAIN.
  char buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      return;  // transient datagram error; next poll retries
    }
    if (n == 0) continue;
    const std::string_view text(buf, static_cast<std::size_t>(n));
    const auto parsed = obs::json::parse(text);
    const auto sample =
        parsed ? obs::telemetry_from_json(*parsed) : std::nullopt;
    if (!sample) {
      ++torn_;
      continue;
    }
    ++received_;
    if (handler_) handler_(*sample);
  }
}

}  // namespace sstsp::net
