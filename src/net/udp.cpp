#include "net/udp.h"

#include "net/codec.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace sstsp::net {

namespace {

bool parse_ipv4(const std::string& host, in_addr* out) {
  return inet_pton(AF_INET, host.c_str(), out) == 1;
}

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

[[nodiscard]] std::int64_t timespec_diff_ns(const timespec& a,
                                            const timespec& b) {
  return (static_cast<std::int64_t>(a.tv_sec) - b.tv_sec) * 1'000'000'000 +
         (a.tv_nsec - b.tv_nsec);
}

}  // namespace

std::unique_ptr<UdpTransport> UdpTransport::open(Reactor& reactor,
                                                 const UdpConfig& config,
                                                 std::string* error) {
  auto fail = [error](std::string message) -> std::unique_ptr<UdpTransport> {
    if (error != nullptr) *error = std::move(message);
    return nullptr;
  };

  const bool multicast = !config.multicast_group.empty();

  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return fail(errno_string("socket"));
  // From here on, close on any failure path.
  auto fail_close = [&](std::string message) {
    ::close(fd);
    return fail(std::move(message));
  };

  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return fail_close(errno_string("setsockopt(SO_REUSEADDR)"));
  }
  // Kernel receive timestamps: arrival is stamped when the datagram enters
  // the socket queue, not when the reactor gets scheduled to read it — the
  // difference (scheduler wake-up + dispatch) is reported per datagram as
  // RxMeta::rx_lateness_ns.  Best effort: some restricted environments
  // refuse the option, in which case lateness reads as 0.
  const bool timestamps =
      ::setsockopt(fd, SOL_SOCKET, SO_TIMESTAMPNS, &one, sizeof(one)) == 0;

  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port =
      htons(multicast ? config.multicast_port : config.bind_port);
  if (multicast) {
    // Bind to ANY so group traffic is accepted regardless of the interface
    // the kernel classifies it under.
    bind_addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (!parse_ipv4(config.bind_address, &bind_addr.sin_addr)) {
    return fail_close("invalid bind address: " + config.bind_address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&bind_addr),
             sizeof(bind_addr)) != 0) {
    return fail_close(errno_string("bind"));
  }

  auto transport =
      std::unique_ptr<UdpTransport>(new UdpTransport(reactor, fd, config));
  transport->timestamps_ = timestamps;

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return fail(errno_string("getsockname"));
  }
  transport->local_port_ = ntohs(bound.sin_port);
  // Self endpoint for warm-up probes; a 0.0.0.0 bind still self-delivers
  // (Linux routes INADDR_ANY sends over loopback).
  transport->self_addr_ = bound;

  if (multicast) {
    in_addr group{};
    if (!parse_ipv4(config.multicast_group, &group)) {
      return fail("invalid multicast group: " + config.multicast_group);
    }
    in_addr iface{};
    if (!parse_ipv4(config.multicast_interface, &iface)) {
      return fail("invalid multicast interface: " +
                  config.multicast_interface);
    }
    ip_mreq mreq{};
    mreq.imr_multiaddr = group;
    mreq.imr_interface = iface;
    if (::setsockopt(fd, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq,
                     sizeof(mreq)) != 0) {
      return fail(errno_string("setsockopt(IP_ADD_MEMBERSHIP)"));
    }
    if (::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_IF, &iface,
                     sizeof(iface)) != 0) {
      return fail(errno_string("setsockopt(IP_MULTICAST_IF)"));
    }
    const unsigned char loop = 1;
    if (::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_LOOP, &loop,
                     sizeof(loop)) != 0) {
      return fail(errno_string("setsockopt(IP_MULTICAST_LOOP)"));
    }
    const unsigned char ttl =
        static_cast<unsigned char>(config.multicast_ttl);
    if (::setsockopt(fd, IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof(ttl)) !=
        0) {
      return fail(errno_string("setsockopt(IP_MULTICAST_TTL)"));
    }
    transport->multicast_ = true;
    transport->group_addr_.sin_family = AF_INET;
    transport->group_addr_.sin_addr = group;
    transport->group_addr_.sin_port = htons(config.multicast_port);
  } else if (!config.peers.empty()) {
    std::string peer_error;
    if (!transport->set_peers(config.peers, &peer_error)) {
      return fail(std::move(peer_error));
    }
  }

  reactor.add_fd(fd, [t = transport.get()] { t->on_readable(); });
  return transport;
}

UdpTransport::UdpTransport(Reactor& reactor, int fd, UdpConfig config)
    : reactor_(reactor),
      fd_(fd),
      config_(std::move(config)),
      rx_buf_(config_.max_datagram_bytes) {}

UdpTransport::~UdpTransport() {
  reactor_.remove_fd(fd_);
  ::close(fd_);
}

bool UdpTransport::set_peers(const std::vector<UdpEndpoint>& peers,
                             std::string* error) {
  std::vector<sockaddr_in> targets;
  targets.reserve(peers.size());
  for (const UdpEndpoint& peer : peers) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(peer.port);
    if (!parse_ipv4(peer.host, &addr.sin_addr)) {
      if (error != nullptr) *error = "invalid peer address: " + peer.host;
      return false;
    }
    targets.push_back(addr);
  }
  targets_ = std::move(targets);
  return true;
}

bool UdpTransport::send(std::span<const std::uint8_t> datagram,
                        const TxMeta& meta) {
  const sockaddr_in* first = multicast_ ? &group_addr_ : targets_.data();
  const std::size_t count = multicast_ ? 1 : targets_.size();
  const std::uint8_t* data = datagram.data();
  if (meta.has_schedule) {
    // Warm-up probe: the first sendto() after a sleep runs the whole UDP
    // tx path cache-cold and costs an order of magnitude more than the
    // following ones — which lands *after* the first peer's lateness stamp
    // and read as a persistent per-pair clock bias.  A 0-byte datagram to
    // our own port (discarded on receive, see on_readable) warms the path
    // so every stamped copy below departs at near-constant syscall cost.
    // Probes are a timing artifact, not protocol traffic: invisible to the
    // wire accounting on both sides.
    ::sendto(fd_, nullptr, 0, 0,
             reinterpret_cast<const sockaddr*>(&self_addr_),
             sizeof(self_addr_));
    // Re-stamp the envelope's tx lateness right before every per-peer
    // sendto(): the syscalls are microseconds apart, and a stamp taken once
    // at encode time would read stale by the peer's position in the
    // fan-out order — a per-pair clock bias after compensation.
    tx_buf_.assign(datagram.begin(), datagram.end());
    data = tx_buf_.data();
  }
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (meta.has_schedule) {
      const std::int64_t ns =
          (reactor_.wall_sim_now() - meta.scheduled).ps / 1'000;
      patch_tx_lateness(tx_buf_,
                        ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
    }
    const ssize_t sent =
        ::sendto(fd_, data, datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&first[i]),
                 sizeof(sockaddr_in));
    if (sent == static_cast<ssize_t>(datagram.size())) {
      ++delivered;
    } else {
      ++stats_.send_errors;
    }
  }
  if (delivered > 0 || count == 0) {
    ++stats_.datagrams_sent;
    stats_.bytes_sent += datagram.size() * delivered;
    return true;
  }
  return false;
}

void UdpTransport::on_readable() {
  for (;;) {
    sockaddr_in from{};
    iovec iov{rx_buf_.data(), rx_buf_.size()};
    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(timespec))];
    msghdr msg{};
    msg.msg_name = &from;
    msg.msg_namelen = sizeof(from);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = timestamps_ ? control : nullptr;
    msg.msg_controllen = timestamps_ ? sizeof(control) : 0;
    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        ++stats_.recv_errors;
      }
      return;
    }
    if (n == 0) continue;  // own 0-byte warm-up probe (see send())
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    if (!rx_handler_) continue;

    RxMeta meta;
    if (timestamps_) {
      for (cmsghdr* cm = CMSG_FIRSTHDR(&msg); cm != nullptr;
           cm = CMSG_NXTHDR(&msg, cm)) {
        if (cm->cmsg_level != SOL_SOCKET || cm->cmsg_type != SCM_TIMESTAMPNS) {
          continue;
        }
        timespec stamp;
        std::memcpy(&stamp, CMSG_DATA(cm), sizeof(stamp));
        timespec now;
        clock_gettime(CLOCK_REALTIME, &now);
        // Lateness can only be non-negative; a realtime step between the
        // kernel stamp and this read would otherwise poison the arrival
        // estimate.
        meta.rx_lateness_ns =
            std::max<std::int64_t>(0, timespec_diff_ns(now, stamp));
        break;
      }
    }
    rx_handler_(std::span<const std::uint8_t>(rx_buf_.data(),
                                              static_cast<std::size_t>(n)),
                meta);
  }
}

std::string UdpTransport::describe() const {
  if (multicast_) {
    return "udp-multicast:" + config_.multicast_group + ":" +
           std::to_string(config_.multicast_port);
  }
  return "udp:" + config_.bind_address + ":" + std::to_string(local_port_) +
         " (" + std::to_string(targets_.size()) + " peers)";
}

}  // namespace sstsp::net
