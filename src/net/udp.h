// Non-blocking UDP transport (IPv4) for the live SSTSP stack.
//
// Two fan-out modes, both broadcast-semantics emulations of the IBSS
// medium:
//   * unicast mesh — an explicit peer list; send() issues one sendto() per
//     peer.  This is what sstsp_swarm uses on 127.0.0.1 (one ephemeral
//     port per in-process node) and what multi-process runs on one host
//     use.
//   * multicast — a group + port; send() issues one sendto() to the group
//     and the kernel fans out.  IP_MULTICAST_LOOP is enabled so same-host
//     processes hear each other; the node runtime discards its own echoes
//     by sender id (the live stand-in for half-duplex suppression).
//
// The socket is non-blocking and registered with the Reactor; on_readable
// drains it (recvfrom until EAGAIN) and hands each datagram to the rx
// handler.  A full send buffer counts as send_errors and the datagram is
// dropped — beacons are periodic state, not a reliable stream, exactly the
// semantics the protocol is built for.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/reactor.h"
#include "net/transport.h"

namespace sstsp::net {

struct UdpEndpoint {
  std::string host;  ///< IPv4 dotted quad
  std::uint16_t port{0};
};

struct UdpConfig {
  std::string bind_address = "0.0.0.0";
  std::uint16_t bind_port = 0;  ///< 0: ephemeral, discover via local_port()

  /// Unicast mesh targets; may also be installed later via set_peers()
  /// (sstsp_swarm opens all sockets first to learn the ephemeral ports).
  std::vector<UdpEndpoint> peers;

  /// Non-empty enables multicast mode (peers are then ignored).
  std::string multicast_group;
  std::uint16_t multicast_port = 0;
  /// Interface the group is joined on; loopback by default so the
  /// emulation harness never leaks beacons onto a real network.
  std::string multicast_interface = "127.0.0.1";
  int multicast_ttl = 0;  ///< 0 = same-host only

  /// Receive buffer size; anything longer than the longest valid datagram
  /// still decodes as exactly one DecodeError.
  std::size_t max_datagram_bytes = 2048;
};

class UdpTransport final : public Transport {
 public:
  /// Opens + binds the socket, joins the multicast group if configured, and
  /// registers with the reactor.  nullptr + *error on any failure.
  [[nodiscard]] static std::unique_ptr<UdpTransport> open(
      Reactor& reactor, const UdpConfig& config, std::string* error);

  ~UdpTransport() override;

  bool send(std::span<const std::uint8_t> datagram,
            const TxMeta& meta) override;
  using Transport::send;
  void set_rx_handler(RxHandler handler) override {
    rx_handler_ = std::move(handler);
  }
  [[nodiscard]] const TransportStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] std::string describe() const override;

  /// The actually-bound local port (resolves bind_port == 0).
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }

  /// Replaces the unicast peer list.  false + *error on an unparsable
  /// address.  No-op restriction: not meaningful in multicast mode.
  bool set_peers(const std::vector<UdpEndpoint>& peers, std::string* error);

 private:
  UdpTransport(Reactor& reactor, int fd, UdpConfig config);

  void on_readable();

  Reactor& reactor_;
  int fd_;
  UdpConfig config_;
  std::uint16_t local_port_{0};
  bool multicast_{false};
  bool timestamps_{false};  ///< SO_TIMESTAMPNS active (see RxMeta)
  sockaddr_in self_addr_{};  ///< own endpoint, for 0-byte warm-up probes
  sockaddr_in group_addr_{};
  std::vector<sockaddr_in> targets_;
  std::vector<std::uint8_t> rx_buf_;
  std::vector<std::uint8_t> tx_buf_;  ///< per-peer tx-lateness re-stamping
  RxHandler rx_handler_;
  TransportStats stats_;
};

}  // namespace sstsp::net
