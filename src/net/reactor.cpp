#include "net/reactor.h"

#include <poll.h>

#include <algorithm>

namespace sstsp::net {

namespace {
/// Longest single ppoll() sleep: bounds interrupt latency and re-checks the
/// wall/sim mapping often enough that a suspended laptop or a ntp step in
/// steady time (which cannot happen, but costs nothing to bound) never
/// stalls the loop for long.
constexpr std::int64_t kMaxSleepNs = 50'000'000;  // 50 ms
}  // namespace

void Reactor::add_fd(int fd, FdHandler on_readable) {
  fds_.push_back(Registration{fd, std::move(on_readable)});
}

void Reactor::remove_fd(int fd) {
  fds_.erase(std::remove_if(fds_.begin(), fds_.end(),
                            [fd](const Registration& r) { return r.fd == fd; }),
             fds_.end());
}

void Reactor::anchor(sim::SimTime sim_at_now) {
  anchor_wall_ = std::chrono::steady_clock::now();
  anchor_sim_ = sim_at_now;
  anchored_ = true;
}

sim::SimTime Reactor::wall_sim_now() const {
  if (!anchored_) return sim_.now();
  const auto elapsed = std::chrono::steady_clock::now() - anchor_wall_;
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
  return anchor_sim_ + sim::SimTime::from_ns(ns);
}

void Reactor::run_until(sim::SimTime horizon) {
  if (!anchored_) anchor(sim_.now());
  stop_ = false;

  std::vector<pollfd> pollset;
  auto work_mark = std::chrono::steady_clock::now();
  while (!stop_) {
    if (interrupt_ != nullptr && *interrupt_ != 0) break;

    // 1. Run everything the wall clock has already reached.
    const sim::SimTime wall = wall_sim_now();
    const sim::SimTime target = std::min(wall, horizon);
    while (sim_.step(target)) {
      if (stop_) return;
    }
    if (wall >= horizon) break;

    // 2. Sleep until the next pending event (or the horizon), interruptible
    //    by socket readability.
    sim::SimTime next = sim_.next_event_time();
    if (next > horizon) next = horizon;
    std::int64_t sleep_ns = (next - wall_sim_now()).ps / 1'000;
    sleep_ns = std::clamp<std::int64_t>(sleep_ns, 0, kMaxSleepNs);
    timespec ts;
    ts.tv_sec = sleep_ns / 1'000'000'000;
    ts.tv_nsec = sleep_ns % 1'000'000'000;

    pollset.clear();
    for (const Registration& r : fds_) {
      pollset.push_back(pollfd{r.fd, POLLIN, 0});
    }
    const auto before_poll = std::chrono::steady_clock::now();
    work_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(before_poll -
                                                             work_mark)
            .count());
    const int ready =
        ppoll(pollset.empty() ? nullptr : pollset.data(), pollset.size(), &ts,
              nullptr);
    work_mark = std::chrono::steady_clock::now();
    wait_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(work_mark -
                                                             before_poll)
            .count());
    if (ready <= 0) continue;  // timeout / EINTR: loop re-evaluates

    // 3. Dispatch readable fds as simulator events at the arrival instant,
    //    so every rx handler runs with sim.now() == wall arrival time.
    const sim::SimTime arrival = std::min(wall_sim_now(), horizon);
    for (std::size_t i = 0; i < pollset.size(); ++i) {
      if ((pollset[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
      // Index-stable lookup by fd: a handler may add/remove registrations.
      const int fd = pollset[i].fd;
      sim_.at(arrival, [this, fd] {
        for (const Registration& r : fds_) {
          if (r.fd == fd) {
            r.handler();
            return;
          }
        }
      });
    }
  }
}

}  // namespace sstsp::net
