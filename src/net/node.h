// NodeRuntime: hosts the unmodified core::Sstsp state machine on a live
// transport instead of the simulated broadcast channel.
//
// The protocol core is written against proto::Station / mac::Channel /
// sim::Simulator.  Rather than fork it, the runtime gives each node a
// *private* two-station channel on the hosting simulator:
//
//   index 0 — the node's own Station (clock, RNG, protocol), unchanged;
//   index 1 — a "wire tap" station at the same position with no protocol.
//
// Every beacon the protocol transmits traverses the private channel exactly
// as in simulation (air time, trace-id assignment, tx accounting) and is
// delivered to the tap, whose handler serializes it through net::codec and
// broadcasts it on the Transport.  Received datagrams run the strict
// decoder and enter the protocol through Sstsp::on_receive with an RxInfo
// built at the arrival instant — through the same verify/guard pipeline,
// invariant-monitor hooks, and lifecycle tracing as a simulated delivery.
//
// Time: the hosting Simulator is either virtual (LoopbackTransport swarm:
// deterministic, driven by run_until) or wall-clock-paced (net::Reactor
// pumping it in real time; UDP).  The node's HardwareClock reads that
// timeline through the unchanged clock/ abstractions, with per-node drift
// and offset emulated from a seeded substream so live nodes actually have
// to synchronize.  A real deployment would read its oscillator instead —
// that seam, and what the emulation does not model (carrier sense across
// the wire, collisions), is documented in DESIGN.md "Live stack".
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "core/key_directory.h"
#include "core/sstsp.h"
#include "mac/channel.h"
#include "net/codec.h"
#include "net/transport.h"
#include "protocols/station.h"
#include "sim/simulator.h"

namespace sstsp::net {

/// Default expected one-way latency of a localhost UDP hop — the
/// NodeConfig::wire_latency_us default for UDP deployments.  With sender
/// dispatch lateness carried in the envelope and kernel receive timestamps
/// subtracting the reactor's wake-up latency, what remains is just the
/// sendto() → socket-queue kernel path (a few us on loopback).
inline constexpr double kUdpWireLatencyUs = 10.0;

/// Lemma-1 divergence bound for wall-paced UDP runs (half the fine guard
/// window): a scheduler preemption inside the stamp-to-syscall gap can
/// slip one guard-accepted noisy measurement into a node's (k, b) solve,
/// transiently moving its adjusted clock by more than the sim-calibrated
/// 50 us bound tolerates; genuine divergence still grows without limit
/// and trips this one.  See SwarmConfig::monitor_diverge_us.
inline constexpr double kUdpDivergeThresholdUs = 150.0;

/// Wall-paced runs drop a frame instead of sending it when its dispatch
/// ran more than this far behind schedule (a host stall — scheduler
/// preemption, VM pause).  The beacon's timestamp describes the scheduled
/// instant, so a copy departing hundreds of ms late would reach receivers
/// after the claimed µTESLA interval's key disclosure and be rejected as
/// replay/delay evidence (§3.3 check 1) — noise in the audit.  Real
/// beacon hardware that misses its TBTT window skips the beacon; so do
/// we, and SSTSP's l missed-beacon tolerance absorbs it.  Half a beacon
/// period: far above benign scheduler jitter (< 1 ms), well below the
/// disclosure margin a stall must eat before receivers start rejecting.
inline constexpr double kMaxTxLatenessUs = 50'000.0;

/// SstspConfig with the live-transport deviations applied: a datagram path
/// jitters every arrival estimate, so the (k, b) slope is solved over a
/// wider baseline than the simulator's exactly-compensated channel needs
/// (see SstspConfig::solver_span_bps).
[[nodiscard]] inline core::SstspConfig live_sstsp_defaults() {
  core::SstspConfig cfg;
  cfg.solver_span_bps = 8;
  return cfg;
}

struct NodeConfig {
  mac::NodeId id = 0;
  /// Number of nodes in the deployment; the trust directory is populated
  /// with the anchors of ids [0, total_nodes) derived from `seed` — the
  /// live stand-in for the paper's out-of-scope authentic anchor
  /// distribution (all processes of one deployment must share `seed`).
  int total_nodes = 5;
  std::uint64_t seed = 1;

  core::SstspConfig sstsp = live_sstsp_defaults();
  mac::PhyParams phy{};

  /// Emulated oscillator: drift uniform in +/-max_drift_ppm and offset
  /// uniform in +/-initial_offset_us, drawn from substream("node-clock",
  /// id) of Rng(seed) — per-node deterministic and process-independent.
  /// When false, the explicit drift_ppm/offset_us below are used (0/0 =
  /// the host clock itself, what a real deployment would run with).
  bool emulate_clock = true;
  double max_drift_ppm = 100.0;
  double initial_offset_us = 112.0;
  double drift_ppm = 0.0;
  double offset_us = 0.0;

  /// Expected one-way wire latency in us, added to the receive-side
  /// nominal-delay compensation.  The simulated channel's delay model ends
  /// at the wire tap; whatever the real transport adds (hub latency,
  /// kernel + scheduler on UDP) is invisible to the protocol, so the
  /// *expected* part is compensated here and only the jitter around it
  /// remains as the paper's epsilon.  net::Swarm derives it from the
  /// loopback latency model; for UDP it is an operator estimate.
  double wire_latency_us = 0.0;

  /// Boot directly in the reference role (convergence experiments).
  bool start_as_reference = false;
};

class NodeRuntime {
 public:
  NodeRuntime(sim::Simulator& sim, Transport& transport,
              const NodeConfig& config);

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Powers the station on (boots the protocol).  Idempotent.
  void start();
  void stop();

  [[nodiscard]] proto::Station& station() { return *station_; }
  [[nodiscard]] const proto::Station& station() const { return *station_; }
  [[nodiscard]] core::Sstsp& protocol() {
    return static_cast<core::Sstsp&>(station_->protocol());
  }
  [[nodiscard]] const core::Sstsp& protocol() const {
    return static_cast<const core::Sstsp&>(station_->protocol());
  }
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] mac::Channel& channel() { return channel_; }

  /// Wire + codec accounting (transport stats folded in at read time).
  [[nodiscard]] NetRunStats net_stats() const;
  [[nodiscard]] std::uint64_t decode_errors(DecodeError error) const {
    return decode_error_by_kind_[static_cast<std::size_t>(error)];
  }

  /// Installs a wall-clock reading of the hosting timeline (typically
  /// Reactor::wall_sim_now).  With it, the runtime measures how late each
  /// transmit event actually ran on the wall and stamps that lateness into
  /// the datagram envelope, and reconstructs true datagram arrival from
  /// RxMeta — real hardware timestamps at the antenna; a user-space
  /// emulation has to measure its own scheduler-induced error out.  Leave
  /// unset for virtual-time transports, where events run exactly on
  /// schedule.
  void set_wall_clock(std::function<sim::SimTime()> wall_now) {
    wall_now_ = std::move(wall_now);
  }

  // Observability attachment, same sharing model as run::Network.
  void set_trace(trace::EventTrace* sink) { station_->set_trace(sink); }
  void set_instruments(obs::Instruments* instruments) {
    station_->set_instruments(instruments);
    channel_.set_instruments(instruments);
  }
  void set_profiler(obs::Profiler* profiler) {
    station_->set_profiler(profiler);
    channel_.set_profiler(profiler);
  }
  void set_monitor(obs::InvariantMonitor* monitor) {
    station_->set_monitor(monitor);
  }
  void set_lifecycle(trace::BeaconLifecycle* lifecycle) {
    station_->set_lifecycle(lifecycle);
  }
  void set_recovery(fault::RecoveryTracker* recovery) {
    station_->set_recovery(recovery);
  }
  void set_flight(obs::FlightRecorder* flight) { station_->set_flight(flight); }

  /// Starts periodic telemetry sampling: one source="node" sample per
  /// options.interval_s of the hosting timeline (wall-paced when a Reactor
  /// pumps the simulator), handed to `emit`, until the tick after `until`.
  /// Samples also feed the attached flight recorder, if any.
  void start_telemetry(const obs::TelemetrySampler::Options& options,
                       sim::SimTime until,
                       obs::TelemetrySampler::EmitFn emit);

  [[nodiscard]] obs::TelemetrySampler* telemetry_sampler() {
    return sampler_.get();
  }

 private:
  /// Tap handler: a locally transmitted frame completed its (private) air
  /// time — serialize and put it on the wire.
  void on_local_frame(const mac::Frame& frame);
  void emit_telemetry_sample();
  /// Transport rx handler: strict-decode and feed the protocol.
  void on_datagram(std::span<const std::uint8_t> bytes, const RxMeta& meta);

  [[nodiscard]] static mac::PhyParams live_phy(const mac::PhyParams& phy);
  [[nodiscard]] static clk::HardwareClock make_clock(const NodeConfig& cfg);

  sim::Simulator& sim_;
  Transport& transport_;
  NodeConfig config_;
  std::function<sim::SimTime()> wall_now_;
  mac::Channel channel_;
  core::KeyDirectory directory_;
  std::unique_ptr<proto::Station> station_;
  std::unique_ptr<obs::TelemetrySampler> sampler_;
  NetRunStats stats_;  ///< transport sub-struct filled on read
  std::array<std::uint64_t, kDecodeErrorCount> decode_error_by_kind_{};
};

}  // namespace sstsp::net
