// In-process, virtual-time loopback transport.
//
// A LoopbackHub connects N LoopbackTransport endpoints through the owning
// Simulator's event queue: send() schedules one delivery event per other
// attached endpoint at now + latency, where the latency is drawn uniformly
// from [latency_min, latency_max] out of a dedicated RNG substream — so a
// seeded run is bit-reproducible (the determinism contract exercised in
// tests/net_swarm_test.cpp) while still exercising the protocol against
// asymmetric, jittered delivery like a real datagram service would.
//
// The payload is shared between all deliveries of one send via a
// shared_ptr<const vector> (the same zero-copy fan-out idiom as
// mac::Channel's frame delivery).  An optional drop probability emulates
// datagram loss for robustness tests; it defaults to lossless.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/transport.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace sstsp::net {

struct LoopbackConfig {
  /// One-way delivery latency bounds (uniform).  The defaults approximate
  /// a quiet localhost UDP hop: ~40 us of kernel + scheduler cost with a
  /// few us of jitter.  The *expected* part is compensated on receive
  /// (NodeConfig::wire_latency_us, auto-set to the midpoint by net::Swarm);
  /// only the jitter half-width ends up as measurement noise in the
  /// adjusted-clock solve, so widening the band directly stresses the
  /// protocol's epsilon tolerance.  Keep min > 0 so delivery is never
  /// same-instant with the send.
  sim::SimTime latency_min = sim::SimTime::from_us(35);
  sim::SimTime latency_max = sim::SimTime::from_us(45);
  /// Per-delivery drop probability (0 = lossless).
  double drop_probability = 0.0;
};

class LoopbackTransport;

class LoopbackHub {
 public:
  LoopbackHub(sim::Simulator& sim, LoopbackConfig config);
  ~LoopbackHub();

  LoopbackHub(const LoopbackHub&) = delete;
  LoopbackHub& operator=(const LoopbackHub&) = delete;

  /// Creates a new endpoint attached to this hub.  Endpoints are owned by
  /// the hub (stable addresses for the lifetime of the hub).
  [[nodiscard]] LoopbackTransport& create_endpoint();

  [[nodiscard]] std::size_t endpoint_count() const {
    return endpoints_.size();
  }
  [[nodiscard]] const LoopbackConfig& config() const { return config_; }

 private:
  friend class LoopbackTransport;

  /// Fans `bytes` out to every endpoint except `from`, one delivery event
  /// per receiver at now + uniform latency.
  void broadcast(std::size_t from,
                 std::shared_ptr<const std::vector<std::uint8_t>> bytes);

  sim::Simulator& sim_;
  LoopbackConfig config_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<LoopbackTransport>> endpoints_;
};

class LoopbackTransport final : public Transport {
 public:
  bool send(std::span<const std::uint8_t> datagram,
            const TxMeta& meta) override;
  using Transport::send;
  void set_rx_handler(RxHandler handler) override {
    rx_handler_ = std::move(handler);
  }
  [[nodiscard]] const TransportStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] std::string describe() const override;

 private:
  friend class LoopbackHub;
  LoopbackTransport(LoopbackHub& hub, std::size_t index)
      : hub_(hub), index_(index) {}

  /// Delivery-event entry point (scheduled by the hub).
  void deliver(const std::vector<std::uint8_t>& bytes);

  LoopbackHub& hub_;
  std::size_t index_;
  RxHandler rx_handler_;
  TransportStats stats_;
};

}  // namespace sstsp::net
