// Prometheus exposition for the live stack.
//
// Three layers:
//   * write_prometheus_text / prometheus_body — render a metrics-registry
//     snapshot (plus caller-supplied gauges: cluster offset vs the Lemma-1
//     bound, sync census, reactor wait/work) as Prometheus text exposition
//     format 0.0.4.  Counters gain the conventional `_total` suffix,
//     histograms export as summaries (p50/p90/p99 quantiles + _sum/_count
//     — the registry's log₂ buckets are a storage format, not a Prometheus
//     bucket layout), and every name is prefixed (default "sstsp_") and
//     mangled to the metric-name charset.  DESIGN.md §11 documents the
//     mapping.
//   * PromExporter — a minimal `/metrics` HTTP endpoint hosted on the
//     reactor: a non-blocking listener registered via Reactor::add_fd;
//     each accept reads the request, writes one complete HTTP/1.0 response
//     with a freshly rendered body, and closes.  Built for `curl` and
//     Prometheus scrapes on localhost, not for the open internet: requests
//     are served inline on the reactor thread with short socket timeouts.
//   * write_prometheus_textfile — node-exporter textfile-collector mode
//     (write temp + rename, so scrapers never see a torn file) for runs
//     with no listening socket (sim, CI artifacts).
//
// validate_prometheus_text is the structural checker the tests (and CI)
// run scrape output through.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sstsp::net {

class Reactor;

/// Mangles an internal metric name ("sampler.phase_self_us.crypto-verify")
/// to the Prometheus charset ([a-zA-Z0-9_:], no leading digit).
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Renders the snapshot + extra gauges as text exposition format 0.0.4.
void write_prometheus_text(
    std::ostream& os, const obs::RegistrySnapshot& snapshot,
    const std::vector<std::pair<std::string, double>>& extra_gauges = {},
    std::string_view prefix = "sstsp");

/// write_prometheus_text into a string (the PromExporter body builder).
[[nodiscard]] std::string prometheus_body(
    const obs::RegistrySnapshot& snapshot,
    const std::vector<std::pair<std::string, double>>& extra_gauges = {},
    std::string_view prefix = "sstsp");

/// Structural validity check: every line is a comment (# HELP / # TYPE with
/// a known type keyword) or a `name[{labels}] value` sample with a legal
/// metric name and a parseable value.  Appends one message per defect to
/// *errors (capped at 20); true when clean.
[[nodiscard]] bool validate_prometheus_text(std::string_view text,
                                            std::vector<std::string>* errors);

/// Atomically (temp + rename) replaces `path` with `body` — the textfile
/// collector contract.  False + *error on failure.
[[nodiscard]] bool write_prometheus_textfile(const std::string& path,
                                             std::string_view body,
                                             std::string* error);

/// `/metrics` endpoint on the reactor loop.
class PromExporter {
 public:
  /// Called per scrape to render the full response body.
  using BodyFn = std::function<std::string()>;

  PromExporter() = default;
  ~PromExporter() { close(); }

  PromExporter(const PromExporter&) = delete;
  PromExporter& operator=(const PromExporter&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and registers the
  /// listener with the reactor.  False + *error on failure.
  [[nodiscard]] bool open(Reactor& reactor, std::uint16_t port, BodyFn body,
                          std::string* error);
  void close();

  [[nodiscard]] bool is_open() const { return listen_fd_ >= 0; }
  /// The actually bound port (resolves port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t scrapes() const { return scrapes_; }

 private:
  void on_accept();

  Reactor* reactor_{nullptr};
  int listen_fd_{-1};
  std::uint16_t port_{0};
  BodyFn body_;
  std::uint64_t scrapes_{0};
};

}  // namespace sstsp::net
