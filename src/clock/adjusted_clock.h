// The SSTSP adjusted clock: c(t) = k * t + b over the hardware reading t.
//
// This is the paper's equation (1).  The two parameters are re-solved on each
// authenticated reference beacon (see core/adjustment.h); this class only
// owns the piecewise-affine evaluation and enforces the paper's structural
// guarantees at the representation level:
//
//   * continuity   — set_params_continuous() recomputes b so that the value
//                    at the switch instant is preserved exactly (eq. 2);
//   * monotonicity — callers can query k to verify the slope stays positive;
//                    the protocol clamps pathological solves (see
//                    core::AdjustmentSolver) so time never flows backwards.
#pragma once

#include <cstdint>

#include "clock/hardware_clock.h"

namespace sstsp::clk {

class AdjustedClock {
 public:
  AdjustedClock() = default;
  explicit AdjustedClock(const HardwareClock* hw) : hw_(hw) {}

  [[nodiscard]] double k() const { return k_; }
  [[nodiscard]] double b() const { return b_; }
  [[nodiscard]] std::uint64_t adjustments() const { return adjustments_; }

  /// Adjusted value as a function of the hardware reading.
  [[nodiscard]] double value_at_hw(double hw_us) const {
    return k_ * hw_us + b_;
  }

  /// Adjusted value at simulation time `real`.
  [[nodiscard]] double read_us(sim::SimTime real) const {
    return value_at_hw(hw_->read_us(real));
  }

  /// Real time at which the adjusted clock reads `value_us`.
  [[nodiscard]] sim::SimTime real_at(double value_us) const {
    return hw_->real_at((value_us - b_) / k_);
  }

  /// Replaces the slope at hardware instant `hw_now_us`, recomputing the
  /// offset so that c is continuous there (paper eq. 2).
  void set_slope_continuous(double new_k, double hw_now_us) {
    const double value_now = value_at_hw(hw_now_us);
    k_ = new_k;
    b_ = value_now - new_k * hw_now_us;
    ++adjustments_;
  }

  /// One-time coarse step: aligns the adjusted clock to `value_us` at
  /// hardware instant `hw_now_us` keeping slope 1 relative to the hardware
  /// clock.  Used only in the coarse synchronization phase, before the
  /// fine-grained no-leap guarantee is in force.
  void step_to(double value_us, double hw_now_us) {
    k_ = 1.0;
    b_ = value_us - hw_now_us;
    ++adjustments_;
  }

  /// Direct parameter install (the SSTSP solver already builds b for
  /// continuity at the adjustment instant, so no recomputation is needed).
  void set_params(double k, double b) {
    k_ = k;
    b_ = b;
    ++adjustments_;
  }

 private:
  const HardwareClock* hw_{nullptr};
  double k_{1.0};
  double b_{0.0};
  std::uint64_t adjustments_{0};
};

}  // namespace sstsp::clk
