// Oscillator drift model.
//
// The paper models each station's oscillator as a constant-rate clock with
// relative frequency uniformly distributed in [1 - 0.01%, 1 + 0.01%]
// (i.e. +/-100 ppm, the IEEE 802.11 tolerance).  Within the 1000 s horizon a
// constant-frequency affine model is the paper's stated assumption ("the
// original clock is regarded as a linear function of real time within a
// short period of time"), so that is exactly what we implement by default.
//
// Beyond the paper, DriftStress/DriftStressor model the second-order
// frequency effects real oscillators exhibit — temperature ramps, crystal
// aging, and random-walk frequency noise — as slow per-node frequency
// perturbations applied on top of the constant base drift.  These exist to
// exercise the adaptive clock disciplines (core/discipline.h): under a pure
// constant-rate model the paper's two-point span solver is already optimal.
#pragma once

#include <cmath>
#include <string_view>

#include "sim/rng.h"

namespace sstsp::clk {

/// IEEE 802.11 worst-case oscillator tolerance.
inline constexpr double kMaxDriftPpm = 100.0;

struct DriftModel {
  /// Clock rate relative to real time; 1.0 is a perfect oscillator.
  double frequency{1.0};

  [[nodiscard]] double ppm() const { return (frequency - 1.0) * 1e6; }

  [[nodiscard]] static DriftModel perfect() { return DriftModel{1.0}; }

  [[nodiscard]] static DriftModel from_ppm(double ppm_offset) {
    return DriftModel{1.0 + ppm_offset * 1e-6};
  }

  /// Draws a frequency uniformly from [1 - max_ppm*1e-6, 1 + max_ppm*1e-6],
  /// the distribution used throughout the paper's evaluation.
  [[nodiscard]] static DriftModel uniform(sim::Rng& rng,
                                          double max_ppm = kMaxDriftPpm) {
    return DriftModel{1.0 + rng.uniform(-max_ppm, max_ppm) * 1e-6};
  }
};

/// Second-order frequency stressor kinds (beyond the paper's constant model).
enum class DriftStressKind {
  kNone = 0,
  /// Linear frequency ramp, e.g. a device warming up; each node gets a
  /// susceptibility drawn from uniform(-1, 1) so relative drift changes.
  kTempRamp,
  /// Monotonic crystal aging; susceptibility drawn from uniform(0, 1).
  kAging,
  /// Random-walk frequency: gaussian increments each tick.
  kRandomWalk,
};

[[nodiscard]] constexpr std::string_view to_string(DriftStressKind kind) {
  switch (kind) {
    case DriftStressKind::kNone: return "none";
    case DriftStressKind::kTempRamp: return "temp-ramp";
    case DriftStressKind::kAging: return "aging";
    case DriftStressKind::kRandomWalk: return "random-walk";
  }
  return "none";
}

/// Scenario-level stressor spec; one spec drives per-node DriftStressors.
struct DriftStress {
  DriftStressKind kind{DriftStressKind::kNone};
  /// Tick period for applying frequency deltas.
  double period_s{1.0};
  /// kTempRamp: peak frequency slew while the ramp is active.
  double ramp_ppm_per_s{0.5};
  /// kTempRamp: active window in sim time; ramp_end_s < 0 means whole run.
  double ramp_start_s{0.0};
  double ramp_end_s{-1.0};
  /// kAging: peak aging rate (real crystals run 1-100 ppm/year; the
  /// default is deliberately accelerated so a 100 s run shows the effect).
  double aging_ppm_per_day{25.0};
  /// kRandomWalk: per-sqrt(second) gaussian step size.
  double walk_sigma_ppm{0.25};

  [[nodiscard]] bool enabled() const {
    return kind != DriftStressKind::kNone && period_s > 0;
  }
};

/// Per-node stressor state.  step_delta_ppm() returns the frequency change
/// (ppm) to apply for a tick covering [t_s - dt_s, t_s]; the caller feeds it
/// to Station::inject_clock_fault(0.0, delta) so phase stays continuous.
class DriftStressor {
 public:
  DriftStressor(const DriftStress& spec, sim::Rng rng)
      : spec_(spec), rng_(rng) {
    switch (spec_.kind) {
      case DriftStressKind::kTempRamp:
        susceptibility_ = rng_.uniform(-1.0, 1.0);
        break;
      case DriftStressKind::kAging:
        susceptibility_ = rng_.uniform(0.0, 1.0);
        break;
      default:
        susceptibility_ = 1.0;
        break;
    }
  }

  [[nodiscard]] double step_delta_ppm(double t_s, double dt_s) {
    switch (spec_.kind) {
      case DriftStressKind::kTempRamp: {
        const double end =
            spec_.ramp_end_s < 0 ? t_s + 1.0 : spec_.ramp_end_s;
        if (t_s < spec_.ramp_start_s || t_s > end) return 0.0;
        return susceptibility_ * spec_.ramp_ppm_per_s * dt_s;
      }
      case DriftStressKind::kAging:
        return susceptibility_ * spec_.aging_ppm_per_day / 86400.0 * dt_s;
      case DriftStressKind::kRandomWalk:
        return rng_.normal(0.0, spec_.walk_sigma_ppm * std::sqrt(dt_s));
      case DriftStressKind::kNone:
        return 0.0;
    }
    return 0.0;
  }

  [[nodiscard]] double susceptibility() const { return susceptibility_; }

 private:
  DriftStress spec_;
  sim::Rng rng_;
  double susceptibility_{1.0};
};

}  // namespace sstsp::clk
