// Oscillator drift model.
//
// The paper models each station's oscillator as a constant-rate clock with
// relative frequency uniformly distributed in [1 - 0.01%, 1 + 0.01%]
// (i.e. +/-100 ppm, the IEEE 802.11 tolerance).  Within the 1000 s horizon a
// constant-frequency affine model is the paper's stated assumption ("the
// original clock is regarded as a linear function of real time within a
// short period of time"), so that is exactly what we implement; frequency
// aging and temperature effects are out of scope.
#pragma once

#include "sim/rng.h"

namespace sstsp::clk {

/// IEEE 802.11 worst-case oscillator tolerance.
inline constexpr double kMaxDriftPpm = 100.0;

struct DriftModel {
  /// Clock rate relative to real time; 1.0 is a perfect oscillator.
  double frequency{1.0};

  [[nodiscard]] double ppm() const { return (frequency - 1.0) * 1e6; }

  [[nodiscard]] static DriftModel perfect() { return DriftModel{1.0}; }

  [[nodiscard]] static DriftModel from_ppm(double ppm_offset) {
    return DriftModel{1.0 + ppm_offset * 1e-6};
  }

  /// Draws a frequency uniformly from [1 - max_ppm*1e-6, 1 + max_ppm*1e-6],
  /// the distribution used throughout the paper's evaluation.
  [[nodiscard]] static DriftModel uniform(sim::Rng& rng,
                                          double max_ppm = kMaxDriftPpm) {
    return DriftModel{1.0 + rng.uniform(-max_ppm, max_ppm) * 1e-6};
  }
};

}  // namespace sstsp::clk
