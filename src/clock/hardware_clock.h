// Free-running hardware oscillator.
//
// Models the 64-bit, 1 us-resolution counter the 802.11 standard mandates:
// reading(real) = offset + frequency * real.  The continuous (double) reading
// is used by protocol math; read_counter() applies the 1 us truncation that a
// real TSF timer register exhibits and is what gets stamped into beacons.
//
// The clock is intentionally *not* settable: protocols that step their time
// base (TSF adoption) layer a SettableClock on top, and SSTSP layers an
// AdjustedClock.  Keeping the oscillator immutable mirrors the paper's split
// between the "original clock" and the "adjusted clock".
#pragma once

#include <cstdint>

#include "clock/drift_model.h"
#include "sim/time_types.h"

namespace sstsp::clk {

class HardwareClock {
 public:
  HardwareClock() = default;
  HardwareClock(DriftModel drift, double initial_offset_us)
      : drift_(drift), offset_us_(initial_offset_us) {}

  [[nodiscard]] const DriftModel& drift() const { return drift_; }
  [[nodiscard]] double initial_offset_us() const { return offset_us_; }

  /// Continuous reading in microseconds at simulation (real) time `real`.
  [[nodiscard]] double read_us(sim::SimTime real) const {
    return offset_us_ + drift_.frequency * real.to_us();
  }

  /// Quantized counter value: what the TSF register shows.
  [[nodiscard]] std::int64_t read_counter(sim::SimTime real) const {
    const double v = read_us(real);
    const auto f = static_cast<std::int64_t>(v);
    return (static_cast<double>(f) > v) ? f - 1 : f;  // floor
  }

  /// Inverse mapping: the real time at which the continuous reading equals
  /// `hw_us`.  Well-defined because frequency > 0.
  [[nodiscard]] sim::SimTime real_at(double hw_us) const {
    return sim::SimTime::from_us_double((hw_us - offset_us_) /
                                        drift_.frequency);
  }

  /// Fault injection: an instantaneous counter step.  The only mutators on
  /// the otherwise-immutable oscillator; they model hardware faults (glitch,
  /// thermal shock), not protocol adjustments — those stay layered on top.
  void fault_step_us(double step_us) { offset_us_ += step_us; }

  /// Fault injection: a permanent frequency change of delta_ppm at real time
  /// `now`, preserving reading continuity (the counter does not jump).
  void fault_drift_delta_ppm(double delta_ppm, sim::SimTime now) {
    const double before = read_us(now);
    drift_.frequency += delta_ppm * 1e-6;
    offset_us_ = before - drift_.frequency * now.to_us();
  }

 private:
  DriftModel drift_{};
  double offset_us_{0.0};
};

}  // namespace sstsp::clk
