// Settable timer over a hardware oscillator — the TSF timer abstraction.
//
// IEEE 802.11 TSF adoption overwrites the timer register with a received
// timestamp; the oscillator keeps ticking at its own rate underneath.  We
// model the register as hw reading + adoption offset so that setting the
// value is O(1) and the underlying drift is preserved.
#pragma once

#include <cstdint>

#include "clock/hardware_clock.h"

namespace sstsp::clk {

class SettableClock {
 public:
  SettableClock() = default;
  explicit SettableClock(const HardwareClock* hw) : hw_(hw) {}

  [[nodiscard]] double read_us(sim::SimTime real) const {
    return hw_->read_us(real) + adoption_offset_us_;
  }

  [[nodiscard]] std::int64_t read_counter(sim::SimTime real) const {
    const double v = read_us(real);
    const auto f = static_cast<std::int64_t>(v);
    return (static_cast<double>(f) > v) ? f - 1 : f;
  }

  /// Sets the timer so that its reading at `real` equals `value_us`.
  /// The caller (protocol) enforces any forward-only policy.
  void set_value(sim::SimTime real, double value_us) {
    adoption_offset_us_ = value_us - hw_->read_us(real);
  }

  /// Real time at which this clock reads `value_us`.
  [[nodiscard]] sim::SimTime real_at(double value_us) const {
    return hw_->real_at(value_us - adoption_offset_us_);
  }

  [[nodiscard]] double adoption_offset_us() const {
    return adoption_offset_us_;
  }

 private:
  const HardwareClock* hw_{nullptr};
  double adoption_offset_us_{0.0};
};

}  // namespace sstsp::clk
