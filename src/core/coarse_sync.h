// Coarse synchronization phase (paper §3.3).
//
// A (re)joining node scans beacons for a few BPs, computing the offset of
// each overheard timestamp against its own adjusted clock.  Biased offsets
// (attacks, replays) are eliminated with the Song-Zhu-Cao filters — GESD
// first when the sample count supports it, then the loose threshold filter —
// and the survivors' mean is applied as a single clock step.  The result is
// synchronization loose enough (<< BP/2) for the µTESLA interval check,
// which is all the fine-grained phase needs to bootstrap.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/sstsp_config.h"

namespace sstsp::core {

class CoarseSync {
 public:
  explicit CoarseSync(const SstspConfig& cfg) : cfg_(&cfg) {}

  void reset() { offsets_.clear(); }

  void add_offset(double offset_us) { offsets_.push_back(offset_us); }

  [[nodiscard]] std::size_t samples() const { return offsets_.size(); }

  /// Filtered mean offset; nullopt when no sample survives (the node keeps
  /// scanning).  `rejected_out`, if non-null, receives the rejection count.
  [[nodiscard]] std::optional<double> estimate(
      std::size_t* rejected_out = nullptr) const;

 private:
  const SstspConfig* cfg_;
  std::vector<double> offsets_;
};

}  // namespace sstsp::core
