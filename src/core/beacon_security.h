// Secure beacon construction and the receiver-side verification pipeline.
//
// Sender (reference or contender), interval j:
//     <B, j, HMAC_{K_j}(B, j), K_{j-1}>      with K_j = v_{n-j}
//
// Receiver, on a beacon claiming interval j from sender s (paper §3.3):
//   1. interval check      — local adjusted time must lie inside interval j
//                            (µTESLA security condition);
//   2. disclosed-key check — K_{j-1} must hash forward to s's last
//                            authenticated element / published anchor;
//   3. deferred MAC check  — the *stored* beacon of interval j-1 is
//                            authenticated with the now-disclosed K_{j-1};
//   4. guard-time check    — |timestamp estimate - local adjusted clock|
//                            must be below delta (applied at arrival).
//
// This module owns steps 2-3 plus the per-sender buffering; the protocol
// (core/sstsp.h) owns 1 and 4 because they need the local clock.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "core/key_directory.h"
#include "crypto/mutesla.h"
#include "mac/frame.h"

namespace sstsp::core {

/// Outcome of feeding one received beacon through the µTESLA pipeline.
struct PipelineResult {
  bool key_valid{false};  ///< step 2 passed (or j == 1: nothing disclosed)
  bool mac_failed{false};  ///< a stored beacon failed its deferred MAC check
  /// Step 3: the previously stored beacon that just became authenticated,
  /// if any.  Contains the values the clock adjustment needs.
  struct Authenticated {
    std::int64_t interval{0};
    double arrival_hw_us{0};
    double ts_est_us{0};
    std::uint8_t level{0};
    /// Lifecycle ID of the (previous-interval) transmission that just
    /// became authenticated — the causal subject of any resulting
    /// adjustment, one interval after its time on air.
    std::uint64_t trace_id{0};
  };
  std::optional<Authenticated> authenticated;
};

/// Per-sender µTESLA receiver state: verifier cache plus the short beacon
/// buffer (the paper notes nodes buffer the beacons of the last 2 BPs).
class SenderPipeline {
 public:
  SenderPipeline(crypto::Digest anchor, crypto::MuTeslaSchedule schedule,
                 crypto::VerifyCache* cache = nullptr)
      : verifier_(anchor, schedule, cache) {}

  /// Processes the secured fields of a beacon received from this sender.
  /// `arrival_hw_us` / `ts_est_us` are recorded so the beacon can be turned
  /// into an adjustment sample once authenticated one interval later;
  /// `trace_id` rides along for the same deferred hand-back.
  PipelineResult ingest(const mac::SstspBeaconBody& body, mac::NodeId sender,
                        double arrival_hw_us, double ts_est_us,
                        std::uint64_t trace_id = 0);

  [[nodiscard]] const crypto::MuTeslaVerifier& verifier() const {
    return verifier_;
  }

  /// Key-freshness check without frame buffering: does `key` verify as the
  /// not-yet-seen chain element for interval j?  Used by the recovery
  /// extension to attribute guard failures — only the chain owner can
  /// produce a fresh disclosure, so a replayed/spoofed frame (stale or
  /// invalid key) can never be pinned on the identity it claims.  On
  /// success the verifier cache advances (the key is authentic material).
  [[nodiscard]] bool verify_key_fresh(std::int64_t j,
                                      const crypto::Digest& key) {
    const std::size_t before = verifier_.verified_position();
    return verifier_.verify_key(j, key) &&
           verifier_.verified_position() < before;
  }

 private:
  struct StoredBeacon {
    std::int64_t interval;
    std::int64_t timestamp_us;
    std::uint8_t level;
    crypto::Digest128 mac;
    double arrival_hw_us;
    double ts_est_us;
    std::uint64_t trace_id;
  };

  crypto::MuTeslaVerifier verifier_;
  std::deque<StoredBeacon> buffer_;  // at most the last 2 intervals
};

/// Signer wrapper: lazily builds the chain walker the first time the node
/// actually transmits (most nodes never become reference, and the walker
/// costs n hash invocations to bootstrap).
class BeaconSigner {
 public:
  BeaconSigner(crypto::ChainParams chain, crypto::MuTeslaSchedule schedule)
      : chain_(chain), schedule_(schedule) {}

  /// Fills the secured fields for interval j over timestamp/sender/level.
  [[nodiscard]] mac::SstspBeaconBody sign(std::int64_t j,
                                          std::int64_t timestamp_us,
                                          mac::NodeId sender,
                                          std::uint8_t level = 0);

 private:
  crypto::ChainParams chain_;
  crypto::MuTeslaSchedule schedule_;
  std::optional<crypto::MuTeslaSigner> signer_;  // built on first sign()
};

}  // namespace sstsp::core
