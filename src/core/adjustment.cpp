#include "core/adjustment.h"

namespace sstsp::core {

const char* to_string(DisciplineVerdict verdict) {
  switch (verdict) {
    case DisciplineVerdict::kApplied:
      return "applied";
    case DisciplineVerdict::kNonIncreasingSamples:
      return "non_increasing_samples";
    case DisciplineVerdict::kTargetNotAhead:
      return "target_not_ahead";
    case DisciplineVerdict::kSlopeOutOfRange:
      return "slope_out_of_range";
    case DisciplineVerdict::kInsufficientHistory:
      return "insufficient_history";
    case DisciplineVerdict::kInnovationRejected:
      return "innovation_rejected";
    case DisciplineVerdict::kHoldoverCoast:
      return "holdover_coast";
  }
  return "unknown";
}

DisciplineResult solve_adjustment(const ClockParams& previous, double t_now_us,
                                  const RefSample& newest,
                                  const RefSample& older, double target_us,
                                  const SstspConfig& cfg) {
  DisciplineResult out;

  const double dts = newest.ts_ref_us - older.ts_ref_us;
  const double dt = newest.t_local_us - older.t_local_us;
  if (dts <= 0.0 || dt <= 0.0) {
    out.verdict = DisciplineVerdict::kNonIncreasingSamples;
    return out;
  }

  // (4)+(5): expected local hw instant of beacon j+m.
  const double rate = dt / dts;
  const double t_star = newest.t_local_us + rate * (target_us - newest.ts_ref_us);
  out.expected_t_star_us = t_star;
  if (t_star <= t_now_us) {
    out.verdict = DisciplineVerdict::kTargetNotAhead;
    return out;
  }

  // (2)+(3).
  const double c_now = previous.eval(t_now_us);
  const double k = (target_us - c_now) / (t_star - t_now_us);
  if (k < cfg.k_min || k > cfg.k_max) {
    out.verdict = DisciplineVerdict::kSlopeOutOfRange;
    return out;
  }
  out.params = ClockParams{k, c_now - k * t_now_us};
  return out;
}

double paper_k_formula(const ClockParams& previous, double t_now_us,
                       const RefSample& newest, const RefSample& older,
                       double target_us) {
  const double c_now = previous.eval(t_now_us);  // k^{j-1} t_i^j + b^{j-1}
  const double dts = newest.ts_ref_us - older.ts_ref_us;
  const double numerator = (target_us - c_now) * dts;
  const double denominator =
      (newest.t_local_us - older.t_local_us) * (target_us - newest.ts_ref_us) +
      (newest.t_local_us - t_now_us) * dts;
  // Note: the paper writes (t_i^{j-1} - t_i^j) in the second product; with
  // t_i^j = "now" (after t_i^{j-1}) that term is negative, matching the
  // derivation denominator t* - t_now expanded through (4).
  return numerator / denominator;
}

double paper_b_formula(const ClockParams& previous, double t_now_us,
                       const RefSample& newest, const RefSample& older,
                       double target_us) {
  const double c_now = previous.eval(t_now_us);
  const double k =
      paper_k_formula(previous, t_now_us, newest, older, target_us);
  return c_now - k * t_now_us;
}

}  // namespace sstsp::core
