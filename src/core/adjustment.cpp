#include "core/adjustment.h"

namespace sstsp::core {

SolveOutcome solve_adjustment(const ClockParams& previous, double t_now_us,
                              const RefSample& newest, const RefSample& older,
                              double target_us, const SstspConfig& cfg) {
  SolveOutcome out;

  const double dts = newest.ts_ref_us - older.ts_ref_us;
  const double dt = newest.t_local_us - older.t_local_us;
  if (dts <= 0.0 || dt <= 0.0) {
    out.reason = SolveRejection::kNonIncreasingSamples;
    return out;
  }

  // (4)+(5): expected local hw instant of beacon j+m.
  const double rate = dt / dts;
  const double t_star = newest.t_local_us + rate * (target_us - newest.ts_ref_us);
  out.expected_t_star_us = t_star;
  if (t_star <= t_now_us) {
    out.reason = SolveRejection::kTargetNotAhead;
    return out;
  }

  // (2)+(3).
  const double c_now = previous.eval(t_now_us);
  const double k = (target_us - c_now) / (t_star - t_now_us);
  if (k < cfg.k_min || k > cfg.k_max) {
    out.reason = SolveRejection::kSlopeOutOfRange;
    return out;
  }
  out.params = ClockParams{k, c_now - k * t_now_us};
  return out;
}

double paper_k_formula(const ClockParams& previous, double t_now_us,
                       const RefSample& newest, const RefSample& older,
                       double target_us) {
  const double c_now = previous.eval(t_now_us);  // k^{j-1} t_i^j + b^{j-1}
  const double dts = newest.ts_ref_us - older.ts_ref_us;
  const double numerator = (target_us - c_now) * dts;
  const double denominator =
      (newest.t_local_us - older.t_local_us) * (target_us - newest.ts_ref_us) +
      (newest.t_local_us - t_now_us) * dts;
  // Note: the paper writes (t_i^{j-1} - t_i^j) in the second product; with
  // t_i^j = "now" (after t_i^{j-1}) that term is negative, matching the
  // derivation denominator t* - t_now expanded through (4).
  return numerator / denominator;
}

double paper_b_formula(const ClockParams& previous, double t_now_us,
                       const RefSample& newest, const RefSample& older,
                       double target_us) {
  const double c_now = previous.eval(t_now_us);
  const double k =
      paper_k_formula(previous, t_now_us, newest, older, target_us);
  return c_now - k * t_now_us;
}

}  // namespace sstsp::core
